package intra

import (
	"fmt"
	"time"

	"npra/internal/core/errs"
	"npra/internal/estimate"
	"npra/internal/ig"
	"npra/internal/ir"
	"npra/internal/loops"
)

// Allocator solves intra-thread allocations for one function at any
// requested (PR, SR) budget, memoizing both the chain of color-elimination
// contexts (the paper's "incremental" intra allocator that records its
// contexts) and whole Solve results per (pr, sr) point, so the
// inter-thread allocator's repeated cost probes are cheap; CacheStats
// exposes the Solve-point hit/miss counters and PhaseStats the per-phase
// wall-clock breakdown.
//
// Contexts placed in the memo are never mutated again. Candidate
// eliminations run on contexts drawn from a per-allocator scratch pool
// (copied from the cached neighbor, storage reused across candidates);
// the winning candidate leaves the pool for the memo. The allocator is
// not safe for concurrent use.
type Allocator struct {
	F   *ir.Func
	A   *ig.Analysis
	Est *estimate.Estimate

	// DisableCoalesce turns off the unnecessary-move elimination pass
	// after each color elimination (for ablation studies). Set before the
	// first Solve call.
	DisableCoalesce bool

	// DisableIncremental forces every MoveCost evaluation through the
	// from-scratch edge walk instead of the incremental per-variable
	// re-pricing. The two must agree bit-for-bit; the warm-start
	// differential tests run one allocator in each mode and compare. Set
	// before the first Solve call.
	DisableIncremental bool

	weights []int64 // nil = static move counting

	memo    map[[2]int]*Context // (cap, size) -> context
	memoErr map[[2]int]error

	// Solve-point cache: the inter-thread greedy loop re-probes the same
	// (pr, sr) budgets round after round (Option A re-prices pr[i]-1
	// every iteration until it is taken; Option B re-prices sr[i]-1), so
	// Solve memoizes whole Solutions — and their infeasibility errors —
	// keyed by the *requested* budget, before any clamping.
	sols    map[[2]int]*Solution
	solErrs map[[2]int]error
	stats   CacheStats

	pool   []*Context // scratch contexts recycled across bestStep trials
	phases PhaseStats
}

// CacheStats counts Solve-point cache hits and misses. A hit means the
// exact (pr, sr) budget was priced before and the cached Solution (or
// infeasibility) was returned without touching the context chain.
type CacheStats struct {
	Hits, Misses int
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first Solve.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Add accumulates other into s (for summing per-thread allocators).
func (s *CacheStats) Add(other CacheStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
}

// CacheStats returns the allocator's Solve-point cache counters.
func (al *Allocator) CacheStats() CacheStats { return al.stats }

// PhaseStats attributes an allocator's wall-clock time to the pipeline
// phases of one intra-thread allocation: analysis construction, the two
// halves of bound estimation, and the chain derivation that answers
// Solve queries. RewriteNS stays zero here; callers that rewrite code
// (e.g. the inter-thread allocator's finalize step) fill it when
// aggregating.
type PhaseStats struct {
	BuildNS         int64 // liveness + NSR + interference analysis (New only)
	MergeNS         int64 // estimation: BIG + per-NSR IIG colorings
	RepairNS        int64 // estimation: conflict-edge repair
	ColorNS         int64 // chain derivation: demote/vacate trials + coalesce
	RewriteNS       int64 // code rewriting emitted fresh (filled by rewriting callers)
	RewriteCachedNS int64 // code rewriting served from a rewrite cache (lookup + relocation)

	ChainSteps int // contexts derived and memoized
	Trials     int // candidate color eliminations attempted
}

// Add accumulates other into s (for summing per-thread allocators).
func (s *PhaseStats) Add(other PhaseStats) {
	s.BuildNS += other.BuildNS
	s.MergeNS += other.MergeNS
	s.RepairNS += other.RepairNS
	s.ColorNS += other.ColorNS
	s.RewriteNS += other.RewriteNS
	s.RewriteCachedNS += other.RewriteCachedNS
	s.ChainSteps += other.ChainSteps
	s.Trials += other.Trials
}

// TotalNS returns the sum over all timed phases.
func (s PhaseStats) TotalNS() int64 {
	return s.BuildNS + s.MergeNS + s.RepairNS + s.ColorNS + s.RewriteNS + s.RewriteCachedNS
}

// PhaseStats returns the allocator's per-phase timing counters.
func (al *Allocator) PhaseStats() PhaseStats { return al.phases }

// ResetStats zeroes the cache and phase counters without touching the
// memo tables. A warm cache (internal/funccache) calls it when pooling
// an allocator so that counters read from a checked-out allocator
// always cover the current run only: work done before the checkout was
// already reported by the runs that did it, and a fresh allocator's
// creation-time counters (BuildNS from New, MergeNS/RepairNS from
// NewFromAnalysis) are the current run's work by the same rule.
func (al *Allocator) ResetStats() {
	al.stats = CacheStats{}
	al.phases = PhaseStats{}
}

// MemoSize reports the allocator's memo population: contexts counts the
// derivation chain entries (including memoized infeasibilities), sols
// the Solve-point results (including memoized infeasibilities). The
// function cache uses it to decide whether a checked-out allocator is
// warm and to estimate entry footprints.
func (al *Allocator) MemoSize() (contexts, sols int) {
	return len(al.memo) + len(al.memoErr), len(al.sols) + len(al.solErrs)
}

// HasSolved reports whether the (pr, sr) budget is already in the
// Solve-point memo (as a solution or a memoized infeasibility), without
// touching the counters. The SRA sweep consults it to pick a serial
// warm replay over a parallel cold sweep.
func (al *Allocator) HasSolved(pr, sr int) bool {
	key := [2]int{pr, sr}
	if _, ok := al.sols[key]; ok {
		return true
	}
	_, ok := al.solErrs[key]
	return ok
}

// Footprint estimates the allocator's retained memory in bytes: the
// memoized context chain dominates (pieceOf/occ index arrays plus piece
// point sets per context). It is an accounting estimate for cache
// bounds and metrics, not an exact measurement.
func (al *Allocator) Footprint() int64 {
	var total int64
	for _, ctx := range al.memo { //lint:ignore detlint commutative byte-count sum; order never observable
		total += int64(len(ctx.pieceOf))*4 + int64(len(ctx.occ))*8
		for _, p := range ctx.Pieces {
			total += int64(len(p.Points))*8 + 32
		}
	}
	// Scratch pool contexts mirror the live chain tip's footprint.
	if n := len(al.pool); n > 0 && len(al.memo) > 0 {
		total += int64(n) * (total / int64(len(al.memo)))
	}
	total += int64(len(al.sols)+len(al.solErrs)) * 64
	return total
}

// Absorb merges other's memo tables into al: contexts and Solve points
// other computed that al has not. Both allocators must be built over
// the same analysis (the merged contexts reference it) and the same
// objective; Solve determinism makes entries for equal keys
// interchangeable, so only missing keys are copied. Memoized contexts
// are never mutated after insertion, which is what makes sharing them
// across allocators sound. The absorbed allocator must not be used
// concurrently with the call; its counters are not carried over.
func (al *Allocator) Absorb(other *Allocator) error {
	if other == nil || other == al {
		return nil
	}
	if other.A != al.A {
		return errs.Invalidf("intra: Absorb across distinct analyses")
	}
	if other.DisableCoalesce != al.DisableCoalesce || other.DisableIncremental != al.DisableIncremental {
		return errs.Invalidf("intra: Absorb across distinct allocator modes")
	}
	if (other.weights == nil) != (al.weights == nil) {
		return errs.Invalidf("intra: Absorb across distinct objectives")
	}
	for key, ctx := range other.memo { //lint:ignore detlint keyed merge of missing entries; insertion order never observable
		if _, ok := al.memo[key]; !ok {
			al.memo[key] = ctx
		}
	}
	for key, err := range other.memoErr { //lint:ignore detlint keyed merge of missing entries; insertion order never observable
		if _, ok := al.memoErr[key]; !ok {
			al.memoErr[key] = err
		}
	}
	for key, sol := range other.sols { //lint:ignore detlint keyed merge of missing entries; insertion order never observable
		if _, ok := al.sols[key]; !ok {
			al.sols[key] = sol
		}
	}
	for key, err := range other.solErrs { //lint:ignore detlint keyed merge of missing entries; insertion order never observable
		if _, ok := al.solErrs[key]; !ok {
			al.solErrs[key] = err
		}
	}
	return nil
}

// Solution is a successful intra-thread allocation for a (PR, SR) budget.
type Solution struct {
	Ctx    *Context
	PR, SR int // the requested budget
	Cost   int // moves the rewriter will insert
}

// New analyzes f and returns an allocator for it. The error path is the
// bound-estimation invariant check (estimate.ErrBoundsInverted); inputs
// that analyze cleanly never fail.
func New(f *ir.Func) (*Allocator, error) {
	start := time.Now() //lint:ignore detlint phase-timing observability only; duration never feeds an allocation decision
	a := ig.Analyze(f)
	buildNS := time.Since(start).Nanoseconds()
	al, err := NewFromAnalysis(a)
	if err != nil {
		return nil, err
	}
	al.phases.BuildNS = buildNS
	return al, nil
}

// MustNew is New for known-good inputs (tests, examples, benchmarks);
// it panics on estimation failure.
func MustNew(f *ir.Func) *Allocator {
	al, err := New(f)
	if err != nil {
		panic("intra: MustNew: " + err.Error())
	}
	return al
}

// NewFromAnalysis returns an allocator over an existing analysis.
func NewFromAnalysis(a *ig.Analysis) (*Allocator, error) {
	est, estStats, err := estimate.ComputeWithStats(a)
	if err != nil {
		return nil, err
	}
	al := &Allocator{
		F: a.F, A: a, Est: est,
		memo:    make(map[[2]int]*Context),
		memoErr: make(map[[2]int]error),
		sols:    make(map[[2]int]*Solution),
		solErrs: make(map[[2]int]error),
	}
	al.phases.MergeNS = estStats.MergeNS
	al.phases.RepairNS = estStats.RepairNS
	return al, nil
}

// Bounds returns the thread's register requirement bounds.
func (al *Allocator) Bounds() estimate.Bounds { return al.Est.Bounds }

// UseLoopWeights switches the move-minimization objective from the
// paper's static count to a loop-depth-weighted estimate of the dynamic
// count (10x per nesting level). It fails with an ErrInvalid-wrapped
// error when called after the first Solve: changing the objective would
// silently disagree with the memoized context chain.
func (al *Allocator) UseLoopWeights() error {
	if len(al.memo) > 0 || len(al.sols) > 0 {
		return errs.Invalidf("intra: UseLoopWeights after solving")
	}
	li, err := loops.Compute(al.F)
	if err != nil {
		return err
	}
	w := make([]int64, al.F.NumPoints())
	for p := range w {
		w[p] = li.PointWeight(p)
	}
	al.weights = w
	return nil
}

// Solve returns an allocation in which values crossing context switches
// use at most pr colors and all values use at most pr+sr colors. It fails
// with an infeasible error when the budget is below the achievable
// minimum (MinPR/MinR in the common case). Results are memoized per
// (pr, sr): repeated probes of the same budget return the same *Solution,
// which callers must treat as read-only.
func (al *Allocator) Solve(pr, sr int) (*Solution, error) {
	key := [2]int{pr, sr}
	if sol, ok := al.sols[key]; ok {
		al.stats.Hits++
		return sol, nil
	}
	if err, ok := al.solErrs[key]; ok {
		al.stats.Hits++
		return nil, err
	}
	al.stats.Misses++
	sol, err := al.solve(pr, sr)
	if err != nil {
		al.solErrs[key] = err
		return nil, err
	}
	al.sols[key] = sol
	return sol, nil
}

func (al *Allocator) solve(pr, sr int) (*Solution, error) {
	if pr < 0 || sr < 0 {
		return nil, errInfeasible{fmt.Sprintf("negative budget PR=%d SR=%d", pr, sr)}
	}
	capTarget := pr
	if capTarget > al.Est.MaxPR {
		capTarget = al.Est.MaxPR
	}
	sizeTarget := pr + sr
	if sizeTarget > al.Est.MaxR {
		sizeTarget = al.Est.MaxR
	}
	if sizeTarget < capTarget {
		sizeTarget = capTarget
	}
	ctx, err := al.context(capTarget, sizeTarget)
	if err != nil {
		return nil, err
	}
	return &Solution{Ctx: ctx, PR: pr, SR: sr, Cost: ctx.MoveCost()}, nil
}

// context returns the memoized context for the requested palette. The
// canonical derivation path demotes the private-capable cap from MaxPR
// down to the target first (at full palette size), then shrinks the
// palette size one color at a time.
func (al *Allocator) context(cap, size int) (*Context, error) {
	key := [2]int{cap, size}
	if ctx, ok := al.memo[key]; ok {
		return ctx, nil
	}
	if err, ok := al.memoErr[key]; ok {
		return nil, err
	}
	ctx, err := al.buildContext(cap, size)
	if err != nil {
		al.memoErr[key] = err
		return nil, err
	}
	al.memo[key] = ctx
	al.phases.ChainSteps++
	return ctx, nil
}

func (al *Allocator) buildContext(cap, size int) (*Context, error) {
	maxPR, maxR := al.Est.MaxPR, al.Est.MaxR
	switch {
	case cap == maxPR && size == maxR:
		ctx := newContext(al.A, al.Est.Colors, cap, size, al.weights)
		ctx.noIncr = al.DisableIncremental
		ctx.MoveCost() // prime the incremental snapshot for derivations
		return ctx, nil
	case cap < 0 || size < cap || size > maxR || cap > maxPR:
		return nil, errInfeasible{fmt.Sprintf("palette cap=%d size=%d outside [%d,%d]", cap, size, maxPR, maxR)}
	case size == maxR: // cap < maxPR: demote one private-capable color
		prev, err := al.context(cap+1, size)
		if err != nil {
			return nil, err
		}
		return al.bestStep(prev, 0, prev.Cap, (*Context).demoteColor)
	default: // size < maxR: eliminate one color
		prev, err := al.context(cap, size+1)
		if err != nil {
			return nil, err
		}
		// Candidates start at the requested cap: eliminating a color from
		// the private prefix might be cheap now but can make deeper
		// targets falsely infeasible (the prefix is this palette's
		// contract with the crossing pieces).
		return al.bestStep(prev, cap, prev.Size, (*Context).vacateColor)
	}
}

// takeScratch returns a context holding a copy of prev, drawn from the
// scratch pool (or freshly allocated when the pool is empty).
func (al *Allocator) takeScratch(prev *Context) *Context {
	var c *Context
	if n := len(al.pool); n > 0 {
		c = al.pool[n-1]
		al.pool = al.pool[:n-1]
	} else {
		c = &Context{}
	}
	c.copyFrom(prev)
	return c
}

func (al *Allocator) putScratch(c *Context) { al.pool = append(al.pool, c) }

// bestStep tries the given elimination on every candidate color in
// [lo, hi) of a scratch copy of prev and keeps the cheapest successful
// result, mirroring the paper's greedy "try each color, keep the minimum
// cost" loops in Reduce_PR/Reduce_SR. Losing (and failed) trials return
// their storage to the scratch pool; the winner leaves the pool for good,
// since the caller memoizes it and memoized contexts are never mutated.
func (al *Allocator) bestStep(prev *Context, lo, hi int, step func(*Context, int) error) (*Context, error) {
	start := time.Now() //lint:ignore detlint phase-timing observability only; duration never feeds an allocation decision
	var best *Context
	bestCost := int(^uint(0) >> 1)
	var firstErr error
	for c := lo; c < hi; c++ {
		al.phases.Trials++
		trial := al.takeScratch(prev)
		if err := step(trial, c); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			al.putScratch(trial)
			continue
		}
		if !al.DisableCoalesce {
			trial.coalesce()
		}
		if cost := trial.MoveCost(); cost < bestCost {
			if best != nil {
				al.putScratch(best)
			}
			best, bestCost = trial, cost
		} else {
			al.putScratch(trial)
		}
	}
	al.phases.ColorNS += time.Since(start).Nanoseconds()
	if best == nil {
		if firstErr == nil {
			firstErr = errInfeasible{"no candidate colors"}
		}
		return nil, firstErr
	}
	return best, nil
}
