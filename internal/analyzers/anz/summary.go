package anz

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The third layer of the flow framework: lightweight per-function
// summaries for one-level call-site propagation. A dataflow analysis
// inside one function sees `sh.mu.Lock()` directly, but a call to
// `c.Stats()` hides the shard locks Stats takes; the summary records,
// per function, which locks the body may acquire and release, whether
// it spawns goroutines, and whether it observes a context's Done/Err —
// enough for the concurrency analyzers to propagate one call level
// deep without whole-program analysis (matching the paper's stance of
// cheap per-unit summaries composed at the boundaries).

// A LockClass distinguishes the four mutex operations.
type LockClass int

const (
	LockAcquire LockClass = iota
	LockRelease
	RLockAcquire
	RLockRelease
)

// IsAcquire reports whether the class takes the lock.
func (c LockClass) IsAcquire() bool { return c == LockAcquire || c == RLockAcquire }

// A LockOp is one mutex operation found in a body.
//
// Local is the syntactic receiver path inside the function ("sh.mu",
// "c.keyMu"): distinct aliases of the same lock type stay distinct, so
// the per-function held-set tracks exactly what the source says.
// Global is the type-qualified identity ("npra/internal/funccache.shard.mu"):
// every instance of a struct's lock field shares it, so the repo-wide
// acquisition-order graph ranges over lock *classes*, as the paper's
// conflict analysis ranges over register classes rather than instances.
type LockOp struct {
	Class  LockClass
	Local  string
	Global string
	Pos    token.Pos
}

// lockMethods classifies the sync.Mutex/RWMutex method set.
var lockMethods = map[string]LockClass{
	"Lock":    LockAcquire,
	"Unlock":  LockRelease,
	"RLock":   RLockAcquire,
	"RUnlock": RLockRelease,
}

// LockOpAt classifies call as a mutex operation. It recognizes direct
// calls X.Lock/Unlock/RLock/RUnlock where X's type is sync.Mutex,
// sync.RWMutex, a pointer to either, or a named type embedding one
// (the method resolves into package sync).
func LockOpAt(pass *Pass, call *ast.CallExpr) (LockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	class, ok := lockMethods[sel.Sel.Name]
	if !ok {
		return LockOp{}, false
	}
	// The selection must resolve to a method declared in package sync
	// (covers direct fields, pointers, and embedded mutexes).
	s, ok := pass.Info.Selections[sel]
	if ok {
		fn, okf := s.Obj().(*types.Func)
		if !okf || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return LockOp{}, false
		}
	} else {
		// No selection entry: X is a package name (sync.OnceFunc etc.) —
		// not a lock op.
		return LockOp{}, false
	}
	return LockOp{
		Class:  class,
		Local:  ExprPath(sel.X),
		Global: GlobalLockID(pass, sel.X),
		Pos:    call.Pos(),
	}, true
}

// ExprPath renders a receiver expression as a stable syntactic path:
// idents and field selections keep their names, everything else
// degrades to a coarse bucket so distinct complex expressions do not
// explode the fact space.
func ExprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprPath(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprPath(e.X)
	case *ast.StarExpr:
		return ExprPath(e.X)
	case *ast.UnaryExpr:
		return ExprPath(e.X)
	case *ast.IndexExpr:
		return ExprPath(e.X) + "[i]"
	case *ast.CallExpr:
		return ExprPath(e.Fun) + "()"
	default:
		return "<expr>"
	}
}

// GlobalLockID qualifies a lock receiver by its owning declaration:
// for a field selection the owning named struct type
// ("pkg/path.Type.field", following nested fields to the innermost
// one), for a package-level var "pkg/path.var", for a local variable
// the enclosing position-less name "local:<name>". Unresolvable
// receivers yield "<dynamic>".
func GlobalLockID(pass *Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return GlobalLockID(pass, e.X)
	case *ast.StarExpr:
		return GlobalLockID(pass, e.X)
	case *ast.UnaryExpr:
		return GlobalLockID(pass, e.X)
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				recv := s.Recv()
				for {
					if p, ok := recv.(*types.Pointer); ok {
						recv = p.Elem()
						continue
					}
					break
				}
				if named, ok := recv.(*types.Named); ok {
					obj := named.Obj()
					pkg := ""
					if obj.Pkg() != nil {
						pkg = obj.Pkg().Path() + "."
					}
					return pkg + obj.Name() + "." + v.Name()
				}
				return "<anon>." + v.Name()
			}
		}
		// Qualified package-level var: pkg.Mu.
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + e.Sel.Name
			}
		}
		return "<dynamic>"
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return "local:" + v.Name()
		}
		return "<dynamic>"
	case *ast.IndexExpr:
		return GlobalLockID(pass, e.X) + "[i]"
	default:
		return "<dynamic>"
	}
}

// A Summary is the one-level propagation record of one function.
type Summary struct {
	Decl *ast.FuncDecl

	// Acquires/Releases are the global IDs of locks the body itself
	// may operate on, excluding deferred calls and function literals
	// (a closure's ops belong to whoever runs it).
	Acquires StringSet
	Releases StringSet

	// AcquireOps keeps the source-ordered acquire sites for diagnostics.
	AcquireOps []LockOp

	// Spawns counts `go` statements in the body (literals included).
	Spawns int

	// ObservesDone reports whether the body references ctx.Done(),
	// ctx.Err(), or ctx.Deadline() on a context.Context — the signal
	// goleak accepts as termination intent for one-level callees.
	ObservesDone bool
}

// Summarize computes summaries for every function declaration in the
// package, keyed by the function's types.Object so call sites resolve
// to them via Info.Uses.
func Summarize(pass *Pass) map[types.Object]*Summary {
	out := make(map[types.Object]*Summary)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			out[obj] = summarizeFunc(pass, fd)
		}
	}
	return out
}

func summarizeFunc(pass *Pass, fd *ast.FuncDecl) *Summary {
	s := &Summary{Decl: fd}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure bodies still count for ObservesDone (the intent
			// signal), but their lock ops are not the enclosing
			// function's.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && IsCtxSignalCall(pass, c) {
					s.ObservesDone = true
				}
				return true
			})
			return false
		case *ast.DeferStmt:
			// Deferred releases run at exit; record releases so balance
			// checks can credit them, but skip deferred acquires (rare
			// and misleading in a may-acquire summary).
			if op, ok := LockOpAt(pass, n.Call); ok && !op.Class.IsAcquire() {
				s.Releases = s.Releases.Add(op.Global)
			}
			return false
		case *ast.GoStmt:
			s.Spawns++
		case *ast.CallExpr:
			if op, ok := LockOpAt(pass, n); ok {
				if op.Class.IsAcquire() {
					s.Acquires = s.Acquires.Add(op.Global)
					s.AcquireOps = append(s.AcquireOps, op)
				} else {
					s.Releases = s.Releases.Add(op.Global)
				}
			}
			if IsCtxSignalCall(pass, n) {
				s.ObservesDone = true
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return s
}

// IsCtxSignalCall reports whether call is ctx.Done(), ctx.Err() or
// ctx.Deadline() on a context.Context value.
func IsCtxSignalCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Done", "Err", "Deadline":
	default:
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return IsContextType(tv.Type)
}

// IsContextType reports whether t is context.Context (or an alias with
// the same underlying interface from package context).
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// CalleeObject resolves a call to the types.Object of its static
// callee: a plain function, or a method with a concrete receiver.
// Dynamic calls (function values, interface methods) return nil.
func CalleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return obj
		}
		return nil
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				// Interface-dispatched methods are dynamic.
				if types.IsInterface(s.Recv()) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.F().
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// IsDynamicCall reports whether call dispatches through a function
// value or interface method — a callee no summary can describe.
// Builtins and type conversions are not calls for this purpose.
func IsDynamicCall(pass *Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Conversions: the "callee" is a type.
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		return false
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pass.Info.Uses[f].(type) {
		case *types.Func:
			return false
		case *types.Builtin:
			return false
		case *types.Var:
			return true // function-typed variable
		case nil:
			return false
		default:
			_ = obj
			return false
		}
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[f]; ok {
			if _, isFn := s.Obj().(*types.Func); isFn {
				return types.IsInterface(s.Recv())
			}
			// Field selection of function type.
			if v, ok := s.Obj().(*types.Var); ok {
				_, isSig := v.Type().Underlying().(*types.Signature)
				return isSig
			}
			return false
		}
		if _, ok := pass.Info.Uses[f.Sel].(*types.Func); ok {
			return false
		}
		if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
			return false
		}
		return false
	case *ast.FuncLit:
		return false // immediately-invoked literal: body is right there
	}
	return true
}

// ShortPos renders a position as file:line relative to nothing — the
// final path shortening happens in the driver; analyzers use it to
// reference "the other site" inside a message.
func ShortPos(pass *Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + itoa(p.Line)
}
