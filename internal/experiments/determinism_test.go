package experiments

import (
	"testing"

	"npra/internal/bench"
	"npra/internal/core"
	"npra/internal/ir"
)

// TestTable3WorkersDeterminism is the determinism regression test for the
// parallel allocation engine: for every Table 3 scenario, AllocateARA with
// Workers: 1 and Workers: 8 must produce identical (PR, SR) vectors, move
// counts, and rewritten code — the worker count is a throughput knob, never
// a results knob.
func TestTable3WorkersDeterminism(t *testing.T) {
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			mk := func() []*ir.Func {
				funcs := make([]*ir.Func, len(sc.benches))
				for i, bn := range sc.benches {
					b, err := bench.Get(bn)
					if err != nil {
						t.Fatal(err)
					}
					funcs[i] = b.Gen(testPackets)
				}
				return funcs
			}
			serial, err := core.AllocateARA(mk(), core.Config{NReg: NReg, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.AllocateARA(mk(), core.Config{NReg: NReg, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if serial.SGR != par.SGR {
				t.Errorf("SGR: serial %d, parallel %d", serial.SGR, par.SGR)
			}
			if serial.SolveCache != par.SolveCache {
				t.Errorf("solve cache diverged: serial %+v, parallel %+v",
					serial.SolveCache, par.SolveCache)
			}
			for i := range serial.Threads {
				s, p := serial.Threads[i], par.Threads[i]
				if s.PR != p.PR || s.SR != p.SR {
					t.Errorf("thread %d (%s): (PR,SR) serial (%d,%d), parallel (%d,%d)",
						i, s.Name, s.PR, s.SR, p.PR, p.SR)
				}
				if s.Stats.Added() != p.Stats.Added() {
					t.Errorf("thread %d (%s): moves serial %d, parallel %d",
						i, s.Name, s.Stats.Added(), p.Stats.Added())
				}
				if s.F.Format() != p.F.Format() {
					t.Errorf("thread %d (%s): rewritten code differs between worker counts",
						i, s.Name)
				}
			}
		})
	}
}

// TestTable3SolveCacheHits checks the Solve-point cache is actually doing
// work on the paper's scenarios. At the paper budget (128 registers) every
// scenario's move-free demand fits outright, so the greedy loop never
// iterates — the hits there come from duplicate-thread dedup (S1 and S2
// both run identical thread pairs). A tight budget forces reduction rounds
// on every scenario, and the re-probed candidates must hit the cache.
func TestTable3SolveCacheHits(t *testing.T) {
	// Per-scenario pressure budgets: low enough to force greedy rounds,
	// high enough to stay feasible at testPackets.
	pressure := map[string]int{"S1": 54, "S2": 60, "S3": 50}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			funcs := make([]*ir.Func, len(sc.benches))
			for i, bn := range sc.benches {
				b, err := bench.Get(bn)
				if err != nil {
					t.Fatal(err)
				}
				funcs[i] = b.Gen(testPackets)
			}
			nreg, ok := pressure[sc.name]
			if !ok {
				t.Fatalf("no pressure budget for scenario %s", sc.name)
			}
			alloc, err := core.AllocateARA(funcs, core.Config{NReg: nreg})
			if err != nil {
				t.Fatalf("NReg=%d: %v", nreg, err)
			}
			cs := alloc.SolveCache
			if cs.Hits == 0 {
				t.Errorf("NReg=%d: no cache hits (stats %+v)", nreg, cs)
			}
			if cs.Misses == 0 {
				t.Errorf("NReg=%d: no cache misses (stats %+v)", nreg, cs)
			}
			t.Logf("NReg=%d: %+v (hit rate %.0f%%)", nreg, cs, 100*cs.HitRate())
		})
	}
}
