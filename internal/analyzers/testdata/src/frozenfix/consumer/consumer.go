// Fixture for the frozenfunc analyzer: holders of cache-shared
// rewritten bodies (ThreadAlloc.F, RewriteSource results) must never
// mutate them in place — they are frozen and shared by pointer.
package consumer

import (
	"frozenfix/core"
	"frozenfix/ir"
)

// BuildCachedBody is the bug class the runtime canary panics on: Build
// re-derives CFG state in place on a body another request may hold.
func BuildCachedBody(alloc *core.Allocation) error {
	f := alloc.Threads[0].F
	return f.Build() // want `Build on a cache-shared rewritten body`
}

// RenumberThreadBody mutates through the field directly.
func RenumberThreadBody(t *core.ThreadAlloc) {
	t.F.RenumberRegs() // want `RenumberRegs on a cache-shared rewritten body`
}

// WriteField writes through the shared body.
func WriteField(t *core.ThreadAlloc) {
	t.F.Name = "patched" // want `write through the cache-shared rewritten body t\.F`
}

// WriteElement reaches an element through the shared body.
func WriteElement(t *core.ThreadAlloc) {
	t.F.Blocks[0].Label = "l0" // want `write through the cache-shared rewritten body`
}

// MutateLookupResult mutates the body a rewrite cache served.
func MutateLookupResult(rc core.RewriteSource, f *ir.Func) {
	body, _, ok := rc.LookupRewrite(f, 2, 1, 0, 2)
	if !ok {
		return
	}
	body.NumRegs = 7 // want `write through the cache-shared rewritten body body`
}

// MutateStoreResult mutates the relocated body StoreRewrite returned.
func MutateStoreResult(rc core.RewriteSource, f, canon *ir.Func) {
	body := rc.StoreRewrite(f, 2, 1, 0, 2, canon, core.RewriteStats{})
	body.RenumberRegs() // want `RenumberRegs on a cache-shared rewritten body`
}

// ReadOnly uses are fine: formatting, cloning, pointer comparison.
func ReadOnly(t *core.ThreadAlloc) string {
	return t.F.Format()
}

// CloneThenMutate is the sanctioned pattern: the clone is caller-owned.
func CloneThenMutate(t *core.ThreadAlloc) {
	g := t.F.Clone()
	g.RenumberRegs()
	g.Name = "mine"
}

// RebindClearsTaint: after rebinding to a clone, later mutation is
// caller-owned; the mutation before the rebind is still flagged.
func RebindClearsTaint(t *core.ThreadAlloc) {
	f := t.F
	f.NumRegs = 1 // want `write through the cache-shared rewritten body f`
	f = f.Clone()
	f.NumRegs = 2
	_ = f
}

// SwapPointer replaces the field, not the shared body: allowed.
func SwapPointer(t *core.ThreadAlloc, g *ir.Func) {
	t.F = g
}
