package core_test

import (
	"fmt"
	"log"

	"npra/internal/core"
	"npra/internal/ir"
)

// ExampleAllocateARA allocates the paper's Figure 3 thread pair: thread
// 1's value a survives a context switch and needs a private register;
// everything else shares.
func ExampleAllocateARA() {
	t1 := ir.MustParse(`
func producer
entry:
	set v0, 1
	ctx
	addi v1, v0, 10
	store [64], v1
	halt`)
	t2 := ir.MustParse(`
func consumer
entry:
	ctx
	set v0, 6
	store [68], v0
	halt`)

	alloc, err := core.AllocateARA([]*ir.Func{t1, t2}, core.Config{NReg: 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		log.Fatal(err)
	}
	for i, th := range alloc.Threads {
		fmt.Printf("thread %d (%s): PR=%d SR=%d\n", i, th.Name, th.PR, th.SR)
	}
	fmt.Printf("registers used: %d of %d (SGR=%d)\n",
		alloc.TotalRegisters(), alloc.NReg, alloc.SGR)
	// Output:
	// thread 0 (producer): PR=1 SR=1
	// thread 1 (consumer): PR=0 SR=1
	// registers used: 2 of 16 (SGR=1)
}

// ExampleAllocateSRA solves the symmetric case — the same program on all
// four hardware threads — by exact sweep.
func ExampleAllocateSRA() {
	prog := ir.MustParse(`
func worker
entry:
	set v0, 3
	ctx
	muli v1, v0, 7
	store [0], v1
	halt`)

	alloc, err := core.AllocateSRA(prog, 4, core.Config{NReg: 8})
	if err != nil {
		log.Fatal(err)
	}
	t := alloc.Threads[0]
	fmt.Printf("4 threads x (PR=%d) + SGR=%d = %d registers\n",
		t.PR, alloc.SGR, alloc.TotalRegisters())
	// Output:
	// 4 threads x (PR=1) + SGR=1 = 5 registers
}
