// Command nploadgen drives npserve with a closed-loop request stream
// and reports latency percentiles, status-code counts and the server's
// own singleflight/batching counters. It doubles as the serve-e2e
// acceptance gate: -max-5xx and -min-dedup turn the report into a
// pass/fail exit code.
//
// Usage:
//
//	nploadgen -url http://127.0.0.1:8080 -c 8 -duration 10s -dup 0.5
//	nploadgen -inprocess -requests 500 -dup 0.5 -report BENCH_serve.json
//
// With -inprocess, nploadgen starts an npserve instance inside the
// process (no network listener flakiness) and drives that.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"npra/internal/serve"
	"npra/internal/tools/loadgen"
)

func main() {
	var (
		url       = flag.String("url", "", "target npserve base URL (omit with -inprocess)")
		inprocess = flag.Bool("inprocess", false, "start an in-process npserve and drive it")
		conc      = flag.Int("c", 8, "closed-loop worker count")
		duration  = flag.Duration("duration", 0, "wall-clock budget (0 = unlimited; set -requests then)")
		requests  = flag.Int64("requests", 0, "total request budget (0 = unlimited; set -duration then)")
		dup       = flag.Float64("dup", 0, "duplicate-request ratio, 0..1")
		pool      = flag.Int("pool", 16, "distinct specs the duplicate draws come from")
		threads   = flag.Int("threads", 3, "max threads per generated request")
		nreg      = flag.Int("nreg", 64, "register budget per request")
		timeoutMS = flag.Int64("timeout-ms", 0, "per-request timeout forwarded to the server")
		seed      = flag.Int64("seed", 1, "request-stream seed")
		reportTo  = flag.String("report", "", "write the JSON report to this file")
		max5xx    = flag.Int64("max-5xx", -1, "fail if more than this many 5xx responses (-1 disables)")
		minDedup  = flag.Float64("min-dedup", -1, "fail if the singleflight hit rate is below this (-1 disables)")
		maxP99    = flag.Float64("max-p99-ms", 0, "fail if the p99 latency exceeds this many milliseconds (0 disables)")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "engine workers for -inprocess")
	)
	flag.Parse()
	if err := run(*url, *inprocess, *conc, *duration, *requests, *dup, *pool, *threads,
		*nreg, *timeoutMS, *seed, *reportTo, *max5xx, *minDedup, *maxP99, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "nploadgen:", err)
		os.Exit(1)
	}
}

func run(url string, inprocess bool, conc int, duration time.Duration, requests int64,
	dup float64, pool, threads, nreg int, timeoutMS, seed int64,
	reportTo string, max5xx int64, minDedup, maxP99 float64, jobs int) error {
	if inprocess {
		s := serve.New(serve.Config{Workers: jobs})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		url = ts.URL
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		URL:         url,
		Concurrency: conc,
		Duration:    duration,
		MaxRequests: requests,
		DupRatio:    dup,
		PoolSize:    pool,
		Threads:     threads,
		NReg:        nreg,
		TimeoutMS:   timeoutMS,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if reportTo != "" {
		if err := os.WriteFile(reportTo, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if max5xx >= 0 || minDedup >= 0 || maxP99 > 0 {
		effMax := max5xx
		if effMax < 0 {
			effMax = rep.Requests // 5xx gate disabled
		}
		if err := rep.Check(effMax, minDedup, maxP99); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nploadgen: checks passed (5xx %d <= %d, dedup %.4f >= %.4f, p99 %.2fms)\n",
			rep.FiveXX, effMax, rep.SingleflightHitRate, minDedup, rep.P99MS)
	}
	return nil
}
