package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
	"npra/internal/schedcheck"
)

// paperPair mirrors the paper's Figure 3: thread 1 needs one private
// register (a) plus two shareable ones; thread 2 needs zero private and
// one shareable. Sharing brings the total from four to three (or two with
// splitting).
const fig3t1 = `
func t1
entry:
	set v0, 1
	ctx
	bz v0, L1
	set v1, 2
	add v1, v0, v1
	set v2, 3
	br L2
L1:
	set v2, 4
	add v2, v0, v2
	set v1, 5
L2:
	add v1, v1, v2
	load v3, [v1+0]
	store [64], v3
	halt
`

const fig3t2 = `
func t2
entry:
	ctx
	set v0, 6
	addi v0, v0, 1
	store [68], v0
	halt
`

func TestFigure3SharingSavesRegisters(t *testing.T) {
	t1 := ir.MustParse(fig3t1)
	t2 := ir.MustParse(fig3t2)
	alloc, err := AllocateARA([]*ir.Func{t1, t2}, Config{NReg: 16})
	if err != nil {
		t.Fatalf("AllocateARA: %v", err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Move-free demand: thread1 PR=1 SR=2, thread2 PR=0 SR=1 -> total 3,
	// versus 3+1=4 without sharing (paper's example).
	if got := alloc.TotalRegisters(); got != 3 {
		t.Errorf("TotalRegisters = %d, want 3", got)
	}
	if alloc.Threads[0].PR != 1 || alloc.Threads[1].PR != 0 {
		t.Errorf("PRs = %d,%d; want 1,0", alloc.Threads[0].PR, alloc.Threads[1].PR)
	}
	if alloc.SGR != 2 {
		t.Errorf("SGR = %d, want 2", alloc.SGR)
	}
	if alloc.Threads[0].Cost != 0 || alloc.Threads[1].Cost != 0 {
		t.Errorf("non-zero move cost at move-free demand")
	}
}

func TestFigure3TightBudgetForcesSplit(t *testing.T) {
	t1 := ir.MustParse(fig3t1)
	t2 := ir.MustParse(fig3t2)
	// Two registers total: the paper's Figure 3.c shows thread 1 fits in
	// 2 with one move; thread 2 needs 1 shared.
	alloc, err := AllocateARA([]*ir.Func{t1, t2}, Config{NReg: 2})
	if err != nil {
		t.Fatalf("AllocateARA: %v", err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := alloc.TotalRegisters(); got > 2 {
		t.Errorf("TotalRegisters = %d, want <= 2", got)
	}
	total := alloc.Threads[0].Cost + alloc.Threads[1].Cost
	if total == 0 {
		t.Errorf("expected splitting moves under a 2-register budget")
	}
	// Equivalence of both rewritten threads.
	for i, orig := range []*ir.Func{t1, t2} {
		assertEquiv(t, orig, alloc.Threads[i].F)
	}
}

func TestInfeasibleBudget(t *testing.T) {
	t1 := ir.MustParse(fig3t1)
	t2 := ir.MustParse(fig3t2)
	if _, err := AllocateARA([]*ir.Func{t1, t2}, Config{NReg: 1}); err == nil {
		t.Errorf("1 register for two threads succeeded")
	}
}

func TestSRAExactSweep(t *testing.T) {
	f := ir.MustParse(fig3t1)
	alloc, err := AllocateSRA(f, 4, Config{NReg: 16})
	if err != nil {
		t.Fatalf("AllocateSRA: %v", err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(alloc.Threads) != 4 {
		t.Fatalf("threads = %d", len(alloc.Threads))
	}
	for i, th := range alloc.Threads {
		if th.PR != alloc.Threads[0].PR || th.SR != alloc.Threads[0].SR {
			t.Errorf("thread %d asymmetric: %+v", i, th)
		}
		assertEquiv(t, f, th.F)
	}
	// With 16 registers, zero moves must be achievable (demand 4*1+2=6).
	if alloc.Threads[0].Cost != 0 {
		t.Errorf("SRA cost = %d, want 0", alloc.Threads[0].Cost)
	}
	if alloc.TotalRegisters() > 16 {
		t.Errorf("over budget: %d", alloc.TotalRegisters())
	}
}

func TestSRATight(t *testing.T) {
	f := ir.MustParse(fig3t1)
	// 4 threads, 6 registers: PR=1 each + SGR=2 fits move-free.
	alloc, err := AllocateSRA(f, 4, Config{NReg: 6})
	if err != nil {
		t.Fatalf("AllocateSRA: %v", err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// 4 threads, 5 registers: needs splitting (PR=1, SR=1).
	alloc, err = AllocateSRA(f, 4, Config{NReg: 5})
	if err != nil {
		t.Fatalf("AllocateSRA(5): %v", err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if alloc.Threads[0].Cost == 0 {
		t.Errorf("expected moves in 5-register SRA")
	}
	for _, th := range alloc.Threads {
		assertEquiv(t, f, th.F)
	}
}

func TestCriticalWeighting(t *testing.T) {
	// Two identical threads under pressure; making thread 0 critical
	// should shift the register loss toward thread 1.
	mk := func() *ir.Func { return ir.MustParse(fig3t1) }
	base, err := AllocateARA([]*ir.Func{mk(), mk()}, Config{NReg: 4})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	crit, err := AllocateARA([]*ir.Func{mk(), mk()}, Config{NReg: 4, Critical: []float64{100, 1}})
	if err != nil {
		t.Fatalf("critical: %v", err)
	}
	if err := crit.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if crit.Threads[0].Cost > base.Threads[0].Cost {
		t.Errorf("critical thread got worse: %d vs %d moves", crit.Threads[0].Cost, base.Threads[0].Cost)
	}
}

func assertEquiv(t *testing.T, orig, alloc *ir.Func) {
	t.Helper()
	m1 := make([]uint32, 64)
	m2 := make([]uint32, 64)
	r1, err := interp.Run(orig, m1, interp.Options{MaxSteps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Halted {
		t.Skip("original did not halt")
	}
	r2, err := interp.Run(alloc, m2, interp.Options{MaxSteps: 500000})
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Equivalent(r1, r2); err != nil {
		t.Errorf("thread not equivalent: %v\n%s", err, alloc.Format())
	}
}

// Property: random multi-thread workloads allocate within budget, verify
// safely, and every thread's code stays equivalent.
func TestQuickARA(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		funcs := make([]*ir.Func, n)
		for i := range funcs {
			funcs[i] = progen.Generate(rng, progen.Default)
		}
		// Budget between scarce and roomy.
		nreg := 8 + rng.Intn(40)
		alloc, err := AllocateARA(funcs, Config{NReg: nreg})
		if err != nil {
			return true // genuinely infeasible small budgets are fine
		}
		if alloc.TotalRegisters() > nreg {
			t.Logf("seed %d: over budget", seed)
			return false
		}
		if err := alloc.Verify(); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		for i, th := range alloc.Threads {
			m1 := make([]uint32, 64)
			m2 := make([]uint32, 64)
			r1, err := interp.Run(funcs[i], m1, interp.Options{MaxSteps: 20000})
			if err != nil || !r1.Halted {
				continue
			}
			r2, err := interp.Run(th.F, m2, interp.Options{MaxSteps: 400000})
			if err != nil {
				return false
			}
			if interp.Equivalent(r1, r2) != nil {
				t.Logf("seed %d thread %d: not equivalent", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SRA on random programs stays within budget and verifies.
func TestQuickSRA(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		nthd := 2 + rng.Intn(3)
		nreg := 6 + rng.Intn(30)
		alloc, err := AllocateSRA(f, nthd, Config{NReg: nreg})
		if err != nil {
			return true
		}
		if alloc.TotalRegisters() > nreg {
			return false
		}
		return alloc.Verify() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for random small thread pairs with disjoint memory windows,
// the allocation is schedule-independent under EVERY scheduler and memory
// completion order — verified by exhaustive (bounded) model checking.
func TestQuickScheduleIndependence(t *testing.T) {
	small := progen.Config{MaxBlocks: 3, MaxInstrs: 4, MaxVars: 6, CSBDensity: 0.3, StoreWindow: 64}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfgA, cfgB := small, small
		cfgB.StoreBase = 128 // disjoint memory: only register sharing can race
		fa := progen.Generate(rng, cfgA)
		fb := progen.Generate(rng, cfgB)
		alloc, err := AllocateARA([]*ir.Func{fa, fb}, Config{NReg: 24})
		if err != nil {
			return true
		}
		if err := alloc.Verify(); err != nil {
			t.Logf("seed %d: verify: %v", seed, err)
			return false
		}
		res, err := schedcheck.Check(
			[]*ir.Func{alloc.Threads[0].F, alloc.Threads[1].F},
			schedcheck.Options{MaxPaths: 20000, MaxSteps: 20000},
		)
		if err != nil {
			if strings.Contains(err.Error(), "exceeded") {
				return true // diverging random program; not our concern
			}
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return res.Outcomes <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
