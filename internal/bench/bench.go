// Package bench provides the benchmark programs used in the paper's
// evaluation, re-written for the npra IR. The paper draws 11 kernels from
// CommBench, NetBench, Intel example code and the WRAPS packet scheduler;
// the original C sources target the IXP tool chain and proprietary packet
// traces, so these generators reproduce the *structural* properties the
// allocator sees — instruction mix (~10% context-switch instructions),
// loop shape, and the split between register pressure across context
// switches (boundary) and inside non-switch regions (internal):
//
//	md5, wraps_recv, wraps_send — high internal pressure (> 32: the
//	    per-thread baseline partition spills);
//	url, drr, l2l3fwd_*         — moderate pressure;
//	frag, fir2dim, crc32, route — low pressure.
//
// Every program is self-contained: it derives a private memory segment
// from its hardware thread id, fills its input area with an xorshift
// generator (stores — context switches — included, as real receive code
// would), then processes a configurable number of packets, marking each
// with an iter instruction and halting.
package bench

import (
	"sort"

	"npra/internal/core/errs"
	"npra/internal/ir"
)

// Memory layout constants shared with the experiment harness.
const (
	// MemWords is the simulator memory size used throughout.
	MemWords = 16384

	// SegShift: each thread's segment is 1<<SegShift bytes.
	SegShift = 13 // 8 KiB

	// SpillBase/SpillStride: per-thread spill areas for the Chaitin
	// baseline, placed above all thread segments.
	SpillBase   = 4 << SegShift // after 4 thread segments
	SpillStride = 1024
)

// Benchmark is one paper workload.
type Benchmark struct {
	Name        string
	Suite       string // commbench, netbench, intel, wraps
	Description string

	// Extra marks service kernels beyond the paper's 11 (they feed the
	// serve benchmarks' kernel-mix pool); Paper() excludes them so the
	// §9 tables keep the paper's shape.
	Extra bool

	// Gen builds the program processing npkts packets.
	Gen func(npkts int) *ir.Func
}

var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// All returns the benchmarks in a stable order.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Paper returns the paper's 11 evaluation kernels in stable order,
// excluding the extra service kernels.
func Paper() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if !b.Extra {
			out = append(out, b)
		}
	}
	return out
}

// Get returns the named benchmark or an error listing the valid names.
func Get(name string) (*Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	var names []string
	for _, b := range All() {
		names = append(names, b.Name)
	}
	return nil, errs.Invalidf("bench: unknown benchmark %q (have %v)", name, names)
}

// Names returns all benchmark names in stable order.
func Names() []string {
	var names []string
	for _, b := range All() {
		names = append(names, b.Name)
	}
	return names
}

// kern carries the shared scaffolding while a generator emits code.
type kern struct {
	bu   *ir.Builder
	base ir.Reg // byte address of this thread's memory segment
	pkts ir.Reg // remaining packet counter
}

// prologue emits thread-segment derivation and the input-fill loop
// (fillWords words of xorshift32 data at segment offset 0), then opens
// the per-packet loop. Returns the kernel scaffold.
func prologue(name string, npkts, fillWords int) *kern {
	bu := ir.NewBuilder(name)
	bu.Label("entry")
	tidr := bu.TID()
	base := bu.OpI(ir.OpShlI, tidr, SegShift)

	// Fill input area with deterministic pseudo-random words.
	s := bu.Set(0x9E3779B9)
	p := bu.Mov(base)
	i := bu.Set(int64(fillWords))
	bu.Label("fill")
	t := bu.OpI(ir.OpShlI, s, 13)
	bu.Op3To(ir.OpXor, s, s, t)
	bu.OpITo(ir.OpShrI, t, s, 17)
	bu.Op3To(ir.OpXor, s, s, t)
	bu.OpITo(ir.OpShlI, t, s, 5)
	bu.Op3To(ir.OpXor, s, s, t)
	bu.Store(p, 0, s)
	bu.OpITo(ir.OpAddI, p, p, 4)
	bu.OpITo(ir.OpSubI, i, i, 1)
	bu.BNZ(i, "fill")

	pkts := bu.Set(int64(npkts))
	bu.Label("pkt")
	return &kern{bu: bu, base: base, pkts: pkts}
}

// epilogue closes the per-packet loop and halts.
func (k *kern) epilogue() *ir.Func {
	bu := k.bu
	bu.Iter()
	bu.OpITo(ir.OpSubI, k.pkts, k.pkts, 1)
	bu.BNZ(k.pkts, "pkt")
	bu.Label("done")
	bu.Halt()
	return bu.MustFinish()
}

// pktOff returns a register holding base + (pkts*stride mod window) — a
// per-iteration input offset that stays inside the input area.
func (k *kern) pktOff(stride, windowWords int64) ir.Reg {
	bu := k.bu
	o := bu.OpI(ir.OpMulI, k.pkts, stride)
	o = bu.OpI(ir.OpAndI, o, (windowWords-1)*4)
	return bu.Op3(ir.OpAdd, k.base, o)
}

// wideFan loads nLoads input words at [p + i*4], expands them into width
// co-live temporaries (mixed xor/add/shift combinations), and reduces
// them into a single accumulator, which it returns. The temporaries are
// all live simultaneously right after the expansion — this is what drives
// a kernel's *internal* register pressure without touching the pressure
// across the loads themselves.
func (k *kern) wideFan(p ir.Reg, nLoads, width int) ir.Reg {
	bu := k.bu
	words := make([]ir.Reg, nLoads)
	for i := range words {
		words[i] = bu.Load(p, int64(i*4))
	}
	temps := make([]ir.Reg, width)
	ops := []ir.Op{ir.OpXor, ir.OpAdd, ir.OpSub, ir.OpOr}
	for i := range temps {
		a := words[i%nLoads]
		b := words[(i/2+1)%nLoads]
		t := bu.Op3(ops[i%len(ops)], a, b)
		if i%3 == 0 {
			t = bu.OpI(ir.OpShlI, t, int64(1+i%7))
		} else if i%3 == 1 {
			t = bu.OpI(ir.OpShrI, t, int64(1+i%5))
		}
		temps[i] = t
	}
	acc := temps[0]
	for _, t := range temps[1:] {
		acc = bu.Op3(ir.OpXor, acc, t)
	}
	return acc
}
