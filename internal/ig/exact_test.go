package ig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/bitset"
)

func TestExactChromaticKnown(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
		want  int
	}{
		{"empty", func() *Graph { return NewGraph(4) }, 1},
		{"C5", func() *Graph { return buildCycle(5) }, 3},
		{"C6", func() *Graph { return buildCycle(6) }, 2},
		{"K5", func() *Graph {
			g := NewGraph(5)
			for i := 0; i < 5; i++ {
				for j := i + 1; j < 5; j++ {
					g.AddEdge(i, j)
				}
			}
			return g
		}, 5},
		{"petersen", func() *Graph {
			g := NewGraph(10)
			for i := 0; i < 5; i++ {
				g.AddEdge(i, (i+1)%5)     // outer cycle
				g.AddEdge(i, i+5)         // spokes
				g.AddEdge(i+5, (i+2)%5+5) // inner pentagram
			}
			return g
		}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.build().ExactChromatic(nil, 0)
			if got != tc.want {
				t.Errorf("chromatic = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestExactChromaticTooBig(t *testing.T) {
	g := NewGraph(40)
	if got := g.ExactChromatic(nil, 10); got != -1 {
		t.Errorf("oversized graph = %d, want -1", got)
	}
}

func TestExactChromaticSubset(t *testing.T) {
	g := buildCycle(5)
	// A 3-node path within C5 is 2-colorable.
	m := bitset.New(5)
	m.Add(0)
	m.Add(1)
	m.Add(2)
	if got := g.ExactChromatic(m, 0); got != 2 {
		t.Errorf("path chromatic = %d, want 2", got)
	}
}

// Property: on small random graphs, the exact chromatic number is
// sandwiched between the greedy clique bound and the greedy coloring, and
// greedy smallest-last is within 2 colors of optimal at these sizes.
func TestQuickExactVsGreedy(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		exact := g.ExactChromatic(nil, 16)
		if exact < 0 {
			return true
		}
		_, greedy := g.GreedyColor(g.SmallestLastOrder(nil), nil)
		if exact > greedy {
			t.Logf("seed %d: exact %d > greedy %d", seed, exact, greedy)
			return false
		}
		if lb := g.MaxCliqueLower(); lb > exact {
			t.Logf("seed %d: clique %d > exact %d", seed, lb, exact)
			return false
		}
		if greedy > exact+2 {
			t.Logf("seed %d: greedy %d far above exact %d", seed, greedy, exact)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
