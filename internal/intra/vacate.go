package intra

import (
	"fmt"
	"sort"

	"npra/internal/bitset"
)

// errInfeasible reports that a color could not be vacated within the
// current palette (the budget is below the achievable lower bound).
type errInfeasible struct{ msg string }

func (e errInfeasible) Error() string { return "intra: infeasible: " + e.msg }

// IsInfeasible reports whether err marks an unreachable register budget.
func IsInfeasible(err error) bool {
	_, ok := err.(errInfeasible)
	return ok
}

// vacateColor removes color c from the palette entirely: every piece
// colored c is recolored — wholesale when possible, by live-range
// splitting otherwise — then colors above c shift down and the palette
// shrinks by one. This is the engine behind the paper's Reduce-SR
// invocation (and behind Reduce-PR when the whole register disappears).
func (ctx *Context) vacateColor(c int) error {
	var victims []int
	for i, x := range ctx.Pieces {
		if x.Color == c {
			victims = append(victims, i)
		}
	}
	// Recolor small pieces first: they are most likely to slot into an
	// existing color without splitting.
	sort.Slice(victims, func(i, j int) bool {
		return ctx.Pieces[victims[i]].Points.Count() < ctx.Pieces[victims[j]].Points.Count()
	})
	for _, i := range victims {
		if err := ctx.recolorPiece(i, c, false); err != nil {
			return err
		}
	}
	for _, x := range ctx.Pieces {
		if x.Color > c {
			x.Color--
		} else if x.Color == c {
			panic("intra: vacated color still in use")
		}
	}
	if c < ctx.Cap {
		ctx.Cap--
	}
	ctx.Size--
	ctx.cost = -1
	return nil
}

// demoteColor makes private-capable color c shared-only without shrinking
// the palette: pieces that cross a CSB while holding c are moved off it
// (at least at their crossing points — splitting may leave internal
// fragments on c), then c swaps labels with color Cap-1 and the
// private-capable prefix shrinks by one. This is the paper's Reduce-PR
// when the register stays available as a shared one.
func (ctx *Context) demoteColor(c int) error {
	if c < 0 || c >= ctx.Cap {
		return fmt.Errorf("intra: demote color %d outside cap %d", c, ctx.Cap)
	}
	var victims []int
	for i, x := range ctx.Pieces {
		if x.Color == c && ctx.crosses(x) {
			victims = append(victims, i)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		return ctx.Pieces[victims[i]].Points.Count() < ctx.Pieces[victims[j]].Points.Count()
	})
	for _, i := range victims {
		if err := ctx.recolorPiece(i, c, true); err != nil {
			return err
		}
	}
	// Swap labels c <-> Cap-1 so the private-capable colors stay a prefix.
	last := ctx.Cap - 1
	if c != last {
		for _, x := range ctx.Pieces {
			switch x.Color {
			case c:
				x.Color = last
			case last:
				x.Color = c
			}
		}
	}
	ctx.Cap--
	ctx.cost = -1
	return nil
}

// recolorPiece moves piece i off color c. In vacate mode (crossingOnly
// false) c is banned at every point; in demote mode (crossingOnly true)
// c is banned only at the piece's CSB-crossing points, so splitting can
// keep internal fragments on c. It first tries a wholesale recolor (zero
// extra moves); failing that it splits the piece point-by-point, greedily
// extending single-color runs to keep the number of color changes — i.e.
// inserted moves — small. Points live across a CSB are restricted to the
// private-capable prefix [0, Cap).
func (ctx *Context) recolorPiece(i, c int, crossingOnly bool) error {
	x := ctx.Pieces[i]
	var pts []int
	pts = x.Points.Elems(pts)
	crossing := ctx.crossingPoints(x)

	// freeAt[k][col]: col is usable at pts[k].
	freeAt := make([][]bool, len(pts))
	freq := make([]int, ctx.Size) // how many points each color is free at
	for k, p := range pts {
		free := make([]bool, ctx.Size)
		ctx.colorsFreeAt(p, x.Var, free)
		isCross := crossing != nil && crossing.Has(p)
		if isCross {
			for col := ctx.Cap; col < ctx.Size; col++ {
				free[col] = false
			}
		}
		if !crossingOnly || isCross {
			free[c] = false
		}
		freeAt[k] = free
		for col, ok := range free {
			if ok {
				freq[col]++
			}
		}
	}

	// Wholesale recolor: a color (other than c) free everywhere.
	for col := 0; col < ctx.Size; col++ {
		if col != c && freq[col] == len(pts) {
			x.Color = col
			ctx.cost = -1
			return nil
		}
	}

	// Neighbor-recolor heuristic (paper Fig. 7.b): if some candidate
	// color is blocked by exactly one piece, and that blocker can itself
	// move to a different color for free, displace it and take the color —
	// still zero inserted moves.
	if ctx.tryDisplace(x, c, crossing) {
		return nil
	}

	// Split: assign a color per point, extending the current run while
	// possible and preferring globally-often-free colors at run starts.
	assign := make([]int, len(pts))
	cur := -1
	for k := range pts {
		if cur >= 0 && freeAt[k][cur] {
			assign[k] = cur
			continue
		}
		best, bestFreq := -1, -1
		for col := 0; col < ctx.Size; col++ {
			if freeAt[k][col] && freq[col] > bestFreq {
				best, bestFreq = col, freq[col]
			}
		}
		if best < 0 {
			// Dead end. At a CSB-crossing point this can happen even
			// within the paper's bounds when an *internal* piece squats
			// on a private-capable color; evict it to a spare color. In
			// demote mode (crossingOnly) the banned color stays in the
			// palette as a shared color, so the squatter may take it.
			spareBan := c
			if crossingOnly {
				spareBan = -1
			}
			best = ctx.evictSquatter(x, pts[k], spareBan)
			if best < 0 {
				return errInfeasible{fmt.Sprintf(
					"no color for v%d at point %d (cap=%d size=%d banned=%d)",
					x.Var, pts[k], ctx.Cap, ctx.Size, c)}
			}
		}
		cur = best
		assign[k] = cur
	}

	// Rebuild: one piece per color used.
	byColor := make(map[int]bitset.Set)
	for k, p := range pts {
		s, ok := byColor[assign[k]]
		if !ok {
			s = bitset.New(ctx.np)
			byColor[assign[k]] = s
		}
		s.Add(p)
	}
	var cols []int
	for col := range byColor {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	first := true
	for _, col := range cols {
		if first {
			x.Color = col
			x.Points = byColor[col]
			base := x.Var * ctx.np
			x.Points.ForEach(func(pt int) { ctx.pieceOf[base+pt] = int32(i) })
			first = false
			continue
		}
		ctx.addPiece(&Piece{Var: x.Var, Color: col, Points: byColor[col]})
	}
	ctx.cost = -1
	return nil
}

// evictSquatter frees a private-capable color for crossing piece x at its
// crossing point p: it finds a co-live piece y that does not itself cross
// p but occupies a color g < Cap, and a spare color h free at p, then
// splits y's point p off into a fresh piece colored h. Returns the freed
// color g, or -1 if no eviction is possible. The extra moves this costs
// are picked up by MoveCost (and usually removed again by coalesce when a
// cheaper candidate color wins).
func (ctx *Context) evictSquatter(x *Piece, p, banned int) int {
	crossing := ctx.crossingPoints(x)
	if crossing == nil || !crossing.Has(p) {
		return -1
	}
	// Spare color h: unused at p by anyone (x has no assignment at p yet).
	rawFree := make([]bool, ctx.Size)
	ctx.colorsFreeAt(p, x.Var, rawFree)
	h := -1
	for col := 0; col < ctx.Size; col++ {
		if col != banned && rawFree[col] {
			h = col
			break
		}
	}
	if h < 0 {
		return -1
	}
	// Squatter y: co-live at p, not crossing p, on a private color != banned.
	g := -1
	var victim *Piece
	var victimIdx int
	ctx.A.Live.At[p].ForEach(func(v int) {
		if g >= 0 || v == x.Var {
			return
		}
		i := ctx.PieceAt(v, p)
		if i < 0 {
			return
		}
		y := ctx.Pieces[i]
		if y.Color >= ctx.Cap || y.Color == banned {
			return
		}
		if cr := ctx.A.Crossings[v]; cr != nil && cr.Has(p) {
			return // y legitimately needs a private color here
		}
		g, victim, victimIdx = y.Color, y, i
	})
	if g < 0 {
		return -1
	}
	// Split point p off victim onto color h.
	victim.Points.Remove(p)
	if victim.Points.Empty() {
		// Single-point piece: just recolor it in place.
		victim.Points.Add(p)
		victim.Color = h
		ctx.cost = -1
		return g
	}
	np := &Piece{Var: victim.Var, Color: h, Points: bitsetWith(ctx.np, p)}
	_ = victimIdx
	ctx.addPiece(np)
	ctx.cost = -1
	return g
}

// tryDisplace attempts the paper's neighbor-recolor heuristic for piece x
// (leaving banned color c): find a candidate color c' whose only blocker
// among x's co-live pieces is a single piece q, where q can wholesale-move
// to yet another color; displace q, give x color c'. Both recolorings are
// whole-piece, so the move cost stays zero. Returns success.
func (ctx *Context) tryDisplace(x *Piece, c int, crossing bitset.Set) bool {
	isCrossing := crossing != nil && !crossing.Empty()
	limit := ctx.Size
	if isCrossing {
		limit = ctx.Cap
	}
	for cand := 0; cand < limit; cand++ {
		if cand == c || cand == x.Color {
			continue
		}
		// Find the blockers of cand over x's points.
		blockers := make(map[int]bool)
		tooMany := false
		x.Points.ForEach(func(p int) {
			if tooMany {
				return
			}
			ctx.A.Live.At[p].ForEach(func(v int) {
				if v == x.Var {
					return
				}
				if i := ctx.PieceAt(v, p); i >= 0 && ctx.Pieces[i].Color == cand {
					blockers[i] = true
					if len(blockers) > 1 {
						tooMany = true
					}
				}
			})
		})
		if tooMany || len(blockers) != 1 {
			continue
		}
		var qi int
		for i := range blockers {
			qi = i
		}
		q := ctx.Pieces[qi]
		if q.Color == c {
			continue // q is itself being vacated; let its own turn handle it
		}
		// Find a free wholesale color for q (not c, not cand, and x's
		// current color does not count as free either: x still holds it
		// until we reassign below — but x is moving to cand, so x's old
		// color IS usable by q as long as no other piece blocks it...
		// keep it conservative and exclude it).
		qLimit := ctx.Size
		if ctx.crosses(q) {
			qLimit = ctx.Cap
		}
		for qc := 0; qc < qLimit; qc++ {
			if qc == c || qc == cand || qc == q.Color || qc == x.Color {
				continue
			}
			if ctx.canTake(q, qc) {
				q.Color = qc
				x.Color = cand
				ctx.cost = -1
				return true
			}
		}
	}
	return false
}

func bitsetWith(n, p int) bitset.Set {
	s := bitset.New(n)
	s.Add(p)
	return s
}

// coalesce is the paper's "eliminate unnecessary moves" pass: repeatedly
// merge a split piece into a sibling piece of the same variable whenever
// the sibling's color is legal across the whole piece. Merging never
// increases the move count and strictly reduces the piece count, so the
// loop terminates.
func (ctx *Context) coalesce() {
	byVar := make(map[int][]int)
	for i, x := range ctx.Pieces {
		byVar[x.Var] = append(byVar[x.Var], i)
	}
	changedAny := false
	for _, idxs := range byVar {
		if len(idxs) < 2 {
			continue
		}
		for again := true; again; {
			again = false
			for _, i := range idxs {
				x := ctx.Pieces[i]
				if x == nil {
					continue
				}
				for _, j := range idxs {
					y := ctx.Pieces[j]
					if y == nil || i == j {
						continue
					}
					if x.Color != y.Color && !ctx.canTake(x, y.Color) {
						continue
					}
					// Merge x into y.
					y.Points.Or(x.Points)
					base := x.Var * ctx.np
					x.Points.ForEach(func(pt int) { ctx.pieceOf[base+pt] = int32(j) })
					ctx.Pieces[i] = nil
					changedAny, again = true, true
					break
				}
			}
		}
	}
	if changedAny {
		var kept []*Piece
		for _, x := range ctx.Pieces {
			if x != nil {
				kept = append(kept, x)
			}
		}
		ctx.Pieces = kept
		ctx.rebuildPieceIndex()
	}
}

// canTake reports whether piece x could legally adopt color col.
func (ctx *Context) canTake(x *Piece, col int) bool {
	if col < 0 || col >= ctx.Size {
		return false
	}
	if col >= ctx.Cap && ctx.crosses(x) {
		return false
	}
	ok := true
	x.Points.ForEach(func(p int) {
		if !ok {
			return
		}
		ctx.A.Live.At[p].ForEach(func(v int) {
			if v != x.Var && ctx.ColorAt(v, p) == col {
				ok = false
			}
		})
	})
	return ok
}
