package estimate

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/ig"
	"npra/internal/ir"
	"npra/internal/progen"
)

// figure3Thread1 is the paper's Figure 3.a thread 1: a (v0) is live across
// the ctx; b (v1) and c (v2) are internal; any pair interferes. The paper
// derives PR=1, and shows 3 registers without splitting (MaxR) but only 2
// co-live at any point (MinR).
const figure3Thread1 = `
func fig3t1
entry:
	set v0, 1        ; a =
	ctx
	bz v0, L1
	set v1, 2        ; b =
	add v1, v0, v1   ; = a+b
	set v2, 3        ; c =
	br L2
L1:
	set v2, 4        ; c =
	add v2, v0, v2   ; = a+c
	set v1, 5        ; b =
L2:
	add v1, v1, v2   ; = b+c
	load v3, [v1+0]
	store [64], v3
	halt
`

func mustCompute(t testing.TB, a *ig.Analysis) *Estimate {
	t.Helper()
	est, err := Compute(a)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func mustComputeJoint(t testing.TB, a *ig.Analysis) *Estimate {
	t.Helper()
	est, err := ComputeJoint(a)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestFigure3Bounds(t *testing.T) {
	a := ig.Analyze(ir.MustParse(figure3Thread1))
	est := mustCompute(t, a)
	if est.MinPR != 1 {
		t.Errorf("MinPR = %d, want 1 (only a crosses the ctx)", est.MinPR)
	}
	if est.MinR != 2 {
		t.Errorf("MinR = %d, want 2 (at most two co-live)", est.MinR)
	}
	if est.MaxPR != 1 {
		t.Errorf("MaxPR = %d, want 1", est.MaxPR)
	}
	if est.MaxR != 3 {
		t.Errorf("MaxR = %d, want 3 (a,b,c form a clique)", est.MaxR)
	}
	if est.MaxSR() != 2 {
		t.Errorf("MaxSR = %d, want 2", est.MaxSR())
	}
	assertValidEstimate(t, a, est)
}

func TestFigure3Joint(t *testing.T) {
	a := ig.Analyze(ir.MustParse(figure3Thread1))
	est := mustComputeJoint(t, a)
	if est.MaxR != 3 {
		t.Errorf("joint MaxR = %d, want 3", est.MaxR)
	}
	assertValidEstimate(t, a, est)
}

// assertValidEstimate checks the structural invariants every estimation
// must satisfy: proper GIG coloring, boundary colors < MaxPR, all colors
// < MaxR, bounds ordered, clique lower bounds respected.
func assertValidEstimate(t *testing.T, a *ig.Analysis, est *Estimate) {
	t.Helper()
	if u, v := a.GIG.VerifyColoring(est.Colors); u >= 0 {
		t.Fatalf("improper coloring: v%d and v%d share color %d", u, v, est.Colors[u])
	}
	for v := 0; v < a.NumVars; v++ {
		c := est.Colors[v]
		if !a.Alive[v] {
			if c >= 0 {
				t.Errorf("dead v%d colored %d", v, c)
			}
			continue
		}
		if c < 0 {
			t.Errorf("live v%d uncolored", v)
			continue
		}
		if c >= est.MaxR {
			t.Errorf("v%d color %d >= MaxR %d", v, c, est.MaxR)
		}
		if a.Boundary[v] && c >= est.MaxPR {
			t.Errorf("boundary v%d color %d >= MaxPR %d", v, c, est.MaxPR)
		}
	}
	if est.MinPR > est.MaxPR || est.MinR > est.MaxR || est.MaxPR > est.MaxR || est.MinPR > est.MinR {
		t.Errorf("bounds out of order: %+v", est.Bounds)
	}
}

func TestNoCSBFunction(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 1
	set v1, 2
	add v2, v0, v1
	xor v0, v2, v1
	halt`)
	a := ig.Analyze(f)
	est := mustCompute(t, a)
	if est.MinPR != 0 || est.MaxPR != 0 {
		t.Errorf("PR bounds = %d/%d, want 0/0 for CSB-free code", est.MinPR, est.MaxPR)
	}
	if est.MaxR < 2 {
		t.Errorf("MaxR = %d, want >= 2", est.MaxR)
	}
	assertValidEstimate(t, a, est)
}

func TestDegenerateTinyFunction(t *testing.T) {
	f := ir.MustParse("a:\n halt")
	a := ig.Analyze(f)
	est := mustCompute(t, a)
	if est.MaxR != 0 || est.MinR != 0 {
		t.Errorf("empty function bounds: %+v", est.Bounds)
	}
}

// Property: on random programs, both estimators produce valid estimates,
// and the PR-first estimator never exceeds the joint estimator's MaxPR.
func TestQuickEstimationInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		a := ig.Analyze(f)
		pf, err := Compute(a)
		if err != nil {
			return false
		}
		jt, err := ComputeJoint(a)
		if err != nil {
			return false
		}
		for _, est := range []*Estimate{pf, jt} {
			if u, _ := a.GIG.VerifyColoring(est.Colors); u >= 0 {
				return false
			}
			if est.MinPR > est.MaxPR || est.MinR > est.MaxR || est.MaxPR > est.MaxR {
				return false
			}
			for v := 0; v < a.NumVars; v++ {
				c := est.Colors[v]
				if a.Alive[v] && (c < 0 || c >= est.MaxR) {
					return false
				}
				if a.Boundary[v] && c >= est.MaxPR {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: MinPR-first estimation keeps MaxPR at the BIG's chromatic
// need, which can never exceed the number of boundary nodes.
func TestQuickMaxPRBounded(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		a := ig.Analyze(f)
		est, err := Compute(a)
		if err != nil {
			return false
		}
		nb := a.BoundaryNodes().Count()
		return est.MaxPR <= nb && est.MinPR <= nb
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the paper's bounds sandwich the true chromatic number of the
// GIG on small random programs: MinR (max point pressure, a clique bound)
// <= chromatic <= MaxR (the witness coloring). Same for the BIG and PR.
func TestQuickBoundsSandwichChromatic(t *testing.T) {
	small := progen.Config{MaxBlocks: 4, MaxInstrs: 5, MaxVars: 7, CSBDensity: 0.25, StoreWindow: 64}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, small)
		a := ig.Analyze(f)
		est, err := Compute(a)
		if err != nil {
			return false
		}

		live := a.BoundaryNodes()
		for v := 0; v < a.NumVars; v++ {
			if a.Alive[v] {
				live.Add(v)
			}
		}
		chi := a.GIG.ExactChromatic(live, 16)
		if chi >= 0 {
			if est.MinR > chi {
				t.Logf("seed %d: MinR %d > chromatic %d", seed, est.MinR, chi)
				return false
			}
			if chi > est.MaxR {
				t.Logf("seed %d: chromatic %d > MaxR %d", seed, chi, est.MaxR)
				return false
			}
		}
		chiB := a.BIG.ExactChromatic(a.BoundaryNodes(), 16)
		if chiB >= 0 {
			if est.MinPR > chiB {
				t.Logf("seed %d: MinPR %d > boundary chromatic %d", seed, est.MinPR, chiB)
				return false
			}
			if chiB > est.MaxPR {
				t.Logf("seed %d: boundary chromatic %d > MaxPR %d", seed, chiB, est.MaxPR)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// reconcile repairs the repairable orderings (MaxR >= MaxPR, MinR >=
// MinPR) and types the two it cannot: a coloring that claims to beat the
// pressure lower bounds wraps ErrBoundsInverted.
func TestReconcileBoundsInverted(t *testing.T) {
	repaired := &Estimate{Bounds: Bounds{MinPR: 2, MinR: 1, MaxPR: 5, MaxR: 3}}
	if err := repaired.reconcile(); err != nil {
		t.Fatalf("repairable bounds rejected: %v", err)
	}
	if repaired.MaxR != 5 || repaired.MinR != 2 {
		t.Errorf("bounds not repaired: %+v", repaired.Bounds)
	}
	for _, bad := range []Bounds{
		{MinPR: 6, MinR: 6, MaxPR: 5, MaxR: 8}, // MaxPR < MinPR
		{MinPR: 2, MinR: 9, MaxPR: 5, MaxR: 8}, // MaxR < MinR
	} {
		e := &Estimate{Bounds: bad}
		if err := e.reconcile(); !errors.Is(err, ErrBoundsInverted) {
			t.Errorf("bounds %+v: err = %v, want ErrBoundsInverted", bad, err)
		}
	}
}
