// Package encoding serializes npra programs to a compact binary object
// format — the equivalent of the micro-engine's loadable control store
// image — and back. The format is self-describing and versioned:
//
//	header:  magic "NPRA", u32 version, u16 name, u32 flags, u32 numRegs,
//	         u32 numBlocks
//	block:   u16 label, u32 numInstrs, then 16-byte instruction records
//	record:  u8 opcode, u8 reserved, u16 def, u16 a, u16 b, u64 immOrTarget
//
// Register fields use 0xFFFF for "absent". Branch instructions store the
// target *block index* in the immediate slot; everything else stores the
// two's-complement 64-bit immediate, losslessly. Strings are u16 length +
// UTF-8 bytes. All integers are little-endian.
package encoding

import (
	"encoding/binary"
	"fmt"

	"npra/internal/core/errs"
	"npra/internal/ir"
)

// Version is the current object format version.
const Version = 1

var magic = [4]byte{'N', 'P', 'R', 'A'}

const (
	noReg16   = 0xFFFF
	flagPhys  = 1 << 0
	recordLen = 16
)

// Encode serializes a built function.
func Encode(f *ir.Func) ([]byte, error) {
	if !f.Built() {
		return nil, errs.Invalidf("encoding: function %s not built", f.Name)
	}
	if f.NumRegs > noReg16 {
		return nil, errs.Invalidf("encoding: %d registers exceed the 16-bit field", f.NumRegs)
	}
	var out []byte
	out = append(out, magic[:]...)
	out = appendU32(out, Version)
	out, err := appendString(out, f.Name)
	if err != nil {
		return nil, err
	}
	flags := uint32(0)
	if f.Physical {
		flags |= flagPhys
	}
	out = appendU32(out, flags)
	out = appendU32(out, uint32(f.NumRegs))
	out = appendU32(out, uint32(len(f.Blocks)))

	for _, b := range f.Blocks {
		out, err = appendString(out, b.Label)
		if err != nil {
			return nil, err
		}
		out = appendU32(out, uint32(len(b.Instrs)))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			rec, err := encodeInstr(f, in)
			if err != nil {
				return nil, fmt.Errorf("encoding: %s %q instruction %d: %w", f.Name, b.Label, i, err)
			}
			out = append(out, rec[:]...)
		}
	}
	return out, nil
}

func encodeInstr(f *ir.Func, in *ir.Instr) ([recordLen]byte, error) {
	var rec [recordLen]byte
	rec[0] = byte(in.Op)
	putReg := func(off int, r ir.Reg) error {
		if r == ir.NoReg {
			binary.LittleEndian.PutUint16(rec[off:], noReg16)
			return nil
		}
		if r < 0 || int(r) >= noReg16 {
			return fmt.Errorf("register %d out of encodable range", r)
		}
		binary.LittleEndian.PutUint16(rec[off:], uint16(r))
		return nil
	}
	if err := putReg(2, in.Def); err != nil {
		return rec, err
	}
	if err := putReg(4, in.A); err != nil {
		return rec, err
	}
	if err := putReg(6, in.B); err != nil {
		return rec, err
	}
	if in.IsBranch() {
		ti := f.BlockByLabel(in.Target)
		if ti < 0 {
			return rec, fmt.Errorf("unresolved branch target %q", in.Target)
		}
		binary.LittleEndian.PutUint64(rec[8:], uint64(ti))
		return rec, nil
	}
	binary.LittleEndian.PutUint64(rec[8:], uint64(in.Imm))
	return rec, nil
}

// Decode parses an object image back into a built function.
func Decode(data []byte) (*ir.Func, error) {
	r := &reader{data: data}
	var m [4]byte
	if err := r.bytes(m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errs.Invalidf("encoding: bad magic %q", m[:])
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, errs.Invalidf("encoding: unsupported version %d (have %d)", ver, Version)
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	flags, err := r.u32()
	if err != nil {
		return nil, err
	}
	numRegs, err := r.u32()
	if err != nil {
		return nil, err
	}
	nBlocks, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nBlocks > 1<<20 || numRegs > noReg16 {
		return nil, errs.Invalidf("encoding: implausible header (blocks=%d regs=%d)", nBlocks, numRegs)
	}

	f := &ir.Func{Name: name, NumRegs: int(numRegs), Physical: flags&flagPhys != 0}
	type patch struct {
		block, instr int
		target       uint32
	}
	var patches []patch
	var labels []string
	for bi := 0; bi < int(nBlocks); bi++ {
		label, err := r.str()
		if err != nil {
			return nil, err
		}
		labels = append(labels, label)
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > 1<<22 {
			return nil, errs.Invalidf("encoding: implausible instruction count %d", n)
		}
		b := &ir.Block{Label: label}
		for k := 0; k < int(n); k++ {
			var rec [recordLen]byte
			if err := r.bytes(rec[:]); err != nil {
				return nil, err
			}
			in, tgt, isBr, err := decodeInstr(rec)
			if err != nil {
				return nil, fmt.Errorf("encoding: block %q instruction %d: %w", label, k, err)
			}
			if isBr {
				patches = append(patches, patch{block: bi, instr: k, target: tgt})
			}
			b.Instrs = append(b.Instrs, in)
		}
		f.Blocks = append(f.Blocks, b)
	}
	if r.rem() != 0 {
		return nil, errs.Invalidf("encoding: %d trailing bytes", r.rem())
	}
	for _, p := range patches {
		if int(p.target) >= len(labels) {
			return nil, errs.Invalidf("encoding: branch to block %d of %d", p.target, len(labels))
		}
		f.Blocks[p.block].Instrs[p.instr].Target = labels[p.target]
	}
	if err := f.Build(); err != nil {
		return nil, fmt.Errorf("encoding: decoded function invalid: %w", err)
	}
	return f, nil
}

func decodeInstr(rec [recordLen]byte) (ir.Instr, uint32, bool, error) {
	in := ir.Instr{Op: ir.Op(rec[0])}
	getReg := func(off int) ir.Reg {
		v := binary.LittleEndian.Uint16(rec[off:])
		if v == noReg16 {
			return ir.NoReg
		}
		return ir.Reg(v)
	}
	in.Def = getReg(2)
	in.A = getReg(4)
	in.B = getReg(6)
	raw := binary.LittleEndian.Uint64(rec[8:])
	if in.IsBranch() {
		if raw > 1<<20 {
			return in, 0, true, fmt.Errorf("implausible branch target %d", raw)
		}
		return in, uint32(raw), true, nil
	}
	in.Imm = int64(raw)
	return in, 0, false, nil
}

// --- low-level helpers ---

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return nil, fmt.Errorf("encoding: string too long (%d bytes)", len(s))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) rem() int { return len(r.data) - r.off }

func (r *reader) bytes(dst []byte) error {
	if r.rem() < len(dst) {
		return fmt.Errorf("encoding: truncated input at offset %d", r.off)
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
	return nil
}

func (r *reader) u32() (uint32, error) {
	var b [4]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *reader) u16() (uint16, error) {
	var b [2]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if err := r.bytes(b); err != nil {
		return "", err
	}
	return string(b), nil
}
