package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"npra/internal/faultinject"
	"npra/internal/resilience"
	"npra/internal/serve"
)

// TestRunChaos drives a short soak through every fault kind at once
// and checks the classification invariants: the three terminal classes
// partition the calls, the client survives to the availability gate,
// and no 400/422 was ever retried.
func TestRunChaos(t *testing.T) {
	s := serve.New(serve.Config{})
	backend := httptest.NewServer(s.Handler())
	defer func() {
		backend.Close()
		s.Close()
	}()
	proxy := faultinject.NewChaosProxy(backend.URL, faultinject.ChaosConfig{
		ResetRate:    0.1,
		TruncateRate: 0.1,
		GarbleRate:   0.1,
		BurstEvery:   10,
		BurstLen:     2,
	})
	front := httptest.NewServer(proxy)
	defer front.Close()

	rep, err := RunChaos(context.Background(), ChaosOptions{
		URL:         front.URL,
		DirectURL:   backend.URL,
		MaxRequests: 80,
		TenantWorkers: map[string]int{
			"a": 3,
			"b": 3,
		},
		Resilience: resilience.Config{
			MaxAttempts: 8,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if rep.Calls != 80 {
		t.Fatalf("calls = %d, want 80", rep.Calls)
	}
	if got := rep.FirstTryOK + rep.RetriedOK + rep.HardFailed; got != rep.Calls {
		t.Fatalf("classes don't partition: %d+%d+%d != %d",
			rep.FirstTryOK, rep.RetriedOK, rep.HardFailed, rep.Calls)
	}
	if rep.RetriedOK == 0 {
		t.Error("no retried-then-succeeded calls under 30%+ fault rates — the retry path never ran")
	}
	if rep.BadRetries != 0 {
		t.Errorf("bad retries = %d (triggers %v), want 0", rep.BadRetries, rep.RetriesByTrigger)
	}
	if rep.TenantOK["a"]+rep.TenantOK["b"] != rep.FirstTryOK+rep.RetriedOK {
		t.Errorf("tenant successes %v don't sum to the success classes", rep.TenantOK)
	}
	// Loose availability floor for a short run: the 8-attempt budget
	// should clear ~32% per-attempt fault odds with room to spare.
	if err := rep.Check(0.99, 0, 0); err != nil {
		t.Errorf("availability check: %v", err)
	}
	if len(rep.Metrics) == 0 {
		t.Error("backend metrics scrape came back empty")
	}
}
