package liveness

import (
	"errors"
	"testing"

	"npra/internal/ir"
)

// paperExample is the two-thread example from Figure 3.a of the paper
// (thread 1): a is live across the ctx, b and c are internal.
const paperThread1 = `
func t1
entry:
	set v0, 1        ; a =
	ctx
	bz v0, L1
	set v1, 2        ; b =
	add v3, v0, v1   ; = a+b
	set v2, 3        ; c =
	br L2
L1:
	set v2, 4        ; c =
	add v3, v0, v2   ; = a+c
	set v1, 5        ; b =
L2:
	add v3, v1, v2   ; = b+c
	load v4, [v3+0]  ; load (CSB)
	store [16], v4
	halt
`

func TestPaperExample(t *testing.T) {
	f := ir.MustParse(paperThread1)
	li := Compute(f)

	// Find the ctx point.
	ctxP := -1
	for p := 0; p < f.NumPoints(); p++ {
		if f.Instr(p).Op == ir.OpCtx {
			ctxP = p
			break
		}
	}
	if ctxP < 0 {
		t.Fatal("no ctx instruction")
	}
	across, err := li.LiveAcross(ctxP)
	if err != nil {
		t.Fatal(err)
	}
	if !across.Has(0) {
		t.Errorf("a (v0) not live across ctx")
	}
	for _, v := range []int{1, 2, 3} {
		if across.Has(v) {
			t.Errorf("v%d live across ctx, want internal", v)
		}
	}
	// As in the paper: only one variable (a) is live across the ctx;
	// at the load, v3 dies feeding the address and v4 is the def.
	if got := li.CSBPressureMax(); got != 1 {
		t.Errorf("RegPCSBmax = %d, want 1", got)
	}
	// At most two variables are co-live at any point apart from the
	// a/b/c overlap: pressure should be 3 (a,b,c co-live around "c=").
	if got := li.PressureMax(); got != 3 {
		t.Errorf("RegPmax = %d, want 3", got)
	}
}

func TestLoadDefNotLiveAcross(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 64
	load v1, [v0+0]
	addi v2, v1, 1
	store [v0+4], v2
	halt`)
	li := Compute(f)
	loadP := 1
	if f.Instr(loadP).Op != ir.OpLoad {
		t.Fatal("layout changed")
	}
	across, err := li.LiveAcross(loadP)
	if err != nil {
		t.Fatal(err)
	}
	if across.Has(1) {
		t.Errorf("load destination v1 counted as live across its own CSB")
	}
	if !across.Has(0) {
		t.Errorf("v0 (reused for the later store) should be live across the load")
	}
}

func TestLoopLiveness(t *testing.T) {
	f := ir.MustParse(`
top:
	set v0, 0
	set v1, 10
loop:
	add v0, v0, v1
	subi v1, v1, 1
	bnz v1, loop
	store [0], v0
	halt`)
	li := Compute(f)
	// v0 and v1 must be live around the back edge: live-in of loop head.
	head := f.Blocks[1].Start()
	if !li.In[head].Has(0) || !li.In[head].Has(1) {
		t.Errorf("loop head live-in = %v, want v0,v1", li.In[head].Elems(nil))
	}
	// After the store, nothing is live.
	last := f.NumPoints() - 1
	if !li.Out[last].Empty() {
		t.Errorf("halt live-out nonempty: %v", li.Out[last].Elems(nil))
	}
}

func TestDeadDefInterferes(t *testing.T) {
	// v1's definition is dead, but at that point v0 is live-through;
	// At must contain both so they get different registers.
	f := ir.MustParse(`
a:
	set v0, 1
	set v1, 99
	store [8], v0
	halt`)
	li := Compute(f)
	p := 1 // set v1
	if !li.At[p].Has(0) || !li.At[p].Has(1) {
		t.Errorf("At[set v1] = %v, want {v0,v1}", li.At[p].Elems(nil))
	}
	if li.Out[p].Has(1) {
		t.Errorf("dead def v1 in live-out")
	}
}

func TestUseWithoutDefLiveAtEntry(t *testing.T) {
	f := ir.MustParse(`
a:
	add v1, v0, v0
	store [0], v1
	halt`)
	li := Compute(f)
	if !li.In[0].Has(0) {
		t.Errorf("v0 not live-in at entry")
	}
}

func TestPointsPartition(t *testing.T) {
	f := ir.MustParse(paperThread1)
	li := Compute(f)
	pts := li.Points()
	// Each live var's point set must be nonempty and agree with At.
	for p := 0; p < f.NumPoints(); p++ {
		li.At[p].ForEach(func(v int) {
			if !pts[v].Has(p) {
				t.Fatalf("Points(v%d) missing point %d", v, p)
			}
		})
	}
	total := 0
	for _, s := range pts {
		total += s.Count()
	}
	sum := 0
	for _, s := range li.At {
		sum += s.Count()
	}
	if total != sum {
		t.Errorf("points total %d != At total %d", total, sum)
	}
}

// LiveAcross is only defined at context-switch boundaries; asking about
// any other point is a caller bug surfaced as a typed error, not a panic.
func TestLiveAcrossNonCSB(t *testing.T) {
	f := ir.MustParse(paperThread1)
	li := Compute(f)
	for p := 0; p < f.NumPoints(); p++ {
		if f.Instr(p).IsCSB() {
			continue
		}
		if _, err := li.LiveAcross(p); !errors.Is(err, ErrNotCSB) {
			t.Fatalf("point %d (%v): err = %v, want ErrNotCSB", p, f.Instr(p).Op, err)
		}
	}
}
