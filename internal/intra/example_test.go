package intra_test

import (
	"fmt"
	"log"

	"npra/internal/intra"
	"npra/internal/ir"
)

// ExampleAllocator_Solve shrinks one thread's register budget below its
// move-free demand: the allocator pays with split live ranges (moves).
func ExampleAllocator_Solve() {
	f := ir.MustParse(`
func t
entry:
	set v0, 1
	ctx
	set v1, 2
	add v2, v0, v1
	store [0], v2
	halt`)

	al := intra.MustNew(f)
	b := al.Bounds()
	fmt.Printf("bounds: MinPR=%d MinR=%d MaxPR=%d MaxR=%d\n",
		b.MinPR, b.MinR, b.MaxPR, b.MaxR)

	free, err := al.Solve(b.MaxPR, b.MaxR-b.MaxPR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at the move-free demand: %d moves\n", free.Cost)
	// Output:
	// bounds: MinPR=1 MinR=3 MaxPR=1 MaxR=3
	// at the move-free demand: 0 moves
}
