package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"npra/internal/core"
	"npra/internal/interp"
	"npra/internal/ir"
)

// determinismCase derives one request from a seed: 1..3 progen threads,
// a varying register budget, dump enabled so the response carries the
// rewritten assembly.
func determinismCase(seed int64) *core.WireRequest {
	req := &core.WireRequest{
		NReg: 32 + int(seed%3)*16,
		Dump: true,
	}
	nthreads := 1 + int(seed%3)
	for i := 0; i < nthreads; i++ {
		req.Threads = append(req.Threads, core.WireThread{
			Progen: &core.WireProgen{Seed: seed*10 + int64(i)},
		})
	}
	return req
}

// checkServedAgainstDirect compares a served response against the
// direct engine result for the same request: identical grants, and a
// rewritten program that executes equivalently thread by thread.
// Error-returning (not t.Fatal) so worker goroutines can call it.
func checkServedAgainstDirect(out *Response, direct *core.Allocation) error {
	if out.Degraded {
		return fmt.Errorf("served result degraded (%s)", out.Cause)
	}
	if out.SGR != direct.SGR || out.TotalRegisters != direct.TotalRegisters() {
		return fmt.Errorf("served (sgr %d, total %d) vs direct (sgr %d, total %d)",
			out.SGR, out.TotalRegisters, direct.SGR, direct.TotalRegisters())
	}
	if len(out.Threads) != len(direct.Threads) {
		return fmt.Errorf("served %d threads vs direct %d", len(out.Threads), len(direct.Threads))
	}
	for i, wt := range out.Threads {
		dt := direct.Threads[i]
		if wt.PR != dt.PR || wt.SR != dt.SR || wt.Cost != dt.Cost || wt.PrivBase != dt.PrivBase {
			return fmt.Errorf("thread %d: served (pr %d, sr %d, cost %d, base %d) vs direct (pr %d, sr %d, cost %d, base %d)",
				i, wt.PR, wt.SR, wt.Cost, wt.PrivBase, dt.PR, dt.SR, dt.Cost, dt.PrivBase)
		}
		served, err := ir.Parse(wt.Asm)
		if err != nil {
			return fmt.Errorf("thread %d: served asm does not parse: %v", i, err)
		}
		// Textual identity is the strongest check — the served rewrite is
		// the direct rewrite, byte for byte.
		if got, want := served.Format(), dt.F.Format(); got != want {
			return fmt.Errorf("thread %d: served rewrite differs from direct:\n%s\nvs\n%s", i, got, want)
		}
		// And behavioral equivalence, through the interpreter.
		memA := make([]uint32, 1<<12)
		memB := make([]uint32, 1<<12)
		opt := interp.Options{TID: uint32(i)}
		ra, err := interp.Run(served, memA, opt)
		if err != nil {
			return fmt.Errorf("thread %d: running served program: %v", i, err)
		}
		rb, err := interp.Run(dt.F, memB, opt)
		if err != nil {
			return fmt.Errorf("thread %d: running direct program: %v", i, err)
		}
		if err := interp.Equivalent(ra, rb); err != nil {
			return fmt.Errorf("thread %d: served and direct programs diverge: %v", i, err)
		}
	}
	return nil
}

// TestServeDeterminismSequential posts 100 derived requests one at a
// time (batching disabled) and checks each against the direct engine.
func TestServeDeterminismSequential(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 1})
	for seed := int64(0); seed < 100; seed++ {
		req := determinismCase(seed)
		funcs, err := req.Funcs()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.AllocateARA(funcs, core.Config{NReg: req.NReg})
		if err != nil {
			t.Fatalf("seed %d: direct: %v", seed, err)
		}
		blob, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		out := mustOK(t, ts.URL, string(blob))
		if out.Batched != 1 {
			t.Fatalf("seed %d: batching disabled but batched = %d", seed, out.Batched)
		}
		if err := checkServedAgainstDirect(out, direct); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestServeDeterminismConcurrent posts the same 100 requests from a
// worker pool against a batching server with engine parallelism on:
// jobs land in whatever batches the collector forms, and every response
// must still match the direct engine bit for bit.
func TestServeDeterminismConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4, MaxQueue: 128, Workers: 4})

	direct := make(map[int64]*core.Allocation, 100)
	for seed := int64(0); seed < 100; seed++ {
		req := determinismCase(seed)
		funcs, err := req.Funcs()
		if err != nil {
			t.Fatal(err)
		}
		al, err := core.AllocateARA(funcs, core.Config{NReg: req.NReg, Workers: 2})
		if err != nil {
			t.Fatalf("seed %d: direct: %v", seed, err)
		}
		direct[seed] = al
	}

	const workers = 8
	seeds := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				blob, err := json.Marshal(determinismCase(seed))
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/allocate", "application/json", strings.NewReader(string(blob)))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("seed %d: status %d body %s", seed, resp.StatusCode, body)
					continue
				}
				var out Response
				if err := json.Unmarshal(body, &out); err != nil {
					t.Errorf("seed %d: %v", seed, err)
					continue
				}
				if err := checkServedAgainstDirect(&out, direct[seed]); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		}()
	}
	for seed := int64(0); seed < 100; seed++ {
		seeds <- seed
	}
	close(seeds)
	wg.Wait()
}
