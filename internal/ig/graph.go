// Package ig builds and colors the three interference graphs of the
// paper (§3.2): the Global Interference Graph (GIG) over all live ranges,
// the Boundary Interference Graph (BIG) over live ranges that cross
// context-switch boundaries, and per-NSR Internal Interference Graphs
// (IIGs).
package ig

import (
	"math/bits"
	"sort"

	"npra/internal/bitset"
)

// Graph is an undirected interference graph over nodes [0, N).
type Graph struct {
	N   int
	adj []bitset.Set
}

// NewGraph returns an empty graph on n nodes.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, adj: make([]bitset.Set, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return u != v && g.adj[u].Has(v) }

// Neighbors returns u's adjacency set. Callers must not modify it.
func (g *Graph) Neighbors(u int) bitset.Set { return g.adj[u] }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return g.adj[u].Count() }

// AddClique inserts all pairwise edges among the members of s. The
// insertion is word-level: every member's adjacency row ORs in the whole
// member set at once (minus the self-loop bit) instead of pairwise
// AddEdge calls.
func (g *Graph) AddClique(s bitset.Set) {
	for u := s.NextSet(0); u >= 0; u = s.NextSet(u + 1) {
		adj := g.adj[u]
		n := len(s)
		if n > len(adj) {
			n = len(adj)
		}
		for i := 0; i < n; i++ {
			adj[i] |= s[i]
		}
		adj.Remove(u)
	}
}

// Edges returns the number of edges, counted in a single word-level
// popcount pass over the adjacency storage.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		for _, w := range a {
			total += bits.OnesCount64(w)
		}
	}
	return total / 2
}

// Reset empties every adjacency row in place so the graph's storage can
// be reused for a fresh build (repeated Analyze-style construction
// without reallocating N row sets).
func (g *Graph) Reset() {
	for _, a := range g.adj {
		a.Clear()
	}
}

// SmallestLastOrder returns the nodes of the induced subgraph on `members`
// in smallest-last order: repeatedly remove a minimum-degree node; the
// reverse removal order is a good greedy coloring order (optimal on
// interval and chordal graphs, and ≤ degeneracy+1 colors in general).
// If members is nil, all nodes participate.
func (g *Graph) SmallestLastOrder(members bitset.Set) []int {
	memberSet := members
	if memberSet == nil {
		memberSet = bitset.New(g.N)
		for i := 0; i < g.N; i++ {
			memberSet.Add(i)
		}
	}
	in := make([]bool, g.N)
	var nodes []int
	for i := memberSet.NextSet(0); i >= 0; i = memberSet.NextSet(i + 1) {
		in[i] = true
		nodes = append(nodes, i)
	}
	// Subgraph degrees via word-level intersection counts, not a
	// per-neighbor membership scan.
	deg := make([]int, g.N)
	for _, u := range nodes {
		deg[u] = g.adj[u].IntersectCount(memberSet)
	}
	removed := make([]bool, g.N)
	order := make([]int, 0, len(nodes))
	for range nodes {
		best, bestDeg := -1, 1<<30
		for _, u := range nodes {
			if !removed[u] && deg[u] < bestDeg {
				best, bestDeg = u, deg[u]
			}
		}
		removed[best] = true
		order = append(order, best)
		adj := g.adj[best]
		for v := adj.NextSet(0); v >= 0; v = adj.NextSet(v + 1) {
			if in[v] && !removed[v] {
				deg[v]--
			}
		}
	}
	// Reverse: color highest-degeneracy nodes first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// GreedyColor colors the nodes in the given order with the lowest color
// not used by an already-colored neighbor, honoring pre-assigned colors in
// `colors` (entries ≥ 0 are fixed; pass -1 for free nodes). It returns the
// updated colors and the total number of colors in use.
func (g *Graph) GreedyColor(order []int, colors []int) ([]int, int) {
	if colors == nil {
		colors = make([]int, g.N)
		for i := range colors {
			colors[i] = -1
		}
	}
	maxColor := -1
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	used := make([]bool, g.N+1)
	for _, u := range order {
		if colors[u] >= 0 {
			continue
		}
		for i := range used {
			used[i] = false
		}
		adj := g.adj[u]
		for v := adj.NextSet(0); v >= 0; v = adj.NextSet(v + 1) {
			if c := colors[v]; c >= 0 && c < len(used) {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[u] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return colors, maxColor + 1
}

// GreedyColorMasked is GreedyColor restricted to the induced subgraph on
// mask: when coloring a node, only neighbors inside mask are considered.
// Used to color each IIG independently of the already-colored BIG, as the
// paper's Figure 7 does before its merge step.
func (g *Graph) GreedyColorMasked(order []int, colors []int, mask bitset.Set) ([]int, int) {
	if colors == nil {
		colors = make([]int, g.N)
		for i := range colors {
			colors[i] = -1
		}
	}
	maxColor := -1
	used := make([]bool, g.N+1)
	for _, u := range order {
		if colors[u] >= 0 {
			continue
		}
		for i := range used {
			used[i] = false
		}
		adj := g.adj[u]
		for v := adj.NextSet(0); v >= 0; v = adj.NextSet(v + 1) {
			if !mask.Has(v) {
				continue
			}
			if c := colors[v]; c >= 0 && c < len(used) {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[u] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return colors, maxColor + 1
}

// VerifyColoring returns the first conflicting edge (u, v) whose endpoints
// share a color, or (-1, -1) if the coloring is proper. Nodes colored -1
// are ignored.
func (g *Graph) VerifyColoring(colors []int) (int, int) {
	return g.VerifyColoringFrom(colors, 0)
}

// VerifyColoringFrom is VerifyColoring restricted to conflicts whose
// lower endpoint is >= from. Repair loops that prove the prefix clean
// use it to resume scanning instead of restarting at node 0.
func (g *Graph) VerifyColoringFrom(colors []int, from int) (int, int) {
	if from < 0 {
		from = 0
	}
	for u := from; u < g.N; u++ {
		if colors[u] < 0 {
			continue
		}
		adj := g.adj[u]
		for v := adj.NextSet(u + 1); v >= 0; v = adj.NextSet(v + 1) {
			if colors[v] == colors[u] {
				return u, v
			}
		}
	}
	return -1, -1
}

// MaxCliqueLower returns a fast lower bound on the chromatic number: the
// largest clique found greedily around high-degree vertices.
func (g *Graph) MaxCliqueLower() int {
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })
	best := 0
	for _, seed := range order {
		clique := []int{seed}
		g.adj[seed].ForEach(func(v int) {
			for _, u := range clique {
				if !g.HasEdge(u, v) {
					return
				}
			}
			clique = append(clique, v)
		})
		if len(clique) > best {
			best = len(clique)
		}
	}
	return best
}
