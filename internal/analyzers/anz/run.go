package anz

import (
	"fmt"
	"go/token"
	"sort"
	"sync"

	"npra/internal/core/errs"
)

// Run executes every analyzer over every package, applies //lint:ignore
// suppression, verifies directives, and returns the surviving
// diagnostics sorted by position.
//
// The packages are loaded and type-checked exactly once (by the
// caller's LoadConfig.Load) and shared by every analyzer: analyzers
// run concurrently, each walking the package list sequentially so any
// cross-package RunState needs no locking. Loaded ASTs, type info and
// the FileSet are read-only during analysis; the one mutable shared
// structure — the per-package directive sets, consumed by
// Pass.Invariant — locks internally. Diagnostics are merged in suite
// order and sorted, so the output is bit-identical to a serial run.
//
// Unused-directive verification only makes sense when the consuming
// analyzers actually ran, so it is enabled when the set includes
// panicfree (the primary consumer of //lint:invariant); single-analyzer
// runs — anztest fixtures — otherwise still verify well-formedness.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	checkUnused := false
	for _, a := range analyzers {
		if a.Name == "panicfree" {
			checkUnused = true
		}
	}

	// Parse directives once per package; shared by all analyzers.
	dirsByPkg := make([]*directiveSet, len(pkgs))
	dirsByFile := make(map[string]*directiveSet)
	for i, pkg := range pkgs {
		ds := parseDirectives(pkg.Fset, pkg.Files)
		dirsByPkg[i] = ds
		for f := range ds.byFile {
			dirsByFile[f] = ds
		}
		// Register every file so cross-package Finish findings can be
		// routed to the owning set even when it holds no directives.
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if _, ok := dirsByFile[name]; !ok {
				dirsByFile[name] = ds
			}
		}
	}

	// One goroutine per analyzer over the shared package set.
	raw := make([][]Diagnostic, len(analyzers))
	errors := make([]error, len(analyzers))
	var wg sync.WaitGroup
	for ai, a := range analyzers {
		wg.Add(1)
		go func(ai int, a *Analyzer) {
			defer wg.Done()
			var state any
			if a.NewRunState != nil {
				state = a.NewRunState()
			}
			var sink []Diagnostic
			for i, pkg := range pkgs {
				pass := &Pass{
					Analyzer: a,
					Path:     pkg.Path,
					Fset:     pkg.Fset,
					Files:    pkg.Files,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					state:    state,
					dirs:     dirsByPkg[i],
					sink:     &sink,
				}
				if err := a.Run(pass); err != nil {
					errors[ai] = errs.Internalf("analyzers: %s on %s: %v", a.Name, pkg.Path, err)
					return
				}
			}
			if a.Finish != nil {
				report := func(pos token.Position, format string, args ...any) {
					sink = append(sink, Diagnostic{Pos: pos, Analyzer: a.Name, Message: fmt.Sprintf(format, args...)})
				}
				if err := a.Finish(state, report); err != nil {
					errors[ai] = errs.Internalf("analyzers: %s finish: %v", a.Name, err)
					return
				}
			}
			raw[ai] = sink
		}(ai, a)
	}
	wg.Wait()
	for _, err := range errors {
		if err != nil {
			return nil, err
		}
	}

	// Merge in suite order, then apply suppression serially (directive
	// used-marking is not concurrent-safe and must be deterministic).
	var out []Diagnostic
	for _, sink := range raw {
		for _, d := range sink {
			ds := dirsByFile[d.Pos.Filename]
			if ds != nil && ds.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, ds := range dirsByPkg {
		out = append(out, ds.verify(checkUnused)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
