// Pipeline: the paper's Table 3 scenario 2 — a complete forwarding port
// pair (l2l3fwd receive + send) sharing a processing unit with two MD5
// digest threads. The digest threads are performance-critical and blow
// past the 32-register baseline partition; this example shows the
// baseline paying in spills versus the balancing allocator paying (almost)
// nothing, measured on the cycle-level simulator.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"npra/internal/bench"
	"npra/internal/chaitin"
	"npra/internal/core"
	"npra/internal/ir"
	"npra/internal/sim"
)

const packets = 64

func main() {
	mix := []string{"l2l3fwd_recv", "l2l3fwd_send", "md5", "md5"}
	gen := func() []*ir.Func {
		var out []*ir.Func
		for _, name := range mix {
			b, err := bench.Get(name)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, b.Gen(packets))
		}
		return out
	}

	// Baseline: each thread confined to its fixed 32-register partition.
	var baseThreads []*sim.Thread
	for i, f := range gen() {
		phys := make([]ir.Reg, 32)
		for k := range phys {
			phys[k] = ir.Reg(i*32 + k)
		}
		res, err := chaitin.Allocate(f, chaitin.Options{
			Phys: phys, SpillBase: bench.SpillBase, SpillStride: bench.SpillStride,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Spilled > 0 {
			fmt.Printf("baseline %-13s spilled %d live ranges (%d extra memory instructions)\n",
				mix[i], res.Spilled, res.SpillCode)
		}
		baseThreads = append(baseThreads, &sim.Thread{F: res.F})
	}

	// Sharing: the paper's balancing allocator over the whole 128-register file.
	alloc, err := core.AllocateARA(gen(), core.Config{NReg: 128})
	if err != nil {
		log.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsharing: SGR=%d, total registers %d/128\n", alloc.SGR, alloc.TotalRegisters())
	var shareThreads []*sim.Thread
	for _, t := range alloc.Threads {
		shareThreads = append(shareThreads, &sim.Thread{
			F: t.F, ProtectLo: t.PrivBase, ProtectHi: t.PrivBase + t.PR,
		})
	}

	cfg := sim.Config{NReg: 128, MemWords: bench.MemWords}
	baseRes, err := sim.Run(baseThreads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	shareRes, err := sim.Run(shareThreads, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %12s %12s %9s\n", "thread", "base cyc/it", "share cyc/it", "change")
	for i, name := range mix {
		b := baseRes.Threads[i].CyclesPerIter()
		s := shareRes.Threads[i].CyclesPerIter()
		fmt.Printf("%-14s %12.1f %12.1f %+8.1f%%\n", name, b, s, 100*(b-s)/b)
	}
	fmt.Printf("\nPU utilization: baseline %.1f%%, sharing %.1f%%\n",
		100*baseRes.Utilization(), 100*shareRes.Utilization())
}
