// Package atomfix is the atomicmix fixture suite: a field mixed
// between sync/atomic and plain access (true positive), the
// constructor publish-after-init exemption, an all-atomic field, an
// all-plain field, and the sync/atomic typed-wrapper idiom (all
// near-miss negatives).
package atomfix

import "sync/atomic"

// Counter mixes an atomic increment with a plain read: the half-
// converted-counter race the analyzer exists for.
type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Snapshot() int64 {
	return c.n // want `plain access to atomfix\.Counter\.n`
}

// NewCounter is the near miss: constructors publish after init, so the
// plain write cannot race.
func NewCounter(seed int64) *Counter {
	c := &Counter{}
	c.n = seed
	return c
}

// Reset demonstrates suppression: a justified single-threaded phase.
func (c *Counter) Reset() {
	//lint:ignore atomicmix single-threaded test teardown; no concurrent writers exist at reset time
	c.n = 0
}

// Gauge is all-atomic: no finding.
type Gauge struct {
	v int64
}

func (g *Gauge) Set(x int64) { atomic.StoreInt64(&g.v, x) }
func (g *Gauge) Get() int64  { return atomic.LoadInt64(&g.v) }

// Local is all-plain: never shared atomically, no finding.
type Local struct {
	m int
}

func (l *Local) Bump()    { l.m++ }
func (l *Local) Val() int { return l.m }

// Typed uses the sync/atomic wrapper type: every access goes through
// its methods, atomic by construction — no plain access is possible.
type Typed struct {
	hits atomic.Int64
}

func (t *Typed) Touch()       { t.hits.Add(1) }
func (t *Typed) Count() int64 { return t.hits.Load() }
