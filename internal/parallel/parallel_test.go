package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { t.Fatal("fn called"); return 0 }); len(got) != 0 {
		t.Errorf("len = %d", len(got))
	}
}

// One worker must mean a plain serial ascending loop on the calling
// goroutine — the property core relies on for -j 1 reproducing the
// sequential allocator exactly.
func TestSingleWorkerSerialAscending(t *testing.T) {
	var order []int
	ForEach(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak atomic.Int64
	ForEach(workers, n, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent calls, cap %d", p, workers)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int32, n)
	ForEach(8, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestMapErrLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapErr(workers, 20, func(i int) (int, error) {
			if i%2 == 1 {
				return 0, fmt.Errorf("fail %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail 1" {
			t.Errorf("workers=%d: err = %v, want fail 1", workers, err)
		}
	}
	got, err := MapErr(4, 5, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		workers, n int
		want       [][2]int
	}{
		{1, 5, [][2]int{{0, 5}}},
		{2, 5, [][2]int{{0, 3}, {3, 5}}},
		{3, 10, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{8, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{4, 0, nil},
	}
	for _, c := range cases {
		got := Chunks(c.workers, c.n)
		if len(got) != len(c.want) {
			t.Errorf("Chunks(%d,%d) = %v, want %v", c.workers, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Chunks(%d,%d)[%d] = %v, want %v", c.workers, c.n, i, got[i], c.want[i])
			}
		}
	}
	// Every index covered exactly once, in order.
	chunks := Chunks(7, 23)
	next := 0
	for _, ch := range chunks {
		if ch[0] != next {
			t.Fatalf("gap at %d: %v", next, chunks)
		}
		next = ch[1]
	}
	if next != 23 {
		t.Fatalf("coverage ends at %d", next)
	}
}
