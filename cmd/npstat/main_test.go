package main

import "testing"

func TestRunText(t *testing.T) {
	if err := run("frag,md5", 8, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunDot(t *testing.T) {
	for _, kind := range []string{"cfg", "gig", "nsr"} {
		if err := run("frag", 8, kind, nil); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 8, "", nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("frag", 8, "zzz", nil); err == nil {
		t.Error("bad dot kind accepted")
	}
	if err := run("frag", 8, "", []string{"x.asm"}); err == nil {
		t.Error("bench+files accepted")
	}
}
