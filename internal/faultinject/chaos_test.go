package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const chaosBackendBody = `{"ok":true,"payload":"0123456789abcdef0123456789abcdef"}`

func chaosBackend() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, chaosBackendBody)
	}))
}

func chaosFront(t *testing.T, cfg ChaosConfig) (*ChaosProxy, *httptest.Server) {
	t.Helper()
	backend := chaosBackend()
	t.Cleanup(backend.Close)
	proxy := NewChaosProxy(backend.URL, cfg)
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)
	return proxy, front
}

func TestChaosProxyCleanForward(t *testing.T) {
	proxy, front := chaosFront(t, ChaosConfig{})
	resp, err := http.Post(front.URL+"/allocate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("clean forward: %v", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != chaosBackendBody {
		t.Fatalf("body = %q, want backend body verbatim", blob)
	}
	if st := proxy.Stats(); st.Requests != 1 || len(st.Fired) != 0 {
		t.Fatalf("stats = %+v, want 1 request and no faults", st)
	}
}

func TestChaosProxyReset(t *testing.T) {
	proxy, front := chaosFront(t, ChaosConfig{ResetRate: 1})
	_, err := http.Post(front.URL+"/allocate", "application/json", strings.NewReader("{}"))
	if err == nil {
		t.Fatal("reset fault produced a clean response, want a transport error")
	}
	if got := proxy.Stats().Fired[SiteNetReset]; got != 1 {
		t.Fatalf("reset fired = %d, want 1", got)
	}
}

func TestChaosProxyTruncate(t *testing.T) {
	proxy, front := chaosFront(t, ChaosConfig{TruncateRate: 1})
	resp, err := http.Post(front.URL+"/allocate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("headers should arrive before the cut: %v", err)
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("truncated body read succeeded, want unexpected EOF")
	}
	if got := proxy.Stats().Fired[SiteNetTruncate]; got != 1 {
		t.Fatalf("truncate fired = %d, want 1", got)
	}
}

func TestChaosProxyGarble(t *testing.T) {
	proxy, front := chaosFront(t, ChaosConfig{GarbleRate: 1})
	resp, err := http.Post(front.URL+"/allocate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("garbled body must still read cleanly (length preserved): %v", err)
	}
	if len(blob) != len(chaosBackendBody) {
		t.Fatalf("garbled length = %d, want %d (corruption, not truncation)", len(blob), len(chaosBackendBody))
	}
	if string(blob) == chaosBackendBody {
		t.Fatal("garble fault left the body intact")
	}
	if got := proxy.Stats().Fired[SiteNetGarble]; got != 1 {
		t.Fatalf("garble fired = %d, want 1", got)
	}
}

func TestChaosProxyBurst(t *testing.T) {
	// Of every 5 requests, the first 2 (seq%5 in {0,1}) are 503s.
	proxy, front := chaosFront(t, ChaosConfig{BurstEvery: 5, BurstLen: 2})
	var codes []int
	for i := 0; i < 10; i++ {
		resp, err := http.Post(front.URL+"/allocate", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	fives := 0
	for _, c := range codes {
		if c == http.StatusServiceUnavailable {
			fives++
		}
	}
	if fives != 4 {
		t.Fatalf("codes = %v: %d bursts over 10 requests, want 4 (2 per 5)", codes, fives)
	}
	if got := proxy.Stats().Fired[SiteNetBurst]; got != 4 {
		t.Fatalf("burst fired = %d, want 4", got)
	}
}

func TestChaosProxyLatency(t *testing.T) {
	proxy, front := chaosFront(t, ChaosConfig{LatencyRate: 1, Latency: 60 * time.Millisecond})
	start := time.Now()
	resp, err := http.Post(front.URL+"/allocate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= ~60ms of injected latency", elapsed)
	}
	if got := proxy.Stats().Fired[SiteNetLatency]; got != 1 {
		t.Fatalf("latency fired = %d, want 1", got)
	}
}

// TestChaosProxyDeterministic runs the same mixed-fault schedule twice
// with one seed and once with another: same seed → identical fired
// counts, different seed → a different sequence somewhere.
func TestChaosProxyDeterministic(t *testing.T) {
	run := func(seed uint64) map[Site]int64 {
		backend := chaosBackend()
		defer backend.Close()
		proxy := NewChaosProxy(backend.URL, ChaosConfig{
			Seed: seed, ResetRate: 0.2, TruncateRate: 0.2, GarbleRate: 0.2,
		})
		front := httptest.NewServer(proxy)
		defer front.Close()
		for i := 0; i < 50; i++ {
			resp, err := http.Post(front.URL+"/allocate", "application/json", strings.NewReader("{}"))
			if err != nil {
				continue // reset faults surface here
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return proxy.Stats().Fired
	}
	a, b, c := run(7), run(7), run(8)
	for _, site := range NetSites() {
		if a[site] != b[site] {
			t.Fatalf("site %s: same seed fired %d vs %d", site, a[site], b[site])
		}
	}
	same := true
	for _, site := range NetSites() {
		if a[site] != c[site] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical fault counts across all sites")
	}
}
