// Package leakfix is the goleak fixture suite: for each bug class — a
// goroutine whose CFG cannot reach termination (literal and named
// spawn) and a blocking send on an unbuffered channel whose receiver
// may abandon it — one true positive and near-miss negatives the
// analyzer must stay silent on.
package leakfix

import "context"

// spinForever spawns a literal that loops with no reachable exit.
func spinForever() {
	go func() { // want `goroutine cannot terminate`
		for {
		}
	}()
}

// politeLoop is the near miss: the loop has a reachable return.
func politeLoop(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			}
		}
	}()
}

// drains is a second near miss: for-range over a channel terminates
// when the channel is closed.
func drains(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// spin cannot terminate; spawning it by name is caught through the
// cross-package run state rather than the literal's CFG.
func spin() {
	for {
	}
}

func spawnSpin() {
	go spin() // want `goroutine spin cannot terminate`
}

// worker is the near miss for named spawns: it returns when jobs is
// closed.
func worker(jobs chan int) {
	for range jobs {
	}
}

func spawnWorker(jobs chan int) {
	go worker(jobs)
}

// hedgedCall loses its worker: the parent may take ctx.Done and
// return, leaving the unbuffered send blocked forever.
func hedgedCall(ctx context.Context) int {
	ch := make(chan int)
	go func() {
		ch <- slow() // want `blocking send on unbuffered ch`
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return -1
	}
}

// bufferedHedge is the near miss: the 1-buffered channel lets the send
// complete even after the receiver abandons it.
func bufferedHedge(ctx context.Context) int {
	ch := make(chan int, 1)
	go func() {
		ch <- slow()
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return -1
	}
}

// guaranteedDrain is a second near miss: the receive is unconditional,
// so the send always completes.
func guaranteedDrain() int {
	ch := make(chan int)
	go func() {
		ch <- slow()
	}()
	return <-ch
}

func slow() int { return 42 }

// metricsPump demonstrates suppression: a process-lifetime goroutine
// with a justified directive reports nothing.
func metricsPump() {
	//lint:ignore goleak process-lifetime pump owned by main; it is meant to stop only at exit
	go func() {
		for {
		}
	}()
}
