package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"npra/internal/core"
	"npra/internal/faultinject"
)

// newTestServer starts a Server behind an httptest listener and wires
// both into t's cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// progenBody builds an ARA request over progen specs, one per seed.
func progenBody(t *testing.T, nreg int, timeoutMS int64, seeds ...int64) string {
	t.Helper()
	req := core.WireRequest{NReg: nreg, TimeoutMS: timeoutMS}
	for _, seed := range seeds {
		req.Threads = append(req.Threads, core.WireThread{Progen: &core.WireProgen{Seed: seed}})
	}
	blob, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/allocate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func decodeOK(t *testing.T, resp *http.Response, blob []byte) *Response {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, blob)
	}
	var out Response
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("decoding %s: %v", blob, err)
	}
	return &out
}

func decodeErr(t *testing.T, resp *http.Response, blob []byte, wantStatus int, wantKind string) *core.WireError {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, wantStatus, blob)
	}
	var we core.WireError
	if err := json.Unmarshal(blob, &we); err != nil {
		t.Fatalf("non-JSON error body %s: %v", blob, err)
	}
	if we.Kind != wantKind {
		t.Fatalf("error kind %q, want %q (body %s)", we.Kind, wantKind, blob)
	}
	if we.Error == "" {
		t.Fatal("error body has no message")
	}
	return &we
}

// mustOK posts body and decodes the expected 200 response.
func mustOK(t *testing.T, url, body string) *Response {
	t.Helper()
	resp, blob := post(t, url, body)
	return decodeOK(t, resp, blob)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAllocateHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, blob := post(t, ts.URL, progenBody(t, 48, 0, 1, 2, 3))
	out := decodeOK(t, resp, blob)
	if out.Degraded {
		t.Errorf("unexpected degraded result (cause %q)", out.Cause)
	}
	if len(out.Threads) != 3 {
		t.Fatalf("got %d threads, want 3", len(out.Threads))
	}
	if out.TotalRegisters > 48 {
		t.Errorf("TotalRegisters = %d exceeds the budget 48", out.TotalRegisters)
	}
	for i, th := range out.Threads {
		if th.PR < 1 {
			t.Errorf("thread %d: pr = %d, want >= 1", i, th.PR)
		}
		if th.Asm != "" {
			t.Errorf("thread %d: asm present without dump", i)
		}
	}
	if out.Shared || out.Cached {
		t.Errorf("first request marked shared=%v cached=%v", out.Shared, out.Cached)
	}
	if out.Batched != 1 {
		t.Errorf("lone request ran in a batch of %d", out.Batched)
	}
	if out.ElapsedMS <= 0 {
		t.Errorf("elapsed_ms = %v, want > 0", out.ElapsedMS)
	}
}

func TestAllocateSRA(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"mode":"sra","nreg":64,"nthd":4,"threads":[{"progen":{"seed":9}}]}`
	resp, blob := post(t, ts.URL, req)
	out := decodeOK(t, resp, blob)
	if len(out.Threads) != 4 {
		t.Fatalf("sra nthd=4 returned %d threads", len(out.Threads))
	}
}

func TestAllocateDefaultNReg(t *testing.T) {
	_, ts := newTestServer(t, Config{NReg: 40})
	resp, blob := post(t, ts.URL, `{"threads":[{"progen":{"seed":5}}]}`)
	out := decodeOK(t, resp, blob)
	if out.NReg != 40 {
		t.Errorf("nreg defaulted to %d, want the server's 40", out.NReg)
	}
}

func TestMalformedRequests400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"truncated", `{"nreg": 32`},
		{"not json", `hello`},
		{"wrong type", `{"nreg": "many"}`},
		{"unknown field", `{"nreg": 32, "bogus": 1, "threads":[{"progen":{"seed":1}}]}`},
		{"trailing garbage", `{"nreg":32,"threads":[{"progen":{"seed":1}}]} {"again":true}`},
		{"no threads", `{"nreg": 32, "threads": []}`},
		{"bad asm", `{"nreg": 32, "threads":[{"asm":"func x\nentry:\n\tbogus v0\n"}]}`},
		{"bad progen shape", `{"nreg": 32, "threads":[{"progen":{"seed":1,"max_depth":99}}]}`},
		{"empty body", ``},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, blob := post(t, ts.URL, tc.body)
			decodeErr(t, resp, blob, http.StatusBadRequest, "invalid")
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/allocate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	decodeErr(t, resp, blob, http.StatusMethodNotAllowed, "invalid")
}

func TestOversizedBody400(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := progenBody(t, 32, 0, 1, 2, 3, 4, 5, 6, 7, 8)
	if len(big) <= 128 {
		t.Fatalf("test body only %d bytes, grow it", len(big))
	}
	resp, blob := post(t, ts.URL, big)
	decodeErr(t, resp, blob, http.StatusBadRequest, "invalid")
}

func TestDeadline504(t *testing.T) {
	faultinject.Arm(faultinject.SiteServe, faultinject.Plan{Mode: faultinject.Delay, Delay: 300 * time.Millisecond})
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{})
	resp, blob := post(t, ts.URL, progenBody(t, 32, 20, 1))
	decodeErr(t, resp, blob, http.StatusGatewayTimeout, "timeout")
}

func TestInjectedError500(t *testing.T) {
	faultinject.Arm(faultinject.SiteServe, faultinject.Plan{Mode: faultinject.Error})
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{})
	resp, blob := post(t, ts.URL, progenBody(t, 32, 0, 1))
	decodeErr(t, resp, blob, http.StatusInternalServerError, "internal")
}

func TestInjectedPanicBecomesTyped500(t *testing.T) {
	faultinject.Arm(faultinject.SiteServe, faultinject.Plan{Mode: faultinject.Panic})
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{})
	resp, blob := post(t, ts.URL, progenBody(t, 32, 0, 1))
	we := decodeErr(t, resp, blob, http.StatusInternalServerError, "internal")
	if !strings.Contains(we.Error, "panic") {
		t.Errorf("panic 500 does not say so: %q", we.Error)
	}
}

func TestDegradedSurfaces(t *testing.T) {
	faultinject.Arm(faultinject.SiteFinalize, faultinject.Plan{Mode: faultinject.Error})
	t.Cleanup(faultinject.Reset)
	s, ts := newTestServer(t, Config{})
	resp, blob := post(t, ts.URL, progenBody(t, 32, 0, 21, 22))
	out := decodeOK(t, resp, blob)
	if !out.Degraded {
		t.Fatal("injected finalize fault did not surface degraded:true")
	}
	if out.Cause == "" {
		t.Error("degraded result carries no cause")
	}
	if got := s.Metrics().Degraded; got != 1 {
		t.Errorf("metrics degraded = %d, want 1", got)
	}

	// Degraded results must not be cached: the identical request leads a
	// fresh flight (and succeeds once the fault is cleared).
	faultinject.Reset()
	resp, blob = post(t, ts.URL, progenBody(t, 32, 0, 21, 22))
	out = decodeOK(t, resp, blob)
	if out.Degraded {
		t.Error("degraded result was served from cache after the fault cleared")
	}
	if out.Shared || out.Cached {
		t.Errorf("degraded flight was cached (shared=%v cached=%v)", out.Shared, out.Cached)
	}
}

func TestSingleflightResultCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := progenBody(t, 48, 0, 31, 32)

	first := mustOK(t, ts.URL, body)
	second := mustOK(t, ts.URL, body)
	if first.Shared || first.Cached {
		t.Errorf("first request shared=%v cached=%v", first.Shared, first.Cached)
	}
	if !second.Shared || !second.Cached {
		t.Errorf("identical repeat not served from cache (shared=%v cached=%v)", second.Shared, second.Cached)
	}
	if first.SGR != second.SGR || first.TotalRegisters != second.TotalRegisters {
		t.Error("cached response differs from the original")
	}
	snap := s.Metrics()
	if snap.SingleflightMisses != 1 || snap.SingleflightCachedHits != 1 {
		t.Errorf("misses=%d cachedHits=%d, want 1/1", snap.SingleflightMisses, snap.SingleflightCachedHits)
	}
	if snap.Batches != 1 {
		t.Errorf("engine ran %d times for two identical requests, want 1", snap.Batches)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: -1})
	body := progenBody(t, 48, 0, 41)
	mustOK(t, ts.URL, body)
	out := mustOK(t, ts.URL, body)
	if out.Cached {
		t.Error("result cache disabled but repeat request hit it")
	}
	if got := s.Metrics().Batches; got != 2 {
		t.Errorf("engine ran %d times, want 2 with caching disabled", got)
	}
}

func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 2})
	a := progenBody(t, 48, 0, 51)
	b := progenBody(t, 48, 0, 52)
	c := progenBody(t, 48, 0, 53)
	mustOK(t, ts.URL, a)
	mustOK(t, ts.URL, b)
	mustOK(t, ts.URL, a) // touch a: LRU order is now b, a
	mustOK(t, ts.URL, c) // evicts b
	if out := mustOK(t, ts.URL, a); !out.Cached {
		t.Error("recently-used entry was evicted")
	}
	if out := mustOK(t, ts.URL, b); out.Cached {
		t.Error("least-recently-used entry survived past capacity")
	}
	snap := s.Metrics()
	if snap.SingleflightCachedHits != 2 {
		t.Errorf("cached hits = %d, want 2", snap.SingleflightCachedHits)
	}
}

// TestOverload429 wedges the engine on a slow job, fills the one-slot
// queue, and checks the next leader is refused with 429 + Retry-After —
// while the wedged requests still complete.
func TestOverload429(t *testing.T) {
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 400 * time.Millisecond, Count: 1})
	t.Cleanup(faultinject.Reset)
	s, ts := newTestServer(t, Config{MaxQueue: 1, MaxBatch: 1})

	var wg sync.WaitGroup
	codes := make([]int, 2)
	launch := func(i int, seed int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/allocate", "application/json",
				strings.NewReader(progenBody(t, 32, 0, seed)))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}()
	}

	launch(0, 61) // picked up by the batcher, wedged in the engine
	waitFor(t, "the engine to pick up the first job", func() bool {
		snap := s.Metrics()
		return snap.Batches == 1 && snap.QueueDepth == 0
	})
	launch(1, 62) // sits in the queue
	waitFor(t, "the queue to fill", func() bool { return s.Metrics().QueueDepth == 1 })

	resp, blob := post(t, ts.URL, progenBody(t, 32, 0, 63))
	decodeErr(t, resp, blob, http.StatusTooManyRequests, "overload")
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	if got := s.Metrics().Overloads; got != 1 {
		t.Errorf("overload counter = %d, want 1", got)
	}

	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("wedged request %d finished with %d, want 200", i, code)
		}
	}
}

// TestBatchingForms wedges the engine so jobs accumulate, then checks
// the collector drains them as one batch and stamps each response with
// the batch size.
func TestBatchingForms(t *testing.T) {
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 300 * time.Millisecond, Count: 1})
	t.Cleanup(faultinject.Reset)
	s, ts := newTestServer(t, Config{MaxBatch: 4, MaxQueue: 8})

	type result struct {
		idx int
		out *Response
	}
	var wg sync.WaitGroup
	results := make(chan result, 4)
	launch := func(i int, seed int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/allocate", "application/json",
				strings.NewReader(progenBody(t, 32, 0, seed)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			blob, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d body %s", i, resp.StatusCode, blob)
				return
			}
			var out Response
			if err := json.Unmarshal(blob, &out); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results <- result{i, &out}
		}()
	}

	launch(0, 71) // wedged alone in the engine
	waitFor(t, "the engine to pick up the first job", func() bool {
		snap := s.Metrics()
		return snap.Batches == 1 && snap.QueueDepth == 0
	})
	launch(1, 72)
	launch(2, 73)
	launch(3, 74)
	waitFor(t, "three jobs to queue behind the wedge", func() bool { return s.Metrics().QueueDepth == 3 })

	wg.Wait()
	close(results)
	for r := range results {
		want := 3
		if r.idx == 0 {
			want = 1
		}
		if r.out.Batched != want {
			t.Errorf("request %d: batched = %d, want %d", r.idx, r.out.Batched, want)
		}
	}
	snap := s.Metrics()
	if snap.Batches != 2 || snap.BatchRequests != 4 || snap.MaxBatch != 3 {
		t.Errorf("batches=%d batchRequests=%d maxBatch=%d, want 2/4/3",
			snap.Batches, snap.BatchRequests, snap.MaxBatch)
	}
}

// TestDrain checks the graceful-shutdown contract: an in-flight request
// finishes with 200 after Drain begins, new requests and health checks
// get 503, and Drain itself returns cleanly.
func TestDrain(t *testing.T) {
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 300 * time.Millisecond, Count: 1})
	t.Cleanup(faultinject.Reset)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var slowCode int
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/allocate", "application/json",
			strings.NewReader(progenBody(t, 32, 0, 81)))
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowCode = resp.StatusCode
	}()
	waitFor(t, "the engine to pick up the slow job", func() bool { return s.Metrics().Batches == 1 })

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	waitFor(t, "draining to begin", func() bool { return s.Draining() })

	// New work is refused while the drain waits on the slow request.
	resp, blob := post(t, ts.URL, progenBody(t, 32, 0, 82))
	decodeErr(t, resp, blob, http.StatusServiceUnavailable, "draining")
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After header")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hresp.StatusCode)
	}

	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if slowCode != http.StatusOK {
		t.Errorf("in-flight request finished with %d after drain, want 200", slowCode)
	}
	if got := s.Metrics().Drains; got == 0 {
		t.Error("drain refusals not counted")
	}

	// A second drain is a no-op.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestDrainDeadline(t *testing.T) {
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 500 * time.Millisecond, Count: 1})
	t.Cleanup(faultinject.Reset)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/allocate", "application/json",
			strings.NewReader(progenBody(t, 32, 0, 91)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, "the engine to pick up the slow job", func() bool { return s.Metrics().Batches == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil despite an expired deadline")
	} else if kind := core.ErrorKind(err); kind != "timeout" {
		t.Errorf("interrupted Drain error kind = %q, want timeout (%v)", kind, err)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil { // finishes in the background
		t.Fatalf("follow-up Drain: %v", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := progenBody(t, 48, 0, 101)
	mustOK(t, ts.URL, body)
	mustOK(t, ts.URL, body)
	post(t, ts.URL, `not json`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`npserve_requests_total{code="200"} 2`,
		`npserve_requests_total{code="400"} 1`,
		"npserve_singleflight_hits 1",
		"npserve_singleflight_misses 1",
		"npserve_singleflight_hit_rate 0.5000",
		"npserve_engine_invocations_total 1",
		"npserve_latency_ms_count 3",
		`npserve_latency_ms_bucket{le="+Inf"} 3`,
		"npserve_queue_depth 0",
		// One engine run over one body: a func-cache miss that installed
		// one entry with one pooled allocator. The byte-identical
		// duplicate was answered by the raw-request tier before decode,
		// so the body cache saw only the first request (one miss, no
		// hits); the bad-JSON request missed the raw tier and was never
		// stored. The engine's one rewrite registered a canonical and a
		// relocated body with the rewrite cache.
		"npserve_func_cache_hits 0",
		"npserve_func_cache_misses 1",
		"npserve_func_cache_entries 1",
		"npserve_func_cache_idle 1",
		"npserve_body_cache_hits 0",
		"npserve_body_cache_misses 1",
		"npserve_body_cache_entries 1",
		"npserve_rewrite_cache_misses 1",
		"npserve_rewrite_cache_entries 2",
		"npserve_raw_cache_hits 1",
		"npserve_raw_cache_misses 2",
		"npserve_raw_cache_entries 1",
		`npserve_engine_phase_ns{phase="rewrite_cached"} 0`,
	} {
		if !strings.Contains(string(text), want+"\n") {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(blob, []byte(`"ok"`)) {
		t.Errorf("healthz body %s", blob)
	}
}

func TestInfeasible422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Sixteen identical threads cannot share 2 registers.
	var req core.WireRequest
	req.NReg = 2
	for i := 0; i < 8; i++ {
		req.Threads = append(req.Threads, core.WireThread{Progen: &core.WireProgen{Seed: int64(i)}})
	}
	blob, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := post(t, ts.URL, string(blob))
	decodeErr(t, resp, out, http.StatusUnprocessableEntity, "infeasible")
}

func TestEngineTimeoutNotCached(t *testing.T) {
	// A request whose deadline expires inside the engine produces a
	// degraded (static partition) result — and that result must not
	// poison the cache for a later full-deadline request.
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 200 * time.Millisecond, Count: 1})
	s, ts := newTestServer(t, Config{})
	body := progenBody(t, 32, 50, 111)
	resp, blob := post(t, ts.URL, body)
	faultinject.Reset()
	// Depending on where the deadline lands this is either a degraded
	// 200 or a 504; both are acceptable, neither may be cached.
	if resp.StatusCode == http.StatusOK {
		var out Response
		if err := json.Unmarshal(blob, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Degraded {
			t.Fatalf("slow engine run returned a clean 200: %s", blob)
		}
	} else if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 200-degraded or 504 (body %s)", resp.StatusCode, blob)
	}
	waitFor(t, "the wedged engine job to finish", func() bool { return s.Metrics().Batches == 1 })

	out := mustOK(t, ts.URL, progenBody(t, 32, 0, 111))
	if out.Degraded || out.Cached {
		t.Errorf("degraded/timed-out flight leaked into the cache (degraded=%v cached=%v)", out.Degraded, out.Cached)
	}
}

func TestResponseEnvelopeFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := progenBody(t, 48, 0, 121)
	out := mustOK(t, ts.URL, body)
	blob, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"nreg"`, `"sgr"`, `"total_registers"`, `"threads"`, `"degraded"`, `"shared"`, `"cached"`, `"batched"`, `"elapsed_ms"`} {
		if !bytes.Contains(blob, []byte(field)) {
			t.Errorf("envelope missing %s: %s", field, blob)
		}
	}
}

func TestSnapshotHitRate(t *testing.T) {
	snap := &Snapshot{SingleflightInflightHits: 3, SingleflightCachedHits: 2, SingleflightMisses: 5}
	if got := snap.SingleflightHits(); got != 5 {
		t.Errorf("hits = %d, want 5", got)
	}
	if got := snap.SingleflightHitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
	if got := (&Snapshot{}).SingleflightHitRate(); got != 0 {
		t.Errorf("empty hit rate = %v, want 0", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.NReg != 128 || cfg.MaxQueue != 64 || cfg.MaxBatch != 4 ||
		cfg.DefaultTimeout != 10*time.Second || cfg.MaxTimeout != 60*time.Second ||
		cfg.CacheEntries != 256 || cfg.RetryAfter != time.Second || cfg.MaxBodyBytes != 1<<20 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if got := (Config{CacheEntries: -1}).withDefaults().CacheEntries; got != 0 {
		t.Errorf("negative CacheEntries = %d, want 0 (disabled)", got)
	}
}
