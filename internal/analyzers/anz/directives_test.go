package anz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseFixture(t *testing.T, src string) *directiveSet {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return parseDirectives(fset, []*ast.File{f})
}

// Malformed directives are reported even when unused-checking is off:
// a too-short ignore justification, a too-short invariant
// justification, and an ignore with no analyzer list.
func TestMalformedDirectives(t *testing.T) {
	ds := parseFixture(t, `package p

//lint:ignore detlint short
//lint:invariant tiny
//lint:ignore
func F() {}
`)
	diags := ds.verify(false)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for i, wantSub := range []string{
		"justification of at least 10 characters",
		"justification of at least 10 characters",
		"justification of at least 10 characters",
	} {
		if !strings.Contains(diags[i].Message, wantSub) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, wantSub)
		}
	}
}

func TestUnknownDirectiveVerb(t *testing.T) {
	ds := parseFixture(t, `package p

//lint:checksum deadbeef
func F() {}
`)
	diags := ds.verify(false)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown directive //lint:checksum") {
		t.Fatalf("got %v, want one unknown-directive diagnostic", diags)
	}
}

// An invariant attaches to its own line and the line directly below,
// and is consumed at most once.
func TestInvariantAttachment(t *testing.T) {
	ds := parseFixture(t, `package p

func F() {
	//lint:invariant the worklist strictly shrinks
	for {
	}
}
`)
	at := func(line int) bool {
		_, ok := ds.invariantAt(token.Position{Filename: "fix.go", Line: line})
		return ok
	}
	if at(6) {
		t.Error("invariant attached two lines below the directive")
	}
	if !at(5) {
		t.Error("invariant did not attach to the line directly below")
	}
	if stray := ds.verify(true); len(stray) != 0 {
		t.Errorf("consumed invariant still reported: %v", stray)
	}
}

// Suppression covers only the named analyzers on the attached lines,
// and an ignore that never fires is reported when unused-checking is
// on.
func TestIgnoreSuppression(t *testing.T) {
	ds := parseFixture(t, `package p

func F() {
	//lint:ignore detlint,panicfree deterministic by construction
	_ = 1
	//lint:ignore poolalias justified but never triggered
	_ = 2
}
`)
	diag := func(analyzer string, line int) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "fix.go", Line: line},
			Analyzer: analyzer,
		}
	}
	if !ds.suppressed(diag("detlint", 5)) {
		t.Error("detlint diagnostic on the next line was not suppressed")
	}
	if !ds.suppressed(diag("panicfree", 4)) {
		t.Error("panicfree diagnostic on the directive line was not suppressed")
	}
	if ds.suppressed(diag("errtaxonomy", 5)) {
		t.Error("unlisted analyzer was suppressed")
	}
	if ds.suppressed(diag("detlint", 7)) {
		t.Error("suppression leaked past its attachment range")
	}
	unused := ds.verify(true)
	if len(unused) != 1 || !strings.Contains(unused[0].Message, "unused //lint:ignore") {
		t.Errorf("got %v, want exactly the poolalias ignore reported unused", unused)
	}
}

// A directive above an `if` whose header spans several lines — an init
// clause plus a short-circuit condition broken across lines — governs
// findings anchored to ANY clause position up to the opening brace,
// not just the first line. (lockorder anchors to the condition's lock
// call, which may sit two lines below the directive.)
func TestIgnoreCoversMultiClauseIfHeader(t *testing.T) {
	ds := parseFixture(t, `package p

func F(m map[int]int) int {
	//lint:ignore lockorder the guard reads an immutable snapshot taken at boot
	if v, ok := m[1]; ok &&
		v > 0 &&
		v < 10 {
		return v
	}
	return 0
}
`)
	diag := func(line int) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "fix.go", Line: line},
			Analyzer: "lockorder",
		}
	}
	// Line 5 is the if header, 6 and 7 the continuation clauses up to
	// the opening brace.
	for _, line := range []int{5, 6, 7} {
		if !ds.suppressed(diag(line)) {
			t.Errorf("finding on header line %d not suppressed by the directive above the if", line)
		}
	}
	if ds.suppressed(diag(8)) {
		t.Error("suppression leaked into the if body")
	}
}

// The widening only applies to multi-line if headers: a single-line if
// keeps the strict same-or-next-line attachment.
func TestIgnoreSingleLineIfNotWidened(t *testing.T) {
	ds := parseFixture(t, `package p

func F(n int) int {
	//lint:ignore detlint bounded by the caller's invariant contract
	if n > 0 {
		return n
	}
	return 0
}
`)
	d := Diagnostic{Pos: token.Position{Filename: "fix.go", Line: 6}, Analyzer: "detlint"}
	if ds.suppressed(d) {
		t.Error("single-line if must not widen the directive past the next line")
	}
}
