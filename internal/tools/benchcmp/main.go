// Command benchcmp guards the committed allocator benchmark numbers.
//
// It reads `go test -bench` output on stdin, keeps the best (minimum)
// ns/op per benchmark across -count repeats, and then either:
//
//   - compares against a committed baseline JSON (-baseline), exiting
//     nonzero when any shared benchmark regressed by more than the
//     allowed fraction (-tolerance, default 10%), and/or
//   - emits a candidate baseline JSON (-emit) whose numbers can replace
//     the committed file after review.
//
// Usage (wired to `make bench` and `make benchcmp`):
//
//	go test -run '^$' -bench ... -count 5 . | go run ./internal/tools/benchcmp -emit BENCH_alloc.candidate.json
//	go test -run '^$' -bench ... . | go run ./internal/tools/benchcmp -baseline BENCH_alloc.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// result is the per-benchmark summary extracted from the bench output.
type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	CacheHitPct *float64 `json:"cache_hit_pct,omitempty"`
	Runs        int      `json:"runs"`
}

// baseline mirrors the committed BENCH_alloc.json: only the benchmarks
// map is interpreted; everything else is free-form commentary.
type baseline struct {
	Benchmarks map[string]struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// candidate is the schema -emit writes.
type candidate struct {
	Date       string             `json:"date"`
	Command    string             `json:"command"`
	Host       map[string]any     `json:"host"`
	Benchmarks map[string]*result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
var metric = regexp.MustCompile(`([0-9.]+) ([A-Za-z%][^\s]*)`)

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline JSON to compare against")
	emitPath := flag.String("emit", "", "write a candidate baseline JSON here")
	tolerance := flag.Float64("tolerance", 0.10, "allowed ns/op regression fraction before failing")
	floor := flag.Float64("floor", 1000, "baselines below this many ns/op are reported but not gated (sub-microsecond timings are run-to-run noise on shared hosts)")
	flag.Parse()
	if *baselinePath == "" && *emitPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: nothing to do: pass -baseline and/or -emit")
		os.Exit(2)
	}

	results := make(map[string]*result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through for the log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		r := results[name]
		if r == nil {
			r = &result{NsPerOp: ns}
			results[name] = r
		}
		r.Runs++
		if ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		for _, mm := range metric.FindAllStringSubmatch(m[4], -1) {
			val, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			switch mm[2] {
			case "allocs/op":
				if r.AllocsPerOp == nil || val < *r.AllocsPerOp {
					r.AllocsPerOp = &val
				}
			case "B/op":
				if r.BytesPerOp == nil || val < *r.BytesPerOp {
					r.BytesPerOp = &val
				}
			case "cache-hit-%":
				r.CacheHitPct = &val
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmark lines found on stdin")
		os.Exit(2)
	}

	if *emitPath != "" {
		cand := candidate{
			Date:    time.Now().Format("2006-01-02"),
			Command: "make bench",
			Host: map[string]any{
				"goos": runtime.GOOS, "goarch": runtime.GOARCH, "cores": runtime.NumCPU(),
			},
			Benchmarks: results,
		}
		data, err := json.MarshalIndent(cand, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*emitPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchcmp: wrote %s (%d benchmarks, best of %d runs each)\n",
			*emitPath, len(results), maxRuns(results))
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		var base baseline
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		names := make([]string, 0, len(base.Benchmarks))
		for name := range base.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		failed := false
		compared := 0
		for _, name := range names {
			b := base.Benchmarks[name]
			r, ok := results[name]
			if !ok || b.NsPerOp <= 0 {
				continue
			}
			compared++
			delta := r.NsPerOp/b.NsPerOp - 1
			status := "ok"
			switch {
			case b.NsPerOp < *floor:
				status = "noise-exempt"
			case delta > *tolerance:
				status = "REGRESSED"
				failed = true
			}
			fmt.Fprintf(os.Stderr, "benchcmp: %-32s base %14.1f ns/op  now %14.1f ns/op  %+6.1f%%  %s\n",
				name, b.NsPerOp, r.NsPerOp, 100*delta, status)
		}
		if compared == 0 {
			fmt.Fprintln(os.Stderr, "benchcmp: no overlapping benchmarks between stdin and baseline")
			os.Exit(2)
		}
		if failed {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL: ns/op regressed more than %.0f%% vs %s\n",
				100**tolerance, *baselinePath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchcmp: PASS: %d benchmarks within %.0f%% of %s\n",
			compared, 100**tolerance, *baselinePath)
	}
}

func maxRuns(results map[string]*result) int {
	max := 0
	for _, r := range results { //lint:ignore detlint max over an unordered map is order-independent
		if r.Runs > max {
			max = r.Runs
		}
	}
	return max
}
