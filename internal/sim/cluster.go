package sim

import "npra/internal/core/errs"

// PU is one processing unit (micro-engine) of a multi-PU cluster: its
// hardware threads plus the base value its threads report from the tid
// instruction (so each thread in the chip can carve out a distinct memory
// segment, as each micro-engine's threads do on the IXP).
type PU struct {
	Threads []*Thread
	TIDBase int
}

// ClusterResult reports a whole-chip simulation.
type ClusterResult struct {
	Cycles int64
	Mem    []uint32
	PUs    []PUStats
}

// PUStats reports one processing unit of the cluster.
type PUStats struct {
	Idle    int64
	Threads []ThreadStats
}

// Utilization returns the busy fraction of one PU over the run.
func (p PUStats) Utilization(total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(total-p.Idle) / float64(total)
}

// RunCluster simulates several processing units in cycle lockstep over
// one shared memory — the paper's Figure 2.a organization, where PUs form
// a packet pipeline connected by queues (which live in the shared
// memory). Register files are per-PU; memory effects land on the shared
// array at their scheduled cycle, so cross-PU communication through
// memory is causally consistent at cycle granularity.
//
// The run ends when every thread of every PU halted, when cfg.MaxCycles
// elapse, or when all threads reached cfg.StopIters iteration markers.
func RunCluster(pus []PU, cfg Config) (*ClusterResult, error) {
	cfg.setDefaults()
	if len(pus) == 0 {
		return nil, errs.Invalidf("sim: no processing units")
	}
	mem := make([]uint32, cfg.MemWords)
	memFree := new(int64) // one memory channel shared by the whole chip
	var machines []*machine
	var scheds []*puSched
	for pi, pu := range pus {
		if len(pu.Threads) == 0 {
			return nil, errs.Invalidf("sim: PU %d has no threads", pi)
		}
		m := &machine{
			cfg:     cfg,
			regs:    make([]uint32, cfg.NReg),
			mem:     mem,
			tidBase: pu.TIDBase,
			memFree: memFree,
		}
		for ti, th := range pu.Threads {
			if th.F == nil || !th.F.Built() {
				return nil, errs.Invalidf("sim: PU %d thread %d has no built function", pi, ti)
			}
			if th.F.NumRegs > cfg.NReg {
				return nil, errs.Invalidf("sim: PU %d thread %d uses %d registers, file has %d", pi, ti, th.F.NumRegs, cfg.NReg)
			}
			if th.ProtectLo < 0 || th.ProtectHi > cfg.NReg || th.ProtectLo > th.ProtectHi {
				return nil, errs.Invalidf("sim: PU %d thread %d bad protected range", pi, ti)
			}
			m.threads = append(m.threads, &hwThread{prog: th, pc: 0, state: tReady})
		}
		machines = append(machines, m)
		scheds = append(scheds, &puSched{})
	}

	for cycle := int64(0); cycle < cfg.MaxCycles; cycle++ {
		allDone := true
		allIters := cfg.StopIters > 0
		for i, m := range machines {
			if !m.done() {
				allDone = false
			}
			if allIters && !m.allReachedIters(cfg.StopIters) {
				allIters = false
			}
			if m.cycle > cycle {
				continue // this PU is mid switch-latency stall
			}
			if err := stepPU(m, scheds[i]); err != nil {
				return nil, err
			}
			if m.err != nil {
				return nil, m.err
			}
		}
		if allDone || allIters {
			break
		}
	}

	res := &ClusterResult{Mem: mem}
	for _, m := range machines {
		if m.cycle > res.Cycles {
			res.Cycles = m.cycle
		}
		ps := PUStats{Idle: m.idle}
		for _, t := range m.threads {
			ps.Threads = append(ps.Threads, t.stats)
		}
		res.PUs = append(res.PUs, ps)
	}
	return res, nil
}

// puSched carries the per-PU scheduling state between lockstep steps: the
// thread currently occupying the CPU, or none.
type puSched struct {
	cur     int
	running bool
}

// stepPU advances one PU by exactly one cycle: execute one instruction of
// the occupying thread, start a new thread, or idle.
func stepPU(m *machine, s *puSched) error {
	m.applyCompletions()
	if m.err != nil {
		return m.err
	}
	if m.done() {
		m.cycle++ // keep the local clock in lockstep
		m.idle++
		return nil
	}
	if !s.running {
		next := m.pickReady(s.cur)
		if next < 0 {
			m.cycle++
			m.idle++
			return nil
		}
		s.cur = next
		s.running = true
	}
	keep, err := m.execOne(s.cur)
	if err != nil {
		return err
	}
	if !keep {
		s.running = false
		s.cur = (s.cur + 1) % len(m.threads)
		m.cycle += m.cfg.SwitchLatency
	}
	return nil
}
