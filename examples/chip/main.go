// Chip: a two-stage packet pipeline across processing units — the
// organization of the paper's Figure 2.a, where micro-engines hand
// packets to each other through queues in shared memory. PU0 runs a
// producer thread (receive side) next to a register-hungry md5 thread;
// PU1 runs the consumer (transmit side) next to another md5. Each PU's
// threads are register-allocated together by the balancing allocator,
// then the whole chip runs in cycle lockstep on the cluster simulator.
//
//	go run ./examples/chip
package main

import (
	"fmt"
	"log"

	"npra/internal/bench"
	"npra/internal/core"
	"npra/internal/ir"
	"npra/internal/sim"
)

const producerSrc = `
func rx
entry:
	set v0, 0        ; packet counter
	set v1, 48       ; packets to push
loop:
	load v2, [8192]  ; queue head
	load v3, [8196]  ; queue tail
	sub v4, v2, v3
	subi v4, v4, 8
	bz v4, full
	andi v5, v2, 7
	shli v5, v5, 2
	addi v5, v5, 8200
	muli v6, v0, 7   ; fake packet descriptor
	xori v6, v6, 0x55
	store [v5+0], v6
	addi v2, v2, 1
	store [8192], v2
	iter
	addi v0, v0, 1
	subi v1, v1, 1
	bnz v1, loop
	halt
full:
	ctx
	br loop
`

const consumerSrc = `
func tx
entry:
	set v0, 0        ; descriptor checksum
	set v1, 48
loop:
	load v2, [8192]
	load v3, [8196]
	bne v2, v3, take
	ctx
	br loop
take:
	andi v5, v3, 7
	shli v5, v5, 2
	addi v5, v5, 8200
	load v6, [v5+0]
	add v0, v0, v6
	addi v3, v3, 1
	store [8196], v3
	iter
	subi v1, v1, 1
	bnz v1, loop
	store [8240], v0
	halt
`

func main() {
	md5, err := bench.Get("md5")
	if err != nil {
		log.Fatal(err)
	}

	buildPU := func(station *ir.Func, tidBase int) sim.PU {
		alloc, err := core.AllocateARA([]*ir.Func{station, md5.Gen(32)}, core.Config{NReg: 128})
		if err != nil {
			log.Fatal(err)
		}
		if err := alloc.Verify(); err != nil {
			log.Fatal(err)
		}
		var threads []*sim.Thread
		for _, t := range alloc.Threads {
			threads = append(threads, &sim.Thread{
				F: t.F, ProtectLo: t.PrivBase, ProtectHi: t.PrivBase + t.PR,
			})
		}
		fmt.Printf("PU tid%d: %s PR=%d + md5 PR=%d SR=%d (SGR=%d, %d/%d registers)\n",
			tidBase, station.Name, alloc.Threads[0].PR, alloc.Threads[1].PR,
			alloc.Threads[1].SR, alloc.SGR, alloc.TotalRegisters(), 128)
		return sim.PU{Threads: threads, TIDBase: tidBase}
	}

	rx, err := ir.Parse(producerSrc)
	if err != nil {
		log.Fatal(err)
	}
	tx, err := ir.Parse(consumerSrc)
	if err != nil {
		log.Fatal(err)
	}
	pus := []sim.PU{buildPU(rx, 0), buildPU(tx, 4)}

	res, err := sim.RunCluster(pus, sim.Config{MemWords: bench.MemWords, MaxCycles: 5_000_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchip ran %d cycles\n", res.Cycles)
	names := [][]string{{"rx", "md5"}, {"tx", "md5"}}
	for pi, pu := range res.PUs {
		fmt.Printf("PU%d (util %.0f%%):\n", pi, 100*pu.Utilization(res.Cycles))
		for ti, ts := range pu.Threads {
			fmt.Printf("  %-4s instrs=%-6d iters=%-3d cyc/iter=%.1f halted=%v\n",
				names[pi][ti], ts.Instrs, ts.Iters, ts.CyclesPerIter(), ts.Halted)
		}
	}
	fmt.Printf("\n48 packets crossed the queue; descriptor checksum = %d\n", res.Mem[8240/4])
}
