// Package progen generates random but well-formed IR functions for
// property-based testing: every generated function builds, terminates
// validation, and exercises loads/stores/ctx (context-switch boundaries),
// branches and loops in random shapes.
package progen

import (
	"fmt"
	"math/rand" //lint:ignore detlint seeded deterministic generator: rand.New(rand.NewSource(seed)) only, never the global PRNG

	"npra/internal/ir"
)

// Config bounds the shape of generated programs.
type Config struct {
	MaxBlocks   int     // ≥ 1
	MaxInstrs   int     // per block, ≥ 1
	MaxVars     int     // ≥ 2
	CSBDensity  float64 // probability an instruction slot becomes load/store/ctx
	StoreWindow int64   // stores hit absolute addresses in [StoreBase, StoreBase+StoreWindow)
	StoreBase   int64   // base of the store window (for disjoint multi-thread memory)
}

// Default is a reasonable general-purpose configuration.
var Default = Config{MaxBlocks: 8, MaxInstrs: 10, MaxVars: 10, CSBDensity: 0.2, StoreWindow: 64}

// Generate returns a random function drawn from cfg using rng.
func Generate(rng *rand.Rand, cfg Config) *ir.Func {
	nBlocks := 1 + rng.Intn(cfg.MaxBlocks)
	nVars := 2 + rng.Intn(cfg.MaxVars-1)
	f := &ir.Func{Name: "rand", NumRegs: nVars}

	reg := func() ir.Reg { return ir.Reg(rng.Intn(nVars)) }
	for bi := 0; bi < nBlocks; bi++ {
		b := &ir.Block{Label: fmt.Sprintf("b%d", bi)}
		n := 1 + rng.Intn(cfg.MaxInstrs)
		for k := 0; k < n; k++ {
			b.Instrs = append(b.Instrs, randomInstr(rng, cfg, reg))
		}
		// Terminator. The last block must not fall off the end.
		switch {
		case bi == nBlocks-1:
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpHalt, Def: ir.NoReg, A: ir.NoReg, B: ir.NoReg})
		default:
			switch rng.Intn(4) {
			case 0: // fallthrough
			case 1:
				b.Instrs = append(b.Instrs, ir.Instr{
					Op: ir.OpBr, Def: ir.NoReg, A: ir.NoReg, B: ir.NoReg,
					Target: fmt.Sprintf("b%d", rng.Intn(nBlocks)),
				})
			case 2:
				b.Instrs = append(b.Instrs, ir.Instr{
					Op: ir.OpBZ, Def: ir.NoReg, A: reg(), B: ir.NoReg,
					Target: fmt.Sprintf("b%d", rng.Intn(nBlocks)),
				})
			case 3:
				b.Instrs = append(b.Instrs, ir.Instr{
					Op: ir.OpBNE, Def: ir.NoReg, A: reg(), B: reg(),
					Target: fmt.Sprintf("b%d", rng.Intn(nBlocks)),
				})
			}
		}
		f.Blocks = append(f.Blocks, b)
	}
	if err := f.Build(); err != nil {
		panic("progen: generated invalid function: " + err.Error()) //lint:invariant generator self-check: progen constructs structurally valid CFGs by construction; Build failure means the generator itself is broken
	}
	return f
}

func randomInstr(rng *rand.Rand, cfg Config, reg func() ir.Reg) ir.Instr {
	if rng.Float64() < cfg.CSBDensity {
		switch rng.Intn(3) {
		case 0:
			return ir.Instr{Op: ir.OpCtx, Def: ir.NoReg, A: ir.NoReg, B: ir.NoReg}
		case 1:
			return ir.Instr{Op: ir.OpLoadA, Def: reg(), A: ir.NoReg, B: ir.NoReg,
				Imm: cfg.StoreBase + int64(rng.Intn(int(cfg.StoreWindow)))&^3}
		default:
			return ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: reg(),
				Imm: cfg.StoreBase + int64(rng.Intn(int(cfg.StoreWindow)))&^3}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return ir.Instr{Op: ir.OpSet, Def: reg(), A: ir.NoReg, B: ir.NoReg, Imm: int64(rng.Intn(1000))}
	case 1:
		return ir.Instr{Op: ir.OpMov, Def: reg(), A: reg(), B: ir.NoReg}
	case 2, 3:
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpMul}
		return ir.Instr{Op: ops[rng.Intn(len(ops))], Def: reg(), A: reg(), B: reg()}
	case 4:
		ops := []ir.Op{ir.OpAddI, ir.OpSubI, ir.OpXorI, ir.OpAndI, ir.OpOrI}
		return ir.Instr{Op: ops[rng.Intn(len(ops))], Def: reg(), A: reg(), B: ir.NoReg, Imm: int64(rng.Intn(256))}
	default:
		ops := []ir.Op{ir.OpShlI, ir.OpShrI}
		return ir.Instr{Op: ops[rng.Intn(len(ops))], Def: reg(), A: reg(), B: ir.NoReg, Imm: int64(rng.Intn(16))}
	}
}

// StructuredConfig bounds the structured generator.
type StructuredConfig struct {
	MaxDepth    int // loop nesting (1..3)
	MaxBodyLen  int // straight-line instructions per body segment
	MaxTripCnt  int // loop iterations per level (>= 1)
	MaxVars     int // computation registers (loop counters are extra)
	CSBDensity  float64
	StoreWindow int64
	StoreBase   int64
}

// DefaultStructured is a reasonable structured configuration.
var DefaultStructured = StructuredConfig{
	MaxDepth: 3, MaxBodyLen: 6, MaxTripCnt: 4, MaxVars: 8,
	CSBDensity: 0.2, StoreWindow: 64,
}

// GenerateStructured returns a random program that always halts: properly
// nested counted loops with straight-line bodies and optional if-diamonds.
// Loop counters get dedicated registers, so termination is structural.
// Useful for property tests that need guaranteed-halting inputs (full
// equivalence checks, loop analysis, schedule checking).
func GenerateStructured(rng *rand.Rand, cfg StructuredConfig) *ir.Func {
	g := &sgen{rng: rng, cfg: cfg}
	g.bu = ir.NewBuilder("srand")
	g.bu.Label("entry")
	// Computation registers, initialized so every read is defined.
	for i := 0; i < cfg.MaxVars; i++ {
		g.vars = append(g.vars, g.bu.Set(int64(rng.Intn(1000))))
	}
	g.emitBlockSeq(1 + rng.Intn(cfg.MaxDepth))
	g.bu.Halt()
	f, err := g.bu.Finish()
	if err != nil {
		panic("progen: structured generator produced invalid code: " + err.Error()) //lint:invariant generator self-check: the structured builder emits balanced control flow by construction; Finish failure means the generator itself is broken
	}
	return f
}

// FromSeed is GenerateStructured over a fresh rand.NewSource(seed)
// PRNG: the same (seed, cfg) always yields the same function. It exists
// so that callers outside the test harnesses (e.g. the serving layer's
// wire format) can materialize progen specs without importing math/rand
// themselves.
func FromSeed(seed int64, cfg StructuredConfig) *ir.Func {
	return GenerateStructured(rand.New(rand.NewSource(seed)), cfg)
}

type sgen struct {
	rng    *rand.Rand
	cfg    StructuredConfig
	bu     *ir.Builder
	vars   []ir.Reg
	labels int
}

func (g *sgen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

func (g *sgen) reg() ir.Reg { return g.vars[g.rng.Intn(len(g.vars))] }

// emitBlockSeq emits a body followed optionally by a loop or diamond,
// recursing while depth remains.
func (g *sgen) emitBlockSeq(depth int) {
	g.emitBody()
	if depth <= 0 {
		return
	}
	switch g.rng.Intn(3) {
	case 0: // counted loop around a nested sequence
		n := 1 + g.rng.Intn(g.cfg.MaxTripCnt)
		cnt := g.bu.Set(int64(n))
		top := g.label("loop")
		g.bu.Label(top)
		g.emitBlockSeq(depth - 1)
		g.bu.OpITo(ir.OpSubI, cnt, cnt, 1)
		g.bu.BNZ(cnt, top)
	case 1: // if-diamond
		cond := g.reg()
		alt := g.label("alt")
		join := g.label("join")
		g.bu.BZ(cond, alt)
		g.emitBlockSeq(depth - 1)
		g.bu.Br(join)
		g.bu.Label(alt)
		g.emitBody()
		g.bu.Label(join)
		g.bu.Emit(ir.Instr{Op: ir.OpNop, Def: ir.NoReg, A: ir.NoReg, B: ir.NoReg})
	default: // plain nested sequence
		g.emitBlockSeq(depth - 1)
	}
	g.emitBody()
}

func (g *sgen) emitBody() {
	n := 1 + g.rng.Intn(g.cfg.MaxBodyLen)
	for i := 0; i < n; i++ {
		if g.rng.Float64() < g.cfg.CSBDensity {
			switch g.rng.Intn(3) {
			case 0:
				g.bu.Ctx()
			case 1:
				g.bu.Emit(ir.Instr{Op: ir.OpLoadA, Def: g.reg(), A: ir.NoReg, B: ir.NoReg,
					Imm: g.cfg.StoreBase + int64(g.rng.Intn(int(g.cfg.StoreWindow)))&^3})
			default:
				g.bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: g.reg(),
					Imm: g.cfg.StoreBase + int64(g.rng.Intn(int(g.cfg.StoreWindow)))&^3})
			}
			continue
		}
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpXor, ir.OpOr, ir.OpAnd, ir.OpMul}
		g.bu.Op3To(ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.reg())
	}
}
