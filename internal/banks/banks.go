// Package banks models a hardware restriction of the real IXP register
// file that the paper abstracts away (and its reference [19], "Taming the
// IXP", treats at length): the general-purpose registers are split into
// two banks, A and B, with one read port each, so a three-register ALU
// instruction must draw its two sources from *different* banks — and can
// never read the same register twice.
//
// Assign post-processes allocated (physical-register) code: it 2-colors
// the "must be in opposite banks" constraint graph over the physical
// registers of all threads together (the assignment must be global —
// shared registers are, by definition, the same hardware register in
// every thread), rewrites the instructions whose constraints cannot be
// satisfied (odd cycles, or same-register pairs) to stage one operand
// through a reserved scratch register of the opposite bank, and renumbers
// every register into the banked layout: bank A occupies [0, BankSize),
// bank B [BankSize, 2*BankSize).
//
// The scratch staging is sound on this machine class precisely because
// execution is non-preemptive: the inserted "mov scratch, src" and the
// patched instruction are adjacent non-switching instructions, so no
// other thread can run between them, and the scratch value is never live
// across a context switch — the same argument that makes the paper's
// shared registers safe.
package banks

import (
	"fmt"
	"sort"

	"npra/internal/core/errs"
	"npra/internal/ir"
	"npra/internal/liveness"
)

// Config parameterizes the banked register file.
type Config struct {
	// BankSize is the capacity of each bank (64 on the IXP1200).
	BankSize int
}

// Result is a completed bank assignment.
type Result struct {
	// Funcs are the rewritten threads, renumbered into the banked layout.
	Funcs []*ir.Func

	// BankOf maps each *original* physical register to its bank (0 or 1).
	BankOf map[ir.Reg]int

	// Remap maps original physical registers to banked register numbers.
	Remap map[ir.Reg]ir.Reg

	// ScratchA, ScratchB are the banked numbers of the two reserved
	// staging registers.
	ScratchA, ScratchB ir.Reg

	// Moves counts the staging mov instructions inserted.
	Moves int
}

// twoSource reports whether the instruction reads two register sources
// simultaneously (and is therefore bank-constrained).
func twoSource(in *ir.Instr) bool {
	if in.A == ir.NoReg || in.B == ir.NoReg {
		return false
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpMul,
		ir.OpStore, ir.OpBEQ, ir.OpBNE, ir.OpBLT, ir.OpBGE:
		return true
	}
	return false
}

// Assign banks the physical registers of the given threads. All inputs
// must be physical-register functions (one per thread, allocated against
// the same register file). The rewrite preserves observable semantics.
func Assign(funcs []*ir.Func, cfg Config) (*Result, error) {
	if cfg.BankSize <= 0 {
		cfg.BankSize = 64
	}
	for i, f := range funcs {
		if f == nil || !f.Built() || !f.Physical {
			return nil, errs.Invalidf("banks: thread %d is not built physical code", i)
		}
	}

	res := &Result{BankOf: make(map[ir.Reg]int), Remap: make(map[ir.Reg]ir.Reg)}

	// Pass 1: greedy bank assignment over all constrained pairs, in
	// deterministic program order across threads. Registers seen in
	// unsatisfiable pairs are resolved by marking the instruction for
	// scratch staging instead of failing.
	type patchKey struct{ fi, bi, k int }
	patch := make(map[patchKey]bool)
	counts := [2]int{}
	assign := func(r ir.Reg, bank int) {
		res.BankOf[r] = bank
		counts[bank]++
	}
	emptier := func() int {
		if counts[1] < counts[0] {
			return 1
		}
		return 0
	}
	for fi, f := range funcs {
		for bi, b := range f.Blocks {
			for k := range b.Instrs {
				in := &b.Instrs[k]
				// Note every used register so it gets a slot.
				for _, r := range []ir.Reg{in.Def, in.A, in.B} {
					if r != ir.NoReg {
						if _, seen := res.BankOf[r]; !seen {
							res.BankOf[r] = -1 // placeholder: unconstrained so far
						}
					}
				}
				if !twoSource(in) {
					continue
				}
				if in.A == in.B {
					patch[patchKey{fi, bi, k}] = true
					continue
				}
				ba, okA := res.BankOf[in.A]
				bb, okB := res.BankOf[in.B]
				if ba < 0 {
					okA = false
				}
				if bb < 0 {
					okB = false
				}
				switch {
				case !okA && !okB:
					e := emptier()
					assign(in.A, e)
					assign(in.B, 1-e)
				case okA && !okB:
					assign(in.B, 1-ba)
				case !okA && okB:
					assign(in.A, 1-bb)
				default:
					if ba == bb {
						patch[patchKey{fi, bi, k}] = true
					}
				}
			}
		}
	}
	// Unconstrained registers fill the emptier bank, in numeric order for
	// determinism.
	var loose []ir.Reg
	for r, b := range res.BankOf {
		if b < 0 {
			loose = append(loose, r)
		}
	}
	sort.Slice(loose, func(i, j int) bool { return loose[i] < loose[j] })
	for _, r := range loose {
		assign(r, emptier())
	}

	// Capacity: each bank holds its registers plus one scratch.
	if counts[0]+1 > cfg.BankSize || counts[1]+1 > cfg.BankSize {
		return nil, errs.Infeasiblef("banks: assignment needs %d/%d registers per bank, capacity %d",
			counts[0]+1, counts[1]+1, cfg.BankSize)
	}

	// Renumber: bank A from 0 up, bank B from BankSize up; scratches take
	// the next free slot of each bank.
	var regs []ir.Reg
	for r := range res.BankOf {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	next := [2]int{0, cfg.BankSize}
	for _, r := range regs {
		b := res.BankOf[r]
		res.Remap[r] = ir.Reg(next[b])
		next[b]++
	}
	res.ScratchA = ir.Reg(next[0])
	res.ScratchB = ir.Reg(next[1])

	// Pass 2: rewrite every thread — rename registers, stage patched
	// instructions through the opposite bank's scratch.
	for fi, f := range funcs {
		nf := &ir.Func{Name: f.Name, Physical: true}
		for bi, b := range f.Blocks {
			nb := &ir.Block{Label: b.Label}
			for k := range b.Instrs {
				in := b.Instrs[k]
				if in.Def != ir.NoReg {
					in.Def = res.Remap[in.Def]
				}
				if in.A != ir.NoReg {
					in.A = res.Remap[in.A]
				}
				if in.B != ir.NoReg {
					in.B = res.Remap[in.B]
				}
				if patch[patchKey{fi, bi, k}] {
					// Stage B through the scratch of the bank opposite A.
					scratch := res.ScratchB
					if int(in.A) >= cfg.BankSize {
						scratch = res.ScratchA
					}
					nb.Instrs = append(nb.Instrs, ir.Instr{
						Op: ir.OpMov, Def: scratch, A: in.B, B: ir.NoReg,
					})
					in.B = scratch
					res.Moves++
				}
				nb.Instrs = append(nb.Instrs, in)
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		nf.NumRegs = 2 * cfg.BankSize
		if err := nf.Build(); err != nil {
			return nil, fmt.Errorf("banks: rewritten thread %d invalid: %w", fi, err)
		}
		res.Funcs = append(res.Funcs, nf)
	}
	return res, nil
}

// Check verifies banked code: every two-source instruction reads from
// opposite banks and never the same register twice, and no register is
// both read-staged and live across a context switch in the same breath —
// concretely, the scratch staging property: a value written by the
// immediately preceding mov is consumed before any context switch.
func Check(f *ir.Func, bankSize int) error {
	if bankSize <= 0 {
		bankSize = 64
	}
	bank := func(r ir.Reg) int {
		if int(r) < bankSize {
			return 0
		}
		return 1
	}
	for _, b := range f.Blocks {
		for k := range b.Instrs {
			in := &b.Instrs[k]
			if !twoSource(in) {
				continue
			}
			if in.A == in.B {
				return errs.Internalf("banks: %s %q instr %d: reads r%d on both ports", f.Name, b.Label, k, in.A)
			}
			if bank(in.A) == bank(in.B) {
				return errs.Internalf("banks: %s %q instr %d: both sources in bank %d (r%d, r%d)",
					f.Name, b.Label, k, bank(in.A), in.A, in.B)
			}
		}
	}
	return nil
}

// ScratchesDeadAcrossSwitches confirms that the two scratch registers are
// never live across a context-switch boundary — the condition that makes
// sharing them across threads safe on a non-preemptive machine.
func ScratchesDeadAcrossSwitches(f *ir.Func, scratchA, scratchB ir.Reg) error {
	li := liveness.Compute(f)
	for p := 0; p < f.NumPoints(); p++ {
		if !f.Instr(p).IsCSB() {
			continue
		}
		across, err := li.LiveAcross(p)
		if err != nil {
			continue // unreachable: guarded by IsCSB above
		}
		for _, s := range []ir.Reg{scratchA, scratchB} {
			if int(s) < f.NumRegs && across.Has(int(s)) {
				return errs.Internalf("banks: scratch r%d live across the switch at point %d", s, p)
			}
		}
	}
	return nil
}
