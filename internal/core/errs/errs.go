// Package errs holds the allocation pipeline's error-taxonomy sentinels
// in a dependency-free leaf package, so that the packages *below*
// internal/core in the import graph (ir, loops, liveness, estimate,
// intra, passes, parallel, ...) can wrap the same sentinels that
// internal/core re-exports without creating an import cycle.
//
// core.ErrInvalid and errs.ErrInvalid are the same value (core aliases
// them), so errors.Is routing works identically whichever package a
// caller imports. See internal/core/errors.go for the taxonomy contract
// and docs/INTERNALS.md "Failure model & degradation" for the design.
package errs

import (
	"errors"
	"fmt"
)

// The four taxonomy sentinels. Every error crossing an internal package
// boundary wraps exactly one of these (mechanically enforced by the
// errtaxonomy analyzer in internal/analyzers).
var (
	ErrInvalid    = errors.New("core: invalid argument")
	ErrInfeasible = errors.New("core: infeasible")
	ErrTimeout    = errors.New("core: timeout")
	ErrInternal   = errors.New("core: internal error")
)

// Invalidf returns an ErrInvalid-wrapped formatted error.
func Invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Infeasiblef returns an ErrInfeasible-wrapped formatted error.
func Infeasiblef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInfeasible, fmt.Sprintf(format, args...))
}

// Timeoutf returns an ErrTimeout-wrapped formatted error.
func Timeoutf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTimeout, fmt.Sprintf(format, args...))
}

// Internalf returns an ErrInternal-wrapped formatted error.
func Internalf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInternal, fmt.Sprintf(format, args...))
}
