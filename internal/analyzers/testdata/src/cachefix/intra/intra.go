// Fixture stub for the cachealias analyzer: a minimal intra package
// (import path suffix /intra) with the cache-owned types and a
// Checkout shaped like core.AllocatorSource's.
package intra

type Piece struct {
	Color int
}

type Context struct {
	Pieces []Piece
}

type Allocator struct {
	ctx Context
}

func (al *Allocator) Piece(i int) *Piece     { return &al.ctx.Pieces[i] }
func (al *Allocator) Context() *Context      { return &al.ctx }
func (al *Allocator) Solve(pr, sr int) int   { return pr + sr }
func (al *Allocator) Rewrite(pr, sr int) int { return pr * sr }

// Source is the fixture's AllocatorSource: Checkout returns the
// allocator and its single-use checkin.
type Source struct{}

func (s *Source) Checkout() (*Allocator, func(ok bool), error) {
	al := &Allocator{ctx: Context{Pieces: make([]Piece, 8)}}
	return al, func(bool) {}, nil
}
