package encoding

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"npra/internal/bench"
	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

func TestRoundTripSimple(t *testing.T) {
	f := ir.MustParse(`
func demo
entry:
	set v0, -123
	load v1, [v0+8]
	add v2, v0, v1
	bnz v2, entry
	store [4096], v2
	halt`)
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Format() != f.Format() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", f.Format(), g.Format())
	}
	if g.Name != "demo" || g.NumRegs != f.NumRegs || g.Physical != f.Physical {
		t.Errorf("metadata lost: %q %d %v", g.Name, g.NumRegs, g.Physical)
	}
}

func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		f := b.Gen(8)
		data, err := Encode(f)
		if err != nil {
			t.Fatalf("%s: encode: %v", b.Name, err)
		}
		g, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", b.Name, err)
		}
		if g.Format() != f.Format() {
			t.Errorf("%s: round trip mismatch", b.Name)
		}
		// And the decoded program still runs identically.
		m1 := make([]uint32, bench.MemWords)
		m2 := make([]uint32, bench.MemWords)
		r1, err := interp.Run(f, m1, interp.Options{MaxSteps: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := interp.Run(g, m2, interp.Options{MaxSteps: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := interp.Equivalent(r1, r2); err != nil {
			t.Errorf("%s: decoded run differs: %v", b.Name, err)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	unbuilt := &ir.Func{Name: "x"}
	if _, err := Encode(unbuilt); err == nil {
		t.Error("encoded unbuilt function")
	}
}

func TestDecodeErrors(t *testing.T) {
	f := ir.MustParse("a:\n set v0, 1\n store [0], v0\n halt")
	good, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"bad magic", append([]byte("JUNK"), good[4:]...), "bad magic"},
		{"bad version", append(append([]byte{}, good[:4]...), append([]byte{9, 0, 0, 0}, good[8:]...)...), "unsupported version"},
		{"truncated", good[:len(good)-5], "truncated"},
		{"trailing", append(append([]byte{}, good...), 1, 2, 3), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatalf("decode succeeded")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// Property: encode/decode is the identity on random programs.
func TestQuickRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		data, err := Encode(f)
		if err != nil {
			return false
		}
		g, err := Decode(data)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return g.Format() == f.Format()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random byte soup never panics the decoder; it errors or, by
// extreme luck, produces a valid function.
func TestQuickDecodeRobust(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		if rng.Intn(2) == 0 {
			copy(data, magic[:]) // give it a valid prefix half the time
		}
		_, err := Decode(data) // must not panic
		_ = err
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: corrupting one byte of a valid image either errors or decodes
// to *something* — never panics, never hangs.
func TestQuickBitFlipRobust(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 10
loop:
	subi v0, v0, 1
	bnz v0, loop
	store [0], v0
	halt`)
	good, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := append([]byte{}, good...)
		data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		_, err := Decode(data)
		_ = err
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
