package experiments

import (
	"context"
	"fmt"
	"strings"

	"npra/internal/bench"
	"npra/internal/chaitin"
	"npra/internal/core"
	"npra/internal/core/errs"
	"npra/internal/estimate"
	"npra/internal/ig"
	"npra/internal/intra"
	"npra/internal/ir"
	"npra/internal/linscan"
	"npra/internal/loops"
	"npra/internal/parallel"
	"npra/internal/sim"
)

// AblationEstimationRow compares the paper's minimize-MaxPR-first bound
// estimation (Figure 7) against plain whole-GIG coloring: the PR-first
// strategy should never use more private-capable colors, because private
// registers multiply by the thread count in the global budget.
type AblationEstimationRow struct {
	Name                 string
	PRFirstPR, PRFirstR  int
	JointPR, JointR      int
	PrivateSaved4Threads int // 4*(JointPR - PRFirstPR)
}

// AblationEstimation runs both estimators on every benchmark, one
// benchmark per worker task.
func AblationEstimation(npkts int) ([]AblationEstimationRow, error) {
	return mapBenches(func(b *bench.Benchmark) (AblationEstimationRow, error) {
		a := ig.Analyze(b.Gen(npkts))
		pf, err := estimate.Compute(a)
		if err != nil {
			return AblationEstimationRow{}, fmt.Errorf("ablation estimation %s: %w", b.Name, err)
		}
		jt, err := estimate.ComputeJoint(a)
		if err != nil {
			return AblationEstimationRow{}, fmt.Errorf("ablation estimation %s (joint): %w", b.Name, err)
		}
		return AblationEstimationRow{
			Name:      b.Name,
			PRFirstPR: pf.MaxPR, PRFirstR: pf.MaxR,
			JointPR: jt.MaxPR, JointR: jt.MaxR,
			PrivateSaved4Threads: NThreads * (jt.MaxPR - pf.MaxPR),
		}, nil
	})
}

// AblationMoveElimRow compares move counts at the minimal register budget
// with and without the unnecessary-move elimination (coalescing) pass.
type AblationMoveElimRow struct {
	Name              string
	MovesWith         int
	MovesWithout      int
	EliminatedPercent float64
}

// AblationMoveElim measures the coalescing pass, one benchmark per
// worker task.
func AblationMoveElim(npkts int) ([]AblationMoveElimRow, error) {
	return mapBenches(func(b *bench.Benchmark) (AblationMoveElimRow, error) {
		f := b.Gen(npkts)
		moves := func(disable bool) (int, error) {
			al, err := intra.New(f)
			if err != nil {
				return 0, err
			}
			al.DisableCoalesce = disable
			bd := al.Bounds()
			sol, err := al.Solve(bd.MinPR, bd.MinR-bd.MinPR)
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		}
		with, err := moves(false)
		if err != nil {
			return AblationMoveElimRow{}, fmt.Errorf("ablation move-elim %s: %w", b.Name, err)
		}
		without, err := moves(true)
		if err != nil {
			return AblationMoveElimRow{}, fmt.Errorf("ablation move-elim %s (disabled): %w", b.Name, err)
		}
		pct := 0.0
		if without > 0 {
			pct = 100 * float64(without-with) / float64(without)
		}
		return AblationMoveElimRow{
			Name: b.Name, MovesWith: with, MovesWithout: without, EliminatedPercent: pct,
		}, nil
	})
}

// AblationSRARow compares the exact symmetric sweep (§8) against running
// the generic ARA greedy loop on four identical copies.
type AblationSRARow struct {
	Name             string
	SRARegs, SRACost int
	ARARegs, ARACost int
}

// AblationSRA runs both solvers on every benchmark replicated 4x, one
// benchmark per worker task.
func AblationSRA(npkts int) ([]AblationSRARow, error) {
	return mapBenches(func(b *bench.Benchmark) (AblationSRARow, error) {
		f := b.Gen(npkts)
		ctx, cancel := allocCtx()
		defer cancel()
		sra, err := core.AllocateSRACtx(ctx, f, NThreads, core.Config{NReg: NReg, Workers: workers})
		if err != nil {
			return AblationSRARow{}, fmt.Errorf("ablation SRA %s: %w", b.Name, err)
		}
		ara, err := core.AllocateARACtx(ctx, genCopies(b, NThreads, npkts), core.Config{NReg: NReg, Workers: workers})
		if err != nil {
			return AblationSRARow{}, fmt.Errorf("ablation SRA %s (ARA): %w", b.Name, err)
		}
		if sra.Degraded || ara.Degraded {
			return AblationSRARow{}, fmt.Errorf("ablation SRA %s: allocation degraded; raise -timeout", b.Name)
		}
		sraCost, araCost := 0, 0
		for _, t := range sra.Threads {
			sraCost += t.Cost
		}
		for _, t := range ara.Threads {
			araCost += t.Cost
		}
		return AblationSRARow{
			Name:    b.Name,
			SRARegs: sra.TotalRegisters(), SRACost: sraCost,
			ARARegs: ara.TotalRegisters(), ARACost: araCost,
		}, nil
	})
}

// AblationSpillVsMoveRow: single-thread md5 at a shrinking register
// budget K — the baseline allocator spills to memory while the splitting
// allocator inserts moves. Moves are 1-cycle ALU instructions; spills are
// ~20-cycle memory round trips that also force context switches, so the
// splitting side should degrade far more gracefully.
type AblationSpillVsMoveRow struct {
	K            int
	SpillOps     int     // spill instructions the baseline inserted
	SpillCycles  float64 // cycles/iter, baseline
	Moves        int     // moves the splitting allocator inserted
	MoveCycles   float64 // cycles/iter, splitting allocator
	MoveWinsByPc float64 // (spill-move)/spill * 100
}

// AblationSpillVsMove sweeps the register budget K for one benchmark
// (default md5), from well below the pressure bound up to the move-free
// demand. Below RegPmax only spilling can allocate at all (Moves = -1
// marks the splitting allocator as infeasible); in the window between
// RegPmax and the move-free demand both work and splitting should win.
func AblationSpillVsMove(benchName string, npkts int) ([]AblationSpillVsMoveRow, error) {
	b, err := bench.Get(benchName)
	if err != nil {
		return nil, err
	}
	f := b.Gen(npkts)
	al, err := intra.New(f)
	if err != nil {
		return nil, err
	}
	bd := al.Bounds()

	var ks []int
	for k := 12; k < bd.MinR; k += 6 {
		ks = append(ks, k)
	}
	for k := bd.MinR; k <= bd.MaxR+2; k += 2 {
		ks = append(ks, k)
	}

	// One budget point per worker task. The splitting side Solves on a
	// per-task allocator over the shared analysis (the shared `al` is
	// not safe for concurrent use).
	return parallel.MapErr(context.Background(), workers, len(ks), func(ki int) (AblationSpillVsMoveRow, error) {
		k := ks[ki]
		// Baseline: Chaitin at K registers.
		phys := make([]ir.Reg, k)
		for i := range phys {
			phys[i] = ir.Reg(i)
		}
		ch, err := chaitin.Allocate(f, chaitin.Options{
			Phys: phys, SpillBase: bench.SpillBase, SpillStride: bench.SpillStride,
		})
		if err != nil {
			return AblationSpillVsMoveRow{}, fmt.Errorf("ablation spill %s K=%d: %w", benchName, k, err)
		}
		chRes, err := sim.Run([]*sim.Thread{{F: ch.F}}, sim.Config{NReg: NReg, MemWords: bench.MemWords})
		if err != nil {
			return AblationSpillVsMoveRow{}, err
		}

		// Splitting allocator: all K registers private (single thread).
		// Below RegPmax this is infeasible — only spilling can shrink
		// further, which is exactly the trade the ablation shows.
		row := AblationSpillVsMoveRow{
			K: k, SpillOps: ch.SpillCode,
			SpillCycles: chRes.Threads[0].CyclesPerIter(),
			Moves:       -1,
		}
		kal, err := intra.NewFromAnalysis(al.A)
		if err != nil {
			return AblationSpillVsMoveRow{}, err
		}
		if sol, err := kal.Solve(k, 0); err == nil {
			mf, stats, err := intra.Rewrite(sol.Ctx, phys[:sol.Ctx.Size])
			if err != nil {
				return AblationSpillVsMoveRow{}, err
			}
			mvRes, err := sim.Run([]*sim.Thread{{F: mf}}, sim.Config{NReg: NReg, MemWords: bench.MemWords})
			if err != nil {
				return AblationSpillVsMoveRow{}, err
			}
			row.Moves = stats.Added()
			row.MoveCycles = mvRes.Threads[0].CyclesPerIter()
			if row.SpillCycles > 0 {
				row.MoveWinsByPc = 100 * (row.SpillCycles - row.MoveCycles) / row.SpillCycles
			}
		}
		return row, nil
	})
}

// AblationLatencyRow: the critical-thread speedup of scenario S1 as a
// function of memory latency — the paper's premise is that spills hurt
// because memory is slow, so the win should grow with the latency.
type AblationLatencyRow struct {
	MemLatency      int64
	CriticalSpeedup float64 // md5 threads, averaged
	OtherChange     float64 // fir2dim threads, averaged
}

// AblationLatency sweeps the memory latency on scenario S1, one latency
// point per worker task.
func AblationLatency(npkts int) ([]AblationLatencyRow, error) {
	lats := []int64{5, 10, 20, 40}
	return parallel.MapErr(context.Background(), workers, len(lats), func(li int) (AblationLatencyRow, error) {
		lat := lats[li]
		mk := func() []*ir.Func {
			md, _ := bench.Get("md5")
			fir, _ := bench.Get("fir2dim")
			return []*ir.Func{md.Gen(npkts), md.Gen(npkts), fir.Gen(npkts), fir.Gen(npkts)}
		}
		cfg := sim.Config{NReg: NReg, MemWords: bench.MemWords, MemLatency: lat}

		baseThreads, _, err := baselineThreads(mk())
		if err != nil {
			return AblationLatencyRow{}, err
		}
		baseRes, err := sim.Run(baseThreads, cfg)
		if err != nil {
			return AblationLatencyRow{}, err
		}
		shareThreads, _, err := sharingThreads(mk())
		if err != nil {
			return AblationLatencyRow{}, err
		}
		shareRes, err := sim.Run(shareThreads, cfg)
		if err != nil {
			return AblationLatencyRow{}, err
		}
		speed := func(i int) float64 {
			s := baseRes.Threads[i].CyclesPerIter()
			h := shareRes.Threads[i].CyclesPerIter()
			if s == 0 {
				return 0
			}
			return 100 * (s - h) / s
		}
		return AblationLatencyRow{
			MemLatency:      lat,
			CriticalSpeedup: (speed(0) + speed(1)) / 2,
			OtherChange:     (speed(2) + speed(3)) / 2,
		}, nil
	})
}

// FormatAblations renders all four ablations.
func FormatAblations(npkts int) (string, error) {
	var sb strings.Builder

	est, err := AblationEstimation(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("Ablation A: bound estimation — minimize MaxPR first (paper Fig.7) vs plain GIG coloring\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %14s\n", "benchmark", "PR-first", "joint", "priv saved x4")
	for _, r := range est {
		fmt.Fprintf(&sb, "%-14s %5d/%-5d %6d/%-5d %10d\n",
			r.Name, r.PRFirstPR, r.PRFirstR, r.JointPR, r.JointR, r.PrivateSaved4Threads)
	}

	me, err := AblationMoveElim(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation B: unnecessary-move elimination at the minimal budget\n")
	fmt.Fprintf(&sb, "%-14s %10s %12s %10s\n", "benchmark", "with elim", "without", "eliminated")
	for _, r := range me {
		fmt.Fprintf(&sb, "%-14s %10d %12d %9.1f%%\n", r.Name, r.MovesWith, r.MovesWithout, r.EliminatedPercent)
	}

	sr, err := AblationSRA(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation C: exact SRA sweep (paper §8) vs generic ARA greedy on 4 identical threads\n")
	fmt.Fprintf(&sb, "%-14s %14s %14s\n", "benchmark", "SRA regs/cost", "ARA regs/cost")
	for _, r := range sr {
		fmt.Fprintf(&sb, "%-14s %8d/%-5d %8d/%-5d\n", r.Name, r.SRARegs, r.SRACost, r.ARARegs, r.ARACost)
	}

	sm, err := AblationSpillVsMove("md5", npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation D: spilling vs live-range splitting, single-thread md5, budget sweep\n")
	fmt.Fprintf(&sb, "%4s %9s %10s %7s %10s %9s\n", "K", "spillops", "cyc(spill)", "moves", "cyc(move)", "move win")
	for _, r := range sm {
		if r.Moves < 0 {
			fmt.Fprintf(&sb, "%4d %9d %10.1f %7s %10s %9s\n",
				r.K, r.SpillOps, r.SpillCycles, "-", "infeasible", "-")
			continue
		}
		fmt.Fprintf(&sb, "%4d %9d %10.1f %7d %10.1f %8.1f%%\n",
			r.K, r.SpillOps, r.SpillCycles, r.Moves, r.MoveCycles, r.MoveWinsByPc)
	}

	lt, err := AblationLatency(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation E: memory latency sensitivity (scenario S1: md5 x2 + fir2dim x2)\n")
	fmt.Fprintf(&sb, "%8s %17s %13s\n", "latency", "critical speedup", "other change")
	for _, r := range lt {
		fmt.Fprintf(&sb, "%8d %16.1f%% %12.1f%%\n", r.MemLatency, r.CriticalSpeedup, r.OtherChange)
	}

	bl, err := AblationBaseline(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation F: baseline allocator robustness (scenario S1, md5 speedup vs each baseline)\n")
	fmt.Fprintf(&sb, "%-10s %10s %17s\n", "baseline", "spillcode", "critical speedup")
	for _, r := range bl {
		fmt.Fprintf(&sb, "%-10s %10d %16.1f%%\n", r.Baseline, r.SpillCode, r.CriticalSpeedup)
	}

	sc, err := AblationScheduling(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation H: scheduler policy on top of sharing (S1; critical = md5)\n")
	fmt.Fprintf(&sb, "%-12s %14s %12s %18s\n", "policy", "critical c/i", "other c/i", "critical gain")
	for _, r := range sc {
		fmt.Fprintf(&sb, "%-12s %14.1f %12.1f %17.1f%%\n", r.Policy, r.CriticalCyc, r.OtherCyc, r.CriticalSpeed)
	}

	wt, err := AblationWeighting(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation G: move objective — static count (paper) vs loop-depth weighted, at minimal registers\n")
	fmt.Fprintf(&sb, "%-14s %19s %19s\n", "benchmark", "static: n / dyn", "weighted: n / dyn")
	for _, r := range wt {
		fmt.Fprintf(&sb, "%-14s %9d/%-9d %9d/%-9d\n", r.Name, r.StaticMoves, r.StaticDyn, r.WeightedMoves, r.WeightedDyn)
	}

	th, err := AblationThreads(npkts)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nAblation I: threads per PU (symmetric md5; the shared bank amortizes)\n")
	fmt.Fprintf(&sb, "%8s %4s %4s %10s %11s %12s\n", "threads", "PR", "SR", "total", "regs/thread", "iters/kcyc")
	for _, r := range th {
		fmt.Fprintf(&sb, "%8d %4d %4d %10d %11.1f %12.1f\n", r.Threads, r.PR, r.SR, r.TotalRegs, r.PerThread, r.Throughput)
	}
	return sb.String(), nil
}

// AblationBaselineRow compares the Table 3 story under different baseline
// allocators: the paper's conclusion should not depend on whether the
// per-thread 32-register baseline uses Chaitin coloring or linear scan.
type AblationBaselineRow struct {
	Baseline        string
	SpillCode       int     // spill instructions inserted into md5
	CriticalSpeedup float64 // md5 speedup of sharing vs this baseline
}

// AblationBaseline runs scenario S1 against both baseline allocators.
func AblationBaseline(npkts int) ([]AblationBaselineRow, error) {
	mk := func() []*ir.Func {
		md, _ := bench.Get("md5")
		fir, _ := bench.Get("fir2dim")
		return []*ir.Func{md.Gen(npkts), md.Gen(npkts), fir.Gen(npkts), fir.Gen(npkts)}
	}

	// Sharing side once.
	shareThreads, _, err := sharingThreads(mk())
	if err != nil {
		return nil, err
	}
	shareRes, err := runSim(shareThreads)
	if err != nil {
		return nil, err
	}
	shareCyc := (shareRes.Threads[0].CyclesPerIter() + shareRes.Threads[1].CyclesPerIter()) / 2

	var rows []AblationBaselineRow
	for _, kind := range []string{"chaitin", "linscan"} {
		var threads []*sim.Thread
		spillCode := 0
		for i, f := range mk() {
			phys := make([]ir.Reg, BaselineRegs)
			for k := range phys {
				phys[k] = ir.Reg(i*BaselineRegs + k)
			}
			var out *ir.Func
			switch kind {
			case "chaitin":
				r, err := chaitin.Allocate(f, chaitin.Options{
					Phys: phys, SpillBase: bench.SpillBase, SpillStride: bench.SpillStride,
				})
				if err != nil {
					return nil, err
				}
				out = r.F
				if i < 2 {
					spillCode += r.SpillCode
				}
			case "linscan":
				r, err := linscan.Allocate(f, linscan.Options{
					Phys: phys, SpillBase: bench.SpillBase, SpillStride: bench.SpillStride,
				})
				if err != nil {
					return nil, err
				}
				out = r.F
				if i < 2 {
					spillCode += r.SpillCode
				}
			}
			threads = append(threads, &sim.Thread{
				F: out, ProtectLo: i * BaselineRegs, ProtectHi: (i + 1) * BaselineRegs,
			})
		}
		baseRes, err := runSim(threads)
		if err != nil {
			return nil, err
		}
		baseCyc := (baseRes.Threads[0].CyclesPerIter() + baseRes.Threads[1].CyclesPerIter()) / 2
		rows = append(rows, AblationBaselineRow{
			Baseline:        kind,
			SpillCode:       spillCode,
			CriticalSpeedup: 100 * (baseCyc - shareCyc) / baseCyc,
		})
	}
	return rows, nil
}

// AblationWeightingRow compares the paper's static move-count objective
// against a loop-depth-weighted (dynamic-count) objective at the minimal
// register budget: the weighted allocator may insert more moves, but it
// places them outside loops.
type AblationWeightingRow struct {
	Name          string
	StaticMoves   int   // static objective: number of moves
	StaticDyn     int64 // static objective: loop-weighted cost
	WeightedMoves int   // weighted objective: number of moves
	WeightedDyn   int64 // weighted objective: loop-weighted cost
}

// AblationWeighting runs both objectives on every benchmark, one
// benchmark per worker task.
func AblationWeighting(npkts int) ([]AblationWeightingRow, error) {
	return mapBenches(func(b *bench.Benchmark) (AblationWeightingRow, error) {
		f := b.Gen(npkts)
		li, err := loops.Compute(f)
		if err != nil {
			return AblationWeightingRow{}, fmt.Errorf("ablation weighting %s: %w", b.Name, err)
		}
		w := make([]int64, f.NumPoints())
		for p := range w {
			w[p] = li.PointWeight(p)
		}
		solve := func(weighted bool) (*intra.Solution, error) {
			al, err := intra.New(f)
			if err != nil {
				return nil, err
			}
			if weighted {
				if err := al.UseLoopWeights(); err != nil {
					return nil, err
				}
			}
			bd := al.Bounds()
			return al.Solve(bd.MinPR, bd.MinR-bd.MinPR)
		}
		s, err := solve(false)
		if err != nil {
			return AblationWeightingRow{}, fmt.Errorf("ablation weighting %s: %w", b.Name, err)
		}
		wsol, err := solve(true)
		if err != nil {
			return AblationWeightingRow{}, fmt.Errorf("ablation weighting %s (weighted): %w", b.Name, err)
		}
		return AblationWeightingRow{
			Name:          b.Name,
			StaticMoves:   s.Ctx.MoveCount(),
			StaticDyn:     s.Ctx.WeightedMoveCost(w),
			WeightedMoves: wsol.Ctx.MoveCount(),
			WeightedDyn:   wsol.Ctx.WeightedMoveCost(w),
		}, nil
	})
}

// AblationSchedulingRow compares scheduler policies on scenario S1 with
// the sharing allocation: hardware round-robin vs. strict priority for
// the critical threads (md5 on threads 0-1). Register balancing and
// scheduling priority compose.
type AblationSchedulingRow struct {
	Policy        string
	CriticalCyc   float64
	OtherCyc      float64
	CriticalSpeed float64 // vs round-robin critical
}

// AblationScheduling runs scenario S1 under both scheduling policies.
func AblationScheduling(npkts int) ([]AblationSchedulingRow, error) {
	mk := func() []*ir.Func {
		md, _ := bench.Get("md5")
		fir, _ := bench.Get("fir2dim")
		return []*ir.Func{md.Gen(npkts), md.Gen(npkts), fir.Gen(npkts), fir.Gen(npkts)}
	}
	var rows []AblationSchedulingRow
	var rrCritical float64
	for _, pol := range []struct {
		name string
		p    sim.SchedPolicy
	}{{"round-robin", sim.SchedRoundRobin}, {"priority", sim.SchedPriority}} {
		threads, _, err := sharingThreads(mk())
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(threads, sim.Config{
			NReg: NReg, MemWords: bench.MemWords, Sched: pol.p,
		})
		if err != nil {
			return nil, err
		}
		crit := (res.Threads[0].CyclesPerIter() + res.Threads[1].CyclesPerIter()) / 2
		other := (res.Threads[2].CyclesPerIter() + res.Threads[3].CyclesPerIter()) / 2
		row := AblationSchedulingRow{Policy: pol.name, CriticalCyc: crit, OtherCyc: other}
		if pol.p == sim.SchedRoundRobin {
			rrCritical = crit
		} else if rrCritical > 0 {
			row.CriticalSpeed = 100 * (rrCritical - crit) / rrCritical
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationThreadsRow: the machine model is parameterized by Nthd — more
// threads per PU amortize the shared bank across more private partitions
// but shrink each thread's fair share of the file and of the CPU.
type AblationThreadsRow struct {
	Threads    int
	PR, SR     int
	TotalRegs  int     // Nthd*PR + SGR
	PerThread  float64 // registers per thread under sharing
	Throughput float64 // aggregate iters per kilocycle on the simulator
}

// AblationThreads sweeps the thread count for symmetric md5.
func AblationThreads(npkts int) ([]AblationThreadsRow, error) {
	md, err := bench.Get("md5")
	if err != nil {
		return nil, err
	}
	var rows []AblationThreadsRow
	for _, nthd := range []int{2, 4, 8} {
		ctx, cancel := allocCtx()
		alloc, err := core.AllocateSRACtx(ctx, md.Gen(npkts), nthd, core.Config{NReg: NReg})
		cancel()
		if err != nil {
			return nil, fmt.Errorf("ablation threads %d: %w", nthd, err)
		}
		if alloc.Degraded {
			return nil, errs.Timeoutf("ablation threads %d: allocation degraded (%v); raise -timeout", nthd, alloc.Cause)
		}
		if err := alloc.Verify(); err != nil {
			return nil, err
		}
		var threads []*sim.Thread
		for _, t := range alloc.Threads {
			threads = append(threads, &sim.Thread{
				F: t.F, ProtectLo: t.PrivBase, ProtectHi: t.PrivBase + t.PR,
			})
		}
		res, err := sim.Run(threads, sim.Config{NReg: NReg, MemWords: bench.MemWords})
		if err != nil {
			return nil, err
		}
		var iters int64
		for _, ts := range res.Threads {
			iters += ts.Iters
		}
		rows = append(rows, AblationThreadsRow{
			Threads:    nthd,
			PR:         alloc.Threads[0].PR,
			SR:         alloc.Threads[0].SR,
			TotalRegs:  alloc.TotalRegisters(),
			PerThread:  float64(alloc.TotalRegisters()) / float64(nthd),
			Throughput: 1000 * float64(iters) / float64(res.Cycles),
		})
	}
	return rows, nil
}
