package schedcheck

import (
	"strings"
	"testing"

	"npra/internal/core"
	"npra/internal/ir"
)

func TestSingleThreadDeterministic(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 5
loop:
	load v1, [v0+0]
	add v1, v1, v0
	store [v0+0], v1
	iter
	subi v0, v0, 1
	bnz v0, loop
	halt`)
	res, err := Check([]*ir.Func{f}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != 1 {
		t.Errorf("outcomes = %d, want 1", res.Outcomes)
	}
	if res.Bounded {
		t.Errorf("unexpectedly bounded")
	}
}

// TestAllocatedSharingIsScheduleIndependent: two threads allocated by the
// paper's algorithm, sharing registers, must produce the same result
// under every scheduler and memory-completion interleaving.
func TestAllocatedSharingIsScheduleIndependent(t *testing.T) {
	t1 := ir.MustParse(`
func t1
entry:
	set v0, 3
	ctx
	set v1, 10
	add v2, v0, v1
	store [64], v2
	ctx
	addi v0, v0, 1
	store [68], v0
	halt`)
	t2 := ir.MustParse(`
func t2
entry:
	ctx
	set v0, 7
	muli v1, v0, 6
	store [72], v1
	ctx
	store [76], v0
	halt`)
	alloc, err := core.AllocateARA([]*ir.Func{t1, t2}, core.Config{NReg: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatal(err)
	}
	if alloc.SGR == 0 {
		t.Fatal("want shared registers for this test to mean anything")
	}
	res, err := Check([]*ir.Func{alloc.Threads[0].F, alloc.Threads[1].F}, Options{})
	if err != nil {
		t.Fatalf("allocated code is schedule-dependent: %v", err)
	}
	if res.Outcomes != 1 {
		t.Errorf("outcomes = %d, want 1 (%d paths)", res.Outcomes, res.Paths)
	}
	if res.Paths < 10 {
		t.Errorf("only %d schedules explored; nondeterminism not exercised", res.Paths)
	}
}

// TestDetectsRegisterClobber: naive sharing — both threads keep a value
// in r0 across a switch — must be flagged.
func TestDetectsRegisterClobber(t *testing.T) {
	a := ir.MustParse(`
func a
entry:
	set r0, 1
	ctx
	store [64], r0
	halt`)
	b := ir.MustParse(`
func b
entry:
	set r0, 99
	ctx
	store [68], r0
	halt`)
	_, err := Check([]*ir.Func{a, b}, Options{})
	if err == nil {
		t.Fatal("clobbering schedule not found")
	}
	if !strings.Contains(err.Error(), "schedule-dependent") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestDetectsMemoryRace: two threads storing different values to the same
// address have a genuinely schedule-dependent final memory.
func TestDetectsMemoryRace(t *testing.T) {
	a := ir.MustParse("func a\ne:\n set v0, 1\n store [64], v0\n halt")
	b := ir.MustParse("func b\ne:\n set v1, 2\n store [64], v1\n halt")
	_, err := Check([]*ir.Func{a, b}, Options{})
	if err == nil {
		t.Fatal("memory race not found")
	}
}

// TestLoadCompletionWindow: a load whose value depends on when the memory
// read happens relative to another thread's store is schedule-dependent —
// the checker must explore both completions.
func TestLoadCompletionWindow(t *testing.T) {
	reader := ir.MustParse(`
func reader
e:
	load v0, [64]
	store [68], v0
	halt`)
	writer := ir.MustParse(`
func writer
e:
	set v1, 42
	store [64], v1
	halt`)
	_, err := Check([]*ir.Func{reader, writer}, Options{})
	if err == nil {
		t.Fatal("load/store completion race not found")
	}
}

func TestPathBudget(t *testing.T) {
	// A thread pair with many switches explodes combinatorially; the
	// budget must kick in without error.
	src := `
func f
e:
	set v0, 8
loop:
	ctx
	subi v0, v0, 1
	bnz v0, loop
	halt`
	res, err := Check([]*ir.Func{ir.MustParse(src), ir.MustParse(strings.ReplaceAll(src, "v0", "v1"))},
		Options{MaxPaths: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bounded {
		t.Errorf("budget not reported")
	}
}

func TestDivergentProgramReported(t *testing.T) {
	f := ir.MustParse("e:\n br e")
	if _, err := Check([]*ir.Func{f}, Options{MaxSteps: 100}); err == nil {
		t.Fatal("diverging program not reported")
	}
}
