package intra

import (
	"fmt"

	"npra/internal/core/errs"
	"npra/internal/ir"
)

// RewriteStats reports what the rewriter emitted.
type RewriteStats struct {
	Moves       int // mov instructions inserted
	Xors        int // xor instructions inserted for copy cycles
	Trampolines int // blocks added to split critical edges
}

// Added returns the total instructions added (excluding trampoline br).
func (s RewriteStats) Added() int { return s.Moves + s.Xors }

// Rewrite materializes a context onto physical registers: every operand
// is renamed to phys[color of the piece live at that point], and a move
// (or xor-swap sequence, for cyclic shuffles) is inserted on every CFG
// edge along which some variable changes piece color. phys must provide
// at least ctx.Size distinct registers.
//
// The result is a new, built function over physical registers that is
// observationally equivalent to the original.
func Rewrite(ctx *Context, phys []ir.Reg) (*ir.Func, RewriteStats, error) {
	return RewriteInto(ctx, phys, nil)
}

// RewriteInto is Rewrite with the output's Blocks and Instrs carved out
// of an arena (nil behaves exactly like Rewrite). The returned *ir.Func
// header itself is heap-allocated; only its bulk — block headers and
// instruction slices — lives in the arena, so the func is valid exactly
// as long as the arena's chunks are reachable (which the func's own
// pointers guarantee). Callers must not hand arena-backed funcs to a
// cache: one retained entry would pin the whole request's slabs.
func RewriteInto(ctx *Context, phys []ir.Reg, arena *ir.Arena) (*ir.Func, RewriteStats, error) {
	var stats RewriteStats
	if len(phys) < ctx.Size {
		return nil, stats, errs.Invalidf("intra: need %d physical registers, got %d", ctx.Size, len(phys))
	}
	seen := make(map[ir.Reg]bool, len(phys))
	maxPhys := ir.Reg(-1)
	for _, r := range phys[:ctx.Size] {
		if r < 0 {
			return nil, stats, errs.Invalidf("intra: negative physical register %d", r)
		}
		if seen[r] {
			return nil, stats, errs.Invalidf("intra: duplicate physical register %d", r)
		}
		seen[r] = true
		if r > maxPhys {
			maxPhys = r
		}
	}

	f := ctx.A.F
	mapReg := func(v ir.Reg, p int) (ir.Reg, error) {
		c := ctx.ColorAt(int(v), p)
		if c < 0 {
			return 0, fmt.Errorf("intra: v%d has no piece at point %d", v, p)
		}
		return phys[c], nil
	}

	nf := &ir.Func{Name: f.Name, Physical: true}
	newBlock := func(label string, est int) *ir.Block {
		if arena == nil {
			return &ir.Block{Label: label}
		}
		nb := arena.Block()
		nb.Label = label
		nb.Instrs = arena.InstrSlice(est)
		return nb
	}
	trampolines := 0
	var tail []*ir.Block    // taken-edge trampolines, appended at the end
	var pairsBuf []copyPair // reused across edges; consumed by appendParallelCopy
	var rerr error
	fail := func(err error) {
		if rerr == nil {
			rerr = err
		}
	}

	for bi, b := range f.Blocks {
		// Capacity estimate: the source instructions plus a little room
		// for inline parallel-copy moves; overflow spills to the heap.
		nb := newBlock(b.Label, len(b.Instrs)+8)
		for k := range b.Instrs {
			p := b.Start() + k
			in := b.Instrs[k] // copy
			if in.Def != ir.NoReg {
				r, err := mapReg(in.Def, p)
				if err != nil {
					fail(err)
				}
				in.Def = r
			}
			if in.A != ir.NoReg {
				r, err := mapReg(in.A, p)
				if err != nil {
					fail(err)
				}
				in.A = r
			}
			if in.B != ir.NoReg {
				r, err := mapReg(in.B, p)
				if err != nil {
					fail(err)
				}
				in.B = r
			}

			last := k == len(b.Instrs)-1
			if !last {
				// Straight-line edge p -> p+1: moves go right after p.
				nb.Instrs = append(nb.Instrs, in)
				pairsBuf = ctx.edgeCopies(p, p+1, phys, pairsBuf[:0])
				nb.Instrs = appendParallelCopy(nb.Instrs, pairsBuf, &stats)
				continue
			}

			// Block end: the taken edge (branches) gets a trampoline at
			// the function tail; the fallthrough edge gets an inline
			// trampoline placed directly after this block.
			if in.IsBranch() {
				target := f.Blocks[f.BlockByLabel(in.Target)]
				pairs := ctx.edgeCopies(p, target.Start(), phys, pairsBuf[:0])
				pairsBuf = pairs
				if len(pairs) > 0 {
					trampolines++
					lbl := fmt.Sprintf(".mvt%d", trampolines)
					tb := newBlock(lbl, 3*len(pairs)+1)
					tb.Instrs = appendParallelCopy(tb.Instrs, pairs, &stats)
					tb.Instrs = append(tb.Instrs, ir.Instr{
						Op: ir.OpBr, Def: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: in.Target,
					})
					tail = append(tail, tb)
					in.Target = lbl
					stats.Trampolines++
				}
			}
			nb.Instrs = append(nb.Instrs, in)
			nf.Blocks = append(nf.Blocks, nb)

			if !in.IsUncond() && bi+1 < len(f.Blocks) {
				next := f.Blocks[bi+1]
				pairs := ctx.edgeCopies(p, next.Start(), phys, pairsBuf[:0])
				pairsBuf = pairs
				if len(pairs) > 0 {
					trampolines++
					fb := newBlock(fmt.Sprintf(".mvf%d", trampolines), 3*len(pairs))
					fb.Instrs = appendParallelCopy(fb.Instrs, pairs, &stats)
					nf.Blocks = append(nf.Blocks, fb)
					stats.Trampolines++
				}
			}
		}
	}
	if rerr != nil {
		return nil, stats, rerr
	}
	nf.Blocks = append(nf.Blocks, tail...)
	nf.NumRegs = int(maxPhys) + 1
	if err := nf.Build(); err != nil {
		return nil, stats, fmt.Errorf("intra: rewritten function invalid: %w", err)
	}
	return nf, stats, nil
}

// copyPair is one register transfer on an edge: dst receives src's value.
type copyPair struct{ dst, src ir.Reg }

// edgeCopies appends to pairs the register transfers needed on the CFG
// edge p -> q: variables live along the edge whose pieces at the two
// ends have different colors. Callers pass a reused buffer ([:0]) so the
// per-edge scan allocates nothing.
func (ctx *Context) edgeCopies(p, q int, phys []ir.Reg, pairs []copyPair) []copyPair {
	live := ctx.A.Live
	out, in := live.Out[p], live.In[q]
	for v := out.NextSet(0); v >= 0; v = out.NextSet(v + 1) {
		if !in.Has(v) {
			continue
		}
		cs, cd := ctx.ColorAt(v, p), ctx.ColorAt(v, q)
		if cs < 0 || cd < 0 || cs == cd {
			continue
		}
		pairs = append(pairs, copyPair{dst: phys[cd], src: phys[cs]})
	}
	return pairs
}

// appendParallelCopy sequentializes a parallel copy. All dsts are distinct
// and all srcs are distinct (they are colors of co-live pieces). Transfers
// whose destination is not another pending source are emitted as movs;
// remaining transfers form disjoint cycles, which are rotated in place
// with xor-swaps so no scratch register is needed (the register file may
// be fully occupied at a switch boundary).
// It consumes pairs as scratch (reordering and truncating in place).
func appendParallelCopy(out []ir.Instr, pairs []copyPair, stats *RewriteStats) []ir.Instr {
	pending := pairs[:0]
	for _, pr := range pairs {
		if pr.dst != pr.src {
			pending = append(pending, pr)
		}
	}
	for len(pending) > 0 { //lint:invariant each round either emits at least one unblocked copy (shrinking pending) or extracts a rotation cycle; pending strictly shrinks
		progress := false
		for i := 0; i < len(pending); { //lint:invariant i advances on keep, and removal shrinks len(pending); the scan always terminates
			blocked := false
			for j := range pending {
				if j != i && pending[j].src == pending[i].dst {
					blocked = true
					break
				}
			}
			if blocked {
				i++
				continue
			}
			out = append(out, ir.Instr{Op: ir.OpMov, Def: pending[i].dst, A: pending[i].src, B: ir.NoReg})
			stats.Moves++
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			progress = true
		}
		if progress {
			continue
		}
		// Only cycles remain. Extract one starting at pending[0]:
		// d0 <- d1 <- d2 <- ... <- dk-1 <- d0. Rotate with k-1 swaps.
		cycle := []ir.Reg{pending[0].dst}
		cur := pending[0].src
		for cur != cycle[0] { //lint:invariant walks a single permutation cycle of the finite pending set back to its start
			cycle = append(cycle, cur)
			found := false
			for _, pr := range pending {
				if pr.dst == cur {
					cur = pr.src
					found = true
					break
				}
			}
			if !found {
				panic("intra: broken copy cycle") //lint:invariant parallel-copy semantics guarantee the source of every cycle element is another element; a missing link means the move graph is corrupt
			}
		}
		for i := 0; i+1 < len(cycle); i++ {
			a, b := cycle[i], cycle[i+1]
			out = append(out,
				ir.Instr{Op: ir.OpXor, Def: a, A: a, B: b},
				ir.Instr{Op: ir.OpXor, Def: b, A: a, B: b},
				ir.Instr{Op: ir.OpXor, Def: a, A: a, B: b},
			)
			stats.Xors += 3
		}
		// Remove the cycle's pairs from pending (cycles are short; a
		// linear membership scan beats a map here).
		rest := pending[:0]
		for _, pr := range pending {
			hit := false
			for _, r := range cycle {
				if pr.dst == r {
					hit = true
					break
				}
			}
			if !hit {
				rest = append(rest, pr)
			}
		}
		pending = rest
	}
	return out
}
