// Package loadgen is a closed-loop load generator for npserve: a pool
// of workers posts allocation requests (a tunable fraction of which are
// duplicates drawn from a fixed spec pool), measures client-side
// latency, and folds in the server's own /metrics counters at the end.
// It lives under internal/tools — wall-clock and PRNG use is its whole
// job, which is exactly what the detlint clock exemption is for.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"npra/internal/core"
	"npra/internal/core/errs"
)

// Options configures a load run. Zero values take the noted defaults.
type Options struct {
	// URL is the server's base URL (e.g. http://127.0.0.1:8080). Required.
	URL string

	// Concurrency is the number of closed-loop workers (default 4).
	Concurrency int

	// Duration bounds the run in wall time; MaxRequests bounds it in
	// total requests. At least one must be set; whichever trips first
	// ends the run.
	Duration    time.Duration
	MaxRequests int64

	// DupRatio is the probability that a request repeats one of PoolSize
	// fixed specs instead of a fresh unique one (default 0, range 0..1).
	DupRatio float64

	// PoolSize is the number of distinct specs duplicates draw from
	// (default 16).
	PoolSize int

	// Threads caps the threads per generated request (default 3) and
	// NReg sets the register budget (default 64).
	Threads int
	NReg    int

	// TimeoutMS is forwarded in each request (0 = server default).
	TimeoutMS int64

	// Seed makes the generated request stream reproducible (default 1).
	Seed int64

	// Client overrides the HTTP client (default: 30s-timeout client).
	Client *http.Client

	// Spec overrides the generated request stream: Spec(i) returns the
	// JSON body of request i. The kernel-mix workload (RunMix) uses this
	// to compose requests from a shared kernel pool. When set, the
	// default progen stream is not used (DupRatio/PoolSize still apply:
	// duplicates draw from Spec(0..PoolSize-1)).
	Spec func(i int64) []byte
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 16
	}
	if o.Threads <= 0 {
		o.Threads = 3
	}
	if o.NReg <= 0 {
		o.NReg = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// Report is the outcome of one load run.
type Report struct {
	Requests      int64            `json:"requests"`
	ByCode        map[string]int64 `json:"by_code"`
	FiveXX        int64            `json:"five_xx"`
	TransportErrs int64            `json:"transport_errors"`

	DurationS     float64 `json:"duration_s"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`

	// SingleflightHitRate and Metrics come from the server's /metrics
	// endpoint, scraped after the run.
	SingleflightHitRate float64            `json:"singleflight_hit_rate"`
	Metrics             map[string]float64 `json:"metrics,omitempty"`
}

// Check validates a report against the serve-e2e acceptance gates:
// no transport errors, at most maxFiveXX server errors, a singleflight
// hit rate of at least minDedup (skipped when minDedup is negative),
// and a p99 latency of at most maxP99MS milliseconds (skipped when
// maxP99MS is not positive).
func (r *Report) Check(maxFiveXX int64, minDedup, maxP99MS float64) error {
	if r.Requests == 0 {
		return errs.Internalf("loadgen: no requests completed")
	}
	if r.TransportErrs > 0 {
		return errs.Internalf("loadgen: %d transport errors", r.TransportErrs)
	}
	if r.FiveXX > maxFiveXX {
		return errs.Internalf("loadgen: %d responses were 5xx (allowed %d)", r.FiveXX, maxFiveXX)
	}
	if minDedup >= 0 && r.SingleflightHitRate < minDedup {
		return errs.Internalf("loadgen: singleflight hit rate %.4f below the %.4f floor",
			r.SingleflightHitRate, minDedup)
	}
	if maxP99MS > 0 && r.P99MS > maxP99MS {
		return errs.Internalf("loadgen: p99 latency %.2fms above the %.2fms ceiling",
			r.P99MS, maxP99MS)
	}
	return nil
}

// spec derives request i of a deterministic stream: thread count and
// progen seeds are pure functions of (base seed, i).
func (o *Options) spec(i int64) []byte {
	req := core.WireRequest{NReg: o.NReg, TimeoutMS: o.TimeoutMS}
	nthreads := 1 + int(i)%o.Threads
	for th := 0; th < nthreads; th++ {
		req.Threads = append(req.Threads, core.WireThread{
			Progen: &core.WireProgen{Seed: o.Seed*1_000_000 + i*10 + int64(th)},
		})
	}
	blob, err := json.Marshal(&req)
	if err != nil {
		// Marshaling a struct of ints cannot fail; keep the signature clean.
		return []byte("{}")
	}
	return blob
}

// Run drives the load and returns the report. It stops when ctx is
// done, Duration elapses, or MaxRequests have been issued — whichever
// comes first.
func Run(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if opt.URL == "" {
		return nil, errs.Invalidf("loadgen: no target URL")
	}
	if opt.Duration <= 0 && opt.MaxRequests <= 0 {
		return nil, errs.Invalidf("loadgen: need a duration or a request budget")
	}
	if opt.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Duration)
		defer cancel()
	}

	specFn := opt.spec
	if opt.Spec != nil {
		specFn = opt.Spec
	}

	// The duplicate pool: PoolSize specs reused across all workers.
	pool := make([][]byte, opt.PoolSize)
	for i := range pool {
		pool[i] = specFn(int64(i))
	}

	var issued atomic.Int64 // request tickets; also numbers unique specs
	type workerStats struct {
		latencies []float64 // milliseconds
		byCode    map[int]int64
		transport int64
	}
	stats := make([]workerStats, opt.Concurrency)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
			st := &stats[w]
			st.byCode = make(map[int]int64)
			for ctx.Err() == nil {
				ticket := issued.Add(1)
				if opt.MaxRequests > 0 && ticket > opt.MaxRequests {
					return
				}
				var body []byte
				if rng.Float64() < opt.DupRatio {
					body = pool[rng.Intn(len(pool))]
				} else {
					// Unique specs start past the pool's index range.
					body = specFn(int64(opt.PoolSize) + ticket)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					opt.URL+"/allocate", bytes.NewReader(body))
				if err != nil {
					st.transport++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := opt.Client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return // run ended mid-request; don't count it
					}
					st.transport++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
				st.byCode[resp.StatusCode]++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		ByCode:    make(map[string]int64),
		DurationS: elapsed.Seconds(),
	}
	var all []float64
	for w := range stats {
		st := &stats[w]
		all = append(all, st.latencies...)
		rep.TransportErrs += st.transport
		for code, n := range st.byCode {
			rep.Requests += n
			rep.ByCode[strconv.Itoa(code)] += n
			if code >= 500 {
				rep.FiveXX += n
			}
		}
	}
	sort.Float64s(all)
	if len(all) > 0 {
		rep.P50MS = percentile(all, 0.50)
		rep.P90MS = percentile(all, 0.90)
		rep.P99MS = percentile(all, 0.99)
		rep.MaxMS = all[len(all)-1]
		sum := 0.0
		for _, v := range all {
			sum += v
		}
		rep.MeanMS = sum / float64(len(all))
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}

	metrics, err := ScrapeMetrics(opt.Client, opt.URL)
	if err != nil {
		return rep, fmt.Errorf("loadgen: scraping metrics after the run: %w", err)
	}
	rep.Metrics = metrics
	rep.SingleflightHitRate = metrics["npserve_singleflight_hit_rate"]
	return rep, nil
}

// percentile returns the p-th percentile (0..1) of sorted values using
// the nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ScrapeMetrics fetches url's /metrics endpoint and parses the flat
// "name value" exposition into a map. Labeled series are keyed by their
// full name-with-labels string.
func ScrapeMetrics(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errs.Internalf("loadgen: /metrics returned %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(blob), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, nil
}
