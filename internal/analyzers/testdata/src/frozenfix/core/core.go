// Fixture stub for the frozenfunc analyzer: a minimal core package
// (import path suffix /core) with the ThreadAlloc shape and a
// RewriteSource like the real seam.
package core

import "frozenfix/ir"

type ThreadAlloc struct {
	Name string
	PR   int
	F    *ir.Func
}

type Allocation struct {
	Threads []*ThreadAlloc
}

type RewriteStats struct {
	Moves int
}

type RewriteSource interface {
	LookupRewrite(f *ir.Func, pr, sr int, privBase, sharedBase ir.Reg) (*ir.Func, RewriteStats, bool)
	StoreRewrite(f *ir.Func, pr, sr int, privBase, sharedBase ir.Reg, canonical *ir.Func, stats RewriteStats) *ir.Func
}
