package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"npra/internal/funccache"
	"npra/internal/intra"
)

// latencyBucketsMS are the upper bounds (inclusive, in milliseconds) of
// the request-latency histogram; a final implicit +Inf bucket catches
// the tail. Log-spaced: the interesting territory spans sub-millisecond
// cache hits to multi-second degraded engine runs.
var latencyBucketsMS = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// Metrics aggregates the serving layer's counters. All methods are safe
// for concurrent use. The zero value is not usable; Server owns the one
// instance and exposes read access via Server.Metrics (snapshot) and the
// /metrics endpoint (text rendering).
type Metrics struct {
	mu sync.Mutex

	requests map[int]int64 // HTTP status -> count, over all endpoints' allocation requests
	latency  []int64       // histogram counts, len(latencyBucketsMS)+1
	latSumNS int64
	latCount int64

	sfInflightHits int64 // joined a flight still running
	sfCachedHits   int64 // joined a completed flight held in the result cache
	sfMisses       int64 // led a new flight (one engine invocation each, minus overload aborts)

	batches       int64 // engine invocations (each runs one batch)
	batchRequests int64 // leader jobs executed across all batches
	maxBatch      int64 // largest batch executed

	degraded  int64 // engine results with the static-partition fallback flag
	overloads int64 // requests refused with 429
	drains    int64 // requests refused with 503 (draining)

	sheds           map[string]int64 // admission-refusal reason -> count (shed_low, shed_normal, queue_full, tenant_full)
	tenantAdmit     map[string]int64 // tenant -> requests entering the pipeline (leader or in-flight join)
	tenantComplete  map[string]int64 // tenant -> requests answered 200
	tenantOverloads map[string]int64 // tenant -> requests refused 429

	svcEWMANS float64 // exponentially weighted moving average of per-job engine service time
	jobsDone  int64   // engine jobs measured into the EWMA

	solveCache intra.CacheStats // engine Solve-point cache, summed over invocations
	phases     intra.PhaseStats // engine per-phase timings, summed over invocations
}

func newMetrics() *Metrics {
	return &Metrics{
		requests:        make(map[int]int64),
		latency:         make([]int64, len(latencyBucketsMS)+1),
		sheds:           make(map[string]int64),
		tenantAdmit:     make(map[string]int64),
		tenantComplete:  make(map[string]int64),
		tenantOverloads: make(map[string]int64),
	}
}

// observe records one finished allocation request: its response status
// and its handler-side latency.
func (m *Metrics) observe(status int, d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[status]++
	m.latCount++
	m.latSumNS += d.Nanoseconds()
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			m.latency[i]++
			return
		}
	}
	m.latency[len(latencyBucketsMS)]++
}

func (m *Metrics) join(kind joinKind) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch kind {
	case joinLeader:
		m.sfMisses++
	case joinInflight:
		m.sfInflightHits++
	case joinCached:
		m.sfCachedHits++
	}
}

// overloadReason records one 429 refusal with its admission reason
// (queue_full, tenant_full, shed_low, shed_normal, closed) and tenant.
func (m *Metrics) overloadReason(tenant, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.overloads++
	m.sheds[reason]++
	m.tenantOverloads[tenant]++
}

// tenantAdmitted records one request entering the allocation pipeline
// for tenant (leading a flight or joining one in flight).
func (m *Metrics) tenantAdmitted(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantAdmit[tenant]++
}

// tenantCompleted records one 200 answered for tenant.
func (m *Metrics) tenantCompleted(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantComplete[tenant]++
}

// jobDone folds one engine job's wall duration into the service-time
// EWMA that the adaptive Retry-After derivation reads (α = 0.2: a few
// dozen jobs dominate, old history decays).
func (m *Metrics) jobDone(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsDone++
	ns := float64(d.Nanoseconds())
	if m.jobsDone == 1 {
		m.svcEWMANS = ns
		return
	}
	m.svcEWMANS = 0.8*m.svcEWMANS + 0.2*ns
}

// serviceEWMA returns the smoothed per-job engine service time (0
// before the first job completes).
func (m *Metrics) serviceEWMA() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.svcEWMANS)
}

func (m *Metrics) drainRefusal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drains++
}

// batch records one engine invocation over n batched jobs.
func (m *Metrics) batch(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchRequests += int64(n)
	if int64(n) > m.maxBatch {
		m.maxBatch = int64(n)
	}
}

// engineResult folds one engine result's counters in (nil alloc on
// engine error).
func (m *Metrics) engineResult(cache intra.CacheStats, phases intra.PhaseStats, degraded bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solveCache.Add(cache)
	m.phases.Add(phases)
	if degraded {
		m.degraded++
	}
}

// Snapshot is a point-in-time copy of the serving metrics, for tests
// and programmatic scraping.
type Snapshot struct {
	Requests map[int]int64

	LatencyCount int64
	LatencySumNS int64

	SingleflightInflightHits int64
	SingleflightCachedHits   int64
	SingleflightMisses       int64

	Batches       int64
	BatchRequests int64
	MaxBatch      int64

	Degraded  int64
	Overloads int64
	Drains    int64

	// Sheds maps each admission-refusal reason (shed_low, shed_normal,
	// queue_full, tenant_full) to its 429 count; the per-tenant maps
	// break admissions, completions, refusals and live backlog out by
	// X-Tenant.
	Sheds            map[string]int64
	TenantAdmitted   map[string]int64
	TenantCompleted  map[string]int64
	TenantOverloads  map[string]int64
	TenantQueueDepth map[string]int

	// ServiceEWMA is the smoothed per-job engine service time feeding
	// the adaptive Retry-After hint; RetryAfterS is that hint as of the
	// snapshot.
	ServiceEWMA time.Duration
	RetryAfterS int

	QueueDepth int

	SolveCache intra.CacheStats
	Phases     intra.PhaseStats

	// FuncCache, BodyCache and RewriteCache are the function-granular
	// cache counters, snapshotted from the Server's caches (zero when
	// disabled); RawCache covers the byte-identical request fast path.
	FuncCache    funccache.Stats
	BodyCache    funccache.BodyStats
	RewriteCache funccache.RewriteCacheStats
	RawCache     rawStats
}

// cacheSnapshots bundles the per-tier cache counters a snapshot or a
// render pass needs.
type cacheSnapshots struct {
	Func    funccache.Stats
	Body    funccache.BodyStats
	Rewrite funccache.RewriteCacheStats
	Raw     rawStats
}

// SingleflightHits returns in-flight joins plus cached joins: every
// request answered without its own engine invocation.
func (s *Snapshot) SingleflightHits() int64 {
	return s.SingleflightInflightHits + s.SingleflightCachedHits
}

// SingleflightHitRate returns SingleflightHits / all singleflight
// lookups, or 0 before the first request.
func (s *Snapshot) SingleflightHitRate() float64 {
	total := s.SingleflightHits() + s.SingleflightMisses
	if total == 0 {
		return 0
	}
	return float64(s.SingleflightHits()) / float64(total)
}

func (m *Metrics) snapshot(queueDepth int, tenants []tenantDepth, cs cacheSnapshots) *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{
		Requests:                 make(map[int]int64, len(m.requests)),
		Sheds:                    copyCounts(m.sheds),
		TenantAdmitted:           copyCounts(m.tenantAdmit),
		TenantCompleted:          copyCounts(m.tenantComplete),
		TenantOverloads:          copyCounts(m.tenantOverloads),
		TenantQueueDepth:         make(map[string]int, len(tenants)),
		ServiceEWMA:              time.Duration(m.svcEWMANS),
		LatencyCount:             m.latCount,
		LatencySumNS:             m.latSumNS,
		SingleflightInflightHits: m.sfInflightHits,
		SingleflightCachedHits:   m.sfCachedHits,
		SingleflightMisses:       m.sfMisses,
		Batches:                  m.batches,
		BatchRequests:            m.batchRequests,
		MaxBatch:                 m.maxBatch,
		Degraded:                 m.degraded,
		Overloads:                m.overloads,
		Drains:                   m.drains,
		QueueDepth:               queueDepth,
		SolveCache:               m.solveCache,
		Phases:                   m.phases,
		FuncCache:                cs.Func,
		BodyCache:                cs.Body,
		RewriteCache:             cs.Rewrite,
		RawCache:                 cs.Raw,
	}
	for code, n := range m.requests {
		s.Requests[code] = n
	}
	for _, td := range tenants {
		s.TenantQueueDepth[td.Tenant] = td.Depth
	}
	return s
}

// copyCounts clones a counter map for a snapshot.
func copyCounts(src map[string]int64) map[string]int64 {
	dst := make(map[string]int64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// render writes the text exposition format: one "name value" line per
// counter, Prometheus-style labels for the few multi-dimensional ones.
// Output is fully deterministic (sorted codes, fixed bucket and phase
// order).
func (m *Metrics) render(queueDepth int, tenants []tenantDepth, cs cacheSnapshots) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	var codes []int
	for code := range m.requests {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(&b, "npserve_requests_total{code=%q} %d\n", fmt.Sprint(code), m.requests[code])
	}

	cum := int64(0)
	for i, ub := range latencyBucketsMS {
		cum += m.latency[i]
		fmt.Fprintf(&b, "npserve_latency_ms_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.latency[len(latencyBucketsMS)]
	fmt.Fprintf(&b, "npserve_latency_ms_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "npserve_latency_ms_count %d\n", m.latCount)
	fmt.Fprintf(&b, "npserve_latency_ms_sum %.3f\n", float64(m.latSumNS)/1e6)

	hits := m.sfInflightHits + m.sfCachedHits
	fmt.Fprintf(&b, "npserve_singleflight_hits %d\n", hits)
	fmt.Fprintf(&b, "npserve_singleflight_inflight_hits %d\n", m.sfInflightHits)
	fmt.Fprintf(&b, "npserve_singleflight_cached_hits %d\n", m.sfCachedHits)
	fmt.Fprintf(&b, "npserve_singleflight_misses %d\n", m.sfMisses)
	fmt.Fprintf(&b, "npserve_singleflight_hit_rate %.4f\n", rate(hits, m.sfMisses))

	fmt.Fprintf(&b, "npserve_engine_invocations_total %d\n", m.batches)
	fmt.Fprintf(&b, "npserve_batched_requests_total %d\n", m.batchRequests)
	fmt.Fprintf(&b, "npserve_batch_max_size %d\n", m.maxBatch)

	fmt.Fprintf(&b, "npserve_degraded_total %d\n", m.degraded)
	fmt.Fprintf(&b, "npserve_overload_total %d\n", m.overloads)
	fmt.Fprintf(&b, "npserve_drain_refusals_total %d\n", m.drains)
	fmt.Fprintf(&b, "npserve_queue_depth %d\n", queueDepth)

	for _, reason := range sortedKeys(m.sheds) {
		fmt.Fprintf(&b, "npserve_shed_total{reason=%q} %d\n", reason, m.sheds[reason])
	}
	for _, tn := range sortedKeys(m.tenantAdmit) {
		fmt.Fprintf(&b, "npserve_tenant_admitted_total{tenant=%q} %d\n", tn, m.tenantAdmit[tn])
	}
	for _, tn := range sortedKeys(m.tenantComplete) {
		fmt.Fprintf(&b, "npserve_tenant_completed_total{tenant=%q} %d\n", tn, m.tenantComplete[tn])
	}
	for _, tn := range sortedKeys(m.tenantOverloads) {
		fmt.Fprintf(&b, "npserve_tenant_overload_total{tenant=%q} %d\n", tn, m.tenantOverloads[tn])
	}
	for _, td := range tenants {
		fmt.Fprintf(&b, "npserve_tenant_queue_depth{tenant=%q} %d\n", td.Tenant, td.Depth)
	}
	fmt.Fprintf(&b, "npserve_service_time_ewma_ms %.3f\n", m.svcEWMANS/1e6)

	fmt.Fprintf(&b, "npserve_solve_cache_hits %d\n", m.solveCache.Hits)
	fmt.Fprintf(&b, "npserve_solve_cache_misses %d\n", m.solveCache.Misses)
	fmt.Fprintf(&b, "npserve_solve_cache_hit_rate %.4f\n", m.solveCache.HitRate())

	fc, bc := cs.Func, cs.Body
	fmt.Fprintf(&b, "npserve_func_cache_hits %d\n", fc.Hits)
	fmt.Fprintf(&b, "npserve_func_cache_misses %d\n", fc.Misses)
	fmt.Fprintf(&b, "npserve_func_cache_hit_rate %.4f\n", rate(fc.Hits, fc.Misses))
	fmt.Fprintf(&b, "npserve_func_cache_evictions %d\n", fc.Evictions)
	fmt.Fprintf(&b, "npserve_func_cache_discards %d\n", fc.Discards)
	fmt.Fprintf(&b, "npserve_func_cache_entries %d\n", fc.Entries)
	fmt.Fprintf(&b, "npserve_func_cache_idle %d\n", fc.Idle)
	fmt.Fprintf(&b, "npserve_func_cache_bytes %d\n", fc.Bytes)

	fmt.Fprintf(&b, "npserve_body_cache_hits %d\n", bc.Hits)
	fmt.Fprintf(&b, "npserve_body_cache_misses %d\n", bc.Misses)
	fmt.Fprintf(&b, "npserve_body_cache_evictions %d\n", bc.Evictions)
	fmt.Fprintf(&b, "npserve_body_cache_entries %d\n", bc.Entries)

	rc := cs.Rewrite
	fmt.Fprintf(&b, "npserve_rewrite_cache_hits %d\n", rc.Hits)
	fmt.Fprintf(&b, "npserve_rewrite_cache_reloc_hits %d\n", rc.RelocHits)
	fmt.Fprintf(&b, "npserve_rewrite_cache_misses %d\n", rc.Misses)
	fmt.Fprintf(&b, "npserve_rewrite_cache_hit_rate %.4f\n", rate(rc.Hits+rc.RelocHits, rc.Misses))
	fmt.Fprintf(&b, "npserve_rewrite_cache_evictions %d\n", rc.Evictions)
	fmt.Fprintf(&b, "npserve_rewrite_cache_entries %d\n", rc.Entries)
	fmt.Fprintf(&b, "npserve_rewrite_cache_bytes %d\n", rc.Bytes)

	fmt.Fprintf(&b, "npserve_raw_cache_hits %d\n", cs.Raw.Hits)
	fmt.Fprintf(&b, "npserve_raw_cache_misses %d\n", cs.Raw.Misses)
	fmt.Fprintf(&b, "npserve_raw_cache_evictions %d\n", cs.Raw.Evictions)
	fmt.Fprintf(&b, "npserve_raw_cache_entries %d\n", cs.Raw.Entries)

	phases := []struct {
		name string
		ns   int64
	}{
		{"build", m.phases.BuildNS},
		{"estimate_merge", m.phases.MergeNS},
		{"estimate_repair", m.phases.RepairNS},
		{"chain_coloring", m.phases.ColorNS},
		{"rewrite", m.phases.RewriteNS},
		{"rewrite_cached", m.phases.RewriteCachedNS},
	}
	for _, p := range phases {
		fmt.Fprintf(&b, "npserve_engine_phase_ns{phase=%q} %d\n", p.name, p.ns)
	}
	fmt.Fprintf(&b, "npserve_engine_chain_steps %d\n", m.phases.ChainSteps)
	fmt.Fprintf(&b, "npserve_engine_trials %d\n", m.phases.Trials)
	return b.String()
}

// sortedKeys returns the map's keys in ascending order, for
// deterministic rendering.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func rate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// trimFloat renders a bucket bound without a trailing ".000000".
func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
