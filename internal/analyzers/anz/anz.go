// Package anz is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis. The container this repo is
// built in has no module proxy access, so instead of depending on
// x/tools the analyzer suite (see internal/analyzers) runs on this
// stdlib-only re-implementation: the Analyzer/Pass/Diagnostic shapes
// match the x/tools API closely enough that the passes could be ported
// to a real multichecker by swapping the import.
//
// The framework deliberately mirrors the paper's stance: invariants are
// proven over the *program text* (here, the allocator's own source)
// rather than checked at runtime. Each analyzer encodes one invariant
// established by earlier PRs — determinism, the error taxonomy,
// panic-freedom, context plumbing, scratch-pool aliasing — and make
// lint / CI fail the build when a change violates it.
package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass: a named invariant and the
// function that checks a single package against it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description shown by npravet -list.
	Doc string

	// Run checks one package and reports findings via pass.Reportf.
	// The returned error aborts the whole run (reserved for analyzer
	// bugs, not findings).
	Run func(*Pass) error

	// NewRunState, when set, is called once at the start of each
	// anz.Run to create cross-package accumulation state. Every Pass
	// of this analyzer in that run sees it via Pass.RunState, and
	// Finish receives it after the last package. Analyzers run
	// concurrently with each other but see their own packages
	// sequentially, so the state needs no locking.
	NewRunState func() any

	// Finish, when set, runs once after every package's Run with the
	// run state. Whole-program findings — lock-order cycles, fields
	// atomic here but plain there — are reported through report, and
	// are subject to //lint:ignore suppression at the reported
	// position like any other diagnostic.
	Finish func(state any, report func(pos token.Position, format string, args ...any)) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer

	// Path is the package's import path (e.g. "npra/internal/intra").
	Path string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	state any
	dirs  *directiveSet
	sink  *[]Diagnostic
}

// RunState returns the cross-package state created by the analyzer's
// NewRunState for the current anz.Run, or nil when the analyzer does
// not declare one.
func (p *Pass) RunState() any { return p.state }

// Reportf records a diagnostic at pos. Suppression via //lint:ignore
// directives is applied by the runner, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Invariant looks for a //lint:invariant directive attached to the line
// at pos (trailing on the same line, or alone on the line above) and
// marks it consumed. It returns the justification text and whether a
// directive was found. Analyzers that accept documented invariant sites
// (panicfree, ctxplumb) call this; a directive no analyzer consumes is
// itself reported by the runner.
func (p *Pass) Invariant(pos token.Pos) (string, bool) {
	return p.dirs.invariantAt(p.Fset.Position(pos))
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}
