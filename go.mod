// Deliberately dependency-free: the build container has no module-proxy
// access, so the static-analysis suite (cmd/npravet) runs on the
// stdlib-only internal/analyzers/anz framework instead of a pinned
// golang.org/x/tools — see docs/INTERNALS.md "Static invariants &
// linting".
module npra

go 1.22
