// Fixture for the panicfree analyzer and the directive verifier: naked
// library panics are flagged unless inside a Must* helper or annotated
// with a verified //lint:invariant justification. Running panicfree
// also turns on unused-directive verification, so stray and unknown
// directives are exercised here too (malformed-justification parsing
// has its own unit tests in the anz package).
package panicfix

// Reset panics nakedly in library code: flagged.
func Reset(n int) {
	if n < 0 {
		panic("bad n") // want `naked panic in library code \(func Reset\)`
	}
}

// MustReset's documented contract is to panic: exempt.
func MustReset(n int) {
	if n < 0 {
		panic("must helpers may panic")
	}
}

// Check documents a corruption invariant: the directive is consumed.
func Check(ok bool) {
	if !ok {
		panic("index corruption") //lint:invariant occupancy indexes disagree with piece state; unreachable unless the heap is corrupted
	}
}

// Suppressed demonstrates //lint:ignore as the other escape hatch.
func Suppressed() {
	panic("transitional") //lint:ignore panicfree legacy call path removed in the next change
}

// Stray directive: annotates no panic or loop, so the verifier flags it.
func Fine() int {
	//lint:invariant this directive annotates nothing at all // want `stray //lint:invariant directive`
	return 1
}

// Unknown verb and an ignore that suppresses nothing: both flagged.
func AlsoFine() int {
	//lint:checksum deadbeef is not a known directive verb // want `unknown directive //lint:checksum`
	//lint:ignore panicfree there is no diagnostic here to suppress // want `unused //lint:ignore directive`
	return 2
}

// A local function named panic is not the builtin: exempt.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
