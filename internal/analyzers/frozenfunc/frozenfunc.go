// Package frozenfunc enforces the PR-8 rewrite-cache immutability
// contract: a rewritten body that may have come from a RewriteCache is
// shared by pointer across requests and engine threads, so mutating it
// in place corrupts every concurrent holder. The runtime side freezes
// cached bodies (ir.Func.Freeze makes Build error and RenumberRegs
// panic); this pass catches the same class of bug at build time, before
// it becomes a once-in-a-thousand-requests crash.
//
// Tracked cache-shared bodies are, conservatively, every *ir.Func
// reached through
//
//   - the F field of core.ThreadAlloc (an allocation's rewritten
//     thread body — frozen whenever a rewrite cache served the run, and
//     callers cannot tell), and
//   - the body returned by a RewriteSource's LookupRewrite or
//     StoreRewrite (always frozen before it becomes visible),
//
// plus locals bound to either. Within each function of a consumer
// package the pass flags, on tracked values:
//
//   - calls to the mutating methods Build and RenumberRegs, and
//   - writes through the body: assignments to its fields or to
//     elements reached from it (f.NumRegs = ..., th.F.Blocks[i] = ...).
//
// Replacing the pointer itself (th.F = g) is not a mutation of the
// shared body and is not flagged; neither is mutating a Clone — the
// clone is caller-owned. Like its siblings the check is intraprocedural
// and type-driven; justified exceptions carry a //lint:ignore
// frozenfunc directive.
package frozenfunc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the frozenfunc pass.
var Analyzer = &anz.Analyzer{
	Name: "frozenfunc",
	Doc: "flags in-place mutation of cache-shared rewritten bodies (ThreadAlloc.F, " +
		"RewriteSource results) — frozen funcs are shared by pointer across requests",
	Run: run,
}

// mutators are ir.Func's in-place mutating methods.
var mutators = map[string]bool{"Build": true, "RenumberRegs": true}

// rewriteSourceMethods name the RewriteSource entry points whose first
// result is a cache-shared body.
var rewriteSourceMethods = map[string]bool{"LookupRewrite": true, "StoreRewrite": true}

func run(pass *anz.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *anz.Pass, fd *ast.FuncDecl) {
	// Locals bound to a cache-shared body. Position-ordered like the
	// sibling passes: a use is judged against its latest preceding
	// binding, so rebinding a name to a fresh Clone clears its taint
	// for later uses only.
	bindings := make(map[types.Object][]binding)
	tracked := trackSet{pass: pass, bindings: bindings}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			shared := false
			switch {
			case len(as.Lhs) == len(as.Rhs):
				shared = sharedBodyExpr(pass, as.Rhs[i], tracked)
			case len(as.Rhs) == 1 && i == 0:
				// Multi-value form — `body, stats, ok :=
				// rc.LookupRewrite(...)` binds the body first.
				if call, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
					shared = rewriteSourceMethods[calleeName(call)] && funcPtrType(pass, call, 0)
				}
			}
			if obj := pass.Info.ObjectOf(id); obj != nil {
				bindings[obj] = append(bindings[obj], binding{pos: id.Pos(), shared: shared})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !mutators[sel.Sel.Name] {
				return true
			}
			if sharedBodyExpr(pass, sel.X, tracked) {
				pass.Reportf(n.Pos(), "%s on a cache-shared rewritten body; frozen funcs are shared by pointer across requests — work on a Clone instead", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root, hit := writeThroughShared(pass, lhs, tracked); hit {
					pass.Reportf(lhs.Pos(), "write through the cache-shared rewritten body %s; frozen funcs are shared by pointer across requests — mutate a Clone instead", exprString(root))
				}
			}
		}
		return true
	})
}

// binding is one (re)binding of a local: its position and whether the
// bound value is cache-shared.
type binding struct {
	pos    token.Pos
	shared bool
}

// trackSet resolves whether an identifier denotes a cache-shared body
// at a given use position: the latest binding at or before the use
// decides.
type trackSet struct {
	pass     *anz.Pass
	bindings map[types.Object][]binding
}

func (t trackSet) sharedAt(id *ast.Ident) bool {
	obj := t.pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	latest := binding{pos: token.NoPos}
	for _, b := range t.bindings[obj] {
		if b.pos <= id.Pos() && b.pos > latest.pos {
			latest = b
		}
	}
	return latest.pos != token.NoPos && latest.shared
}

// writeThroughShared reports whether an assignment target reaches
// through a cache-shared body: a field or element of the body (not the
// body-valued expression itself, whose reassignment only swaps a
// pointer). Returns the shared root for the diagnostic.
func writeThroughShared(pass *anz.Pass, lhs ast.Expr, tracked trackSet) (ast.Expr, bool) {
	for {
		var base ast.Expr
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			base = l.X
		case *ast.IndexExpr:
			base = l.X
		case *ast.StarExpr:
			base = l.X
		case *ast.ParenExpr:
			lhs = l.X
			continue
		default:
			return nil, false
		}
		if sharedBodyExpr(pass, base, tracked) {
			return base, true
		}
		lhs = base
	}
}

// sharedBodyExpr reports whether expr denotes a cache-shared *ir.Func:
// a ThreadAlloc.F selection, a RewriteSource call result, or a local
// tracked as one at this position.
func sharedBodyExpr(pass *anz.Pass, expr ast.Expr, tracked trackSet) bool {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return sharedBodyExpr(pass, e.X, tracked)
	case *ast.Ident:
		return tracked.sharedAt(e)
	case *ast.SelectorExpr:
		return e.Sel.Name == "F" && threadAllocType(pass, e.X)
	case *ast.CallExpr:
		return rewriteSourceMethods[calleeName(e)] && funcPtrType(pass, e, -1)
	}
	return false
}

// threadAllocType reports whether expr's static type is
// core.ThreadAlloc or a pointer to it (package matched by import-path
// suffix so fixtures can stub core).
func threadAllocType(pass *anz.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ThreadAlloc" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "/core")
}

// funcPtrType reports whether call's result — element i of its tuple,
// or its single value when i is -1 — is a *ir.Func (package matched by
// import-path suffix).
func funcPtrType(pass *anz.Pass, call *ast.CallExpr, i int) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tup, isTup := t.(*types.Tuple); isTup {
		if i < 0 || i >= tup.Len() {
			return false
		}
		t = tup.At(i).Type()
	} else if i > 0 {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Func" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "/ir")
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "body"
}
