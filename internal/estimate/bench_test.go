package estimate

import (
	"math/rand"
	"testing"

	"npra/internal/ig"
	"npra/internal/passes"
	"npra/internal/progen"
)

// BenchmarkConflictRepair isolates step 3 of the Figure 7 estimator: the
// conflict-edge repair that runs after the independent BIG and IIG
// colorings are merged. The workload replays steps 1-2 once per function
// and re-runs the repair from the saved merged coloring each iteration.
func BenchmarkConflictRepair(b *testing.B) {
	cfg := progen.StructuredConfig{
		MaxDepth: 3, MaxBodyLen: 14, MaxTripCnt: 4, MaxVars: 16,
		CSBDensity: 0.25, StoreWindow: 128,
	}
	rng := rand.New(rand.NewSource(7))
	type work struct {
		a      *ig.Analysis
		merged []int
	}
	var workload []work
	for i := 0; i < 8; i++ {
		c := cfg
		c.StoreBase = int64(i * 256)
		f := progen.GenerateStructured(rng, c)
		opt, _, err := passes.Optimize(f)
		if err != nil {
			b.Fatal(err)
		}
		a := ig.Analyze(opt)

		// Steps 1-2: independent BIG + per-IIG colorings, pre-repair.
		colors := make([]int, a.NumVars)
		for v := range colors {
			colors[v] = -1
		}
		bnodes := a.BoundaryNodes()
		bOrder := a.BIG.SmallestLastOrder(bnodes)
		colors, _ = a.BIG.GreedyColorMasked(bOrder, colors, bnodes)
		for _, members := range a.IIGMembers() {
			if members.Empty() {
				continue
			}
			order := a.GIG.SmallestLastOrder(members)
			colors, _ = a.GIG.GreedyColorMasked(order, colors, members)
		}
		workload = append(workload, work{a: a, merged: colors})
	}

	scratch := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range workload {
			scratch = append(scratch[:0], w.merged...)
			repairConflicts(w.a, scratch)
			if u, _ := w.a.GIG.VerifyColoring(scratch); u >= 0 {
				b.Fatal("repair left a conflict")
			}
		}
	}
}
