package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testAsm = `
func t1
entry:
	set v0, 1
	ctx
	addi v0, v0, 2
	store [64], v0
	halt
`

func TestRunWithBenchmarks(t *testing.T) {
	if err := run(128, "ara", 4, "frag,crc32", 8, 0, 0, false, true, false, false, "", nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSRA(t *testing.T) {
	if err := run(128, "sra", 4, "md5", 8, 0, 0, false, true, false, false, "", nil); err != nil {
		t.Fatalf("run sra: %v", err)
	}
	if err := run(128, "sra", 4, "md5,frag", 8, 0, 0, false, true, false, false, "", nil); err == nil {
		t.Errorf("sra with two programs succeeded")
	}
}

func TestRunWithFilesAndObjects(t *testing.T) {
	dir := t.TempDir()
	asm := filepath.Join(dir, "t1.asm")
	if err := os.WriteFile(asm, []byte(testAsm), 0o644); err != nil {
		t.Fatal(err)
	}
	objDir := filepath.Join(dir, "objs")
	if err := run(16, "ara", 4, "", 0, 2, 0, true, true, true, true, objDir, []string{asm, asm}); err != nil {
		t.Fatalf("run: %v", err)
	}
	ents, err := os.ReadDir(objDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("object files = %d, want 2", len(ents))
	}
	// The emitted objects load back as inputs.
	var objs []string
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".npo") {
			t.Errorf("unexpected file %s", e.Name())
		}
		objs = append(objs, filepath.Join(objDir, e.Name()))
	}
	f, err := loadProgram(objs[0])
	if err != nil {
		t.Fatalf("loadProgram(npo): %v", err)
	}
	if !f.Physical {
		t.Errorf("allocated object decoded as virtual")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(128, "ara", 4, "", 8, 0, 0, false, true, false, false, "", nil); err == nil {
		t.Errorf("no input accepted")
	}
	if err := run(128, "nope", 4, "frag", 8, 0, 0, false, true, false, false, "", nil); err == nil {
		t.Errorf("bad mode accepted")
	}
	if err := run(128, "ara", 4, "frag", 8, 0, 0, false, true, false, false, "", []string{"x.asm"}); err == nil {
		t.Errorf("bench and files together accepted")
	}
	if err := run(128, "ara", 4, "nosuch", 8, 0, 0, false, true, false, false, "", nil); err == nil {
		t.Errorf("unknown benchmark accepted")
	}
	if err := run(1, "ara", 4, "md5,md5", 8, 0, 0, false, true, false, false, "", nil); err == nil {
		t.Errorf("impossible budget accepted")
	}
}
