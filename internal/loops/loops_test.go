package loops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/ir"
	"npra/internal/progen"
)

func TestStraightLine(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 1
	addi v0, v0, 1
	store [0], v0
	halt`)
	info, err := Compute(f)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for i, d := range info.Depth {
		if d != 0 {
			t.Errorf("block %d depth = %d, want 0", i, d)
		}
	}
	if len(info.Headers) != 0 {
		t.Errorf("headers = %v, want none", info.Headers)
	}
}

func TestSimpleLoop(t *testing.T) {
	f := ir.MustParse(`
entry:
	set v0, 10
loop:
	subi v0, v0, 1
	bnz v0, loop
	store [0], v0
	halt`)
	info, err := Compute(f)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	loopB := f.BlockByLabel("loop")
	if info.Depth[loopB] != 1 {
		t.Errorf("loop depth = %d, want 1", info.Depth[loopB])
	}
	if info.Depth[0] != 0 {
		t.Errorf("entry depth = %d, want 0", info.Depth[0])
	}
	if len(info.Headers) != 1 || info.Headers[0] != loopB {
		t.Errorf("headers = %v, want [%d]", info.Headers, loopB)
	}
	// Weight at a loop point is 10x an entry point.
	p := f.Blocks[loopB].Start()
	if info.PointWeight(p) != 10 {
		t.Errorf("loop weight = %d, want 10", info.PointWeight(p))
	}
	if info.PointWeight(0) != 1 {
		t.Errorf("entry weight = %d, want 1", info.PointWeight(0))
	}
}

func TestNestedLoops(t *testing.T) {
	f := ir.MustParse(`
entry:
	set v0, 3
outer:
	set v1, 4
inner:
	subi v1, v1, 1
	bnz v1, inner
	subi v0, v0, 1
	bnz v0, outer
	store [0], v0
	halt`)
	info, err := Compute(f)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	inner := f.BlockByLabel("inner")
	outer := f.BlockByLabel("outer")
	if info.Depth[inner] != 2 {
		t.Errorf("inner depth = %d, want 2", info.Depth[inner])
	}
	if info.Depth[outer] != 1 {
		t.Errorf("outer depth = %d, want 1", info.Depth[outer])
	}
	if got := info.PointWeight(f.Blocks[inner].Start()); got != 100 {
		t.Errorf("inner weight = %d, want 100", got)
	}
	// Dominance: entry dominates everything; outer dominates inner.
	if !info.Dominates(0, inner) || !info.Dominates(outer, inner) {
		t.Errorf("dominance wrong: idom=%v", info.IDom)
	}
	if info.Dominates(inner, outer) {
		t.Errorf("inner should not dominate outer")
	}
}

func TestIfDiamond(t *testing.T) {
	f := ir.MustParse(`
entry:
	set v0, 1
	bz v0, right
	set v1, 2
	br join
right:
	set v1, 3
join:
	store [0], v1
	halt`)
	info, err := Compute(f)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	join := f.BlockByLabel("join")
	// The join's immediate dominator is the branch block, not a branch arm.
	idom := info.IDom[join]
	lbl := f.Blocks[idom].Label
	if lbl != "entry" {
		t.Errorf("join idom = %q, want entry", lbl)
	}
}

// Property: dominator facts are sound on random CFGs — the entry
// dominates every reachable block, immediate dominators are proper
// dominators, and loop depth is non-negative and bounded.
func TestQuickDominatorSoundness(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		info, err := Compute(f)
		if err != nil {
			t.Fatalf("Compute: %v", err)
		}
		for b := 1; b < len(f.Blocks); b++ {
			if len(f.Blocks[b].Preds) == 0 {
				continue // unreachable
			}
			if info.IDom[b] >= 0 && !info.Dominates(0, b) {
				t.Logf("seed %d: entry does not dominate block %d", seed, b)
				return false
			}
			if d := info.Depth[b]; d < 0 || d > len(f.Blocks) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
