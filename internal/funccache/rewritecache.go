package funccache

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"

	"npra/internal/core"
	"npra/internal/intra"
	"npra/internal/ir"
)

// RewriteCache is the third tier of the function-level cache hierarchy:
// a bounded LRU of rewritten (physical-register) function bodies. It
// implements core.RewriteSource.
//
// The rewritten body is a pure function of the tuple
// (FuncKey, PR, SR, privBase, sharedBase): the solution context chain is
// determined by the body and the (PR, SR) budget (Solve is memoized and
// bit-identical), and the palette is determined by the two base
// registers. The cache exploits one more degree of freedom: the
// rewriter's emission decisions (which edges need copies, how parallel
// copies sequentialize, where trampolines go) depend only on color
// *equality*, never on the physical register numbers themselves, so a
// body rewritten once onto the canonical identity palette (color c ->
// register c) can be relocated onto any concrete palette by a flat
// injective register renaming — a deep copy plus remap, far cheaper
// than re-running the rewriter.
//
// Two entry kinds share one LRU:
//
//   - canonical entries, keyed (FuncKey, PR, SR): the identity-palette
//     body. A hit costs one CloneRemapRegs (a "relocation hit").
//   - exact entries, keyed (FuncKey, PR, SR, privBase, sharedBase): the
//     relocated body for one concrete palette. A hit is free — the
//     cached *ir.Func is returned by pointer.
//
// Every cached body is frozen (ir.Func.Freeze) before it becomes
// visible: entries are shared by pointer across requests and engine
// threads, and must never be mutated. The npravet frozenfunc analyzer
// enforces the caller side statically.
//
// Invalidation: none is ever needed. Keys are content hashes of the
// virtual body plus the full palette tuple, so a changed body or a
// different allocation simply misses; stale entries age out via LRU.
type RewriteCache struct {
	mu      sync.Mutex
	entries map[string]*rwEntry
	lru     *list.List // front = most recently used; values are *rwEntry
	cap     int
	keyFn   func(*ir.Func) string

	hits      atomic.Int64
	relocHits atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
}

// RewriteConfig sizes a RewriteCache.
type RewriteConfig struct {
	// Entries bounds the number of cached bodies, counting canonical and
	// exact entries alike (default 1024).
	Entries int

	// KeyFn computes the content key of a virtual function body
	// (default core.FuncKey). Pass (*Cache).FuncKey to share the
	// function cache's pointer memo and skip re-Formatting bodies that
	// already flowed through it.
	KeyFn func(*ir.Func) string
}

// RewriteCacheStats is a point-in-time snapshot of the counters.
type RewriteCacheStats struct {
	Hits      int64 // exact-palette hits, served by pointer
	RelocHits int64 // canonical hits, served by relocation (clone+remap)
	Misses    int64 // lookups that fell through to the rewriter
	Evictions int64 // entries dropped to stay within the bound
	Entries   int64 // live entries right now
	Bytes     int64 // approximate heap bytes held by cached bodies
}

type rwEntry struct {
	key   string
	f     *ir.Func
	stats intra.RewriteStats
	elem  *list.Element
}

// NewRewriteCache returns an empty cache sized by cfg.
func NewRewriteCache(cfg RewriteConfig) *RewriteCache {
	if cfg.Entries <= 0 {
		cfg.Entries = 1024
	}
	keyFn := cfg.KeyFn
	if keyFn == nil {
		keyFn = core.FuncKey
	}
	return &RewriteCache{
		entries: make(map[string]*rwEntry),
		lru:     list.New(),
		cap:     cfg.Entries,
		keyFn:   keyFn,
	}
}

// Stats returns a snapshot of the counters.
func (rc *RewriteCache) Stats() RewriteCacheStats {
	st := RewriteCacheStats{
		Hits:      rc.hits.Load(),
		RelocHits: rc.relocHits.Load(),
		Misses:    rc.misses.Load(),
		Evictions: rc.evictions.Load(),
		Bytes:     rc.bytes.Load(),
	}
	rc.mu.Lock()
	st.Entries = int64(len(rc.entries))
	rc.mu.Unlock()
	return st
}

func exactRewriteKey(fkey string, pr, sr int, privBase, sharedBase ir.Reg) string {
	return "x|" + fkey + "|" + strconv.Itoa(pr) + "|" + strconv.Itoa(sr) +
		"|" + strconv.Itoa(int(privBase)) + "|" + strconv.Itoa(int(sharedBase))
}

func canonRewriteKey(fkey string, pr, sr int) string {
	return "c|" + fkey + "|" + strconv.Itoa(pr) + "|" + strconv.Itoa(sr)
}

// LookupRewrite implements core.RewriteSource. It returns the rewritten
// body for f under the given grant and palette when one can be served
// from cache: by pointer on an exact hit, by relocating the canonical
// body on a canonical hit (the relocated body is inserted as an exact
// entry so the next identical palette is free).
func (rc *RewriteCache) LookupRewrite(f *ir.Func, pr, sr int, privBase, sharedBase ir.Reg) (*ir.Func, intra.RewriteStats, bool) {
	fkey := rc.keyFn(f)
	ek := exactRewriteKey(fkey, pr, sr, privBase, sharedBase)

	rc.mu.Lock()
	if e, ok := rc.entries[ek]; ok {
		rc.lru.MoveToFront(e.elem)
		body, stats := e.f, e.stats
		rc.mu.Unlock()
		rc.hits.Add(1)
		return body, stats, true
	}
	ck := canonRewriteKey(fkey, pr, sr)
	e, ok := rc.entries[ck]
	var canon *ir.Func
	var stats intra.RewriteStats
	if ok {
		rc.lru.MoveToFront(e.elem)
		canon, stats = e.f, e.stats
	}
	rc.mu.Unlock()

	if !ok {
		rc.misses.Add(1)
		return nil, intra.RewriteStats{}, false
	}
	body := relocateRewrite(canon, pr, privBase, sharedBase)
	if body != canon {
		body.Freeze()
		rc.insert(ek, body, stats)
	}
	rc.relocHits.Add(1)
	return body, stats, true
}

// StoreRewrite implements core.RewriteSource. canonical must be the
// identity-palette rewrite of f at (pr, sr); it is frozen, cached, and
// relocated onto the requested palette. The returned body is the one
// the caller should use (it may be the canonical body itself when the
// palette is the identity).
func (rc *RewriteCache) StoreRewrite(f *ir.Func, pr, sr int, privBase, sharedBase ir.Reg, canonical *ir.Func, stats intra.RewriteStats) *ir.Func {
	canonical.Freeze()
	fkey := rc.keyFn(f)
	rc.insert(canonRewriteKey(fkey, pr, sr), canonical, stats)
	body := relocateRewrite(canonical, pr, privBase, sharedBase)
	if body != canonical {
		body.Freeze()
		rc.insert(exactRewriteKey(fkey, pr, sr, privBase, sharedBase), body, stats)
	}
	return body
}

// relocateRewrite maps the canonical identity-palette body onto the
// concrete palette: canonical register r is color r, so r < pr lands at
// privBase+r and the rest at sharedBase+(r-pr). Returns canonical
// itself when the palette already is the identity.
func relocateRewrite(canonical *ir.Func, pr int, privBase, sharedBase ir.Reg) *ir.Func {
	size := canonical.NumRegs // == palette size: identity maxes at size-1
	remap := make([]ir.Reg, size)
	maxReg := ir.Reg(-1)
	ident := true
	for r := 0; r < size; r++ {
		m := sharedBase + ir.Reg(r-pr)
		if r < pr {
			m = privBase + ir.Reg(r)
		}
		remap[r] = m
		if m != ir.Reg(r) {
			ident = false
		}
		if m > maxReg {
			maxReg = m
		}
	}
	if ident {
		return canonical
	}
	return canonical.CloneRemapRegs(remap, int(maxReg)+1)
}

// insert adds (or refreshes) one entry under the LRU bound. The first
// insertion of a key wins — a racing duplicate keeps the already-cached
// pointer stable for everyone who holds it.
func (rc *RewriteCache) insert(key string, f *ir.Func, stats intra.RewriteStats) {
	sz := rewriteFuncBytes(f)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e, ok := rc.entries[key]; ok {
		rc.lru.MoveToFront(e.elem)
		return
	}
	e := &rwEntry{key: key, f: f, stats: stats}
	e.elem = rc.lru.PushFront(e)
	rc.entries[key] = e
	rc.bytes.Add(sz)
	for rc.lru.Len() > rc.cap {
		back := rc.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*rwEntry)
		rc.lru.Remove(back)
		delete(rc.entries, victim.key)
		rc.bytes.Add(-rewriteFuncBytes(victim.f))
		rc.evictions.Add(1)
	}
}

// rewriteFuncBytes approximates the heap footprint of a cached body.
// Constants mirror the struct shapes loosely (a Func header, a Block
// header + CFG slices per block, an Instr per instruction); the figure
// feeds an observability gauge, not an eviction decision.
func rewriteFuncBytes(f *ir.Func) int64 {
	const funcOverhead, blockOverhead, instrSize = 160, 144, 48
	n := int64(funcOverhead)
	for _, b := range f.Blocks {
		n += blockOverhead + instrSize*int64(len(b.Instrs))
	}
	return n
}
