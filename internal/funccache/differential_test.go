package funccache

// Warm-vs-cold differential: the tentpole's correctness bar is that a
// warm allocation is bit-identical to a cold one. These tests drive the
// real engine (core.AllocateARA/SRA) with a shared Cache across a
// kernel-mix request stream and require identical grants, byte-for-byte
// identical rewrites, and interpreter-level behavioral equivalence —
// serially over 100 seeded requests, and concurrently (for -race) with
// duplicate kernels interleaved across goroutines.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"npra/internal/core"
	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

// mixFuncs builds request i of a deterministic kernel-mix stream over a
// pool of poolSize kernels: 1..3 threads whose kernel indices are the
// mixed-radix digits of i. Every call regenerates fresh *ir.Func values
// (content keying, not pointer identity, must carry the reuse).
func mixFuncs(i int64, poolSize int64) []*ir.Func {
	nthreads := 1 + int(i)%3
	x := i / 3
	funcs := make([]*ir.Func, nthreads)
	for t := 0; t < nthreads; t++ {
		seed := 500 + x%poolSize
		x /= poolSize
		f := progen.GenerateStructured(rand.New(rand.NewSource(seed)), progen.StructuredConfig{
			MaxDepth: 2, MaxBodyLen: 8, MaxTripCnt: 4, MaxVars: 8, CSBDensity: 0.25, StoreWindow: 64,
		})
		f.Name = fmt.Sprintf("kernel%d", seed)
		funcs[t] = f
	}
	return funcs
}

// diffAllocs demands bit-identical allocations: equal grants, equal
// costs, byte-identical rewrites, and (interpreting each rewritten
// thread) observationally equal executions.
func diffAllocs(cold, warm *core.Allocation) error {
	if cold.Degraded || warm.Degraded {
		return fmt.Errorf("degraded result reached the differential (cold %v, warm %v)", cold.Degraded, warm.Degraded)
	}
	if cold.SGR != warm.SGR || cold.NReg != warm.NReg {
		return fmt.Errorf("cold (sgr %d) vs warm (sgr %d)", cold.SGR, warm.SGR)
	}
	if len(cold.Threads) != len(warm.Threads) {
		return fmt.Errorf("cold %d threads vs warm %d", len(cold.Threads), len(warm.Threads))
	}
	for i := range cold.Threads {
		ct, wt := cold.Threads[i], warm.Threads[i]
		if ct.PR != wt.PR || ct.SR != wt.SR || ct.Cost != wt.Cost || ct.PrivBase != wt.PrivBase {
			return fmt.Errorf("thread %d: cold (pr %d, sr %d, cost %d, base %d) vs warm (pr %d, sr %d, cost %d, base %d)",
				i, ct.PR, ct.SR, ct.Cost, ct.PrivBase, wt.PR, wt.SR, wt.Cost, wt.PrivBase)
		}
		if got, want := wt.F.Format(), ct.F.Format(); got != want {
			return fmt.Errorf("thread %d: warm rewrite differs from cold:\n%s\nvs\n%s", i, got, want)
		}
		memC := make([]uint32, 1<<12)
		memW := make([]uint32, 1<<12)
		opt := interp.Options{TID: uint32(i)}
		rc, err := interp.Run(ct.F, memC, opt)
		if err != nil {
			return fmt.Errorf("thread %d: running cold rewrite: %v", i, err)
		}
		rw, err := interp.Run(wt.F, memW, opt)
		if err != nil {
			return fmt.Errorf("thread %d: running warm rewrite: %v", i, err)
		}
		if err := interp.Equivalent(rc, rw); err != nil {
			return fmt.Errorf("thread %d: cold and warm rewrites diverge: %v", i, err)
		}
	}
	return nil
}

// TestWarmColdDifferentialARA drives 100 mix requests through a shared
// cache and checks every one against a cold run of the same request.
func TestWarmColdDifferentialARA(t *testing.T) {
	cache := New(Config{})
	for i := int64(0); i < 100; i++ {
		funcs := mixFuncs(i, 8)
		cold, coldErr := core.AllocateARA(funcs, core.Config{NReg: 32})
		warm, warmErr := core.AllocateARA(funcs, core.Config{NReg: 32, FuncCache: cache})
		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("request %d: cold err %v vs warm err %v", i, coldErr, warmErr)
		}
		if coldErr != nil {
			continue
		}
		if err := diffAllocs(cold, warm); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Errorf("stats = %+v: the warm runs never hit the cache, differential proved nothing", st)
	}
}

// TestWarmColdDifferentialSRA covers the homogeneous-threads entry
// point: warm SRA replays (and chunked sweeps absorb) through the same
// cache the ARA runs warmed.
func TestWarmColdDifferentialSRA(t *testing.T) {
	cache := New(Config{})
	for i := int64(0); i < 12; i++ {
		funcs := mixFuncs(3*i, 8) // single-thread compositions pick the kernel
		f := funcs[0]
		nthd := 2 + int(i)%3
		cold, coldErr := core.AllocateSRA(f, nthd, core.Config{NReg: 32})
		warm, warmErr := core.AllocateSRA(f, nthd, core.Config{NReg: 32, FuncCache: cache})
		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("request %d: cold err %v vs warm err %v", i, coldErr, warmErr)
		}
		if coldErr != nil {
			continue
		}
		if err := diffAllocs(cold, warm); err != nil {
			t.Fatalf("request %d (nthd %d): %v", i, nthd, err)
		}
	}
}

// TestWarmColdDifferentialConcurrent interleaves duplicate kernels
// across goroutines against one shared cache — the -race regression for
// checkout/checkin from concurrent batch jobs. Cold references are
// computed per request inside each goroutine, so every comparison is
// independent of scheduling.
func TestWarmColdDifferentialConcurrent(t *testing.T) {
	cache := New(Config{Entries: 6, MaxIdle: 2}) // tight: force eviction + overflow races
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 15; i++ {
				// Overlapping streams: goroutines share compositions, so
				// the same kernel is concurrently checked out, absorbed
				// and evicted across workers.
				req := (int64(w) + i) % 20
				funcs := mixFuncs(req, 4)
				cold, coldErr := core.AllocateARA(funcs, core.Config{NReg: 32, Workers: 2})
				warm, warmErr := core.AllocateARA(funcs, core.Config{NReg: 32, Workers: 2, FuncCache: cache})
				if (coldErr == nil) != (warmErr == nil) {
					t.Errorf("worker %d request %d: cold err %v vs warm err %v", w, req, coldErr, warmErr)
					return
				}
				if coldErr != nil {
					continue
				}
				if err := diffAllocs(cold, warm); err != nil {
					t.Errorf("worker %d request %d: %v", w, req, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Entries > 6 {
		t.Errorf("Entries = %d exceeds the bound", st.Entries)
	}
}

// TestErrorRunsNeverWarmCache is the engine-level regression: a failing
// allocation (infeasible register file) must leave the cache without an
// entry for the kernel, and a degraded fallback (cancelled context)
// must not recycle its allocators either.
func TestErrorRunsNeverWarmCache(t *testing.T) {
	cache := New(Config{})
	funcs := mixFuncs(1, 8)
	if _, err := core.AllocateARA(funcs, core.Config{NReg: 1, FuncCache: cache}); err == nil {
		t.Fatal("NReg 1 allocation unexpectedly succeeded")
	}
	if st := cache.Stats(); st.Entries != 0 || st.Idle != 0 {
		t.Errorf("stats after failed run = %+v, want an empty cache", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	alloc, err := core.AllocateARACtx(ctx, funcs, core.Config{NReg: 32, FuncCache: cache})
	if err != nil {
		t.Fatalf("cancelled-context run: %v (expected the degraded fallback)", err)
	}
	if !alloc.Degraded {
		t.Fatal("cancelled-context run returned a non-degraded result")
	}
	if st := cache.Stats(); st.Entries != 0 || st.Idle != 0 {
		t.Errorf("stats after degraded run = %+v, want an empty cache — degraded results must never warm it", st)
	}
}
