// Critical: steering the allocator with criticality weights. When the
// register file is too small for every thread's demand, the inter-thread
// allocator must take registers from someone; the Critical weights make
// move insertion in a designated thread expensive, so the loss lands on
// the threads the application cares least about — the paper's "meeting
// the performance needs of critical threads".
//
//	go run ./examples/critical
package main

import (
	"fmt"
	"log"

	"npra/internal/bench"
	"npra/internal/core"
	"npra/internal/ir"
)

const packets = 64

func main() {
	// Two digest threads and two URL matchers on a register file that is
	// two registers short of the move-free demand: the allocator must
	// take registers from somebody and split live ranges to compensate.
	gen := func() []*ir.Func {
		var out []*ir.Func
		for _, name := range []string{"md5", "md5", "url", "url"} {
			b, err := bench.Get(name)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, b.Gen(packets))
		}
		return out
	}
	const nreg = 62

	show := func(title string, weights []float64) {
		alloc, err := core.AllocateARA(gen(), core.Config{NReg: nreg, Critical: weights})
		if err != nil {
			log.Fatal(title, ": ", err)
		}
		if err := alloc.Verify(); err != nil {
			log.Fatal(title, ": ", err)
		}
		fmt.Printf("%s (registers: %d/%d used, SGR=%d)\n",
			title, alloc.TotalRegisters(), nreg, alloc.SGR)
		for i, t := range alloc.Threads {
			fmt.Printf("  thread %d %-4s PR=%-2d SR=%-2d moves=%d\n",
				i, t.Name, t.PR, t.SR, t.Stats.Added())
		}
		fmt.Println()
	}

	show("uniform weights", nil)
	show("md5 threads critical (weight 50x)", []float64{50, 50, 1, 1})
	show("url threads critical (weight 50x)", []float64{1, 1, 50, 50})
}
