package nsr

import (
	"testing"

	"npra/internal/ir"
)

func TestStraightLineRegions(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 1
	addi v0, v0, 1
	ctx
	addi v0, v0, 2
	load v1, [v0+0]
	add v0, v0, v1
	store [0], v0
	halt`)
	x := Compute(f)
	if len(x.CSBs) != 3 {
		t.Fatalf("CSBs = %v, want 3", x.CSBs)
	}
	// Regions: {set,addi} | ctx | {addi} | load | {add} | store | {halt}
	if x.NumRegions != 4 {
		t.Fatalf("NumRegions = %d, want 4", x.NumRegions)
	}
	// Same region before ctx.
	if x.Region[0] != x.Region[1] {
		t.Errorf("points 0,1 in different regions")
	}
	// ctx separates.
	if x.Region[1] == x.Region[3] {
		t.Errorf("ctx did not split the region")
	}
	// CSB attributed to continuation.
	if x.Region[2] != x.Region[3] {
		t.Errorf("ctx point region = %d, want continuation %d", x.Region[2], x.Region[3])
	}
}

// Figure 4 of the paper: a loop whose body contains a read (CSB) and a
// voluntary ctx. Both split parts of blocks; the parts reconnect around
// the back edge into shared regions.
func TestLoopRegions(t *testing.T) {
	f := ir.MustParse(`
func fig4
entry:
	set v0, 4096     ; buf
	set v1, 8        ; len
	set v2, 0        ; sum
loop:
	bz v1, out
	load v3, [v0+0]  ; read tmp1 (CSB)
	add v2, v2, v3
	addi v0, v0, 4
	subi v1, v1, 1
	ctx
	br loop
out:
	not v4, v2
	store [4092], v4
	halt`)
	x := Compute(f)
	if len(x.CSBs) != 3 {
		t.Fatalf("CSBs = %v, want 3 (load, ctx, store)", x.CSBs)
	}
	// Three regions: {entry, bz, post-ctx br, out-head "not"} connected
	// around the back edge and the bz exit; the loop body between load
	// and ctx; and the halt after the store.
	if x.NumRegions != 3 {
		t.Fatalf("NumRegions = %d, want 3", x.NumRegions)
	}
	// entry(0) connects to bz.
	bz := f.Blocks[f.BlockByLabel("loop")].Start()
	if x.Region[0] != x.Region[bz] {
		t.Errorf("entry and loop head in different regions")
	}
	// the br after ctx is in the same region as bz (edge br->bz).
	var brP = -1
	for p := 0; p < f.NumPoints(); p++ {
		if f.Instr(p).Op == ir.OpBr {
			brP = p
		}
	}
	if x.Region[brP] != x.Region[bz] {
		t.Errorf("post-ctx br region %d != loop head region %d", x.Region[brP], x.Region[bz])
	}
	// body between load and ctx is a distinct region.
	add := bz + 2
	if f.Instr(add).Op != ir.OpAdd {
		t.Fatalf("layout changed")
	}
	if x.Region[add] == x.Region[bz] {
		t.Errorf("loop body merged with head across the load CSB")
	}
	// "out" block: not/halt separated from everything by store? The not
	// is reached from bz without crossing a CSB, so it joins head region.
	out := f.Blocks[f.BlockByLabel("out")].Start()
	if x.Region[out] != x.Region[bz] {
		t.Errorf("out-block head should share the head region")
	}
	// halt (after store) is its own region.
	halt := f.NumPoints() - 1
	if x.Region[halt] == x.Region[out] {
		t.Errorf("halt should be cut off by the store CSB")
	}
}

func TestAllCSBChain(t *testing.T) {
	f := ir.MustParse(`
a:
	ctx
	ctx
	load v0, [0]
	store [4], v0
	halt`)
	x := Compute(f)
	if x.NumRegions != 1 {
		t.Fatalf("NumRegions = %d, want 1 (only halt is non-CSB)", x.NumRegions)
	}
	for p := 0; p < f.NumPoints(); p++ {
		if x.Region[p] != 0 {
			t.Errorf("point %d region = %d", p, x.Region[p])
		}
	}
	if x.AvgSize() != 1 {
		t.Errorf("AvgSize = %v, want 1", x.AvgSize())
	}
}

func TestBranchOverCSB(t *testing.T) {
	// Two paths between the same program points, one containing a CSB:
	// the regions must still merge along the CSB-free path.
	f := ir.MustParse(`
a:
	set v0, 1
	bz v0, join
	ctx
join:
	addi v0, v0, 1
	store [0], v0
	halt`)
	x := Compute(f)
	joinP := f.Blocks[f.BlockByLabel("join")].Start()
	if x.Region[0] != x.Region[joinP] {
		t.Errorf("CSB-free path did not merge regions: %d vs %d", x.Region[0], x.Region[joinP])
	}
}
