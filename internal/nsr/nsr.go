// Package nsr partitions a function into Non-Switch Regions (NSRs):
// maximal connected sub-graphs of the CFG containing no internal
// context-switch instruction (paper §3.1). Region boundaries are the
// Context Switch Boundaries (CSBs) — ctx, load and store instructions —
// and the program entry/exit points.
//
// Values live only within one NSR (never across a CSB) may safely use
// registers shared with other threads, because the thread provably holds
// no live value in them whenever it yields the CPU.
package nsr

import (
	"npra/internal/ir"
)

// Info is the region partition of one function.
type Info struct {
	F *ir.Func

	// CSBs lists the program points of context-switch instructions in
	// ascending order.
	CSBs []int

	// Region maps each program point to its NSR id in [0, NumRegions).
	// A CSB point is attributed to the region control resumes in (its
	// continuation), so every point has a region; IsCSB distinguishes
	// true region members from boundaries.
	Region []int

	// NumRegions is the number of NSRs.
	NumRegions int

	// Sizes[r] is the number of non-CSB instructions in region r.
	Sizes []int
}

// Compute builds the NSR partition for a built function.
func Compute(f *ir.Func) *Info {
	if !f.Built() {
		panic("nsr: function not built") //lint:invariant documented precondition: Compute requires f.Built(); callers construct via Build which cannot yield an unbuilt func
	}
	n := f.NumPoints()
	x := &Info{F: f, Region: make([]int, n)}
	isCSB := make([]bool, n)
	for p := 0; p < n; p++ {
		if f.Instr(p).IsCSB() {
			isCSB[p] = true
			x.CSBs = append(x.CSBs, p)
		}
		x.Region[p] = -1
	}

	// Union non-CSB points connected by CFG edges that do not cross a CSB.
	uf := newUnionFind(n)
	var succs []int
	for p := 0; p < n; p++ {
		if isCSB[p] {
			continue
		}
		succs = f.PointSuccs(p, succs[:0])
		for _, q := range succs {
			if !isCSB[q] {
				uf.union(p, q)
			}
		}
	}

	// Number regions densely.
	rid := make(map[int]int)
	for p := 0; p < n; p++ {
		if isCSB[p] {
			continue
		}
		root := uf.find(p)
		id, ok := rid[root]
		if !ok {
			id = len(rid)
			rid[root] = id
		}
		x.Region[p] = id
	}
	x.NumRegions = len(rid)
	if x.NumRegions == 0 {
		// Degenerate: every instruction is a CSB. One empty region.
		x.NumRegions = 1
	}
	x.Sizes = make([]int, x.NumRegions)
	for p := 0; p < n; p++ {
		if x.Region[p] >= 0 {
			x.Sizes[x.Region[p]]++
		}
	}

	// Attribute each CSB to its continuation region: follow the unique
	// successor chain until a non-CSB point is found.
	for _, p := range x.CSBs {
		q := p
		for isCSB[q] {
			succs = f.PointSuccs(q, succs[:0])
			if len(succs) == 0 {
				break // unreachable by construction; be safe
			}
			q = succs[0]
		}
		if x.Region[q] >= 0 {
			x.Region[p] = x.Region[q]
		} else {
			x.Region[p] = 0
		}
	}
	return x
}

// IsCSB reports whether point p is a context-switch boundary.
func (x *Info) IsCSB(p int) bool { return x.F.Instr(p).IsCSB() }

// AvgSize returns the mean number of instructions per NSR (the paper's
// "average NSR size" column in Table 1).
func (x *Info) AvgSize() float64 {
	if x.NumRegions == 0 {
		return 0
	}
	total := 0
	for _, s := range x.Sizes {
		total += s
	}
	return float64(total) / float64(x.NumRegions)
}

// unionFind is a standard disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != int32(x) {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = int(uf.parent[x])
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
}
