package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a function from npra assembly text. The format is:
//
//	; comment (also "#")
//	func NAME
//	LABEL:
//	    set v1, 10
//	    add v2, v1, v1
//	    load v3, [v1+4]
//	    store [v1+0], v2
//	    bnz v2, LABEL
//	    halt
//
// Registers are written vN (virtual) or rN (physical); a function must use
// one spelling throughout. Instructions before the first label go into an
// implicit block labeled "entry". The returned function is built.
func Parse(src string) (*Func, error) {
	p := &parser{}
	f, err := p.parse(src)
	if err != nil {
		return nil, err
	}
	maxReg := Reg(-1)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range []Reg{in.Def, in.A, in.B} {
				if r > maxReg {
					maxReg = r
				}
			}
		}
	}
	f.NumRegs = int(maxReg) + 1
	if err := f.Build(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustParse is Parse that panics on error; for tests and embedded sources.
func MustParse(src string) *Func {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	physical  bool
	regSeen   bool
	line      int
	funcName  string
	cur       *Block
	blocks    []*Block
	pendLabel string
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("parse: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) parse(src string) (*Func, error) {
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "func ") {
			if p.funcName != "" {
				return nil, p.errf("duplicate func directive")
			}
			p.funcName = strings.TrimSpace(strings.TrimPrefix(line, "func "))
			if p.funcName == "" {
				return nil, p.errf("func directive without a name")
			}
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSpace(strings.TrimSuffix(line, ":"))
			if label == "" {
				return nil, p.errf("empty label")
			}
			p.startBlock(label)
			continue
		}
		in, err := p.parseInstr(line)
		if err != nil {
			return nil, err
		}
		if p.cur == nil {
			p.startBlock("entry")
		}
		p.cur.Instrs = append(p.cur.Instrs, in)
	}
	if p.funcName == "" {
		p.funcName = "main"
	}
	if p.cur == nil {
		return nil, fmt.Errorf("parse: no instructions")
	}
	return &Func{Name: p.funcName, Blocks: p.blocks, Physical: p.physical}, nil
}

func (p *parser) startBlock(label string) {
	b := &Block{Label: label}
	p.blocks = append(p.blocks, b)
	p.cur = b
}

var mnemonics = map[string]Op{
	"set": OpSet, "mov": OpMov, "tid": OpTID,
	"add": OpAdd, "sub": OpSub, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"shl": OpShl, "shr": OpShr, "mul": OpMul,
	"addi": OpAddI, "subi": OpSubI, "andi": OpAndI, "ori": OpOrI,
	"xori": OpXorI, "shli": OpShlI, "shri": OpShrI, "muli": OpMulI,
	"not": OpNot, "ctx": OpCtx,
	"br": OpBr, "bz": OpBZ, "bnz": OpBNZ, "beq": OpBEQ, "bne": OpBNE,
	"blt": OpBLT, "bge": OpBGE,
	"iter": OpIter, "halt": OpHalt, "nop": OpNop,
	// load/store handled specially (two addressing modes share a mnemonic)
}

func (p *parser) parseInstr(line string) (Instr, error) {
	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	args := splitArgs(rest)
	switch mn {
	case "load":
		return p.parseLoad(args)
	case "store":
		return p.parseStore(args)
	}
	op, ok := mnemonics[mn]
	if !ok {
		return Instr{}, p.errf("unknown mnemonic %q", mn)
	}
	in := Instr{Op: op, Def: NoReg, A: NoReg, B: NoReg}
	sh := opShapes[op]
	want := 0
	if sh.d {
		want++
	}
	if sh.a {
		want++
	}
	if sh.b {
		want++
	}
	if sh.i {
		want++
	}
	if sh.t {
		want++
	}
	if len(args) != want {
		return Instr{}, p.errf("%s: want %d operands, got %d", mn, want, len(args))
	}
	k := 0
	var err error
	if sh.d {
		if in.Def, err = p.reg(args[k]); err != nil {
			return Instr{}, err
		}
		k++
	}
	if sh.a {
		if in.A, err = p.reg(args[k]); err != nil {
			return Instr{}, err
		}
		k++
	}
	if sh.b {
		if in.B, err = p.reg(args[k]); err != nil {
			return Instr{}, err
		}
		k++
	}
	if sh.i {
		if in.Imm, err = p.imm(args[k]); err != nil {
			return Instr{}, err
		}
		k++
	}
	if sh.t {
		in.Target = args[k]
		if in.Target == "" {
			return Instr{}, p.errf("%s: empty branch target", mn)
		}
	}
	return in, nil
}

// parseLoad handles "load rd, [ra+off]" and "load rd, [imm]".
func (p *parser) parseLoad(args []string) (Instr, error) {
	if len(args) != 2 {
		return Instr{}, p.errf("load: want 2 operands, got %d", len(args))
	}
	d, err := p.reg(args[0])
	if err != nil {
		return Instr{}, err
	}
	base, off, abs, err := p.mem(args[1])
	if err != nil {
		return Instr{}, err
	}
	if abs {
		return Instr{Op: OpLoadA, Def: d, A: NoReg, B: NoReg, Imm: off}, nil
	}
	return Instr{Op: OpLoad, Def: d, A: base, B: NoReg, Imm: off}, nil
}

// parseStore handles "store [ra+off], rs" and "store [imm], rs".
func (p *parser) parseStore(args []string) (Instr, error) {
	if len(args) != 2 {
		return Instr{}, p.errf("store: want 2 operands, got %d", len(args))
	}
	base, off, abs, err := p.mem(args[0])
	if err != nil {
		return Instr{}, err
	}
	s, err := p.reg(args[1])
	if err != nil {
		return Instr{}, err
	}
	if abs {
		return Instr{Op: OpStoreA, Def: NoReg, A: NoReg, B: s, Imm: off}, nil
	}
	return Instr{Op: OpStore, Def: NoReg, A: base, B: s, Imm: off}, nil
}

// mem parses "[ra+off]", "[ra-off]", "[ra]" or "[imm]".
func (p *parser) mem(s string) (base Reg, off int64, abs bool, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return NoReg, 0, false, p.errf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return NoReg, 0, false, p.errf("empty memory operand")
	}
	if inner[0] == 'v' || inner[0] == 'r' {
		regPart := inner
		immPart := ""
		neg := false
		if i := strings.IndexAny(inner, "+-"); i > 0 {
			regPart = strings.TrimSpace(inner[:i])
			immPart = strings.TrimSpace(inner[i+1:])
			neg = inner[i] == '-'
		}
		base, err = p.reg(regPart)
		if err != nil {
			return NoReg, 0, false, err
		}
		if immPart != "" {
			off, err = p.imm(immPart)
			if err != nil {
				return NoReg, 0, false, err
			}
			if neg {
				off = -off
			}
		}
		return base, off, false, nil
	}
	off, err = p.imm(inner)
	if err != nil {
		return NoReg, 0, false, err
	}
	return NoReg, off, true, nil
}

func (p *parser) reg(s string) (Reg, error) {
	if len(s) < 2 || (s[0] != 'v' && s[0] != 'r') {
		return NoReg, p.errf("bad register %q", s)
	}
	phys := s[0] == 'r'
	if p.regSeen && phys != p.physical {
		return NoReg, p.errf("mixed virtual and physical registers (%q)", s)
	}
	p.physical, p.regSeen = phys, true
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return NoReg, p.errf("bad register %q", s)
	}
	return Reg(n), nil
}

func (p *parser) imm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", s)
	}
	return v, nil
}

// splitArgs splits an operand list on commas that are outside brackets.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
