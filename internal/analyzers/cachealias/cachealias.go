// Package cachealias is poolalias's cross-package sibling, grown out of
// the PR-6 function cache: a checked-out intra.Allocator is exclusively
// the caller's only until its checkin runs. checkin(true) hands the
// allocator (and every *Piece/*Context its memo owns) to the cache,
// where another request may check it out concurrently; checkin(false)
// discards it. Either way, pointers into the allocator that outlive the
// checkin are aliases into memory the caller no longer owns.
//
// Within each function of a consumer package (anything importing
// intra), the pass flags, in source order:
//
//   - a use of a local typed *intra.Piece, *intra.Context or
//     *intra.Allocator bound before a checkin call that occurs between
//     the binding and the use, and
//   - such a pointer stored into a field, slice or map element (a
//     structure that survives the call) when a checkin follows later in
//     the same function.
//
// A checkin is any direct call whose callee name contains "checkin"
// (case-insensitive): the checkin func returned by
// core.AllocatorSource.Checkout, funccache's checkinFunc closures, and
// wrappers that keep the name. Calls inside defer statements or
// function literals are NOT kills — the idiomatic `defer func() {
// checkin(ok) }()` runs after every use in the function body, which is
// exactly the discipline this pass enforces. Like poolalias, the check
// is intraprocedural and position-ordered; justified exceptions carry a
// //lint:ignore cachealias directive.
package cachealias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the cachealias pass.
var Analyzer = &anz.Analyzer{
	Name: "cachealias",
	Doc: "flags *intra.Piece/Context/Allocator pointers that survive a function-cache " +
		"checkin — after checkin the cache owns the allocator and may hand it to " +
		"another request",
	Run: run,
}

func run(pass *anz.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *anz.Pass, fd *ast.FuncDecl) {
	kills := killPositions(fd)
	if len(kills) == 0 {
		return
	}

	// Locals bound to a tracked intra pointer: object -> binding
	// positions (each use is judged against its latest binding).
	bindings := make(map[types.Object][]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			var kind string
			switch {
			case len(as.Lhs) == len(as.Rhs):
				kind = trackedIntraPtr(pass, as.Rhs[i])
			case len(as.Rhs) == 1:
				// Multi-value form — `al, checkin, err := src.Checkout(f)`
				// is the canonical binding this pass exists for.
				kind = trackedTupleElem(pass, as.Rhs[0], i)
			}
			if kind == "" {
				continue
			}
			switch l := lhs.(type) {
			case *ast.Ident:
				if obj := pass.Info.ObjectOf(l); obj != nil {
					bindings[obj] = append(bindings[obj], l.Pos())
				}
			case *ast.SelectorExpr, *ast.IndexExpr:
				if k, found := killAfter(kills, lhs.Pos()); found {
					pass.Reportf(lhs.Pos(), "*intra.%s stored into a structure that survives the later checkin at line %d; after checkin the cache owns the allocator and may hand it to another request — copy the data instead of aliasing it", kind, pass.Fset.Position(k.pos).Line)
				}
			}
		}
		return true
	})
	if len(bindings) == 0 {
		return
	}

	// Uses: flag ident uses whose latest binding precedes a kill that
	// precedes the use.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		binds, tracked := bindings[obj]
		if !tracked {
			return true
		}
		latest := token.NoPos
		for _, b := range binds {
			if b <= id.Pos() && b > latest {
				latest = b
			}
		}
		if latest == token.NoPos {
			return true
		}
		for _, k := range kills {
			if latest < k.pos && k.pos < id.Pos() {
				pass.Reportf(id.Pos(), "use of %s bound before the checkin at line %d; a checked-in allocator may be reused concurrently or discarded by the function cache — finish with it before checkin, or rebind after", id.Name, pass.Fset.Position(k.pos).Line)
				return true
			}
		}
		return true
	})
}

type kill struct {
	pos token.Pos
}

// killPositions collects the direct (non-deferred) checkin calls in
// fd's body. Calls inside defer statements or function literals are
// skipped: a deferred checkin runs after every use in the enclosing
// body, and a closure's calls are judged when the closure itself runs,
// not at its definition site.
func killPositions(fd *ast.FuncDecl) []kill {
	var kills []kill
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isCheckinName(calleeName(n)) {
				kills = append(kills, kill{pos: n.Pos()})
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return kills
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isCheckinName(name string) bool {
	return strings.Contains(strings.ToLower(name), "checkin")
}

func killAfter(kills []kill, pos token.Pos) (kill, bool) {
	for _, k := range kills {
		if k.pos > pos {
			return k, true
		}
	}
	return kill{}, false
}

// trackedNames are the intra types whose pointers the cache owns after
// a checkin.
var trackedNames = map[string]bool{"Piece": true, "Context": true, "Allocator": true}

// trackedTupleElem is trackedIntraPtr for element i of a multi-value
// expression (a call returning a tuple).
func trackedTupleElem(pass *anz.Pass, expr ast.Expr, i int) string {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	tup, ok := tv.Type.(*types.Tuple)
	if !ok || i >= tup.Len() {
		return ""
	}
	return trackedPtrType(tup.At(i).Type())
}

// trackedIntraPtr reports the type name ("Piece", "Context",
// "Allocator") when expr's static type is a pointer to one of intra's
// cache-owned named types, and "" otherwise. The package is matched by
// import-path suffix so fixtures can stub intra.
func trackedIntraPtr(pass *anz.Pass, expr ast.Expr) string {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	return trackedPtrType(tv.Type)
}

// trackedPtrType implements the type test on a types.Type.
func trackedPtrType(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "/intra") {
		return ""
	}
	if !trackedNames[obj.Name()] {
		return ""
	}
	return obj.Name()
}
