package ir

import "testing"

// FuzzParse feeds arbitrary text to the parser: it must never panic, and
// anything it accepts must format and re-parse to the same text
// (canonical round trip).
func FuzzParse(f *testing.F) {
	f.Add("func t\na:\n set v0, 1\n store [0], v0\n halt\n")
	f.Add("a:\n load v1, [v0+4]\n bnz v1, a\n halt")
	f.Add("x:\n\tadd v1, v2, v3\n\tbr x")
	f.Add("; comment only\nfunc f\ne:\n ctx\n halt")
	f.Add("a:\n store [v0-8], v1\n halt")
	f.Add("")
	f.Add("func \x00\nx:\n halt")
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Parse(src)
		if err != nil {
			return
		}
		text := fn.Format()
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted program does not re-parse: %v\n%s", err, text)
		}
		if again.Format() != text {
			t.Fatalf("format not canonical:\n%s\nvs\n%s", text, again.Format())
		}
	})
}
