// Package spill implements spill-code insertion shared by the baseline
// register allocators (Chaitin-style coloring and linear scan): each
// spilled virtual register lives in a memory slot addressed off a
// reserved per-thread base register; every use loads it into a fresh
// temporary just before, every definition stores it just after.
//
// On a network processor this is exactly why spilling is so costly: every
// inserted load/store is a ~20-cycle memory operation that also forces a
// context switch — the pathology the paper's cross-thread allocator
// exists to avoid.
//
// The base register is materialized by a prologue whose address constants
// are initially the marker immediates below; the allocator's final rename
// patches them via PatchImm once it knows the spill area layout.
package spill

import (
	"fmt"

	"npra/internal/ir"
)

// Marker immediates patched with real values during the final rewrite.
const (
	strideMarker = -7777001
	baseMarker   = -7777002
)

// prologueLabel names the block that computes the spill base register.
const prologueLabel = ".spillpro"

// BaseReg returns the virtual register reserved as the spill base if the
// prologue already exists, else -1.
func BaseReg(f *ir.Func) ir.Reg {
	if len(f.Blocks) > 0 && f.Blocks[0].Label == prologueLabel {
		return f.Blocks[0].Instrs[0].Def
	}
	return -1
}

// PatchImm resolves a marker immediate to its real value; ok reports
// whether imm was a marker.
func PatchImm(imm, base, stride int64) (int64, bool) {
	switch imm {
	case strideMarker:
		return stride, true
	case baseMarker:
		return base, true
	}
	return imm, false
}

// Insert rewrites f so each register in spilled lives in memory. Slots
// are allocated from *nextSlot (in words); temporaries created here are
// recorded in noSpill so later rounds never spill them again. Returns the
// rewritten function and the number of instructions added.
func Insert(f *ir.Func, spilled []int, nextSlot *int, noSpill map[ir.Reg]bool) (*ir.Func, int, error) {
	slot := make(map[ir.Reg]int64)
	for _, v := range spilled {
		slot[ir.Reg(v)] = int64(*nextSlot) * 4
		*nextSlot++
	}
	nf := &ir.Func{Name: f.Name, NumRegs: f.NumRegs}
	next := ir.Reg(f.NumRegs)
	base := BaseReg(f)
	needProloque := base < 0
	if needProloque {
		base = next
		next++
	}
	added := 0
	var buf []ir.Reg
	for _, b := range f.Blocks {
		nb := &ir.Block{Label: b.Label}
		for i := range b.Instrs {
			in := b.Instrs[i]
			// Loads for spilled uses.
			buf = in.Uses(buf[:0])
			replaced := make(map[ir.Reg]ir.Reg, 2)
			for _, u := range buf {
				off, ok := slot[u]
				if !ok {
					continue
				}
				tmp, dup := replaced[u]
				if !dup {
					tmp = next
					next++
					noSpill[tmp] = true
					nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpLoad, Def: tmp, A: base, B: ir.NoReg, Imm: off})
					added++
					replaced[u] = tmp
				}
				if in.A == u {
					in.A = tmp
				}
				if in.B == u {
					in.B = tmp
				}
			}
			// Store for a spilled def.
			if in.Def != ir.NoReg {
				if off, ok := slot[in.Def]; ok {
					tmp := next
					next++
					noSpill[tmp] = true
					in.Def = tmp
					nb.Instrs = append(nb.Instrs, in)
					nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpStore, Def: ir.NoReg, A: base, B: tmp, Imm: off})
					added++
					continue
				}
			}
			nb.Instrs = append(nb.Instrs, in)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	if needProloque {
		entry := &ir.Block{Label: prologueLabel, Instrs: []ir.Instr{
			{Op: ir.OpTID, Def: base, A: ir.NoReg, B: ir.NoReg},
			{Op: ir.OpMulI, Def: base, A: base, B: ir.NoReg, Imm: strideMarker},
			{Op: ir.OpAddI, Def: base, A: base, B: ir.NoReg, Imm: baseMarker},
		}}
		nf.Blocks = append([]*ir.Block{entry}, nf.Blocks...)
		added += 3
	}
	nf.NumRegs = int(next)
	if err := nf.Build(); err != nil {
		return nil, 0, fmt.Errorf("spill: rewrite invalid: %w", err)
	}
	return nf, added, nil
}
