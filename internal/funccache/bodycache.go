package funccache

// BodyCache is the parse-level half of the function cache: a bounded
// LRU from a thread's body spec (masm source or progen spec, plus the
// effective name — see core.(*WireThread) bodySpec) to the compiled
// ir.Func, so parsing/generation happens once per canonical body
// rather than once per request. It implements core.CompiledBodies.
//
// Cached functions are shared across requests and goroutines; ir.Func
// is read-only after Build, which is the immutability the sharing
// relies on. Build errors are returned to the caller and never cached.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"npra/internal/ir"
)

// BodyStats is a snapshot of a BodyCache's counters.
type BodyStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
}

type bodyEntry struct {
	key string
	f   *ir.Func
}

// BodyCache is safe for concurrent use. Construct with NewBodyCache.
type BodyCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *bodyEntry
	cap     int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewBodyCache returns an empty cache bounded to entries bodies
// (default 1024 when entries <= 0).
func NewBodyCache(entries int) *BodyCache {
	if entries <= 0 {
		entries = 1024
	}
	return &BodyCache{
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		cap:     entries,
	}
}

// GetOrCompile implements core.CompiledBodies: it returns the function
// cached under key, calling build on a miss. Compilation runs outside
// the lock; when two goroutines miss the same key concurrently, the
// first insertion wins and both receive the same pointer thereafter
// (the losing compile produced a body-for-body identical function, so
// either answer is correct — sharing one maximizes downstream
// pointer-identity reuse).
func (b *BodyCache) GetOrCompile(key string, build func() (*ir.Func, error)) (*ir.Func, error) {
	b.mu.Lock()
	if el, ok := b.entries[key]; ok {
		b.lru.MoveToFront(el)
		f := el.Value.(*bodyEntry).f
		b.mu.Unlock()
		b.hits.Add(1)
		return f, nil
	}
	b.mu.Unlock()

	b.misses.Add(1)
	f, err := build()
	if err != nil {
		return nil, err
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.entries[key]; ok {
		b.lru.MoveToFront(el)
		return el.Value.(*bodyEntry).f, nil
	}
	b.entries[key] = b.lru.PushFront(&bodyEntry{key: key, f: f})
	for b.lru.Len() > b.cap {
		back := b.lru.Back()
		b.lru.Remove(back)
		delete(b.entries, back.Value.(*bodyEntry).key)
		b.evictions.Add(1)
	}
	return f, nil
}

// Stats returns a snapshot of the counters.
func (b *BodyCache) Stats() BodyStats {
	b.mu.Lock()
	n := int64(b.lru.Len())
	b.mu.Unlock()
	return BodyStats{
		Hits:      b.hits.Load(),
		Misses:    b.misses.Load(),
		Evictions: b.evictions.Load(),
		Entries:   n,
	}
}
