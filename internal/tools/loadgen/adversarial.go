package loadgen

// The adversarial workload: heterogeneous hardware profiles drive
// cache-hostile progen shapes against one server, and the report
// watches the failure modes the friendly kernel mix never reaches —
// relocation storms in the rewrite tier, eviction thrash when the
// caches are squeezed, raw-cache aliasing across register files, and
// admission fairness when profiles skew the work size.
//
// Each worker is pinned to one hardware profile (its X-Tenant), so the
// profiles form closed loops exactly like chaos tenants; shapes cycle
// per request. A tunable fraction of each worker's requests repeats a
// small hot pool — without repeats the tiny caches would only ever
// miss, and the relocation/eviction counters would measure nothing.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"npra/internal/core"
	"npra/internal/core/errs"
)

// HWProfile is one hardware profile in the heterogeneous stream: a
// register-file size and, when NThd is set, the symmetric (SRA) mode
// with that thread count.
type HWProfile struct {
	Name string `json:"name"`
	NReg int    `json:"nreg"`
	NThd int    `json:"nthd,omitempty"` // >0: mode "sra" with this thread count
}

// ParseProfiles parses a profile list of the form
// "name=nreg,name=nregxnthd,..." (e.g. "small=16,sym=32x4,large=128").
func ParseProfiles(spec string) ([]HWProfile, error) {
	var out []HWProfile
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, errs.Invalidf("loadgen: profile %q: want name=nreg[xnthd]", part)
		}
		p := HWProfile{Name: name}
		nregStr, nthdStr, hasThd := strings.Cut(val, "x")
		n, err := strconv.Atoi(nregStr)
		if err != nil || n < 1 {
			return nil, errs.Invalidf("loadgen: profile %q: bad nreg %q", part, nregStr)
		}
		p.NReg = n
		if hasThd {
			th, err := strconv.Atoi(nthdStr)
			if err != nil || th < 1 {
				return nil, errs.Invalidf("loadgen: profile %q: bad nthd %q", part, nthdStr)
			}
			p.NThd = th
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, errs.Invalidf("loadgen: empty profile list %q", spec)
	}
	return out, nil
}

// AdvShapes is the default adversarial shape rotation; it must match
// the generator families progen accepts on the wire.
var AdvShapes = []string{"trampoline", "boundary", "palette", "nearcollision"}

// AdvOptions configures an adversarial run. Zero values take the noted
// defaults.
type AdvOptions struct {
	// URL is the server's base URL. Required.
	URL string

	// WorkersPerProfile is the closed-loop worker count pinned to each
	// profile (default 2).
	WorkersPerProfile int

	// Duration bounds the run in wall time; MaxRequests bounds it in
	// total requests. At least one must be set.
	Duration    time.Duration
	MaxRequests int64

	// Profiles is the heterogeneous hardware mix; each profile is also
	// the X-Tenant its workers send, so the server's DRR admission sees
	// one tenant per profile. Default: ara24 / sra64x3 / ara128.
	Profiles []HWProfile

	// Shapes rotates the adversarial generator families (default
	// AdvShapes).
	Shapes []string

	// HotRatio is the probability a request repeats one of PoolSize hot
	// specs of its (shape, profile) slot instead of a fresh unique one
	// (default 0.5). Hot repeats are what give the cache tiers a reuse
	// signal to mismanage; unique requests are what churns them.
	HotRatio float64

	// PoolSize is the hot-spec pool size per (shape, profile) (default 3).
	PoolSize int

	// Threads caps the threads per ARA request (default 2).
	Threads int

	// TimeoutMS is forwarded in each request (0 = server default).
	TimeoutMS int64

	// Seed makes the stream reproducible (default 1).
	Seed int64

	// Client overrides the HTTP client (default: 30s-timeout client).
	Client *http.Client
}

func (o AdvOptions) withDefaults() AdvOptions {
	if o.WorkersPerProfile <= 0 {
		o.WorkersPerProfile = 2
	}
	if len(o.Profiles) == 0 {
		o.Profiles = []HWProfile{
			{Name: "ara24", NReg: 24},
			{Name: "sra64", NReg: 64, NThd: 3},
			{Name: "ara128", NReg: 128},
		}
	}
	if len(o.Shapes) == 0 {
		o.Shapes = AdvShapes
	}
	if o.HotRatio == 0 {
		o.HotRatio = 0.5
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 3
	}
	if o.Threads <= 0 {
		o.Threads = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// advSpec builds one request: a single shape family under a single
// hardware profile, so every outcome classifies cleanly. Thread seeds
// are folded into a small range so bodies recur across different
// requests, thread positions and budgets — the recurrence the rewrite
// tier answers with relocations rather than exact pointer hits.
func (o *AdvOptions) advSpec(shape string, p HWProfile, seed int64) []byte {
	req := core.WireRequest{NReg: p.NReg, TimeoutMS: o.TimeoutMS}
	if p.NThd > 0 {
		req.Mode = "sra"
		req.NThd = p.NThd
		req.Threads = []core.WireThread{
			{Progen: &core.WireProgen{Seed: o.Seed*1000 + seed%16, Shape: shape}},
		}
	} else {
		nthreads := 1 + int(seed)%o.Threads
		for th := 0; th < nthreads; th++ {
			req.Threads = append(req.Threads, core.WireThread{
				Progen: &core.WireProgen{Seed: o.Seed*1000 + (seed+int64(th)*7)%16, Shape: shape},
			})
		}
	}
	blob, err := json.Marshal(&req)
	if err != nil {
		return []byte("{}")
	}
	return blob
}

// AdvShapeStats classifies one shape family's outcomes. OK + Degraded +
// Shed + Invalid + Timeout + FiveXX + Transport partitions Requests;
// AliasMismatch counts 200s whose nreg did not match the submitted
// profile — the raw-cache cross-profile aliasing canary — and is also
// counted in OK/Degraded (the response was served, just suspect).
type AdvShapeStats struct {
	Requests      int64 `json:"requests"`
	OK            int64 `json:"ok"`
	Degraded      int64 `json:"degraded"`
	Shed          int64 `json:"shed"`
	Invalid       int64 `json:"invalid"`
	Timeout       int64 `json:"timeout"`
	FiveXX        int64 `json:"five_xx"`
	Transport     int64 `json:"transport"`
	AliasMismatch int64 `json:"alias_mismatch"`
}

// AdvReport is the outcome of one adversarial run.
type AdvReport struct {
	Requests int64                     `json:"requests"`
	ByShape  map[string]*AdvShapeStats `json:"by_shape"`

	// ProfileOK counts served (OK or degraded) responses per profile;
	// FairnessDev is the worst relative deviation of any profile's
	// served share from its equal share under the server's DRR.
	ProfileOK   map[string]int64 `json:"profile_ok"`
	FairnessDev float64          `json:"fairness_dev"`

	// AliasMismatches sums AliasMismatch across shapes; any non-zero
	// value is a cross-profile cache-aliasing bug, never acceptable.
	AliasMismatches int64 `json:"alias_mismatches"`

	// RelocShare is relocation hits over all rewrite-tier lookups
	// (delta across the run): the relocation-storm gate.
	RelocShare float64 `json:"reloc_share"`

	// EvictionsPerReq is the run's eviction delta summed over the
	// function, rewrite and raw tiers, per request: the eviction-thrash
	// gate.
	EvictionsPerReq float64 `json:"evictions_per_req"`

	FuncCacheHitRate    float64 `json:"funccache_hit_rate"`
	RewriteCacheHitRate float64 `json:"rewritecache_hit_rate"`

	DurationS     float64 `json:"duration_s"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`

	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Check validates the adversarial gates: no transport errors, zero
// cross-profile alias mismatches (always enforced), every shape served
// at least once, at most maxFiveXX server errors (-1 disables), a
// relocation share at most maxRelocShare (0 disables), an eviction rate
// at most maxEvictPerReq (0 disables), a p99 at most maxP99MS (0
// disables), and every profile's served share within fairTol of equal
// (0 disables).
func (r *AdvReport) Check(maxFiveXX int64, maxRelocShare, maxEvictPerReq, maxP99MS, fairTol float64) error {
	if r.Requests == 0 {
		return errs.Internalf("adversarial: no requests completed")
	}
	if r.AliasMismatches > 0 {
		return errs.Internalf("adversarial: %d responses carried another profile's register file — cross-profile cache aliasing", r.AliasMismatches)
	}
	shapes := make([]string, 0, len(r.ByShape))
	for shape := range r.ByShape {
		shapes = append(shapes, shape)
	}
	sort.Strings(shapes)
	var fiveXX, transport int64
	for _, shape := range shapes {
		st := r.ByShape[shape]
		fiveXX += st.FiveXX
		transport += st.Transport
		if st.OK+st.Degraded == 0 {
			return errs.Internalf("adversarial: shape %q was never served (stats %+v)", shape, *st)
		}
	}
	if transport > 0 {
		return errs.Internalf("adversarial: %d transport errors", transport)
	}
	if maxFiveXX >= 0 && fiveXX > maxFiveXX {
		return errs.Internalf("adversarial: %d responses were 5xx (allowed %d)", fiveXX, maxFiveXX)
	}
	if maxRelocShare > 0 && r.RelocShare > maxRelocShare {
		return errs.Internalf("adversarial: relocation share %.4f above the %.4f ceiling (relocation storm)",
			r.RelocShare, maxRelocShare)
	}
	if maxEvictPerReq > 0 && r.EvictionsPerReq > maxEvictPerReq {
		return errs.Internalf("adversarial: %.2f evictions/request above the %.2f ceiling (eviction thrash)",
			r.EvictionsPerReq, maxEvictPerReq)
	}
	if maxP99MS > 0 && r.P99MS > maxP99MS {
		return errs.Internalf("adversarial: p99 latency %.2fms above the %.2fms ceiling", r.P99MS, maxP99MS)
	}
	if fairTol > 0 && r.FairnessDev > fairTol {
		return errs.Internalf("adversarial: profile served-share deviates %.4f from equal (allowed %.4f): %v",
			r.FairnessDev, fairTol, r.ProfileOK)
	}
	return nil
}

// RunAdversarial drives the adversarial workload and returns the
// report. It stops when ctx is done, Duration elapses, or MaxRequests
// have been issued — whichever comes first.
func RunAdversarial(ctx context.Context, opt AdvOptions) (*AdvReport, error) {
	opt = opt.withDefaults()
	if opt.URL == "" {
		return nil, errs.Invalidf("loadgen: no target URL")
	}
	if opt.Duration <= 0 && opt.MaxRequests <= 0 {
		return nil, errs.Invalidf("loadgen: need a duration or a request budget")
	}
	if opt.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Duration)
		defer cancel()
	}

	// Hot pools: PoolSize fixed specs per (shape, profile), shared by
	// that profile's workers. Byte-identical repeats are what exercise
	// the raw LRU — and what would surface aliasing if the raw key ever
	// stopped covering the profile.
	hot := make(map[string][][]byte, len(opt.Shapes)*len(opt.Profiles))
	for _, shape := range opt.Shapes {
		for pi, p := range opt.Profiles {
			pool := make([][]byte, opt.PoolSize)
			for k := range pool {
				pool[k] = opt.advSpec(shape, p, int64(pi*opt.PoolSize+k))
			}
			hot[shape+"|"+p.Name] = pool
		}
	}

	pre, err := ScrapeMetrics(opt.Client, opt.URL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: pre-run metrics: %w", err)
	}

	type workerStats struct {
		byShape   map[string]*AdvShapeStats
		profileOK int64
		latencies []float64
	}
	stats := make([]workerStats, len(opt.Profiles)*opt.WorkersPerProfile)
	var issued atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for pi, p := range opt.Profiles {
		for w := 0; w < opt.WorkersPerProfile; w++ {
			wg.Add(1)
			go func(pi int, p HWProfile, slot int) {
				defer wg.Done()
				st := &stats[slot]
				st.byShape = make(map[string]*AdvShapeStats, len(opt.Shapes))
				rng := rand.New(rand.NewSource(opt.Seed + int64(slot)*7919))
				for i := int64(0); ctx.Err() == nil; i++ {
					ticket := issued.Add(1)
					if opt.MaxRequests > 0 && ticket > opt.MaxRequests {
						return
					}
					shape := opt.Shapes[int(i)%len(opt.Shapes)]
					sh := st.byShape[shape]
					if sh == nil {
						sh = &AdvShapeStats{}
						st.byShape[shape] = sh
					}
					var body []byte
					if rng.Float64() < opt.HotRatio {
						pool := hot[shape+"|"+p.Name]
						body = pool[rng.Intn(len(pool))]
					} else {
						body = opt.advSpec(shape, p, 100+ticket)
					}

					req, err := http.NewRequestWithContext(ctx, http.MethodPost,
						opt.URL+"/allocate", bytes.NewReader(body))
					if err != nil {
						sh.Requests++
						sh.Transport++
						continue
					}
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set("X-Tenant", p.Name)
					t0 := time.Now()
					resp, err := opt.Client.Do(req)
					if err != nil {
						if ctx.Err() != nil {
							return // run ended mid-request; don't count it
						}
						sh.Requests++
						sh.Transport++
						continue
					}
					blob, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						sh.Requests++
						sh.Transport++
						continue
					}
					sh.Requests++
					st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
					switch {
					case resp.StatusCode == http.StatusOK:
						var out struct {
							NReg     int  `json:"nreg"`
							Degraded bool `json:"degraded"`
						}
						if json.Unmarshal(blob, &out) != nil || out.NReg != p.NReg {
							sh.AliasMismatch++
						}
						if out.Degraded {
							sh.Degraded++
						} else {
							sh.OK++
						}
						st.profileOK++
					case resp.StatusCode == http.StatusTooManyRequests:
						sh.Shed++
					case resp.StatusCode == http.StatusBadRequest,
						resp.StatusCode == http.StatusUnprocessableEntity:
						sh.Invalid++
					case resp.StatusCode == http.StatusGatewayTimeout:
						sh.Timeout++
					case resp.StatusCode >= 500:
						sh.FiveXX++
					}
				}
			}(pi, p, pi*opt.WorkersPerProfile+w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &AdvReport{
		ByShape:   make(map[string]*AdvShapeStats, len(opt.Shapes)),
		ProfileOK: make(map[string]int64, len(opt.Profiles)),
		DurationS: elapsed.Seconds(),
	}
	for _, shape := range opt.Shapes {
		rep.ByShape[shape] = &AdvShapeStats{}
	}
	var all []float64
	for pi, p := range opt.Profiles {
		for w := 0; w < opt.WorkersPerProfile; w++ {
			st := &stats[pi*opt.WorkersPerProfile+w]
			rep.ProfileOK[p.Name] += st.profileOK
			all = append(all, st.latencies...)
			workerShapes := make([]string, 0, len(st.byShape))
			for shape := range st.byShape {
				workerShapes = append(workerShapes, shape)
			}
			sort.Strings(workerShapes)
			for _, shape := range workerShapes {
				sh := st.byShape[shape]
				dst := rep.ByShape[shape]
				dst.Requests += sh.Requests
				dst.OK += sh.OK
				dst.Degraded += sh.Degraded
				dst.Shed += sh.Shed
				dst.Invalid += sh.Invalid
				dst.Timeout += sh.Timeout
				dst.FiveXX += sh.FiveXX
				dst.Transport += sh.Transport
				dst.AliasMismatch += sh.AliasMismatch
			}
		}
	}
	for _, sh := range rep.ByShape {
		rep.Requests += sh.Requests
		rep.AliasMismatches += sh.AliasMismatch
	}
	sort.Float64s(all)
	if len(all) > 0 {
		rep.P50MS = percentile(all, 0.50)
		rep.P90MS = percentile(all, 0.90)
		rep.P99MS = percentile(all, 0.99)
		rep.MaxMS = all[len(all)-1]
		sum := 0.0
		for _, v := range all {
			sum += v
		}
		rep.MeanMS = sum / float64(len(all))
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.FairnessDev = fairnessDev(rep.ProfileOK, nil) // equal shares

	post, err := ScrapeMetrics(opt.Client, opt.URL)
	if err != nil {
		return rep, fmt.Errorf("loadgen: post-run metrics: %w", err)
	}
	rep.Metrics = post
	delta := func(name string) float64 { return post[name] - pre[name] }
	fh, fm := delta("npserve_func_cache_hits"), delta("npserve_func_cache_misses")
	if fh+fm > 0 {
		rep.FuncCacheHitRate = fh / (fh + fm)
	}
	rh := delta("npserve_rewrite_cache_hits")
	rr := delta("npserve_rewrite_cache_reloc_hits")
	rm := delta("npserve_rewrite_cache_misses")
	if rh+rr+rm > 0 {
		rep.RelocShare = rr / (rh + rr + rm)
		rep.RewriteCacheHitRate = (rh + rr) / (rh + rr + rm)
	}
	if rep.Requests > 0 {
		rep.EvictionsPerReq = (delta("npserve_func_cache_evictions") +
			delta("npserve_rewrite_cache_evictions") +
			delta("npserve_raw_cache_evictions")) / float64(rep.Requests)
	}
	return rep, nil
}
