// Package sim is the evaluation substrate: a cycle-level simulator of an
// IXP1200-style micro-engine (processing unit). It models exactly the
// machine properties the paper's results depend on:
//
//   - Nthd hardware thread contexts sharing one register file and one CPU;
//   - non-preemptive execution — a thread runs until it context-switches;
//   - 1-cycle ALU/move/branch instructions;
//   - explicit 1-cycle context switch (ctx) that saves only the PC;
//   - ~20-cycle memory operations (load/store) that block the issuing
//     thread and yield the CPU, hiding latency behind the other threads;
//   - round-robin selection among ready threads.
//
// The simulator also acts as a dynamic safety monitor: each thread may
// declare a protected (private) register range, and any write to another
// thread's protected range aborts the run — the hazard that makes naive
// register sharing unsound on this class of hardware.
package sim

import (
	"fmt"

	"npra/internal/core/errs"
	"npra/internal/ir"
)

// Config parameterizes the processing unit.
type Config struct {
	NReg          int   // register file size (default 128)
	MemWords      int   // memory size in 32-bit words (default 16384)
	MemLatency    int64 // cycles for a load/store to complete (default 20)
	SwitchLatency int64 // extra cycles per context switch (default 0; the
	// switching instruction's own cycle models the IXP's 1-cycle switch)
	MaxCycles int64 // hard stop (default 10M)
	StopIters int64 // stop once every thread hit this many iter markers (0 = off)

	// MemOccupancy models contention on the shared memory channel: each
	// load/store occupies the channel for this many cycles, so concurrent
	// operations (from any thread or processing unit sharing the memory)
	// serialize. 0 disables contention (infinite bandwidth).
	MemOccupancy int64

	// Sched selects the thread scheduling policy (default round-robin).
	Sched SchedPolicy

	// Trace, when non-nil, receives per-instruction execution events.
	Trace Tracer
}

func (c *Config) setDefaults() {
	if c.NReg == 0 {
		c.NReg = 128
	}
	if c.MemWords == 0 {
		c.MemWords = 16384
	}
	if c.MemLatency == 0 {
		c.MemLatency = 20
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 10_000_000
	}
}

// Thread is one hardware context's program.
type Thread struct {
	F *ir.Func // must be built; physical or virtual registers both run,
	// but sharing hazards only make sense for physical code.

	// ProtectLo/ProtectHi declare the thread's private register range
	// [lo, hi): writes by other threads into it abort the simulation.
	// lo == hi disables protection.
	ProtectLo, ProtectHi int
}

// ThreadStats reports one thread's execution.
type ThreadStats struct {
	Instrs     int64 // instructions retired
	BusyCycles int64 // cycles occupying the CPU
	CTX        int64 // context-switch instructions executed (ctx/load/store)
	Iters      int64 // iter markers executed
	LastIterAt int64 // machine cycle of the last iter marker
	Halted     bool
}

// CyclesPerIter returns the wall-clock machine cycles per loop iteration,
// the paper's per-thread performance metric.
func (s ThreadStats) CyclesPerIter() float64 {
	if s.Iters == 0 {
		return 0
	}
	return float64(s.LastIterAt) / float64(s.Iters)
}

// Result reports a completed simulation.
type Result struct {
	Cycles  int64 // total machine cycles elapsed
	Idle    int64 // cycles with no ready thread (all blocked on memory)
	Mem     []uint32
	Threads []ThreadStats
}

// Utilization returns the fraction of cycles the CPU was busy.
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles-r.Idle) / float64(r.Cycles)
}

// SchedPolicy selects how the next ready thread is chosen after a
// context switch.
type SchedPolicy uint8

const (
	// SchedRoundRobin resumes the next ready thread after the one that
	// yielded — the IXP hardware's fair policy and the default.
	SchedRoundRobin SchedPolicy = iota

	// SchedPriority always resumes the lowest-numbered ready thread, so
	// thread 0 is the most favored. Pairs with core.Config.Critical for
	// experiments where one thread's latency matters most.
	SchedPriority
)

type tstate uint8

const (
	tReady tstate = iota
	tBlocked
	tDone
)

type hwThread struct {
	prog    *Thread
	pc      int
	state   tstate
	readyAt int64
	// effect is the memory-side effect of an in-flight operation,
	// applied when the operation completes (stores land in memory then).
	effect func(m *machine)
	// resumeWrite delivers a load's destination register when the thread
	// next occupies the CPU — the IXP keeps the data in transfer
	// registers until then, which is exactly why a load's destination is
	// not live across its own context switch and may use a *shared*
	// register: the write must never land while another thread runs.
	resumeWrite func(m *machine)
	stats       ThreadStats
}

type machine struct {
	cfg     Config
	regs    []uint32
	mem     []uint32
	threads []*hwThread
	cycle   int64
	idle    int64
	tidBase int   // added to the PU-local index by the tid instruction
	err     error // first safety violation (cross-thread clobber)

	// memFree points at the cycle the shared memory channel is next
	// available (shared across PUs in a cluster when they share memory).
	memFree *int64
}

// Run simulates the threads to completion (all halted), to cfg.MaxCycles,
// or until every thread reached cfg.StopIters iteration markers.
func Run(threads []*Thread, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if len(threads) == 0 {
		return nil, errs.Invalidf("sim: no threads")
	}
	m := &machine{
		cfg:     cfg,
		regs:    make([]uint32, cfg.NReg),
		mem:     make([]uint32, cfg.MemWords),
		memFree: new(int64),
	}
	for ti, th := range threads {
		if th.F == nil || !th.F.Built() {
			return nil, errs.Invalidf("sim: thread %d has no built function", ti)
		}
		if th.F.NumRegs > cfg.NReg {
			return nil, errs.Invalidf("sim: thread %d uses %d registers, file has %d", ti, th.F.NumRegs, cfg.NReg)
		}
		if th.ProtectLo < 0 || th.ProtectHi > cfg.NReg || th.ProtectLo > th.ProtectHi {
			return nil, errs.Invalidf("sim: thread %d bad protected range [%d,%d)", ti, th.ProtectLo, th.ProtectHi)
		}
		m.threads = append(m.threads, &hwThread{prog: th, pc: 0, state: tReady})
	}

	cur := 0 // current thread index
	for m.cycle < cfg.MaxCycles {
		m.applyCompletions()
		if m.done() {
			break
		}
		if cfg.StopIters > 0 && m.allReachedIters(cfg.StopIters) {
			break
		}
		run := m.pickReady(cur)
		if run < 0 {
			// Everyone blocked on memory: idle to the next completion.
			next := m.nextReadyAt()
			if next < 0 {
				return nil, errs.Invalidf("sim: deadlock: no thread will ever be ready")
			}
			m.idle += next - m.cycle
			m.cycle = next
			continue
		}
		cur = run
		if err := m.runThread(cur); err != nil {
			return nil, err
		}
		if m.err != nil {
			return nil, m.err
		}
		cur = (cur + 1) % len(m.threads)
		m.cycle += cfg.SwitchLatency
	}

	res := &Result{Cycles: m.cycle, Idle: m.idle, Mem: m.mem}
	for _, t := range m.threads {
		res.Threads = append(res.Threads, t.stats)
	}
	return res, nil
}

func (m *machine) done() bool {
	for _, t := range m.threads {
		if t.state != tDone {
			return false
		}
	}
	return true
}

func (m *machine) allReachedIters(n int64) bool {
	for _, t := range m.threads {
		if t.state != tDone && t.stats.Iters < n {
			return false
		}
	}
	return true
}

func (m *machine) applyCompletions() {
	for ti, t := range m.threads {
		if t.state == tBlocked && t.readyAt <= m.cycle {
			if t.effect != nil {
				t.effect(m)
				t.effect = nil
				if m.cfg.Trace != nil {
					m.cfg.Trace.MemDone(m.cycle, m.tidBase+ti)
				}
			}
			t.state = tReady
		}
	}
}

func (m *machine) pickReady(from int) int {
	n := len(m.threads)
	if m.cfg.Sched == SchedPriority {
		from = 0
	}
	for k := 0; k < n; k++ {
		i := (from + k) % n
		if m.threads[i].state == tReady {
			return i
		}
	}
	return -1
}

func (m *machine) nextReadyAt() int64 {
	next := int64(-1)
	for _, t := range m.threads {
		if t.state == tBlocked && (next < 0 || t.readyAt < next) {
			next = t.readyAt
		}
	}
	return next
}

// runThread executes the chosen thread until it context-switches, halts
// or the cycle budget expires (non-preemptive execution).
func (m *machine) runThread(ti int) error {
	for m.cycle < m.cfg.MaxCycles {
		// Memory completions for other threads land on schedule even
		// while this thread occupies the CPU.
		m.applyCompletions()
		if m.err != nil {
			return m.err
		}
		keep, err := m.execOne(ti)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
	}
	return nil
}

// execOne executes exactly one instruction of thread ti, advancing the
// machine one cycle. It returns keep=false when the thread gave up the
// CPU (context switch, memory block or halt). It is the cycle-lockstep
// primitive the multi-PU cluster engine is built on.
func (m *machine) execOne(ti int) (keep bool, err error) {
	pc0 := m.threads[ti].pc
	keep, err = m.execOneInner(ti)
	if tr := m.cfg.Trace; tr != nil && err == nil {
		in := m.threads[ti].prog.F.Instr(pc0)
		tr.Exec(m.cycle, m.tidBase+ti, pc0, in)
		if !keep {
			reason := "ctx"
			switch in.Op {
			case ir.OpHalt:
				reason = "halt"
			case ir.OpLoad, ir.OpLoadA, ir.OpStore, ir.OpStoreA:
				reason = "mem"
			case ir.OpIter:
				reason = "iter-stop"
			}
			tr.Switch(m.cycle, m.tidBase+ti, reason)
		}
	}
	return keep, err
}

func (m *machine) execOneInner(ti int) (keep bool, err error) {
	t := m.threads[ti]
	if t.resumeWrite != nil {
		// Transfer-register delivery: the pending load result lands now
		// that the thread occupies the CPU again (costs no extra cycle;
		// the hardware overlaps it with resumption).
		t.resumeWrite(m)
		t.resumeWrite = nil
	}
	f := t.prog.F
	{
		in := f.Instr(t.pc)
		next := t.pc + 1
		m.cycle++
		t.stats.Instrs++
		t.stats.BusyCycles++

		switch in.Op {
		case ir.OpSet:
			m.write(ti, in.Def, uint32(in.Imm))
		case ir.OpMov:
			m.write(ti, in.Def, m.regs[in.A])
		case ir.OpTID:
			m.write(ti, in.Def, uint32(m.tidBase+ti))
		case ir.OpAdd:
			m.write(ti, in.Def, m.regs[in.A]+m.regs[in.B])
		case ir.OpSub:
			m.write(ti, in.Def, m.regs[in.A]-m.regs[in.B])
		case ir.OpAnd:
			m.write(ti, in.Def, m.regs[in.A]&m.regs[in.B])
		case ir.OpOr:
			m.write(ti, in.Def, m.regs[in.A]|m.regs[in.B])
		case ir.OpXor:
			m.write(ti, in.Def, m.regs[in.A]^m.regs[in.B])
		case ir.OpShl:
			m.write(ti, in.Def, m.regs[in.A]<<(m.regs[in.B]&31))
		case ir.OpShr:
			m.write(ti, in.Def, m.regs[in.A]>>(m.regs[in.B]&31))
		case ir.OpMul:
			m.write(ti, in.Def, m.regs[in.A]*m.regs[in.B])
		case ir.OpAddI:
			m.write(ti, in.Def, m.regs[in.A]+uint32(in.Imm))
		case ir.OpSubI:
			m.write(ti, in.Def, m.regs[in.A]-uint32(in.Imm))
		case ir.OpAndI:
			m.write(ti, in.Def, m.regs[in.A]&uint32(in.Imm))
		case ir.OpOrI:
			m.write(ti, in.Def, m.regs[in.A]|uint32(in.Imm))
		case ir.OpXorI:
			m.write(ti, in.Def, m.regs[in.A]^uint32(in.Imm))
		case ir.OpShlI:
			m.write(ti, in.Def, m.regs[in.A]<<(uint32(in.Imm)&31))
		case ir.OpShrI:
			m.write(ti, in.Def, m.regs[in.A]>>(uint32(in.Imm)&31))
		case ir.OpMulI:
			m.write(ti, in.Def, m.regs[in.A]*uint32(in.Imm))
		case ir.OpNot:
			m.write(ti, in.Def, ^m.regs[in.A])

		case ir.OpLoad, ir.OpLoadA:
			addr := uint32(in.Imm)
			if in.Op == ir.OpLoad {
				addr += m.regs[in.A]
			}
			def := in.Def
			t.stats.CTX++
			t.pc = next
			t.state = tBlocked
			t.readyAt = m.memComplete()
			t.effect = func(mm *machine) {
				// Memory read happens at completion; the value waits in
				// the transfer register until the thread resumes.
				v := mm.mem[(addr/4)%uint32(len(mm.mem))]
				t.resumeWrite = func(mm2 *machine) { mm2.write(ti, def, v) }
			}
			return false, nil
		case ir.OpStore, ir.OpStoreA:
			addr := uint32(in.Imm)
			if in.Op == ir.OpStore {
				addr += m.regs[in.A]
			}
			val := m.regs[in.B]
			t.stats.CTX++
			t.pc = next
			t.state = tBlocked
			t.readyAt = m.memComplete()
			t.effect = func(mm *machine) {
				mm.mem[(addr/4)%uint32(len(mm.mem))] = val
			}
			return false, nil
		case ir.OpCtx:
			t.stats.CTX++
			t.pc = next
			return false, nil // yield, still ready

		case ir.OpBr:
			next = f.Blocks[f.BlockByLabel(in.Target)].Start()
		case ir.OpBZ:
			if m.regs[in.A] == 0 {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBNZ:
			if m.regs[in.A] != 0 {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBEQ:
			if m.regs[in.A] == m.regs[in.B] {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBNE:
			if m.regs[in.A] != m.regs[in.B] {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBLT:
			if int32(m.regs[in.A]) < int32(m.regs[in.B]) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBGE:
			if int32(m.regs[in.A]) >= int32(m.regs[in.B]) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}

		case ir.OpIter:
			t.stats.Iters++
			t.stats.LastIterAt = m.cycle
			if m.cfg.StopIters > 0 && t.stats.Iters >= m.cfg.StopIters {
				// Simulation stop marker reached: yield so Run can check
				// whether every thread is done measuring.
				t.pc = next
				return false, nil
			}
		case ir.OpNop:
		case ir.OpHalt:
			t.state = tDone
			t.stats.Halted = true
			return false, nil
		default:
			return false, fmt.Errorf("sim: thread %d: invalid opcode %v at point %d", ti, in.Op, t.pc)
		}
		t.pc = next
	}
	return true, nil
}

// memComplete returns the completion cycle of a memory operation issued
// now, honoring the shared channel's occupancy when contention modeling
// is on, and reserves the channel slot.
func (m *machine) memComplete() int64 {
	if m.cfg.MemOccupancy <= 0 {
		return m.cycle + m.cfg.MemLatency
	}
	start := m.cycle
	if *m.memFree > start {
		start = *m.memFree
	}
	*m.memFree = start + m.cfg.MemOccupancy
	return start + m.cfg.MemLatency
}

// write performs a register write for thread ti, enforcing every other
// thread's protected range. The check is the dynamic counterpart of
// core.Allocation.Verify: compiler bugs surface here as hard errors
// instead of silent data corruption.
func (m *machine) write(ti int, r ir.Reg, v uint32) {
	ri := int(r)
	for oi, other := range m.threads {
		if oi == ti {
			continue
		}
		if ri >= other.prog.ProtectLo && ri < other.prog.ProtectHi {
			if m.err == nil {
				m.err = fmt.Errorf(
					"sim: thread %d wrote r%d inside thread %d's private range [%d,%d)",
					ti, ri, oi, other.prog.ProtectLo, other.prog.ProtectHi)
			}
			return
		}
	}
	m.regs[ri] = v
}
