package interp

import (
	"testing"

	"npra/internal/ir"
)

func run(t *testing.T, src string, memWords int) *Result {
	t.Helper()
	f := ir.MustParse(src)
	res, err := Run(f, make([]uint32, memWords), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
a:
	set v0, 6
	set v1, 7
	mul v2, v0, v1     ; 42
	addi v2, v2, 100   ; 142
	subi v2, v2, 2     ; 140
	shli v3, v2, 2     ; 560
	shri v3, v3, 1     ; 280
	xor v4, v2, v3     ; 140^280
	and v5, v2, v3
	or  v6, v2, v3
	not v7, v0         ; ^6
	store [0], v2
	store [4], v3
	store [8], v4
	store [12], v5
	store [16], v6
	store [20], v7
	halt`, 8)
	want := []uint32{140, 280, 140 ^ 280, 140 & 280, 140 | 280, ^uint32(6)}
	for i, w := range want {
		if res.Mem[i] != w {
			t.Errorf("mem[%d] = %d, want %d", i*4, res.Mem[i], w)
		}
	}
	if !res.Halted {
		t.Errorf("not halted")
	}
}

func TestLoopAndIter(t *testing.T) {
	res := run(t, `
a:
	set v0, 0
	set v1, 5
loop:
	add v0, v0, v1
	iter
	subi v1, v1, 1
	bnz v1, loop
	store [0], v0
	halt`, 4)
	if res.Mem[0] != 15 {
		t.Errorf("sum = %d, want 15", res.Mem[0])
	}
	if res.Iters != 5 {
		t.Errorf("iters = %d, want 5", res.Iters)
	}
}

func TestLoadStoreAddressing(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 8
	set v1, 77
	store [v0+4], v1   ; mem word 3
	load v2, [v0-4]    ; mem word 1
	addi v2, v2, 1
	store [0], v2
	halt`)
	mem := make([]uint32, 8)
	mem[1] = 41
	res, err := Run(f, mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mem[3] != 77 {
		t.Errorf("mem[3] = %d, want 77", mem[3])
	}
	if mem[0] != 42 {
		t.Errorf("mem[0] = %d, want 42", mem[0])
	}
	_ = res
}

func TestSignedBranches(t *testing.T) {
	res := run(t, `
a:
	set v0, -1       ; 0xFFFFFFFF
	set v1, 1
	blt v0, v1, neg
	store [0], v1
	halt
neg:
	set v2, 123
	store [0], v2
	halt`, 2)
	if res.Mem[0] != 123 {
		t.Errorf("signed blt failed: mem[0] = %d", res.Mem[0])
	}
}

func TestTIDAndBudget(t *testing.T) {
	f := ir.MustParse(`
a:
	tid v0
	store [0], v0
spin:
	br spin`)
	mem := make([]uint32, 2)
	res, err := Run(f, mem, Options{TID: 3, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Errorf("halted on infinite loop")
	}
	if res.Steps != 100 {
		t.Errorf("steps = %d, want 100", res.Steps)
	}
	if mem[0] != 3 {
		t.Errorf("tid = %d, want 3", mem[0])
	}
}

func TestEquivalent(t *testing.T) {
	a := &Result{Mem: []uint32{1, 2}, Iters: 3, Halted: true}
	b := &Result{Mem: []uint32{1, 2}, Iters: 3, Halted: true}
	if err := Equivalent(a, b); err != nil {
		t.Errorf("equal results: %v", err)
	}
	b.Mem[1] = 9
	if err := Equivalent(a, b); err == nil {
		t.Errorf("memory diff not detected")
	}
	b.Mem[1] = 2
	b.Iters = 4
	if err := Equivalent(a, b); err == nil {
		t.Errorf("iteration diff not detected")
	}
}

func TestMemoryWraps(t *testing.T) {
	// Address beyond the memory wraps modulo size rather than faulting.
	res := run(t, `
a:
	set v0, 1000
	set v1, 9
	store [v0+0], v1
	halt`, 4)
	if res.Mem[(1000/4)%4] != 9 {
		t.Errorf("wrapped store missing")
	}
}
