// Fixture for the detlint analyzer: map-iteration order feeding
// order-dependent code, and wall-clock/PRNG use in library code.
package detlint

import (
	"fmt"
	"math/rand" // want `import of "math/rand" in library code: PRNG input breaks`
	"sort"
	"time"
)

func Seed() int64 { return rand.Int63() }

// Stamp reads the wall clock in library code: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in library code: wall-clock input breaks`
}

// StampJustified carries a verified suppression: not flagged.
func StampJustified() int64 {
	return time.Now().UnixNano() //lint:ignore detlint phase-timing observability only, never an allocation input
}

// Keys appends in map order and never sorts: flagged.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to out which is never sorted`
		out = append(out, k)
	}
	return out
}

// SortedKeys is the collect-then-sort idiom: allowed.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump prints in map order: flagged.
func Dump(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds order-dependent code`
		fmt.Println(k, v)
	}
}

// Sum accumulates commutatively: allowed.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		if v > 0 {
			total += v
		}
	}
	return total
}

// Invert writes only through map indexes: allowed.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// First selects a "first" element in map order: flagged.
func First(m map[string]int) string {
	for k := range m { // want `map iteration order feeds order-dependent code`
		return k
	}
	return ""
}
