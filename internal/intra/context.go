// Package intra implements the paper's intra-thread register allocator
// (§7): given a private-register budget PR and a shared budget SR, color
// every live range so that values live across context switches use only
// the first PR "private-capable" colors, splitting live ranges with move
// instructions when the budgets are below the move-free requirement
// (Reduce-PR and Reduce-SR invocations, Figure 10).
//
// Live ranges are represented as *pieces*: disjoint sets of program
// points, one color per piece. Splitting a live range partitions its
// points across several pieces; the rewriter later materializes a move on
// every CFG edge where a variable changes piece color. This makes
// correctness structural — any proper piece coloring yields correct code —
// while the allocator's job is purely to minimize the number of such
// color changes (the paper's move-minimization objective).
package intra

import (
	"npra/internal/bitset"
	"npra/internal/core/errs"
	"npra/internal/ig"
)

// Piece is one fragment of a live range: a subset of the variable's live
// points, held in a single color (register) throughout.
type Piece struct {
	Var    int
	Color  int
	Points bitset.Set
}

// Context is one allocation state: a full piece partition of every live
// range plus the palette it is colored with. Colors [0, Cap) may be used
// by pieces that cross context-switch boundaries ("private-capable");
// colors [0, Size) by anything.
//
// Alongside the piece list the context maintains two derived structures
// that make the hot recoloring queries word-level instead of
// closure-per-point: occ, a per-point color-occupancy bitmap (bit c of
// point p's row is set iff a piece covering p holds color c — well
// defined because a proper coloring admits at most one such piece), and
// byColor, the piece indices holding each color. Both are kept
// incrementally by every mutation; rebuildPieceIndex restores them from
// the piece list after wholesale restructuring.
type Context struct {
	A    *ig.Analysis
	Cap  int // boundary palette size (≥ colors used by crossing pieces)
	Size int // total palette size

	Pieces []*Piece

	np      int
	occW    int      // words per occupancy row (fixed at chain root)
	pieceOf []int32  // [var*np+point] -> piece index, -1 when not live
	occ     []uint64 // np rows of occW words: color-occupancy per point
	byColor [][]int32
	cost    int     // cached MoveCost; -1 when dirty
	weights []int64 // optional per-point loop weights (nil = static count)

	// Incremental move-cost state. MoveCost is additive per variable
	// (each CFG edge contribution involves exactly one variable), so a
	// mutation needs only the touched variables re-priced against a
	// snapshot: cost = baseCost - oldSum + Σ varCost(dirty). touchVar
	// must run BEFORE the first mutation of a variable's coloring so
	// that oldSum captures the snapshot-time contribution.
	baseCost int        // total cost at snapshot time; -1 = no snapshot
	dirty    []int32    // variables touched since the snapshot
	dirtyIn  bitset.Set // membership set for dirty
	oldSum   int        // Σ snapshot-time varCost over dirty
	noIncr   bool       // force full-walk costing (differential oracle)

	// Reusable scratch for the recoloring kernels (single-threaded use).
	ptsScratch  []int // recolorPiece: point list of the piece
	asgScratch  []int // recolorPiece: per-point color assignment
	victScratch []int // victimsOf: piece indices holding a color
	freeScratch []uint64
	accScratch  []uint64
	freqScratch []int
	idxScratch  []int32
	offScratch  []int32
}

// newContext builds the unsplit context from an estimation coloring:
// one piece per live variable. weights, when non-nil, makes MoveCost a
// loop-depth-weighted estimate of the *dynamic* move count.
func newContext(a *ig.Analysis, colors []int, cap, size int, weights []int64) *Context {
	np := a.F.NumPoints()
	occW := (size + 63) / 64
	if occW == 0 {
		occW = 1
	}
	ctx := &Context{
		A: a, Cap: cap, Size: size, np: np, occW: occW,
		cost: -1, baseCost: -1, weights: weights,
	}
	ctx.pieceOf = make([]int32, a.NumVars*np)
	for i := range ctx.pieceOf {
		ctx.pieceOf[i] = -1
	}
	ctx.occ = make([]uint64, np*occW)
	ctx.byColor = make([][]int32, size)
	ctx.dirtyIn = bitset.New(a.NumVars)
	for v := 0; v < a.NumVars; v++ {
		if !a.Alive[v] {
			continue
		}
		ctx.addPiece(&Piece{Var: v, Color: colors[v], Points: a.Points[v].Clone()})
	}
	return ctx
}

func (ctx *Context) addPiece(p *Piece) int {
	idx := len(ctx.Pieces)
	ctx.Pieces = append(ctx.Pieces, p)
	base := p.Var * ctx.np
	for pt := p.Points.NextSet(0); pt >= 0; pt = p.Points.NextSet(pt + 1) {
		ctx.pieceOf[base+pt] = int32(idx)
		ctx.occSet(pt, p.Color)
	}
	ctx.byColor[p.Color] = append(ctx.byColor[p.Color], int32(idx))
	ctx.cost = -1
	return idx
}

// occRow returns point p's color-occupancy row.
func (ctx *Context) occRow(p int) []uint64 { return ctx.occ[p*ctx.occW : (p+1)*ctx.occW] }

func (ctx *Context) occSet(p, c int)   { ctx.occ[p*ctx.occW+(c>>6)] |= 1 << (uint(c) & 63) }
func (ctx *Context) occClear(p, c int) { ctx.occ[p*ctx.occW+(c>>6)] &^= 1 << (uint(c) & 63) }

// wordMask returns the mask of colors [0, limit) that fall into word j of
// an occupancy row.
func wordMask(j, limit int) uint64 {
	base := j * 64
	switch {
	case limit >= base+64:
		return ^uint64(0)
	case limit <= base:
		return 0
	default:
		return 1<<uint(limit-base) - 1
	}
}

// attach records piece i (with its current color) in occ and byColor.
func (ctx *Context) attach(i int) {
	x := ctx.Pieces[i]
	for p := x.Points.NextSet(0); p >= 0; p = x.Points.NextSet(p + 1) {
		ctx.occSet(p, x.Color)
	}
	ctx.byColor[x.Color] = append(ctx.byColor[x.Color], int32(i))
}

// detach removes piece i from occ and byColor (pieceOf stays: the piece
// still owns its points, it is just invisible to occupancy queries while
// being recolored).
func (ctx *Context) detach(i int) {
	x := ctx.Pieces[i]
	for p := x.Points.NextSet(0); p >= 0; p = x.Points.NextSet(p + 1) {
		ctx.occClear(p, x.Color)
	}
	ctx.byColorRemove(x.Color, int32(i))
}

func (ctx *Context) byColorRemove(c int, i int32) {
	lst := ctx.byColor[c]
	for k, v := range lst {
		if v == i {
			lst[k] = lst[len(lst)-1]
			ctx.byColor[c] = lst[:len(lst)-1]
			return
		}
	}
	panic("intra: piece missing from byColor") //lint:invariant byColor index corruption: every attached piece is registered under its color; reaching here means the occupancy indexes disagree with piece state
}

// recolorWhole moves attached piece i to newCol, maintaining occ/byColor.
func (ctx *Context) recolorWhole(i, newCol int) {
	x := ctx.Pieces[i]
	old := x.Color
	if old == newCol {
		return
	}
	for p := x.Points.NextSet(0); p >= 0; p = x.Points.NextSet(p + 1) {
		ctx.occClear(p, old)
		ctx.occSet(p, newCol)
	}
	ctx.byColorRemove(old, int32(i))
	ctx.byColor[newCol] = append(ctx.byColor[newCol], int32(i))
	x.Color = newCol
}

// PieceAt returns the index of v's piece covering point p, or -1.
func (ctx *Context) PieceAt(v, p int) int { return int(ctx.pieceOf[v*ctx.np+p]) }

// ColorAt returns the palette color holding v at point p, or -1.
func (ctx *Context) ColorAt(v, p int) int {
	i := ctx.PieceAt(v, p)
	if i < 0 {
		return -1
	}
	return ctx.Pieces[i].Color
}

// Clone deep-copies the context (weights are shared; they are immutable).
func (ctx *Context) Clone() *Context {
	c := &Context{}
	c.copyFrom(ctx)
	return c
}

// copyFrom overwrites dst with a deep copy of src, reusing dst's existing
// storage (piece structs, point sets, index arrays, occupancy rows) where
// capacities allow. The allocator's bestStep cycles trial contexts
// through a scratch pool with copyFrom instead of allocating a fresh
// Clone per candidate color.
func (dst *Context) copyFrom(src *Context) {
	dst.A, dst.Cap, dst.Size = src.A, src.Cap, src.Size
	dst.np, dst.occW = src.np, src.occW
	dst.cost, dst.weights, dst.noIncr = src.cost, src.weights, src.noIncr
	dst.baseCost, dst.oldSum = src.baseCost, src.oldSum

	n := len(src.Pieces)
	full := dst.Pieces[:cap(dst.Pieces)]
	if len(full) < n {
		nf := make([]*Piece, n)
		copy(nf, full)
		full = nf
	}
	for i := 0; i < n; i++ {
		sp := src.Pieces[i]
		dp := full[i]
		if dp == nil || len(dp.Points) != len(sp.Points) {
			dp = &Piece{Points: sp.Points.Clone()}
			full[i] = dp
		} else {
			dp.Points.Copy(sp.Points)
		}
		dp.Var, dp.Color = sp.Var, sp.Color
	}
	dst.Pieces = full[:n]

	if cap(dst.pieceOf) < len(src.pieceOf) {
		dst.pieceOf = make([]int32, len(src.pieceOf))
	}
	dst.pieceOf = dst.pieceOf[:len(src.pieceOf)]
	copy(dst.pieceOf, src.pieceOf)

	if cap(dst.occ) < len(src.occ) {
		dst.occ = make([]uint64, len(src.occ))
	}
	dst.occ = dst.occ[:len(src.occ)]
	copy(dst.occ, src.occ)

	fullB := dst.byColor[:cap(dst.byColor)]
	if len(fullB) < len(src.byColor) {
		nb := make([][]int32, len(src.byColor))
		copy(nb, fullB)
		fullB = nb
	}
	dst.byColor = fullB[:len(src.byColor)]
	for c := range dst.byColor {
		dst.byColor[c] = append(dst.byColor[c][:0], src.byColor[c]...)
	}

	dst.dirty = append(dst.dirty[:0], src.dirty...)
	if len(dst.dirtyIn) != len(src.dirtyIn) {
		dst.dirtyIn = make(bitset.Set, len(src.dirtyIn))
	}
	copy(dst.dirtyIn, src.dirtyIn)
}

// crossingPoints returns the CSB points piece x is live across.
func (ctx *Context) crossingPoints(x *Piece) bitset.Set {
	cr := ctx.A.Crossings[x.Var]
	if cr == nil {
		return nil
	}
	s := cr.Clone()
	s.And(x.Points)
	return s
}

// crosses reports whether piece x is live across any CSB.
func (ctx *Context) crosses(x *Piece) bool {
	cr := ctx.A.Crossings[x.Var]
	return cr != nil && cr.Intersects(x.Points)
}

// touchVar marks variable v's coloring as about to change. It must run
// BEFORE the mutation: the snapshot contribution oldSum is priced from
// the current (pre-mutation) assignment. Color-preserving restructurings
// (piece merges within one color, palette relabelings) need no touch.
func (ctx *Context) touchVar(v int) {
	ctx.cost = -1
	if ctx.noIncr || ctx.baseCost < 0 {
		return
	}
	if ctx.dirtyIn.Has(v) {
		return
	}
	ctx.dirtyIn.Add(v)
	ctx.dirty = append(ctx.dirty, int32(v))
	ctx.oldSum += ctx.varCost(v)
}

// varCost prices variable v's contribution to MoveCost: its flow edges
// (ig.Analysis.VarEdges) whose endpoints sit in differently-colored
// pieces. Both endpoints always have pieces: v is live-out of p and
// live-in to q, hence covered at both points.
func (ctx *Context) varCost(v int) int {
	edges := ctx.A.VarEdges[v]
	base := v * ctx.np
	total := 0
	if ctx.weights == nil {
		for k := 0; k < len(edges); k += 2 {
			xs, xd := ctx.pieceOf[base+int(edges[k])], ctx.pieceOf[base+int(edges[k+1])]
			if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
				total++
			}
		}
		return total
	}
	for k := 0; k < len(edges); k += 2 {
		p, q := int(edges[k]), int(edges[k+1])
		xs, xd := ctx.pieceOf[base+p], ctx.pieceOf[base+q]
		if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
			total += ctx.edgeWeight(p, q)
		}
	}
	return total
}

// MoveCost counts the moves the rewriter will emit: CFG edges (p -> q)
// along which some variable is live in differently-colored pieces at the
// two ends. This is the paper's objective function. With weights set, each
// edge contributes min(w(p), w(q)) instead of 1, approximating the
// dynamic execution count by loop depth.
//
// The value is maintained incrementally: against the last computed
// snapshot only the variables touched since then are re-priced. A context
// without a snapshot (or with incremental costing disabled) pays a full
// per-variable walk.
func (ctx *Context) MoveCost() int {
	if ctx.cost >= 0 {
		return ctx.cost
	}
	var total int
	switch {
	case ctx.noIncr:
		total = ctx.moveCostFull()
	case ctx.baseCost >= 0:
		total = ctx.baseCost - ctx.oldSum
		for _, v := range ctx.dirty {
			total += ctx.varCost(int(v))
		}
	default:
		for v := 0; v < ctx.A.NumVars; v++ {
			if ctx.A.Alive[v] {
				total += ctx.varCost(v)
			}
		}
	}
	ctx.cost = total
	ctx.baseCost = total
	for _, v := range ctx.dirty {
		ctx.dirtyIn.Remove(int(v))
	}
	ctx.dirty = ctx.dirty[:0]
	ctx.oldSum = 0
	return total
}

// moveCostFull is the from-scratch edge walk, kept as an independent
// implementation of the objective: the incremental path never feeds it,
// so differential tests can pit one against the other.
func (ctx *Context) moveCostFull() int {
	a := ctx.A
	total := 0
	var succs []int
	for p := 0; p < ctx.np; p++ {
		succs = a.F.PointSuccs(p, succs[:0])
		for _, q := range succs {
			a.Live.Out[p].ForEach(func(v int) {
				if !a.Live.In[q].Has(v) {
					return
				}
				xs, xd := ctx.PieceAt(v, p), ctx.PieceAt(v, q)
				if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
					total += ctx.edgeWeight(p, q)
				}
			})
		}
	}
	return total
}

func (ctx *Context) edgeWeight(p, q int) int {
	if ctx.weights == nil {
		return 1
	}
	w := ctx.weights[p]
	if wq := ctx.weights[q]; wq < w {
		w = wq
	}
	return int(w)
}

// MoveCount always returns the static number of moves, regardless of the
// weighting mode.
func (ctx *Context) MoveCount() int {
	a := ctx.A
	total := 0
	var succs []int
	for p := 0; p < ctx.np; p++ {
		succs = a.F.PointSuccs(p, succs[:0])
		for _, q := range succs {
			a.Live.Out[p].ForEach(func(v int) {
				if !a.Live.In[q].Has(v) {
					return
				}
				xs, xd := ctx.PieceAt(v, p), ctx.PieceAt(v, q)
				if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
					total++
				}
			})
		}
	}
	return total
}

// WeightedMoveCost evaluates the split schedule under explicit per-point
// weights (for comparing allocators built with different objectives).
func (ctx *Context) WeightedMoveCost(weights []int64) int64 {
	a := ctx.A
	var total int64
	var succs []int
	for p := 0; p < ctx.np; p++ {
		succs = a.F.PointSuccs(p, succs[:0])
		for _, q := range succs {
			a.Live.Out[p].ForEach(func(v int) {
				if !a.Live.In[q].Has(v) {
					return
				}
				xs, xd := ctx.PieceAt(v, p), ctx.PieceAt(v, q)
				if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
					w := weights[p]
					if wq := weights[q]; wq < w {
						w = wq
					}
					total += w
				}
			})
		}
	}
	return total
}

// Validate checks every structural invariant of the context; tests and
// the inter-thread allocator use it as a safety net. It deliberately
// reads only the ground-truth representation (Pieces + pieceOf), never
// the derived occ/byColor structures, so it stays meaningful on contexts
// whose pieces were mutated directly.
func (ctx *Context) Validate() error {
	a := ctx.A
	// Partition: each live point of each var covered by exactly one piece.
	covered := make([]bitset.Set, a.NumVars)
	for i, x := range ctx.Pieces {
		if x.Color < 0 || x.Color >= ctx.Size {
			return errs.Internalf("intra: piece %d (v%d) color %d outside palette [0,%d)", i, x.Var, x.Color, ctx.Size)
		}
		if ctx.crosses(x) && x.Color >= ctx.Cap {
			return errs.Internalf("intra: crossing piece %d (v%d) colored %d >= cap %d", i, x.Var, x.Color, ctx.Cap)
		}
		if covered[x.Var] == nil {
			covered[x.Var] = bitset.New(ctx.np)
		}
		if covered[x.Var].Intersects(x.Points) {
			return errs.Internalf("intra: pieces of v%d overlap", x.Var)
		}
		covered[x.Var].Or(x.Points)
	}
	for v := 0; v < a.NumVars; v++ {
		if !a.Alive[v] {
			if covered[v] != nil && !covered[v].Empty() {
				return errs.Internalf("intra: dead v%d has pieces", v)
			}
			continue
		}
		if covered[v] == nil || !covered[v].Equal(a.Points[v]) {
			return errs.Internalf("intra: pieces of v%d do not cover its live range", v)
		}
	}
	// Proper coloring at every point.
	seen := make([]int, ctx.Size)
	for i := range seen {
		seen[i] = -1
	}
	for p := 0; p < ctx.np; p++ {
		conflict := -1
		a.Live.At[p].ForEach(func(v int) {
			c := ctx.ColorAt(v, p)
			if seen[c] == p {
				conflict = v
			}
			seen[c] = p
		})
		if conflict >= 0 {
			return errs.Internalf("intra: color collision at point %d involving v%d", p, conflict)
		}
		// reset marker trick: seen[c]==p marks use at this point
	}
	return nil
}

// colorsFreeAt fills free with true for palette colors not used by any
// co-live piece at point p, excluding variable self. It reads the
// ground-truth representation only (the hot paths use occ rows instead).
func (ctx *Context) colorsFreeAt(p int, self int, free []bool) {
	for i := 0; i < ctx.Size; i++ {
		free[i] = true
	}
	ctx.A.Live.At[p].ForEach(func(v int) {
		if v == self {
			return
		}
		if c := ctx.ColorAt(v, p); c >= 0 {
			free[c] = false
		}
	})
}

// rebuildPieceIndex regenerates pieceOf, occ and byColor after pieces
// were removed/merged. Re-indexing changes no colors, so the cached cost
// and incremental snapshot stay valid.
func (ctx *Context) rebuildPieceIndex() {
	for i := range ctx.pieceOf {
		ctx.pieceOf[i] = -1
	}
	for i := range ctx.occ {
		ctx.occ[i] = 0
	}
	for c := range ctx.byColor {
		ctx.byColor[c] = ctx.byColor[c][:0]
	}
	for i, x := range ctx.Pieces {
		base := x.Var * ctx.np
		for pt := x.Points.NextSet(0); pt >= 0; pt = x.Points.NextSet(pt + 1) {
			ctx.pieceOf[base+pt] = int32(i)
			ctx.occSet(pt, x.Color)
		}
		ctx.byColor[x.Color] = append(ctx.byColor[x.Color], int32(i))
	}
}
