package funccache

// Cached-vs-direct differential for the rewrite tier: an allocation
// whose rewrite phase is served from a RewriteCache (by pointer or by
// relocation) must be bit-identical to one whose rewriter ran directly
// — grants, costs, textual rewrites and interpreter behavior. Serially
// over 100 seeded mix requests for ARA, over the SRA sweep, and
// concurrently (for -race) with duplicate kernels interleaved across
// goroutines. The mutation canary pins the safety side: every cached
// body is frozen, and a frozen body refuses Build and RenumberRegs.

import (
	"sync"
	"testing"

	"npra/internal/core"
	"npra/internal/intra"
	"npra/internal/ir"
)

// TestRewriteCachedDifferentialARA drives 100 mix requests through a
// shared rewrite cache and checks every one against a direct run (no
// cache) of the same request.
func TestRewriteCachedDifferentialARA(t *testing.T) {
	rc := NewRewriteCache(RewriteConfig{})
	for i := int64(0); i < 100; i++ {
		funcs := mixFuncs(i, 8)
		direct, directErr := core.AllocateARA(funcs, core.Config{NReg: 32})
		cached, cachedErr := core.AllocateARA(funcs, core.Config{NReg: 32, RewriteCache: rc})
		if (directErr == nil) != (cachedErr == nil) {
			t.Fatalf("request %d: direct err %v vs cached err %v", i, directErr, cachedErr)
		}
		if directErr != nil {
			continue
		}
		if err := diffAllocs(direct, cached); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		for ti, th := range cached.Threads {
			if !th.F.Frozen() {
				t.Fatalf("request %d thread %d: cache-managed body is not frozen", i, ti)
			}
		}
	}
	st := rc.Stats()
	if st.Hits+st.RelocHits == 0 {
		t.Errorf("stats = %+v: the cached runs never hit the rewrite cache, differential proved nothing", st)
	}
}

// TestRewriteCachedDifferentialSRA covers the homogeneous-threads entry
// point: the symmetric sweep's winner rewrites through the same cache.
func TestRewriteCachedDifferentialSRA(t *testing.T) {
	rc := NewRewriteCache(RewriteConfig{})
	for i := int64(0); i < 12; i++ {
		funcs := mixFuncs(3*i, 8) // single-thread compositions pick the kernel
		f := funcs[0]
		nthd := 2 + int(i)%3
		direct, directErr := core.AllocateSRA(f, nthd, core.Config{NReg: 32})
		cached, cachedErr := core.AllocateSRA(f, nthd, core.Config{NReg: 32, RewriteCache: rc})
		if (directErr == nil) != (cachedErr == nil) {
			t.Fatalf("request %d: direct err %v vs cached err %v", i, directErr, cachedErr)
		}
		if directErr != nil {
			continue
		}
		if err := diffAllocs(direct, cached); err != nil {
			t.Fatalf("request %d (nthd %d): %v", i, nthd, err)
		}
	}
}

// TestRewriteCachedDifferentialConcurrent interleaves duplicate kernels
// across goroutines against the production wiring — one function cache
// feeding one rewrite cache via the shared FuncKey memo — with a tight
// entry bound so relocation, insertion and eviction race. The -race
// regression for frozen pointer sharing.
func TestRewriteCachedDifferentialConcurrent(t *testing.T) {
	cache := New(Config{Entries: 6, MaxIdle: 2})
	rc := NewRewriteCache(RewriteConfig{Entries: 8, KeyFn: cache.FuncKey})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 15; i++ {
				req := (int64(w) + i) % 20
				funcs := mixFuncs(req, 4)
				direct, directErr := core.AllocateARA(funcs, core.Config{NReg: 32, Workers: 2})
				cached, cachedErr := core.AllocateARA(funcs, core.Config{NReg: 32, Workers: 2, FuncCache: cache, RewriteCache: rc})
				if (directErr == nil) != (cachedErr == nil) {
					t.Errorf("worker %d request %d: direct err %v vs cached err %v", w, req, directErr, cachedErr)
					return
				}
				if directErr != nil {
					continue
				}
				if err := diffAllocs(direct, cached); err != nil {
					t.Errorf("worker %d request %d: %v", w, req, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := rc.Stats(); st.Entries > 8 {
		t.Errorf("Entries = %d exceeds the bound", st.Entries)
	}
}

// TestRewriteCacheExactHitSharesPointer pins the tier's cheap path: the
// identical request served twice returns the same *ir.Func values, by
// pointer, with no fresh rewriting.
func TestRewriteCacheExactHitSharesPointer(t *testing.T) {
	rc := NewRewriteCache(RewriteConfig{})
	funcs := mixFuncs(7, 8)
	first, err := core.AllocateARA(funcs, core.Config{NReg: 32, RewriteCache: rc})
	if err != nil {
		t.Fatal(err)
	}
	misses := rc.Stats().Misses
	second, err := core.AllocateARA(funcs, core.Config{NReg: 32, RewriteCache: rc})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Threads {
		if first.Threads[i].F != second.Threads[i].F {
			t.Errorf("thread %d: repeat allocation did not share the cached body pointer", i)
		}
	}
	st := rc.Stats()
	if st.Misses != misses {
		t.Errorf("repeat allocation missed the cache: %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("repeat allocation recorded no exact hits: %+v", st)
	}
}

// smallBuiltFunc emits a three-register straight-line function through
// the builder (so it arrives built, like a rewriter product).
func smallBuiltFunc(t *testing.T) *ir.Func {
	t.Helper()
	bu := ir.NewBuilder("rwunit")
	bu.Label("entry")
	a := bu.Set(1)
	b := bu.Set(2)
	bu.Op3(ir.OpAdd, a, b)
	bu.Halt()
	return bu.MustFinish()
}

// TestRewriteCacheUnit exercises the tier directly: identity palettes
// come back as the canonical pointer, foreign palettes relocate with
// remapped registers, repeats are exact hits, and the entry bound
// evicts.
func TestRewriteCacheUnit(t *testing.T) {
	f := smallBuiltFunc(t)
	canonical := smallBuiltFunc(t)
	rc := NewRewriteCache(RewriteConfig{Entries: 4})

	// pr=2: colors 0,1 private at base 0, color 2 shared at base 2 — the
	// identity palette, so StoreRewrite returns the canonical itself.
	body := rc.StoreRewrite(f, 2, 1, 0, 2, canonical, intra.RewriteStats{})
	if body != canonical {
		t.Fatal("identity palette did not return the canonical body")
	}
	if !canonical.Frozen() {
		t.Fatal("stored canonical is not frozen")
	}

	// An identity-palette lookup serves the canonical pointer itself (a
	// relocation hit whose relocation is free — no exact entry needed).
	hit, _, ok := rc.LookupRewrite(f, 2, 1, 0, 2)
	if !ok || hit != canonical {
		t.Fatalf("identity lookup: ok=%v, pointer match=%v", ok, hit == canonical)
	}

	// A foreign palette relocates: private base 10, shared base 20.
	reloc, _, ok := rc.LookupRewrite(f, 2, 1, 10, 20)
	if !ok {
		t.Fatal("canonical present but relocation lookup missed")
	}
	if reloc == canonical {
		t.Fatal("foreign palette returned the canonical body unrelocated")
	}
	if !reloc.Frozen() {
		t.Fatal("relocated body is not frozen")
	}
	if want := 21; reloc.NumRegs != want {
		t.Errorf("relocated NumRegs = %d, want %d", reloc.NumRegs, want)
	}
	again, _, ok := rc.LookupRewrite(f, 2, 1, 10, 20)
	if !ok || again != reloc {
		t.Errorf("repeat foreign lookup: ok=%v, pointer match=%v (want exact hit)", ok, again == reloc)
	}

	st := rc.Stats()
	if st.Hits != 1 || st.RelocHits != 2 || st.Entries != 2 || st.Bytes <= 0 {
		t.Errorf("stats = %+v, want 1 exact hit, 2 reloc hits, 2 entries, positive bytes", st)
	}

	// An unseen tuple misses.
	if _, _, ok := rc.LookupRewrite(f, 1, 2, 0, 1); ok {
		t.Error("unseen (pr, sr) tuple hit the cache")
	}

	// A bound of one entry evicts the older body.
	tight := NewRewriteCache(RewriteConfig{Entries: 1})
	tight.StoreRewrite(f, 2, 1, 0, 2, smallBuiltFunc(t), intra.RewriteStats{})
	tight.StoreRewrite(f, 1, 2, 0, 1, smallBuiltFunc(t), intra.RewriteStats{})
	st = tight.Stats()
	if st.Entries != 1 || st.Evictions == 0 {
		t.Errorf("tight cache stats = %+v, want 1 entry and evictions", st)
	}
}

// TestFrozenFuncMutationCanary pins the immutability contract on cached
// bodies: Build errors out and RenumberRegs panics instead of silently
// corrupting a body other requests hold by pointer.
func TestFrozenFuncMutationCanary(t *testing.T) {
	f := smallBuiltFunc(t)
	f.Freeze()
	if !f.Frozen() {
		t.Fatal("Freeze did not stick")
	}
	if err := f.Build(); err == nil {
		t.Error("Build on a frozen func succeeded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RenumberRegs on a frozen func did not panic")
			}
		}()
		f.RenumberRegs()
	}()
}
