package masm

import (
	"strings"
	"testing"
	"testing/fstest"

	"npra/internal/interp"
)

const checksumMacroSrc = `
.equ BASE 4096
.equ WORDS 4

.macro addword sum, ptr
	load v9, [ptr+0]
	add sum, sum, v9
	addi ptr, ptr, 4
.endm

.macro checksum sum, ptr, n
@loop:
	addword sum, ptr
	subi n, n, 1
	bnz n, @loop
.endm

func cksum
entry:
	set v0, 0
	set v1, BASE
	set v2, WORDS
	checksum v0, v1, v2
	store [64], v0
	halt
`

func TestAssembleChecksumMacro(t *testing.T) {
	f, err := Assemble(checksumMacroSrc)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]uint32, 2048)
	for i := 0; i < 4; i++ {
		mem[4096/4+i] = uint32(10 * (i + 1))
	}
	res, err := interp.Run(f, mem, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if got := mem[16]; got != 100 {
		t.Errorf("checksum = %d, want 100", got)
	}
}

func TestLocalLabelsUniquePerExpansion(t *testing.T) {
	src := `
.macro twice r
	addi r, r, 1
	bnz r, @skip
	addi r, r, 100
@skip:
.endm

func f
entry:
	set v0, 5
	twice v0
	twice v0
	store [0], v0
	halt
`
	expanded, err := Expand(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expanded, "skip_1:") || !strings.Contains(expanded, "skip_2:") {
		t.Errorf("local labels not uniquified:\n%s", expanded)
	}
	f, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, expanded)
	}
	res, err := interp.Run(f, make([]uint32, 16), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[0] != 7 {
		t.Errorf("result = %d, want 7", res.Mem[0])
	}
}

func TestEquSubstitution(t *testing.T) {
	src := `
.equ LIMIT 3
func f
entry:
	set v0, LIMIT
	store [0], v0
	halt`
	f, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := interp.Run(f, make([]uint32, 4), interp.Options{})
	if res.Mem[0] != 3 {
		t.Errorf("equ value = %d, want 3", res.Mem[0])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unterminated", ".macro m\n addi v0, v0, 1", "unterminated"},
		{"nested def", ".macro a\n.macro b\n.endm\n.endm", "nested .macro"},
		{"stray endm", ".endm", ".endm without"},
		{"bad equ", ".equ X notanumber", "not a number"},
		{"equ arity", ".equ X", ".equ NAME VALUE"},
		{"dup macro", ".macro m\n.endm\n.macro m\n.endm", "duplicate macro"},
		{"macro arity", ".macro m a, b\n add a, a, b\n.endm\nfunc f\ne:\n m v0\n halt", "wants 2 arguments"},
		{"recursive", ".macro m\n m\n.endm\nfunc f\ne:\n m\n halt", "nesting deeper"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("assembled bad source")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestPlainSourcePassesThrough(t *testing.T) {
	src := "func f\nentry:\n set v0, 1\n store [0], v0\n halt\n"
	expanded, err := Expand(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(expanded) != strings.TrimSpace(src) {
		t.Errorf("plain source modified:\n%s", expanded)
	}
}

func TestWordBoundarySubstitution(t *testing.T) {
	// The parameter "n" must not replace the "n" inside "bnz" or "done".
	src := `
.macro dec n
	subi n, n, 1
	bnz n, done
.endm
func f
entry:
	set v3, 2
	dec v3
done:
	store [0], v3
	halt`
	f, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Format(), "bnz v3, done") {
		t.Errorf("substitution damaged mnemonics:\n%s", f.Format())
	}
}

func TestInclude(t *testing.T) {
	fsys := fstest.MapFS{
		"lib/checksum.inc": &fstest.MapFile{Data: []byte(`
.equ MAGIC 77
.macro bump r
	addi r, r, MAGIC
.endm`)},
		"lib/deep.inc": &fstest.MapFile{Data: []byte(`.include "lib/checksum.inc"`)},
	}
	src := `
.include "lib/deep.inc"
func f
entry:
	set v0, 1
	bump v0
	store [0], v0
	halt`
	f, err := AssembleFS(src, fsys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(f, make([]uint32, 4), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[0] != 78 {
		t.Errorf("result = %d, want 78", res.Mem[0])
	}
}

func TestIncludeErrors(t *testing.T) {
	fsys := fstest.MapFS{
		"a.inc": &fstest.MapFile{Data: []byte(`.include "b.inc"`)},
		"b.inc": &fstest.MapFile{Data: []byte(`.include "a.inc"`)},
	}
	if _, err := ExpandFS(`.include "a.inc"`, fsys); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
	if _, err := ExpandFS(`.include "missing.inc"`, fsys); err == nil {
		t.Errorf("missing include accepted")
	}
	if _, err := Expand(`.include "x"`); err == nil || !strings.Contains(err.Error(), "no filesystem") {
		t.Errorf("nil fs include accepted: %v", err)
	}
	if _, err := ExpandFS(".include", fsys); err == nil {
		t.Errorf("empty include path accepted")
	}
}
