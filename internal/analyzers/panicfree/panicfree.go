// Package panicfree enforces the PR-2 panic-freedom contract for
// library code: the allocation pipeline recovers panics at its API
// boundary and degrades, but a panic in a library package is still a
// lost result, so every panic site must be one of:
//
//   - inside a Must* helper, whose documented contract is to panic;
//   - inside internal/faultinject, whose job is to inject panics;
//   - a documented internal-corruption invariant carrying a
//     //lint:invariant justification (verified: non-trivial text,
//     attached to the panic line, consumed by this analyzer).
//
// Everything else must return a typed error wrapping the core taxonomy
// (see the errtaxonomy analyzer).
package panicfree

import (
	"go/ast"
	"go/types"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the panicfree pass.
var Analyzer = &anz.Analyzer{
	Name: "panicfree",
	Doc: "library packages may panic only in Must* helpers, faultinject, or at " +
		"//lint:invariant-documented corruption checks",
	Run: run,
}

func run(pass *anz.Pass) error {
	if strings.HasPrefix(pass.Path, "npra/cmd/") || pass.Path == "npra/internal/faultinject" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if _, ok := pass.Invariant(call.Pos()); ok {
					return true
				}
				pass.Reportf(call.Pos(), "naked panic in library code (func %s): return a typed error wrapping the core taxonomy, move it behind a Must* helper, or document the corruption invariant with //lint:invariant", fd.Name.Name)
				return true
			})
		}
	}
	return nil
}
