package ir

import "fmt"

// Builder constructs functions programmatically. It hands out fresh virtual
// registers and accumulates blocks in order; Finish builds and returns the
// function. Benchmark generators use it to emit large unrolled kernels.
type Builder struct {
	f    *Func
	cur  *Block
	next Reg
	err  error
}

// NewBuilder returns a Builder for a function with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{f: &Func{Name: name}}
}

// Reg allocates a fresh virtual register.
func (bu *Builder) Reg() Reg {
	r := bu.next
	bu.next++
	return r
}

// Label starts a new block with the given label.
func (bu *Builder) Label(label string) {
	bu.cur = &Block{Label: label}
	bu.f.Blocks = append(bu.f.Blocks, bu.cur)
}

// Emit appends a raw instruction to the current block.
func (bu *Builder) Emit(in Instr) {
	if bu.cur == nil {
		bu.Label("entry")
	}
	bu.cur.Instrs = append(bu.cur.Instrs, in)
}

// Set emits rd = imm into a fresh register and returns it.
func (bu *Builder) Set(imm int64) Reg {
	d := bu.Reg()
	bu.Emit(Instr{Op: OpSet, Def: d, A: NoReg, B: NoReg, Imm: imm})
	return d
}

// SetTo emits rd = imm into an existing register.
func (bu *Builder) SetTo(d Reg, imm int64) {
	bu.Emit(Instr{Op: OpSet, Def: d, A: NoReg, B: NoReg, Imm: imm})
}

// Mov emits d = a into a fresh register.
func (bu *Builder) Mov(a Reg) Reg {
	d := bu.Reg()
	bu.Emit(Instr{Op: OpMov, Def: d, A: a, B: NoReg})
	return d
}

// MovTo emits d = a.
func (bu *Builder) MovTo(d, a Reg) {
	bu.Emit(Instr{Op: OpMov, Def: d, A: a, B: NoReg})
}

// TID emits d = thread-id into a fresh register and returns it.
func (bu *Builder) TID() Reg {
	d := bu.Reg()
	bu.Emit(Instr{Op: OpTID, Def: d, A: NoReg, B: NoReg})
	return d
}

// Op3 emits a three-register ALU op into a fresh register.
func (bu *Builder) Op3(op Op, a, b Reg) Reg {
	d := bu.Reg()
	bu.Emit(Instr{Op: op, Def: d, A: a, B: b})
	return d
}

// Op3To emits a three-register ALU op into d.
func (bu *Builder) Op3To(op Op, d, a, b Reg) {
	bu.Emit(Instr{Op: op, Def: d, A: a, B: b})
}

// OpI emits a register-immediate ALU op into a fresh register.
func (bu *Builder) OpI(op Op, a Reg, imm int64) Reg {
	d := bu.Reg()
	bu.Emit(Instr{Op: op, Def: d, A: a, B: NoReg, Imm: imm})
	return d
}

// OpITo emits a register-immediate ALU op into d.
func (bu *Builder) OpITo(op Op, d, a Reg, imm int64) {
	bu.Emit(Instr{Op: op, Def: d, A: a, B: NoReg, Imm: imm})
}

// Load emits d = mem[a+off] into a fresh register.
func (bu *Builder) Load(a Reg, off int64) Reg {
	d := bu.Reg()
	bu.Emit(Instr{Op: OpLoad, Def: d, A: a, B: NoReg, Imm: off})
	return d
}

// LoadTo emits d = mem[a+off].
func (bu *Builder) LoadTo(d, a Reg, off int64) {
	bu.Emit(Instr{Op: OpLoad, Def: d, A: a, B: NoReg, Imm: off})
}

// Store emits mem[a+off] = s.
func (bu *Builder) Store(a Reg, off int64, s Reg) {
	bu.Emit(Instr{Op: OpStore, Def: NoReg, A: a, B: s, Imm: off})
}

// Ctx emits a voluntary context switch.
func (bu *Builder) Ctx() { bu.Emit(Instr{Op: OpCtx, Def: NoReg, A: NoReg, B: NoReg}) }

// Iter emits an iteration marker.
func (bu *Builder) Iter() { bu.Emit(Instr{Op: OpIter, Def: NoReg, A: NoReg, B: NoReg}) }

// Halt emits halt.
func (bu *Builder) Halt() { bu.Emit(Instr{Op: OpHalt, Def: NoReg, A: NoReg, B: NoReg}) }

// Br emits an unconditional branch.
func (bu *Builder) Br(target string) {
	bu.Emit(Instr{Op: OpBr, Def: NoReg, A: NoReg, B: NoReg, Target: target})
}

// BZ emits branch-if-zero.
func (bu *Builder) BZ(a Reg, target string) {
	bu.Emit(Instr{Op: OpBZ, Def: NoReg, A: a, B: NoReg, Target: target})
}

// BNZ emits branch-if-nonzero.
func (bu *Builder) BNZ(a Reg, target string) {
	bu.Emit(Instr{Op: OpBNZ, Def: NoReg, A: a, B: NoReg, Target: target})
}

// BLT emits branch-if-less-than (signed).
func (bu *Builder) BLT(a, b Reg, target string) {
	bu.Emit(Instr{Op: OpBLT, Def: NoReg, A: a, B: b, Target: target})
}

// BGE emits branch-if-greater-or-equal (signed).
func (bu *Builder) BGE(a, b Reg, target string) {
	bu.Emit(Instr{Op: OpBGE, Def: NoReg, A: a, B: b, Target: target})
}

// BNE emits branch-if-not-equal.
func (bu *Builder) BNE(a, b Reg, target string) {
	bu.Emit(Instr{Op: OpBNE, Def: NoReg, A: a, B: b, Target: target})
}

// Finish builds and returns the function.
func (bu *Builder) Finish() (*Func, error) {
	if bu.err != nil {
		return nil, bu.err
	}
	if len(bu.f.Blocks) == 0 {
		return nil, fmt.Errorf("ir: builder: no blocks")
	}
	bu.f.NumRegs = int(bu.next)
	if err := bu.f.Build(); err != nil {
		return nil, err
	}
	return bu.f, nil
}

// MustFinish is Finish that panics on error.
func (bu *Builder) MustFinish() *Func {
	f, err := bu.Finish()
	if err != nil {
		panic(err)
	}
	return f
}
