package core

import (
	"fmt"

	"npra/internal/core/errs"
	"npra/internal/liveness"
)

// Verify statically checks the safety contract of a finished allocation,
// independently of the allocator's internal bookkeeping: it recomputes
// liveness on each thread's *rewritten* code and confirms that
//
//  1. every thread's private register range is disjoint from every other
//     thread's and from the shared bank;
//  2. every register a thread uses lies in its private range or in the
//     shared bank;
//  3. every register live across any context-switch boundary of a thread
//     lies in that thread's private range — the property that makes
//     light-weight (PC-only) context switches safe.
func (al *Allocation) Verify() error {
	if al.SGR < 0 || al.SGR > al.NReg {
		return errs.Internalf("core: SGR %d out of range", al.SGR)
	}
	sharedBase := al.SharedBase()

	// 1. Disjoint partitions.
	owner := make([]int, al.NReg)
	for i := range owner {
		owner[i] = -1
	}
	for ti, t := range al.Threads {
		if t.PrivBase < 0 || t.PrivBase+t.PR > al.NReg {
			return errs.Internalf("core: thread %d private range [%d,%d) outside file", ti, t.PrivBase, t.PrivBase+t.PR)
		}
		for r := t.PrivBase; r < t.PrivBase+t.PR; r++ {
			if r >= sharedBase {
				return errs.Internalf("core: thread %d private register r%d inside shared bank", ti, r)
			}
			if owner[r] >= 0 {
				return errs.Internalf("core: register r%d owned by threads %d and %d", r, owner[r], ti)
			}
			owner[r] = ti
		}
	}

	for ti, t := range al.Threads {
		if t.F == nil {
			return errs.Internalf("core: thread %d has no rewritten code", ti)
		}
		inPriv := func(r int) bool { return r >= t.PrivBase && r < t.PrivBase+t.PR }
		// 2. Register usage confined to private + shared.
		for _, r := range t.F.RegsUsed() {
			if !inPriv(int(r)) && int(r) < sharedBase {
				return errs.Internalf("core: thread %d (%s) uses r%d outside its partition", ti, t.Name, r)
			}
			if int(r) >= al.NReg {
				return errs.Internalf("core: thread %d uses r%d beyond the register file", ti, r)
			}
		}
		// 3. Values live across CSBs stay private; so do values live-in at
		// entry (they observe the zero-initialized file, which only a
		// private register guarantees once other threads have run).
		li := liveness.Compute(t.F)
		badEntry := -1
		li.EntryLive().ForEach(func(r int) {
			if badEntry < 0 && !inPriv(r) {
				badEntry = r
			}
		})
		if badEntry >= 0 {
			return errs.Internalf(
				"core: thread %d (%s): r%d read at entry before definition but not private",
				ti, t.Name, badEntry)
		}
		for p := 0; p < t.F.NumPoints(); p++ {
			if !t.F.Instr(p).IsCSB() {
				continue
			}
			across, err := li.LiveAcross(p)
			if err != nil {
				return fmt.Errorf("core: thread %d (%s): %w", ti, t.Name, err)
			}
			bad := -1
			across.ForEach(func(r int) {
				if bad < 0 && !inPriv(r) {
					bad = r
				}
			})
			if bad >= 0 {
				return errs.Internalf(
					"core: thread %d (%s): r%d live across the context switch at point %d but not private",
					ti, t.Name, bad, p)
			}
		}
	}
	return nil
}
