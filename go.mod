module npra

go 1.22
