package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"npra/internal/estimate"
	"npra/internal/faultinject"
	"npra/internal/ig"
	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

// mustBounds computes a function's splitting bounds for budget sizing.
func mustBounds(t *testing.T, f *ir.Func) estimate.Bounds {
	t.Helper()
	est, err := estimate.Compute(ig.Analyze(f))
	if err != nil {
		t.Fatal(err)
	}
	return est.Bounds
}

// faultGen is the program shape the fault matrix sweeps: small enough
// that 200 seeds x every (site, mode) pair stays fast, CSB-dense enough
// that private registers matter.
var faultGen = progen.Config{MaxBlocks: 4, MaxInstrs: 6, MaxVars: 6, CSBDensity: 0.3, StoreWindow: 64}

// typedError reports whether err wraps exactly the taxonomy: every error
// escaping the core API must satisfy errors.Is for one of the four
// sentinels.
func typedError(err error) bool {
	return errors.Is(err, ErrInvalid) || errors.Is(err, ErrInfeasible) ||
		errors.Is(err, ErrTimeout) || errors.Is(err, ErrInternal)
}

// assertDifferential runs every thread's original and rewritten code
// single-threaded and demands observational equivalence — the check that
// a degraded (or faulted-but-recovered) allocation still computes the
// same thing. Threads that do not halt within the step budget are
// skipped (allocation cannot fix divergence).
func assertDifferential(t *testing.T, funcs []*ir.Func, alloc *Allocation) {
	t.Helper()
	const memWords = 64
	for i, th := range alloc.Threads {
		r1, err := interp.Run(funcs[i], make([]uint32, memWords), interp.Options{MaxSteps: 20000})
		if err != nil || !r1.Halted {
			continue
		}
		r2, err := interp.Run(th.F, make([]uint32, memWords), interp.Options{MaxSteps: 200000})
		if err != nil {
			t.Errorf("thread %d: rewritten code faulted: %v", i, err)
			continue
		}
		if err := interp.Equivalent(r1, r2); err != nil {
			t.Errorf("thread %d: allocation changed semantics: %v\noriginal:\n%s\nrewritten:\n%s",
				i, err, funcs[i].Format(), th.F.Format())
		}
	}
}

// checkOutcome is the fault matrix's single invariant: an AllocateARACtx
// call under injected faults either returns a verified Allocation
// (possibly degraded, in which case it must also be semantics-preserving
// and carry a degradable typed cause) or a typed error. Panics reaching
// the caller fail the surrounding test via the harness itself.
func checkOutcome(t *testing.T, funcs []*ir.Func, alloc *Allocation, err error, label string) {
	t.Helper()
	if err != nil {
		if !typedError(err) {
			t.Errorf("%s: untyped error: %v", label, err)
		}
		return
	}
	if alloc == nil {
		t.Errorf("%s: nil allocation with nil error", label)
		return
	}
	if verr := alloc.Verify(); verr != nil {
		t.Errorf("%s: allocation failed verification: %v", label, verr)
	}
	if alloc.Degraded {
		if alloc.Cause == nil {
			t.Errorf("%s: degraded without a cause", label)
		} else if !errors.Is(alloc.Cause, ErrTimeout) && !errors.Is(alloc.Cause, ErrInternal) {
			t.Errorf("%s: degraded with non-degradable cause: %v", label, alloc.Cause)
		}
		assertDifferential(t, funcs, alloc)
	}
}

// TestFaultMatrixARA is the differential fuzz harness the failure model
// is judged by: >= 200 progen seeds, and for each seed every injection
// site armed in every mode (plus a fault-free baseline). Each run must
// come back as a verified Allocation or a typed error — never a panic,
// never an unverified or semantics-changing result.
func TestFaultMatrixARA(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	const seeds = 200
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		funcs := []*ir.Func{progen.Generate(rng, faultGen), progen.Generate(rng, faultGen)}

		// Budget: the tightest feasible demand, so the greedy loop runs
		// (arming SitePricing needs reduction rounds) yet the instance
		// stays allocatable. The static fallback may still be infeasible
		// at this budget — that exercises the fallback-fails path, which
		// must surface as a typed error.
		faultinject.Reset()
		base, err := AllocateARA(funcs, Config{NReg: tightNReg(t, funcs)})
		if err != nil {
			if !typedError(err) {
				t.Fatalf("seed %d: untyped baseline error: %v", seed, err)
			}
			continue // infeasible instance: nothing to compare against
		}
		if err := base.Verify(); err != nil {
			t.Fatalf("seed %d: baseline failed verification: %v", seed, err)
		}
		nreg := tightNReg(t, funcs)

		for _, site := range faultinject.Sites() {
			for _, mode := range faultinject.Modes() {
				faultinject.Reset()
				faultinject.Arm(site, faultinject.Plan{Mode: mode, Count: 1, Delay: time.Millisecond})
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if mode == faultinject.Delay {
					// Pair delays with a deadline so the run either rides
					// out the sleep or times out into degradation.
					ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
				}
				alloc, err := AllocateARACtx(ctx, funcs, Config{NReg: nreg})
				cancel()
				checkOutcome(t, funcs, alloc, err,
					"seed "+itoa(seed)+" site "+string(site)+" mode "+mode.String())
			}
		}
	}
	faultinject.Reset()
}

// TestFaultCombinedDegradeFails arms a primary-path fault together with
// a fault in the degradation self-check: the fallback itself failing
// must come back as a typed error carrying the original cause — and in
// panic mode must not panic the caller.
func TestFaultCombinedDegradeFails(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	funcs := []*ir.Func{ir.MustParse(fig3t1), ir.MustParse(fig3t2)}
	for _, verifyMode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
		faultinject.Reset()
		faultinject.Arm(faultinject.SiteFinalize, faultinject.Plan{Mode: faultinject.Error})
		faultinject.Arm(faultinject.SiteVerify, faultinject.Plan{Mode: verifyMode})
		alloc, err := AllocateARA(funcs, Config{NReg: 16})
		if err == nil {
			t.Fatalf("verify mode %v: got allocation %+v, want error", verifyMode, alloc)
		}
		if !errors.Is(err, ErrInternal) {
			t.Errorf("verify mode %v: err = %v, want the original ErrInternal cause", verifyMode, err)
		}
		if !errors.Is(err, faultinject.ErrInjected) && verifyMode == faultinject.Error {
			t.Errorf("verify mode %v: err = %v, want injected sentinel in the chain", verifyMode, err)
		}
	}
}

// TestFaultPanicTransportedFromWorker pins the worker-panic path: a
// panic inside the parallel setup fan-out must surface as a *PanicError
// in the (degraded) allocation's cause, stack attached, not as a crash.
func TestFaultPanicTransportedFromWorker(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	funcs := []*ir.Func{ir.MustParse(fig3t1), ir.MustParse(fig3t2)}
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Panic})
	alloc, err := AllocateARA(funcs, Config{NReg: 16, Workers: 4})
	if err != nil {
		t.Fatalf("expected degradation, got error: %v", err)
	}
	if !alloc.Degraded {
		t.Fatal("allocation not degraded after an injected worker panic")
	}
	var pe *PanicError
	if !errors.As(alloc.Cause, &pe) {
		t.Fatalf("cause = %v, want a *PanicError in the chain", alloc.Cause)
	}
	if _, ok := pe.Value.(*faultinject.InjectedPanic); !ok {
		t.Errorf("panic value = %v (%T), want *InjectedPanic", pe.Value, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no worker stack captured")
	}
	if err := alloc.Verify(); err != nil {
		t.Errorf("degraded allocation failed verification: %v", err)
	}
	assertDifferential(t, funcs, alloc)
}

// TestFaultMatrixSRA sweeps the symmetric allocator the same way (fewer
// seeds: the SRA sweep exercises one code body).
func TestFaultMatrixSRA(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, faultGen)
		funcs := []*ir.Func{f, f}
		for _, site := range faultinject.Sites() {
			for _, mode := range faultinject.Modes() {
				faultinject.Reset()
				faultinject.Arm(site, faultinject.Plan{Mode: mode, Count: 1, Delay: time.Millisecond})
				alloc, err := AllocateSRA(f, 2, Config{NReg: 16})
				checkOutcome(t, funcs, alloc, err,
					"seed "+itoa(seed)+" site "+string(site)+" mode "+mode.String())
			}
		}
	}
	faultinject.Reset()
}

// tightNReg returns the smallest register budget the balancing allocator
// can in principle reach for funcs: sum of the splitting PR floors plus
// the largest per-thread remainder. Forces greedy rounds without making
// the instance infeasible.
func tightNReg(t *testing.T, funcs []*ir.Func) int {
	t.Helper()
	sumMinPR, maxRem := 0, 0
	for _, f := range funcs {
		b := mustBounds(t, f)
		sumMinPR += b.MinPR
		if rem := b.MinR - b.MinPR; rem > maxRem {
			maxRem = rem
		}
	}
	if n := sumMinPR + maxRem; n > 0 {
		return n
	}
	return 1
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// FuzzAllocateARA is the native fuzz target: arbitrary seeds, budgets
// and program shapes (including the adversarial generator families,
// with a fault plan derived from the seed) must never panic the caller
// and must keep the verified-or-typed-error contract.
func FuzzAllocateARA(f *testing.F) {
	f.Add(int64(1), 32, uint8(0), uint8(0))
	f.Add(int64(2), 8, uint8(1), uint8(0))
	f.Add(int64(3), 4, uint8(2), uint8(0))
	f.Add(int64(42), 16, uint8(3), uint8(0))
	f.Add(int64(7), 1, uint8(0), uint8(0))
	f.Add(int64(99), 64, uint8(2), uint8(0))
	for i := range progen.Shapes() {
		f.Add(int64(11+i), 16, uint8(i), uint8(1+i))
		f.Add(int64(1000+i), 6, uint8(5), uint8(1+i))
	}
	f.Fuzz(func(t *testing.T, seed int64, nreg int, fault, shape uint8) {
		t.Cleanup(faultinject.Reset)
		if nreg < 0 || nreg > 512 {
			nreg %= 512
		}
		rng := rand.New(rand.NewSource(seed))
		funcs := []*ir.Func{progen.Generate(rng, faultGen), progen.Generate(rng, faultGen)}
		// A non-zero shape byte swaps the first body for an adversarial
		// one, keeping its spec small enough for the 10s smoke budget.
		if shapes := progen.Shapes(); shape != 0 {
			cfg := progen.StructuredConfig{
				MaxDepth: 2, MaxBodyLen: 4, MaxTripCnt: 3, MaxVars: 6,
				CSBDensity: 0.3, StoreWindow: 64,
			}
			adv, err := progen.FromSeedShape(shapes[int(shape-1)%len(shapes)], seed, cfg)
			if err != nil {
				t.Fatalf("shape generator: %v", err)
			}
			funcs[0] = adv
		}

		// Low two bits pick a site (or none), next two the mode.
		sites := faultinject.Sites()
		if s := int(fault & 3); s < len(sites) && fault&0b1100 != 0 {
			mode := faultinject.Modes()[int(fault>>2&3)%len(faultinject.Modes())]
			faultinject.Arm(sites[s], faultinject.Plan{Mode: mode, Count: 1, Delay: time.Microsecond})
		}
		alloc, err := AllocateARA(funcs, Config{NReg: nreg})
		if err != nil {
			if !typedError(err) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if verr := alloc.Verify(); verr != nil {
			t.Fatalf("unverified allocation: %v", verr)
		}
		assertDifferential(t, funcs, alloc)
	})
}
