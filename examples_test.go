package npra_test

import (
	"os/exec"
	"testing"
)

// TestExamplesRun smoke-tests every runnable example end to end via
// `go run` (skipped with -short: each spawns a compile).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	for _, dir := range []string{
		"./examples/quickstart",
		"./examples/pipeline",
		"./examples/critical",
		"./examples/sra",
		"./examples/chip",
		"./examples/toolchain",
	} {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", dir)
			}
		})
	}
}
