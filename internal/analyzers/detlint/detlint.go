// Package detlint enforces the determinism invariant behind the
// allocator's -j1 ≡ -jN guarantee (PR 1): identical inputs must produce
// bit-identical allocations at every worker count, which outlaws the
// two classic sources of run-to-run variation in Go:
//
//  1. iteration over a map whose visit order feeds order-dependent code
//     (appends that are never sorted, I/O, selection of a "first"
//     element, returns), and
//  2. wall-clock or PRNG input to library code: time.Now and math/rand
//     outside internal/bench, internal/experiments, internal/tools and
//     test files.
//
// Map iteration that is provably order-insensitive is allowed: bodies
// that only write through the iteration key (m2[k] = ...), delete from
// a map, or accumulate with commutative operators (+=, |=, &=, ^=, *=,
// ++/--), and loops that collect keys into a slice which is passed to a
// sort call later in the same block. Everything else needs a sorted
// iteration or a justified //lint:ignore detlint directive.
package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the detlint pass.
var Analyzer = &anz.Analyzer{
	Name: "detlint",
	Doc: "flags map iteration feeding order-dependent code, and time.Now/math/rand " +
		"use outside bench/experiments/tools, to keep -j1 and -jN bit-identical",
	Run: run,
}

// clockExempt lists package-path prefixes where wall-clock and PRNG use
// is expected: benchmarking, experiment drivers and offline dev tools.
var clockExempt = []string{
	"npra/internal/bench",
	"npra/internal/experiments",
	"npra/internal/tools",
	"npra/cmd/npbench", // the benchmark driver's whole job is timing
}

func run(pass *anz.Pass) error {
	exemptClock := false
	for _, p := range clockExempt {
		if pass.Path == p || strings.HasPrefix(pass.Path, p+"/") {
			exemptClock = true
		}
	}
	for _, f := range pass.Files {
		if !exemptClock {
			checkClockAndRand(pass, f)
		}
		checkMapRanges(pass, f)
	}
	return nil
}

// checkClockAndRand reports math/rand imports and time.Now call sites.
func checkClockAndRand(pass *anz.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		switch strings.Trim(imp.Path.Value, `"`) {
		case "math/rand", "math/rand/v2":
			pass.Reportf(imp.Pos(), "import of %s in library code: PRNG input breaks the -j1 ≡ -jN determinism invariant", imp.Path.Value)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "time" {
			pass.Reportf(sel.Pos(), "time.Now in library code: wall-clock input breaks the -j1 ≡ -jN determinism invariant")
		}
		return true
	})
}

// checkMapRanges walks every statement list so that a flagged range
// loop can also see its following siblings (for the collect-then-sort
// idiom).
func checkMapRanges(pass *anz.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		for i, st := range list {
			rs, ok := st.(*ast.RangeStmt)
			if !ok || !isMapType(pass, rs.X) {
				continue
			}
			checkOneMapRange(pass, rs, list[i+1:])
		}
		return true
	})
}

func isMapType(pass *anz.Pass, x ast.Expr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkOneMapRange reports the loop unless every statement in its body
// is order-insensitive. Appends are tolerated when the target slice is
// handed to a sort call later among the following sibling statements.
func checkOneMapRange(pass *anz.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	var appendTargets []types.Object
	if ok := orderInsensitive(pass, rs.Body.List, &appendTargets); !ok {
		pass.Reportf(rs.Pos(), "map iteration order feeds order-dependent code; iterate sorted keys, restructure the body, or justify with //lint:ignore detlint")
		return
	}
	for _, target := range appendTargets {
		if !sortedLater(pass, target, following) {
			pass.Reportf(rs.Pos(), "map iteration appends to %s which is never sorted afterwards; sort it or iterate sorted keys", target.Name())
			return
		}
	}
}

// orderInsensitive reports whether every statement in list commutes
// with reordering of loop iterations. Append targets are collected for
// the caller to verify a later sort.
func orderInsensitive(pass *anz.Pass, list []ast.Stmt, appends *[]types.Object) bool {
	for _, st := range list {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if !assignOK(pass, s, appends) {
				return false
			}
		case *ast.IncDecStmt:
			// counters commute
		case *ast.ExprStmt:
			if !isDelete(pass, s.X) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				if as, ok := s.Init.(*ast.AssignStmt); !ok || !assignOK(pass, as, appends) {
					return false
				}
			}
			if !orderInsensitive(pass, s.Body.List, appends) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitive(pass, e.List, appends) {
					return false
				}
			case *ast.IfStmt:
				if !orderInsensitive(pass, []ast.Stmt{e}, appends) {
					return false
				}
			default:
				return false
			}
		case *ast.BlockStmt:
			if !orderInsensitive(pass, s.List, appends) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false // break/goto make the visited subset order-dependent
			}
		case *ast.EmptyStmt, *ast.DeclStmt:
			// harmless
		default:
			return false
		}
	}
	return true
}

// assignOK accepts map-index writes, commutative compound assignments,
// and x = append(x, ...) (recorded for the sorted-later check).
func assignOK(pass *anz.Pass, s *ast.AssignStmt, appends *[]types.Object) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return true
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
					if len(call.Args) > 0 {
						if base, ok := call.Args[0].(*ast.Ident); ok && base.Name == id.Name {
							if obj := pass.Info.ObjectOf(id); obj != nil {
								*appends = append(*appends, obj)
								return true
							}
						}
					}
					return false
				}
			}
		}
		for _, l := range s.Lhs {
			ix, ok := l.(*ast.IndexExpr)
			if !ok || !isMapType(pass, ix.X) {
				return false
			}
		}
		return true
	}
	return false
}

func isDelete(pass *anz.Pass, x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	return ok && isBuiltin(pass, call.Fun, "delete")
}

func isBuiltin(pass *anz.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.Info.Uses[id].(*types.Builtin)
	return isB
}

// sortedLater reports whether one of the following sibling statements
// passes target to a sort call (sort.Strings, sort.Slice, ...).
func sortedLater(pass *anz.Pass, target types.Object, following []ast.Stmt) bool {
	for _, st := range following {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if p, ok := pass.Info.Uses[pn].(*types.PkgName); !ok || (p.Imported().Path() != "sort" && p.Imported().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.Info.ObjectOf(id) == target {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
