package ir

import (
	"fmt"
	"strings"
)

// Format renders the function as parseable npra assembly.
func (f *Func) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].format(f.Physical))
		}
	}
	return sb.String()
}

// String is Format.
func (f *Func) String() string { return f.Format() }
