package spill

import (
	"strings"
	"testing"

	"npra/internal/interp"
	"npra/internal/ir"
)

func TestInsertAndPatch(t *testing.T) {
	f := ir.MustParse(`
func s
a:
	set v0, 5
	set v1, 7
	add v2, v0, v1
	store [0], v2
	halt`)
	noSpill := make(map[ir.Reg]bool)
	slot := 0
	nf, added, err := Insert(f, []int{0}, &slot, noSpill)
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Errorf("slots = %d, want 1", slot)
	}
	// v0: one def (store after) + one use (load before) + 3 prologue.
	if added != 5 {
		t.Errorf("added = %d, want 5\n%s", added, nf.Format())
	}
	if BaseReg(nf) < 0 {
		t.Errorf("no spill prologue")
	}
	if len(noSpill) != 2 {
		t.Errorf("temps registered = %d, want 2", len(noSpill))
	}
	// Second round must reuse the prologue.
	nf2, added2, err := Insert(nf, []int{1}, &slot, noSpill)
	if err != nil {
		t.Fatal(err)
	}
	if added2 != 2 {
		t.Errorf("second round added = %d, want 2 (no new prologue)", added2)
	}
	if strings.Count(nf2.Format(), ".spillpro") != 1 {
		t.Errorf("prologue duplicated:\n%s", nf2.Format())
	}

	// Patch markers and run: semantics preserved (registers renamed to a
	// virtual function that still runs under the interpreter).
	patched := nf2.Clone()
	for _, b := range patched.Blocks {
		for i := range b.Instrs {
			if v, ok := PatchImm(b.Instrs[i].Imm, 256, 64); ok {
				b.Instrs[i].Imm = v
			}
		}
	}
	if err := patched.Build(); err != nil {
		t.Fatal(err)
	}
	m1 := make([]uint32, 256)
	m2 := make([]uint32, 256)
	r1, _ := interp.Run(f, m1, interp.Options{})
	r2, _ := interp.Run(patched, m2, interp.Options{})
	if r1.Halted != r2.Halted || m1[0] != m2[0] {
		t.Errorf("spill rewrite changed the result: %d vs %d", m1[0], m2[0])
	}
}

func TestPatchImm(t *testing.T) {
	if v, ok := PatchImm(baseMarker, 1000, 64); !ok || v != 1000 {
		t.Errorf("base marker -> %d,%v", v, ok)
	}
	if v, ok := PatchImm(strideMarker, 1000, 64); !ok || v != 64 {
		t.Errorf("stride marker -> %d,%v", v, ok)
	}
	if _, ok := PatchImm(42, 1000, 64); ok {
		t.Errorf("ordinary immediate patched")
	}
}
