package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"npra/internal/faultinject"
	"npra/internal/intra"
	"npra/internal/ir"
)

// degrade implements the pipeline's graceful-degradation policy: when
// the balancing allocator times out or trips an internal failure, fall
// back to the paper's baseline — the IXP1200's even static partition
// (PR = NReg/Nthd per thread, SR = 0) — realized through the same intra
// solver and rewriter, so the result is a real, verified allocation.
//
// Infeasible and invalid-argument failures never reach here (the static
// partition could not fix either). The fallback deliberately ignores the
// caller's expired context: it is the bounded, last-resort path, and its
// cost is one analysis plus one Solve per distinct thread body.
//
// On success the returned Allocation has Degraded == true and Cause set
// to the original (typed) failure, and it has already passed Verify. If
// the fallback itself fails, the original error is returned with the
// fallback's error attached.
func degrade(funcs []*ir.Func, cfg Config, cause error) (alloc *Allocation, err error) {
	// The degrade path runs outside runProtected, so it carries its own
	// panic barrier: a panic here (the self-check seam, Verify itself)
	// must surface as the original cause, never reach the caller raw.
	defer func() {
		if r := recover(); r != nil {
			alloc, err = nil, fmt.Errorf("%w (static-partition fallback panicked: %v)", cause, recovered(r).Value)
		}
	}()
	alloc, err = staticPartition(funcs, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w (static-partition fallback also failed: %v)", cause, err)
	}
	alloc.Degraded = true
	alloc.Cause = cause

	// Self-check the degraded allocation before handing it out: a
	// fallback taken *because* invariants broke must not be trusted on
	// faith. SiteVerify models this check itself failing.
	if err := faultinject.Fire(context.Background(), faultinject.SiteVerify); err != nil {
		return nil, fmt.Errorf("%w (static-partition fallback failed verification: %v)", cause, err)
	}
	if err := alloc.Verify(); err != nil {
		return nil, fmt.Errorf("%w (static-partition fallback failed verification: %v)", cause, err)
	}
	return alloc, nil
}

// staticPartition allocates every thread into an even NReg/Nthd private
// slice with no shared registers, using fresh analyses (the failed
// attempt's allocators may be mid-mutation after a panic). It is panic-
// protected: any panic comes back as a *PanicError.
func staticPartition(funcs []*ir.Func, cfg Config) (alloc *Allocation, err error) {
	defer func() {
		if r := recover(); r != nil {
			alloc, err = nil, recovered(r)
		}
	}()

	n := len(funcs)
	if n == 0 || cfg.NReg <= 0 {
		return nil, invalidf("static partition of %d threads into %d registers", n, cfg.NReg)
	}
	prEach := cfg.NReg / n
	if prEach == 0 {
		return nil, infeasiblef("static partition: %d threads share %d registers", n, cfg.NReg)
	}

	als := make([]*intra.Allocator, n)
	sols := make([]*intra.Solution, n)
	pr := make([]int, n)
	sr := make([]int, n)
	byCode := make(map[string]*intra.Allocator)
	for i, f := range funcs {
		key := f.Format()
		al, ok := byCode[key]
		if !ok {
			var aerr error
			al, aerr = intra.New(f)
			if aerr != nil {
				return nil, aerr
			}
			byCode[key] = al
		}
		sol, serr := al.Solve(prEach, 0)
		if serr != nil {
			return nil, fmt.Errorf("thread %d (%s) does not fit its static %d-register slice: %w",
				i, f.Name, prEach, serr)
		}
		als[i], sols[i], pr[i], sr[i] = al, sol, prEach, 0
	}
	// The fallback never touches the rewrite cache: degraded runs must
	// not warm any tier (matching the AllocatorSource discard rule), and
	// the last resort should not depend on shared state either.
	dcfg := cfg
	dcfg.RewriteCache = nil
	alloc, err = finalize(context.Background(), funcs, als, pr, sr, sols, dcfg)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(byCode))
	for key := range byCode {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		alloc.SolveCache.Add(byCode[key].CacheStats())
	}
	return alloc, nil
}

// degradable reports whether the failure class allows falling back to
// the static partition.
func degradable(err error) bool {
	return err != nil && !errors.Is(err, ErrInvalid) && !errors.Is(err, ErrInfeasible)
}
