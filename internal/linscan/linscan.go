// Package linscan is a second baseline register allocator: linear scan
// (Poletto & Sarkar), the allocator family used where compile time
// matters more than code quality. Live ranges are approximated by
// intervals over the linearized instruction order; when more intervals
// are live than registers, the interval ending furthest away spills to
// memory (via the shared spill-code machinery of package spill).
//
// Its role here is robustness: the paper's comparison should not hinge on
// which baseline allocator generates the spill code, so the experiments
// can swap Chaitin coloring for linear scan and check the story holds.
package linscan

import (
	"fmt"
	"sort"

	"npra/internal/core/errs"
	"npra/internal/ir"
	"npra/internal/liveness"
	"npra/internal/spill"
)

// Options configures an allocation (mirrors chaitin.Options).
type Options struct {
	// Phys is the physical register partition; the last register is
	// reserved as the spill base pointer once spilling starts.
	Phys []ir.Reg

	// SpillBase/SpillStride locate the per-thread spill areas.
	SpillBase   int64
	SpillStride int64

	// MaxRounds bounds the spill-and-retry iteration (default 16).
	MaxRounds int
}

// Result is a completed allocation.
type Result struct {
	F          *ir.Func
	RegsUsed   int
	Spilled    int
	SpillCode  int
	Rounds     int
	SpillSlots int
}

// interval is a live range approximated as [start, end] over points.
type interval struct {
	v          int
	start, end int
}

// Allocate runs linear scan with iterative spilling.
func Allocate(f *ir.Func, opts Options) (*Result, error) {
	if len(opts.Phys) < 4 {
		return nil, errs.Invalidf("linscan: need at least 4 registers, got %d", len(opts.Phys))
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 16
	}
	if opts.SpillStride == 0 {
		opts.SpillStride = 256
	}

	cur := f.Clone()
	res := &Result{}
	nextSlot := 0
	noSpill := make(map[ir.Reg]bool)

	for round := 1; round <= opts.MaxRounds; round++ {
		res.Rounds = round
		k := len(opts.Phys)
		if nextSlot > 0 {
			k-- // base register reserved
		}
		colors, spilled := scan(cur, k, noSpill)
		if len(spilled) == 0 {
			out, used, err := rename(cur, colors, opts)
			if err != nil {
				return nil, err
			}
			res.F = out
			res.RegsUsed = used
			res.SpillSlots = nextSlot
			return res, nil
		}
		if nextSlot == 0 {
			// First spills: redo the scan with the base register held
			// back so the spill choice sees the true palette.
			colors, spilled = scan(cur, k-1, noSpill)
			if len(spilled) == 0 {
				out, used, err := rename(cur, colors, opts)
				if err != nil {
					return nil, err
				}
				res.F = out
				res.RegsUsed = used
				return res, nil
			}
		}
		var err error
		var added int
		cur, added, err = spill.Insert(cur, spilled, &nextSlot, noSpill)
		if err != nil {
			return nil, err
		}
		res.Spilled += len(spilled)
		res.SpillCode += added
	}
	return nil, errs.Infeasiblef("linscan: did not converge in %d rounds", opts.MaxRounds)
}

// scan builds intervals and allocates k colors, returning the coloring
// (palette indices, -1 for dead or spilled) and the spilled variables.
func scan(f *ir.Func, k int, noSpill map[ir.Reg]bool) ([]int, []int) {
	li := liveness.Compute(f)
	base := spill.BaseReg(f)

	ivs := buildIntervals(li, int(base))
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})

	colors := make([]int, f.NumRegs)
	for i := range colors {
		colors[i] = -1
	}
	var spilled []int

	free := make([]int, 0, k)
	for c := k - 1; c >= 0; c-- {
		free = append(free, c) // pop from the back: lowest color first
	}
	type activeIv struct {
		iv    interval
		color int
	}
	var active []activeIv // sorted by end ascending

	expire := func(now int) {
		keep := active[:0]
		for _, a := range active {
			if a.iv.end < now {
				free = append(free, a.color)
				continue
			}
			keep = append(keep, a)
		}
		active = keep
	}

	for _, iv := range ivs {
		expire(iv.start)
		if len(free) > 0 {
			c := free[len(free)-1]
			free = free[:len(free)-1]
			colors[iv.v] = c
			active = append(active, activeIv{iv, c})
			sort.Slice(active, func(i, j int) bool { return active[i].iv.end < active[j].iv.end })
			continue
		}
		// Spill the interval that ends last — unless it is unspillable,
		// in which case walk toward nearer ends.
		victim := -1
		for i := len(active) - 1; i >= 0; i-- {
			if !noSpill[ir.Reg(active[i].iv.v)] {
				victim = i
				break
			}
		}
		if victim >= 0 && active[victim].iv.end > iv.end && !noSpill[ir.Reg(iv.v)] {
			// Steal the victim's register; the victim spills.
			spilled = append(spilled, active[victim].iv.v)
			c := active[victim].color
			colors[active[victim].iv.v] = -1
			colors[iv.v] = c
			active[victim] = activeIv{iv, c}
			sort.Slice(active, func(i, j int) bool { return active[i].iv.end < active[j].iv.end })
		} else if !noSpill[ir.Reg(iv.v)] {
			spilled = append(spilled, iv.v)
		} else if victim >= 0 {
			// The new interval is unspillable: evict the victim even if
			// it ends sooner.
			spilled = append(spilled, active[victim].iv.v)
			c := active[victim].color
			colors[active[victim].iv.v] = -1
			colors[iv.v] = c
			active[victim] = activeIv{iv, c}
			sort.Slice(active, func(i, j int) bool { return active[i].iv.end < active[j].iv.end })
		} else {
			// Everything active is unspillable and so is iv; give up on
			// this variable (caller will fail to converge and report).
			spilled = append(spilled, iv.v)
		}
	}
	sort.Ints(spilled)
	return colors, spilled
}

// buildIntervals approximates each variable's live range by its first and
// last live point in linear order (the classic linear-scan coarsening).
func buildIntervals(li *liveness.Info, exclude int) []interval {
	n := li.F.NumPoints()
	first := make([]int, li.NumVars)
	last := make([]int, li.NumVars)
	for v := range first {
		first[v] = -1
	}
	for p := 0; p < n; p++ {
		li.At[p].ForEach(func(v int) {
			if first[v] < 0 {
				first[v] = p
			}
			last[v] = p
		})
	}
	var out []interval
	for v := range first {
		if first[v] < 0 || v == exclude {
			continue
		}
		out = append(out, interval{v: v, start: first[v], end: last[v]})
	}
	return out
}

// rename maps palette indices to physical registers and patches the spill
// prologue constants.
func rename(cur *ir.Func, colors []int, opts Options) (*ir.Func, int, error) {
	baseVirt := spill.BaseReg(cur)
	nf := &ir.Func{Name: cur.Name, Physical: true}
	used := make(map[ir.Reg]bool)
	mapReg := func(v ir.Reg) (ir.Reg, error) {
		if v == baseVirt {
			r := opts.Phys[len(opts.Phys)-1]
			used[r] = true
			return r, nil
		}
		c := colors[v]
		if c < 0 {
			// Dead definitions can land anywhere.
			used[opts.Phys[0]] = true
			return opts.Phys[0], nil
		}
		r := opts.Phys[c]
		used[r] = true
		return r, nil
	}
	maxPhys := ir.Reg(0)
	for _, b := range cur.Blocks {
		nb := &ir.Block{Label: b.Label}
		for i := range b.Instrs {
			in := b.Instrs[i]
			if v, ok := spill.PatchImm(in.Imm, opts.SpillBase, opts.SpillStride); ok {
				in.Imm = v
			}
			var err error
			if in.Def != ir.NoReg {
				if in.Def, err = mapReg(in.Def); err != nil {
					return nil, 0, err
				}
			}
			if in.A != ir.NoReg {
				if in.A, err = mapReg(in.A); err != nil {
					return nil, 0, err
				}
			}
			if in.B != ir.NoReg {
				if in.B, err = mapReg(in.B); err != nil {
					return nil, 0, err
				}
			}
			for _, r := range []ir.Reg{in.Def, in.A, in.B} {
				if r != ir.NoReg && r > maxPhys {
					maxPhys = r
				}
			}
			nb.Instrs = append(nb.Instrs, in)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	nf.NumRegs = int(maxPhys) + 1
	if err := nf.Build(); err != nil {
		return nil, 0, fmt.Errorf("linscan: rewritten function invalid: %w", err)
	}
	return nf, len(used), nil
}
