// Package lockorder is the first flow-powered npravet pass: it reasons
// about mutexes the way the paper reasons about registers — statically,
// across all paths, instead of trusting `go test -race` to observe the
// bad interleaving. Three bug classes, over the anz CFG + dataflow
// layer:
//
//  1. Lock-order cycles. Every acquisition of lock B while lock A is
//     held contributes an edge A→B to a repo-wide acquisition-order
//     graph (locks are identified by their declaring struct field —
//     "npra/internal/funccache.shard.mu" — so every shard instance
//     shares a node). A cycle in that graph is a potential deadlock:
//     two goroutines taking the locks in opposite order need only
//     interleave once. Edges through one level of direct calls are
//     included via the anz function summaries, so `c.Stats()` taking
//     shard locks while the caller holds another lock is seen.
//
//  2. Unknown callees under a lock. A call through a function value or
//     interface method while holding a lock invokes code the order
//     graph cannot see; if that code takes any lock, the graph is
//     incomplete exactly where it matters. Reported for the caller to
//     either hoist the call out of the critical section or justify it.
//
//  3. Unbalanced paths. A lock acquired on some CFG path but not
//     released on every path to the function exit (deferred unlocks
//     credited) leaks the critical section: the next Lock self-
//     deadlocks. The dual — Unlock/RUnlock on a path where the lock
//     cannot be held — is reported too, as is a direct re-acquisition
//     while already held and the RLock→Lock upgrade, which deadlocks
//     an RWMutex by itself.
//
// The pass is deliberately scoped to the repo's lock discipline:
// critical sections are short, leaf-like, and never hold a lock across
// an exported call. Sites that break the pattern deliberately carry a
// //lint:ignore lockorder justification.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the lockorder pass.
var Analyzer = &anz.Analyzer{
	Name: "lockorder",
	Doc: "builds the repo-wide lock-acquisition order graph and reports cycles, dynamic " +
		"calls made while holding a lock, and lock/unlock pairs unbalanced across CFG paths",
	Run:         run,
	NewRunState: func() any { return newState() },
	Finish:      finish,
}

// state accumulates across packages: the acquisition-order graph, the
// summaries seen so far, and call sites whose callee had no summary yet
// when the caller was analyzed (package order is alphabetical, not
// topological).
type state struct {
	// edges[from][to] = first witness site of an acquisition of `to`
	// while `from` was held.
	edges map[string]map[string]edgeSite

	summaries map[types.Object]*anz.Summary

	// pending calls under held locks, resolved against summaries in
	// Finish.
	pending []pendingCall
}

type edgeSite struct {
	pos token.Position
	fn  string
}

type pendingCall struct {
	callee types.Object
	held   []heldLock // locks held at the call, global ids
	pos    token.Position
	fn     string
}

type heldLock struct{ global string }

func newState() *state {
	return &state{
		edges:     make(map[string]map[string]edgeSite),
		summaries: make(map[types.Object]*anz.Summary),
	}
}

func (st *state) addEdge(from, to string, pos token.Position, fn string) {
	if from == to || from == "<dynamic>" || to == "<dynamic>" {
		return
	}
	m := st.edges[from]
	if m == nil {
		m = make(map[string]edgeSite)
		st.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = edgeSite{pos: pos, fn: fn}
	}
}

func run(pass *anz.Pass) error {
	st := pass.RunState().(*state)
	sums := anz.Summarize(pass)
	for obj, s := range sums {
		st.summaries[obj] = s
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, st, fd)
		}
	}
	return nil
}

// heldLattice is the forward may-held analysis: the fact is the set of
// lock keys possibly held at a program point. Keys are syntactic
// receiver paths, with "[R]" marking read locks ("sh.mu", "sh.mu[R]"),
// so aliasing stays exactly as written.
type heldLattice struct {
	pass *anz.Pass
}

func (l *heldLattice) Bottom() anz.StringSet                 { return anz.StringSet{} }
func (l *heldLattice) Entry() anz.StringSet                  { return anz.StringSet{} }
func (l *heldLattice) Join(a, b anz.StringSet) anz.StringSet { return a.Union(b) }
func (l *heldLattice) Equal(a, b anz.StringSet) bool         { return a.Equal(b) }

func (l *heldLattice) Transfer(b *anz.Block, in anz.StringSet) anz.StringSet {
	held := in
	for _, n := range b.Nodes {
		forEachLockCall(l.pass, n, func(call *ast.CallExpr, op anz.LockOp, dynamic bool) {
			if op == (anz.LockOp{}) {
				return // not a lock op
			}
			key := lockKey(op)
			if op.Class.IsAcquire() {
				held = held.Add(key)
			} else {
				held = held.Remove(key)
			}
		})
	}
	return held
}

// lockKey is the per-function fact element of a lock operation.
func lockKey(op anz.LockOp) string {
	if op.Class == anz.RLockAcquire || op.Class == anz.RLockRelease {
		return op.Local + "[R]"
	}
	return op.Local
}

// forEachLockCall walks one CFG node in source order and calls fn for
// every call expression, classifying it as a lock op (dynamic=false,
// valid op) or as a plain call (op zero; dynamic reports whether the
// callee is a function value or interface method). Function literals
// and defer statements are skipped: a closure's ops belong to whoever
// runs it, and deferred calls run at exit, not here.
func forEachLockCall(pass *anz.Pass, n ast.Node, fn func(call *ast.CallExpr, op anz.LockOp, dynamic bool)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := anz.LockOpAt(pass, m); ok {
				fn(m, op, false)
				return true
			}
			fn(m, anz.LockOp{}, anz.IsDynamicCall(pass, m))
		}
		return true
	})
}

func checkFunc(pass *anz.Pass, st *state, fd *ast.FuncDecl) {
	g := anz.BuildCFG(fd.Body)
	lat := &heldLattice{pass: pass}
	facts := anz.Solve(g, lat)
	fnName := fd.Name.Name

	// Deferred releases credit the exit-balance check. defer
	// mu.Unlock() covers "mu"; defer mu.RUnlock() covers "mu[R]".
	deferred := anz.StringSet{}
	for _, call := range g.Defers {
		if op, ok := anz.LockOpAt(pass, call); ok && !op.Class.IsAcquire() {
			deferred = deferred.Add(lockKey(op))
		}
	}

	// localGlobal maps fact keys back to graph identities, and
	// acquireSite remembers where each key was (first) taken for
	// exit-balance messages.
	localGlobal := make(map[string]string)
	acquireSite := make(map[string]token.Pos)

	for _, b := range g.Blocks {
		if !g.Reachable(b) {
			continue
		}
		held := facts.In[b.Index]
		for _, n := range b.Nodes {
			forEachLockCall(pass, n, func(call *ast.CallExpr, op anz.LockOp, dynamic bool) {
				switch {
				case op != (anz.LockOp{}) && op.Class.IsAcquire():
					key := lockKey(op)
					localGlobal[key] = op.Global
					if _, seen := acquireSite[key]; !seen {
						acquireSite[key] = call.Pos()
					}
					if held.Has(key) {
						pass.Reportf(call.Pos(), "acquiring %s while already held on this path: a second %s self-deadlocks (missing unlock on a loop or branch path?)", op.Local, methodOf(op.Class))
					}
					if op.Class == anz.LockAcquire && held.Has(op.Local+"[R]") {
						pass.Reportf(call.Pos(), "upgrading %s from RLock to Lock deadlocks: the writer waits for readers, including this goroutine's own RLock — release the read lock first", op.Local)
					}
					for _, h := range held.Elems() {
						st.addEdge(baseGlobal(localGlobal, h), op.Global, pass.Fset.Position(call.Pos()), fnName)
					}
					held = held.Add(key)
				case op != (anz.LockOp{}):
					key := lockKey(op)
					localGlobal[key] = op.Global
					if !held.Has(key) {
						pass.Reportf(call.Pos(), "%s of %s on a path where it cannot be held: unlock of an unlocked mutex panics at runtime", methodOf(op.Class), op.Local)
					}
					held = held.Remove(key)
				case held.Len() > 0 && dynamic:
					pass.Reportf(call.Pos(), "call through a function value or interface while holding %s: the callee is invisible to the lock-order graph and may itself acquire locks — hoist the call out of the critical section", strings.Join(baseNames(held), ", "))
				case held.Len() > 0:
					// Static callee: propagate its summary's acquisitions
					// one level into the order graph.
					if obj := anz.CalleeObject(pass, call); obj != nil && !isSyncOrBuiltin(obj) {
						hl := make([]heldLock, 0, held.Len())
						for _, h := range held.Elems() {
							hl = append(hl, heldLock{global: baseGlobal(localGlobal, h)})
						}
						st.pending = append(st.pending, pendingCall{
							callee: obj,
							held:   hl,
							pos:    pass.Fset.Position(call.Pos()),
							fn:     fnName,
						})
					}
				}
			})
		}
	}

	// Exit balance: a key held on some path into Exit without a
	// deferred release never unlocks on that path.
	exitHeld := facts.In[g.Exit.Index]
	for _, key := range exitHeld.Elems() {
		if deferred.Has(key) {
			continue
		}
		pos := acquireSite[key]
		if pos == token.NoPos {
			pos = fd.Pos()
		}
		pass.Reportf(pos, "%s is not released on every path to the end of %s: a later acquisition self-deadlocks (add the missing unlock or defer it)", strings.TrimSuffix(key, "[R]"), fnName)
	}
}

// baseGlobal maps a fact key to its graph identity, falling back to the
// key itself (shouldn't happen: keys are recorded on first sight).
func baseGlobal(localGlobal map[string]string, key string) string {
	if g, ok := localGlobal[key]; ok {
		return g
	}
	return strings.TrimSuffix(key, "[R]")
}

func baseNames(held anz.StringSet) []string {
	seen := map[string]bool{}
	var out []string
	for _, h := range held.Elems() {
		b := strings.TrimSuffix(h, "[R]")
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

func methodOf(c anz.LockClass) string {
	switch c {
	case anz.LockAcquire:
		return "Lock"
	case anz.LockRelease:
		return "Unlock"
	case anz.RLockAcquire:
		return "RLock"
	default:
		return "RUnlock"
	}
}

// isSyncOrBuiltin filters callees whose lock behavior is already
// modeled (package sync) or irrelevant (the standard library below it:
// container/list, sort, fmt, ... take no project locks).
func isSyncOrBuiltin(obj types.Object) bool {
	if obj.Pkg() == nil {
		return true
	}
	path := obj.Pkg().Path()
	return !strings.Contains(path, ".") && !strings.HasPrefix(path, "npra")
}

func finish(s any, report func(pos token.Position, format string, args ...any)) error {
	st := s.(*state)

	// Resolve the pending one-level call edges now that every package's
	// summaries are in.
	for _, pc := range st.pending {
		sum, ok := st.summaries[pc.callee]
		if !ok {
			continue
		}
		for _, acq := range sum.Acquires.Elems() {
			for _, h := range pc.held {
				st.addEdge(h.global, acq, pc.pos, pc.fn)
			}
		}
	}

	// Cycle detection over the order graph, deterministic: DFS from
	// each node in sorted order; the first back edge on each cycle
	// reports it once.
	nodes := make([]string, 0, len(st.edges))
	for n := range st.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		tos := make([]string, 0, len(st.edges[n]))
		for to := range st.edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch color[to] {
			case white:
				visit(to)
			case gray:
				// Cycle: the slice of stack from `to` onward, closed by
				// n→to.
				i := 0
				for j, v := range stack {
					if v == to {
						i = j
						break
					}
				}
				cyc := append(append([]string(nil), stack[i:]...), to)
				site := st.edges[n][to]
				report(site.pos, "lock-order cycle: %s (edge %s->%s created here in %s); another goroutine taking these locks in the opposite order deadlocks", strings.Join(cyc, " -> "), shortLock(n), shortLock(to), site.fn)
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
	return nil
}

// shortLock trims the import-path prefix for readability in messages:
// "npra/internal/funccache.shard.mu" -> "funccache.shard.mu".
func shortLock(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}
