package experiments

import (
	"fmt"
	"strings"

	"npra/internal/bench"
	"npra/internal/intra"
	"npra/internal/ir"
)

// Table2Row reproduces the paper's Table 2: the extreme case — allocate
// only the minimal register counts (MinPR private, MinR total) and count
// the move instructions live-range splitting must insert. The paper
// reports this overhead stays mostly within 10% of the instruction count.
type Table2Row struct {
	Name    string
	MinPR   int
	MinR    int
	Moves   int     // instructions inserted by the rewriter
	Instrs  int     // original instruction count
	MovePct float64 // Moves / Instrs
}

// Table2 computes the extreme-case move-overhead table, one benchmark
// per worker task.
func Table2(npkts int) ([]Table2Row, error) {
	return mapBenches(func(b *bench.Benchmark) (Table2Row, error) {
		f := b.Gen(npkts)
		al, err := intra.New(f)
		if err != nil {
			return Table2Row{}, fmt.Errorf("table2 %s: %w", b.Name, err)
		}
		bd := al.Bounds()
		sol, err := al.Solve(bd.MinPR, bd.MinR-bd.MinPR)
		if err != nil {
			return Table2Row{}, fmt.Errorf("table2 %s: %w", b.Name, err)
		}
		phys := make([]ir.Reg, sol.Ctx.Size)
		for i := range phys {
			phys[i] = ir.Reg(i)
		}
		_, stats, err := intra.Rewrite(sol.Ctx, phys)
		if err != nil {
			return Table2Row{}, fmt.Errorf("table2 %s: rewrite: %w", b.Name, err)
		}
		n := f.Stats().Instructions
		return Table2Row{
			Name:    b.Name,
			MinPR:   bd.MinPR,
			MinR:    bd.MinR,
			Moves:   stats.Added(),
			Instrs:  n,
			MovePct: 100 * float64(stats.Added()) / float64(n),
		}, nil
	})
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Maximal move insertion at the minimal register allocation\n")
	fmt.Fprintf(&sb, "%-14s %6s %6s %7s %7s %8s\n",
		"benchmark", "MinPR", "MinR", "#moves", "instrs", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6d %6d %7d %7d %7.1f%%\n",
			r.Name, r.MinPR, r.MinR, r.Moves, r.Instrs, r.MovePct)
	}
	return sb.String()
}
