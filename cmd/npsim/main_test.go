package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"none", "baseline", "sharing"} {
		if err := run(mode, 20, 0, 8, "frag,crc32", 128, 10_000_000, 0, nil); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	asm := filepath.Join(dir, "p.asm")
	src := "func p\na:\n set v0, 3\n store [0], v0\n iter\n halt\n"
	if err := os.WriteFile(asm, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("none", 20, 0, 0, "", 128, 100000, 5, []string{asm}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 20, 0, 8, "frag", 128, 1000, 0, nil); err == nil {
		t.Errorf("bad alloc mode accepted")
	}
	if err := run("none", 20, 0, 8, "", 128, 1000, 0, nil); err == nil {
		t.Errorf("no input accepted")
	}
	if err := run("none", 20, 0, 8, "frag", 128, 1000, 0, []string{"f.asm"}); err == nil {
		t.Errorf("bench+files accepted")
	}
	if err := run("none", 20, 0, 8, "", 128, 1000, 0, []string{"/nonexistent.asm"}); err == nil {
		t.Errorf("missing file accepted")
	}
}
