// Quickstart: allocate registers across two threads of IXP-style assembly
// using the public pipeline — parse, balance across threads, verify the
// safety contract, and print the rewritten physical-register code.
//
// The two programs are the paper's Figure 3 example: thread 1 keeps one
// value (a) live across a context switch, so it needs a private register;
// everything else lives between switches and can share registers with
// thread 2.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"npra/internal/core"
	"npra/internal/ir"
)

const thread1 = `
func producer
entry:
	set v0, 1        ; a: live across the ctx -> needs a private register
	ctx
	bz v0, L1
	set v1, 2        ; b and c live only between switches -> shareable
	add v1, v0, v1
	set v2, 3
	br L2
L1:
	set v2, 4
	add v2, v0, v2
	set v1, 5
L2:
	add v1, v1, v2
	load v3, [v1+0]
	store [64], v3
	halt
`

const thread2 = `
func consumer
entry:
	ctx
	set v0, 6        ; d: dead at every context switch -> shareable
	addi v0, v0, 1
	store [68], v0
	halt
`

func main() {
	t1, err := ir.Parse(thread1)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := ir.Parse(thread2)
	if err != nil {
		log.Fatal(err)
	}

	// A toy processing unit with 16 registers — plenty, so the allocator
	// settles at the move-free demand.
	alloc, err := core.AllocateARA([]*ir.Func{t1, t2}, core.Config{NReg: 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		log.Fatal("allocation failed its safety check: ", err)
	}

	fmt.Printf("register file: %d registers, %d globally shared, %d used in total\n",
		alloc.NReg, alloc.SGR, alloc.TotalRegisters())
	fmt.Println("(the paper's Figure 3: 4 registers without sharing, 3 with)")
	for i, t := range alloc.Threads {
		fmt.Printf("\nthread %d (%s): PR=%d private (r%d..r%d), SR=%d shared, %d moves inserted\n",
			i, t.Name, t.PR, t.PrivBase, t.PrivBase+t.PR-1, t.SR, t.Stats.Added())
		fmt.Print(t.F.Format())
	}
}
