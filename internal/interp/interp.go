// Package interp is the reference interpreter for npra IR: single-thread,
// big-step, no timing model. It defines the observable semantics that
// register allocation must preserve — final memory contents, iteration
// markers and halting — and is used by tests to prove rewritten
// (allocated) code equivalent to the virtual-register original.
//
// Machine model: registers hold 32-bit words and are zero at entry;
// memory is an array of 32-bit words addressed in bytes (word index =
// addr/4, out-of-range accesses wrap modulo the memory size).
package interp

import (
	"npra/internal/core/errs"
	"npra/internal/ir"
)

// Result reports an execution.
type Result struct {
	Mem    []uint32 // final memory (the input slice, mutated)
	Regs   []uint32 // final register file
	Iters  int      // number of iter markers executed
	Steps  int      // instructions executed
	Halted bool     // reached halt before the step budget expired
}

// Options configures a run.
type Options struct {
	TID      uint32 // value returned by the tid instruction
	MaxSteps int    // execution budget; 0 means a generous default
}

// Run executes f on mem (word-indexed) and returns the result. The
// function must be built. Runtime errors (division-free ISA, so only
// invalid opcodes) are returned as errors.
func Run(f *ir.Func, mem []uint32, opt Options) (*Result, error) {
	if !f.Built() {
		return nil, errs.Invalidf("interp: function %s not built", f.Name)
	}
	maxSteps := opt.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	res := &Result{Mem: mem, Regs: make([]uint32, f.NumRegs)}
	regs := res.Regs
	rd := func(r ir.Reg) uint32 { return regs[r] }
	// word returns nil when the program touches memory but none was
	// provided; the memory-op cases below turn that into ErrInvalid.
	word := func(addr uint32) *uint32 {
		if len(mem) == 0 {
			return nil
		}
		return &mem[(addr/4)%uint32(len(mem))]
	}

	pc := 0 // global point
	n := f.NumPoints()
	for res.Steps < maxSteps {
		if pc < 0 || pc >= n {
			return res, errs.Invalidf("interp: pc %d out of range", pc)
		}
		in := f.Instr(pc)
		res.Steps++
		next := pc + 1
		switch in.Op {
		case ir.OpSet:
			regs[in.Def] = uint32(in.Imm)
		case ir.OpMov:
			regs[in.Def] = rd(in.A)
		case ir.OpTID:
			regs[in.Def] = opt.TID
		case ir.OpAdd:
			regs[in.Def] = rd(in.A) + rd(in.B)
		case ir.OpSub:
			regs[in.Def] = rd(in.A) - rd(in.B)
		case ir.OpAnd:
			regs[in.Def] = rd(in.A) & rd(in.B)
		case ir.OpOr:
			regs[in.Def] = rd(in.A) | rd(in.B)
		case ir.OpXor:
			regs[in.Def] = rd(in.A) ^ rd(in.B)
		case ir.OpShl:
			regs[in.Def] = rd(in.A) << (rd(in.B) & 31)
		case ir.OpShr:
			regs[in.Def] = rd(in.A) >> (rd(in.B) & 31)
		case ir.OpMul:
			regs[in.Def] = rd(in.A) * rd(in.B)
		case ir.OpAddI:
			regs[in.Def] = rd(in.A) + uint32(in.Imm)
		case ir.OpSubI:
			regs[in.Def] = rd(in.A) - uint32(in.Imm)
		case ir.OpAndI:
			regs[in.Def] = rd(in.A) & uint32(in.Imm)
		case ir.OpOrI:
			regs[in.Def] = rd(in.A) | uint32(in.Imm)
		case ir.OpXorI:
			regs[in.Def] = rd(in.A) ^ uint32(in.Imm)
		case ir.OpShlI:
			regs[in.Def] = rd(in.A) << (uint32(in.Imm) & 31)
		case ir.OpShrI:
			regs[in.Def] = rd(in.A) >> (uint32(in.Imm) & 31)
		case ir.OpMulI:
			regs[in.Def] = rd(in.A) * uint32(in.Imm)
		case ir.OpNot:
			regs[in.Def] = ^rd(in.A)
		case ir.OpLoad:
			w := word(rd(in.A) + uint32(in.Imm))
			if w == nil {
				return res, errs.Invalidf("interp: %s with empty memory", in.Op)
			}
			regs[in.Def] = *w
		case ir.OpLoadA:
			w := word(uint32(in.Imm))
			if w == nil {
				return res, errs.Invalidf("interp: %s with empty memory", in.Op)
			}
			regs[in.Def] = *w
		case ir.OpStore:
			w := word(rd(in.A) + uint32(in.Imm))
			if w == nil {
				return res, errs.Invalidf("interp: %s with empty memory", in.Op)
			}
			*w = rd(in.B)
		case ir.OpStoreA:
			w := word(uint32(in.Imm))
			if w == nil {
				return res, errs.Invalidf("interp: %s with empty memory", in.Op)
			}
			*w = rd(in.B)
		case ir.OpCtx, ir.OpNop:
			// No observable effect single-threaded.
		case ir.OpIter:
			res.Iters++
		case ir.OpBr:
			next = f.Blocks[f.BlockByLabel(in.Target)].Start()
		case ir.OpBZ:
			if rd(in.A) == 0 {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBNZ:
			if rd(in.A) != 0 {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBEQ:
			if rd(in.A) == rd(in.B) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBNE:
			if rd(in.A) != rd(in.B) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBLT:
			if int32(rd(in.A)) < int32(rd(in.B)) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBGE:
			if int32(rd(in.A)) >= int32(rd(in.B)) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpHalt:
			res.Halted = true
			return res, nil
		default:
			return res, errs.Invalidf("interp: invalid opcode %v at point %d", in.Op, pc)
		}
		pc = next
	}
	return res, nil
}

// Equivalent compares two results for observational equality: both halted
// (or neither), same iteration count, same memory image. Register files
// are not compared — allocation renames them by design.
func Equivalent(a, b *Result) error {
	if a.Halted != b.Halted {
		return errs.Internalf("halted: %v vs %v", a.Halted, b.Halted)
	}
	if a.Iters != b.Iters {
		return errs.Internalf("iters: %d vs %d", a.Iters, b.Iters)
	}
	if len(a.Mem) != len(b.Mem) {
		return errs.Internalf("memory sizes differ: %d vs %d", len(a.Mem), len(b.Mem))
	}
	for i := range a.Mem {
		if a.Mem[i] != b.Mem[i] {
			return errs.Internalf("mem[%d]: %#x vs %#x", i*4, a.Mem[i], b.Mem[i])
		}
	}
	return nil
}
