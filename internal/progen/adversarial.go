package progen

// Adversarial generators: program shapes built to defeat the cache
// hierarchy and stress the allocator's worst cases, not to look like
// realistic kernels. Each family targets one failure mode:
//
//	trampoline    — a deep chain of tiny blocks laid out in shuffled
//	                order, every hop a context-switch boundary, with a
//	                register set that stays live across the whole chain.
//	                Live ranges span dozens of CSBs, so the allocator's
//	                split budget is stretched across maximum depth and
//	                the rewriter's relocation sites multiply.
//	boundary      — a straight-line body with a CSB between every pair
//	                of computation instructions and every register live
//	                across every boundary: the boundary-dense worst case
//	                for split-budget allocation ("spill everywhere"
//	                territory — each boundary is a potential split of
//	                every live range).
//	palette       — a pressure staircase (wide phase → low-pressure
//	                counted loop → wide phase) whose (PR, SR) choice is
//	                maximally sensitive to the register budget. Driven
//	                under heterogeneous NReg profiles it churns the
//	                rewrite cache's palette tuples, defeating the
//	                canonical/exact split.
//	nearcollision — a fixed skeleton where only one immediate carries
//	                the seed: bodies differ in a single instruction, so
//	                thousands of distinct sha256 keys index near-
//	                identical content — hostile to every content-hashed
//	                tier (raw LRU, body cache, func cache) at once.
//
// All shapes obey the structured generator's contract: deterministic
// from (shape, seed, cfg), structurally halting (counted loops only),
// and valid by construction (Build is a self-check, not a validator).

import (
	"fmt"
	"math/rand" //lint:ignore detlint seeded deterministic generator: rand.New(rand.NewSource(seed)) only, never the global PRNG

	"npra/internal/core/errs"
	"npra/internal/ir"
)

// Shape names an adversarial generator family. The empty shape is the
// default structured generator.
type Shape string

// The adversarial shapes. Each is deterministic from (seed, cfg).
const (
	ShapeTrampoline    Shape = "trampoline"
	ShapeBoundary      Shape = "boundary"
	ShapePalette       Shape = "palette"
	ShapeNearCollision Shape = "nearcollision"
)

// Shapes returns the adversarial generator families in a fixed order
// (the order workload harnesses cycle through).
func Shapes() []Shape {
	return []Shape{ShapeTrampoline, ShapeBoundary, ShapePalette, ShapeNearCollision}
}

// ValidShape reports whether s names a generator FromSeedShape accepts:
// the empty (structured) shape or one of Shapes.
func ValidShape(s Shape) bool {
	switch s {
	case "", ShapeTrampoline, ShapeBoundary, ShapePalette, ShapeNearCollision:
		return true
	}
	return false
}

// FromSeedShape materializes one function of the given shape over a
// fresh rand.NewSource(seed) PRNG: the same (shape, seed, cfg) always
// yields the same function. The empty shape is FromSeed (the default
// structured generator); unknown shapes are an error.
func FromSeedShape(shape Shape, seed int64, cfg StructuredConfig) (*ir.Func, error) {
	rng := rand.New(rand.NewSource(seed))
	switch shape {
	case "":
		return GenerateStructured(rng, cfg), nil
	case ShapeTrampoline:
		return GenerateTrampoline(rng, cfg), nil
	case ShapeBoundary:
		return GenerateBoundaryDense(rng, cfg), nil
	case ShapePalette:
		return GeneratePaletteThrash(rng, cfg), nil
	case ShapeNearCollision:
		return GenerateNearCollision(seed, cfg), nil
	}
	return nil, errs.Invalidf("progen: unknown shape %q", shape)
}

// advVars clamps the computation-register count to at least two (the
// structured generator's floor) so every shape is well-formed even at
// degenerate configs.
func advVars(cfg StructuredConfig) int {
	if cfg.MaxVars < 2 {
		return 2
	}
	return cfg.MaxVars
}

// advAddr draws one aligned absolute address inside the config's store
// window.
func advAddr(rng *rand.Rand, cfg StructuredConfig) int64 {
	w := cfg.StoreWindow
	if w < 4 {
		w = 4
	}
	return cfg.StoreBase + int64(rng.Intn(int(w)))&^3
}

// GenerateTrampoline returns a deep chain of tiny blocks: entry defines
// the full register set, then control bounces through 4×MaxDepth(+ up
// to MaxDepth) hop blocks emitted in shuffled layout order — each hop a
// Ctx boundary plus a little ALU work — before a final block that reads
// every register back. Every variable is live across every hop, so the
// per-boundary NSR is the whole set at maximum chain depth.
func GenerateTrampoline(rng *rand.Rand, cfg StructuredConfig) *ir.Func {
	bu := ir.NewBuilder("tramp")
	bu.Label("entry")
	n := advVars(cfg)
	vars := make([]ir.Reg, n)
	for i := range vars {
		vars[i] = bu.Set(int64(rng.Intn(1000)))
	}
	acc := bu.Set(int64(rng.Intn(1000)))

	depth := cfg.MaxDepth
	if depth < 1 {
		depth = 1
	}
	hops := 4*depth + rng.Intn(depth+1)
	// Shuffled layout: hop k (chain order) is emitted at position
	// order[k], so consecutive branches jump around the block list —
	// a trampoline, not a fallthrough ladder.
	order := rng.Perm(hops)
	labels := make([]string, hops)
	for k := range labels {
		labels[k] = fmt.Sprintf("hop%d", k)
	}
	bu.Br(labels[0])
	for _, k := range order {
		bu.Label(labels[k])
		bu.Ctx()
		ops := 1 + rng.Intn(2)
		for o := 0; o < ops; o++ {
			// Use-only rotation into the accumulator: no hop redefines a
			// variable, so every one stays live from entry to the tail.
			bu.Op3To(ir.OpAdd, acc, acc, vars[(k+o)%n])
		}
		if rng.Float64() < cfg.CSBDensity {
			bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: acc,
				Imm: advAddr(rng, cfg)})
		}
		if k == hops-1 {
			bu.Br("tail")
		} else {
			bu.Br(labels[k+1])
		}
	}
	bu.Label("tail")
	for i, v := range vars {
		bu.Op3To(ir.OpXor, acc, acc, v)
		if i%3 == 0 {
			bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: v,
				Imm: advAddr(rng, cfg)})
		}
	}
	bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: acc,
		Imm: advAddr(rng, cfg)})
	bu.Halt()
	f, err := bu.Finish()
	if err != nil {
		panic("progen: trampoline generator produced invalid code: " + err.Error()) //lint:invariant generator self-check: the chain is a closed layout permutation with explicit terminators; Finish failure means the generator itself is broken
	}
	return f
}

// GenerateBoundaryDense returns a straight-line body with a context-
// switch boundary between every pair of computation instructions and
// the full register set live across every one of them: the number of
// live ranges crossing CSBs — the quantity the allocator's split budget
// pays for — is maximal for the body size.
func GenerateBoundaryDense(rng *rand.Rand, cfg StructuredConfig) *ir.Func {
	bu := ir.NewBuilder("bdense")
	bu.Label("entry")
	n := advVars(cfg)
	vars := make([]ir.Reg, n)
	for i := range vars {
		vars[i] = bu.Set(int64(rng.Intn(1000)))
	}
	acc := bu.Set(int64(rng.Intn(1000)))

	bodyLen := cfg.MaxBodyLen
	if bodyLen < 1 {
		bodyLen = 1
	}
	depth := cfg.MaxDepth
	if depth < 1 {
		depth = 1
	}
	segs := bodyLen * (depth + 1)
	for s := 0; s < segs; s++ {
		bu.Ctx()
		j := s % n
		// vars[j] is used and redefined across the boundary (a split at
		// both ends), and the accumulator chains every variable through,
		// so all n ranges cross all segs boundaries.
		bu.Op3To(ir.OpXor, vars[j], vars[j], acc)
		bu.Op3To(ir.OpAdd, acc, acc, vars[(s+1)%n])
		if rng.Float64() < cfg.CSBDensity {
			bu.Emit(ir.Instr{Op: ir.OpLoadA, Def: acc, A: ir.NoReg, B: ir.NoReg,
				Imm: advAddr(rng, cfg)})
		}
	}
	bu.Ctx()
	for _, v := range vars {
		bu.Op3To(ir.OpOr, acc, acc, v)
	}
	bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: acc,
		Imm: advAddr(rng, cfg)})
	bu.Halt()
	f, err := bu.Finish()
	if err != nil {
		panic("progen: boundary generator produced invalid code: " + err.Error()) //lint:invariant generator self-check: straight-line code with a final halt; Finish failure means the generator itself is broken
	}
	return f
}

// GeneratePaletteThrash returns a pressure staircase: a wide phase
// where the whole register set is simultaneously live, a low-pressure
// counted loop with CSBs inside (the region where sharing registers
// pays), and a second wide phase that revives every variable. The
// (PR, SR) split that minimizes cost shifts sharply with the register
// budget, so the same body allocated under heterogeneous NReg profiles
// lands on different palette tuples — churning the rewrite cache's
// canonical/exact entries.
func GeneratePaletteThrash(rng *rand.Rand, cfg StructuredConfig) *ir.Func {
	bu := ir.NewBuilder("palette")
	bu.Label("entry")
	n := advVars(cfg)
	vars := make([]ir.Reg, n)
	for i := range vars {
		vars[i] = bu.Set(int64(rng.Intn(1000)))
	}
	// Wide phase: pairwise combines keep all n values live at once.
	acc := bu.Set(1)
	for i := 0; i < n-1; i++ {
		bu.Op3To(ir.OpAdd, acc, acc, vars[i])
		bu.Op3To(ir.OpXor, acc, acc, vars[i+1])
	}

	// Low-pressure counted loop: only the accumulator and the counter
	// are hot inside; the wide set idles across the loop's CSBs.
	trips := cfg.MaxTripCnt
	if trips < 1 {
		trips = 1
	}
	cnt := bu.Set(int64(1 + rng.Intn(trips)))
	bu.Label("loop")
	bu.Ctx()
	bu.OpITo(ir.OpAddI, acc, acc, int64(rng.Intn(256)))
	if rng.Float64() < cfg.CSBDensity {
		bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: acc,
			Imm: advAddr(rng, cfg)})
	}
	bu.Ctx()
	bu.OpITo(ir.OpSubI, cnt, cnt, 1)
	bu.BNZ(cnt, "loop")

	// Second wide phase: every variable is read again, so all ranges
	// span the loop and its boundaries.
	for i := n - 1; i >= 0; i-- {
		bu.Op3To(ir.OpSub, acc, acc, vars[i])
	}
	bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: acc,
		Imm: advAddr(rng, cfg)})
	bu.Halt()
	f, err := bu.Finish()
	if err != nil {
		panic("progen: palette generator produced invalid code: " + err.Error()) //lint:invariant generator self-check: one counted loop with an explicit back-branch; Finish failure means the generator itself is broken
	}
	return f
}

// GenerateNearCollision returns one of a family of bodies that share a
// fixed skeleton (derived from cfg alone, never from the seed) and
// differ only in a single immediate carrying the seed. Distinct seeds
// produce distinct content hashes over near-identical bodies: the
// hostile shape for every content-keyed tier, which must treat them as
// fully distinct entries (and evict honestly) rather than alias them.
func GenerateNearCollision(seed int64, cfg StructuredConfig) *ir.Func {
	bu := ir.NewBuilder("ncol")
	bu.Label("entry")
	n := advVars(cfg)
	vars := make([]ir.Reg, n)
	for i := range vars {
		vars[i] = bu.Set(int64(i*13 + 7)) // fixed skeleton values
	}
	// The single seed-dependent instruction: everything before and after
	// is byte-identical across the family.
	salt := bu.Set(seed & 0x3fffffff)

	bodyLen := cfg.MaxBodyLen
	if bodyLen < 1 {
		bodyLen = 1
	}
	w := cfg.StoreWindow
	if w < 4 {
		w = 4
	}
	for s := 0; s < bodyLen*4; s++ {
		if s%3 == 2 {
			bu.Ctx()
		}
		j := s % n
		bu.Op3To(ir.OpAdd, vars[j], vars[j], salt)
		bu.Op3To(ir.OpXor, salt, salt, vars[(s+1)%n])
	}
	bu.Emit(ir.Instr{Op: ir.OpStoreA, Def: ir.NoReg, A: ir.NoReg, B: salt,
		Imm: cfg.StoreBase + (int64(bodyLen) % w) &^ 3})
	bu.Halt()
	f, err := bu.Finish()
	if err != nil {
		panic("progen: nearcollision generator produced invalid code: " + err.Error()) //lint:invariant generator self-check: straight-line fixed skeleton; Finish failure means the generator itself is broken
	}
	return f
}
