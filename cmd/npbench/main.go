// Command npbench regenerates the paper's evaluation: every table and
// figure of §9 plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	npbench -all                 # everything
//	npbench -table 1             # Table 1 (benchmark properties)
//	npbench -table 2             # Table 2 (move overhead at minimal regs)
//	npbench -table 3             # Table 3 (ARA scenarios, spill vs share)
//	npbench -figure 14           # Figure 14 (SRA register savings)
//	npbench -ablations           # ablation studies
//	npbench -list                # list the built-in benchmarks
//	npbench -all -j 1            # serial run (output identical to -j N)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"npra/internal/bench"
	"npra/internal/experiments"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table 1, 2 or 3")
		figure    = flag.Int("figure", 0, "regenerate figure 14")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		scaling   = flag.Bool("scaling", false, "run the chip-scaling study (multi-PU, shared memory)")
		all       = flag.Bool("all", false, "run everything")
		list      = flag.Bool("list", false, "list built-in benchmarks")
		packets   = flag.Int("packets", experiments.DefaultPackets, "packets per thread")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for experiment fan-out (1 = serial; results are identical for any value)")
		timeout   = flag.Duration("timeout", 0, "per-allocation deadline (0 = none); expired allocations abort the experiment rather than report fallback numbers")
	)
	flag.Parse()
	experiments.SetWorkers(*jobs)
	experiments.SetTimeout(*timeout)
	if err := run(*table, *figure, *ablations, *scaling, *all, *list, *packets); err != nil {
		fmt.Fprintln(os.Stderr, "npbench:", err)
		os.Exit(1)
	}
}

func run(table, figure int, ablations, scaling, all, list bool, packets int) error {
	if list {
		fmt.Println("built-in benchmarks:")
		for _, b := range bench.All() {
			fmt.Printf("  %-14s [%-9s] %s\n", b.Name, b.Suite, b.Description)
		}
		return nil
	}
	ran := false
	if all || table == 1 {
		rows, err := experiments.Table1(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(rows))
		ran = true
	}
	if all || figure == 14 {
		rows, err := experiments.Figure14(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure14(rows))
		ran = true
	}
	if all || table == 2 {
		rows, err := experiments.Table2(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(rows))
		ran = true
	}
	if all || table == 3 {
		scs, err := experiments.Table3(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable3(scs))
		ran = true
	}
	if all || ablations {
		text, err := experiments.FormatAblations(packets)
		if err != nil {
			return err
		}
		fmt.Println(text)
		ran = true
	}
	if all || scaling {
		free, err := experiments.ClusterScaling(packets, 0)
		if err != nil {
			return err
		}
		contended, err := experiments.ClusterScaling(packets, 2)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatScaling(free, contended, 2))
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing to do: pass -all, -table N, -figure 14, -ablations, -scaling or -list")
	}
	return nil
}
