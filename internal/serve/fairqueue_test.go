package serve

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"npra/internal/faultinject"
)

func qjob(tenant, priority string) *job {
	return &job{tenant: tenant, priority: priority}
}

// TestFairQueueDRRWeights backlogs two tenants at 10:1 offered load
// with 3:1 weights and checks the drained order serves them in
// weight proportion, not arrival proportion.
func TestFairQueueDRRWeights(t *testing.T) {
	q := newFairQueue(200, 200, 200, 200, map[string]int{"heavy": 3, "light": 1})
	// 10:1 offered load: the heavy tenant floods first, so a FIFO would
	// serve ~100 heavy jobs before the first light one.
	for i := 0; i < 100; i++ {
		if err := q.push(qjob("heavy", "")); err != nil {
			t.Fatalf("push heavy #%d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := q.push(qjob("light", "")); err != nil {
			t.Fatalf("push light #%d: %v", i, err)
		}
	}

	// While both stay backlogged (the first 40 pops: light has 10 jobs,
	// so it cannot go idle before ~30 heavy are served at 3:1), served
	// counts must track the 3:1 weights.
	heavy, light := 0, 0
	for i := 0; i < 40; i++ {
		j, ok := q.pop(false)
		if !ok {
			t.Fatalf("pop #%d: queue empty early", i)
		}
		switch j.tenant {
		case "heavy":
			heavy++
		case "light":
			light++
		}
	}
	if light == 0 {
		t.Fatal("light tenant starved behind the heavy backlog")
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("served ratio heavy:light = %d:%d (%.2f), want ≈3.0 (weights 3:1)", heavy, light, ratio)
	}

	// The rest drains completely.
	rest := 0
	for {
		if _, ok := q.pop(false); !ok {
			break
		}
		rest++
	}
	if heavy+light+rest != 110 {
		t.Fatalf("drained %d jobs, want 110", heavy+light+rest)
	}
}

// TestFairQueueEqualWeightsInterleave checks the unweighted default:
// two backlogged tenants alternate regardless of offered load.
func TestFairQueueEqualWeightsInterleave(t *testing.T) {
	q := newFairQueue(100, 100, 100, 100, nil)
	for i := 0; i < 20; i++ {
		if err := q.push(qjob("a", "")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := q.push(qjob("b", "")); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 10; i++ {
		j, ok := q.pop(false)
		if !ok {
			t.Fatal("queue empty early")
		}
		order = append(order, j.tenant)
	}
	got := strings.Join(order, "")
	if got != "ababababab" {
		t.Fatalf("pop order = %q, want strict alternation while both are backlogged", got)
	}
}

// TestFairQueueShedTiers drives the backlog through the shed
// thresholds and checks each priority class is refused at its own
// tier — low first, then normal, high only at capacity.
func TestFairQueueShedTiers(t *testing.T) {
	// capacity 10, low sheds at 4, normal at 7.
	q := newFairQueue(10, 10, 4, 7, nil)

	fill := func(n int, priority string) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := q.push(qjob("t", priority)); err != nil {
				t.Fatalf("push %s at depth %d: %v", priority, q.depth(), err)
			}
		}
	}
	wantRefusal := func(priority, reason string) {
		t.Helper()
		err := q.push(qjob("t", priority))
		if err == nil {
			t.Fatalf("push %s at depth %d admitted, want refusal %s", priority, q.depth(), reason)
		}
		var oe *overloadError
		if !errors.As(err, &oe) || oe.reason != reason {
			t.Fatalf("push %s: err %v, want reason %s", priority, err, reason)
		}
		if !errors.Is(err, errOverload) {
			t.Fatalf("refusal %v does not wrap errOverload", err)
		}
	}

	fill(4, "low") // depth 4 = shedLow
	wantRefusal("low", admitShedLow)
	fill(3, "normal") // depth 7 = shedNormal
	wantRefusal("normal", admitShedNormal)
	wantRefusal("", admitShedNormal) // empty priority defaults to normal
	fill(3, "high")                  // depth 10 = capacity
	wantRefusal("high", admitQueueFull)
}

// TestFairQueueTenantCap checks one tenant's backlog cap refuses only
// that tenant.
func TestFairQueueTenantCap(t *testing.T) {
	q := newFairQueue(100, 3, 100, 100, nil)
	for i := 0; i < 3; i++ {
		if err := q.push(qjob("greedy", "")); err != nil {
			t.Fatal(err)
		}
	}
	err := q.push(qjob("greedy", ""))
	var oe *overloadError
	if !errors.As(err, &oe) || oe.reason != admitTenantFull {
		t.Fatalf("4th greedy push: err %v, want reason %s", err, admitTenantFull)
	}
	if err := q.push(qjob("modest", "")); err != nil {
		t.Fatalf("other tenant refused alongside the capped one: %v", err)
	}
}

// TestFairQueueClose checks close refuses new pushes but drains what
// was already admitted.
func TestFairQueueClose(t *testing.T) {
	q := newFairQueue(10, 10, 10, 10, nil)
	if err := q.push(qjob("t", "")); err != nil {
		t.Fatal(err)
	}
	q.close()
	err := q.push(qjob("t", ""))
	var oe *overloadError
	if !errors.As(err, &oe) || oe.reason != admitClosed {
		t.Fatalf("push after close: err %v, want reason %s", err, admitClosed)
	}
	if _, ok := q.pop(true); !ok {
		t.Fatal("queued job lost on close")
	}
	if _, ok := q.pop(true); ok {
		t.Fatal("pop returned a job from a closed empty queue")
	}
}

// TestRetryAfterMonotone pins retryAfterHint's contract: monotonically
// non-decreasing in backlog depth and in per-job service time, floored
// by cfg.RetryAfter, never below 1s.
func TestRetryAfterMonotone(t *testing.T) {
	floor := time.Second
	perJobs := []time.Duration{0, time.Millisecond, 40 * time.Millisecond, 300 * time.Millisecond, 2 * time.Second}
	depths := []int{0, 1, 2, 5, 10, 50, 200}

	for _, perJob := range perJobs {
		prev := 0
		for _, depth := range depths {
			got := retryAfterHint(depth, perJob, floor)
			if got < 1 {
				t.Fatalf("hint(%d, %v) = %d, want >= 1", depth, perJob, got)
			}
			if got < int(floor/time.Second) {
				t.Fatalf("hint(%d, %v) = %d, below the %v floor", depth, perJob, got, floor)
			}
			if got < prev {
				t.Fatalf("hint not monotone in depth: hint(%d, %v) = %d after %d", depth, perJob, got, prev)
			}
			prev = got
		}
	}
	for _, depth := range depths {
		prev := 0
		for _, perJob := range perJobs {
			got := retryAfterHint(depth, perJob, floor)
			if got < prev {
				t.Fatalf("hint not monotone in perJob: hint(%d, %v) = %d after %d", depth, perJob, got, prev)
			}
			prev = got
		}
	}
	// Spot values: 10 queued jobs at 500ms each = 5.5s → ceil 6.
	if got := retryAfterHint(10, 500*time.Millisecond, time.Second); got != 6 {
		t.Fatalf("hint(10, 500ms) = %d, want 6", got)
	}
}

// TestDeadlineHeader exercises X-Deadline-Ms: malformed → 400,
// exhausted budget → 504 without touching the engine, and a small
// budget clamps the request deadline (504 when the engine is slower).
func TestDeadlineHeader(t *testing.T) {
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 400 * time.Millisecond, Count: 1})
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{MaxBatch: 1})

	postWithDeadline := func(budget string, seed int64) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/allocate",
			strings.NewReader(progenBody(t, 32, 0, seed)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(DeadlineHeader, budget)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			t.Fatal(rerr)
		}
		return resp, blob
	}

	resp, blob := postWithDeadline("soon", 71)
	decodeErr(t, resp, blob, http.StatusBadRequest, "invalid")

	resp, blob = postWithDeadline("0", 72)
	decodeErr(t, resp, blob, http.StatusGatewayTimeout, "timeout")

	resp, blob = postWithDeadline("-5", 73)
	decodeErr(t, resp, blob, http.StatusGatewayTimeout, "timeout")

	// 50ms of budget against a 400ms engine delay: the clamped deadline
	// expires mid-allocation and the engine degrades to its static
	// partition (the PR-2 failure model) — proof the header reached the
	// engine context. Under -race the budget can instead expire before
	// the engine starts, which surfaces as the pre-engine 504; either
	// outcome proves the clamp.
	resp, blob = postWithDeadline("50", 74)
	if resp.StatusCode == http.StatusGatewayTimeout {
		decodeErr(t, resp, blob, http.StatusGatewayTimeout, "timeout")
		return
	}
	out := decodeOK(t, resp, blob)
	if !out.Degraded || !strings.Contains(out.Cause, "deadline") {
		t.Fatalf("Degraded=%v Cause=%q, want a deadline-degraded result under a 50ms budget", out.Degraded, out.Cause)
	}
}

// TestTenantHeaderBounds checks an oversized X-Tenant is a 400 (tenant
// strings key metric labels and queue memory).
func TestTenantHeaderBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/allocate",
		strings.NewReader(progenBody(t, 32, 0, 75)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, strings.Repeat("x", maxTenantLen+1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for an oversized tenant header", resp.StatusCode)
	}
}

// TestBadPriority400 checks an unknown priority class is refused as
// invalid by wire validation.
func TestBadPriority400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"priority":"urgent","threads":[{"progen":{"seed":76}}],"nreg":32}`
	resp, blob := post(t, ts.URL, body)
	decodeErr(t, resp, blob, http.StatusBadRequest, "invalid")
}

// TestPerTenantMetrics posts under two tenants and checks the
// per-tenant admitted/completed counters and the rendered series.
func TestPerTenantMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i, tenant := range []string{"alice", "alice", "bob"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/allocate",
			strings.NewReader(progenBody(t, 32, 0, 80+int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s request %d: status %d", tenant, i, resp.StatusCode)
		}
	}

	snap := s.Metrics()
	if snap.TenantAdmitted["alice"] != 2 || snap.TenantAdmitted["bob"] != 1 {
		t.Fatalf("TenantAdmitted = %v, want alice:2 bob:1", snap.TenantAdmitted)
	}
	if snap.TenantCompleted["alice"] != 2 || snap.TenantCompleted["bob"] != 1 {
		t.Fatalf("TenantCompleted = %v, want alice:2 bob:1", snap.TenantCompleted)
	}
	if snap.ServiceEWMA <= 0 {
		t.Fatalf("ServiceEWMA = %v, want > 0 after served jobs", snap.ServiceEWMA)
	}
	if snap.RetryAfterS < 1 {
		t.Fatalf("RetryAfterS = %d, want >= 1", snap.RetryAfterS)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`npserve_tenant_admitted_total{tenant="alice"} 2`,
		`npserve_tenant_completed_total{tenant="bob"} 1`,
		"npserve_service_time_ewma_ms",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestShedMetricsReason wedges the engine, drives a low-priority
// request into the shed tier, and checks the refusal is accounted
// under its reason and tenant.
func TestShedMetricsReason(t *testing.T) {
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 400 * time.Millisecond, Count: 1})
	t.Cleanup(faultinject.Reset)
	// MaxQueue 4, low sheds at depth 2 (frac 0.5).
	s, ts := newTestServer(t, Config{MaxQueue: 4, MaxBatch: 1, ShedLowFrac: 0.5})

	done := make(chan struct{}, 3)
	launch := func(seed int64) {
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := http.Post(ts.URL+"/allocate", "application/json",
				strings.NewReader(progenBody(t, 32, 0, seed)))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}()
	}
	launch(90) // wedged in the engine
	waitFor(t, "the engine to pick up the first job", func() bool {
		snap := s.Metrics()
		return snap.Batches == 1 && snap.QueueDepth == 0
	})
	launch(91)
	launch(92)
	waitFor(t, "the backlog to reach the low-shed tier", func() bool { return s.Metrics().QueueDepth == 2 })

	// Low priority is shed at depth 2; normal still fits.
	lowBody := `{"priority":"low","threads":[{"progen":{"seed":93}}],"nreg":32}`
	resp, blob := post(t, ts.URL, lowBody)
	decodeErr(t, resp, blob, http.StatusTooManyRequests, "overload")

	snap := s.Metrics()
	if snap.Sheds[admitShedLow] != 1 {
		t.Errorf("Sheds = %v, want %s:1", snap.Sheds, admitShedLow)
	}
	if snap.TenantOverloads[defaultTenant] != 1 {
		t.Errorf("TenantOverloads = %v, want default:1", snap.TenantOverloads)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}
