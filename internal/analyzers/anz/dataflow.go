package anz

import "sort"

// The second layer of the flow framework: a worklist-driven forward
// dataflow solver over the CFG in cfg.go. Analyses plug in a lattice —
// a fact type with bottom, join, equality, and a per-block transfer
// function — and get back the fixpoint fact at the entry and exit of
// every block. The solver is deterministic (blocks are processed in
// ascending index order within the worklist) so diagnostics derived
// from facts are stable across runs, matching the repo's detlint
// stance.
//
// Termination: the solver iterates until no block's output fact
// changes. That is guaranteed for lattices of finite height with a
// monotone Transfer and a Join that only moves up the lattice — the
// property tests in dataflow_test.go check both on the lattices the
// suite ships.

// A Lattice defines one forward dataflow analysis over facts of type T.
type Lattice[T any] interface {
	// Bottom is the "no information yet" fact seeded at every block
	// except Entry, and the identity of Join.
	Bottom() T

	// Entry is the fact holding at function entry.
	Entry() T

	// Join merges the facts flowing in from two predecessors. It must
	// be commutative, associative, and idempotent.
	Join(a, b T) T

	// Transfer applies one block's effect to its input fact. It must
	// not mutate in; facts are treated as values.
	Transfer(b *Block, in T) T

	// Equal reports whether two facts carry the same information; the
	// solver stops when every block's fact is Equal to the previous
	// round's.
	Equal(a, b T) bool
}

// Facts is the result of a dataflow run: the fact holding immediately
// before and after each block, indexed by Block.Index.
type Facts[T any] struct {
	In  []T
	Out []T
}

// Solve runs the forward worklist algorithm to fixpoint.
func Solve[T any](g *CFG, l Lattice[T]) Facts[T] {
	n := len(g.Blocks)
	f := Facts[T]{In: make([]T, n), Out: make([]T, n)}
	preds := make([][]*Block, n)
	for _, b := range g.Blocks {
		f.In[b.Index] = l.Bottom()
		f.Out[b.Index] = l.Bottom()
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	f.In[g.Entry.Index] = l.Entry()

	inWork := make([]bool, n)
	visited := make([]bool, n)
	work := []int{g.Entry.Index}
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		// Deterministic order: always take the lowest-index block. The
		// worklist is tiny (function-sized), so the sort is noise.
		sort.Ints(work)
		idx := work[0]
		work = work[1:]
		inWork[idx] = false
		b := g.Blocks[idx]

		in := f.In[idx]
		if len(preds[idx]) > 0 {
			in = l.Bottom()
			if idx == g.Entry.Index {
				in = l.Entry()
			}
			for _, p := range preds[idx] {
				in = l.Join(in, f.Out[p.Index])
			}
		}
		f.In[idx] = in
		out := l.Transfer(b, in)
		// Successors must be enqueued on a block's first visit even when
		// the transfer is the identity (out still Equal to the seeded
		// bottom) — otherwise a no-op entry block stops propagation cold
		// and every downstream fact stays bottom.
		if l.Equal(out, f.Out[idx]) && visited[idx] {
			continue
		}
		visited[idx] = true
		f.Out[idx] = out
		for _, s := range b.Succs {
			if !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s.Index)
			}
		}
	}
	return f
}

// StringSet is the workhorse fact for the concurrency analyzers: a
// small sorted set of strings (lock paths, flag names) with value
// semantics. The zero value is the empty set.
type StringSet struct{ elems []string }

// NewStringSet builds a set from elements.
func NewStringSet(elems ...string) StringSet {
	s := StringSet{}
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// Has reports membership.
func (s StringSet) Has(e string) bool {
	i := sort.SearchStrings(s.elems, e)
	return i < len(s.elems) && s.elems[i] == e
}

// Add returns the set with e added; the receiver is unchanged.
func (s StringSet) Add(e string) StringSet {
	if s.Has(e) {
		return s
	}
	out := make([]string, 0, len(s.elems)+1)
	i := sort.SearchStrings(s.elems, e)
	out = append(out, s.elems[:i]...)
	out = append(out, e)
	out = append(out, s.elems[i:]...)
	return StringSet{elems: out}
}

// Remove returns the set without e; the receiver is unchanged.
func (s StringSet) Remove(e string) StringSet {
	i := sort.SearchStrings(s.elems, e)
	if i >= len(s.elems) || s.elems[i] != e {
		return s
	}
	out := make([]string, 0, len(s.elems)-1)
	out = append(out, s.elems[:i]...)
	out = append(out, s.elems[i+1:]...)
	return StringSet{elems: out}
}

// Union returns the union of two sets.
func (s StringSet) Union(t StringSet) StringSet {
	out := s
	for _, e := range t.elems {
		out = out.Add(e)
	}
	return out
}

// Intersect returns the intersection of two sets.
func (s StringSet) Intersect(t StringSet) StringSet {
	out := StringSet{}
	for _, e := range s.elems {
		if t.Has(e) {
			out = out.Add(e)
		}
	}
	return out
}

// Equal reports set equality.
func (s StringSet) Equal(t StringSet) bool {
	if len(s.elems) != len(t.elems) {
		return false
	}
	for i := range s.elems {
		if s.elems[i] != t.elems[i] {
			return false
		}
	}
	return true
}

// Len returns the cardinality.
func (s StringSet) Len() int { return len(s.elems) }

// Elems returns the elements in sorted order. The slice is shared; do
// not mutate.
func (s StringSet) Elems() []string { return s.elems }
