// Package core implements the paper's primary contribution: balancing
// register allocation across the threads of a multithreaded network
// processor (PLDI 2004, Zhuang & Pande).
//
// Each processing unit runs Nthd threads over one shared file of Nreg
// general-purpose registers. Context switches save only the PC, so any
// value live across a switch must sit in a register no other thread
// touches (a private register); values confined between switches may use
// registers shared by all threads. The allocator decides, per thread, how
// many private registers (PR) and shared registers (SR) it gets —
// satisfying
//
//	sum_i PR_i + max_i SR_i <= Nreg
//
// — starting from each thread's move-free demand (MaxPR, MaxSR) and
// greedily reducing whichever register costs the fewest inserted move
// instructions (Figure 8 of the paper), with the intra-thread allocator
// (package intra) pricing and realizing each reduction by live-range
// splitting.
//
// # Failure model
//
// The allocation entry points never panic the caller: panics anywhere in
// the pipeline (including inside parallel workers) are recovered at the
// API boundary and surfaced as errors wrapping ErrInternal. Every error
// wraps exactly one taxonomy sentinel (ErrInvalid, ErrInfeasible,
// ErrTimeout, ErrInternal; see errors.go), and on timeout or internal
// failure the allocator degrades to the hardware's even static partition
// (PR = NReg/Nthd, SR = 0) instead of failing, returning a verified
// Allocation with Degraded set — the paper's own baseline is always a
// correct fallback. Deadlines and cancellation arrive through the
// context accepted by AllocateARACtx / AllocateSRACtx.
package core

import (
	"context"
	"fmt"
	"time"

	"npra/internal/estimate"
	"npra/internal/faultinject"
	"npra/internal/intra"
	"npra/internal/ir"
	"npra/internal/parallel"
)

// Config parameterizes a processing unit.
type Config struct {
	// NReg is the size of the shared register file (128 on the IXP1200).
	NReg int

	// Critical optionally weights each thread's move cost; a weight > 1
	// makes the inter-thread allocator more reluctant to take registers
	// from that thread. Nil means uniform weights. Length must match the
	// thread count when non-nil.
	Critical []float64

	// Workers bounds the goroutines used to price reduction candidates
	// (and to run the initial per-thread Solve fan-out and the SRA
	// sweep). 0 means runtime.GOMAXPROCS(0); 1 runs serially. The result
	// is bit-identical for every worker count: pricing is a pure fan-out
	// over per-thread allocators and the winning reduction is selected
	// serially with lowest-thread-index tie-breaking.
	Workers int

	// FuncCache, when non-nil, supplies per-function allocators whose
	// analyses and memo tables survive across engine invocations
	// (internal/funccache). Nil builds fresh allocators per invocation.
	// The allocation result is bit-identical either way; only the work
	// repeated per request changes. Allocators drawn from the source are
	// returned on completion, and discarded instead when the run fails,
	// degrades or panics — error results never warm the cache.
	FuncCache AllocatorSource

	// RewriteCache, when non-nil, memoizes the rewrite phase: finalize
	// consults it before emitting code and registers canonical-palette
	// emissions with it on a miss (internal/funccache.RewriteCache is the
	// process-wide implementation). Cached bodies are frozen and shared
	// by pointer; the result is textually identical to a fresh rewrite.
	// Nil rewrites every thread from scratch (into a per-call ir.Arena).
	// The degrade path never consults the cache.
	RewriteCache RewriteSource
}

// ThreadAlloc is the allocation decided for one thread.
type ThreadAlloc struct {
	Name   string
	PR, SR int // private registers granted, shared registers usable
	Cost   int // move instructions the split schedule implies

	Bounds     estimate.Bounds
	LiveRanges int // pieces after splitting

	PrivBase int // first private register index in the file

	F     *ir.Func // rewritten code over physical registers
	Stats intra.RewriteStats

	sol *intra.Solution
}

// Allocation is the result for a whole processing unit.
type Allocation struct {
	NReg    int
	SGR     int // globally shared registers (max_i SR used)
	Threads []*ThreadAlloc

	// Degraded marks an allocation produced by the static-partition
	// fallback (PR = NReg/Nthd, SR = 0) after the balancing allocator
	// timed out or failed internally. A degraded allocation is still
	// verified and semantics-preserving — it just forgoes the paper's
	// register-sharing win. Cause carries the failure that triggered the
	// fallback; it wraps ErrTimeout or ErrInternal.
	Degraded bool
	Cause    error

	// SolveCache aggregates the Solve-point cache counters of every
	// intra-thread allocator this allocation consulted.
	SolveCache intra.CacheStats

	// Phases aggregates the per-phase wall-clock breakdown (analysis,
	// estimation, chain coloring, rewriting) across the same allocators,
	// plus the rewrite time spent in finalize.
	Phases intra.PhaseStats
}

// TotalRegisters returns sum(PR) + SGR, the register-file footprint.
func (al *Allocation) TotalRegisters() int {
	total := al.SGR
	for _, t := range al.Threads {
		total += t.PR
	}
	return total
}

// SharedBase returns the first register index of the shared bank.
func (al *Allocation) SharedBase() int { return al.NReg - al.SGR }

// AllocateARA runs the asymmetric inter-thread allocation (different code
// on each thread) for the given thread functions, with no deadline.
func AllocateARA(funcs []*ir.Func, cfg Config) (*Allocation, error) {
	return AllocateARACtx(context.Background(), funcs, cfg)
}

// AllocateARACtx is AllocateARA under a context: the allocator checks
// ctx between setup solves, pricing probes and greedy rounds, and on
// expiry (or cancellation) degrades to the static partition rather than
// running on. It never panics: internal panics come back as errors
// wrapping ErrInternal (after the same degradation attempt). The only
// error classes that escape without a fallback attempt are ErrInvalid
// and ErrInfeasible — for those the static partition cannot help.
func AllocateARACtx(ctx context.Context, funcs []*ir.Func, cfg Config) (*Allocation, error) {
	if len(funcs) == 0 {
		return nil, invalidf("no threads")
	}
	if cfg.NReg <= 0 {
		return nil, invalidf("NReg = %d", cfg.NReg)
	}
	if cfg.Critical != nil && len(cfg.Critical) != len(funcs) {
		return nil, invalidf("%d critical weights for %d threads", len(cfg.Critical), len(funcs))
	}
	alloc, err := runProtected(func() (*Allocation, error) { return allocateARA(ctx, funcs, cfg) })
	if err == nil {
		return alloc, nil
	}
	err = classify(err)
	if !degradable(err) {
		return nil, err
	}
	return degrade(funcs, cfg, err)
}

// runProtected invokes fn with a panic barrier: a panic on the calling
// goroutine — including one transported out of a parallel worker —
// becomes a *PanicError (which wraps ErrInternal).
func runProtected(fn func() (*Allocation, error)) (alloc *Allocation, err error) {
	defer func() {
		if r := recover(); r != nil {
			alloc, err = nil, recovered(r)
		}
	}()
	return fn()
}

// allocateARA is the balancing allocator proper (paper Figure 8). Errors
// come back unclassified; AllocateARACtx maps them onto the taxonomy.
func allocateARA(ctx context.Context, funcs []*ir.Func, cfg Config) (*Allocation, error) {
	weight := func(i int) float64 {
		if cfg.Critical == nil {
			return 1
		}
		return cfg.Critical[i]
	}

	workers := parallel.Workers(cfg.Workers)
	n := len(funcs)

	// Threads running identical code (Table 3's md5 x2, any SRA-like
	// mix) share one incremental allocator and thus one Solve cache:
	// the program is analyzed once per distinct code body and duplicate
	// probes become cache hits. groups lists, per distinct body, the
	// member thread indices in ascending order; all fan-out below is
	// per group, because an allocator is not safe for concurrent use.
	var groups [][]int
	byCode := make(map[string]int)
	for i, f := range funcs {
		key := f.Format()
		g, ok := byCode[key]
		if !ok {
			g = len(groups)
			byCode[key] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}

	als := make([]*intra.Allocator, n)
	bounds := make([]estimate.Bounds, n)
	pr := make([]int, n)
	sr := make([]int, n)
	sols := make([]*intra.Solution, n)

	// Checked-out allocators go back to the source exactly once, from
	// this goroutine, after every fan-out below has fully drained
	// (parallel.MapErr always waits for in-flight calls). ok is flipped
	// only on the clean-return path, so an error or a panic unwinding
	// through here discards the allocators instead of recycling them —
	// this defer must NOT recover: the panic barrier lives in
	// runProtected. Counters read from any acquired allocator cover the
	// current run only (a warm source resets them when pooling), so the
	// final stats aggregation needs no before/after bookkeeping.
	checkins := make([]func(bool), len(groups))
	ok := false
	defer func() {
		for _, checkin := range checkins {
			if checkin != nil {
				checkin(ok)
			}
		}
	}()

	// Per-group analysis and the first Solves are independent across
	// groups, so the setup fans out.
	if _, err := parallel.MapErr(ctx, workers, len(groups), func(g int) (struct{}, error) {
		f0 := funcs[groups[g][0]]
		al, checkin, err := acquire(cfg, f0)
		if err != nil {
			return struct{}{}, fmt.Errorf("core: thread %d (%s): %w", groups[g][0], f0.Name, err)
		}
		checkins[g] = checkin
		b := al.Bounds()
		for _, i := range groups[g] {
			if err := parallel.CtxErr(ctx); err != nil {
				return struct{}{}, err
			}
			if err := faultinject.Fire(ctx, faultinject.SiteSolve); err != nil {
				return struct{}{}, err
			}
			als[i] = al
			bounds[i] = b
			// Start PR at the move-free demand and SR with enough slack
			// that the monotone reduction loop can reach every frontier
			// point: a thread at (MaxPR, MaxSR) could never drop PR below
			// MaxR - SR without first *raising* SR, which the paper's
			// loop has no move for. SR slack beyond what the thread uses
			// is free (zero-cost SR reductions trim it immediately when
			// it matters).
			pr[i], sr[i] = b.MaxPR, b.MaxR-b.MinPR
			sol, err := al.Solve(pr[i], sr[i])
			if err != nil {
				return struct{}{}, fmt.Errorf("core: thread %d (%s): %w", i, funcs[i].Name, err)
			}
			sols[i] = sol
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}

	demand := func() int {
		total, maxSR := 0, 0
		for i := 0; i < n; i++ {
			total += pr[i]
			if sr[i] > maxSR {
				maxSR = sr[i]
			}
		}
		return total + maxSR
	}

	// candidates holds one thread's priced reduction options for one
	// round. A nil Solution means the option is illegal or infeasible
	// for that thread this round.
	type candidates struct {
		aSol *intra.Solution // Option A: (pr-1, sr)
		bSol *intra.Solution // Option B membership: (pr, sr-1)
		bIn  bool            // thread belongs to the maximal-SR set
		cSol *intra.Solution // Option C trade: (pr-1, sr+1)
	}

	// Greedy reduction (paper Figure 8): while over budget, price every
	// single-register reduction and take the cheapest. Pricing fans out
	// per group — each group's candidate Solves run serially on its own
	// allocator (allocators are not safe for concurrent use, but
	// distinct groups' allocators never share mutable state) — and the
	// winner is then selected serially: Option A in ascending thread
	// order, then B, then C, with strict less-than comparisons, so the
	// lowest thread index (and earliest option) wins equal costs and the
	// allocation is identical for every worker count.
	for demand() > cfg.NReg {
		if err := parallel.CtxErr(ctx); err != nil {
			return nil, err
		}
		maxSR := 0
		for i := 0; i < n; i++ {
			if sr[i] > maxSR {
				maxSR = sr[i]
			}
		}
		curDemand := demand()

		price := func(i int) candidates {
			var cand candidates
			b := bounds[i]
			// Option A: reduce this thread's PR by 1.
			if pr[i]-1 >= b.MinPR && pr[i]-1+sr[i] >= b.MinR {
				if sol, err := als[i].Solve(pr[i]-1, sr[i]); err == nil {
					cand.aSol = sol
				}
			}
			// Option B: every maximal SR drops by 1 together (only that
			// lowers the max term); this thread prices its own share.
			if maxSR > 0 && sr[i] == maxSR {
				cand.bIn = true
				if pr[i]+sr[i]-1 >= b.MinR {
					if sol, err := als[i].Solve(pr[i], sr[i]-1); err == nil {
						cand.bSol = sol
					}
				}
			}
			// Option C (beyond the paper's Figure 8): a trade. A thread
			// can wedge at its R = MinR floor with PR still above MinPR —
			// then neither a plain PR nor SR reduction is legal, but
			// converting a private register into a shared one (PR-1,
			// SR+1) shrinks the global demand when that thread's SR is
			// below the maximum, and even a demand-neutral trade is
			// useful as a stepping stone (it raises the shared pool
			// another thread's trade can then hide under). Termination:
			// every step either shrinks the demand or shrinks some PR,
			// and neither ever grows.
			if pr[i]-1 >= b.MinPR && pr[i]-1+sr[i] < b.MinR {
				tot, newMaxSR := 0, 0
				for j := 0; j < n; j++ {
					p, s := pr[j], sr[j]
					if j == i {
						p, s = p-1, s+1
					}
					tot += p
					if s > newMaxSR {
						newMaxSR = s
					}
				}
				if tot+newMaxSR <= curDemand {
					if sol, err := als[i].Solve(pr[i]-1, sr[i]+1); err == nil {
						cand.cSol = sol
					}
				}
			}
			return cand
		}
		probes := make([]candidates, n)
		if _, err := parallel.MapErr(ctx, workers, len(groups), func(g int) (struct{}, error) {
			for _, i := range groups[g] {
				if err := parallel.CtxErr(ctx); err != nil {
					return struct{}{}, err
				}
				if err := faultinject.Fire(ctx, faultinject.SitePricing); err != nil {
					return struct{}{}, err
				}
				probes[i] = price(i)
			}
			return struct{}{}, nil
		}); err != nil {
			return nil, err
		}

		type option struct {
			deltaCost float64
			apply     func()
		}
		var best *option

		// Option A, ascending thread order.
		for i := 0; i < n; i++ {
			sol := probes[i].aSol
			if sol == nil {
				continue
			}
			d := weight(i) * float64(sol.Cost-sols[i].Cost)
			if best == nil || d < best.deltaCost {
				ci, csol := i, sol
				best = &option{deltaCost: d, apply: func() {
					pr[ci]--
					sols[ci] = csol
				}}
			}
		}

		// Option B: aggregate the maximal-SR members; infeasible if any
		// member cannot give up a register.
		if maxSR > 0 {
			feasible := true
			var newSols []*intra.Solution
			var members []int
			total := 0.0
			for i := 0; i < n; i++ {
				if !probes[i].bIn {
					continue
				}
				if probes[i].bSol == nil {
					feasible = false
					break
				}
				total += weight(i) * float64(probes[i].bSol.Cost-sols[i].Cost)
				newSols = append(newSols, probes[i].bSol)
				members = append(members, i)
			}
			if feasible && (best == nil || total < best.deltaCost) {
				best = &option{deltaCost: total, apply: func() {
					for k, i := range members {
						sr[i]--
						sols[i] = newSols[k]
					}
				}}
			}
		}

		// Option C, ascending thread order.
		for i := 0; i < n; i++ {
			sol := probes[i].cSol
			if sol == nil {
				continue
			}
			d := weight(i) * float64(sol.Cost-sols[i].Cost)
			if best == nil || d < best.deltaCost {
				ci, csol := i, sol
				best = &option{deltaCost: d, apply: func() {
					pr[ci]--
					sr[ci]++
					sols[ci] = csol
				}}
			}
		}

		if best == nil {
			detail := ""
			for i := 0; i < n; i++ {
				b := bounds[i]
				detail += fmt.Sprintf(" [%d: PR=%d SR=%d minPR=%d minR=%d]", i, pr[i], sr[i], b.MinPR, b.MinR)
			}
			return nil, infeasiblef(
				"cannot fit %d threads into %d registers (demand %d at the splitting lower bounds;%s)",
				n, cfg.NReg, demand(), detail)
		}
		best.apply()
	}

	if err := faultinject.Fire(ctx, faultinject.SiteFinalize); err != nil {
		return nil, err
	}
	alloc, err := finalize(ctx, funcs, als, pr, sr, sols, cfg)
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		alloc.SolveCache.Add(als[g[0]].CacheStats())
		alloc.Phases.Add(als[g[0]].PhaseStats())
	}
	ok = true
	return alloc, nil
}

// finalize maps palette colors onto the physical register file and
// rewrites every thread, checking ctx between threads (rewrites are the
// tail of the pipeline's work; a deadline must be able to land here too).
// The degrade path passes context.Background(): the fallback is the
// bounded last resort and must not itself be cancelable.
//
// With cfg.RewriteCache set, each thread's body is looked up by
// (FuncKey, PR, SR, privBase, sharedBase) and — on a miss — emitted
// once in canonical form (identity palette) and registered with the
// cache, which relocates it onto the concrete palette. Cache time is
// booked under RewriteCachedNS, fresh emission under RewriteNS. With no
// cache the bodies are emitted directly into a per-call ir.Arena so the
// cold path costs the collector a few slabs instead of one allocation
// per block.
func finalize(ctx context.Context, funcs []*ir.Func, als []*intra.Allocator, pr, sr []int, sols []*intra.Solution, cfg Config) (*Allocation, error) {
	n := len(funcs)
	nreg := cfg.NReg
	alloc := &Allocation{NReg: nreg}
	var arena *ir.Arena
	if cfg.RewriteCache == nil {
		arena = new(ir.Arena)
	}

	// SGR: shared registers actually needed is the max over threads of
	// (palette size - private grant), never negative.
	sgr := 0
	for i := 0; i < n; i++ {
		if need := sols[i].Ctx.Size - pr[i]; need > sgr {
			sgr = need
		}
	}
	alloc.SGR = sgr
	sharedBase := nreg - sgr

	base := 0
	for i := 0; i < n; i++ {
		if err := parallel.CtxErr(ctx); err != nil {
			return nil, err
		}
		sctx := sols[i].Ctx
		if base+pr[i] > sharedBase {
			return nil, internalf("private registers overflow into shared bank")
		}
		rwStart := time.Now() //lint:ignore detlint phase-timing observability only; duration never feeds an allocation decision
		var nf *ir.Func
		var stats intra.RewriteStats
		if rc := cfg.RewriteCache; rc != nil {
			privBase, shBase := ir.Reg(base), ir.Reg(sharedBase)
			if hit, hstats, ok := rc.LookupRewrite(funcs[i], pr[i], sr[i], privBase, shBase); ok {
				nf, stats = hit, hstats
				alloc.Phases.RewriteCachedNS += time.Since(rwStart).Nanoseconds()
			} else {
				// Emit once in canonical form — the identity palette maps
				// color c to register c — and let the cache relocate it
				// onto this palette (and any future one at the same grant).
				identity := make([]ir.Reg, sctx.Size)
				for c := range identity {
					identity[c] = ir.Reg(c)
				}
				canon, cstats, err := intra.Rewrite(sctx, identity)
				if err != nil {
					return nil, internalf("thread %d (%s): rewrite: %v", i, funcs[i].Name, err)
				}
				nf = rc.StoreRewrite(funcs[i], pr[i], sr[i], privBase, shBase, canon, cstats)
				stats = cstats
				alloc.Phases.RewriteNS += time.Since(rwStart).Nanoseconds()
			}
		} else {
			phys := make([]ir.Reg, sctx.Size)
			for c := 0; c < sctx.Size; c++ {
				switch {
				case c < pr[i]:
					phys[c] = ir.Reg(base + c)
				default:
					phys[c] = ir.Reg(sharedBase + (c - pr[i]))
				}
			}
			var err error
			nf, stats, err = intra.RewriteInto(sctx, phys, arena)
			alloc.Phases.RewriteNS += time.Since(rwStart).Nanoseconds()
			if err != nil {
				return nil, internalf("thread %d (%s): rewrite: %v", i, funcs[i].Name, err)
			}
		}
		alloc.Threads = append(alloc.Threads, &ThreadAlloc{
			Name:       funcs[i].Name,
			PR:         pr[i],
			SR:         sr[i],
			Cost:       sols[i].Cost,
			Bounds:     als[i].Bounds(),
			LiveRanges: len(sctx.Pieces),
			PrivBase:   base,
			F:          nf,
			Stats:      stats,
			sol:        sols[i],
		})
		base += pr[i]
	}
	return alloc, nil
}

// AllocateSRA solves the symmetric problem (the same code on all nthd
// threads) exactly, as §8 of the paper suggests: traverse the 1-D space
// nthd*PR + SR <= NReg and keep the cheapest (fewest moves) solution,
// breaking ties toward the smallest register footprint.
//
// With cfg.Workers != 1 the sweep fans out: the candidate (PR, SR) list
// is split into contiguous chunks, each priced by its own allocator over
// the shared analysis, and the winner is selected by a serial scan in
// ascending-PR order with strict comparisons — the same point the serial
// sweep picks, since Solve is a pure function of the budget.
func AllocateSRA(f *ir.Func, nthd int, cfg Config) (*Allocation, error) {
	return AllocateSRACtx(context.Background(), f, nthd, cfg)
}

// AllocateSRACtx is AllocateSRA under a context, with the same failure
// model as AllocateARACtx: typed errors, panic recovery at the boundary,
// and static-partition degradation on timeout or internal failure.
func AllocateSRACtx(ctx context.Context, f *ir.Func, nthd int, cfg Config) (*Allocation, error) {
	if f == nil {
		return nil, invalidf("nil function")
	}
	if nthd <= 0 {
		return nil, invalidf("nthd = %d", nthd)
	}
	if cfg.NReg <= 0 {
		return nil, invalidf("NReg = %d", cfg.NReg)
	}
	alloc, err := runProtected(func() (*Allocation, error) { return allocateSRA(ctx, f, nthd, cfg) })
	if err == nil {
		return alloc, nil
	}
	err = classify(err)
	if !degradable(err) {
		return nil, err
	}
	funcs := make([]*ir.Func, nthd)
	for i := range funcs {
		funcs[i] = f
	}
	return degrade(funcs, cfg, err)
}

func allocateSRA(ctx context.Context, f *ir.Func, nthd int, cfg Config) (*Allocation, error) {
	workers := parallel.Workers(cfg.Workers)
	al, checkin, err := acquire(cfg, f)
	if err != nil {
		return nil, err
	}
	// Same checkin discipline as allocateARA: return the allocator once,
	// from this goroutine, discarding it unless the run finished cleanly.
	ok := false
	defer func() { checkin(ok) }()
	b := al.Bounds()

	// The 1-D candidate frontier: for each PR, the largest useful SR.
	type cand struct{ p, s int }
	var cands []cand
	for p := b.MinPR; p <= cfg.NReg/nthd; p++ {
		srMax := cfg.NReg - nthd*p
		if srMax < 0 {
			break
		}
		s := srMax
		if cap := b.MaxR - p; s > cap {
			if cap < 0 {
				cap = 0
			}
			s = cap // more shared than MaxR-p is never used
		}
		cands = append(cands, cand{p, s})
	}

	// A warm allocator may already hold most of the frontier from an
	// earlier sweep of the same body; replaying those points serially is
	// pure memo lookups and beats paying per-chunk allocator setup to
	// recompute them. Solve is a pure function of the budget, so the
	// serial and chunked sweeps pick the identical winner either way.
	warm := 0
	for _, c := range cands {
		if al.HasSolved(c.p, c.s) {
			warm++
		}
	}
	sweepAls := []*intra.Allocator{al}
	swept := make([]*intra.Solution, len(cands))
	if workers <= 1 || len(cands) <= 1 || warm*2 >= len(cands) {
		for ci, c := range cands {
			if err := parallel.CtxErr(ctx); err != nil {
				return nil, err
			}
			if err := faultinject.Fire(ctx, faultinject.SiteSolve); err != nil {
				return nil, err
			}
			sol, err := al.Solve(c.p, c.s)
			if err != nil {
				continue
			}
			swept[ci] = sol
			if sol.Cost == 0 && c.p == b.MinPR {
				break // cannot do better than zero moves at minimal PR
			}
		}
	} else {
		chunks := parallel.Chunks(workers, len(cands))
		chunkAls := make([]*intra.Allocator, len(chunks))
		if _, err := parallel.MapErr(ctx, workers, len(chunks), func(k int) (struct{}, error) {
			// One allocator per chunk: the sweep points inside a chunk
			// share its context-derivation memo, and the analysis behind
			// all of them is shared read-only.
			cal, err := intra.NewFromAnalysis(al.A)
			if err != nil {
				return struct{}{}, err
			}
			chunkAls[k] = cal
			for ci := chunks[k][0]; ci < chunks[k][1]; ci++ {
				if err := parallel.CtxErr(ctx); err != nil {
					return struct{}{}, err
				}
				if err := faultinject.Fire(ctx, faultinject.SiteSolve); err != nil {
					return struct{}{}, err
				}
				if sol, err := cal.Solve(cands[ci].p, cands[ci].s); err == nil {
					swept[ci] = sol
				}
			}
			return struct{}{}, nil
		}); err != nil {
			return nil, err
		}
		sweepAls = append(sweepAls, chunkAls...)
		// With a function cache behind al, fold the chunk allocators'
		// memo entries back into it (ascending chunk order, so the merge
		// is deterministic): the next checkout of this body then replays
		// the whole frontier from memory instead of re-sweeping.
		if cfg.FuncCache != nil {
			for _, cal := range chunkAls {
				if err := al.Absorb(cal); err != nil {
					return nil, err
				}
			}
		}
	}

	bestCost, bestFoot := -1, 0
	var bestSol *intra.Solution
	bestPR, bestSR := 0, 0
	for ci, sol := range swept {
		if sol == nil {
			continue
		}
		foot := nthd*cands[ci].p + (sol.Ctx.Size - min(cands[ci].p, sol.Ctx.Size))
		if bestCost < 0 || sol.Cost < bestCost || (sol.Cost == bestCost && foot < bestFoot) {
			bestCost, bestFoot = sol.Cost, foot
			bestSol, bestPR, bestSR = sol, cands[ci].p, cands[ci].s
		}
	}
	if bestSol == nil {
		return nil, infeasiblef("SRA: no feasible (PR, SR) for %d threads in %d registers", nthd, cfg.NReg)
	}

	if err := faultinject.Fire(ctx, faultinject.SiteFinalize); err != nil {
		return nil, err
	}
	funcs := make([]*ir.Func, nthd)
	als := make([]*intra.Allocator, nthd)
	prs := make([]int, nthd)
	srs := make([]int, nthd)
	sols := make([]*intra.Solution, nthd)
	for i := 0; i < nthd; i++ {
		funcs[i], als[i], prs[i], srs[i], sols[i] = f, al, bestPR, bestSR, bestSol
	}
	alloc, err := finalize(ctx, funcs, als, prs, srs, sols, cfg)
	if err != nil {
		return nil, err
	}
	for _, sal := range sweepAls {
		alloc.SolveCache.Add(sal.CacheStats())
		alloc.Phases.Add(sal.PhaseStats())
	}
	ok = true
	return alloc, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
