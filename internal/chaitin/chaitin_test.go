package chaitin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

func physRange(base, n int) []ir.Reg {
	out := make([]ir.Reg, n)
	for i := range out {
		out[i] = ir.Reg(base + i)
	}
	return out
}

// highPressure builds a program with many simultaneously-live values: the
// sums of 10 constants accumulated after all are defined.
func highPressure() *ir.Func {
	bu := ir.NewBuilder("pressure")
	bu.Label("entry")
	var regs []ir.Reg
	for i := 0; i < 10; i++ {
		regs = append(regs, bu.Set(int64(i*7+1)))
	}
	bu.Ctx()
	acc := bu.Op3(ir.OpAdd, regs[0], regs[1])
	for _, r := range regs[2:] {
		bu.Op3To(ir.OpAdd, acc, acc, r)
	}
	addr := bu.Set(0)
	bu.Store(addr, 0, acc)
	bu.Halt()
	return bu.MustFinish()
}

func TestNoSpillWhenRoomy(t *testing.T) {
	f := highPressure()
	res, err := Allocate(f, Options{Phys: physRange(0, 16)})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if res.Spilled != 0 {
		t.Errorf("spilled %d with 16 regs", res.Spilled)
	}
	if res.RegsUsed > 12 {
		t.Errorf("RegsUsed = %d, want <= 12", res.RegsUsed)
	}
	assertEquivalent(t, f, res.F, 0)
}

func TestSpillsUnderPressure(t *testing.T) {
	f := highPressure()
	res, err := Allocate(f, Options{Phys: physRange(0, 6), SpillBase: 64, SpillStride: 64})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if res.Spilled == 0 {
		t.Fatalf("no spills with 6 regs and pressure 11")
	}
	if res.SpillCode == 0 || res.SpillSlots == 0 {
		t.Errorf("spill stats empty: %+v", res)
	}
	// Spill loads/stores are CSBs: the rewritten code must context-switch
	// more than the original.
	if res.F.Stats().CSBs <= f.Stats().CSBs {
		t.Errorf("CSBs did not grow: %d vs %d", res.F.Stats().CSBs, f.Stats().CSBs)
	}
	assertEquivalent(t, f, res.F, 0)
	assertEquivalent(t, f, res.F, 2) // spill area must be tid-relative
}

func TestPartitionRespected(t *testing.T) {
	f := highPressure()
	// Thread 2's partition: registers 64..95.
	res, err := Allocate(f, Options{Phys: physRange(64, 32), SpillBase: 64})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	for _, r := range res.F.RegsUsed() {
		if r < 64 || r >= 96 {
			t.Errorf("register r%d outside partition [64,96)", r)
		}
	}
}

func assertEquivalent(t *testing.T, orig, alloc *ir.Func, tid uint32) {
	t.Helper()
	const memWords = 256
	m1 := make([]uint32, memWords)
	m2 := make([]uint32, memWords)
	r1, err := interp.Run(orig, m1, interp.Options{TID: tid, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Halted {
		t.Skip("original did not halt")
	}
	// Spill traffic dirties the spill area; compare only the program's own
	// window [0, 64) words.
	r2, err := interp.Run(alloc, m2, interp.Options{TID: tid, MaxSteps: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Halted != r2.Halted || r1.Iters != r2.Iters {
		t.Fatalf("behavior diverged: halted %v/%v iters %d/%d", r1.Halted, r2.Halted, r1.Iters, r2.Iters)
	}
	for i := 0; i < 16; i++ {
		if m1[i] != m2[i] {
			t.Errorf("mem[%d] = %#x vs %#x\n%s", i*4, m1[i], m2[i], alloc.Format())
			break
		}
	}
}

func TestTooFewRegisters(t *testing.T) {
	f := highPressure()
	if _, err := Allocate(f, Options{Phys: physRange(0, 3)}); err == nil {
		t.Errorf("Allocate with 3 regs succeeded, want error")
	}
}

// Property: random programs allocate correctly at random partition sizes,
// stay inside the partition, and preserve semantics.
func TestQuickAllocateEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		k := 5 + rng.Intn(8)
		base := rng.Intn(64)
		res, err := Allocate(f, Options{
			Phys:      physRange(base, k),
			SpillBase: 512, SpillStride: 128,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, r := range res.F.RegsUsed() {
			if int(r) < base || int(r) >= base+k {
				t.Logf("seed %d: register %d outside partition", seed, r)
				return false
			}
		}
		const memWords = 512
		m1 := make([]uint32, memWords)
		m2 := make([]uint32, memWords)
		r1, err := interp.Run(f, m1, interp.Options{MaxSteps: 20000})
		if err != nil || !r1.Halted {
			return true // skip diverging programs
		}
		r2, err := interp.Run(res.F, m2, interp.Options{MaxSteps: 400000})
		if err != nil {
			return false
		}
		if r1.Halted != r2.Halted || r1.Iters != r2.Iters {
			t.Logf("seed %d: diverged", seed)
			return false
		}
		for i := 0; i < 16; i++ { // program's own memory window
			if m1[i] != m2[i] {
				t.Logf("seed %d: mem[%d] differs", seed, i*4)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
