// Package estimate computes the per-thread register requirement bounds of
// the paper's §5:
//
//	MinPR = RegPCSBmax  — max #values live across one context switch;
//	                      reachable by splitting at every CSB (Lemma 1).
//	MinR  = RegPmax     — max #co-live values at any point.
//	MaxPR, MaxR         — registers needed with no move insertion at all,
//	                      found by coloring the BIG and the IIGs
//	                      independently and merging with conflict-edge
//	                      repair (Figure 7), minimizing MaxPR first.
//
// The estimation coloring is also the starting context for the
// intra-thread allocator: reducing from (MaxPR, MaxR) costs zero moves.
package estimate

import (
	"errors"
	"fmt"

	"npra/internal/bitset"
	"npra/internal/ig"
)

// ErrBoundsInverted reports that the move-free coloring produced bounds
// below the pressure lower bounds — an internal invariant violation
// (something upstream mis-analyzed the input), surfaced as a returned
// error rather than a panic so that library callers can degrade
// gracefully instead of crashing. Contrast with the programmer-error
// panics this codebase keeps (e.g. liveness.Compute on an unbuilt
// function): those fire on API misuse a caller can always avoid, while
// bound inversion depends on the *input program* and must therefore be
// reportable.
var ErrBoundsInverted = errors.New("estimate: bounds inverted")

// Bounds are the register-count bounds for one thread.
type Bounds struct {
	MinPR int // lower bound on private registers (RegPCSBmax)
	MinR  int // lower bound on total registers (RegPmax)
	MaxPR int // private registers for a move-free allocation
	MaxR  int // total registers for a move-free allocation
}

// MaxSR returns the shared-register demand of the move-free allocation.
func (b Bounds) MaxSR() int { return b.MaxR - b.MaxPR }

// Estimate is the result of bound estimation: the bounds plus the witness
// coloring (color per variable; -1 for dead variables). Boundary nodes use
// colors [0, MaxPR); all nodes use colors [0, MaxR).
type Estimate struct {
	Bounds
	Colors []int
}

// Compute runs the paper's Figure 7 algorithm: color the BIG minimally,
// color each IIG independently, merge, and repair conflict edges —
// preferring to keep MaxPR minimal because private registers contribute
// directly to the global register budget while shared registers only
// matter through the per-PU maximum.
func Compute(a *ig.Analysis) (*Estimate, error) {
	nv := a.NumVars
	colors := make([]int, nv)
	for i := range colors {
		colors[i] = -1
	}

	// Step 1: color the BIG (boundary-interference edges only).
	bnodes := a.BoundaryNodes()
	bOrder := a.BIG.SmallestLastOrder(bnodes)
	colors, _ = a.BIG.GreedyColorMasked(bOrder, colors, bnodes)

	// Step 2: color each IIG independently (internal nodes per NSR,
	// ignoring boundary colors for now).
	for _, members := range a.IIGMembers() {
		if members.Empty() {
			continue
		}
		order := a.GIG.SmallestLastOrder(members)
		colors, _ = a.GIG.GreedyColorMasked(order, colors, members)
	}

	// Step 3: merge — repair every GIG edge whose endpoints collide.
	// Repairs pick colors free among *all* currently-colored GIG
	// neighbors, so they never create new conflicts and the loop
	// terminates.
	repairConflicts(a, colors)

	maxPR, maxR := normalize(a, colors)
	est := &Estimate{
		Bounds: Bounds{
			MinPR: a.Live.CSBPressureMax(),
			MinR:  a.Live.PressureMax(),
			MaxPR: maxPR,
			MaxR:  maxR,
		},
		Colors: colors,
	}
	if err := est.reconcile(); err != nil {
		return nil, err
	}
	return est, nil
}

// ComputeJoint is the ablation variant the paper contrasts with: color the
// whole GIG at once minimizing MaxR, letting MaxPR land where it may.
func ComputeJoint(a *ig.Analysis) (*Estimate, error) {
	nv := a.NumVars
	colors := make([]int, nv)
	for i := range colors {
		colors[i] = -1
	}
	live := bitset.New(nv)
	for v := 0; v < nv; v++ {
		if a.Alive[v] {
			live.Add(v)
		}
	}
	order := a.GIG.SmallestLastOrder(live)
	colors, _ = a.GIG.GreedyColor(order, colors)
	maxPR, maxR := normalize(a, colors)
	est := &Estimate{
		Bounds: Bounds{
			MinPR: a.Live.CSBPressureMax(),
			MinR:  a.Live.PressureMax(),
			MaxPR: maxPR,
			MaxR:  maxR,
		},
		Colors: colors,
	}
	if err := est.reconcile(); err != nil {
		return nil, err
	}
	return est, nil
}

// reconcile enforces the arithmetic relations between the bounds that
// hold by construction but can be perturbed by degenerate inputs (e.g. a
// function with no CSBs has MinPR = 0 yet MaxPR = 0 already). A bound
// inversion the arithmetic cannot repair is an internal invariant
// violation and comes back as an error wrapping ErrBoundsInverted.
func (e *Estimate) reconcile() error {
	if e.MaxR < e.MaxPR {
		e.MaxR = e.MaxPR
	}
	if e.MinR < e.MinPR {
		e.MinR = e.MinPR
	}
	if e.MaxPR < e.MinPR {
		// The move-free coloring can never beat the CSB pressure bound;
		// if greedy numbers say otherwise something is wrong upstream.
		return fmt.Errorf("%w: MaxPR %d < MinPR %d", ErrBoundsInverted, e.MaxPR, e.MinPR)
	}
	if e.MaxR < e.MinR {
		return fmt.Errorf("%w: MaxR %d < MinR %d", ErrBoundsInverted, e.MaxR, e.MinR)
	}
	return nil
}

// repairConflicts fixes same-color GIG edges after the independent BIG and
// IIG colorings are merged. Preference order per conflict edge (paper
// Fig. 7.b): recolor the boundary endpoint within the boundary palette,
// recolor the internal endpoint anywhere, try to displace one blocking
// neighbor, and as a last resort give the internal endpoint a fresh color
// (growing MaxR) or — for boundary/boundary conflicts — the boundary
// endpoint a fresh color (growing MaxPR).
func repairConflicts(a *ig.Analysis, colors []int) {
	boundaryPalette := func() int {
		// Current number of colors in use by boundary nodes, as palette
		// ceiling for boundary recoloring.
		max := -1
		for v := 0; v < a.NumVars; v++ {
			if a.Boundary[v] && colors[v] > max {
				max = colors[v]
			}
		}
		return max + 1
	}
	for {
		u, v := a.GIG.VerifyColoring(colors)
		if u < 0 {
			return
		}
		// Make u the preferred node to recolor: internal beats boundary.
		s, t := u, v // s boundary-ish, t internal-ish
		if a.Boundary[u] && !a.Boundary[v] {
			s, t = u, v
		} else if a.Boundary[v] && !a.Boundary[u] {
			s, t = v, u
		}
		switch {
		case a.Boundary[s] && !a.Boundary[t]:
			bp := boundaryPalette()
			if tryRecolor(a, colors, s, bp) {
				continue
			}
			if tryRecolor(a, colors, t, maxColor(colors)+1) {
				continue
			}
			if tryNeighborRecolor(a, colors, t) {
				continue
			}
			colors[t] = maxColor(colors) + 1 // fresh color: MaxR grows
		case !a.Boundary[s] && !a.Boundary[t]:
			if tryRecolor(a, colors, t, maxColor(colors)+1) {
				continue
			}
			if tryNeighborRecolor(a, colors, t) {
				continue
			}
			colors[t] = maxColor(colors) + 1
		default: // both boundary
			bp := boundaryPalette()
			if tryRecolor(a, colors, s, bp) {
				continue
			}
			if tryRecolor(a, colors, t, bp) {
				continue
			}
			colors[t] = bp // fresh boundary color: MaxPR grows
		}
	}
}

func maxColor(colors []int) int {
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max
}

// tryRecolor gives node n a color in [0, limit) unused by any colored GIG
// neighbor, reporting success.
func tryRecolor(a *ig.Analysis, colors []int, n, limit int) bool {
	used := neighborColors(a, colors, n)
	for c := 0; c < limit; c++ {
		if c != colors[n] && !used[c] {
			colors[n] = c
			return true
		}
	}
	return false
}

// tryNeighborRecolor attempts the paper's heuristic: find a color c' such
// that exactly one neighbor w of n blocks c', and w itself can move to a
// different color; then shift w and take c'.
func tryNeighborRecolor(a *ig.Analysis, colors []int, n int) bool {
	limit := maxColor(colors) + 1
	blockers := make(map[int][]int) // color -> blocking neighbors
	a.GIG.Neighbors(n).ForEach(func(w int) {
		if colors[w] >= 0 {
			blockers[colors[w]] = append(blockers[colors[w]], w)
		}
	})
	for c := 0; c < limit; c++ {
		if c == colors[n] {
			continue
		}
		bl := blockers[c]
		if len(bl) != 1 {
			continue
		}
		w := bl[0]
		wLimit := limit
		if a.Boundary[w] {
			// Boundary neighbors may only move within the boundary
			// palette; approximate it with colors currently used by
			// boundary nodes.
			wLimit = 0
			for v := 0; v < a.NumVars; v++ {
				if a.Boundary[v] && colors[v]+1 > wLimit {
					wLimit = colors[v] + 1
				}
			}
		}
		wUsed := neighborColors(a, colors, w)
		for cw := 0; cw < wLimit; cw++ {
			if cw != c && cw != colors[w] && !wUsed[cw] {
				colors[w] = cw
				colors[n] = c
				return true
			}
		}
	}
	return false
}

func neighborColors(a *ig.Analysis, colors []int, n int) map[int]bool {
	used := make(map[int]bool)
	a.GIG.Neighbors(n).ForEach(func(w int) {
		if colors[w] >= 0 {
			used[colors[w]] = true
		}
	})
	return used
}

// normalize relabels colors so that the colors used by boundary nodes form
// the prefix [0, MaxPR) and all colors form [0, MaxR). This is the palette
// layout the allocators rely on: private registers first, shared after.
func normalize(a *ig.Analysis, colors []int) (maxPR, maxR int) {
	remap := make(map[int]int)
	next := 0
	// Boundary colors first, in order of appearance.
	for v := 0; v < a.NumVars; v++ {
		if !a.Boundary[v] || colors[v] < 0 {
			continue
		}
		if _, ok := remap[colors[v]]; !ok {
			remap[colors[v]] = next
			next++
		}
	}
	maxPR = next
	for v := 0; v < a.NumVars; v++ {
		if colors[v] < 0 || a.Boundary[v] {
			continue
		}
		if _, ok := remap[colors[v]]; !ok {
			remap[colors[v]] = next
			next++
		}
	}
	maxR = next
	for v := 0; v < a.NumVars; v++ {
		if colors[v] >= 0 {
			colors[v] = remap[colors[v]]
		}
	}
	return maxPR, maxR
}
