package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"npra/internal/core/errs"
)

// The admission layer. PR 5's single FIFO channel admitted whoever
// arrived first, which lets one greedy tenant starve everyone behind a
// full queue. fairQueue replaces it with per-tenant weighted
// deficit-round-robin (DRR) scheduling plus priority-aware shedding:
//
//   - Every tenant (the X-Tenant request header; "default" otherwise)
//     gets its own FIFO backlog, bounded by a per-tenant cap so a
//     single tenant cannot consume the whole admission budget.
//   - The batch collector pops jobs in DRR order: each backlogged
//     tenant is visited round-robin and served quantum×weight jobs per
//     visit (unit job cost), so completed work converges to the
//     configured weight ratio while every contender stays backlogged —
//     the serving-layer analog of the paper's stance that contenders
//     are isolated by construction, not by luck.
//   - Admission sheds by priority before it refuses outright: past
//     ShedLowFrac of capacity "low" work is refused, past
//     ShedNormalFrac "normal" follows, and "high" is only refused at
//     the hard bound. Every refusal is a 429 whose Retry-After is
//     derived from the live backlog (see retryAfterHint), not a
//     constant.
//
// All refusals wrap errOverload so the flight plumbing above keeps
// treating them uniformly; the admission reason rides along for
// metrics.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity   int // global bound on queued jobs
	tenantCap  int // per-tenant bound
	shedLow    int // depth at which "low" is refused
	shedNormal int // depth at which "normal" is refused
	quantum    int // DRR quantum per visit (unit job cost)

	weights map[string]int // configured tenant weight; absent = 1

	tenants map[string]*tenantQ // tenants with a live backlog
	ring    []*tenantQ          // round-robin order over backlogged tenants
	cur     int                 // ring index of the tenant in service
	size    int
	closed  bool
}

// tenantQ is one tenant's FIFO backlog plus its DRR deficit counter.
type tenantQ struct {
	name    string
	weight  int
	jobs    []*job
	deficit int
}

// admission reasons, for metrics and error text.
const (
	admitQueueFull  = "queue_full"
	admitTenantFull = "tenant_full"
	admitShedLow    = "shed_low"
	admitShedNormal = "shed_normal"
	admitClosed     = "closed"
)

// overloadError is an admission refusal: it wraps errOverload (so every
// layer above routes it onto HTTP 429 "overload") and carries the
// refusal reason for the shed/overload metrics.
type overloadError struct {
	reason string
	msg    string
}

func (e *overloadError) Error() string { return fmt.Sprintf("%s (%s)", e.msg, e.reason) }
func (e *overloadError) Unwrap() error { return errOverload }

func newFairQueue(capacity, tenantCap, shedLow, shedNormal int, weights map[string]int) *fairQueue {
	q := &fairQueue{
		capacity:   capacity,
		tenantCap:  tenantCap,
		shedLow:    shedLow,
		shedNormal: shedNormal,
		quantum:    1,
		weights:    weights,
		tenants:    make(map[string]*tenantQ),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// weightOf returns the configured weight for tenant (default 1).
func (q *fairQueue) weightOf(tenant string) int {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// push admits j under the shedding policy, or returns an
// *overloadError explaining the refusal. Safe for concurrent use.
func (q *fairQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return &overloadError{reason: admitClosed, msg: "serve: admission queue closed"}
	}
	if q.size >= q.capacity {
		return &overloadError{reason: admitQueueFull, msg: "serve: admission queue full"}
	}
	switch j.priority {
	case "low":
		if q.size >= q.shedLow {
			return &overloadError{reason: admitShedLow,
				msg: fmt.Sprintf("serve: shedding low-priority work at backlog %d", q.size)}
		}
	case "high":
		// High priority rides to the hard capacity bound checked above.
	default: // "", "normal"
		if q.size >= q.shedNormal {
			return &overloadError{reason: admitShedNormal,
				msg: fmt.Sprintf("serve: shedding normal-priority work at backlog %d", q.size)}
		}
	}
	t := q.tenants[j.tenant]
	if t == nil {
		t = &tenantQ{name: j.tenant, weight: q.weightOf(j.tenant)}
		q.tenants[j.tenant] = t
	}
	if len(t.jobs) >= q.tenantCap {
		return &overloadError{reason: admitTenantFull,
			msg: fmt.Sprintf("serve: tenant %q backlog full (%d)", j.tenant, len(t.jobs))}
	}
	if len(t.jobs) == 0 {
		q.ring = append(q.ring, t) // joins at the tail of the current round
	}
	t.jobs = append(t.jobs, j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop returns the next job in DRR order. With wait set it blocks until
// a job arrives or the queue is closed and fully drained; without it,
// an empty queue returns ok=false immediately (the batch collector's
// greedy fill). Single consumer (the collector goroutine).
func (q *fairQueue) pop(wait bool) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed || !wait {
			return nil, false
		}
		q.cond.Wait()
	}
	t := q.ring[q.cur]
	if t.deficit < 1 {
		// New service round for this tenant: replenish by quantum×weight.
		t.deficit += q.quantum * t.weight
	}
	j := t.jobs[0]
	t.jobs[0] = nil // release the reference for GC
	t.jobs = t.jobs[1:]
	t.deficit--
	q.size--
	if len(t.jobs) == 0 {
		// A tenant that empties forfeits its remaining deficit (standard
		// DRR: no credit hoarding across idle periods) and leaves the
		// ring until its next push.
		delete(q.tenants, t.name)
		q.ring = append(q.ring[:q.cur], q.ring[q.cur+1:]...)
		if q.cur >= len(q.ring) {
			q.cur = 0
		}
	} else if t.deficit < 1 {
		q.cur = (q.cur + 1) % len(q.ring)
	}
	return j, true
}

// close stops admission; jobs already queued still drain through pop.
func (q *fairQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// depth returns the total backlog.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// tenantDepths snapshots the per-tenant backlog, sorted by tenant name
// for deterministic rendering.
func (q *fairQueue) tenantDepths() []tenantDepth {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]tenantDepth, 0, len(q.tenants))
	for name, t := range q.tenants {
		out = append(out, tenantDepth{Tenant: name, Depth: len(t.jobs)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// tenantDepth is one tenant's live backlog, for metrics snapshots.
type tenantDepth struct {
	Tenant string
	Depth  int
}

// ParseTenantWeights parses a "tenant=weight,tenant=weight" flag value
// into a Config.TenantWeights map. Empty input yields a nil map (all
// tenants weigh 1).
func ParseTenantWeights(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, errs.Invalidf("serve: tenant weight %q (want tenant=weight)", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, errs.Invalidf("serve: tenant %q weight %q (want a positive integer)", name, val)
		}
		out[name] = w
	}
	return out, nil
}
