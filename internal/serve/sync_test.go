package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"npra/internal/faultinject"
)

// TestSingleflightConcurrent releases N identical requests at once and
// checks the dedup contract under the race detector: exactly one engine
// invocation, every other request a singleflight hit, all responses
// identical. A short injected engine delay widens the in-flight window
// so most joiners overlap the leader rather than hitting the cache.
func TestSingleflightConcurrent(t *testing.T) {
	faultinject.Arm(faultinject.SiteSolve, faultinject.Plan{Mode: faultinject.Delay, Delay: 100 * time.Millisecond, Count: 1})
	t.Cleanup(faultinject.Reset)
	s, ts := newTestServer(t, Config{})

	const n = 16
	body := progenBody(t, 48, 0, 201, 202)
	start := make(chan struct{})
	var wg sync.WaitGroup
	outs := make([]*Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/allocate", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			blob, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("goroutine %d: status %d body %s", i, resp.StatusCode, blob)
				return
			}
			var out Response
			if err := json.Unmarshal(blob, &out); err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			outs[i] = &out
		}(i)
	}
	close(start)
	wg.Wait()

	snap := s.Metrics()
	if snap.Batches != 1 {
		t.Errorf("engine ran %d times for %d identical requests, want 1", snap.Batches, n)
	}
	if snap.SingleflightMisses != 1 {
		t.Errorf("singleflight misses = %d, want 1", snap.SingleflightMisses)
	}
	if hits := snap.SingleflightHits(); hits != n-1 {
		t.Errorf("singleflight hits = %d (inflight %d, cached %d), want %d",
			hits, snap.SingleflightInflightHits, snap.SingleflightCachedHits, n-1)
	}

	var leader *Response
	shared := 0
	for i, out := range outs {
		if out == nil {
			t.Fatalf("goroutine %d produced no response", i)
		}
		if out.Shared {
			shared++
		} else {
			leader = out
		}
	}
	if shared != n-1 {
		t.Errorf("%d responses marked shared, want %d", shared, n-1)
	}
	if leader == nil {
		t.Fatal("no response marked as the leader's")
	}
	canon, err := json.Marshal(leader.WireResponse)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		blob, err := json.Marshal(out.WireResponse)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(canon) {
			t.Errorf("goroutine %d: response differs from the leader's:\n%s\nvs\n%s", i, blob, canon)
		}
	}
}

// TestConcurrentMixedKeys hammers the server with a mix of duplicate
// and distinct requests purely for the race detector's benefit: every
// response must be a 200 and the engine must run at most once per
// distinct key.
func TestConcurrentMixedKeys(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxQueue: 128})
	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := int64(300 + (w+i)%4) // 4 distinct keys across the pool
				resp, err := http.Post(ts.URL+"/allocate", "application/json",
					strings.NewReader(progenBody(t, 40, 0, seed)))
				if err != nil {
					t.Error(err)
					return
				}
				blob, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d body %s", w, resp.StatusCode, blob)
				}
			}
		}(w)
	}
	wg.Wait()
	snap := s.Metrics()
	if snap.SingleflightMisses > 4 {
		t.Errorf("%d engine-bound misses for 4 distinct keys", snap.SingleflightMisses)
	}
	if total := snap.SingleflightHits() + snap.SingleflightMisses; total != workers*perWorker {
		t.Errorf("join total = %d, want %d", total, workers*perWorker)
	}
}

// TestDrainRace drains while requests are still arriving; every request
// must resolve as either a 200 or a clean 503, never an error or hang.
func TestDrainRace(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/allocate", "application/json",
				strings.NewReader(progenBody(t, 40, 0, int64(400+i%3))))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("Drain: %v", err)
	}
	wg.Wait()
}
