// Package anztest is a minimal stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads fixture
// packages from a GOPATH-style testdata tree (fixtureDir/src/<path>),
// runs one analyzer over them, and checks the diagnostics against
// expectations written in the fixture sources as trailing comments:
//
//	for k := range m { // want `map iteration order feeds order-dependent code`
//
// Each // want comment holds one or more regexps (backquoted or
// double-quoted) that must match a diagnostic reported on that line.
// Diagnostics with no matching expectation, and expectations no
// diagnostic matched, both fail the test — so fixtures demonstrate
// suppression (a //lint:ignore'd line carries no want) as mechanically
// as they demonstrate detection.
package anztest

import (
	"regexp"
	"strings"
	"testing"

	"npra/internal/analyzers/anz"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantArg extracts the backquoted or double-quoted regexps after a
// "// want" marker.
var wantArg = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads the fixture packages named by paths from
// fixtureDir/src/<path> and verifies analyzer a's diagnostics against
// the fixtures' // want expectations.
func Run(t *testing.T, fixtureDir string, a *anz.Analyzer, paths ...string) {
	t.Helper()
	cfg := &anz.LoadConfig{FixtureDir: fixtureDir}
	pkgs, err := cfg.Load(paths...)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", fixtureDir, err)
	}
	wants := collectWants(t, pkgs)
	diags, err := anz.Run(pkgs, []*anz.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants parses every // want comment in the fixture sources. The
// marker may sit anywhere in the comment text, so an expectation can
// share a line with a //lint: directive under test.
func collectWants(t *testing.T, pkgs []*anz.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					_, rest, ok := strings.Cut(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					matches := wantArg.FindAllStringSubmatch(rest, -1)
					if len(matches) == 0 {
						t.Fatalf("%s:%d: malformed // want comment: no quoted regexp", pos.Filename, pos.Line)
					}
					for _, m := range matches {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad // want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose regexp matches, reporting whether one was found.
func claim(wants []*expectation, d anz.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
