package progen

import (
	"strings"
	"testing"
	"testing/quick"

	"npra/internal/interp"
	"npra/internal/ir"
)

// Property: every adversarial shape builds, validates and HALTS — the
// shapes are hostile to the caches, not to the structured contract.
func TestQuickAdversarialHalt(t *testing.T) {
	for _, shape := range Shapes() {
		shape := shape
		t.Run(string(shape), func(t *testing.T) {
			check := func(seed int64) bool {
				f, err := FromSeedShape(shape, seed, DefaultStructured)
				if err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				if !f.Built() {
					return false
				}
				res, err := interp.Run(f, make([]uint32, 4096), interp.Options{MaxSteps: 1 << 20})
				if err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				if !res.Halted {
					t.Logf("seed %d: did not halt:\n%s", seed, f.Format())
					return false
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Every shape is deterministic from (shape, seed, cfg), and distinct
// shapes over the same seed produce distinct bodies.
func TestAdversarialDeterministicAndDistinct(t *testing.T) {
	seen := make(map[string]Shape)
	for _, shape := range Shapes() {
		a, err := FromSeedShape(shape, 42, DefaultStructured)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		b, err := FromSeedShape(shape, 42, DefaultStructured)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if a.Format() != b.Format() {
			t.Errorf("%s: not deterministic", shape)
		}
		if prev, dup := seen[a.Format()]; dup {
			t.Errorf("%s and %s generated identical bodies", shape, prev)
		}
		seen[a.Format()] = shape
	}
}

// The empty shape is the structured generator, and unknown shapes are
// rejected with an error rather than a panic.
func TestFromSeedShapeDefaultAndUnknown(t *testing.T) {
	def, err := FromSeedShape("", 9, DefaultStructured)
	if err != nil {
		t.Fatal(err)
	}
	if want := FromSeed(9, DefaultStructured); def.Format() != want.Format() {
		t.Error("empty shape does not match FromSeed")
	}
	if _, err := FromSeedShape("zigzag", 9, DefaultStructured); err == nil {
		t.Error("unknown shape accepted")
	}
	if ValidShape("zigzag") || !ValidShape("") || !ValidShape(ShapePalette) {
		t.Error("ValidShape misclassifies")
	}
}

// countOps tallies instructions by opcode name across the function.
func countOps(f *ir.Func) map[string]int {
	n := make(map[string]int)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			n[b.Instrs[i].Op.String()]++
		}
	}
	return n
}

// Trampoline bodies are deep chains: at least 4×MaxDepth hop blocks,
// each guarded by a CSB, with branches that jump around the shuffled
// layout (at least one branch targets a non-adjacent block).
func TestTrampolineShape(t *testing.T) {
	cfg := DefaultStructured
	f, err := FromSeedShape(ShapeTrampoline, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(f.Blocks), 4*cfg.MaxDepth+2; got < want {
		t.Errorf("%d blocks, want >= %d (entry + hops + tail)", got, want)
	}
	ops := countOps(f)
	if ops["ctx"] < 4*cfg.MaxDepth {
		t.Errorf("%d ctx boundaries, want >= %d (one per hop)", ops["ctx"], 4*cfg.MaxDepth)
	}
	// Shuffled layout: some branch must cross more than one position in
	// emission order, otherwise the chain degenerated to a ladder.
	pos := make(map[string]int, len(f.Blocks))
	for i, b := range f.Blocks {
		pos[b.Label] = i
	}
	bouncy := false
	for i, b := range f.Blocks {
		for k := range b.Instrs {
			in := b.Instrs[k]
			if in.Target == "" {
				continue
			}
			if d := pos[in.Target] - i; d > 1 || d < -1 {
				bouncy = true
			}
		}
	}
	if !bouncy {
		t.Error("trampoline layout is a straight ladder; expected shuffled block order")
	}
}

// Boundary-dense bodies put a CSB between every computation segment:
// the ctx count scales with MaxBodyLen×(MaxDepth+1), far above the
// density any realistic kernel reaches.
func TestBoundaryDenseShape(t *testing.T) {
	cfg := DefaultStructured
	f, err := FromSeedShape(ShapeBoundary, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := countOps(f)
	if want := cfg.MaxBodyLen * (cfg.MaxDepth + 1); ops["ctx"] < want {
		t.Errorf("%d ctx boundaries, want >= %d", ops["ctx"], want)
	}
}

// Near-collision bodies differ from one another in exactly one line:
// the seed-carrying immediate.
func TestNearCollisionSingleLineDiff(t *testing.T) {
	cfg := DefaultStructured
	a, err := FromSeedShape(ShapeNearCollision, 1001, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSeedShape(ShapeNearCollision, 1002, cfg)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := strings.Split(a.Format(), "\n"), strings.Split(b.Format(), "\n")
	if len(la) != len(lb) {
		t.Fatalf("family members differ in length: %d vs %d lines", len(la), len(lb))
	}
	diff := 0
	for i := range la {
		if la[i] != lb[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d differing lines between near-collision siblings, want exactly 1", diff)
	}
}

// Adversarial shapes honor the store window, like the structured
// generator: every absolute memory op lands in [base, base+window).
func TestAdversarialRespectsStoreWindow(t *testing.T) {
	cfg := DefaultStructured
	cfg.StoreBase = 512
	cfg.CSBDensity = 1 // force the optional memory ops in
	for _, shape := range Shapes() {
		for seed := int64(0); seed < 10; seed++ {
			f, err := FromSeedShape(shape, seed, cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", shape, seed, err)
			}
			for _, b := range f.Blocks {
				for k := range b.Instrs {
					in := b.Instrs[k]
					if in.Op.String() == "load" || in.Op.String() == "store" {
						if in.Imm < cfg.StoreBase || in.Imm >= cfg.StoreBase+cfg.StoreWindow {
							t.Fatalf("%s seed %d: memory op outside window: %s", shape, seed, in.String())
						}
					}
				}
			}
		}
	}
}
