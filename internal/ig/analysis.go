package ig

import (
	"npra/internal/bitset"
	"npra/internal/ir"
	"npra/internal/liveness"
	"npra/internal/nsr"
)

// Analysis bundles everything the allocators need to know about one
// thread's function: liveness, the NSR partition, node classification and
// the interference graphs.
type Analysis struct {
	F    *ir.Func
	Live *liveness.Info
	NSR  *nsr.Info

	// NumVars is the node count (one node per virtual register).
	NumVars int

	// Alive[v] reports whether v is live anywhere (dead variables are
	// excluded from the graphs and need no register).
	Alive []bool

	// Boundary[v] reports whether v is live across at least one CSB.
	Boundary []bool

	// Crossings[v] is the set of CSB points v is live across (nil for
	// internal nodes). Indexed by program point.
	Crossings []bitset.Set

	// Regions[v] is the set of NSR ids containing a point of v.
	Regions []bitset.Set

	// Points[v] is v's live point set (liveness.Points).
	Points []bitset.Set

	// GIG has an edge {u,v} iff u and v are co-live at some program point.
	GIG *Graph

	// BIG has an edge {u,v} iff u and v are both live across the same CSB.
	BIG *Graph

	// VarEdges[v] lists the CFG edges v's value flows along, flattened
	// as (p, q) point pairs: q is a successor of p with v live-out of p
	// and live-in to q. The intra-thread allocator prices the move cost
	// of a piece partition per variable from this list; computing it
	// once here lets cost evaluation after a split touch only the
	// variables the split changed instead of re-walking every edge.
	VarEdges [][]int32
}

// Analyze runs liveness, NSR construction and interference-graph building
// for a built function.
func Analyze(f *ir.Func) *Analysis {
	live := liveness.Compute(f)
	regions := nsr.Compute(f)
	return analyzeWith(f, live, regions)
}

func analyzeWith(f *ir.Func, live *liveness.Info, regions *nsr.Info) *Analysis {
	nv := f.NumRegs
	np := f.NumPoints()
	a := &Analysis{
		F: f, Live: live, NSR: regions, NumVars: nv,
		Alive:     make([]bool, nv),
		Boundary:  make([]bool, nv),
		Crossings: make([]bitset.Set, nv),
		Regions:   make([]bitset.Set, nv),
		Points:    live.Points(),
		GIG:       NewGraph(nv),
		BIG:       NewGraph(nv),
	}
	for v := 0; v < nv; v++ {
		a.Regions[v] = bitset.New(regions.NumRegions)
		if !a.Points[v].Empty() {
			a.Alive[v] = true
		}
	}
	for p := 0; p < np; p++ {
		at := live.At[p]
		a.GIG.AddClique(at)
		r := regions.Region[p]
		for v := at.NextSet(0); v >= 0; v = at.NextSet(v + 1) {
			a.Regions[v].Add(r)
		}
	}
	// Per-variable flow edges (see the VarEdges field comment).
	a.VarEdges = make([][]int32, nv)
	var succs []int
	for p := 0; p < np; p++ {
		succs = f.PointSuccs(p, succs[:0])
		out := live.Out[p]
		for _, q := range succs {
			in := live.In[q]
			for v := out.NextSet(0); v >= 0; v = out.NextSet(v + 1) {
				if in.Has(v) {
					a.VarEdges[v] = append(a.VarEdges[v], int32(p), int32(q))
				}
			}
		}
	}
	for _, p := range regions.CSBs {
		across, err := live.LiveAcross(p)
		if err != nil {
			continue // unreachable: regions.CSBs holds only CSB points
		}
		a.BIG.AddClique(across)
		across.ForEach(func(v int) {
			a.Boundary[v] = true
			if a.Crossings[v] == nil {
				a.Crossings[v] = bitset.New(np)
			}
			a.Crossings[v].Add(p)
		})
	}
	// The entry point is a boundary too: a value live-in at entry reads
	// the zero-initialized register file, and that zero must survive the
	// other threads running before this one starts — so it needs a
	// private register (point 0 is recorded as its crossing).
	if np > 0 {
		entry := live.EntryLive()
		a.BIG.AddClique(entry)
		entry.ForEach(func(v int) {
			a.Boundary[v] = true
			if a.Crossings[v] == nil {
				a.Crossings[v] = bitset.New(np)
			}
			a.Crossings[v].Add(0)
		})
	}
	return a
}

// InternalNodes returns the set of live internal (non-boundary) nodes.
func (a *Analysis) InternalNodes() bitset.Set {
	s := bitset.New(a.NumVars)
	for v := 0; v < a.NumVars; v++ {
		if a.Alive[v] && !a.Boundary[v] {
			s.Add(v)
		}
	}
	return s
}

// BoundaryNodes returns the set of boundary nodes.
func (a *Analysis) BoundaryNodes() bitset.Set {
	s := bitset.New(a.NumVars)
	for v := 0; v < a.NumVars; v++ {
		if a.Boundary[v] {
			s.Add(v)
		}
	}
	return s
}

// LiveRanges returns the number of live nodes (the paper's "#live ranges"
// column).
func (a *Analysis) LiveRanges() int {
	n := 0
	for v := 0; v < a.NumVars; v++ {
		if a.Alive[v] {
			n++
		}
	}
	return n
}

// IIGMembers returns, for each NSR, the set of internal nodes live in it
// (the node sets of the paper's IIGs). Interference edges among them are
// read from the GIG: by Claim 2 of the paper, internal nodes of different
// NSRs never interfere, so the GIG restricted to an IIG's members is
// exactly that IIG.
func (a *Analysis) IIGMembers() []bitset.Set {
	out := make([]bitset.Set, a.NSR.NumRegions)
	for r := range out {
		out[r] = bitset.New(a.NumVars)
	}
	internal := a.InternalNodes()
	internal.ForEach(func(v int) {
		a.Regions[v].ForEach(func(r int) { out[r].Add(v) })
	})
	return out
}
