package bench

import (
	"testing"

	"npra/internal/estimate"
	"npra/internal/ig"
	"npra/internal/interp"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("benchmarks = %d, want 14 (the paper's 11 plus 3 service kernels): %v", len(names), names)
	}
	if paper := Paper(); len(paper) != 11 {
		var pn []string
		for _, b := range paper {
			pn = append(pn, b.Name)
		}
		t.Fatalf("paper benchmarks = %d, want 11 (the paper evaluates 11): %v", len(paper), pn)
	}
	for _, n := range names {
		b, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.Description == "" || b.Suite == "" {
			t.Errorf("%s: missing metadata", n)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) succeeded")
	}
}

func TestAllBenchmarksRunAndHalt(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			f := b.Gen(5)
			mem := make([]uint32, MemWords)
			res, err := interp.Run(f, mem, interp.Options{TID: 0, MaxSteps: 1 << 20})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Halted {
				t.Fatalf("did not halt")
			}
			if res.Iters != 5 {
				t.Errorf("iters = %d, want 5", res.Iters)
			}
		})
	}
}

func TestThreadSegmentIsolation(t *testing.T) {
	// Running the same benchmark as tid 0 and tid 1 must touch disjoint
	// memory segments.
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			f := b.Gen(3)
			m0 := make([]uint32, MemWords)
			m1 := make([]uint32, MemWords)
			if _, err := interp.Run(f, m0, interp.Options{TID: 0, MaxSteps: 1 << 20}); err != nil {
				t.Fatal(err)
			}
			if _, err := interp.Run(f.Clone(), m1, interp.Options{TID: 1, MaxSteps: 1 << 20}); err != nil {
				t.Fatal(err)
			}
			segWords := (1 << SegShift) / 4
			for i := 0; i < segWords; i++ {
				if m1[i] != 0 {
					t.Fatalf("tid 1 wrote into segment 0 at word %d", i)
				}
				if m0[segWords+i] != 0 {
					t.Fatalf("tid 0 wrote into segment 1 at word %d", segWords+i)
				}
			}
		})
	}
}

// TestPressureBands pins each benchmark into its designed pressure class,
// the property that drives every experiment: the "heavy" kernels must
// exceed the 32-register baseline partition (so the baseline spills) yet
// keep their boundary pressure low (so sharing fixes them), while light
// kernels fit comfortably.
func TestPressureBands(t *testing.T) {
	heavy := map[string]bool{"md5": true, "wraps_recv": true, "wraps_send": true}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			a := ig.Analyze(b.Gen(4))
			est, err := estimate.Compute(a)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: MinPR=%d MinR=%d MaxPR=%d MaxR=%d liveRanges=%d",
				b.Name, est.MinPR, est.MinR, est.MaxPR, est.MaxR, a.LiveRanges())
			if heavy[b.Name] {
				if est.MinR <= 32 {
					t.Errorf("heavy kernel fits the 32-register partition: MinR=%d", est.MinR)
				}
				if est.MinPR > 16 {
					t.Errorf("heavy kernel boundary pressure too high for sharing to fix: MinPR=%d", est.MinPR)
				}
			} else {
				if est.MaxR > 32 {
					t.Errorf("light kernel overflows the baseline partition: MaxR=%d", est.MaxR)
				}
			}
			if est.MinPR > 20 {
				t.Errorf("MinPR=%d; four threads would not fit 128 registers", est.MinPR)
			}
		})
	}
}

// TestCTXFraction: the paper reports context-switch instructions are
// roughly 10% of the instruction stream; keep every kernel in a sane
// 4%-30% band.
func TestCTXFraction(t *testing.T) {
	for _, b := range All() {
		st := b.Gen(4).Stats()
		frac := float64(st.CSBs) / float64(st.Instructions)
		if frac < 0.04 || frac > 0.30 {
			t.Errorf("%s: CTX fraction %.2f (CSBs %d / instrs %d) outside [0.04, 0.30]",
				b.Name, frac, st.CSBs, st.Instructions)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, b := range All() {
		f1 := b.Gen(7).Format()
		f2 := b.Gen(7).Format()
		if f1 != f2 {
			t.Errorf("%s: generator not deterministic", b.Name)
		}
	}
}

func TestIterationCountScales(t *testing.T) {
	b, err := Get("frag")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 8, 33} {
		mem := make([]uint32, MemWords)
		res, err := interp.Run(b.Gen(n), mem, interp.Options{MaxSteps: 1 << 22})
		if err != nil || !res.Halted {
			t.Fatalf("n=%d: %v halted=%v", n, err, res != nil && res.Halted)
		}
		if res.Iters != n {
			t.Errorf("n=%d: iters = %d", n, res.Iters)
		}
	}
}
