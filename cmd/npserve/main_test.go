package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"npra/internal/serve"
)

// TestRunServeDrain boots the real binary path (run with a live TCP
// listener), serves one request, then cancels the context and checks
// the drain completes cleanly.
func TestRunServeDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", serve.Config{}, 10*time.Second, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post(base+"/allocate", "application/json",
		strings.NewReader(`{"nreg":32,"threads":[{"progen":{"seed":1}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, blob)
	}
	var out serve.Response
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Threads) != 1 {
		t.Fatalf("got %d threads, want 1", len(out.Threads))
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil (clean drain)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}

func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), "256.256.256.256:99999", serve.Config{}, time.Second, nil)
	if err == nil {
		t.Fatal("run accepted an unusable listen address")
	}
}
