package funccache

// Adversarial-workload differentials and eviction-thrash regressions:
// the cache hierarchy must stay bit-identical to the direct engine when
// the workload is built to defeat it — deep trampoline chains,
// boundary-dense bodies, palette-thrashing budgets and near-collision
// families — and the tiers must stay deterministic and bounded when
// capacity is squeezed to 1–2 entries so every request evicts.

import (
	"fmt"
	"testing"

	"npra/internal/core"
	"npra/internal/ir"
	"npra/internal/progen"
)

// advCfg keeps adversarial bodies small enough that the 100-seed sweep
// stays fast under -race while still exercising every shape's hostile
// structure.
var advCfg = progen.StructuredConfig{
	MaxDepth: 2, MaxBodyLen: 4, MaxTripCnt: 3, MaxVars: 6,
	CSBDensity: 0.3, StoreWindow: 64,
}

// advFunc materializes one adversarial body from a small seed pool so
// the cached run sees hits, evict-rebuild cycles and relocations.
func advFunc(t *testing.T, shape progen.Shape, seed int64) *ir.Func {
	t.Helper()
	f, err := progen.FromSeedShape(shape, seed, advCfg)
	if err != nil {
		t.Fatalf("%s seed %d: %v", shape, seed, err)
	}
	f.Name = fmt.Sprintf("%s%d", shape, seed)
	return f
}

// TestAdversarialCachedDifferential is the acceptance-criteria sweep:
// for every adversarial generator, 100 seeded requests through the
// production cache wiring (function cache feeding a deliberately tiny
// rewrite cache) must match a direct, cache-free run bit for bit —
// grants, textual rewrites and interpreter behavior (diffAllocs) — and
// the caches must actually have been stressed (hits AND evictions).
func TestAdversarialCachedDifferential(t *testing.T) {
	for _, shape := range progen.Shapes() {
		shape := shape
		t.Run(string(shape), func(t *testing.T) {
			cache := New(Config{Entries: 4, MaxIdle: 1, Shards: 1})
			rc := NewRewriteCache(RewriteConfig{Entries: 8, KeyFn: cache.FuncKey})
			for i := int64(0); i < 100; i++ {
				// A fixed hot request (so both the function tier and the
				// budget-keyed rewrite tier see genuine reuse) alternates
				// with churn requests over 12 distinct bodies and shifting
				// register files, which grind the tiny caches through
				// eviction between every hot reuse.
				funcs := []*ir.Func{advFunc(t, shape, 0), advFunc(t, shape, 1)}
				nreg := 32
				if i%2 == 1 {
					funcs = []*ir.Func{
						advFunc(t, shape, 3+(i/2)%5),
						advFunc(t, shape, 8+(i/2)%7),
					}
					nreg = 16 + int(i/2%2)*32 // heterogeneous profiles: 16/48
				}
				direct, directErr := core.AllocateARA(funcs, core.Config{NReg: nreg})
				cached, cachedErr := core.AllocateARA(funcs, core.Config{NReg: nreg, FuncCache: cache, RewriteCache: rc})
				if (directErr == nil) != (cachedErr == nil) {
					t.Fatalf("request %d: direct err %v vs cached err %v", i, directErr, cachedErr)
				}
				if directErr != nil {
					continue
				}
				if err := diffAllocs(direct, cached); err != nil {
					t.Fatalf("request %d (nreg %d): %v", i, nreg, err)
				}
			}
			fst, rst := cache.Stats(), rc.Stats()
			if fst.Hits == 0 || rst.Hits+rst.RelocHits == 0 {
				t.Errorf("caches never hit (func %+v, rewrite %+v): differential proved nothing", fst, rst)
			}
			if fst.Evictions == 0 || rst.Evictions == 0 {
				t.Errorf("caches never evicted (func %+v, rewrite %+v): thrash regime not reached", fst, rst)
			}
		})
	}
}

// TestFuncCacheEvictionThrashCap pins determinism and metric sanity at
// capacities 1 and 2 on a single shard: the same request stream run
// twice against fresh caches produces identical counters, evictions
// grow monotonically, Entries never exceeds the cap and Bytes never
// goes negative.
func TestFuncCacheEvictionThrashCap(t *testing.T) {
	for _, capn := range []int{1, 2} {
		t.Run(fmt.Sprintf("cap%d", capn), func(t *testing.T) {
			run := func() (Stats, []Stats) {
				c := New(Config{Entries: capn, Shards: 1, MaxIdle: 1})
				var trace []Stats
				prev := int64(0)
				for i := int64(0); i < 20; i++ {
					exercise(t, c, advFunc(t, progen.ShapePalette, i%4), true)
					st := c.Stats()
					if st.Evictions < prev {
						t.Fatalf("step %d: evictions regressed %d -> %d", i, prev, st.Evictions)
					}
					prev = st.Evictions
					if st.Entries > int64(capn) {
						t.Fatalf("step %d: %d entries exceeds cap %d", i, st.Entries, capn)
					}
					if st.Bytes < 0 {
						t.Fatalf("step %d: Bytes = %d went negative", i, st.Bytes)
					}
					trace = append(trace, st)
				}
				return c.Stats(), trace
			}
			a, ta := run()
			b, tb := run()
			if a != b {
				t.Errorf("run-twice stats differ: %+v vs %+v", a, b)
			}
			for i := range ta {
				if ta[i] != tb[i] {
					t.Errorf("step %d stats differ across runs: %+v vs %+v", i, ta[i], tb[i])
				}
			}
			if a.Evictions == 0 {
				t.Errorf("stats = %+v: a 4-body stream over cap %d never evicted", a, capn)
			}
		})
	}
}

// TestFuncCacheNoStaleReuseAfterEviction pins the eviction race from
// the checkin contract: an allocator checked out before its entry was
// evicted and rebuilt must be discarded at checkin (its memo Contexts
// point into the dead analysis), never pooled into the new entry.
func TestFuncCacheNoStaleReuseAfterEviction(t *testing.T) {
	c := New(Config{Entries: 1, Shards: 1, MaxIdle: 2})
	fa := advFunc(t, progen.ShapeBoundary, 1)
	exercise(t, c, fa, true) // install A with one pooled allocator

	al, checkin, err := c.Checkout(fa) // hold A's warm allocator out
	if err != nil {
		t.Fatal(err)
	}
	oldAnalysis := al.A
	exercise(t, c, advFunc(t, progen.ShapeBoundary, 2), true) // evicts A
	exercise(t, c, fa, true)                                  // rebuilds A with a fresh analysis

	preDiscards := c.Stats().Discards
	checkin(true) // stale: analysis mismatch, must be dropped
	st := c.Stats()
	if st.Discards != preDiscards+1 {
		t.Fatalf("Discards = %d, want %d: stale allocator was not discarded", st.Discards, preDiscards+1)
	}

	al2, checkin2, err := c.Checkout(fa)
	if err != nil {
		t.Fatal(err)
	}
	if al2.A == oldAnalysis {
		t.Error("checkout after evict+rebuild returned the stale analysis")
	}
	checkin2(true)
}

// TestRewriteCacheEvictionThrashTiny squeezes the rewrite tier to 1–2
// entries so every allocation evicts: the same stream run twice stays
// bit-identical (diffAllocs against a direct run each step), counters
// replay exactly, evictions are monotone and bytes track live entries
// without going negative.
func TestRewriteCacheEvictionThrashTiny(t *testing.T) {
	for _, capn := range []int{1, 2} {
		t.Run(fmt.Sprintf("cap%d", capn), func(t *testing.T) {
			run := func() RewriteCacheStats {
				rc := NewRewriteCache(RewriteConfig{Entries: capn})
				prev := int64(0)
				for i := int64(0); i < 16; i++ {
					funcs := []*ir.Func{advFunc(t, progen.ShapeTrampoline, i%4)}
					direct, err := core.AllocateARA(funcs, core.Config{NReg: 32})
					if err != nil {
						t.Fatal(err)
					}
					cached, err := core.AllocateARA(funcs, core.Config{NReg: 32, RewriteCache: rc})
					if err != nil {
						t.Fatal(err)
					}
					if derr := diffAllocs(direct, cached); derr != nil {
						t.Fatalf("request %d: %v", i, derr)
					}
					st := rc.Stats()
					if st.Evictions < prev {
						t.Fatalf("step %d: evictions regressed %d -> %d", i, prev, st.Evictions)
					}
					prev = st.Evictions
					if st.Entries > int64(capn) {
						t.Fatalf("step %d: %d entries exceeds cap %d", i, st.Entries, capn)
					}
					if st.Bytes < 0 {
						t.Fatalf("step %d: Bytes = %d went negative", i, st.Bytes)
					}
				}
				return rc.Stats()
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("run-twice stats differ: %+v vs %+v", a, b)
			}
			if a.Evictions == 0 {
				t.Errorf("stats = %+v: stream over cap %d never evicted", a, capn)
			}
		})
	}
}

// TestRewriteCacheNoStaleReuseAfterEviction holds a pointer served by
// the rewrite cache across an eviction storm and verifies the old body
// is immutable (still frozen, same text) and the re-populated entry
// serves an equivalent body rather than resurrecting the dead pointer's
// storage mutated in place.
func TestRewriteCacheNoStaleReuseAfterEviction(t *testing.T) {
	rc := NewRewriteCache(RewriteConfig{Entries: 1})
	funcs := []*ir.Func{advFunc(t, progen.ShapeNearCollision, 5)}
	first, err := core.AllocateARA(funcs, core.Config{NReg: 32, RewriteCache: rc})
	if err != nil {
		t.Fatal(err)
	}
	held := first.Threads[0].F
	heldText := held.Format()
	if !held.Frozen() {
		t.Fatal("cache-served body is not frozen")
	}
	for i := int64(6); i < 10; i++ { // storm: each run evicts the last
		if _, err := core.AllocateARA([]*ir.Func{advFunc(t, progen.ShapeNearCollision, i)}, core.Config{NReg: 32, RewriteCache: rc}); err != nil {
			t.Fatal(err)
		}
	}
	again, err := core.AllocateARA(funcs, core.Config{NReg: 32, RewriteCache: rc})
	if err != nil {
		t.Fatal(err)
	}
	if held.Format() != heldText {
		t.Error("evicted rewrite body mutated after eviction")
	}
	if got := again.Threads[0].F.Format(); got != heldText {
		t.Errorf("re-populated entry rewrote differently:\n%s\nvs\n%s", got, heldText)
	}
}
