package linscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/chaitin"
	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

func physRange(base, n int) []ir.Reg {
	out := make([]ir.Reg, n)
	for i := range out {
		out[i] = ir.Reg(base + i)
	}
	return out
}

func highPressure() *ir.Func {
	bu := ir.NewBuilder("pressure")
	bu.Label("entry")
	var regs []ir.Reg
	for i := 0; i < 10; i++ {
		regs = append(regs, bu.Set(int64(i*7+1)))
	}
	bu.Ctx()
	acc := bu.Op3(ir.OpAdd, regs[0], regs[1])
	for _, r := range regs[2:] {
		bu.Op3To(ir.OpAdd, acc, acc, r)
	}
	addr := bu.Set(0)
	bu.Store(addr, 0, acc)
	bu.Halt()
	return bu.MustFinish()
}

func TestNoSpillWhenRoomy(t *testing.T) {
	f := highPressure()
	res, err := Allocate(f, Options{Phys: physRange(0, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled != 0 {
		t.Errorf("spilled %d with 16 regs", res.Spilled)
	}
	assertEquivalent(t, f, res.F, 0)
}

func TestSpillsUnderPressure(t *testing.T) {
	f := highPressure()
	res, err := Allocate(f, Options{Phys: physRange(0, 6), SpillBase: 256, SpillStride: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled == 0 {
		t.Fatal("no spills with 6 regs and pressure 11")
	}
	if res.F.Stats().CSBs <= f.Stats().CSBs {
		t.Errorf("spill code added no context switches")
	}
	assertEquivalent(t, f, res.F, 0)
	assertEquivalent(t, f, res.F, 2)
}

func TestPartitionRespected(t *testing.T) {
	f := highPressure()
	res, err := Allocate(f, Options{Phys: physRange(32, 8), SpillBase: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.F.RegsUsed() {
		if r < 32 || r >= 40 {
			t.Errorf("register r%d outside partition [32,40)", r)
		}
	}
}

// Linear scan's coarse intervals can only ever use MORE registers (or
// spill more) than graph coloring, never produce wrong code. Compare the
// two baselines head-to-head.
func TestAgainstChaitin(t *testing.T) {
	f := highPressure()
	ls, err := Allocate(f, Options{Phys: physRange(0, 16)})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := chaitin.Allocate(f, chaitin.Options{Phys: physRange(0, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if ls.RegsUsed < ch.RegsUsed {
		t.Errorf("linear scan used fewer registers (%d) than coloring (%d)?", ls.RegsUsed, ch.RegsUsed)
	}
	m1 := make([]uint32, 128)
	m2 := make([]uint32, 128)
	r1, _ := interp.Run(ls.F, m1, interp.Options{})
	r2, _ := interp.Run(ch.F, m2, interp.Options{})
	if err := interp.Equivalent(r1, r2); err != nil {
		t.Errorf("the two baselines diverge: %v", err)
	}
}

func assertEquivalent(t *testing.T, orig, alloc *ir.Func, tid uint32) {
	t.Helper()
	m1 := make([]uint32, 512)
	m2 := make([]uint32, 512)
	r1, err := interp.Run(orig, m1, interp.Options{TID: tid, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Halted {
		t.Skip("original does not halt")
	}
	r2, err := interp.Run(alloc, m2, interp.Options{TID: tid, MaxSteps: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Halted != r2.Halted || r1.Iters != r2.Iters {
		t.Fatalf("diverged: halted %v/%v", r1.Halted, r2.Halted)
	}
	for i := 0; i < 16; i++ {
		if m1[i] != m2[i] {
			t.Errorf("mem[%d] = %#x vs %#x\n%s", i*4, m1[i], m2[i], alloc.Format())
			break
		}
	}
}

// Property: random programs allocate correctly at random partition sizes.
func TestQuickLinearScanEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		k := 5 + rng.Intn(8)
		base := rng.Intn(32)
		res, err := Allocate(f, Options{
			Phys: physRange(base, k), SpillBase: 512, SpillStride: 128,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, r := range res.F.RegsUsed() {
			if int(r) < base || int(r) >= base+k {
				return false
			}
		}
		m1 := make([]uint32, 512)
		m2 := make([]uint32, 512)
		r1, err := interp.Run(f, m1, interp.Options{MaxSteps: 20000})
		if err != nil || !r1.Halted {
			return true
		}
		r2, err := interp.Run(res.F, m2, interp.Options{MaxSteps: 400000})
		if err != nil {
			return false
		}
		if r1.Halted != r2.Halted || r1.Iters != r2.Iters {
			return false
		}
		for i := 0; i < 16; i++ {
			if m1[i] != m2[i] {
				t.Logf("seed %d: mem[%d] differs", seed, i*4)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
