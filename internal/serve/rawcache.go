package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"npra/internal/core"
	"npra/internal/ir"
)

// rawCache is the zero-copy front door of the request path: a bounded
// LRU keyed by the sha256 of the *raw request bytes*, holding everything
// the decode pipeline would derive from them — the normalized
// WireRequest, its compiled thread bodies and its canonical engine key.
// A byte-identical repeat (the common shape under load generators,
// retries and fan-in proxies, which all re-serialize the same struct)
// skips JSON decoding, body compilation and canonical hashing entirely:
// one pass over the raw bytes replaces them all.
//
// Entries are only stored after the full pipeline succeeded, so error
// responses are never cached, and the stored request is the normalized
// form (NReg defaulted) — cached state is read-only from then on; the
// handler must never write through it.
type rawCache struct {
	mu      sync.Mutex
	entries map[string]*rawEntry
	lru     *list.List // front = most recently used; values are *rawEntry
	cap     int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type rawEntry struct {
	rawKey string
	key    string            // canonical engine key (flight/dedup key)
	req    *core.WireRequest // normalized; shared read-only
	funcs  []*ir.Func
	elem   *list.Element
}

// rawStats is a point-in-time snapshot of the raw-request cache.
type rawStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
}

func newRawCache(entries int) *rawCache {
	return &rawCache{
		entries: make(map[string]*rawEntry),
		lru:     list.New(),
		cap:     entries,
	}
}

// rawRequestKey is the one-pass content key over the raw request bytes.
func rawRequestKey(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

func (c *rawCache) stats() rawStats {
	st := rawStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
	c.mu.Lock()
	st.Entries = int64(len(c.entries))
	c.mu.Unlock()
	return st
}

// lookup returns the cached pipeline products for the raw key, marking
// the entry most recently used.
func (c *rawCache) lookup(rawKey string) (*rawEntry, bool) {
	c.mu.Lock()
	e, ok := c.entries[rawKey]
	if ok {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// store inserts one successfully-decoded request under the LRU bound.
// First insertion wins on a race; the loser's products are equivalent.
func (c *rawCache) store(rawKey, key string, req *core.WireRequest, funcs []*ir.Func) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[rawKey]; ok {
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &rawEntry{rawKey: rawKey, key: key, req: req, funcs: funcs}
	e.elem = c.lru.PushFront(e)
	c.entries[rawKey] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*rawEntry)
		c.lru.Remove(back)
		delete(c.entries, victim.rawKey)
		c.evictions.Add(1)
	}
}
