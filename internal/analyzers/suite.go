// Package analyzers assembles the npravet suite: the eight invariant
// analyzers grown out of PRs 1–8, ready for the cmd/npravet
// multichecker, make lint, CI and the in-repo selfcheck test.
//
// The suite is intentionally closed over this repository's invariants —
// it is not a general-purpose linter. Each pass documents the PR that
// established the invariant it enforces; docs/INTERNALS.md "Static
// invariants & linting" is the user-facing index.
package analyzers

import (
	"npra/internal/analyzers/anz"
	"npra/internal/analyzers/cachealias"
	"npra/internal/analyzers/ctxplumb"
	"npra/internal/analyzers/detlint"
	"npra/internal/analyzers/errtaxonomy"
	"npra/internal/analyzers/frozenfunc"
	"npra/internal/analyzers/panicfree"
	"npra/internal/analyzers/poolalias"
	"npra/internal/analyzers/sleeplint"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
func Suite() []*anz.Analyzer {
	return []*anz.Analyzer{
		cachealias.Analyzer,
		ctxplumb.Analyzer,
		detlint.Analyzer,
		errtaxonomy.Analyzer,
		frozenfunc.Analyzer,
		panicfree.Analyzer,
		poolalias.Analyzer,
		sleeplint.Analyzer,
	}
}
