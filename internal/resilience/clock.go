package resilience

import "time"

// clockNow is the package's single wall-clock access point. Wall time
// here drives client-side retry/breaker timing only — it never reaches
// the allocation engine, so the PR-1 determinism contract (identical
// requests → bit-identical allocations) is untouched; the jitter PRNG
// is a seeded splitmix64 (see Client.nextRand), not wall-clock seeded.
func clockNow() time.Time { return time.Now() } //lint:ignore detlint client-side breaker cooldown and deadline-budget timing; wall time never feeds an allocation decision
