// Command npra is the cross-thread register allocator driver: it reads
// one assembly file per hardware thread (or picks built-in benchmarks),
// runs the paper's inter-thread balancing allocation, and reports the
// per-thread register grants, move costs and (optionally) the rewritten
// physical-register assembly.
//
// Usage:
//
//	npra [-nreg 128] [-mode ara|sra] [-threads 4] [-j N] [-timeout D]
//	     [-dump] [-verify] (-bench name[,name...] | file.asm [file2.asm ...])
//
// Examples:
//
//	npra -bench md5,md5,fir2dim,fir2dim        # paper Table 3 scenario 1
//	npra -mode sra -threads 4 -bench md5       # symmetric allocation
//	npra t1.asm t2.asm -dump                   # your own code, print result
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"npra/internal/bench"
	"npra/internal/core"
	"npra/internal/encoding"
	"npra/internal/ir"
	"npra/internal/masm"
	"npra/internal/passes"
	"npra/internal/schedcheck"
)

func main() {
	var (
		nreg     = flag.Int("nreg", 128, "register file size of the processing unit")
		mode     = flag.String("mode", "ara", "allocation mode: ara (per-thread code) or sra (same code on all threads)")
		threads  = flag.Int("threads", 4, "thread count for -mode sra")
		benches  = flag.String("bench", "", "comma-separated built-in benchmark names (see npbench -list)")
		packets  = flag.Int("packets", 64, "packets per thread for generated benchmarks")
		dump     = flag.Bool("dump", false, "print the rewritten physical-register assembly")
		verify   = flag.Bool("verify", true, "statically verify the allocation safety contract")
		optimize = flag.Bool("O", false, "run the optimization pipeline before allocation")
		objDir   = flag.String("o", "", "write per-thread object files (.npo) into this directory")
		schedchk = flag.Bool("check-schedules", false, "model-check the allocation: explore every thread schedule (small programs only)")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for candidate pricing (1 = serial; the allocation is identical for any value)")
		timeout  = flag.Duration("timeout", 0, "allocation deadline (0 = none); on expiry the allocator falls back to the even static partition")
	)
	flag.Parse()
	if err := run(*nreg, *mode, *threads, *benches, *packets, *jobs, *timeout, *dump, *verify, *optimize, *schedchk, *objDir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "npra:", err)
		os.Exit(1)
	}
}

func run(nreg int, mode string, threads int, benches string, packets, jobs int, timeout time.Duration, dump, verify, optimize, schedchk bool, objDir string, files []string) error {
	funcs, err := loadFuncs(benches, packets, files)
	if err != nil {
		return err
	}
	if optimize {
		for i, f := range funcs {
			opt, st, err := passes.Optimize(f)
			if err != nil {
				return fmt.Errorf("optimizing %s: %w", f.Name, err)
			}
			if st.Total() > 0 {
				fmt.Printf("optimized %s: %d changes (%d dead, %d copies, %d folds)\n",
					f.Name, st.Total(), st.DeadRemoved, st.CopiesReplaced, st.Folded)
			}
			funcs[i] = opt
		}
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var alloc *core.Allocation
	switch mode {
	case "ara":
		alloc, err = core.AllocateARACtx(ctx, funcs, core.Config{NReg: nreg, Workers: jobs})
	case "sra":
		if len(funcs) != 1 {
			return fmt.Errorf("-mode sra takes exactly one program, got %d", len(funcs))
		}
		alloc, err = core.AllocateSRACtx(ctx, funcs[0], threads, core.Config{NReg: nreg, Workers: jobs})
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	if err != nil {
		return err
	}
	if alloc.Degraded {
		fmt.Printf("DEGRADED: fell back to the even static partition (%v)\n", alloc.Cause)
	}
	if verify {
		if err := alloc.Verify(); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
	}

	fmt.Printf("allocation for %d threads on %d registers (SGR=%d, total=%d)\n",
		len(alloc.Threads), nreg, alloc.SGR, alloc.TotalRegisters())
	fmt.Printf("%-3s %-14s %4s %4s %7s %6s %8s %10s %12s\n",
		"thd", "program", "PR", "SR", "private", "moves", "#pieces", "bounds", "min-bounds")
	for i, t := range alloc.Threads {
		fmt.Printf("%-3d %-14s %4d %4d %3d..%-3d %6d %8d %5d/%-4d %6d/%-4d\n",
			i, t.Name, t.PR, t.SR, t.PrivBase, t.PrivBase+t.PR-1, t.Stats.Added(),
			t.LiveRanges, t.Bounds.MaxPR, t.Bounds.MaxR, t.Bounds.MinPR, t.Bounds.MinR)
	}
	if verify {
		fmt.Println("safety: verified (no value live across a context switch leaves its private range)")
	}
	if schedchk {
		var fs []*ir.Func
		for _, t := range alloc.Threads {
			fs = append(fs, t.F)
		}
		res, err := schedcheck.Check(fs, schedcheck.Options{MaxPaths: 500_000, MaxSteps: 500_000})
		if err != nil {
			return fmt.Errorf("schedule check FAILED: %w", err)
		}
		suffix := ""
		if res.Bounded {
			suffix = " (path budget hit; result partial)"
		}
		fmt.Printf("schedules: %d interleavings explored, single outcome%s\n", res.Paths, suffix)
	}
	if dump {
		for i, t := range alloc.Threads {
			fmt.Printf("\n--- thread %d (%s) ---\n%s", i, t.Name, t.F.Format())
		}
	}
	if objDir != "" {
		if err := os.MkdirAll(objDir, 0o755); err != nil {
			return err
		}
		for i, t := range alloc.Threads {
			data, err := encoding.Encode(t.F)
			if err != nil {
				return fmt.Errorf("encoding thread %d: %w", i, err)
			}
			path := filepath.Join(objDir, fmt.Sprintf("thread%d_%s.npo", i, t.Name))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
		}
	}
	return nil
}

func loadFuncs(benches string, packets int, files []string) ([]*ir.Func, error) {
	if benches != "" && len(files) > 0 {
		return nil, fmt.Errorf("give either -bench or files, not both")
	}
	var funcs []*ir.Func
	if benches != "" {
		for _, name := range strings.Split(benches, ",") {
			b, err := bench.Get(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			funcs = append(funcs, b.Gen(packets))
		}
		return funcs, nil
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no input: give -bench names or assembly files (one per thread)")
	}
	for _, path := range files {
		f, err := loadProgram(path)
		if err != nil {
			return nil, err
		}
		funcs = append(funcs, f)
	}
	return funcs, nil
}

// loadProgram reads an assembly (.asm/.s) or object (.npo) file.
func loadProgram(path string) (*ir.Func, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".npo") {
		f, err := encoding.Decode(src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return f, nil
	}
	// Assembly goes through the macro assembler (plain assembly passes
	// through unchanged); .include resolves relative to the file's dir.
	f, err := masm.AssembleFS(string(src), os.DirFS(filepath.Dir(path)))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
