// Command npravet is the multichecker driver for the repository's
// invariant analyzers (internal/analyzers): the PR-1..8 syntactic
// passes (detlint, errtaxonomy, panicfree, ctxplumb, poolalias,
// cachealias, sleeplint, frozenfunc) plus the PR-9 concurrency trio on
// the CFG/dataflow layer (lockorder, goleak, atomicmix), plus
// verification of the //lint:ignore / //lint:invariant directives
// themselves.
//
// Usage:
//
//	npravet [-list] [-run name,...] [-json] [packages]
//
// Packages default to ./... relative to the enclosing module. npravet
// analyzes non-test sources (test files are exempt from every invariant
// by design). -run restricts the run to a comma-separated subset of
// analyzers (directive verification of unused suppressions is skipped
// for partial runs, since absent analyzers cannot consume directives).
// -json emits findings as a JSON array on stdout instead of the
// plain-text lines, for the CI artifact upload; exit status is
// unchanged. Exit status is 1 when any diagnostic survives
// suppression, 2 on operational failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"npra/internal/analyzers"
	"npra/internal/analyzers/anz"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: npravet [-list] [-run name,...] [-json] [packages]\n\nEnforces the allocator's invariants statically; see docs/INTERNALS.md.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyzers.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runNames != "" {
		var err error
		suite, err = filterSuite(suite, *runNames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npravet:", err)
			os.Exit(2)
		}
	}

	modDir, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "npravet:", err)
		os.Exit(2)
	}
	pats := flag.Args()
	if len(pats) == 0 {
		pats = []string{"./..."}
	}
	cfg := &anz.LoadConfig{ModulePath: modPath, ModuleDir: modDir}
	pkgs, err := cfg.Load(pats...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npravet:", err)
		os.Exit(2)
	}
	diags, err := anz.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npravet:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		pos := &diags[i].Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
	}
	if *asJSON {
		emitJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "npravet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// filterSuite restricts the suite to the named analyzers, rejecting
// unknown names so a typo fails loudly instead of passing vacuously.
func filterSuite(suite []*anz.Analyzer, names string) ([]*anz.Analyzer, error) {
	byName := make(map[string]*anz.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*anz.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}

// jsonFinding is the -json output schema, consumed by the CI artifact
// upload; field names are stable.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emitJSON(diags []anz.Diagnostic) {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "npravet:", err)
		os.Exit(2)
	}
}

// findModule walks up from the working directory to the enclosing
// go.mod and returns its directory and module path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(gomod); statErr == nil {
			f, err := os.Open(gomod)
			if err != nil {
				return "", "", err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}
