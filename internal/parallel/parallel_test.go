package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { t.Fatal("fn called"); return 0 }); len(got) != 0 {
		t.Errorf("len = %d", len(got))
	}
}

// One worker must mean a plain serial ascending loop on the calling
// goroutine — the property core relies on for -j 1 reproducing the
// sequential allocator exactly.
func TestSingleWorkerSerialAscending(t *testing.T) {
	var order []int
	ForEach(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak atomic.Int64
	ForEach(workers, n, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent calls, cap %d", p, workers)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int32, n)
	ForEach(8, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestMapErrLowestIndexWins(t *testing.T) {
	ctx := context.Background()
	// Serial: the very first failing index is returned and nothing after
	// it runs, so the message is exact.
	_, err := MapErr(ctx, 1, 20, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "fail 1" {
		t.Errorf("workers=1: err = %v, want fail 1", err)
	}
	// Parallel: early-stopping means later odd indices may never run, but
	// the reported error is the lowest-index failure among those that did.
	_, err = MapErr(ctx, 4, 20, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	})
	if err == nil || !strings.HasPrefix(err.Error(), "fail ") {
		t.Errorf("workers=4: err = %v, want some odd-index failure", err)
	}
	got, err := MapErr(ctx, 4, 5, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

// A poisoned item at index 0 of a large slice must stop the fan-out
// early: MapErr must not march on and run all remaining items after the
// first failure (the regression this guards: the old implementation
// launched every index regardless).
func TestMapErrStopsAfterFirstError(t *testing.T) {
	const n = 100_000
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		_, err := MapErr(context.Background(), workers, n, func(i int) (int, error) {
			calls.Add(1)
			if i == 0 {
				return 0, errors.New("poisoned")
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "poisoned") {
			t.Fatalf("workers=%d: err = %v, want poisoned", workers, err)
		}
		// Workers already past the check may finish their current item;
		// anything near n means early-stop is broken.
		if c := calls.Load(); c > n/10 {
			t.Errorf("workers=%d: %d of %d items ran after a poisoned index 0", workers, c, n)
		}
	}
}

func TestMapErrContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		_, err := MapErr(ctx, workers, 50, func(i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// Cancellation mid-flight also stops the handout.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := MapErr(ctx2, 4, 100_000, func(i int) (int, error) {
		if calls.Add(1) == 10 {
			cancel2()
		}
		return i, nil
	})
	cancel2()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-flight: err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c > 10_000 {
		t.Errorf("%d items ran after cancellation", c)
	}
}

// Worker panics must not kill the process from a worker goroutine: they
// are transported back and re-raised on the calling goroutine, wrapped
// in *Panic with the worker's stack attached.
func TestPanicTransport(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T (%v), want *Panic", workers, r, r)
				}
				if fmt.Sprint(p.Value) != "boom 3" {
					t.Errorf("workers=%d: panic value %v", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Errorf("workers=%d: no stack captured", workers)
				}
			}()
			ForEach(workers, 10, func(i int) {
				if i == 3 {
					panic(fmt.Sprintf("boom %d", i))
				}
			})
			t.Fatalf("workers=%d: ForEach returned normally", workers)
		}()
	}
}

// Serial execution panics raw on the calling goroutine (no transport
// wrapper) — same goroutine, nothing to transport.
func TestPanicSerialRaw(t *testing.T) {
	defer func() {
		if r := recover(); fmt.Sprint(r) != "raw" {
			t.Errorf("recovered %v, want raw", r)
		}
	}()
	ForEach(1, 3, func(i int) { panic("raw") })
}

// A panicking worker must stop the index handout, and MapErr/Map must
// not hang waiting for the poisoned fan-out.
func TestPanicStopsHandout(t *testing.T) {
	var calls atomic.Int64
	func() {
		defer func() { recover() }()
		ForEach(4, 100_000, func(i int) {
			calls.Add(1)
			if i == 0 {
				panic("die")
			}
		})
	}()
	if c := calls.Load(); c > 10_000 {
		t.Errorf("%d items ran after a panic at index 0", c)
	}
}

func TestMapErrDelayRespectsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := MapErr(ctx, 2, 50, func(i int) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(2 * time.Millisecond):
			return i, nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("took %v to notice the deadline", el)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		workers, n int
		want       [][2]int
	}{
		{1, 5, [][2]int{{0, 5}}},
		{2, 5, [][2]int{{0, 3}, {3, 5}}},
		{3, 10, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{8, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{4, 0, nil},
	}
	for _, c := range cases {
		got := Chunks(c.workers, c.n)
		if len(got) != len(c.want) {
			t.Errorf("Chunks(%d,%d) = %v, want %v", c.workers, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Chunks(%d,%d)[%d] = %v, want %v", c.workers, c.n, i, got[i], c.want[i])
			}
		}
	}
	// Every index covered exactly once, in order.
	chunks := Chunks(7, 23)
	next := 0
	for _, ch := range chunks {
		if ch[0] != next {
			t.Fatalf("gap at %d: %v", next, chunks)
		}
		next = ch[1]
	}
	if next != 23 {
		t.Fatalf("coverage ends at %d", next)
	}
}
