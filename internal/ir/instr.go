// Package ir defines the intermediate representation used throughout npra:
// a small RISC instruction set modeled on the Intel IXP micro-engine
// microcode (~40 RISC instructions in the real hardware), with explicit
// context-switch semantics. Programs are functions made of labeled basic
// blocks over an unbounded set of virtual registers; register allocation
// rewrites them onto physical registers.
package ir

import "fmt"

// Reg names a register operand. Before allocation registers are virtual
// (v0, v1, ...); after allocation they index the physical register file
// (r0, r1, ...). NoReg marks an absent operand.
type Reg int32

// NoReg is the absent-operand sentinel.
const NoReg Reg = -1

// Op enumerates the instruction opcodes.
type Op uint8

// Instruction opcodes. Loads and stores access the shared memory and,
// like OpCtx, give up the CPU (they are context-switch points). All ALU
// operations complete in one cycle, as on the IXP1200.
const (
	OpInvalid Op = iota

	// Data movement and constants.
	OpSet // set rd, imm        rd = imm
	OpMov // mov rd, ra         rd = ra
	OpTID // tid rd             rd = hardware thread index

	// Three-register ALU.
	OpAdd // add rd, ra, rb
	OpSub // sub rd, ra, rb
	OpAnd // and rd, ra, rb
	OpOr  // or  rd, ra, rb
	OpXor // xor rd, ra, rb
	OpShl // shl rd, ra, rb
	OpShr // shr rd, ra, rb     (logical, on low 32 bits)
	OpMul // mul rd, ra, rb

	// Register-immediate ALU.
	OpAddI // addi rd, ra, imm
	OpSubI // subi rd, ra, imm
	OpAndI // andi rd, ra, imm
	OpOrI  // ori  rd, ra, imm
	OpXorI // xori rd, ra, imm
	OpShlI // shli rd, ra, imm
	OpShrI // shri rd, ra, imm
	OpMulI // muli rd, ra, imm
	OpNot  // not  rd, ra

	// Memory (context-switch points; ~20 cycle latency in the simulator).
	OpLoad   // load rd, [ra+imm]
	OpLoadA  // load rd, [imm]
	OpStore  // store [ra+imm], rb
	OpStoreA // store [imm], rb

	// Explicit context switch (voluntary yield; 1 cycle).
	OpCtx // ctx

	// Control flow.
	OpBr  // br label
	OpBZ  // bz  ra, label      branch if ra == 0
	OpBNZ // bnz ra, label      branch if ra != 0
	OpBEQ // beq ra, rb, label
	OpBNE // bne ra, rb, label
	OpBLT // blt ra, rb, label  (signed)
	OpBGE // bge ra, rb, label  (signed)

	// Markers.
	OpIter // iter               end of one main-loop iteration (statistics)
	OpHalt // halt
	OpNop  // nop

	opMax
)

var opNames = [opMax]string{
	OpInvalid: "invalid",
	OpSet:     "set",
	OpMov:     "mov",
	OpTID:     "tid",
	OpAdd:     "add",
	OpSub:     "sub",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpMul:     "mul",
	OpAddI:    "addi",
	OpSubI:    "subi",
	OpAndI:    "andi",
	OpOrI:     "ori",
	OpXorI:    "xori",
	OpShlI:    "shli",
	OpShrI:    "shri",
	OpMulI:    "muli",
	OpNot:     "not",
	OpLoad:    "load",
	OpLoadA:   "load",
	OpStore:   "store",
	OpStoreA:  "store",
	OpCtx:     "ctx",
	OpBr:      "br",
	OpBZ:      "bz",
	OpBNZ:     "bnz",
	OpBEQ:     "beq",
	OpBNE:     "bne",
	OpBLT:     "blt",
	OpBGE:     "bge",
	OpIter:    "iter",
	OpHalt:    "halt",
	OpNop:     "nop",
}

// String returns the assembly mnemonic for the opcode.
func (op Op) String() string {
	if op >= opMax {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opNames[op]
}

// Instr is a single instruction. Def is the written register (NoReg if
// none); A and B are the read registers (NoReg if unused); Imm is the
// immediate/offset; Target names the branch destination label.
type Instr struct {
	Op     Op
	Def    Reg
	A, B   Reg
	Imm    int64
	Target string
}

// IsCSB reports whether the instruction is a context-switch boundary:
// an explicit ctx or a memory operation (which blocks on the memory
// subsystem and yields the CPU, per the paper's machine model).
func (in *Instr) IsCSB() bool {
	switch in.Op {
	case OpCtx, OpLoad, OpLoadA, OpStore, OpStoreA:
		return true
	}
	return false
}

// IsBranch reports whether the instruction may transfer control to Target.
func (in *Instr) IsBranch() bool {
	switch in.Op {
	case OpBr, OpBZ, OpBNZ, OpBEQ, OpBNE, OpBLT, OpBGE:
		return true
	}
	return false
}

// IsUncond reports whether control never falls through to the next
// instruction (unconditional branch or halt).
func (in *Instr) IsUncond() bool {
	return in.Op == OpBr || in.Op == OpHalt
}

// Uses appends the registers read by the instruction to buf and returns it.
func (in *Instr) Uses(buf []Reg) []Reg {
	if in.A != NoReg {
		buf = append(buf, in.A)
	}
	if in.B != NoReg {
		buf = append(buf, in.B)
	}
	return buf
}

// HasDef reports whether the instruction writes a register.
func (in *Instr) HasDef() bool { return in.Def != NoReg }

// nOperands describes the operand shape of each opcode for validation
// and parsing: d = has def, a/b = register reads, i = immediate,
// t = branch target.
type opShape struct {
	d, a, b, i, t bool
}

var opShapes = [opMax]opShape{
	OpSet:    {d: true, i: true},
	OpMov:    {d: true, a: true},
	OpTID:    {d: true},
	OpAdd:    {d: true, a: true, b: true},
	OpSub:    {d: true, a: true, b: true},
	OpAnd:    {d: true, a: true, b: true},
	OpOr:     {d: true, a: true, b: true},
	OpXor:    {d: true, a: true, b: true},
	OpShl:    {d: true, a: true, b: true},
	OpShr:    {d: true, a: true, b: true},
	OpMul:    {d: true, a: true, b: true},
	OpAddI:   {d: true, a: true, i: true},
	OpSubI:   {d: true, a: true, i: true},
	OpAndI:   {d: true, a: true, i: true},
	OpOrI:    {d: true, a: true, i: true},
	OpXorI:   {d: true, a: true, i: true},
	OpShlI:   {d: true, a: true, i: true},
	OpShrI:   {d: true, a: true, i: true},
	OpMulI:   {d: true, a: true, i: true},
	OpNot:    {d: true, a: true},
	OpLoad:   {d: true, a: true, i: true},
	OpLoadA:  {d: true, i: true},
	OpStore:  {a: true, b: true, i: true},
	OpStoreA: {b: true, i: true},
	OpCtx:    {},
	OpBr:     {t: true},
	OpBZ:     {a: true, t: true},
	OpBNZ:    {a: true, t: true},
	OpBEQ:    {a: true, b: true, t: true},
	OpBNE:    {a: true, b: true, t: true},
	OpBLT:    {a: true, b: true, t: true},
	OpBGE:    {a: true, b: true, t: true},
	OpIter:   {},
	OpHalt:   {},
	OpNop:    {},
}

// String renders the instruction in assembly syntax, with virtual register
// spelling (vN). Use Func.Format for physical spelling.
func (in *Instr) String() string { return in.format(false) }

// StringPhysical renders the instruction with physical register spelling
// (rN); for tracers and debuggers working on allocated code.
func (in *Instr) StringPhysical() string { return in.format(true) }

func regName(r Reg, physical bool) string {
	if r == NoReg {
		return "?"
	}
	if physical {
		return fmt.Sprintf("r%d", r)
	}
	return fmt.Sprintf("v%d", r)
}

func (in *Instr) format(physical bool) string {
	d := func() string { return regName(in.Def, physical) }
	a := func() string { return regName(in.A, physical) }
	b := func() string { return regName(in.B, physical) }
	switch in.Op {
	case OpSet:
		return fmt.Sprintf("set %s, %d", d(), in.Imm)
	case OpMov, OpNot:
		return fmt.Sprintf("%s %s, %s", in.Op, d(), a())
	case OpTID:
		return fmt.Sprintf("tid %s", d())
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, d(), a(), b())
	case OpAddI, OpSubI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpMulI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, d(), a(), in.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, [%s+%d]", d(), a(), in.Imm)
	case OpLoadA:
		return fmt.Sprintf("load %s, [%d]", d(), in.Imm)
	case OpStore:
		return fmt.Sprintf("store [%s+%d], %s", a(), in.Imm, b())
	case OpStoreA:
		return fmt.Sprintf("store [%d], %s", in.Imm, b())
	case OpCtx, OpIter, OpHalt, OpNop:
		return in.Op.String()
	case OpBr:
		return fmt.Sprintf("br %s", in.Target)
	case OpBZ, OpBNZ:
		return fmt.Sprintf("%s %s, %s", in.Op, a(), in.Target)
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, a(), b(), in.Target)
	}
	return fmt.Sprintf("invalid(%d)", uint8(in.Op))
}
