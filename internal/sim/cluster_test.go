package sim

import (
	"testing"

	"npra/internal/ir"
)

// TestClusterMatchesSinglePU: driving one PU through the lockstep cluster
// engine must reproduce the validated single-PU engine exactly.
func TestClusterMatchesSinglePU(t *testing.T) {
	src := `
a:
	tid v9
	shli v9, v9, 8
	set v0, 30
loop:
	load v1, [v9+0]
	add v1, v1, v0
	store [v9+0], v1
	iter
	ctx
	subi v0, v0, 1
	bnz v0, loop
	halt`
	mk := func() []*Thread {
		return []*Thread{
			{F: ir.MustParse(src)},
			{F: ir.MustParse(src)},
			{F: ir.MustParse(src)},
		}
	}
	single, err := Run(mk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := RunCluster([]PU{{Threads: mk()}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Threads {
		s, c := single.Threads[i], cluster.PUs[0].Threads[i]
		if s.Instrs != c.Instrs || s.Iters != c.Iters || s.CTX != c.CTX || s.BusyCycles != c.BusyCycles {
			t.Errorf("thread %d diverged: single %+v cluster %+v", i, s, c)
		}
		if s.LastIterAt != c.LastIterAt {
			t.Errorf("thread %d timing diverged: %d vs %d", i, s.LastIterAt, c.LastIterAt)
		}
	}
	// Memory images must match too.
	for i := 0; i < 1024; i++ {
		if single.Mem[i] != cluster.Mem[i] {
			t.Fatalf("mem[%d] differs: %d vs %d", i*4, single.Mem[i], cluster.Mem[i])
		}
	}
}

// Ring-buffer queue between two PUs in shared memory (the paper's
// Figure 2.a pipeline organization).
const producerSrc = `
func producer
entry:
	set v0, 0        ; item counter
	set v1, 24       ; items to produce
loop:
	load v2, [8192]  ; head
	load v3, [8196]  ; tail
	sub v4, v2, v3
	subi v4, v4, 8
	bz v4, full      ; ring full (head-tail == 8)
	andi v5, v2, 7
	shli v5, v5, 2
	addi v5, v5, 8200
	muli v6, v0, 3   ; item value = 3*counter
	store [v5+0], v6
	addi v2, v2, 1
	store [8192], v2
	iter
	addi v0, v0, 1
	subi v1, v1, 1
	bnz v1, loop
	halt
full:
	ctx
	br loop
`

const consumerSrc = `
func consumer
entry:
	set v0, 0        ; sum
	set v1, 24       ; items to consume
loop:
	load v2, [8192]  ; head
	load v3, [8196]  ; tail
	bne v2, v3, take
	ctx
	br loop
take:
	andi v5, v3, 7
	shli v5, v5, 2
	addi v5, v5, 8200
	load v6, [v5+0]
	add v0, v0, v6
	addi v3, v3, 1
	store [8196], v3
	iter
	subi v1, v1, 1
	bnz v1, loop
	store [8240], v0
	halt
`

func TestClusterPipeline(t *testing.T) {
	res, err := RunCluster([]PU{
		{Threads: []*Thread{{F: ir.MustParse(producerSrc)}}, TIDBase: 0},
		{Threads: []*Thread{{F: ir.MustParse(consumerSrc)}}, TIDBase: 4},
	}, Config{MaxCycles: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	prod := res.PUs[0].Threads[0]
	cons := res.PUs[1].Threads[0]
	if !prod.Halted || !cons.Halted {
		t.Fatalf("pipeline did not drain: producer %+v consumer %+v", prod, cons)
	}
	if prod.Iters != 24 || cons.Iters != 24 {
		t.Errorf("items: produced %d consumed %d, want 24", prod.Iters, cons.Iters)
	}
	wantSum := uint32(0)
	for i := uint32(0); i < 24; i++ {
		wantSum += 3 * i
	}
	if got := res.Mem[8240/4]; got != wantSum {
		t.Errorf("sum = %d, want %d", got, wantSum)
	}
	// The consumer must have spent cycles waiting (pipeline backpressure).
	if res.PUs[1].Idle == 0 {
		t.Errorf("consumer PU never idled; queue discipline suspicious")
	}
}

func TestClusterTIDBase(t *testing.T) {
	src := `
a:
	tid v0
	shli v1, v0, 2
	store [v1+0], v0
	halt`
	_, err := RunCluster([]PU{
		{Threads: []*Thread{{F: ir.MustParse(src)}, {F: ir.MustParse(src)}}, TIDBase: 0},
		{Threads: []*Thread{{F: ir.MustParse(src)}, {F: ir.MustParse(src)}}, TIDBase: 2},
	}, Config{MaxCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterTIDValues(t *testing.T) {
	src := `
a:
	tid v0
	shli v1, v0, 2
	addi v1, v1, 64
	store [v1+0], v0
	halt`
	res, err := RunCluster([]PU{
		{Threads: []*Thread{{F: ir.MustParse(src)}, {F: ir.MustParse(src)}}, TIDBase: 0},
		{Threads: []*Thread{{F: ir.MustParse(src)}, {F: ir.MustParse(src)}}, TIDBase: 2},
	}, Config{MaxCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
	for tid := uint32(0); tid < 4; tid++ {
		if got := res.Mem[16+tid]; got != tid {
			t.Errorf("tid slot %d = %d", tid, got)
		}
	}
}

func TestClusterProtection(t *testing.T) {
	victim := ir.MustParse(`
a:
	set r0, 7
loop:
	ctx
	br loop`)
	intruder := ir.MustParse(`
a:
	ctx
	set r0, 99
	halt`)
	// Same PU: detected.
	if _, err := RunCluster([]PU{{
		Threads: []*Thread{
			{F: victim, ProtectLo: 0, ProtectHi: 4},
			{F: intruder},
		},
	}}, Config{MaxCycles: 10000}); err == nil {
		t.Errorf("same-PU clobber not detected")
	}
	// Different PUs: different register files, no conflict.
	if _, err := RunCluster([]PU{
		{Threads: []*Thread{{F: victim.Clone(), ProtectLo: 0, ProtectHi: 4}}},
		{Threads: []*Thread{{F: intruder.Clone()}}},
	}, Config{MaxCycles: 10000}); err != nil {
		t.Errorf("cross-PU register files should be independent: %v", err)
	}
}
