package anz

import (
	"go/ast"
	"reflect"
	"testing"
)

// gen is a test lattice over StringSet: each block's effect is looked
// up in a table by block index ("+x" inserts x, "-x" removes it), and
// entry seeds the set given. It exercises the solver without needing
// type information.
type gen struct {
	entry   StringSet
	effects map[int][]string // block index -> ops
}

func (l *gen) Bottom() StringSet             { return StringSet{} }
func (l *gen) Entry() StringSet              { return l.entry }
func (l *gen) Join(a, b StringSet) StringSet { return a.Union(b) }
func (l *gen) Equal(a, b StringSet) bool     { return a.Equal(b) }
func (l *gen) Transfer(b *Block, in StringSet) StringSet {
	out := in
	for _, op := range l.effects[b.Index] {
		switch op[0] {
		case '+':
			out = out.Add(op[1:])
		case '-':
			out = out.Remove(op[1:])
		}
	}
	return out
}

// chainCFG hand-builds a CFG (bypassing the builder) so the tests
// control the exact shape: blocks[i] gets edges per edges[i].
func chainCFG(n int, edges map[int][]int) *CFG {
	g := &CFG{}
	for i := 0; i < n; i++ {
		g.Blocks = append(g.Blocks, &Block{Index: i})
	}
	for from, tos := range edges {
		for _, to := range tos {
			g.Blocks[from].Succs = append(g.Blocks[from].Succs, g.Blocks[to])
		}
	}
	g.Entry = g.Blocks[0]
	g.Exit = g.Blocks[n-1]
	return g
}

// TestSolveIdentityEntryPropagates is the regression for the bug the
// lockfix guardedUnlock fixture pins at the analyzer level: an entry
// block whose transfer is the identity must still enqueue its
// successors, or every downstream fact stays bottom.
func TestSolveIdentityEntryPropagates(t *testing.T) {
	// b0 (no effect) -> b1 (+mu) -> b2 -> b3(exit)
	g := chainCFG(4, map[int][]int{0: {1}, 1: {2}, 2: {3}})
	l := &gen{effects: map[int][]string{1: {"+mu"}}}
	f := Solve[StringSet](g, l)
	if !f.In[2].Has("mu") {
		t.Fatalf("fact did not propagate past identity entry block: In[2]=%v", f.In[2].Elems())
	}
	if !f.In[3].Has("mu") {
		t.Fatalf("fact did not reach exit: In[3]=%v", f.In[3].Elems())
	}
}

// TestSolveJoinIsUnion: facts from two branches merge as may-analysis
// union at the join point.
func TestSolveJoinIsUnion(t *testing.T) {
	//      /-> b1 (+a) -\
	// b0 ->              -> b3 -> b4(exit)
	//      \-> b2 (+b) -/
	g := chainCFG(5, map[int][]int{0: {1, 2}, 1: {3}, 2: {3}, 3: {4}})
	l := &gen{effects: map[int][]string{1: {"+a"}, 2: {"+b"}}}
	f := Solve[StringSet](g, l)
	if !f.In[3].Has("a") || !f.In[3].Has("b") {
		t.Fatalf("join point must union both branches: In[3]=%v", f.In[3].Elems())
	}
}

// TestSolveLoopFixpoint: a loop whose body adds a fact reaches a
// fixpoint (the fact flows around the back edge into the head's In)
// and terminates.
func TestSolveLoopFixpoint(t *testing.T) {
	// b0 -> b1(head) -> b2(body +x) -> b1 ; b1 -> b3(exit)
	g := chainCFG(4, map[int][]int{0: {1}, 1: {2, 3}, 2: {1}})
	l := &gen{effects: map[int][]string{2: {"+x"}}}
	f := Solve[StringSet](g, l)
	if !f.In[1].Has("x") {
		t.Fatalf("back edge fact missing at head: In[1]=%v", f.In[1].Elems())
	}
	if !f.In[3].Has("x") {
		t.Fatalf("loop-exit fact missing: In[3]=%v", f.In[3].Elems())
	}
}

// TestSolveKillOnOnePath: a fact killed on one branch but not the
// other survives the join (may-analysis), which is exactly what the
// lockorder unlock-balance check needs.
func TestSolveKillOnOnePath(t *testing.T) {
	g := chainCFG(5, map[int][]int{0: {1, 2}, 1: {3}, 2: {3}, 3: {4}})
	l := &gen{effects: map[int][]string{0: {"+mu"}, 1: {"-mu"}}}
	f := Solve[StringSet](g, l)
	if !f.In[3].Has("mu") {
		t.Fatalf("may-held must survive a one-sided kill: In[3]=%v", f.In[3].Elems())
	}
}

// TestSolveDeterministic: repeated runs produce identical fact arrays,
// and so does solving a CFG built from source (exercising the builder
// path end to end).
func TestSolveDeterministic(t *testing.T) {
	g := chainCFG(6, map[int][]int{0: {1, 2}, 1: {3}, 2: {3}, 3: {4, 5}, 4: {5}})
	l := &gen{entry: NewStringSet("seed"), effects: map[int][]string{1: {"+a"}, 2: {"+b", "-seed"}, 4: {"+c"}}}
	base := Solve[StringSet](g, l)
	for i := 0; i < 20; i++ {
		f := Solve[StringSet](g, l)
		if !reflect.DeepEqual(factStrings(base), factStrings(f)) {
			t.Fatalf("run %d diverged", i)
		}
	}
}

func factStrings(f Facts[StringSet]) [][]string {
	var out [][]string
	for i := range f.In {
		out = append(out, append([]string(nil), f.In[i].Elems()...))
		out = append(out, append([]string(nil), f.Out[i].Elems()...))
	}
	return out
}

// TestSolveUnreachableStaysBottom: facts of blocks no path reaches
// stay bottom — lockorder's replay loop relies on this to skip dead
// code.
func TestSolveUnreachableStaysBottom(t *testing.T) {
	// b2 is disconnected.
	g := chainCFG(4, map[int][]int{0: {1}, 1: {3}})
	l := &gen{entry: NewStringSet("e"), effects: map[int][]string{2: {"+ghost"}}}
	f := Solve[StringSet](g, l)
	if f.In[2].Len() != 0 || f.Out[2].Len() != 0 {
		t.Fatalf("unreachable block must stay bottom: In=%v Out=%v", f.In[2].Elems(), f.Out[2].Elems())
	}
}

// TestSolveOverBuiltCFG runs the solver over a builder-produced CFG
// for the guard-then-lock shape and checks the facts the lockorder
// pass depends on, tying the two layers together.
func TestSolveOverBuiltCFG(t *testing.T) {
	g, _ := buildFromSrc(t, `
if !ready {
	return
}
acquire()
if cond {
	release()
	return
}
release()`)
	l := &gen{}
	l.effects = map[int][]string{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "acquire":
							l.effects[b.Index] = append(l.effects[b.Index], "+r")
						case "release":
							l.effects[b.Index] = append(l.effects[b.Index], "-r")
						}
					}
				}
			}
		}
	}
	f := Solve[StringSet](g, l)
	if f.In[g.Exit.Index].Has("r") {
		t.Fatalf("resource must be released on every path: exit In=%v", f.In[g.Exit.Index].Elems())
	}
	// Both release blocks must see the resource held on entry.
	for _, b := range g.Blocks {
		for _, op := range l.effects[b.Index] {
			if op == "-r" && !f.In[b.Index].Has("r") {
				t.Fatalf("release block b%d does not see the acquire: In=%v", b.Index, f.In[b.Index].Elems())
			}
		}
	}
}

// TestStringSetValueSemantics: the set operations never mutate their
// receiver — facts are shared across blocks, so aliasing bugs here
// would corrupt the solver.
func TestStringSetValueSemantics(t *testing.T) {
	s := NewStringSet("a", "b")
	_ = s.Add("c")
	_ = s.Remove("a")
	_ = s.Union(NewStringSet("z"))
	_ = s.Intersect(NewStringSet("a"))
	if got := s.Elems(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("receiver mutated: %v", got)
	}
	if s.Len() != 2 || !s.Has("a") || s.Has("c") {
		t.Fatalf("receiver state wrong after ops")
	}
}

func TestStringSetOrdered(t *testing.T) {
	s := NewStringSet("c", "a", "b", "a")
	got := s.Elems()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Elems not sorted/deduped: %v", got)
	}
	if !s.Equal(NewStringSet("b", "c", "a")) {
		t.Fatal("Equal must be order-insensitive on construction")
	}
}

// TestSolveEntrySeed: the entry fact reaches every block when nothing
// kills it, with Entry() distinct from Bottom().
func TestSolveEntrySeed(t *testing.T) {
	g := chainCFG(3, map[int][]int{0: {1}, 1: {2}})
	l := &gen{entry: NewStringSet("seed")}
	f := Solve[StringSet](g, l)
	for i := 0; i < 3; i++ {
		if !f.In[i].Has("seed") {
			t.Fatalf("entry seed missing at b%d: %v", i, f.In[i].Elems())
		}
	}
}
