package ig

import "npra/internal/bitset"

// ExactChromatic computes the exact chromatic number of the induced
// subgraph on members by branch-and-bound (nil members = whole graph).
// Exponential in the worst case: intended for verification oracles and
// small graphs; maxNodes bounds the effort (0 means 24). Returns -1 if
// the subgraph is larger than maxNodes.
func (g *Graph) ExactChromatic(members bitset.Set, maxNodes int) int {
	if maxNodes == 0 {
		maxNodes = 24
	}
	var nodes []int
	if members == nil {
		for i := 0; i < g.N; i++ {
			nodes = append(nodes, i)
		}
	} else {
		nodes = members.Elems(nodes)
	}
	if len(nodes) == 0 {
		return 0
	}
	if len(nodes) > maxNodes {
		return -1
	}

	// Index compaction + adjacency matrix for speed. The node-id ->
	// compact-index map is a dense slice keyed by node id (-1 for
	// non-members): node ids are small integers, and the map version
	// churned on every adjacency probe.
	idx := make([]int32, g.N)
	for i := range idx {
		idx[i] = -1
	}
	for i, v := range nodes {
		idx[v] = int32(i)
	}
	n := len(nodes)
	adj := make([][]bool, n)
	for i, v := range nodes {
		adj[i] = make([]bool, n)
		row := g.adj[v]
		for w := row.NextSet(0); w >= 0; w = row.NextSet(w + 1) {
			if j := idx[w]; j >= 0 {
				adj[i][j] = true
			}
		}
	}

	// Order nodes by degree descending: fail fast.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	deg := make([]int, n)
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] {
				deg[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if deg[order[j]] > deg[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}

	// Upper bound from greedy; lower bound from a clique.
	var memberSet bitset.Set
	if members != nil {
		memberSet = members
	} else {
		memberSet = bitset.New(g.N)
		for i := 0; i < g.N; i++ {
			memberSet.Add(i)
		}
	}
	_, best := g.GreedyColorMasked(g.SmallestLastOrder(memberSet), nil, memberSet)
	lower := g.cliqueWithin(nodes)

	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	var solve func(pos, used, limit int) bool
	solve = func(pos, used, limit int) bool {
		if pos == n {
			return true
		}
		v := order[pos]
		// Try existing colors, then at most one new color, never past limit.
		tryTo := used + 1
		if tryTo > limit {
			tryTo = limit
		}
		for c := 0; c < tryTo; c++ {
			ok := true
			for w := 0; w < n && ok; w++ {
				if adj[v][w] && colors[w] == c {
					ok = false
				}
			}
			if !ok {
				continue
			}
			colors[v] = c
			nu := used
			if c == used {
				nu++
			}
			if solve(pos+1, nu, limit) {
				return true
			}
			colors[v] = -1
		}
		return false
	}
	for k := lower; k < best; k++ {
		for i := range colors {
			colors[i] = -1
		}
		if solve(0, 0, k) {
			return k
		}
	}
	return best
}

// cliqueWithin returns the size of a greedily grown clique among nodes
// (a chromatic lower bound).
func (g *Graph) cliqueWithin(nodes []int) int {
	best := 1
	for _, seed := range nodes {
		clique := []int{seed}
		for _, v := range nodes {
			if v == seed {
				continue
			}
			ok := true
			for _, u := range clique {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	return best
}
