// Package parallel provides the small bounded worker-pool helpers the
// allocator stack uses to fan independent work out across CPUs while
// keeping results deterministically ordered.
//
// The contract every helper honors: results come back in input order, a
// worker count of 1 degenerates to a plain serial loop (same goroutine,
// ascending index order), and fn is only ever called concurrently for
// *different* indices — so callers may write into per-index slots of a
// shared slice without synchronization.
//
// Failure contract: a panic inside fn never kills a worker goroutine
// silently (which would crash the whole process). Workers recover it,
// stop handing out further indices, and the helper re-panics on the
// *calling* goroutine with a *Panic that preserves the original value
// and the worker's stack — the same observable behavior a serial loop
// would have, so callers can install a single recover at their API
// boundary.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Panic transports a panic recovered in a worker goroutine to the
// calling goroutine. Value is the original panic value; Stack is the
// worker's stack at recovery time.
type Panic struct {
	Value any
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", p.Value)
}

// Workers normalizes a requested worker count: n <= 0 means "one worker
// per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// CtxErr reports whether ctx is done, polling the deadline clock as well
// as the done channel. ctx.Err() alone is not enough on a saturated
// GOMAXPROCS=1 machine: the deadline timer's callback needs the
// scheduler to run it, and a busy compute goroutine can starve it past
// the deadline for several milliseconds (until sysmon preempts). Checking
// the wall clock against ctx.Deadline() needs no timer delivery, so
// deadline checks stay accurate even when the runtime is saturated. For
// contexts with no deadline this is one extra ok-check over ctx.Err().
func CtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) { //lint:ignore detlint deadline polling against the wall clock is the documented cancellation mechanism; it never orders allocation work
		return context.DeadlineExceeded
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (normalized by Workers) and returns the n results in input order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn(i) for i in [0, n) on at most workers goroutines and
// returns the results in input order. It stops launching new work as
// soon as any call fails or ctx is done; indices not yet started are
// skipped (calls already in flight run to completion). On failure the
// error for the lowest *attempted* failing index is returned — with one
// worker that is exactly the first failure a serial ascending loop would
// see; with several workers the skipped tail may hide lower-index
// failures that were never attempted. If no call failed but ctx fired,
// ctx.Err() is returned. A nil error means all n indices completed.
func MapErr[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := CtxErr(ctx); err != nil {
				return nil, err
			}
			var err error
			out[i], err = fn(i)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	var stop atomic.Bool
	run(workers, n, &stop, func(i int) {
		if err := CtxErr(ctx); err != nil {
			stop.Store(true)
			return
		}
		out[i], errs[i] = fn(i)
		if errs[i] != nil {
			stop.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (normalized by Workers). With one worker it runs fn serially in
// ascending index order on the calling goroutine; otherwise indices are
// handed out atomically, so the assignment of index to goroutine — but
// never the set of calls made — depends on scheduling. A panic in any
// call stops the fan-out and resurfaces on the calling goroutine.
func ForEach(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	run(workers, n, nil, fn)
}

// run is the shared worker loop: hand out ascending indices atomically,
// optionally honoring a caller-owned stop flag, recover worker panics
// and re-panic the first one (lowest index) on the calling goroutine.
func run(workers, n int, stop *atomic.Bool, fn func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	panics := make([]*Panic, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() || (stop != nil && stop.Load()) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &Panic{Value: r, Stack: debug.Stack()}
							panicked.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p) //lint:invariant re-raises a panic transported from a worker goroutine so the API-boundary barrier can classify it
		}
	}
}

// Chunks splits [0, n) into at most workers contiguous half-open ranges
// of near-equal size, for callers that want one long-lived worker state
// (an allocator, a scratch buffer) per chunk rather than per item. The
// split depends only on (workers, n), never on scheduling.
func Chunks(workers, n int) [][2]int {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return nil
	}
	out := make([][2]int, 0, workers)
	size, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
