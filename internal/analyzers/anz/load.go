package anz

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"npra/internal/core/errs"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig locates and type-checks packages without the go/packages
// machinery. Two layouts are supported:
//
//   - module mode: ModulePath/ModuleDir name the enclosing module;
//     import paths under ModulePath resolve to directories inside it.
//   - fixture mode: FixtureDir is a GOPATH-style root; import path p
//     resolves to FixtureDir/src/p. Used by anztest so analyzer
//     fixtures can stub internal packages (npra/internal/core/errs,
//     npra/internal/intra, ...) without touching the real ones.
//
// Standard-library imports are type-checked from GOROOT source via
// go/importer's "source" compiler, which needs no network and no
// pre-built export data.
type LoadConfig struct {
	ModulePath string
	ModuleDir  string
	FixtureDir string

	fset   *token.FileSet
	std    types.ImporterFrom
	loaded map[string]*Package
	stack  []string
}

// Load type-checks the packages named by patterns. A pattern is either
// an import path or a "dir/..." wildcard that walks for directories
// containing non-test Go files (testdata, vendor and dot-directories
// are skipped). Results are sorted by import path.
func (c *LoadConfig) Load(patterns ...string) ([]*Package, error) {
	c.fset = token.NewFileSet()
	c.loaded = make(map[string]*Package)
	std := importer.ForCompiler(c.fset, "source", nil)
	from, ok := std.(types.ImporterFrom)
	if !ok {
		return nil, errs.Internalf("analyzers: source importer is not an ImporterFrom")
	}
	c.std = from

	var paths []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := c.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, p := range expanded {
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	sort.Strings(paths)

	var pkgs []*Package
	for _, p := range paths {
		pkg, err := c.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand resolves one pattern to concrete import paths.
func (c *LoadConfig) expand(pat string) ([]string, error) {
	root, prefix := c.ModuleDir, c.ModulePath
	if c.FixtureDir != "" {
		root, prefix = filepath.Join(c.FixtureDir, "src"), ""
	}
	rel, wild := strings.CutSuffix(pat, "...")
	if !wild {
		// A non-wildcard "./dir" pattern names one package relative to
		// the module root.
		if c.ModulePath != "" {
			if p := strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/"); p != pat {
				if p == "" || p == "." {
					return []string{c.ModulePath}, nil
				}
				return []string{c.ModulePath + "/" + filepath.ToSlash(p)}, nil
			}
		}
		return []string{pat}, nil
	}
	rel = strings.TrimSuffix(strings.TrimPrefix(rel, "./"), "/")
	base := root
	if rel != "" && rel != "." {
		base = filepath.Join(root, rel)
	}
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		relDir, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(relDir)
		if prefix != "" {
			if ip == "." {
				ip = prefix
			} else {
				ip = prefix + "/" + ip
			}
		}
		out = append(out, ip)
		return nil
	})
	if err != nil {
		return nil, errs.Invalidf("analyzers: expanding pattern %q: %v", pat, err)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// dirFor maps an import path to a source directory, or "" for paths
// that should be resolved as standard library.
func (c *LoadConfig) dirFor(path string) string {
	if c.FixtureDir != "" {
		dir := filepath.Join(c.FixtureDir, "src", filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if c.ModulePath != "" {
		if path == c.ModulePath {
			return c.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, c.ModulePath+"/"); ok {
			return filepath.Join(c.ModuleDir, filepath.FromSlash(rest))
		}
	}
	return ""
}

// load parses and type-checks one non-stdlib package, memoized.
func (c *LoadConfig) load(path string) (*Package, error) {
	if pkg, ok := c.loaded[path]; ok {
		if pkg == nil {
			return nil, errs.Invalidf("analyzers: import cycle through %q (chain %s)", path, strings.Join(c.stack, " -> "))
		}
		return pkg, nil
	}
	dir := c.dirFor(path)
	if dir == "" {
		return nil, errs.Invalidf("analyzers: cannot resolve import path %q to a directory", path)
	}
	c.loaded[path] = nil // cycle marker
	c.stack = append(c.stack, path)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, errs.Invalidf("analyzers: reading %s: %v", dir, err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, errs.Invalidf("analyzers: no Go files in %s", dir)
	}

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, errs.Invalidf("analyzers: parsing %s: %v", n, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(c)}
	tpkg, err := conf.Check(path, c.fset, files, info)
	if err != nil {
		return nil, errs.Invalidf("analyzers: type-checking %s: %v", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: c.fset, Files: files, Types: tpkg, Info: info}
	c.loaded[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the loader to types.Importer: project and
// fixture paths recurse into load; everything else is standard library.
type loaderImporter LoadConfig

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	c := (*LoadConfig)(li)
	if c.dirFor(path) != "" {
		pkg, err := c.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tpkg, err := c.std.Import(path)
	if err != nil {
		return nil, fmt.Errorf("importing %s: %w", path, err)
	}
	return tpkg, nil
}
