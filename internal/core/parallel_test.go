package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/bench"
	"npra/internal/ir"
	"npra/internal/progen"
)

// Property: the parallel pricing engine is bit-identical to the serial
// one — same (PR, SR) vectors, same move counts, same rewritten code —
// on random multi-thread workloads.
func TestQuickWorkersDeterminism(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		mk := func() []*ir.Func {
			r := rand.New(rand.NewSource(seed))
			funcs := make([]*ir.Func, n)
			for i := range funcs {
				funcs[i] = progen.Generate(r, progen.Default)
			}
			return funcs
		}
		nreg := 8 + rng.Intn(40)

		serial, errS := AllocateARA(mk(), Config{NReg: nreg, Workers: 1})
		par, errP := AllocateARA(mk(), Config{NReg: nreg, Workers: 8})
		if (errS == nil) != (errP == nil) {
			t.Logf("seed %d: feasibility diverged: %v vs %v", seed, errS, errP)
			return false
		}
		if errS != nil {
			return true
		}
		for i := range serial.Threads {
			s, p := serial.Threads[i], par.Threads[i]
			if s.PR != p.PR || s.SR != p.SR || s.Cost != p.Cost ||
				s.Stats.Added() != p.Stats.Added() ||
				s.F.Format() != p.F.Format() {
				t.Logf("seed %d thread %d: serial (PR=%d SR=%d cost=%d) vs parallel (PR=%d SR=%d cost=%d)",
					seed, i, s.PR, s.SR, s.Cost, p.PR, p.SR, p.Cost)
				return false
			}
		}
		// The pricing fan-out is structurally identical for every worker
		// count, so even the cache counters must agree.
		if serial.SolveCache != par.SolveCache {
			t.Logf("seed %d: cache stats diverged: %+v vs %+v", seed, serial.SolveCache, par.SolveCache)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the SRA sweep picks the same point serially and in parallel.
func TestQuickSRAWorkersDeterminism(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		nthd := 2 + rng.Intn(3)
		nreg := 6 + rng.Intn(30)
		serial, errS := AllocateSRA(f, nthd, Config{NReg: nreg, Workers: 1})
		par, errP := AllocateSRA(f, nthd, Config{NReg: nreg, Workers: 8})
		if (errS == nil) != (errP == nil) {
			return false
		}
		if errS != nil {
			return true
		}
		return serial.Threads[0].PR == par.Threads[0].PR &&
			serial.Threads[0].SR == par.Threads[0].SR &&
			serial.Threads[0].Cost == par.Threads[0].Cost &&
			serial.Threads[0].F.Format() == par.Threads[0].F.Format()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The Solve cache must show hits on the paper's S1 thread mix both at
// the full register file (duplicate md5/fir2dim threads share one
// allocator, so their initial Solves hit) and under a tight budget
// (the greedy loop re-probes the same (pr, sr) points round after
// round).
func TestSolveCacheHits(t *testing.T) {
	mk := func() []*ir.Func {
		var funcs []*ir.Func
		for _, name := range []string{"md5", "md5", "fir2dim", "fir2dim"} {
			b, err := bench.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			funcs = append(funcs, b.Gen(16))
		}
		return funcs
	}
	for _, nreg := range []int{128, 54} {
		alloc, err := AllocateARA(mk(), Config{NReg: nreg})
		if err != nil {
			t.Fatalf("AllocateARA(NReg=%d): %v", nreg, err)
		}
		if err := alloc.Verify(); err != nil {
			t.Fatalf("Verify(NReg=%d): %v", nreg, err)
		}
		if alloc.SolveCache.Hits == 0 {
			t.Errorf("NReg=%d: no Solve cache hits: %+v", nreg, alloc.SolveCache)
		}
		if alloc.SolveCache.Misses == 0 {
			t.Errorf("NReg=%d: no Solve cache misses recorded: %+v", nreg, alloc.SolveCache)
		}
		// Under pressure the loop must have re-probed, not just deduped:
		// more hits than the two duplicate initial Solves alone.
		if nreg == 54 && alloc.SolveCache.Hits <= 2 {
			t.Errorf("NReg=54: hits = %d, want > 2 (loop re-probes)", alloc.SolveCache.Hits)
		}
	}
}
