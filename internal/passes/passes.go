// Package passes provides the scalar optimization passes a production
// toolchain runs around the register allocator: dead-code elimination,
// local copy propagation and constant folding (before allocation, to
// hand the allocator canonical code), and CFG simplification plus
// peephole cleanup (safe both before and after allocation).
//
// Passes preserve the observable semantics defined by package interp:
// final memory, iteration markers and halting. Copy propagation and
// constant folding refuse to run on physical-register code — extending a
// live range across a context switch could move a value into a register
// another thread clobbers, so anything that lengthens live ranges is
// restricted to virtual code where the allocator still has control.
package passes

import (
	"fmt"

	"npra/internal/core/errs"
	"npra/internal/ir"
	"npra/internal/liveness"
)

// Stats counts what a pass (or pipeline) changed.
type Stats struct {
	DeadRemoved    int // dead instructions deleted
	CopiesReplaced int // operand uses rewritten to copy sources
	Folded         int // instructions strength-reduced or folded to set
	BlocksMerged   int // straight-line block pairs merged
	BranchesWoven  int // branches retargeted through empty forwarders
	Peeped         int // peephole deletions/simplifications
}

// Total returns the total number of changes.
func (s Stats) Total() int {
	return s.DeadRemoved + s.CopiesReplaced + s.Folded + s.BlocksMerged + s.BranchesWoven + s.Peeped
}

func (s *Stats) add(t Stats) {
	s.DeadRemoved += t.DeadRemoved
	s.CopiesReplaced += t.CopiesReplaced
	s.Folded += t.Folded
	s.BlocksMerged += t.BlocksMerged
	s.BranchesWoven += t.BranchesWoven
	s.Peeped += t.Peeped
}

// Optimize runs the standard pre-allocation pipeline to a fixpoint:
// copy propagation, constant folding, peephole, dead code, CFG cleanup.
// The input must be built and is not modified; the returned function is
// built. For physical-register inputs only the live-range-safe passes
// run (see the package comment).
func Optimize(f *ir.Func) (*ir.Func, Stats, error) {
	cur := f.Clone()
	var total Stats
	for round := 0; round < 10; round++ {
		var st Stats
		if !cur.Physical {
			st.add(CopyProp(cur))
			cf, err := ConstFold(cur)
			if err != nil {
				return nil, total, err
			}
			st.add(cf)
		}
		st.add(Peephole(cur))
		if err := cur.Build(); err != nil {
			return nil, total, fmt.Errorf("passes: peephole broke the function: %w", err)
		}
		ds, err := DeadCode(cur)
		if err != nil {
			return nil, total, err
		}
		st.add(ds)
		st.add(SimplifyCFG(cur))
		if err := cur.Build(); err != nil {
			return nil, total, fmt.Errorf("passes: round %d broke the function: %w", round, err)
		}
		total.add(st)
		if st.Total() == 0 {
			break
		}
	}
	return cur, total, nil
}

// DeadCode removes instructions whose definition is never used and that
// have no side effect (memory, control flow, iteration marking and
// context switches are side effects). The function must be built; it is
// rebuilt internally after mutation.
func DeadCode(f *ir.Func) (Stats, error) {
	var st Stats
	if err := f.Build(); err != nil {
		return st, fmt.Errorf("passes: DeadCode input invalid: %w", err)
	}
	for {
		li := liveness.Compute(f)
		removedAny := false
		for _, b := range f.Blocks {
			var kept []ir.Instr
			for i := range b.Instrs {
				in := b.Instrs[i]
				p := b.Start() + i
				if isPureDef(&in) && !li.Out[p].Has(int(in.Def)) {
					st.DeadRemoved++
					removedAny = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !removedAny {
			return st, nil
		}
		// Removing instructions may empty a block; give it a nop so the
		// invariants hold, then rebuild and iterate (a dead chain can
		// take several rounds).
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpNop, Def: ir.NoReg, A: ir.NoReg, B: ir.NoReg})
			}
		}
		if err := f.Build(); err != nil {
			return st, fmt.Errorf("passes: DeadCode broke the function: %w", err)
		}
	}
}

// isPureDef reports whether the instruction only writes a register (no
// memory, control or scheduling effect), so it is removable when dead.
func isPureDef(in *ir.Instr) bool {
	if in.Def == ir.NoReg {
		return false
	}
	switch in.Op {
	case ir.OpLoad, ir.OpLoadA: // memory side channel + context switch
		return false
	}
	return true
}

// CopyProp performs block-local copy propagation on virtual code: after
// "mov b, a", uses of b read a instead, until either a or b is redefined.
// Physical code is left untouched (see the package comment).
func CopyProp(f *ir.Func) Stats {
	var st Stats
	if f.Physical {
		return st
	}
	copyOf := make(map[ir.Reg]ir.Reg)
	for _, b := range f.Blocks {
		clearRegMap(copyOf)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Rewrite uses through the copy map.
			if in.A != ir.NoReg {
				if src, ok := copyOf[in.A]; ok {
					in.A = src
					st.CopiesReplaced++
				}
			}
			if in.B != ir.NoReg {
				if src, ok := copyOf[in.B]; ok {
					in.B = src
					st.CopiesReplaced++
				}
			}
			if in.Def == ir.NoReg {
				continue
			}
			// The def kills every copy relation involving it.
			delete(copyOf, in.Def)
			for dst, src := range copyOf {
				if src == in.Def {
					delete(copyOf, dst)
				}
			}
			if in.Op == ir.OpMov && in.A != in.Def {
				copyOf[in.Def] = in.A
			}
		}
	}
	return st
}

// ConstFold performs block-local constant propagation and folding on
// virtual code: "set" values are tracked and ALU results over known
// constants collapse back into "set"; register-immediate forms whose
// register operand is known also collapse.
func ConstFold(f *ir.Func) (Stats, error) {
	var st Stats
	if f.Physical {
		return st, nil
	}
	known := make(map[ir.Reg]uint32)
	for _, b := range f.Blocks {
		clearConstMap(known)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			v, folded, err := foldInstr(in, known)
			if err != nil {
				return st, err
			}
			if folded {
				*in = ir.Instr{Op: ir.OpSet, Def: in.Def, A: ir.NoReg, B: ir.NoReg, Imm: int64(v)}
				st.Folded++
			}
			if in.Def != ir.NoReg {
				if in.Op == ir.OpSet {
					known[in.Def] = uint32(in.Imm)
				} else {
					delete(known, in.Def)
				}
			}
		}
	}
	return st, nil
}

// foldInstr evaluates in if all register operands are known constants.
func foldInstr(in *ir.Instr, known map[ir.Reg]uint32) (uint32, bool, error) {
	get := func(r ir.Reg) (uint32, bool) {
		v, ok := known[r]
		return v, ok
	}
	switch in.Op {
	case ir.OpMov:
		if a, ok := get(in.A); ok {
			return a, true, nil
		}
	case ir.OpNot:
		if a, ok := get(in.A); ok {
			return ^a, true, nil
		}
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpMul:
		a, okA := get(in.A)
		bv, okB := get(in.B)
		if okA && okB {
			v, err := evalALU(in.Op, a, bv)
			return v, err == nil, err
		}
	case ir.OpAddI, ir.OpSubI, ir.OpAndI, ir.OpOrI, ir.OpXorI, ir.OpShlI, ir.OpShrI, ir.OpMulI:
		if a, ok := get(in.A); ok {
			v, err := evalALUI(in.Op, a, uint32(in.Imm))
			return v, err == nil, err
		}
	}
	return 0, false, nil
}

func evalALU(op ir.Op, a, b uint32) (uint32, error) {
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	case ir.OpShl:
		return a << (b & 31), nil
	case ir.OpShr:
		return a >> (b & 31), nil
	case ir.OpMul:
		return a * b, nil
	}
	return 0, errs.Internalf("passes: %v is not an ALU op", op)
}

func evalALUI(op ir.Op, a, imm uint32) (uint32, error) {
	switch op {
	case ir.OpAddI:
		return a + imm, nil
	case ir.OpSubI:
		return a - imm, nil
	case ir.OpAndI:
		return a & imm, nil
	case ir.OpOrI:
		return a | imm, nil
	case ir.OpXorI:
		return a ^ imm, nil
	case ir.OpShlI:
		return a << (imm & 31), nil
	case ir.OpShrI:
		return a >> (imm & 31), nil
	case ir.OpMulI:
		return a * imm, nil
	}
	return 0, errs.Internalf("passes: %v is not an ALU-immediate op", op)
}

// Peephole applies single-instruction simplifications that are safe on
// both virtual and physical code because they never extend a live range:
// self-moves, arithmetic identities and nops disappear or simplify.
func Peephole(f *ir.Func) Stats {
	var st Stats
	for _, b := range f.Blocks {
		var kept []ir.Instr
		for i := range b.Instrs {
			in := b.Instrs[i]
			switch {
			case in.Op == ir.OpNop && len(b.Instrs) > 1:
				st.Peeped++
				continue
			case in.Op == ir.OpMov && in.Def == in.A:
				st.Peeped++
				continue
			case isIdentityALUI(&in):
				// x = a op identity  ->  mov x, a (never longer ranges).
				kept = append(kept, ir.Instr{Op: ir.OpMov, Def: in.Def, A: in.A, B: ir.NoReg})
				st.Peeped++
				continue
			case in.Op == ir.OpXor && in.A == in.B:
				// x = a ^ a  ->  set x, 0
				kept = append(kept, ir.Instr{Op: ir.OpSet, Def: in.Def, A: ir.NoReg, B: ir.NoReg, Imm: 0})
				st.Peeped++
				continue
			case in.Op == ir.OpSub && in.A == in.B:
				kept = append(kept, ir.Instr{Op: ir.OpSet, Def: in.Def, A: ir.NoReg, B: ir.NoReg, Imm: 0})
				st.Peeped++
				continue
			}
			kept = append(kept, in)
		}
		if len(kept) == 0 {
			kept = append(kept, ir.Instr{Op: ir.OpNop, Def: ir.NoReg, A: ir.NoReg, B: ir.NoReg})
		}
		b.Instrs = kept
	}
	return st
}

func isIdentityALUI(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpAddI, ir.OpSubI, ir.OpOrI, ir.OpXorI, ir.OpShlI, ir.OpShrI:
		return in.Imm == 0
	case ir.OpMulI:
		return in.Imm == 1
	case ir.OpAndI:
		return uint32(in.Imm) == ^uint32(0)
	}
	return false
}

// SimplifyCFG merges a block into its unique predecessor when that
// predecessor falls through to it exclusively, threads unconditional
// branches through blocks that only branch onward, and drops unreachable
// blocks. Safe on physical code (no live range changes). The function is
// rebuilt internally.
func SimplifyCFG(f *ir.Func) Stats {
	var st Stats
	for {
		changed := 0

		// Thread br -> (block with single "br X") to br X.
		trampoline := make(map[string]string)
		for _, b := range f.Blocks {
			if len(b.Instrs) == 1 && b.Instrs[0].Op == ir.OpBr {
				trampoline[b.Label] = b.Instrs[0].Target
			}
		}
		resolve := func(t string) string {
			seen := map[string]bool{}
			for trampoline[t] != "" && !seen[t] {
				seen[t] = true
				t = trampoline[t]
			}
			return t
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.IsBranch() {
					if nt := resolve(in.Target); nt != in.Target {
						in.Target = nt
						st.BranchesWoven++
						changed++
					}
				}
			}
		}

		// Remove unreachable blocks (entry is always reachable).
		if err := f.Build(); err != nil {
			return st // conservative: stop simplifying rather than break
		}
		reach := make([]bool, len(f.Blocks))
		var stack []int
		reach[0] = true
		stack = append(stack, 0)
		for len(stack) > 0 {
			bi := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range f.Blocks[bi].Succs {
				if !reach[s] {
					reach[s] = true
					stack = append(stack, s)
				}
			}
		}
		var keep []*ir.Block
		for i, b := range f.Blocks {
			if reach[i] {
				keep = append(keep, b)
			} else {
				changed++
			}
		}
		f.Blocks = keep

		// Merge b2 into b1 when b1 falls through to b2 and b2 has no other
		// predecessor and no branches target it.
		if err := f.Build(); err != nil {
			return st
		}
		for i := 0; i+1 < len(f.Blocks); i++ {
			b1, b2 := f.Blocks[i], f.Blocks[i+1]
			last := &b1.Instrs[len(b1.Instrs)-1]
			if last.IsBranch() || last.Op == ir.OpHalt {
				continue
			}
			if len(b2.Preds) != 1 || b2.Preds[0] != b1.Index {
				continue
			}
			if targeted(f, b2.Label) {
				continue
			}
			b1.Instrs = append(b1.Instrs, b2.Instrs...)
			f.Blocks = append(f.Blocks[:i+1], f.Blocks[i+2:]...)
			st.BlocksMerged++
			changed++
			if err := f.Build(); err != nil {
				return st
			}
		}

		if changed == 0 {
			return st
		}
	}
}

// targeted reports whether any branch in f names the label.
func targeted(f *ir.Func, label string) bool {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].IsBranch() && b.Instrs[i].Target == label {
				return true
			}
		}
	}
	return false
}

func clearRegMap(m map[ir.Reg]ir.Reg) {
	for k := range m {
		delete(m, k)
	}
}

func clearConstMap(m map[ir.Reg]uint32) {
	for k := range m {
		delete(m, k)
	}
}
