package analyzers

import (
	"path/filepath"
	"testing"

	"npra/internal/analyzers/anz"
)

// TestRepoSelfCheck is the meta-test behind the "clean npravet ./..."
// acceptance bar: the full suite runs over this repository's own
// sources and must report nothing. A failure here is a regression
// against one of the PR-1..3 invariants (or a new site that needs a
// justified directive).
func TestRepoSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo analysis in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	cfg := &anz.LoadConfig{ModulePath: "npra", ModuleDir: root}
	pkgs, err := cfg.Load("./...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from the repository")
	}
	diags, err := anz.Run(pkgs, Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("npravet finding: %s", d)
	}
}
