package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"

	"npra/internal/serve"
)

// TestRunAdversarialSmoke drives the heterogeneous adversarial stream
// against an in-process server squeezed to tiny cache tiers and checks
// the report invariants: every shape classified and served, no alias
// mismatches, eviction and relocation counters measured, and the gate
// plumbing wired through Check.
func TestRunAdversarialSmoke(t *testing.T) {
	s := serve.New(serve.Config{
		FuncCacheEntries:    8,
		RewriteCacheEntries: 16,
		RawCacheEntries:     32,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	rep, err := RunAdversarial(context.Background(), AdvOptions{
		URL:               ts.URL,
		WorkersPerProfile: 2,
		MaxRequests:       160,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.AliasMismatches != 0 {
		t.Fatalf("alias mismatches = %d: cross-profile cache aliasing", rep.AliasMismatches)
	}
	if len(rep.ByShape) != len(AdvShapes) {
		t.Fatalf("by_shape has %d families, want %d: %+v", len(rep.ByShape), len(AdvShapes), rep.ByShape)
	}
	var classified int64
	for shape, sh := range rep.ByShape {
		if sh.OK+sh.Degraded == 0 {
			t.Errorf("shape %q never served: %+v", shape, *sh)
		}
		classified += sh.OK + sh.Degraded + sh.Shed + sh.Invalid + sh.Timeout + sh.FiveXX + sh.Transport
	}
	if classified != rep.Requests {
		t.Errorf("classification does not partition: %d classified of %d requests", classified, rep.Requests)
	}
	if rep.EvictionsPerReq == 0 {
		t.Error("evictions/request = 0: the tiny caches were never thrashed")
	}
	if rep.RewriteCacheHitRate == 0 {
		t.Error("rewrite-cache hit rate = 0: the hot pool never re-hit the rewrite tier")
	}
	// The gates themselves, at the thresholds serve-bench-adv ships.
	if err := rep.Check(0, 0.9, 8, 0, 0); err != nil {
		t.Errorf("gates failed: %v", err)
	}
	// And the failure paths stay failures.
	if err := rep.Check(0, 0, 0.000001, 0, 0); err == nil {
		t.Error("an absurd eviction ceiling passed; the gate is not wired")
	}
}

// TestRunAdversarialValidation pins the option guards.
func TestRunAdversarialValidation(t *testing.T) {
	if _, err := RunAdversarial(context.Background(), AdvOptions{}); err == nil {
		t.Error("no URL accepted")
	}
	if _, err := RunAdversarial(context.Background(), AdvOptions{URL: "http://127.0.0.1:1"}); err == nil {
		t.Error("no budget accepted")
	}
}

// TestParseProfiles covers the profile-list syntax.
func TestParseProfiles(t *testing.T) {
	got, err := ParseProfiles("small=16,sym=32x4, large=128")
	if err != nil {
		t.Fatal(err)
	}
	want := []HWProfile{{Name: "small", NReg: 16}, {Name: "sym", NReg: 32, NThd: 4}, {Name: "large", NReg: 128}}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("profile %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "x", "a=0", "a=8xq", "=4"} {
		if _, err := ParseProfiles(bad); err == nil {
			t.Errorf("ParseProfiles(%q) accepted", bad)
		}
	}
}
