package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"npra/internal/serve"
)

func startServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func TestRunAgainstInProcessServer(t *testing.T) {
	_, ts := startServer(t)
	rep, err := Run(context.Background(), Options{
		URL:         ts.URL,
		Concurrency: 4,
		MaxRequests: 40,
		DupRatio:    0.5,
		Duration:    30 * time.Second, // budget trips first
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 {
		t.Errorf("requests = %d, want 40", rep.Requests)
	}
	if rep.ByCode["200"] != 40 {
		t.Errorf("by_code = %v, want all 200s", rep.ByCode)
	}
	if rep.FiveXX != 0 || rep.TransportErrs != 0 {
		t.Errorf("fiveXX=%d transport=%d, want 0/0", rep.FiveXX, rep.TransportErrs)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS || rep.MaxMS < rep.P99MS {
		t.Errorf("latency ordering broken: p50=%v p99=%v max=%v", rep.P50MS, rep.P99MS, rep.MaxMS)
	}
	if rep.SingleflightHitRate <= 0 {
		t.Errorf("hit rate %v at dup 0.5, want > 0", rep.SingleflightHitRate)
	}
	if rep.Metrics["npserve_latency_ms_count"] != 40 {
		t.Errorf("scraped latency count = %v, want 40", rep.Metrics["npserve_latency_ms_count"])
	}
	if err := rep.Check(0, 0.01, 0); err != nil {
		t.Errorf("Check: %v", err)
	}
	if err := rep.Check(0, 0.9999, 0); err == nil {
		t.Error("Check accepted an unreachable dedup floor")
	}
	if err := rep.Check(0, -1, rep.P99MS+1); err != nil {
		t.Errorf("Check rejected a satisfied p99 ceiling: %v", err)
	}
	if err := rep.Check(0, -1, rep.P99MS/2); err == nil {
		t.Error("Check accepted a p99 above the ceiling")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{URL: "http://x", MaxRequests: 0}); err == nil {
		t.Error("Run accepted a run with no stop condition")
	}
	if _, err := Run(context.Background(), Options{MaxRequests: 1}); err == nil {
		t.Error("Run accepted an empty URL")
	}
}

func TestSpecDeterministic(t *testing.T) {
	opt := Options{Seed: 3}.withDefaults()
	if a, b := opt.spec(5), opt.spec(5); string(a) != string(b) {
		t.Error("spec is not deterministic")
	}
	if a, b := opt.spec(5), opt.spec(6); string(a) == string(b) {
		t.Error("distinct indices produced the same spec")
	}
}

func TestCheckEmptyReport(t *testing.T) {
	if err := (&Report{}).Check(0, -1, 0); err == nil {
		t.Error("Check accepted an empty report")
	}
}
