// Package schedcheck is a bounded model checker for the multithreaded
// machine: it enumerates *every* behavior a non-preemptive scheduler and
// the memory subsystem could produce — which thread runs after each
// context switch, and *when* each in-flight memory operation completes
// relative to the other threads' execution — and checks that the
// observable outcome (final memory and per-thread iteration counts) is
// schedule-independent. Loads follow the transfer-register discipline:
// the memory read happens at completion, the destination register is
// written when the owning thread next runs.
//
// For code produced by the cross-thread register allocator this is the
// strongest safety statement in the repository: the simulator exercises
// one concrete round-robin schedule, the static verifier checks the
// private/shared contract, and schedcheck closes the gap by exhausting
// the scheduling nondeterminism for bounded programs.
package schedcheck

import (
	"fmt"

	"npra/internal/core/errs"
	"npra/internal/ir"
)

// Options bounds the exploration.
type Options struct {
	MemWords int // memory size (default 256)
	MaxSteps int // per-path instruction budget (default 100k)
	MaxPaths int // schedule budget (default 200k)
}

// Result reports an exploration.
type Result struct {
	Paths    int  // schedules explored
	Bounded  bool // true if the path budget was hit (result then partial)
	Outcomes int  // distinct observable outcomes found
}

// outcome is the observable result of one complete schedule.
type outcome struct {
	memHash uint64
	iters   string
}

type state struct {
	pcs    []int
	halted []bool
	// blocked[t]: thread t's memory operation is in flight (effect not
	// yet delivered); the thread may not run until it is delivered.
	blocked []bool
	pending []pendingOp
	// latched[t]: a delivered load value awaiting the register write at
	// the thread's resume (transfer-register discipline).
	latched []bool
	regs    []uint32
	mem     []uint32
	iters   []int
	steps   int
}

type pendingOp struct {
	isLoad bool
	def    ir.Reg
	addr   uint32
	val    uint32 // store value; for loads, the value once delivered
}

func (s *state) clone() *state {
	c := &state{
		pcs:     append([]int(nil), s.pcs...),
		halted:  append([]bool(nil), s.halted...),
		blocked: append([]bool(nil), s.blocked...),
		pending: append([]pendingOp(nil), s.pending...),
		latched: append([]bool(nil), s.latched...),
		regs:    append([]uint32(nil), s.regs...),
		mem:     append([]uint32(nil), s.mem...),
		iters:   append([]int(nil), s.iters...),
		steps:   s.steps,
	}
	return c
}

// Check explores all schedules of the given threads (physical or virtual
// register code over one shared register file, as on the machine). It
// returns an error describing the divergence if two schedules disagree.
func Check(funcs []*ir.Func, opt Options) (*Result, error) {
	if opt.MemWords == 0 {
		opt.MemWords = 256
	}
	if opt.MaxSteps == 0 {
		opt.MaxSteps = 100_000
	}
	if opt.MaxPaths == 0 {
		opt.MaxPaths = 200_000
	}
	nregs := 0
	for i, f := range funcs {
		if f == nil || !f.Built() {
			return nil, errs.Invalidf("schedcheck: thread %d not built", i)
		}
		if f.NumRegs > nregs {
			nregs = f.NumRegs
		}
	}
	init := &state{
		pcs:     make([]int, len(funcs)),
		halted:  make([]bool, len(funcs)),
		blocked: make([]bool, len(funcs)),
		pending: make([]pendingOp, len(funcs)),
		latched: make([]bool, len(funcs)),
		regs:    make([]uint32, nregs),
		mem:     make([]uint32, opt.MemWords),
		iters:   make([]int, len(funcs)),
	}

	res := &Result{}
	seen := make(map[outcome]bool)
	var firstOutcome *outcome

	var explore func(s *state) error
	explore = func(s *state) error {
		if res.Paths >= opt.MaxPaths {
			res.Bounded = true
			return nil
		}
		// Two kinds of schedulable events: deliver an in-flight memory
		// effect (the memory subsystem completes it), or run a thread
		// whose effect (if any) has been delivered.
		type choice struct {
			t       int
			deliver bool
		}
		var choices []choice
		for t := range funcs {
			if s.halted[t] {
				continue
			}
			if s.blocked[t] {
				choices = append(choices, choice{t, true})
			} else {
				choices = append(choices, choice{t, false})
			}
		}
		if len(choices) == 0 {
			// Complete schedule: record the outcome.
			o := outcome{memHash: hashMem(s.mem), iters: fmt.Sprint(s.iters)}
			res.Paths++
			if !seen[o] {
				seen[o] = true
				res.Outcomes = len(seen)
				if firstOutcome == nil {
					firstOutcome = &o
				} else {
					return fmt.Errorf(
						"schedcheck: schedule-dependent result: iters %v vs %v (mem hashes %#x vs %#x)",
						firstOutcome.iters, o.iters, firstOutcome.memHash, o.memHash)
				}
			}
			return nil
		}
		for _, ch := range choices {
			c := s.clone()
			if ch.deliver {
				c.deliver(ch.t)
			} else {
				if err := runUntilYield(funcs[ch.t], c, ch.t, opt.MaxSteps); err != nil {
					return err
				}
			}
			if err := explore(c); err != nil {
				return err
			}
			if res.Paths >= opt.MaxPaths {
				res.Bounded = true
				return nil
			}
		}
		return nil
	}
	if err := explore(init); err != nil {
		return res, err
	}
	return res, nil
}

// deliver completes thread t's in-flight memory operation: stores land in
// memory; loads read memory now and latch the value for the register
// write at resume.
func (s *state) deliver(t int) {
	p := s.pending[t]
	if p.isLoad {
		s.pending[t].val = s.mem[(p.addr/4)%uint32(len(s.mem))]
		s.latched[t] = true
	} else {
		s.mem[(p.addr/4)%uint32(len(s.mem))] = p.val
		s.pending[t] = pendingOp{}
	}
	s.blocked[t] = false
}

// runUntilYield executes thread t until it context-switches or halts.
func runUntilYield(f *ir.Func, s *state, t, maxSteps int) error {
	regs := s.regs
	if s.latched[t] {
		// Transfer-register delivery at resume.
		regs[s.pending[t].def] = s.pending[t].val
		s.latched[t] = false
		s.pending[t] = pendingOp{}
	}
	for {
		if s.steps >= maxSteps {
			return fmt.Errorf("schedcheck: path exceeded %d steps (diverging program?)", maxSteps)
		}
		s.steps++
		in := f.Instr(s.pcs[t])
		next := s.pcs[t] + 1
		switch in.Op {
		case ir.OpSet:
			regs[in.Def] = uint32(in.Imm)
		case ir.OpMov:
			regs[in.Def] = regs[in.A]
		case ir.OpTID:
			regs[in.Def] = uint32(t)
		case ir.OpAdd:
			regs[in.Def] = regs[in.A] + regs[in.B]
		case ir.OpSub:
			regs[in.Def] = regs[in.A] - regs[in.B]
		case ir.OpAnd:
			regs[in.Def] = regs[in.A] & regs[in.B]
		case ir.OpOr:
			regs[in.Def] = regs[in.A] | regs[in.B]
		case ir.OpXor:
			regs[in.Def] = regs[in.A] ^ regs[in.B]
		case ir.OpShl:
			regs[in.Def] = regs[in.A] << (regs[in.B] & 31)
		case ir.OpShr:
			regs[in.Def] = regs[in.A] >> (regs[in.B] & 31)
		case ir.OpMul:
			regs[in.Def] = regs[in.A] * regs[in.B]
		case ir.OpAddI:
			regs[in.Def] = regs[in.A] + uint32(in.Imm)
		case ir.OpSubI:
			regs[in.Def] = regs[in.A] - uint32(in.Imm)
		case ir.OpAndI:
			regs[in.Def] = regs[in.A] & uint32(in.Imm)
		case ir.OpOrI:
			regs[in.Def] = regs[in.A] | uint32(in.Imm)
		case ir.OpXorI:
			regs[in.Def] = regs[in.A] ^ uint32(in.Imm)
		case ir.OpShlI:
			regs[in.Def] = regs[in.A] << (uint32(in.Imm) & 31)
		case ir.OpShrI:
			regs[in.Def] = regs[in.A] >> (uint32(in.Imm) & 31)
		case ir.OpMulI:
			regs[in.Def] = regs[in.A] * uint32(in.Imm)
		case ir.OpNot:
			regs[in.Def] = ^regs[in.A]
		case ir.OpLoad, ir.OpLoadA:
			addr := uint32(in.Imm)
			if in.Op == ir.OpLoad {
				addr += regs[in.A]
			}
			s.pending[t] = pendingOp{isLoad: true, def: in.Def, addr: addr}
			s.blocked[t] = true
			s.pcs[t] = next
			return nil
		case ir.OpStore, ir.OpStoreA:
			addr := uint32(in.Imm)
			if in.Op == ir.OpStore {
				addr += regs[in.A]
			}
			s.pending[t] = pendingOp{isLoad: false, addr: addr, val: regs[in.B]}
			s.blocked[t] = true
			s.pcs[t] = next
			return nil
		case ir.OpCtx:
			s.pcs[t] = next
			return nil
		case ir.OpIter:
			s.iters[t]++
		case ir.OpNop:
		case ir.OpBr:
			next = f.Blocks[f.BlockByLabel(in.Target)].Start()
		case ir.OpBZ:
			if regs[in.A] == 0 {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBNZ:
			if regs[in.A] != 0 {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBEQ:
			if regs[in.A] == regs[in.B] {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBNE:
			if regs[in.A] != regs[in.B] {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBLT:
			if int32(regs[in.A]) < int32(regs[in.B]) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpBGE:
			if int32(regs[in.A]) >= int32(regs[in.B]) {
				next = f.Blocks[f.BlockByLabel(in.Target)].Start()
			}
		case ir.OpHalt:
			s.halted[t] = true
			return nil
		default:
			return fmt.Errorf("schedcheck: invalid opcode %v", in.Op)
		}
		s.pcs[t] = next
	}
}

// hashMem is FNV-1a over the memory image.
func hashMem(mem []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range mem {
		for sh := 0; sh < 32; sh += 8 {
			h ^= uint64((w >> sh) & 0xFF)
			h *= 1099511628211
		}
	}
	return h
}
