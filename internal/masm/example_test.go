package masm_test

import (
	"fmt"
	"log"

	"npra/internal/interp"
	"npra/internal/masm"
)

// ExampleAssemble builds a program from a macro and runs it on the
// reference interpreter.
func ExampleAssemble() {
	f, err := masm.Assemble(`
.equ N 5

.macro triangle acc, n
@loop:
	add acc, acc, n
	subi n, n, 1
	bnz n, @loop
.endm

func tri
entry:
	set v0, 0
	set v1, N
	triangle v0, v1
	store [0], v0
	halt`)
	if err != nil {
		log.Fatal(err)
	}
	mem := make([]uint32, 4)
	if _, err := interp.Run(f, mem, interp.Options{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("1+2+3+4+5 =", mem[0])
	// Output:
	// 1+2+3+4+5 = 15
}
