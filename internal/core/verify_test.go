package core

import (
	"strings"
	"testing"

	"npra/internal/ir"
)

// mkVerifyAlloc builds a small, genuinely valid two-thread allocation to
// mutate; every failure branch below starts from a copy of it.
func mkVerifyAlloc(t *testing.T) *Allocation {
	t.Helper()
	alloc, err := AllocateARA([]*ir.Func{ir.MustParse(fig3t1), ir.MustParse(fig3t2)}, Config{NReg: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatalf("baseline allocation invalid: %v", err)
	}
	return alloc
}

func TestVerifySGROutOfRange(t *testing.T) {
	alloc := mkVerifyAlloc(t)
	alloc.SGR = alloc.NReg + 1
	if err := alloc.Verify(); err == nil || !strings.Contains(err.Error(), "SGR") {
		t.Errorf("err = %v, want SGR out of range", err)
	}
	alloc.SGR = -1
	if err := alloc.Verify(); err == nil || !strings.Contains(err.Error(), "SGR") {
		t.Errorf("negative SGR: err = %v", err)
	}
}

func TestVerifyOverlappingPrivateBanks(t *testing.T) {
	alloc := mkVerifyAlloc(t)
	if len(alloc.Threads) < 2 || alloc.Threads[0].PR == 0 {
		t.Skip("need two threads with private registers")
	}
	// Slide thread 1's bank onto thread 0's.
	alloc.Threads[1].PrivBase = alloc.Threads[0].PrivBase
	alloc.Threads[1].PR = alloc.Threads[0].PR
	err := alloc.Verify()
	if err == nil || !strings.Contains(err.Error(), "owned by threads") {
		t.Errorf("err = %v, want overlapping ownership", err)
	}
}

func TestVerifyPrivateRangeOutsideFile(t *testing.T) {
	alloc := mkVerifyAlloc(t)
	alloc.Threads[0].PrivBase = alloc.NReg // entirely past the file
	alloc.Threads[0].PR = 2
	err := alloc.Verify()
	if err == nil || !strings.Contains(err.Error(), "outside file") {
		t.Errorf("err = %v, want range outside file", err)
	}
}

func TestVerifyPrivateInsideSharedBank(t *testing.T) {
	alloc := mkVerifyAlloc(t)
	if alloc.SGR == 0 {
		t.Skip("no shared bank in baseline allocation")
	}
	// Park thread 0's private range on top of the shared bank.
	alloc.Threads[0].PrivBase = alloc.SharedBase()
	alloc.Threads[0].PR = 1
	err := alloc.Verify()
	if err == nil || !strings.Contains(err.Error(), "shared bank") {
		t.Errorf("err = %v, want private register inside shared bank", err)
	}
}

func TestVerifyUseOutsidePartition(t *testing.T) {
	alloc := mkVerifyAlloc(t)
	// Shrink thread 0's recorded bank without touching its code: the
	// registers the rewritten code actually uses now fall outside what
	// the allocation claims the thread owns.
	th := alloc.Threads[0]
	if th.PR == 0 {
		t.Skip("thread 0 has no private registers")
	}
	th.PR = 0
	err := alloc.Verify()
	if err == nil || !(strings.Contains(err.Error(), "outside its partition") ||
		strings.Contains(err.Error(), "not private")) {
		t.Errorf("err = %v, want use outside partition", err)
	}
}

func TestVerifyNilThreadCode(t *testing.T) {
	alloc := mkVerifyAlloc(t)
	alloc.Threads[1].F = nil
	err := alloc.Verify()
	if err == nil || !strings.Contains(err.Error(), "no rewritten code") {
		t.Errorf("err = %v, want missing code", err)
	}
}

func TestVerifyLiveAcrossCSBNotPrivate(t *testing.T) {
	// Hand-build a thread whose rewritten code keeps r5 live across the
	// ctx, but whose recorded private bank is [0,1): branch 3 of Verify.
	f := ir.MustParse(`
func bad
entry:
	set r5, 1
	ctx
	store [64], r5
	halt`)
	f.Physical = true
	alloc := &Allocation{
		NReg: 8,
		SGR:  3, // shared bank [5,8) — r5 is shared, yet live across the ctx
		Threads: []*ThreadAlloc{{
			Name: "bad", PR: 1, PrivBase: 0, F: f,
		}},
	}
	err := alloc.Verify()
	if err == nil || !strings.Contains(err.Error(), "live across") {
		t.Errorf("err = %v, want live-across violation", err)
	}
}
