// Package faultinject provides deterministic, named fault-injection
// sites for the allocation pipeline. Production code registers a site at
// each hot-path seam with a single Fire call; tests arm a site in one of
// three modes (error, panic, delay) and assert that the pipeline's
// failure handling — typed errors, panic recovery, deadline checks,
// graceful degradation — holds under the injected fault.
//
// The disarmed fast path is one atomic load, so the seams are safe to
// keep in release builds. Arming is process-global and guarded by a
// mutex; injection order is deterministic for serial callers (a site
// fires on its hit counter, not on wall-clock), and for parallel callers
// the *set* of fired hits is deterministic once Count hits are consumed.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed site does when hit.
type Mode uint8

const (
	// Off disables the site (same as never arming it).
	Off Mode = iota
	// Error makes Fire return an error wrapping ErrInjected.
	Error
	// Panic makes Fire panic with an *InjectedPanic.
	Panic
	// Delay makes Fire sleep for the plan's Delay (or until ctx is
	// done, in which case it returns ctx.Err()).
	Delay
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Modes lists the active (non-Off) modes, for harnesses that sweep them.
func Modes() []Mode { return []Mode{Error, Panic, Delay} }

// Site names one injection seam. The allocation pipeline registers the
// four seams below; other packages may declare their own.
type Site string

const (
	// SiteSolve fires before each initial per-thread Solve (ARA setup
	// fan-out) and before each sweep-point Solve (SRA) — inside a
	// parallel worker, so panic mode exercises worker recovery.
	SiteSolve Site = "core.solve"
	// SitePricing fires before each thread's candidate pricing in every
	// greedy reduction round.
	SitePricing Site = "core.pricing"
	// SiteFinalize fires before the physical mapping / rewrite stage of
	// the primary allocation path (the degraded fallback path does not
	// pass through it).
	SiteFinalize Site = "core.finalize"
	// SiteVerify fires inside the degraded-fallback self-check, modeling
	// a failure of the degradation path itself.
	SiteVerify Site = "core.verify"

	// SiteServe fires in npserve's request handler after a request has
	// been decoded and validated, before it enters the singleflight and
	// batching layers — per HTTP request, on the handler goroutine, so
	// error mode models a serving-layer failure (HTTP 500), panic mode
	// exercises the handler's recovery barrier, and delay mode models a
	// slow admission path racing the request deadline (HTTP 504). It is
	// deliberately not part of Sites(): the core fault matrix sweeps the
	// allocation pipeline's seams, while internal/serve's own tests sweep
	// this one.
	SiteServe Site = "serve.handle"
)

// Sites lists the allocation pipeline's registered seams, for harnesses.
// The serving layer's SiteServe is swept by internal/serve's tests, not
// by the core fault matrix.
func Sites() []Site { return []Site{SiteSolve, SitePricing, SiteFinalize, SiteVerify} }

// ErrInjected is the sentinel wrapped by every Error-mode injection.
var ErrInjected = errors.New("faultinject: injected failure")

// InjectedPanic is the value Panic-mode injections panic with.
type InjectedPanic struct{ Site Site }

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s", p.Site)
}

// Plan configures one armed site.
type Plan struct {
	Mode Mode
	// After skips the first After hits; the site fires on every hit
	// beyond that. 0 means fire on the first hit.
	After int
	// Count, when > 0, bounds how many times the site fires; later hits
	// pass through. 0 means fire on every hit past After.
	Count int
	// Delay is the sleep duration for Delay mode.
	Delay time.Duration
}

type armedSite struct {
	plan  Plan
	hits  int
	fired int
}

var (
	armedCount atomic.Int32
	mu         sync.Mutex
	sites      = make(map[Site]*armedSite)
)

// Arm installs plan at site, replacing any previous plan. Arming with
// Mode Off disarms the site.
func Arm(site Site, plan Plan) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; ok {
		delete(sites, site)
		armedCount.Add(-1)
	}
	if plan.Mode == Off {
		return
	}
	sites[site] = &armedSite{plan: plan}
	armedCount.Add(1)
}

// Reset disarms every site and clears all counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(-int32(len(sites)))
	sites = make(map[Site]*armedSite)
}

// Enabled reports whether any site is armed (one atomic load).
func Enabled() bool { return armedCount.Load() > 0 }

// Hits returns how many times site has been hit and how many times it
// actually fired since it was armed.
func Hits(site Site) (hits, fired int) {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[site]; ok {
		return s.hits, s.fired
	}
	return 0, 0
}

// Fire is the seam call. Disarmed (the common case) it is a single
// atomic load returning nil. Armed, it consults the site's plan:
// Error mode returns an error wrapping ErrInjected, Panic mode panics
// with an *InjectedPanic, Delay mode sleeps for the planned duration or
// until ctx is done (returning ctx.Err() in that case). ctx may be nil,
// which Delay mode treats as no cancellation.
func Fire(ctx context.Context, site Site) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	s, ok := sites[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	s.hits++
	if s.hits <= s.plan.After || (s.plan.Count > 0 && s.fired >= s.plan.Count) {
		mu.Unlock()
		return nil
	}
	s.fired++
	plan := s.plan
	mu.Unlock()

	switch plan.Mode {
	case Error:
		return fmt.Errorf("%w: site %s", ErrInjected, site)
	case Panic:
		panic(&InjectedPanic{Site: site})
	case Delay:
		if ctx == nil {
			time.Sleep(plan.Delay)
			return nil
		}
		t := time.NewTimer(plan.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
