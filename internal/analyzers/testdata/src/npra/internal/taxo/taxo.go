// Fixture for the errtaxonomy analyzer: errors crossing an internal
// package boundary must wrap a taxonomy sentinel via %w.
package taxo

import (
	"errors"
	"fmt"
)

// ErrInvalid stands in for the core taxonomy sentinel.
var ErrInvalid = errors.New("taxo: invalid")

// Solve is the seeded unwrapped-sentinel regression: both returns
// construct naked errors at an exported boundary.
func Solve(n int) error {
	if n < 0 {
		return errors.New("negative input") // want `Solve returns an errors.New error across an internal package boundary`
	}
	if n > 100 {
		return fmt.Errorf("n too large: %d", n) // want `Solve returns a fmt.Errorf error with no %w verb`
	}
	return nil
}

// SolveWrapped wraps the sentinel: allowed.
func SolveWrapped(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative input", ErrInvalid)
	}
	return nil
}

// Passthrough returns a callee's error untouched: allowed (the callee
// is held to the same rule).
func Passthrough(n int) error {
	return Solve(n)
}

// MustSolve panics instead of returning: Must* helpers are exempt.
func MustSolve(n int) error {
	return errors.New("must helpers are exempt")
}

// lowerSolve is unexported, so it is not a package boundary.
func lowerSolve() error {
	return errors.New("unexported is not a boundary")
}

// Legacy carries a verified suppression: not flagged.
func Legacy(n int) error {
	return errors.New("documented pre-taxonomy error") //lint:ignore errtaxonomy grandfathered error kept for wire compatibility
}

// Solver is an exported type; its exported methods are boundaries too.
type Solver struct{}

func (s *Solver) Run() error {
	return errors.New("method boundary") // want `Run returns an errors.New error across an internal package boundary`
}
