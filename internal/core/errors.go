package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"npra/internal/core/errs"
	"npra/internal/intra"
	"npra/internal/parallel"
)

// The allocation pipeline's typed error taxonomy. Every error returned
// by AllocateARACtx / AllocateSRACtx wraps exactly one of these
// sentinels, so callers can route on errors.Is:
//
//   - ErrInvalid: the arguments themselves are malformed (no threads,
//     non-positive NReg, mismatched Critical weights). Not recoverable
//     by degradation — the fallback would be just as malformed.
//   - ErrInfeasible: the input is well-formed but genuinely does not fit
//     the register budget (demand exceeds NReg even at the splitting
//     lower bounds). Degradation cannot help: the static partition is a
//     feasible point of the same space, so an infeasible instance is
//     infeasible for it too.
//   - ErrTimeout: the context deadline expired or the context was
//     canceled mid-allocation. The allocator falls back to the static
//     partition; ErrTimeout only escapes when the fallback also fails.
//   - ErrInternal: an internal invariant broke — a recovered panic
//     (carried as a *PanicError in the chain), a bound inversion, a
//     rewrite failure. Like timeouts, internal failures degrade to the
//     static partition before being surfaced.
//
// The sentinel values themselves live in the dependency-free leaf
// package internal/core/errs so that packages below core in the import
// graph can wrap them without a cycle; these are the same values, so
// errors.Is routing is identical through either import path.
var (
	ErrInvalid    = errs.ErrInvalid
	ErrInfeasible = errs.ErrInfeasible
	ErrTimeout    = errs.ErrTimeout
	ErrInternal   = errs.ErrInternal
)

// PanicError carries a panic recovered at the allocation API boundary
// (or transported out of a parallel worker). It unwraps to ErrInternal.
type PanicError struct {
	Value any    // the original panic value
	Stack []byte // stack at recovery time
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: recovered panic: %v", e.Value)
}

func (e *PanicError) Unwrap() error { return ErrInternal }

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

func infeasiblef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInfeasible, fmt.Sprintf(format, args...))
}

func internalf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInternal, fmt.Sprintf(format, args...))
}

// classify maps an error bubbling out of the pipeline's internals onto
// the taxonomy. Errors already carrying a sentinel pass through; context
// errors become ErrTimeout; intra's infeasibility marker becomes
// ErrInfeasible; everything else is an internal failure.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrInvalid), errors.Is(err, ErrInfeasible),
		errors.Is(err, ErrTimeout), errors.Is(err, ErrInternal):
		return err
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	case intra.IsInfeasible(err):
		return fmt.Errorf("%w: %w", ErrInfeasible, err)
	default:
		return fmt.Errorf("%w: %w", ErrInternal, err)
	}
}

// recovered converts a recovered panic value into a *PanicError,
// unwrapping the transport wrapper parallel workers use so the original
// value and the worker's stack survive.
func recovered(r any) *PanicError {
	if p, ok := r.(*parallel.Panic); ok {
		return &PanicError{Value: p.Value, Stack: p.Stack}
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}
