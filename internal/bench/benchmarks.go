package bench

import "npra/internal/ir"

// Offsets (in bytes) inside a thread's 8 KiB segment: inputs occupy at
// most 1 KiB, results start at 2 KiB, mutable scheduler/queue state at
// 4 KiB (everything stays well inside the segment).
const (
	inOff    = 0    // input/packet area
	outOff   = 2048 // results
	stateOff = 4096 // per-flow / queue state
)

func init() {
	register(&Benchmark{
		Name: "frag", Suite: "commbench",
		Description: "IP fragmentation: header checksum over packet words, two fragment headers emitted",
		Gen:         genFrag,
	})
	register(&Benchmark{
		Name: "md5", Suite: "netbench",
		Description: "MD5-style message digest: four unrolled round groups with wide temporary fan-out",
		Gen:         genMD5,
	})
	register(&Benchmark{
		Name: "fir2dim", Suite: "intel",
		Description: "3x3 2-D FIR filter over a pixel window",
		Gen:         genFir2dim,
	})
	register(&Benchmark{
		Name: "l2l3fwd_recv", Suite: "intel",
		Description: "L2/L3 forwarding, receive side: header validation, TTL update, enqueue",
		Gen:         genL2L3Recv,
	})
	register(&Benchmark{
		Name: "l2l3fwd_send", Suite: "intel",
		Description: "L2/L3 forwarding, send side: dequeue, MAC rewrite, transmit",
		Gen:         genL2L3Send,
	})
	register(&Benchmark{
		Name: "wraps_recv", Suite: "wraps",
		Description: "WRAPS scheduler receive: wide per-queue weighted priority computation",
		Gen:         genWrapsRecv,
	})
	register(&Benchmark{
		Name: "wraps_send", Suite: "wraps",
		Description: "WRAPS scheduler send: weighted selection across queues with deficit update",
		Gen:         genWrapsSend,
	})
	register(&Benchmark{
		Name: "url", Suite: "netbench",
		Description: "URL pattern match over payload words",
		Gen:         genURL,
	})
	register(&Benchmark{
		Name: "drr", Suite: "commbench",
		Description: "Deficit round-robin scheduling: quantum/deficit bookkeeping",
		Gen:         genDRR,
	})
	register(&Benchmark{
		Name: "crc32", Suite: "commbench",
		Description: "Word-at-a-time CRC over the packet payload",
		Gen:         genCRC32,
	})
	register(&Benchmark{
		Name: "route", Suite: "netbench",
		Description: "Multi-level table IP route lookup (pointer-chasing loads)",
		Gen:         genRoute,
	})
	// Service kernels beyond the paper's 11: they diversify the serve
	// benchmarks' kernel-mix pool (pressure-testing the rewrite cache
	// across scenario shapes) but stay out of the §9 tables.
	register(&Benchmark{
		Name: "ipv6_fwd", Suite: "intel", Extra: true,
		Description: "IPv6 forwarding: hop-limit update, prefix-hash next-hop lookup over the destination address",
		Gen:         genIPv6Fwd,
	})
	register(&Benchmark{
		Name: "aes_round", Suite: "netbench", Extra: true,
		Description: "AES-style cipher round: sub/shift/mix bursts over four state words plus round key",
		Gen:         genAESRound,
	})
	register(&Benchmark{
		Name: "dpi_scan", Suite: "netbench", Extra: true,
		Description: "DPI-style signature scan: byte-shifted windows over payload words against masked patterns",
		Gen:         genDPIScan,
	})
}

// genFrag: CommBench frag — the paper's running example (Figure 4 is its
// checksum loop). Low pressure; checksum accumulates over header words.
func genFrag(npkts int) *ir.Func {
	k := prologue("frag", npkts, 64)
	bu := k.bu
	p := k.pktOff(20, 32)
	sum := bu.Set(0)
	for i := 0; i < 5; i++ { // 5 header words
		w := bu.Load(p, int64(i*4))
		lo := bu.OpI(ir.OpAndI, w, 0xFFFF)
		hi := bu.OpI(ir.OpShrI, w, 16)
		bu.Op3To(ir.OpAdd, sum, sum, lo)
		bu.Op3To(ir.OpAdd, sum, sum, hi)
	}
	// Fold carries twice and complement.
	fold := bu.OpI(ir.OpShrI, sum, 16)
	bu.OpITo(ir.OpAndI, sum, sum, 0xFFFF)
	bu.Op3To(ir.OpAdd, sum, sum, fold)
	fold2 := bu.OpI(ir.OpShrI, sum, 16)
	bu.Op3To(ir.OpAdd, sum, sum, fold2)
	ck := bu.OpI(ir.OpXorI, sum, 0xFFFF)
	// Emit two fragment headers: original + offset variant.
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff))
	bu.Store(out, 0, ck)
	frag2 := bu.OpI(ir.OpOrI, ck, 0x2000) // more-fragments flag
	bu.Store(out, 4, frag2)
	return k.epilogue()
}

// genMD5: NetBench md5 — the paper's performance-critical thread in
// scenarios 1 and 2. Four unrolled round groups, each loading a block of
// message words and fanning out into ~8 co-live temporaries per group
// while the running digest stays live: internal pressure well above the
// 32-register baseline partition, boundary pressure modest.
func genMD5(npkts int) *ir.Func {
	k := prologue("md5", npkts, 256)
	bu := k.bu
	a := bu.Set(0x67452301)
	b := bu.Set(0xEFCDAB89 - (1 << 32)) // sign-safe immediate
	c := bu.Set(0x98BADCFE - (1 << 32))
	d := bu.Set(0x10325476)
	p := k.pktOff(64, 128)
	for round := 0; round < 4; round++ {
		mix := k.wideFan(p, 4, 27)
		// F/G/H/I-style combiner per round.
		var f ir.Reg
		switch round {
		case 0:
			t1 := bu.Op3(ir.OpAnd, b, c)
			t2 := bu.Op3(ir.OpAnd, bu.Op3(ir.OpXor, b, bu.Set(-1)), d)
			f = bu.Op3(ir.OpOr, t1, t2)
		case 1:
			t1 := bu.Op3(ir.OpAnd, d, b)
			t2 := bu.Op3(ir.OpAnd, bu.Op3(ir.OpXor, d, bu.Set(-1)), c)
			f = bu.Op3(ir.OpOr, t1, t2)
		case 2:
			f = bu.Op3(ir.OpXor, bu.Op3(ir.OpXor, b, c), d)
		default:
			t1 := bu.Op3(ir.OpOr, b, bu.Op3(ir.OpXor, d, bu.Set(-1)))
			f = bu.Op3(ir.OpXor, c, t1)
		}
		sum := bu.Op3(ir.OpAdd, a, f)
		bu.Op3To(ir.OpAdd, sum, sum, mix)
		// Rotate-left by a round-dependent amount.
		rl := bu.OpI(ir.OpShlI, sum, int64(7+round*5))
		rr := bu.OpI(ir.OpShrI, sum, int64(32-(7+round*5)))
		rot := bu.Op3(ir.OpOr, rl, rr)
		// a,b,c,d = d, b+rot, b, c
		newB := bu.Op3(ir.OpAdd, b, rot)
		olda := a
		bu.MovTo(olda, d) // a <- d
		bu.MovTo(d, c)
		bu.MovTo(c, b)
		bu.MovTo(b, newB)
		p = bu.OpI(ir.OpAddI, p, 16)
		bu.Ctx() // voluntary yield for fair CPU sharing (paper §1.1)
	}
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+16))
	bu.Store(out, 0, a)
	bu.Store(out, 4, b)
	bu.Store(out, 8, c)
	bu.Store(out, 12, d)
	return k.epilogue()
}

// genFir2dim: a register-blocked 3x3 2-D FIR filter: one fresh pixel
// column is loaded per output (three loads); the other two window columns
// are propagated in registers, as production stencil code does to spare
// both memory bandwidth and the load/context-switch rate. All nine window
// values are co-live at the multiply burst, so boundary pressure is
// moderate and internal pressure small.
func genFir2dim(npkts int) *ir.Func {
	k := prologue("fir2dim", npkts, 128)
	bu := k.bu
	p := k.pktOff(12, 64)
	coeff := []int64{1, 2, 1, 2, 4, 2, 1, 2, 1}
	var px [9]ir.Reg
	// Fresh column (three loads).
	for r := 0; r < 3; r++ {
		px[r*3+2] = bu.Load(p, int64(r*16))
	}
	// Propagated columns, synthesized in registers from the fresh one
	// (register-blocked reuse of the previous window positions).
	for r := 0; r < 3; r++ {
		px[r*3+1] = bu.OpI(ir.OpShrI, px[r*3+2], 1)
		px[r*3] = bu.Op3(ir.OpXor, px[r*3+1], px[(r+1)%3*3+2])
	}
	acc := bu.OpI(ir.OpMulI, px[0], coeff[0])
	for i := 1; i < 9; i++ {
		t := bu.OpI(ir.OpMulI, px[i], coeff[i])
		bu.Op3To(ir.OpAdd, acc, acc, t)
	}
	res := bu.OpI(ir.OpShrI, acc, 4) // normalize by 16
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+64))
	bu.Store(out, 0, res)
	return k.epilogue()
}

// genL2L3Recv: receive-side forwarding: validate ethertype, decrement
// TTL with checksum fix-up, enqueue the descriptor. Branchy, moderate.
func genL2L3Recv(npkts int) *ir.Func {
	k := prologue("l2l3fwd_recv", npkts, 128)
	bu := k.bu
	p := k.pktOff(24, 64)
	w0 := bu.Load(p, 0) // dst MAC hi
	w1 := bu.Load(p, 4) // dst MAC lo | ethertype
	ety := bu.OpI(ir.OpShrI, w1, 16)
	isIP := bu.Op3(ir.OpSub, ety, bu.Set(0x0800))
	bu.BNZ(isIP, "drop")
	ipw := bu.Load(p, 8) // ver/ttl/proto
	ttl := bu.OpI(ir.OpShrI, ipw, 8)
	bu.OpITo(ir.OpAndI, ttl, ttl, 0xFF)
	bu.BZ(ttl, "drop")
	// Decrement TTL, incremental checksum adjust.
	nt := bu.OpI(ir.OpSubI, ttl, 1)
	masked := bu.Op3(ir.OpAnd, ipw, bu.Set(-0xFF01)) // clear TTL byte
	sh := bu.OpI(ir.OpShlI, nt, 8)
	neww := bu.Op3(ir.OpOr, masked, sh)
	ck := bu.Load(p, 12)
	bu.OpITo(ir.OpAddI, ck, ck, 0x100) // RFC1624-style adjust (approx.)
	// Enqueue: descriptor ring at stateOff.
	qh := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff))
	idx := bu.Load(qh, 0)
	slot := bu.OpI(ir.OpAndI, idx, 15)
	sb := bu.OpI(ir.OpShlI, slot, 3)
	sp := bu.Op3(ir.OpAdd, qh, sb)
	bu.Store(sp, 16, neww)
	bu.Store(sp, 20, ck)
	ni := bu.OpI(ir.OpAddI, idx, 1)
	bu.Store(qh, 0, ni)
	bu.Op3To(ir.OpXor, w0, w0, w0) // consume header regs
	bu.Br("next")
	bu.Label("drop")
	dc := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+256))
	old := bu.Load(dc, 0)
	bu.OpITo(ir.OpAddI, old, old, 1)
	bu.Store(dc, 0, old)
	bu.Label("next")
	return k.epilogue()
}

// genL2L3Send: send-side forwarding: dequeue a descriptor, rewrite source
// and destination MACs, emit, advance the ring.
func genL2L3Send(npkts int) *ir.Func {
	k := prologue("l2l3fwd_send", npkts, 128)
	bu := k.bu
	qh := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff))
	idx := bu.Load(qh, 4) // consumer index
	slot := bu.OpI(ir.OpAndI, idx, 15)
	sb := bu.OpI(ir.OpShlI, slot, 3)
	sp := bu.Op3(ir.OpAdd, qh, sb)
	hdr := bu.Load(sp, 16)
	ck := bu.Load(sp, 20)
	// MAC rewrite from the forwarding table keyed by low header bits.
	key := bu.OpI(ir.OpAndI, hdr, 7)
	kb := bu.OpI(ir.OpShlI, key, 2)
	tbl := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+512))
	ta := bu.Op3(ir.OpAdd, tbl, kb)
	mac := bu.Load(ta, 0)
	newHdr := bu.Op3(ir.OpXor, hdr, mac)
	sum := bu.Op3(ir.OpAdd, newHdr, ck)
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+128))
	bu.Store(out, 0, newHdr)
	bu.Store(out, 4, sum)
	ni := bu.OpI(ir.OpAddI, idx, 1)
	bu.Store(qh, 4, ni)
	return k.epilogue()
}

// genWrapsRecv: the WRAPS scheduler's receive half (the paper's scenario
// 3 critical thread): classify the packet, then compute weighted
// priorities for all queues in one wide burst — the highest internal
// pressure in the suite.
func genWrapsRecv(npkts int) *ir.Func {
	k := prologue("wraps_recv", npkts, 256)
	bu := k.bu
	p := k.pktOff(32, 128)
	mix := k.wideFan(p, 5, 30) // wide weighted-priority computation
	bu.Ctx()                   // voluntary yield for fair CPU sharing
	// Classify into one of 8 queues and bump its length.
	q := bu.OpI(ir.OpAndI, mix, 7)
	qb := bu.OpI(ir.OpShlI, q, 2)
	qs := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+1024))
	qa := bu.Op3(ir.OpAdd, qs, qb)
	qlen := bu.Load(qa, 0)
	nq := bu.OpI(ir.OpAddI, qlen, 1)
	bu.Store(qa, 0, nq)
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+192))
	bu.Store(out, 0, mix)
	return k.epilogue()
}

// genWrapsSend: the send half: weighted selection across queues with a
// wide scoring burst, deficit update for the winner.
func genWrapsSend(npkts int) *ir.Func {
	k := prologue("wraps_send", npkts, 256)
	bu := k.bu
	p := k.pktOff(28, 128)
	score := k.wideFan(p, 4, 31)
	bu.Ctx() // voluntary yield for fair CPU sharing
	// Select queue by score, decrement its length if nonzero.
	q := bu.OpI(ir.OpShrI, score, 29) // top 3 bits
	qb := bu.OpI(ir.OpShlI, q, 2)
	qs := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+1024))
	qa := bu.Op3(ir.OpAdd, qs, qb)
	qlen := bu.Load(qa, 0)
	bu.BZ(qlen, "empty")
	dq := bu.OpI(ir.OpSubI, qlen, 1)
	bu.Store(qa, 0, dq)
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+256))
	bu.Store(out, 0, score)
	bu.Br("sent")
	bu.Label("empty")
	miss := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+1280))
	m := bu.Load(miss, 0)
	bu.OpITo(ir.OpAddI, m, m, 1)
	bu.Store(miss, 0, m)
	bu.Label("sent")
	return k.epilogue()
}

// genURL: match payload words against four masked patterns; moderate
// internal pressure from the pattern comparison fan.
func genURL(npkts int) *ir.Func {
	k := prologue("url", npkts, 128)
	bu := k.bu
	p := k.pktOff(16, 64)
	var words [6]ir.Reg
	for i := range words {
		words[i] = bu.Load(p, int64(i*4))
	}
	patterns := []int64{0x2F696E64, 0x2E68746D, 0x2F617069, 0x63676942}
	match := bu.Set(0)
	for pi, pat := range patterns {
		pr := bu.Set(pat)
		for wi := 0; wi < 4; wi++ {
			x := bu.Op3(ir.OpXor, words[(pi+wi)%len(words)], pr)
			lo := bu.OpI(ir.OpAndI, x, 0xFFFF)
			hi := bu.OpI(ir.OpShrI, x, 16)
			hit := bu.Op3(ir.OpOr, lo, hi)
			bu.BNZ(hit, nextLabel(pi, wi))
			bu.OpITo(ir.OpOrI, match, match, 1<<uint(pi))
			bu.Label(nextLabel(pi, wi))
		}
	}
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+320))
	bu.Store(out, 0, match)
	return k.epilogue()
}

func nextLabel(pi, wi int) string {
	return "m" + string(rune('a'+pi)) + string(rune('0'+wi))
}

// genDRR: deficit round robin — quantum accounting with branches.
func genDRR(npkts int) *ir.Func {
	k := prologue("drr", npkts, 64)
	bu := k.bu
	qs := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+1536))
	cur := bu.Load(qs, 0) // current queue
	q := bu.OpI(ir.OpAndI, cur, 3)
	qb := bu.OpI(ir.OpShlI, q, 3)
	qa := bu.Op3(ir.OpAdd, qs, qb)
	deficit := bu.Load(qa, 8)
	p := k.pktOff(8, 32)
	plen := bu.Load(p, 0)
	bu.OpITo(ir.OpAndI, plen, plen, 0x3FF) // packet length 0..1023
	bu.Op3To(ir.OpAdd, deficit, deficit, bu.Set(512))
	bu.BLT(deficit, plen, "defer")
	bu.Op3To(ir.OpSub, deficit, deficit, plen)
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+384))
	bu.Store(out, 0, plen)
	bu.Br("store")
	bu.Label("defer")
	nc := bu.OpI(ir.OpAddI, cur, 1)
	bu.Store(qs, 0, nc)
	bu.Label("store")
	bu.Store(qa, 8, deficit)
	return k.epilogue()
}

// genCRC32: word-at-a-time CRC-ish folding over eight payload words.
func genCRC32(npkts int) *ir.Func {
	k := prologue("crc32", npkts, 128)
	bu := k.bu
	p := k.pktOff(32, 64)
	crc := bu.Set(-1)
	for i := 0; i < 8; i++ {
		w := bu.Load(p, int64(i*4))
		bu.Op3To(ir.OpXor, crc, crc, w)
		// Two branch-free polynomial folds per word.
		for j := 0; j < 2; j++ {
			top := bu.OpI(ir.OpShrI, crc, 31)
			poly := bu.OpI(ir.OpMulI, top, 0x04C11DB7)
			sh := bu.OpI(ir.OpShlI, crc, 1)
			bu.Op3To(ir.OpXor, crc, sh, poly)
		}
	}
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+448))
	fin := bu.OpI(ir.OpXorI, crc, -1)
	bu.Store(out, 0, fin)
	return k.epilogue()
}

// genRoute: three-level route table walk — serialized dependent loads,
// so context switches dominate the instruction mix.
func genRoute(npkts int) *ir.Func {
	k := prologue("route", npkts, 256)
	bu := k.bu
	p := k.pktOff(16, 64)
	ip := bu.Load(p, 0)
	tbl := bu.Op3(ir.OpAdd, k.base, bu.Set(inOff)) // reuse filled area as tables
	i1 := bu.OpI(ir.OpShrI, ip, 26)                // 6 bits
	b1 := bu.OpI(ir.OpShlI, i1, 2)
	a1 := bu.Op3(ir.OpAdd, tbl, b1)
	n1 := bu.Load(a1, 0)
	i2 := bu.Op3(ir.OpXor, n1, ip)
	bu.OpITo(ir.OpAndI, i2, i2, 63)
	b2 := bu.OpI(ir.OpShlI, i2, 2)
	a2 := bu.Op3(ir.OpAdd, tbl, b2)
	n2 := bu.Load(a2, 0)
	i3 := bu.Op3(ir.OpXor, n2, n1)
	bu.OpITo(ir.OpAndI, i3, i3, 63)
	b3 := bu.OpI(ir.OpShlI, i3, 2)
	a3 := bu.Op3(ir.OpAdd, tbl, b3)
	hop := bu.Load(a3, 0)
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+512))
	bu.Store(out, 0, hop)
	bu.Store(out, 4, ip)
	return k.epilogue()
}

// genIPv6Fwd: IPv6 forwarding: hop-limit check and decrement, then a
// prefix-hash next-hop lookup — the four destination-address words stay
// co-live through the hash, so pressure is moderate and branchy like the
// l2l3fwd pair but with a wider address fan.
func genIPv6Fwd(npkts int) *ir.Func {
	k := prologue("ipv6_fwd", npkts, 128)
	bu := k.bu
	p := k.pktOff(40, 64)
	vtc := bu.Load(p, 0) // version/traffic class/flow label
	pln := bu.Load(p, 4) // payload len | next header | hop limit
	hop := bu.OpI(ir.OpAndI, pln, 0xFF)
	bu.BZ(hop, "expired")
	// Destination address: four words, all co-live through the hash.
	var dst [4]ir.Reg
	for i := range dst {
		dst[i] = bu.Load(p, int64(24+i*4))
	}
	// /64-prefix hash: fold the top two words, avalanche, index the table.
	h := bu.Op3(ir.OpXor, dst[0], dst[1])
	t := bu.OpI(ir.OpShrI, h, 13)
	bu.Op3To(ir.OpXor, h, h, t)
	bu.OpITo(ir.OpMulI, h, h, 0x85EBCA6B-(1<<32)) // sign-safe immediate
	t2 := bu.OpI(ir.OpShrI, h, 16)
	bu.Op3To(ir.OpXor, h, h, t2)
	idx := bu.OpI(ir.OpAndI, h, 63)
	ib := bu.OpI(ir.OpShlI, idx, 2)
	tbl := bu.Op3(ir.OpAdd, k.base, bu.Set(inOff)) // reuse filled area as the table
	ta := bu.Op3(ir.OpAdd, tbl, ib)
	nh := bu.Load(ta, 0)
	// Low 64 bits disambiguate equal prefixes.
	lo := bu.Op3(ir.OpXor, dst[2], dst[3])
	bu.Op3To(ir.OpXor, nh, nh, lo)
	// Decrement the hop limit and reassemble the header word.
	nhop := bu.OpI(ir.OpSubI, hop, 1)
	hdr := bu.Op3(ir.OpAnd, pln, bu.Set(-0x100)) // clear hop-limit byte
	bu.Op3To(ir.OpOr, hdr, hdr, nhop)
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+576))
	bu.Store(out, 0, hdr)
	bu.Store(out, 4, nh)
	bu.Store(out, 8, vtc)
	bu.Br("fwd")
	bu.Label("expired")
	dc := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+1792))
	old := bu.Load(dc, 0)
	bu.OpITo(ir.OpAddI, old, old, 1)
	bu.Store(dc, 0, old)
	bu.Label("fwd")
	return k.epilogue()
}

// genAESRound: one AES-style round over four state words: a nonlinear
// per-word substitution, row rotations, a column mix where every output
// combines all four rotated words, and a round-key add. The eight
// state/key words are co-live through the mix burst.
func genAESRound(npkts int) *ir.Func {
	k := prologue("aes_round", npkts, 128)
	bu := k.bu
	p := k.pktOff(16, 64)
	var st, rk [4]ir.Reg
	for i := range st {
		st[i] = bu.Load(p, int64(i*4))
	}
	ks := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+2048))
	for i := range rk {
		rk[i] = bu.Load(ks, int64(i*4))
	}
	bu.Ctx() // yield between the load burst and the arithmetic burst
	// SubBytes approximation: per-word nonlinear byte smear.
	var sub [4]ir.Reg
	for i, s := range st {
		sq := bu.OpI(ir.OpMulI, s, 0x01010101)
		sh := bu.OpI(ir.OpShrI, s, 4)
		sub[i] = bu.Op3(ir.OpXor, sq, sh)
	}
	// ShiftRows: rotate word i left by 8*i bits.
	var rot [4]ir.Reg
	rot[0] = sub[0]
	for i := 1; i < 4; i++ {
		l := bu.OpI(ir.OpShlI, sub[i], int64(8*i))
		r := bu.OpI(ir.OpShrI, sub[i], int64(32-8*i))
		rot[i] = bu.Op3(ir.OpOr, l, r)
	}
	// MixColumns-ish: each output word mixes all four rotated words,
	// then AddRoundKey folds in the key word.
	var mixed [4]ir.Reg
	for i := range mixed {
		m := bu.Op3(ir.OpXor, rot[i], rot[(i+1)%4])
		d := bu.OpI(ir.OpMulI, rot[(i+2)%4], 2)
		bu.Op3To(ir.OpXor, m, m, d)
		bu.Op3To(ir.OpXor, m, m, rot[(i+3)%4])
		mixed[i] = bu.Op3(ir.OpXor, m, rk[i])
	}
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+640))
	for i, m := range mixed {
		bu.Store(out, int64(i*4), m)
	}
	return k.epilogue()
}

// genDPIScan: deep-packet-inspection scan: slide byte-shifted windows
// across adjacent payload words and compare each against two masked
// signatures, accumulating a match bitmap — url's comparison fan plus
// cross-word window assembly, with a flow-state update at the end.
func genDPIScan(npkts int) *ir.Func {
	k := prologue("dpi_scan", npkts, 128)
	bu := k.bu
	p := k.pktOff(20, 64)
	sigs := []int64{0x6D616C77, 0x7368656C} // "malw", "shel"
	hits := bu.Set(0)
	prev := bu.Load(p, 0)
	for w := 0; w < 4; w++ {
		cur := bu.Load(p, int64((w+1)*4))
		for s, sig := range sigs {
			sr := bu.Set(sig)
			// Two byte-shifted windows spanning prev..cur.
			for sh := 0; sh < 2; sh++ {
				hi := bu.OpI(ir.OpShlI, prev, int64(8+16*sh))
				lo := bu.OpI(ir.OpShrI, cur, int64(24-16*sh))
				win := bu.Op3(ir.OpOr, hi, lo)
				d := bu.Op3(ir.OpXor, win, sr)
				bu.BNZ(d, dpiLabel(w, s, sh))
				bu.OpITo(ir.OpOrI, hits, hits, 1<<uint(s))
				bu.Label(dpiLabel(w, s, sh))
			}
		}
		prev = cur
	}
	// Per-flow hit accumulator.
	fs := bu.Op3(ir.OpAdd, k.base, bu.Set(stateOff+2304))
	fc := bu.Load(fs, 0)
	bu.Op3To(ir.OpAdd, fc, fc, hits)
	bu.Store(fs, 0, fc)
	out := bu.Op3(ir.OpAdd, k.base, bu.Set(outOff+704))
	bu.Store(out, 0, hits)
	return k.epilogue()
}

func dpiLabel(w, s, sh int) string {
	return "d" + string(rune('a'+w)) + string(rune('0'+s)) + string(rune('0'+sh))
}
