package intra

import (
	"testing"

	"npra/internal/estimate"
	"npra/internal/ig"
	"npra/internal/ir"
)

// mkCtx builds the unsplit context for a source at its move-free palette.
func mkCtx(t *testing.T, src string) (*ig.Analysis, *Context) {
	t.Helper()
	a := ig.Analyze(ir.MustParse(src))
	est, err := estimate.Compute(a)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newContext(a, est.Colors, est.MaxPR, est.MaxR, nil)
	if err := ctx.Validate(); err != nil {
		t.Fatalf("fresh context invalid: %v", err)
	}
	return a, ctx
}

const straightSrc = `
func s
entry:
	set v0, 1        ; boundary: live across the ctx
	ctx
	set v1, 2        ; internal
	add v2, v0, v1   ; internal
	store [0], v2
	halt
`

func TestContextBasics(t *testing.T) {
	a, ctx := mkCtx(t, straightSrc)
	if len(ctx.Pieces) != 3 {
		t.Fatalf("pieces = %d, want 3", len(ctx.Pieces))
	}
	// Each live var has exactly one piece covering its points.
	for v := 0; v < a.NumVars; v++ {
		if !a.Alive[v] {
			continue
		}
		var found *Piece
		for _, p := range ctx.Pieces {
			if p.Var == v {
				found = p
			}
		}
		if found == nil || !found.Points.Equal(a.Points[v]) {
			t.Errorf("v%d piece wrong", v)
		}
	}
	// Unsplit context costs nothing.
	if ctx.MoveCost() != 0 {
		t.Errorf("fresh MoveCost = %d", ctx.MoveCost())
	}
	// ColorAt/PieceAt agree.
	for p := 0; p < a.F.NumPoints(); p++ {
		a.Live.At[p].ForEach(func(v int) {
			pi := ctx.PieceAt(v, p)
			if pi < 0 || ctx.Pieces[pi].Color != ctx.ColorAt(v, p) {
				t.Fatalf("PieceAt/ColorAt disagree at v%d p%d", v, p)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	_, ctx := mkCtx(t, straightSrc)
	cl := ctx.Clone()
	cl.Pieces[0].Color = 99
	cl.Pieces[0].Points.Clear()
	if ctx.Pieces[0].Color == 99 || ctx.Pieces[0].Points.Empty() {
		t.Errorf("Clone shares storage with original")
	}
}

func TestValidateCatchesBadColorings(t *testing.T) {
	_, ctx := mkCtx(t, straightSrc)

	bad := ctx.Clone()
	bad.Pieces[0].Color = bad.Size + 3
	if bad.Validate() == nil {
		t.Errorf("out-of-palette color not caught")
	}

	// Force two co-live pieces onto one color.
	bad2 := ctx.Clone()
	var v0p, v2p *Piece
	for _, p := range bad2.Pieces {
		switch p.Var {
		case 0:
			v0p = p
		case 2:
			v2p = p
		}
	}
	v2p.Color = v0p.Color // v0 and v2 are co-live at the add
	if bad2.Validate() == nil {
		t.Errorf("color collision not caught")
	}
}

func TestValidateCatchesCrossingOutsideCap(t *testing.T) {
	_, ctx := mkCtx(t, straightSrc)
	if ctx.Cap >= ctx.Size {
		t.Skip("no shared colors in this palette")
	}
	bad := ctx.Clone()
	for _, p := range bad.Pieces {
		if p.Var == 0 { // the boundary piece
			p.Color = bad.Size - 1 // a shared-only color
		}
	}
	if err := bad.Validate(); err == nil {
		t.Errorf("crossing piece on shared color not caught")
	}
}

func TestVacateSharedColor(t *testing.T) {
	// Figure 3 thread 1: MaxR=3 but MinR=2, so one shared color can be
	// vacated (with splitting); straightSrc has MinR=MaxR and cannot.
	_, ctx := mkCtx(t, figure3Thread1)
	if ctx.Cap != 1 || ctx.Size != 3 {
		t.Fatalf("palette = (%d,%d), want (1,3)", ctx.Cap, ctx.Size)
	}
	cl := ctx.Clone()
	if err := cl.vacateColor(cl.Size - 1); err != nil {
		t.Fatalf("vacate: %v", err)
	}
	if cl.Size != 2 {
		t.Errorf("size = %d, want 2", cl.Size)
	}
	if err := cl.Validate(); err != nil {
		t.Errorf("after vacate: %v", err)
	}
	if cl.MoveCost() == 0 {
		t.Errorf("vacating below MaxR should have cost moves")
	}
	// Vacating below MinR must fail.
	if err := cl.Clone().vacateColor(1); err == nil {
		t.Errorf("vacate below MinR succeeded")
	}
}

func TestDemoteColor(t *testing.T) {
	// Two boundary values forced into two private colors; demoting one
	// must split or recolor the crossing pieces, not shrink the palette.
	src := `
func d
entry:
	set v0, 1
	set v1, 2
	ctx
	add v2, v0, v1
	store [0], v2
	halt
`
	_, ctx := mkCtx(t, src)
	if ctx.Cap != 2 {
		t.Fatalf("cap = %d, want 2 (two values cross the ctx)", ctx.Cap)
	}
	cl := ctx.Clone()
	err := cl.demoteColor(0)
	// With MinPR=2 this must fail: both crossers need private colors.
	if err == nil {
		if vErr := cl.Validate(); vErr != nil {
			t.Errorf("demote produced invalid context: %v", vErr)
		} else {
			t.Errorf("demote below RegPCSBmax unexpectedly succeeded")
		}
	}
	// Demoting on the roomy example works.
	_, ctx2 := mkCtx(t, straightSrc)
	cl2 := ctx2.Clone()
	if ctx2.Cap == 1 {
		if err := cl2.demoteColor(0); err == nil {
			t.Errorf("demote to cap 0 with a crossing value should fail")
		}
	}
}

func TestCoalesceMergesSplits(t *testing.T) {
	// Split a piece artificially, then coalesce must merge it back
	// (same color, same variable).
	_, ctx := mkCtx(t, straightSrc)
	var target *Piece
	for _, p := range ctx.Pieces {
		if p.Var == 0 {
			target = p
		}
	}
	pts := target.Points.Elems(nil)
	if len(pts) < 2 {
		t.Skip("piece too small to split")
	}
	// Move the last point into a new piece with the same color.
	last := pts[len(pts)-1]
	target.Points.Remove(last)
	ctx.addPiece(&Piece{Var: 0, Color: target.Color, Points: bitsetWith(ctx.np, last)})
	before := len(ctx.Pieces)
	ctx.coalesce()
	if len(ctx.Pieces) != before-1 {
		t.Errorf("coalesce did not merge same-color fragments: %d -> %d", before, len(ctx.Pieces))
	}
	if err := ctx.Validate(); err != nil {
		t.Errorf("after coalesce: %v", err)
	}
	if ctx.MoveCost() != 0 {
		t.Errorf("merged context still costs %d moves", ctx.MoveCost())
	}
}

func TestMoveCostCountsEdges(t *testing.T) {
	// Split v0 across the ctx boundary onto two different colors: the
	// value is live along exactly one edge there, so cost is 1 — but a
	// crossing piece may not leave the private prefix, so instead split
	// an internal value across a straight-line edge.
	src := `
func m
entry:
	set v0, 1
	addi v1, v0, 1
	addi v2, v0, 2
	add v3, v1, v2
	store [0], v3
	halt
`
	a, ctx := mkCtx(t, src)
	_ = a
	var v0p *Piece
	for _, p := range ctx.Pieces {
		if p.Var == 0 {
			v0p = p
		}
	}
	pts := v0p.Points.Elems(nil)
	if len(pts) < 2 {
		t.Fatalf("v0 live range too small")
	}
	last := pts[len(pts)-1]
	v0p.Points.Remove(last)
	// New piece on a different, free color.
	free := -1
	for c := 0; c < ctx.Size; c++ {
		used := false
		for _, p := range ctx.Pieces {
			if p.Color == c && p.Points.Has(last) {
				used = true
			}
		}
		if c != v0p.Color && !used {
			free = c
			break
		}
	}
	if free < 0 {
		t.Skip("no free color at the split point")
	}
	ctx.addPiece(&Piece{Var: 0, Color: free, Points: bitsetWith(ctx.np, last)})
	if err := ctx.Validate(); err != nil {
		t.Fatalf("split context invalid: %v", err)
	}
	if got := ctx.MoveCost(); got != 1 {
		t.Errorf("MoveCost = %d, want 1", got)
	}
}
