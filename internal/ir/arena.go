package ir

// Arena is a bump allocator for IR construction. A builder that emits
// many small Blocks and Instr slices (the rewriter emits one slice per
// block plus trampolines) allocates them out of a handful of large
// chunks instead of one heap object each; dropping the Arena (and
// everything built from it) releases the chunks wholesale, so a
// request-scoped construction costs the garbage collector a few slabs
// rather than thousands of nodes.
//
// An Arena never reuses memory: chunks are append-only and handed-out
// slices stay valid for the life of the objects built from them. It is
// not safe for concurrent use; each request (or engine invocation)
// owns its own.
//
// Cached bodies must NOT be arena-backed — a cache entry would pin its
// whole request's slab. The rewrite path only routes through an Arena
// when no rewrite cache is configured.
type Arena struct {
	instrs []Instr // current instruction chunk; len = bump watermark
	blocks []Block // current block chunk; len = bump watermark
}

const (
	arenaInstrChunk = 2048
	arenaBlockChunk = 128
)

// InstrSlice returns a zero-length instruction slice with the given
// capacity, carved from the current chunk. Appending past the capacity
// falls back to the ordinary heap via append's reallocation, so an
// under-estimated capacity degrades gracefully instead of corrupting a
// neighbor.
func (a *Arena) InstrSlice(capacity int) []Instr {
	if capacity > cap(a.instrs)-len(a.instrs) {
		n := arenaInstrChunk
		if capacity > n {
			n = capacity
		}
		a.instrs = make([]Instr, 0, n)
	}
	l := len(a.instrs)
	a.instrs = a.instrs[:l+capacity]
	return a.instrs[l:l:l+capacity]
}

// Block returns a zeroed *Block carved from the current chunk. Earlier
// pointers stay valid: when a chunk fills, a fresh one is started and
// the old chunk stays pinned by the pointers already handed out.
func (a *Arena) Block() *Block {
	if len(a.blocks) == cap(a.blocks) {
		a.blocks = make([]Block, 0, arenaBlockChunk)
	}
	a.blocks = a.blocks[:len(a.blocks)+1]
	return &a.blocks[len(a.blocks)-1]
}
