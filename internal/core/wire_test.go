package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"npra/internal/ir"
)

const wireTestAsm = `
func t0
entry:
	set v0, 1
	set v1, 2
	add v2, v0, v1
	store [0], v2
	halt
`

func wireProgenReq(seed int64, nreg int) *WireRequest {
	return &WireRequest{
		NReg:    nreg,
		Threads: []WireThread{{Progen: &WireProgen{Seed: seed}}},
	}
}

func TestWireRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  WireRequest
		ok   bool
	}{
		{"progen ok", *wireProgenReq(1, 32), true},
		{"asm ok", WireRequest{NReg: 32, Threads: []WireThread{{Asm: wireTestAsm}}}, true},
		{"sra ok", WireRequest{Mode: "sra", NReg: 32, NThd: 4, Threads: []WireThread{{Asm: wireTestAsm}}}, true},
		{"bad mode", WireRequest{Mode: "xyz", NReg: 32, Threads: []WireThread{{Asm: wireTestAsm}}}, false},
		{"nreg zero", WireRequest{Threads: []WireThread{{Asm: wireTestAsm}}}, false},
		{"nreg huge", WireRequest{NReg: WireMaxNReg + 1, Threads: []WireThread{{Asm: wireTestAsm}}}, false},
		{"no threads", WireRequest{NReg: 32}, false},
		{"too many threads", WireRequest{NReg: 32, Threads: make([]WireThread, WireMaxThreads+1)}, false},
		{"sra no nthd", WireRequest{Mode: "sra", NReg: 32, Threads: []WireThread{{Asm: wireTestAsm}}}, false},
		{"sra two bodies", WireRequest{Mode: "sra", NReg: 32, NThd: 2, Threads: []WireThread{{Asm: wireTestAsm}, {Asm: wireTestAsm}}}, false},
		{"ara with nthd", WireRequest{NReg: 32, NThd: 2, Threads: []WireThread{{Asm: wireTestAsm}}}, false},
		{"both asm and progen", WireRequest{NReg: 32, Threads: []WireThread{{Asm: wireTestAsm, Progen: &WireProgen{}}}}, false},
		{"neither asm nor progen", WireRequest{NReg: 32, Threads: []WireThread{{}}}, false},
		{"negative timeout", WireRequest{NReg: 32, TimeoutMS: -1, Threads: []WireThread{{Asm: wireTestAsm}}}, false},
		{"negative workers", WireRequest{NReg: 32, Workers: -1, Threads: []WireThread{{Asm: wireTestAsm}}}, false},
		{"progen depth out of range", WireRequest{NReg: 32, Threads: []WireThread{{Progen: &WireProgen{MaxDepth: WireMaxDepth + 1}}}}, true}, // shape checked by Funcs, not Validate
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate accepted an invalid request")
				}
				if !errors.Is(err, ErrInvalid) {
					t.Fatalf("error %v does not wrap ErrInvalid", err)
				}
			}
		})
	}
}

func TestWireFuncsErrorsWrapInvalid(t *testing.T) {
	bad := []WireRequest{
		{NReg: 32, Threads: []WireThread{{Asm: "func x\nentry:\n\tbogus v0\n"}}},
		{NReg: 32, Threads: []WireThread{{Progen: &WireProgen{MaxDepth: 99}}}},
		{NReg: 32, Threads: []WireThread{{Progen: &WireProgen{MaxVars: 1}}}},
		{NReg: 32, Threads: []WireThread{{Progen: &WireProgen{CSBDensity: 1.5}}}},
		{NReg: 32, Threads: []WireThread{{Progen: &WireProgen{StoreWindow: 2}}}},
		{NReg: 32, Threads: []WireThread{{Progen: &WireProgen{StoreBase: -1}}}},
		{NReg: 32, Threads: []WireThread{{Progen: &WireProgen{Shape: "zigzag"}}}},
	}
	for i, req := range bad {
		if _, err := req.Funcs(); err == nil {
			t.Errorf("case %d: Funcs accepted an invalid request", i)
		} else if !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: error %v does not wrap ErrInvalid", i, err)
		}
	}
}

func TestWireFuncsMaterializes(t *testing.T) {
	req := &WireRequest{
		NReg: 32,
		Threads: []WireThread{
			{Name: "rx", Asm: wireTestAsm},
			{Progen: &WireProgen{Seed: 7}},
		},
	}
	funcs, err := req.Funcs()
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(funcs))
	}
	if funcs[0].Name != "rx" {
		t.Errorf("thread 0 name = %q, want rx (request override)", funcs[0].Name)
	}
	if funcs[1].Name != "progen7" {
		t.Errorf("thread 1 name = %q, want progen7 (seed default)", funcs[1].Name)
	}
}

// Adversarial shape specs materialize through the wire, produce bodies
// distinct from the default generator over the same seed, and keep the
// shape in the compiled-body cache key so cached bodies cannot alias.
func TestWireProgenShapes(t *testing.T) {
	keys := make(map[string]string)
	var plain string
	for _, shape := range []string{"", "trampoline", "boundary", "palette", "nearcollision"} {
		th := WireThread{Progen: &WireProgen{Seed: 7, Shape: shape}}
		req := &WireRequest{NReg: 32, Threads: []WireThread{th}}
		funcs, err := req.Funcs()
		if err != nil {
			t.Fatalf("shape %q: %v", shape, err)
		}
		body := funcs[0].Format()
		if shape == "" {
			plain = body
		} else if body == plain {
			t.Errorf("shape %q generated the same body as the default generator", shape)
		}
		key, _ := th.bodySpec(0)
		if prev, dup := keys[key]; dup {
			t.Errorf("shapes %q and %q share cache key %q", shape, prev, key)
		}
		keys[key] = shape
	}
}

func TestWireCanonicalKey(t *testing.T) {
	key := func(req *WireRequest) string {
		t.Helper()
		funcs, err := req.Funcs()
		if err != nil {
			t.Fatal(err)
		}
		return req.CanonicalKey(funcs)
	}

	base := key(wireProgenReq(42, 64))

	// Stable across materializations.
	if again := key(wireProgenReq(42, 64)); again != base {
		t.Errorf("key not stable: %s vs %s", base, again)
	}

	// Workers, timeout and dump are excluded from the key.
	tuned := wireProgenReq(42, 64)
	tuned.Workers = 7
	tuned.TimeoutMS = 1234
	tuned.Dump = true
	if k := key(tuned); k != base {
		t.Errorf("workers/timeout/dump changed the key: %s vs %s", base, k)
	}

	// Mode "" and "ara" canonicalize identically.
	ara := wireProgenReq(42, 64)
	ara.Mode = "ara"
	if k := key(ara); k != base {
		t.Errorf("mode \"\" and \"ara\" disagree: %s vs %s", base, k)
	}

	// Result-determining fields each change the key.
	if k := key(wireProgenReq(43, 64)); k == base {
		t.Error("different seed produced the same key")
	}
	if k := key(wireProgenReq(42, 32)); k == base {
		t.Error("different nreg produced the same key")
	}
	sra := &WireRequest{Mode: "sra", NReg: 64, NThd: 4,
		Threads: []WireThread{{Progen: &WireProgen{Seed: 42}}}}
	sra8 := &WireRequest{Mode: "sra", NReg: 64, NThd: 8,
		Threads: []WireThread{{Progen: &WireProgen{Seed: 42}}}}
	if key(sra) == base {
		t.Error("sra and ara share a key")
	}
	if key(sra) == key(sra8) {
		t.Error("different nthd produced the same key")
	}

	// An asm request whose source assembles to the same function as a
	// progen spec shares its key: canonicalization hashes materialized
	// bodies, not the request spelling.
	pg := wireProgenReq(42, 64)
	pgFuncs, err := pg.Funcs()
	if err != nil {
		t.Fatal(err)
	}
	asm := &WireRequest{NReg: 64, Threads: []WireThread{{Name: pgFuncs[0].Name, Asm: pgFuncs[0].Format()}}}
	if k := key(asm); k != base {
		t.Errorf("asm spelling of the same body hashed differently: %s vs %s", base, k)
	}
}

func TestAllocationWireRoundTrip(t *testing.T) {
	req := &WireRequest{
		NReg: 48,
		Threads: []WireThread{
			{Progen: &WireProgen{Seed: 11}},
			{Progen: &WireProgen{Seed: 12}},
		},
	}
	funcs, err := req.Funcs()
	if err != nil {
		t.Fatal(err)
	}
	al, err := AllocateARA(funcs, Config{NReg: req.NReg})
	if err != nil {
		t.Fatal(err)
	}
	resp := al.Wire(true)
	if resp.NReg != al.NReg || resp.SGR != al.SGR || resp.TotalRegisters != al.TotalRegisters() {
		t.Errorf("summary fields differ: wire (%d,%d,%d) vs alloc (%d,%d,%d)",
			resp.NReg, resp.SGR, resp.TotalRegisters, al.NReg, al.SGR, al.TotalRegisters())
	}
	if len(resp.Threads) != len(al.Threads) {
		t.Fatalf("got %d wire threads, want %d", len(resp.Threads), len(al.Threads))
	}
	for i, wt := range resp.Threads {
		ta := al.Threads[i]
		if wt.PR != ta.PR || wt.SR != ta.SR || wt.Cost != ta.Cost || wt.PrivBase != ta.PrivBase {
			t.Errorf("thread %d: wire (%d,%d,%d,%d) vs alloc (%d,%d,%d,%d)",
				i, wt.PR, wt.SR, wt.Cost, wt.PrivBase, ta.PR, ta.SR, ta.Cost, ta.PrivBase)
		}
		if wt.Asm == "" {
			t.Errorf("thread %d: dump requested but asm empty", i)
		}
		parsed, err := ir.Parse(wt.Asm)
		if err != nil {
			t.Fatalf("thread %d: dumped asm does not re-parse: %v", i, err)
		}
		if !parsed.Physical {
			t.Errorf("thread %d: dumped asm is not in physical (rN) form", i)
		}
	}

	// The response must survive a JSON round trip unchanged.
	blob, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back WireResponse
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", *resp) {
		t.Error("WireResponse did not survive a JSON round trip")
	}

	// Without dump, no assembly leaves the engine.
	if lean := al.Wire(false); lean.Threads[0].Asm != "" {
		t.Error("asm present without dump")
	}
}

func TestErrorKind(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{invalidf("x"), "invalid"},
		{infeasiblef("x"), "infeasible"},
		{fmt.Errorf("wrapped: %w", ErrTimeout), "timeout"},
		{internalf("x"), "internal"},
		{errors.New("untyped"), "internal"},
	}
	for _, tc := range cases {
		if got := ErrorKind(tc.err); got != tc.want {
			t.Errorf("ErrorKind(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
