package anz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFromSrc parses a single function body and builds its CFG.
func buildFromSrc(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fset
}

// golden asserts the Dump of the body's CFG. The goldens pin the
// successor sets of the corner constructs the concurrency analyzers
// depend on; a builder change that alters an edge must update the
// golden deliberately.
func golden(t *testing.T, body, want string) {
	t.Helper()
	g, fset := buildFromSrc(t, body)
	got := strings.TrimSpace(g.Dump(fset))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG mismatch for:\n%s\ngot:\n%s\nwant:\n%s", body, got, want)
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	// A defer inside a loop body still registers in CFG.Defers (it runs
	// at function exit, once per executed defer) and must not create an
	// edge: the loop back edge goes to the head, and the only path to
	// exit is the loop condition going false.
	g, _ := buildFromSrc(t, `
for i := 0; i < 3; i++ {
	defer release(i)
}
done()`)
	if len(g.Defers) != 1 {
		t.Fatalf("defer in loop: got %d defers, want 1", len(g.Defers))
	}
	golden(t, `
for i := 0; i < 3; i++ {
	defer release(i)
}
done()`, `
b0 entry {i :=} -> b2
b1 exit -> .
b2 for.head {i<3} -> b3 b4
b3 for.body {defer release} -> b5
b4 for.after {done()} -> b1
b5 for.post {i++} -> b2`)
}

func TestCFGSelectWithDefault(t *testing.T) {
	// With a default case, select cannot block: there is a path through
	// the default straight to the after-block.
	golden(t, `
select {
case v := <-ch:
	use(v)
case out <- 1:
	sent()
default:
	busy()
}
after()`, `
b0 entry -> b4 b5 b6
b1 exit -> .
b2 select.after {after()} -> b1
b4 select.case {v :=} {use()} -> b2
b5 select.case {out<-} {sent()} -> b2
b6 select.default {busy()} -> b2`)
}

func TestCFGSelectWithoutDefault(t *testing.T) {
	// No default: every path runs some case; there must be no edge that
	// bypasses the communication.
	golden(t, `
select {
case <-done:
	return
case v := <-ch:
	use(v)
}
after()`, `
b0 entry -> b4 b5
b1 exit -> .
b2 select.after {after()} -> b1
b4 select.case {<-done} {return} -> b1
b5 select.case {v :=} {use()} -> b2`)
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	// break outer leaves both loops; continue outer targets the outer
	// post-block, skipping the inner loop entirely.
	golden(t, `
outer:
for i := 0; i < n; i++ {
	for j := 0; j < n; j++ {
		if stop(i, j) {
			break outer
		}
		if skip(i, j) {
			continue outer
		}
		work(i, j)
	}
}
end()`, `
b0 entry {i :=} -> b2
b1 exit -> .
b2 for.head {i<n} -> b3 b4
b3 for.body {j :=} -> b7
b4 for.after {end()} -> b1
b5 for.post {i++} -> b2
b7 for.head {j<n} -> b8 b9
b8 for.body {stop()} -> b12 b13
b9 for.after -> b5
b10 for.post {j++} -> b7
b12 then {*ast.BranchStmt} -> b4
b13 if.after {skip()} -> b16 b17
b16 then {*ast.BranchStmt} -> b5
b17 if.after {work()} -> b10`)
}

func TestCFGShortCircuitAnd(t *testing.T) {
	// a && b: b is evaluated only when a is true, so the entry branches
	// to the rhs block or straight to if.after; the then-branch is
	// reachable only through the rhs.
	golden(t, `
if a() && b() {
	both()
}
after()`, `
b0 entry {a()} -> b3 b4
b1 exit -> .
b2 then {both()} -> b3
b3 if.after {after()} -> b1
b4 cond.rhs {b()} -> b2 b3`)
}

func TestCFGShortCircuitOr(t *testing.T) {
	// a || b: a true goes straight to then; only a false evaluates the
	// rhs, which branches to then or if.after.
	golden(t, `
if a() || b() {
	either()
}
after()`, `
b0 entry {a()} -> b2 b4
b1 exit -> .
b2 then {either()} -> b3
b3 if.after {after()} -> b1
b4 cond.rhs {b()} -> b2 b3`)
}

func TestCFGGuardThenLock(t *testing.T) {
	// The solver-regression shape: an early-return guard whose
	// entry-block transfer is a no-op must still propagate into the
	// locked region (see TestSolveIdentityEntryPropagates).
	golden(t, `
if !ready {
	return
}
mu.Lock()
mu.Unlock()`, `
b0 entry {ready} -> b2 b3
b1 exit -> .
b2 then {return} -> b1
b3 if.after {mu.Lock()} {mu.Unlock()} -> b1`)
}

func TestCFGRangeLoopHasExitEdge(t *testing.T) {
	// Range loops exit on exhaustion/close: the after-block must be a
	// successor of the head even with no break in the body.
	g, _ := buildFromSrc(t, `
for v := range ch {
	use(v)
}`)
	if !g.ExitReachable() {
		t.Fatal("range loop: exit must be reachable via exhaustion")
	}
}

func TestCFGBareLoopNoExit(t *testing.T) {
	g, _ := buildFromSrc(t, `
for {
	spin()
}`)
	if g.ExitReachable() {
		t.Fatal("for{}: exit must not be reachable")
	}
}

func TestCFGPanicIsExit(t *testing.T) {
	// panic terminates the function: code after it is unreachable, but
	// the exit stays reachable through the panic edge.
	g, _ := buildFromSrc(t, `
panic("boom")`)
	if !g.ExitReachable() {
		t.Fatal("panic: exit must be reachable")
	}
}
