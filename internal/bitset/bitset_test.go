package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 65, 129} {
		if s.Has(i) {
			t.Errorf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("Add(%d) lost", i)
		}
	}
	if got := s.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Errorf("Remove failed: count=%d", s.Count())
	}
	var got []int
	got = s.Elems(got)
	want := []int{0, 63, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	s.Clear()
	if !s.Empty() {
		t.Errorf("Clear left elements")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(200)
	b := New(200)
	a.Add(1)
	a.Add(100)
	b.Add(100)
	b.Add(150)

	if !a.Intersects(b) {
		t.Errorf("Intersects = false")
	}
	if got := a.IntersectCount(b); got != 1 {
		t.Errorf("IntersectCount = %d, want 1", got)
	}

	u := a.Clone()
	if changed := u.Or(b); !changed {
		t.Errorf("Or reported unchanged")
	}
	if u.Count() != 3 {
		t.Errorf("union count = %d, want 3", u.Count())
	}
	if changed := u.Or(b); changed {
		t.Errorf("idempotent Or reported change")
	}

	d := u.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Errorf("AndNot wrong: %v", d.Elems(nil))
	}

	i := u.Clone()
	i.And(a)
	if !i.Equal(a) {
		t.Errorf("And wrong")
	}
}

// Property: Set behaves like a map[int]bool under random operations.
func TestQuickAgainstMap(t *testing.T) {
	const n = 300
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		m := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Has(i) != m[i] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		ok := true
		s.ForEach(func(i int) {
			if !m[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity |a ∪ b| = |a| + |b| - |a ∩ b|.
func TestQuickCounts(t *testing.T) {
	const n = 256
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		for i := 0; i < 100; i++ {
			a.Add(rng.Intn(n))
			b.Add(rng.Intn(n))
		}
		u := a.Clone()
		u.Or(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: NextSet iteration visits exactly the elements ForEach visits,
// in the same ascending order, for random sets and the edge shapes the
// hot loops rely on (empty, full, single bits straddling word borders).
func TestQuickNextSetMatchesForEach(t *testing.T) {
	check := func(t *testing.T, s Set) {
		t.Helper()
		var want []int
		s.ForEach(func(i int) { want = append(want, i) })
		var got []int
		for v := s.NextSet(0); v >= 0; v = s.NextSet(v + 1) {
			got = append(got, v)
		}
		if len(got) != len(want) {
			t.Fatalf("NextSet visited %d elems, ForEach %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("elem %d: NextSet %d, ForEach %d", i, got[i], want[i])
			}
		}
		elems := s.Elems(nil)
		if len(elems) != len(want) {
			t.Fatalf("Elems returned %d elems, ForEach %d", len(elems), len(want))
		}
		for i := range elems {
			if elems[i] != want[i] {
				t.Fatalf("elem %d: Elems %d, ForEach %d", i, elems[i], want[i])
			}
		}
		// Probing from every offset must return the next element >= offset.
		n := len(s) * 64
		wi := 0
		for off := 0; off <= n; off++ {
			for wi < len(want) && want[wi] < off {
				wi++
			}
			want1 := -1
			if wi < len(want) {
				want1 = want[wi]
			}
			if got1 := s.NextSet(off); got1 != want1 {
				t.Fatalf("NextSet(%d) = %d, want %d", off, got1, want1)
			}
		}
	}

	for _, n := range []int{1, 63, 64, 65, 130, 200} {
		s := New(n)
		t.Run("empty", func(t *testing.T) { check(t, s) })
		full := New(n)
		for i := 0; i < n; i++ {
			full.Add(i)
		}
		t.Run("full", func(t *testing.T) { check(t, full) })
		for _, bit := range []int{0, 62, 63, 64, 65, n - 1} {
			if bit < 0 || bit >= n {
				continue
			}
			one := New(n)
			one.Add(bit)
			check(t, one)
		}
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		for i := 0; i < rng.Intn(2*n); i++ {
			s.Add(rng.Intn(n))
		}
		var want []int
		s.ForEach(func(i int) { want = append(want, i) })
		j := 0
		for v := s.NextSet(0); v >= 0; v = s.NextSet(v + 1) {
			if j >= len(want) || want[j] != v {
				return false
			}
			j++
		}
		return j == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the fused counting kernels agree with materializing the set
// operation and counting.
func TestQuickFusedCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < rng.Intn(2*n); i++ {
			a.Add(rng.Intn(n))
		}
		for i := 0; i < rng.Intn(2*n); i++ {
			b.Add(rng.Intn(n))
		}
		u := a.Clone()
		u.Or(b)
		if a.OrCount(b) != u.Count() {
			return false
		}
		d := a.Clone()
		d.AndNot(b)
		return a.AndNotCount(b) == d.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}

	// Edge shapes: empty vs empty, full vs full, full vs empty.
	for _, n := range []int{1, 64, 65, 192} {
		empty, full := New(n), New(n)
		for i := 0; i < n; i++ {
			full.Add(i)
		}
		if empty.OrCount(empty) != 0 || empty.AndNotCount(empty) != 0 {
			t.Fatalf("n=%d: empty/empty counts wrong", n)
		}
		if full.OrCount(full) != n || full.AndNotCount(full) != 0 {
			t.Fatalf("n=%d: full/full counts wrong", n)
		}
		if full.OrCount(empty) != n || full.AndNotCount(empty) != n {
			t.Fatalf("n=%d: full/empty counts wrong", n)
		}
		if empty.OrCount(full) != n || empty.AndNotCount(full) != 0 {
			t.Fatalf("n=%d: empty/full counts wrong", n)
		}
	}
}
