// Fixture for the ctxplumb analyzer: non-ctx variants must delegate to
// their Ctx twin, and potentially unbounded loops in the solver
// packages (this fixture poses as npra/internal/estimate) must poll
// cancellation or document termination.
package estimate

import (
	"context"

	"npra/internal/parallel"
)

// Solve has a SolveCtx twin but never calls it: the two code paths
// will drift, so it is flagged.
func Solve(n int) int { // want `\.Solve has a SolveCtx variant but does not delegate`
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func SolveCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if parallel.CtxErr(ctx) != nil {
			return total
		}
		total += i
	}
	return total
}

// Run delegates to RunCtx: allowed.
func Run(n int) int { return RunCtx(context.Background(), n) }

func RunCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Repair spins with no cancellation poll: flagged.
func Repair(conflicts []int) int {
	fixed := 0
	for { // want `potentially unbounded loop without a parallel\.CtxErr/ctx\.Err cancellation poll`
		if len(conflicts) == 0 {
			return fixed
		}
		conflicts = conflicts[1:]
		fixed++
	}
}

// PolledRepair polls parallel.CtxErr every iteration: allowed.
func PolledRepair(ctx context.Context, conflicts []int) (int, error) {
	fixed := 0
	for {
		if err := parallel.CtxErr(ctx); err != nil {
			return fixed, err
		}
		if len(conflicts) == 0 {
			return fixed, nil
		}
		conflicts = conflicts[1:]
		fixed++
	}
}

// Drain polls ctx.Err directly: allowed (CtxErr is merely preferred).
func Drain(ctx context.Context, work []int) int {
	done := 0
	for len(work) > 0 {
		if ctx.Err() != nil {
			return done
		}
		work = work[1:]
		done++
	}
	return done
}

// Counted is a classic init;cond;post loop: statically bounded.
func Counted(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// Shrink documents termination instead of polling: allowed.
func Shrink(work []int) int {
	done := 0
	for len(work) > 0 { //lint:invariant the worklist strictly shrinks by one element per iteration
		work = work[1:]
		done++
	}
	return done
}

// DeferredPoll only polls inside a nested function literal, whose
// execution is not guaranteed: still flagged.
func DeferredPoll(ctx context.Context, work []int) int {
	done := 0
	for len(work) > 0 { // want `potentially unbounded loop without a parallel\.CtxErr/ctx\.Err cancellation poll`
		check := func() error { return parallel.CtxErr(ctx) }
		_ = check
		work = work[1:]
		done++
	}
	return done
}
