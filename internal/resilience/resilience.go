// Package resilience is the client-side half of the overload story:
// where internal/serve sheds, hints and fails fast, this package's
// Client turns those signals (and plain network failure) into eventual
// success without amplifying the overload.
//
//   - Retries with capped exponential backoff and deterministic seeded
//     jitter. Only transient outcomes are retried — transport errors,
//     429/5xx, and caller-rejected bodies; 400/422 are the caller's
//     bug and are never retried (the chaos soak gates on exactly that).
//   - A 429/503 Retry-After hint is respected: the wait is the larger
//     of the backoff and the server's hint (capped by RetryAfterCap
//     and always by ctx), so npserve's backlog-derived hint actually
//     spaces the herd out.
//   - Hedging: when an attempt is slower than HedgeAfter, a second
//     identical request races it; the first result wins and cancels
//     the loser. Safe here because the service is idempotent by
//     construction (deterministic allocation + request dedup).
//   - A per-backend circuit breaker (closed → open → half-open with a
//     bounded probe budget) fails fast while a backend is down; the
//     breaker wait is itself retryable, so a call outlives a short
//     outage. State is observable via BreakerFor/Stats — the
//     multi-backend router this package is built for routes on it.
//   - Deadline propagation: each attempt carries the ctx's remaining
//     budget in X-Deadline-Ms, which internal/serve uses to clamp its
//     own per-request deadline — one budget across hops.
//
// Everything is stdlib; wall time stays on the client side of the
// engine boundary (see clock.go).
package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// ErrExhausted is wrapped by Client.Post when the attempt budget ran
// out without a terminal answer; the last transient failure rides in
// the message.
var ErrExhausted = errors.New("resilience: retry budget exhausted")

// Config parameterizes a Client. Zero values take the noted defaults.
type Config struct {
	// Client is the underlying HTTP client (default: plain &http.Client,
	// per-attempt bounds come from ctx and the server's deadline).
	Client *http.Client

	// MaxAttempts bounds retry rounds, the first attempt included
	// (default 4; hedges do not consume rounds).
	MaxAttempts int

	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// between rounds (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// RetryAfterCap bounds how long a server Retry-After hint is
	// honored (default 5s) so a pathological hint cannot park the
	// client; ctx still bounds everything.
	RetryAfterCap time.Duration

	// Seed drives the deterministic jitter PRNG (default 1). Two
	// clients with the same seed and call sequence back off
	// identically — reproducible load tests.
	Seed uint64

	// HedgeAfter launches a second identical attempt when the first is
	// still unanswered after this long; first result wins, loser is
	// cancelled (0 disables hedging).
	HedgeAfter time.Duration

	// MaxHedges bounds extra hedge attempts per round (default 1).
	MaxHedges int

	// Breaker parameterizes the per-backend circuit breakers.
	Breaker BreakerConfig

	// CheckBody, when set, validates a 2xx response body; a non-nil
	// error marks the attempt failed and retryable (the chaos proxy's
	// garbled-body site is caught here).
	CheckBody func(status int, body []byte) error

	// DisableDeadlineHeader turns off X-Deadline-Ms propagation.
	DisableDeadlineHeader bool
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxHedges <= 0 {
		c.MaxHedges = 1
	}
	return c
}

// Stats aggregates a Client's behavior across calls, for reports and
// gates. RetriesByTrigger keys: the decimal status code that triggered
// the retry, "transport", "body" (CheckBody rejection) or "breaker".
type Stats struct {
	Calls            int64
	Attempts         int64 // HTTP requests actually issued (hedges included)
	Hedges           int64
	RetriedCalls     int64 // calls that needed at least one retry round
	Exhausted        int64 // calls that ran out of attempts
	BreakerRejects   int64 // rounds refused by an open breaker
	RetriesByTrigger map[string]int64
}

// Result is one call's terminal outcome.
type Result struct {
	Status int
	Body   []byte
	Header http.Header

	Attempts int  // HTTP requests issued for this call (hedges included)
	Retries  int  // retry rounds taken after the first
	Hedged   bool // at least one hedge was launched
}

// Client is a resilient HTTP client for idempotent JSON POSTs. Safe
// for concurrent use.
type Client struct {
	cfg Config

	mu       sync.Mutex
	rng      uint64
	breakers map[string]*Breaker
	stats    Stats
}

// New returns a Client over cfg.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:      cfg,
		rng:      cfg.Seed,
		breakers: make(map[string]*Breaker),
	}
}

// Stats snapshots the client's aggregate counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.RetriesByTrigger = make(map[string]int64, len(c.stats.RetriesByTrigger))
	for k, v := range c.stats.RetriesByTrigger {
		s.RetriesByTrigger[k] = v
	}
	return s
}

// BreakerFor returns the circuit breaker guarding rawURL's backend
// (scheme://host), creating a closed one if none exists yet.
func (c *Client) BreakerFor(rawURL string) *Breaker {
	return c.breaker(backendKey(rawURL))
}

func backendKey(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return rawURL
	}
	return u.Scheme + "://" + u.Host
}

func (c *Client) breaker(key string) *Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[key]
	if b == nil {
		b = NewBreaker(c.cfg.Breaker)
		c.breakers[key] = b
	}
	return b
}

// nextRand steps the client's splitmix64 state: deterministic for a
// given seed and call sequence, no math/rand.
func (c *Client) nextRand() uint64 {
	c.mu.Lock()
	c.rng += 0x9E3779B97F4A7C15
	z := c.rng
	c.mu.Unlock()
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// backoff returns the jittered wait before retry round n (1-based):
// equal-jitter over a capped exponential — half fixed, half random, so
// waits neither synchronize into herds nor collapse to zero.
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.BaseBackoff << uint(n-1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	frac := float64(c.nextRand()>>11) / float64(1<<53)
	return half + time.Duration(frac*float64(half))
}

// sleepCtx waits d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attemptOutcome is one HTTP attempt's result, pre-classification.
type attemptOutcome struct {
	status     int
	body       []byte
	header     http.Header
	err        error // transport-level failure
	retryAfter time.Duration
}

// retryable reports whether the outcome should be retried and the
// stats key naming the trigger. 400/422 (and every other non-429 4xx)
// are terminal by design: retrying a request the server called invalid
// only doubles the invalid load.
func (c *Client) retryable(out attemptOutcome) (bool, string) {
	switch {
	case out.err != nil:
		return true, "transport"
	case out.status == http.StatusTooManyRequests:
		return true, strconv.Itoa(out.status)
	case out.status >= 500:
		return true, strconv.Itoa(out.status)
	case out.status >= 200 && out.status < 300 && c.cfg.CheckBody != nil:
		if err := c.cfg.CheckBody(out.status, out.body); err != nil {
			return true, "body"
		}
		return false, ""
	default:
		return false, ""
	}
}

// Post issues an idempotent POST with retries, hedging, breaker
// gating and deadline propagation, returning the terminal Result. A
// non-nil error means no terminal answer: the ctx expired, or the
// attempt budget ran out (ErrExhausted) — the last Result (if any)
// is returned alongside for diagnostics.
func (c *Client) Post(ctx context.Context, rawURL, contentType string, body []byte, hdr http.Header) (*Result, error) {
	c.mu.Lock()
	c.stats.Calls++
	c.mu.Unlock()

	br := c.breaker(backendKey(rawURL))
	res := &Result{}
	var last attemptOutcome
	haveLast := false

	for round := 1; round <= c.cfg.MaxAttempts; round++ {
		if round > 1 {
			res.Retries++
			if res.Retries == 1 {
				c.mu.Lock()
				c.stats.RetriedCalls++
				c.mu.Unlock()
			}
		}
		if err := ctx.Err(); err != nil {
			return c.finish(res, haveLast, last, fmt.Errorf("resilience: ctx done before round %d: %w", round, err))
		}

		if err := br.Allow(); err != nil {
			// Breaker open: the round is consumed, but waiting out the
			// backoff may reach the cooldown and earn a probe slot.
			c.countRetry("breaker")
			c.mu.Lock()
			c.stats.BreakerRejects++
			c.mu.Unlock()
			last = attemptOutcome{err: err}
			haveLast = true
			if round == c.cfg.MaxAttempts {
				break
			}
			if serr := sleepCtx(ctx, c.backoff(round)); serr != nil {
				return c.finish(res, haveLast, last, fmt.Errorf("resilience: ctx done while backing off: %w", serr))
			}
			continue
		}

		out := c.attemptHedged(ctx, rawURL, contentType, body, hdr, res)
		br.Report(c.succeeded(out))
		last, haveLast = out, true

		retry, trigger := c.retryable(out)
		if !retry {
			res.Status = out.status
			res.Body = out.body
			res.Header = out.header
			return res, nil
		}
		c.countRetry(trigger)
		if round == c.cfg.MaxAttempts {
			break
		}
		wait := c.backoff(round)
		if out.retryAfter > 0 {
			hint := out.retryAfter
			if hint > c.cfg.RetryAfterCap {
				hint = c.cfg.RetryAfterCap
			}
			if hint > wait {
				wait = hint
			}
		}
		if err := sleepCtx(ctx, wait); err != nil {
			return c.finish(res, haveLast, last, fmt.Errorf("resilience: ctx done while backing off: %w", err))
		}
	}

	c.mu.Lock()
	c.stats.Exhausted++
	c.mu.Unlock()
	return c.finish(res, haveLast, last, c.exhaustedErr(last))
}

// succeeded is the breaker's view of an outcome: a terminal answer
// (2xx, or a non-retryable client error) means the backend is healthy;
// transport failures and 5xx/429 mean it is not.
func (c *Client) succeeded(out attemptOutcome) bool {
	if out.err != nil {
		return false
	}
	return out.status < 500 && out.status != http.StatusTooManyRequests
}

func (c *Client) exhaustedErr(last attemptOutcome) error {
	if last.err != nil {
		return fmt.Errorf("%w: last attempt: %v", ErrExhausted, last.err)
	}
	return fmt.Errorf("%w: last status %d", ErrExhausted, last.status)
}

// finish packages a no-terminal-answer return: the last observed
// status/body ride in the Result for diagnostics.
func (c *Client) finish(res *Result, haveLast bool, last attemptOutcome, err error) (*Result, error) {
	if haveLast && last.err == nil {
		res.Status = last.status
		res.Body = last.body
		res.Header = last.header
	}
	return res, err
}

func (c *Client) countRetry(trigger string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stats.RetriesByTrigger == nil {
		c.stats.RetriesByTrigger = make(map[string]int64)
	}
	c.stats.RetriesByTrigger[trigger]++
}

// attemptHedged runs one retry round: the primary attempt, plus — when
// it is still unanswered after HedgeAfter — up to MaxHedges identical
// hedge attempts racing it. The first finisher wins and cancels the
// rest.
func (c *Client) attemptHedged(ctx context.Context, rawURL, contentType string, body []byte, hdr http.Header, res *Result) attemptOutcome {
	if c.cfg.HedgeAfter <= 0 {
		res.Attempts++
		c.mu.Lock()
		c.stats.Attempts++
		c.mu.Unlock()
		return c.do(ctx, rawURL, contentType, body, hdr)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	outc := make(chan attemptOutcome, 1+c.cfg.MaxHedges)
	launch := func() {
		res.Attempts++
		c.mu.Lock()
		c.stats.Attempts++
		c.mu.Unlock()
		go func() { outc <- c.do(actx, rawURL, contentType, body, hdr) }()
	}
	launch()
	hedges := 0
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	for {
		select {
		case out := <-outc:
			// First finisher wins — even a failure: hedging cuts tail
			// latency; turning failures into successes is retry's job.
			return out
		case <-timer.C:
			if hedges >= c.cfg.MaxHedges {
				// Budget spent: wait for whichever attempt answers first.
				out := <-outc
				return out
			}
			hedges++
			res.Hedged = true
			c.mu.Lock()
			c.stats.Hedges++
			c.mu.Unlock()
			launch()
			timer.Reset(c.cfg.HedgeAfter)
		case <-ctx.Done():
			return attemptOutcome{err: fmt.Errorf("resilience: %w", ctx.Err())}
		}
	}
}

// do issues one HTTP attempt and reads it fully. Transport errors —
// including a response body cut short of its declared length — land in
// attemptOutcome.err.
func (c *Client) do(ctx context.Context, rawURL, contentType string, body []byte, hdr http.Header) attemptOutcome {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rawURL, bytes.NewReader(body))
	if err != nil {
		return attemptOutcome{err: err}
	}
	req.Header.Set("Content-Type", contentType)
	for k, vs := range hdr { //lint:ignore detlint HTTP header write order is not observable to the server
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if !c.cfg.DisableDeadlineHeader {
		if deadline, ok := ctx.Deadline(); ok {
			if remaining := time.Until(deadline); remaining > 0 {
				req.Header.Set("X-Deadline-Ms", strconv.FormatInt(remaining.Milliseconds()+1, 10))
			}
		}
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return attemptOutcome{err: err}
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return attemptOutcome{err: fmt.Errorf("resilience: reading response body: %w", err)}
	}
	out := attemptOutcome{status: resp.StatusCode, body: blob, header: resp.Header}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			out.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return out
}
