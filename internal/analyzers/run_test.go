package analyzers

import (
	"reflect"
	"sort"
	"testing"

	"npra/internal/analyzers/anz"
)

// loadShared loads a mixed set of fixture packages ONCE; both tests
// below run the full suite over the same loaded set, which is exactly
// how cmd/npravet drives it: one parse+type-check, eleven analyzers.
func loadShared(t *testing.T) []*anz.Package {
	t.Helper()
	cfg := &anz.LoadConfig{FixtureDir: fixtureDir(t)}
	pkgs, err := cfg.Load("npra/internal/lockfix", "leakfix", "atomfix", "detlint")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	return pkgs
}

// TestRunParallelDeterministic: the analyzers run one-goroutine-each
// over the shared package set; repeated runs must produce bit-identical
// diagnostics (order included), or CI diffs would flap.
func TestRunParallelDeterministic(t *testing.T) {
	pkgs := loadShared(t)
	suite := Suite()
	base, err := anz.Run(pkgs, suite)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(base) == 0 {
		t.Fatal("fixture set should produce diagnostics; the determinism check is vacuous")
	}
	for i := 0; i < 10; i++ {
		again, err := anz.Run(pkgs, suite)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !reflect.DeepEqual(base, again) {
			t.Fatalf("run %d diverged from first run:\nfirst: %v\nagain: %v", i, base, again)
		}
	}
}

// TestRunSharedLoadMatchesSerial: the concurrent merged output equals
// the union of one-analyzer-at-a-time runs over the same loaded
// packages — the parallelism is an execution detail, not a semantic
// one. Directive-verification findings are excluded: whether an ignore
// directive is "unused" legitimately depends on which analyzers ran.
func TestRunSharedLoadMatchesSerial(t *testing.T) {
	pkgs := loadShared(t)
	full, err := anz.Run(pkgs, Suite())
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	var merged []anz.Diagnostic
	for _, a := range Suite() {
		one, err := anz.Run(pkgs, []*anz.Analyzer{a})
		if err != nil {
			t.Fatalf("solo %s: %v", a.Name, err)
		}
		merged = append(merged, dropDirectiveFindings(one)...)
	}
	sortDiags(merged)
	got := dropDirectiveFindings(full)
	if !reflect.DeepEqual(got, merged) {
		t.Fatalf("parallel run diverges from serial union:\nparallel: %v\nserial:   %v", got, merged)
	}
}

func dropDirectiveFindings(ds []anz.Diagnostic) []anz.Diagnostic {
	out := make([]anz.Diagnostic, 0, len(ds))
	for _, d := range ds {
		if d.Analyzer == anz.DirectiveAnalyzer {
			continue
		}
		out = append(out, d)
	}
	return out
}

// sortDiags mirrors anz.Run's output ordering.
func sortDiags(ds []anz.Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
