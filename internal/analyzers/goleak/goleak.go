// Package goleak hunts the goroutine-leak bug classes the serving tier
// lives with (PRs 5–8: singleflight waiters, batch collectors, hedged
// requests, chaos-proxy pumps). Two rules, both over the anz CFG:
//
//  1. Non-terminating goroutine bodies. For every `go func(){...}`
//     the literal's CFG must be able to reach its exit: a `for {}`
//     with no reachable return/break, or a loop whose only waits can
//     never be satisfied, keeps the goroutine alive for the process
//     lifetime — under churn that is an unbounded leak. Returns,
//     breaks out of the loop, `for range ch` (terminates on channel
//     close), and select cases that return all count as termination;
//     a loop that cannot exit does not, even if it receives on
//     ctx.Done() without acting on it. `go m()` spawns of named
//     functions are checked against the one-level summary (its own
//     CFG's exit reachability), cross-package via the run state.
//
//  2. Blocking sends no receiver is guaranteed to drain. The classic
//     leak: a worker sends its result on an unbuffered channel while
//     the parent receives in a select that can take another case
//     (ctx.Done, a timeout) and return — the worker then blocks on
//     the send forever. Reported when an unbuffered make(chan) local
//     is sent to from inside a spawned goroutine (outside any select
//     with an escape case) and every parent receive sits in a
//     multi-case select. The fix is a 1-buffered channel, exactly the
//     hedging discipline internal/resilience uses.
//
// Process-lifetime goroutines that are *meant* to run forever carry a
// //lint:ignore goleak justification naming the lifetime owner.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"npra/internal/analyzers/anz"
)

// Analyzer is the goleak pass.
var Analyzer = &anz.Analyzer{
	Name: "goleak",
	Doc: "flags goroutines whose CFG cannot reach termination (no return/ctx-gated exit/" +
		"channel-close path) and blocking sends on unbuffered channels whose receiver may abandon them",
	Run:         run,
	NewRunState: func() any { return newState() },
	Finish:      finish,
}

type state struct {
	// terminates records, for every function declaration seen, whether
	// its CFG can reach the exit — the one-level summary for `go m()`
	// spawns of named functions.
	terminates map[types.Object]bool

	// spawns of named functions, resolved in Finish once every
	// package's declarations are in.
	spawns []namedSpawn
}

type namedSpawn struct {
	callee types.Object
	name   string
	pos    token.Position
}

func newState() *state {
	return &state{terminates: make(map[types.Object]bool)}
}

func run(pass *anz.Pass) error {
	st := pass.RunState().(*state)

	// Record exit reachability for every declared function.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				st.terminates[obj] = anz.BuildCFG(fd.Body).ExitReachable()
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, st, fd)
		}
	}
	return nil
}

func checkFunc(pass *anz.Pass, st *state, fd *ast.FuncDecl) {
	unbuffered := unbufferedChans(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := gs.Call.Fun.(type) {
		case *ast.FuncLit:
			g := anz.BuildCFG(fun.Body)
			if !g.ExitReachable() {
				pass.Reportf(gs.Pos(), "goroutine cannot terminate: no path from its entry reaches a return, a break out of its loop, or loop exhaustion — it outlives every request (leak); gate the loop on ctx.Done() or a closable channel")
			}
			if len(unbuffered) > 0 {
				checkBlockingSends(pass, fd, gs, fun, unbuffered)
			}
		case *ast.Ident, *ast.SelectorExpr:
			if obj := anz.CalleeObject(pass, gs.Call); obj != nil {
				st.spawns = append(st.spawns, namedSpawn{
					callee: obj,
					name:   obj.Name(),
					pos:    pass.Fset.Position(gs.Pos()),
				})
			}
		}
		return true
	})
}

// unbufferedChans finds local variables bound to make(chan T) with no
// or zero capacity, keyed by object.
func unbufferedChans(pass *anz.Pass, fd *ast.FuncDecl) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isMakeUnbufferedChan(pass, call) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					out[obj] = id.Pos()
				}
			}
		}
		return true
	})
	return out
}

func isMakeUnbufferedChan(pass *anz.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if tv, ok := pass.Info.Types[call.Args[0]]; !ok || tv.Type == nil {
		return false
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	// Explicit capacity: unbuffered only when it is the constant 0.
	tv, ok := pass.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// checkBlockingSends flags sends inside the spawned literal on the
// enclosing function's unbuffered channels when (a) the send has no
// escape — it is not inside a select with a default or another case —
// and (b) every receive from that channel in the parent body is inside
// a select with an alternative, so the parent may return without
// draining the send.
func checkBlockingSends(pass *anz.Pass, fd *ast.FuncDecl, gs *ast.GoStmt, lit *ast.FuncLit, unbuffered map[types.Object]token.Pos) {
	// Sends on tracked channels, with their select context.
	type sendSite struct {
		send *ast.SendStmt
		obj  types.Object
	}
	var sends []sendSite
	var visit func(n ast.Node, inEscapeSelect bool)
	visit = func(n ast.Node, inEscapeSelect bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return m == n
			}
			switch m := m.(type) {
			case *ast.SelectStmt:
				escape := len(m.Body.List) > 1 // any alternative case is an escape
				for _, cl := range m.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						if cc.Comm != nil {
							visit(cc.Comm, escape)
						}
						for _, st := range cc.Body {
							visit(st, inEscapeSelect)
						}
					}
				}
				return false
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				if inEscapeSelect {
					return true
				}
				if id, ok := m.Chan.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						if _, tracked := unbuffered[obj]; tracked {
							sends = append(sends, sendSite{send: m, obj: obj})
						}
					}
				}
			}
			return true
		})
	}
	visit(lit.Body, false)
	if len(sends) == 0 {
		return
	}

	// Receives in the parent, outside this goroutine literal.
	// abandonable: every receive sits in a select with an alternative.
	recvs := 0
	abandonable := true
	var scan func(n ast.Node, inEscapeSelect bool)
	scan = func(n ast.Node, inEscapeSelect bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return m == n
			}
			switch m := m.(type) {
			case *ast.GoStmt:
				if m == gs {
					return false
				}
			case *ast.SelectStmt:
				escape := len(m.Body.List) > 1
				for _, cl := range m.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						if cc.Comm != nil {
							scan(cc.Comm, escape)
						}
						for _, st := range cc.Body {
							scan(st, inEscapeSelect)
						}
					}
				}
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					if id, ok := m.X.(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							for _, s := range sends {
								if s.obj == obj {
									recvs++
									if !inEscapeSelect {
										abandonable = false
									}
								}
							}
						}
					}
				}
			case *ast.RangeStmt:
				// for range ch drains until close — a guaranteed receiver.
				if id, ok := m.X.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						for _, s := range sends {
							if s.obj == obj {
								recvs++
								abandonable = false
							}
						}
					}
				}
			}
			return true
		})
	}
	scan(fd.Body, false)

	if recvs == 0 || !abandonable {
		return
	}
	for _, s := range sends {
		pass.Reportf(s.send.Pos(), "blocking send on unbuffered %s: the only receives sit in a select that can take another case and return, leaving this goroutine blocked forever — make the channel 1-buffered so the send always completes", nameOf(s.send.Chan))
	}
}

func nameOf(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "channel"
}

func finish(s any, report func(pos token.Position, format string, args ...any)) error {
	st := s.(*state)
	for _, sp := range st.spawns {
		if term, known := st.terminates[sp.callee]; known && !term {
			report(sp.pos, "goroutine %s cannot terminate: no path through its body reaches a return or loop exit — it outlives every request (leak); gate its loop on ctx.Done() or a closable channel", sp.name)
		}
	}
	return nil
}
