package anz

import (
	"sort"

	"npra/internal/core/errs"
)

// Run executes every analyzer over every package, applies //lint:ignore
// suppression, verifies directives, and returns the surviving
// diagnostics sorted by position.
//
// Unused-directive verification only makes sense when the consuming
// analyzers actually ran, so it is enabled when the set includes
// panicfree (the primary consumer of //lint:invariant); single-analyzer
// runs — anztest fixtures — otherwise still verify well-formedness.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	checkUnused := false
	for _, a := range analyzers {
		if a.Name == "panicfree" {
			checkUnused = true
		}
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg.Fset, pkg.Files)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				dirs:     dirs,
				sink:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, errs.Internalf("analyzers: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
		for _, d := range raw {
			if !dirs.suppressed(d) {
				out = append(out, d)
			}
		}
		out = append(out, dirs.verify(checkUnused)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}
