// Package serve implements npserve: a batched, deduplicating HTTP/JSON
// front end for the balanced register-allocation engine (stdlib only).
//
// The request path composes three layers in front of one engine:
//
//	admission  — a bounded, per-tenant fair queue (weighted deficit
//	             round robin over the X-Tenant header) with priority-
//	             aware shedding: under pressure low-priority work is
//	             refused first, then normal, and only at the hard bound
//	             high — each refusal a 429 whose Retry-After is derived
//	             from the live backlog and observed service rate. An
//	             upstream deadline budget (X-Deadline-Ms) clamps the
//	             per-request context so it survives the hop.
//	dedup      — requests are canonicalized and hashed (core.WireRequest.
//	             CanonicalKey); identical requests share one engine
//	             invocation, whether they overlap in flight
//	             (singleflight) or repeat shortly after one another
//	             (a bounded LRU of completed flights — the serving-layer
//	             analog of the engine's PR-1 Solve memo cache).
//	batching   — a collector goroutine drains the queue into batches of
//	             up to MaxBatch leader jobs and runs each batch as one
//	             engine invocation over the PR-1 worker pool: a lone job
//	             keeps intra-request parallelism (Config.Workers inside
//	             the engine), a full batch switches to inter-request
//	             parallelism (one worker per job). The engine's
//	             determinism contract (bit-identical results at every
//	             worker count) makes the two schedules observably
//	             equivalent, which the wire-level differential tests pin.
//
// The PR-2 failure model is carried end to end: request deadlines map
// to ErrTimeout/HTTP 504, the error taxonomy maps onto HTTP statuses
// (400 invalid, 422 infeasible, 429 overload, 500 internal, 503
// draining, 504 timeout — every non-2xx body is a core.WireError),
// degraded static-partition results are flagged in the response rather
// than hidden, and SIGTERM drains gracefully: in-flight requests
// finish, new ones are refused.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"npra/internal/core"
	"npra/internal/core/errs"
	"npra/internal/faultinject"
	"npra/internal/funccache"
	"npra/internal/ir"
	"npra/internal/parallel"
)

// Config parameterizes a Server. Zero values take the noted defaults.
type Config struct {
	// NReg is the register budget applied to requests that omit nreg
	// (default 128, the IXP1200 file).
	NReg int

	// Workers bounds the engine's worker pool per invocation (0 =
	// GOMAXPROCS). The allocation result is identical for every value.
	Workers int

	// MaxQueue bounds the admission queue (default 64): leader jobs
	// beyond it are refused with 429 + Retry-After.
	MaxQueue int

	// MaxBatch bounds how many queued jobs one engine invocation runs
	// (default 4; 1 disables batching).
	MaxBatch int

	// DefaultTimeout is the per-request deadline when the request does
	// not set timeout_ms (default 10s); MaxTimeout caps what a request
	// may ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// CacheEntries bounds the completed-result LRU (default 256;
	// negative disables result caching, leaving only in-flight dedup).
	CacheEntries int

	// FuncCacheEntries bounds the function-level warm cache (default
	// 256 distinct bodies; negative disables it). Unlike the result LRU
	// above — which only answers byte-identical requests — the function
	// cache reuses analyses and allocator memo tables across *different*
	// requests that embed the same thread bodies.
	FuncCacheEntries int

	// BodyCacheEntries bounds the compiled-body cache (default 1024
	// bodies; negative disables it), which skips re-assembling masm
	// source / re-generating progen specs seen before.
	BodyCacheEntries int

	// RewriteCacheEntries bounds the rewrite-result cache (default 1024
	// bodies, canonical + relocated; negative disables it): the third
	// cache tier, memoizing the engine's rewrite phase by
	// (FuncKey, PR, SR, privBase, sharedBase) so a warm allocation's
	// code emission is a lookup (or a flat register relocation) instead
	// of a re-run of the rewriter.
	RewriteCacheEntries int

	// RawCacheEntries bounds the raw-request cache (default 512
	// requests; negative disables it): byte-identical request bodies
	// skip JSON decoding, body compilation and canonical hashing — the
	// request is keyed by one sha256 pass over the raw bytes.
	RawCacheEntries int

	// RetryAfter is the *floor* of the client backoff hint attached to
	// 429/503 responses (default 1s, rounded up to whole seconds on the
	// wire). The actual hint is derived from the live backlog and the
	// observed per-job service time — see retryAfterHint.
	RetryAfter time.Duration

	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64

	// MaxTenantQueue bounds one tenant's share of the admission queue
	// (default MaxQueue — no isolation until set lower). With N rival
	// tenants, setting this near MaxQueue/N keeps any single tenant
	// from consuming the whole admission budget.
	MaxTenantQueue int

	// TenantWeights assigns DRR weights to tenants (the X-Tenant
	// request header; "default" otherwise). Absent tenants weigh 1.
	// While two tenants both stay backlogged, their completed work
	// converges to the weight ratio.
	TenantWeights map[string]int

	// ShedLowFrac and ShedNormalFrac are the backlog fractions (of
	// MaxQueue) past which low- and normal-priority requests are shed
	// with 429 (defaults 0.5 and 0.85; high priority is refused only at
	// the hard MaxQueue bound). Negative disables that shed tier.
	ShedLowFrac    float64
	ShedNormalFrac float64
}

func (c Config) withDefaults() Config {
	if c.NReg == 0 {
		c.NReg = 128
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.FuncCacheEntries == 0 {
		c.FuncCacheEntries = 256
	}
	if c.FuncCacheEntries < 0 {
		c.FuncCacheEntries = 0
	}
	if c.BodyCacheEntries == 0 {
		c.BodyCacheEntries = 1024
	}
	if c.BodyCacheEntries < 0 {
		c.BodyCacheEntries = 0
	}
	if c.RewriteCacheEntries == 0 {
		c.RewriteCacheEntries = 1024
	}
	if c.RewriteCacheEntries < 0 {
		c.RewriteCacheEntries = 0
	}
	if c.RawCacheEntries == 0 {
		c.RawCacheEntries = 512
	}
	if c.RawCacheEntries < 0 {
		c.RawCacheEntries = 0
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxTenantQueue <= 0 || c.MaxTenantQueue > c.MaxQueue {
		c.MaxTenantQueue = c.MaxQueue
	}
	if c.ShedLowFrac == 0 {
		c.ShedLowFrac = 0.5
	}
	if c.ShedNormalFrac == 0 {
		c.ShedNormalFrac = 0.85
	}
	return c
}

// shedDepth converts a shed fraction into an absolute backlog depth:
// negative fractions disable the tier (refusal only at capacity).
func shedDepth(frac float64, capacity int) int {
	if frac < 0 || frac >= 1 {
		return capacity
	}
	d := int(frac * float64(capacity))
	if d < 1 {
		d = 1
	}
	return d
}

// Response is the transport envelope npserve returns on success: the
// engine's wire response plus serving-layer fields.
type Response struct {
	core.WireResponse

	// Shared marks a response answered by a flight this request did not
	// lead (an in-flight join or a cache hit); Cached narrows that to
	// the completed-result LRU.
	Shared bool `json:"shared"`
	Cached bool `json:"cached"`

	// Batched is the size of the engine batch the result was computed
	// in (1 = unbatched).
	Batched int `json:"batched"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// job is one leader request queued for the engine.
type job struct {
	req      *core.WireRequest
	funcs    []*ir.Func
	tenant   string // admission tenant (X-Tenant header; "default" otherwise)
	priority string // admission class ("", "low", "normal", "high")
	ctx      context.Context // detached from the client connection; carries the request deadline
	cancel   context.CancelFunc
	fl       *flight
}

// Request headers the admission layer reads.
const (
	// TenantHeader names the admission tenant for fair queuing.
	TenantHeader = "X-Tenant"
	// DeadlineHeader carries an upstream caller's remaining deadline
	// budget in milliseconds; it clamps the per-request context so the
	// budget survives the hop (a hop-by-hop deadline, not a timestamp —
	// immune to clock skew between hops).
	DeadlineHeader = "X-Deadline-Ms"

	// defaultTenant is the admission tenant of requests without an
	// X-Tenant header.
	defaultTenant = "default"
	// maxTenantLen bounds the tenant header (metric-label cardinality
	// and memory are keyed by it).
	maxTenantLen = 64
)

// errOverload resolves flights abandoned at admission; it wraps nothing
// from the taxonomy because it maps to its own wire kind ("overload").
var errOverload = errors.New("serve: admission queue full")

// Server is the allocation service. Create with New, expose via
// Handler, stop with Drain (or Close).
type Server struct {
	cfg     Config
	metrics *Metrics

	flightMu sync.Mutex
	fg       *flightGroup

	// fcache, bodies and rewrites are the function-granular layers under
	// the request-granular dedup above: nil when disabled by config.
	fcache   *funccache.Cache
	bodies   *funccache.BodyCache
	rewrites *funccache.RewriteCache

	// raw short-circuits byte-identical request bodies past decoding and
	// canonical hashing; bufPool recycles the request read buffers it
	// (and the decode path) consume.
	raw     *rawCache
	bufPool sync.Pool

	queue *fairQueue

	// admit gates request admission against drain: every in-flight
	// allocation request holds a read lock; Drain sets draining and
	// then takes the write lock, which waits for them to finish.
	admit    sync.RWMutex
	draining atomic.Bool

	closeQueue  sync.Once
	batcherDone chan struct{}

	mux *http.ServeMux
}

// New returns a running Server (its batch collector is started
// immediately). Stop it with Drain or Close.
func New(cfg Config) *Server {
	s := &Server{
		cfg:         cfg.withDefaults(),
		metrics:     newMetrics(),
		batcherDone: make(chan struct{}),
	}
	s.fg = newFlightGroup(s.cfg.CacheEntries)
	if s.cfg.FuncCacheEntries > 0 {
		s.fcache = funccache.New(funccache.Config{Entries: s.cfg.FuncCacheEntries})
	}
	if s.cfg.BodyCacheEntries > 0 {
		s.bodies = funccache.NewBodyCache(s.cfg.BodyCacheEntries)
	}
	if s.cfg.RewriteCacheEntries > 0 {
		rcfg := funccache.RewriteConfig{Entries: s.cfg.RewriteCacheEntries}
		if s.fcache != nil {
			rcfg.KeyFn = s.fcache.FuncKey // share the pointer-keyed Format memo
		}
		s.rewrites = funccache.NewRewriteCache(rcfg)
	}
	if s.cfg.RawCacheEntries > 0 {
		s.raw = newRawCache(s.cfg.RawCacheEntries)
	}
	s.bufPool.New = func() any {
		b := make([]byte, 0, 4096)
		return &b
	}
	s.queue = newFairQueue(
		s.cfg.MaxQueue,
		s.cfg.MaxTenantQueue,
		shedDepth(s.cfg.ShedLowFrac, s.cfg.MaxQueue),
		shedDepth(s.cfg.ShedNormalFrac, s.cfg.MaxQueue),
		s.cfg.TenantWeights,
	)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/allocate", s.handleAllocate)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	go s.batcher()
	return s
}

// Handler returns the service's HTTP handler: POST /allocate, GET
// /metrics, GET /healthz.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns a snapshot of the serving counters.
func (s *Server) Metrics() *Snapshot {
	snap := s.metrics.snapshot(s.queue.depth(), s.queue.tenantDepths(), s.cacheStats())
	snap.RetryAfterS = retryAfterHint(snap.QueueDepth, snap.ServiceEWMA, s.cfg.RetryAfter)
	return snap
}

// cacheStats snapshots the optional cache tiers (zero stats when a tier
// is disabled).
func (s *Server) cacheStats() cacheSnapshots {
	var cs cacheSnapshots
	if s.fcache != nil {
		cs.Func = s.fcache.Stats()
	}
	if s.bodies != nil {
		cs.Body = s.bodies.Stats()
	}
	if s.rewrites != nil {
		cs.Rewrite = s.rewrites.Stats()
	}
	if s.raw != nil {
		cs.Raw = s.raw.stats()
	}
	return cs
}

// Drain gracefully stops the server: new allocation requests are
// refused with 503 immediately, in-flight requests (and their engine
// work) run to completion, then the batch collector exits. Bounded by
// ctx: on expiry the drain keeps finishing in the background but Drain
// returns an ErrTimeout-wrapped error.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.admit.Lock() // waits for every admitted request to finish
		defer s.admit.Unlock()
		s.closeQueue.Do(s.queue.close)
		<-s.batcherDone // the collector drains jobs already queued
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: drain interrupted: %v", errs.ErrTimeout, ctx.Err())
	}
}

// Close is Drain without a deadline.
func (s *Server) Close() error { return s.Drain(context.Background()) }

// Draining reports whether the server has begun (or finished) a drain.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"}, s.retryAfterSeconds())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"}, 0)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.metrics.render(s.queue.depth(), s.queue.tenantDepths(), s.cacheStats()))
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	start := now()
	status, body := s.safeAllocate(r, start)
	s.metrics.observe(status, since(start))
	retry := 0
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		retry = s.retryAfterSeconds()
	}
	writeJSON(w, status, body, retry)
}

// safeAllocate is allocate behind a panic barrier: a panic anywhere in
// the request path (including an injected one at SiteServe) becomes a
// typed 500, never a dropped connection.
func (s *Server) safeAllocate(r *http.Request, start time.Time) (status int, body any) {
	defer func() {
		if rec := recover(); rec != nil {
			status = http.StatusInternalServerError
			body = &core.WireError{Error: fmt.Sprintf("serve: recovered panic: %v", rec), Kind: "internal"}
		}
	}()
	return s.allocate(r, start)
}

func (s *Server) allocate(r *http.Request, start time.Time) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, &core.WireError{Error: "POST required", Kind: "invalid"}
	}
	if s.draining.Load() || !s.admit.TryRLock() {
		s.metrics.drainRefusal()
		return http.StatusServiceUnavailable, &core.WireError{Error: "server is draining", Kind: "draining"}
	}
	defer s.admit.RUnlock()
	if s.draining.Load() { // drain began between the flag check and the lock
		s.metrics.drainRefusal()
		return http.StatusServiceUnavailable, &core.WireError{Error: "server is draining", Kind: "draining"}
	}

	// Read the body once into a pooled buffer: the same raw bytes key
	// the raw-request cache (one sha256 pass) and, on a miss, feed the
	// JSON decoder. A byte-identical repeat skips decoding, body
	// compilation and canonical hashing entirely.
	bufp := s.bufPool.Get().(*[]byte)
	defer s.bufPool.Put(bufp)
	raw, rerr := readAllInto((*bufp)[:0], io.LimitReader(r.Body, s.cfg.MaxBodyBytes))
	*bufp = raw[:0] // keep the grown capacity for the next request
	if rerr != nil {
		return http.StatusBadRequest, &core.WireError{Error: "bad request body: " + rerr.Error(), Kind: "invalid"}
	}

	var req *core.WireRequest
	var funcs []*ir.Func
	var key, rawKey string
	if s.raw != nil {
		rawKey = rawRequestKey(raw)
		if e, ok := s.raw.lookup(rawKey); ok {
			// Cached state is shared read-only: the request is already
			// normalized and must not be written through.
			req, funcs, key = e.req, e.funcs, e.key
		}
	}
	if req == nil {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		decoded := new(core.WireRequest)
		if err := dec.Decode(decoded); err != nil {
			return http.StatusBadRequest, &core.WireError{Error: "bad request body: " + err.Error(), Kind: "invalid"}
		}
		if dec.More() {
			return http.StatusBadRequest, &core.WireError{Error: "trailing data after request object", Kind: "invalid"}
		}
		if decoded.NReg == 0 {
			decoded.NReg = s.cfg.NReg
		}
		req = decoded
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = defaultTenant
	}
	if len(tenant) > maxTenantLen {
		return http.StatusBadRequest, &core.WireError{
			Error: fmt.Sprintf("%s header exceeds %d bytes", TenantHeader, maxTenantLen), Kind: "invalid"}
	}
	if funcs == nil {
		var err error
		funcs, err = req.FuncsCached(s.compiledBodies())
		if err != nil {
			return statusOf(err), &core.WireError{Error: err.Error(), Kind: core.ErrorKind(err)}
		}
	}

	deadline := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxTimeout {
		deadline = s.cfg.MaxTimeout
	}
	// Deadline propagation: an upstream caller's remaining budget
	// (X-Deadline-Ms) clamps the per-request deadline, so a chain of
	// hops shares one budget instead of each hop restarting the clock.
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, perr := strconv.ParseInt(h, 10, 64)
		if perr != nil {
			return http.StatusBadRequest, &core.WireError{
				Error: fmt.Sprintf("bad %s header %q: %v", DeadlineHeader, h, perr), Kind: "invalid"}
		}
		if ms <= 0 {
			return http.StatusGatewayTimeout, &core.WireError{
				Error: "upstream deadline budget already exhausted", Kind: "timeout"}
		}
		if d := time.Duration(ms) * time.Millisecond; d < deadline {
			deadline = d
		}
	}
	hctx, hcancel := context.WithTimeout(r.Context(), deadline)
	defer hcancel()

	if err := faultinject.Fire(hctx, faultinject.SiteServe); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return http.StatusGatewayTimeout, &core.WireError{Error: "request deadline expired: " + err.Error(), Kind: "timeout"}
		}
		return http.StatusInternalServerError, &core.WireError{Error: "serve: " + err.Error(), Kind: "internal"}
	}

	// Key the request off memoized per-function hashes when the function
	// cache is on: body-cache hits hand back stable *ir.Func pointers,
	// so the cache's pointer-keyed memo skips re-Formatting multi-KB
	// bodies on every request. A raw-cache hit arrives with the key
	// already derived.
	if key == "" {
		if s.fcache != nil {
			key = req.CanonicalKeyBy(funcs, s.fcache.FuncKey)
		} else {
			key = req.CanonicalKey(funcs)
		}
		if s.raw != nil {
			// Only fully-validated requests are cached, so errors are
			// never replayed from the raw tier.
			s.raw.store(rawKey, key, req, funcs)
		}
	}
	fl, kind := s.joinOrEnqueue(key, req, funcs, tenant, deadline)
	s.metrics.join(kind)
	if kind == joinLeader || kind == joinInflight {
		s.metrics.tenantAdmitted(tenant)
	}
	if kind != joinCached {
		select {
		case <-fl.done:
		case <-hctx.Done():
			return http.StatusGatewayTimeout, &core.WireError{Error: "request deadline expired while allocating", Kind: "timeout"}
		}
	}
	if fl.err != nil {
		var oe *overloadError
		if errors.As(fl.err, &oe) {
			s.metrics.overloadReason(tenant, oe.reason)
			return http.StatusTooManyRequests, &core.WireError{Error: fl.err.Error(), Kind: "overload"}
		}
		if errors.Is(fl.err, errOverload) {
			s.metrics.overloadReason(tenant, admitQueueFull)
			return http.StatusTooManyRequests, &core.WireError{Error: fl.err.Error(), Kind: "overload"}
		}
		return statusOf(fl.err), &core.WireError{Error: fl.err.Error(), Kind: core.ErrorKind(fl.err)}
	}
	s.metrics.tenantCompleted(tenant)
	resp := &Response{
		WireResponse: *fl.alloc.Wire(req.Dump),
		Shared:       kind != joinLeader,
		Cached:       kind == joinCached,
		Batched:      fl.batched,
		ElapsedMS:    float64(since(start).Nanoseconds()) / 1e6,
	}
	return http.StatusOK, resp
}

// joinOrEnqueue joins the flight for key and, when this request leads
// it, enqueues the engine job — atomically with respect to other
// joiners, so an admission refusal resolves the flight for everyone who
// raced onto it. Admission applies the fair queue's shedding policy:
// per-tenant depth caps and priority-tiered backlog thresholds.
func (s *Server) joinOrEnqueue(key string, req *core.WireRequest, funcs []*ir.Func, tenant string, deadline time.Duration) (*flight, joinKind) {
	s.flightMu.Lock()
	fl, kind := s.fg.join(key)
	if kind != joinLeader {
		s.flightMu.Unlock()
		return fl, kind
	}
	// The job's context is detached from the client connection: waiters
	// other than the leader may still need the result after the leader
	// disconnects. The request deadline still applies.
	jctx, jcancel := context.WithTimeout(context.Background(), deadline)
	j := &job{req: req, funcs: funcs, tenant: tenant, priority: req.Priority,
		ctx: jctx, cancel: jcancel, fl: fl}
	if err := s.queue.push(j); err != nil {
		s.fg.abandon(fl)
		fl.err = err
		s.flightMu.Unlock()
		close(fl.done)
		jcancel()
	} else {
		s.flightMu.Unlock()
	}
	return fl, kind
}

// batcher is the collector goroutine: it pulls the next job in DRR
// order, greedily drains whatever else is immediately queued (up to
// MaxBatch, still in DRR order — so a batch interleaves tenants the
// same way serial draining would), and runs the batch as one engine
// invocation. It exits when the queue is closed and fully drained
// (during Drain, after all admitted requests finish).
func (s *Server) batcher() {
	defer close(s.batcherDone)
	for {
		j, ok := s.queue.pop(true)
		if !ok {
			return
		}
		batch := make([]*job, 1, s.cfg.MaxBatch)
		batch[0] = j
		for len(batch) < s.cfg.MaxBatch {
			j, ok := s.queue.pop(false)
			if !ok {
				break
			}
			batch = append(batch, j)
		}
		s.runBatch(batch)
	}
}

// runBatch executes one engine invocation over the batch. A lone job
// keeps the engine's internal parallelism; a real batch fans out across
// the worker pool with one serial engine per job — bit-identical either
// way, per the engine's determinism contract.
func (s *Server) runBatch(batch []*job) {
	s.metrics.batch(len(batch))
	if len(batch) == 1 {
		s.runJob(batch[0], s.cfg.Workers, 1)
		return
	}
	parallel.ForEach(parallel.Workers(s.cfg.Workers), len(batch), func(i int) {
		s.runJob(batch[i], 1, len(batch))
	})
}

// compiledBodies adapts the optional body cache to the core interface;
// the explicit nil check avoids handing core a typed-nil interface.
func (s *Server) compiledBodies() core.CompiledBodies {
	if s.bodies == nil {
		return nil
	}
	return s.bodies
}

func (s *Server) runJob(j *job, workers, batched int) {
	defer j.cancel()
	jobStart := now()
	cfg := core.Config{NReg: j.req.NReg, Workers: workers}
	if s.fcache != nil {
		cfg.FuncCache = s.fcache
	}
	if s.rewrites != nil {
		cfg.RewriteCache = s.rewrites
	}
	var alloc *core.Allocation
	var err error
	if j.req.Mode == "sra" {
		alloc, err = core.AllocateSRACtx(j.ctx, j.funcs[0], j.req.NThd, cfg)
	} else {
		alloc, err = core.AllocateARACtx(j.ctx, j.funcs, cfg)
	}
	s.metrics.jobDone(since(jobStart))
	if alloc != nil {
		s.metrics.engineResult(alloc.SolveCache, alloc.Phases, alloc.Degraded)
	}
	j.fl.batched = batched
	s.flightMu.Lock()
	s.fg.complete(j.fl, alloc, err)
	s.flightMu.Unlock()
	close(j.fl.done)
}

// statusOf maps a taxonomy error onto its HTTP status (the table in
// docs/INTERNALS.md §10).
func statusOf(err error) int {
	switch {
	case errors.Is(err, core.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrTimeout):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds derives the Retry-After hint from the live backlog:
// the estimated time to drain the current queue at the observed per-job
// service rate, floored by cfg.RetryAfter. A deeper queue tells clients
// to stay away longer — the PR-5 constant told every client to hammer
// back after exactly one second regardless of pressure.
func (s *Server) retryAfterSeconds() int {
	return retryAfterHint(s.queue.depth(), s.metrics.serviceEWMA(), s.cfg.RetryAfter)
}

// retryAfterHint is the pure form of the Retry-After derivation:
// ceil(max(floor, (depth+1) × perJob)) in whole seconds, never below
// 1s (the wire unit). It is monotonically non-decreasing in depth and
// in perJob — the property TestRetryAfterMonotone pins.
func retryAfterHint(depth int, perJob, floor time.Duration) int {
	est := time.Duration(depth+1) * perJob
	if est < floor {
		est = floor
	}
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// readAllInto reads r to EOF into buf (appending from its current
// length), reusing buf's capacity across requests via the caller's
// pool. It is io.ReadAll with a caller-owned buffer.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, body any, retryAfterSeconds int) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
