// Fixture: npra/internal/ir is allowlisted — its parse errors are
// deliberately plain and classified by core.Wrap at the boundary, so
// nothing here is flagged.
package ir

import "errors"

func Parse(src string) error {
	if src == "" {
		return errors.New("ir: empty source")
	}
	return nil
}
