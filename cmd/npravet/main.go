// Command npravet is the multichecker driver for the repository's
// invariant analyzers (internal/analyzers): detlint, errtaxonomy,
// panicfree, ctxplumb, poolalias, cachealias, sleeplint, frozenfunc,
// plus verification of the //lint:ignore / //lint:invariant directives
// themselves.
//
// Usage:
//
//	npravet [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. npravet
// analyzes non-test sources (test files are exempt from every invariant
// by design). Exit status is 1 when any diagnostic survives
// suppression, 2 on operational failure.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"npra/internal/analyzers"
	"npra/internal/analyzers/anz"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: npravet [-list] [packages]\n\nEnforces the allocator's invariants statically; see docs/INTERNALS.md.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analyzers.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	modDir, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "npravet:", err)
		os.Exit(2)
	}
	pats := flag.Args()
	if len(pats) == 0 {
		pats = []string{"./..."}
	}
	cfg := &anz.LoadConfig{ModulePath: modPath, ModuleDir: modDir}
	pkgs, err := cfg.Load(pats...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npravet:", err)
		os.Exit(2)
	}
	diags, err := anz.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npravet:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "npravet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModule walks up from the working directory to the enclosing
// go.mod and returns its directory and module path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(gomod); statErr == nil {
			f, err := os.Open(gomod)
			if err != nil {
				return "", "", err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}
