package serve

import (
	"npra/internal/core"
)

// The deduplication layer. A flight is one engine invocation's worth of
// work, keyed by the request's canonical hash (core.WireRequest.
// CanonicalKey — mode, budget and materialized thread bodies; worker
// count and timeout excluded, which is sound because the engine is
// bit-identical across worker counts). Requests join a flight in one of
// three ways:
//
//   - leader: first arrival; owns enqueueing the engine job.
//   - inflight hit: an identical request is already running; wait for
//     its result (classic singleflight).
//   - cached hit: an identical request completed recently and its
//     flight is still in the bounded result cache; answer immediately.
//
// Completed flights move into a capacity-bounded LRU so the
// deduplication window extends past the in-flight interval — this is
// the serving-layer analog of the engine's (pr,sr)→Solution memo cache
// from PR 1. Only clean, non-degraded successes are cached: errors and
// degraded fallbacks are transient conditions that must be retried.
type flight struct {
	key  string
	done chan struct{} // closed once alloc/err are set

	// Written exactly once (by the batch runner) before done is closed;
	// read only after <-done.
	alloc   *core.Allocation
	err     error
	batched int // size of the batch this flight's job ran in
}

type joinKind int

const (
	joinLeader joinKind = iota
	joinInflight
	joinCached
)

type flightGroup struct {
	// Guarded by the Server's metrics-independent lock: flightGroup has
	// its own mutex-free design — the Server serializes access through
	// s.flightMu. Kept lock-free internally so join+enqueue can be made
	// atomic with respect to abandon.
	inflight map[string]*flight
	cache    map[string]*flight
	order    []string // cache keys, oldest first (LRU eviction order)
	capacity int      // cache capacity; 0 disables the result cache
}

func newFlightGroup(capacity int) *flightGroup {
	return &flightGroup{
		inflight: make(map[string]*flight),
		cache:    make(map[string]*flight),
		capacity: capacity,
	}
}

// join returns the flight for key, creating one (leader) if no running
// or cached flight exists. Caller holds the server's flight lock.
func (g *flightGroup) join(key string) (*flight, joinKind) {
	if fl, ok := g.inflight[key]; ok {
		return fl, joinInflight
	}
	if fl, ok := g.cache[key]; ok {
		g.touch(key)
		return fl, joinCached
	}
	fl := &flight{key: key, done: make(chan struct{})}
	g.inflight[key] = fl
	return fl, joinLeader
}

// complete resolves a flight and promotes cacheable results into the
// LRU. Caller holds the server's flight lock; done is closed by the
// caller *after* releasing it.
func (g *flightGroup) complete(fl *flight, alloc *core.Allocation, err error) {
	fl.alloc, fl.err = alloc, err
	delete(g.inflight, fl.key)
	if g.capacity <= 0 || err != nil || alloc == nil || alloc.Degraded {
		return
	}
	if _, ok := g.cache[fl.key]; !ok {
		g.order = append(g.order, fl.key)
	}
	g.cache[fl.key] = fl
	for len(g.order) > g.capacity {
		victim := g.order[0]
		g.order = g.order[1:]
		delete(g.cache, victim)
	}
}

// abandon removes a leader's flight that never made it into the queue
// (admission refused). Caller holds the server's flight lock and then
// closes fl.done after setting fl.err, so racing joiners see the
// overload error instead of hanging.
func (g *flightGroup) abandon(fl *flight) {
	delete(g.inflight, fl.key)
}

// touch moves key to the most-recently-used end of the eviction order.
func (g *flightGroup) touch(key string) {
	for i, k := range g.order {
		if k == key {
			copy(g.order[i:], g.order[i+1:])
			g.order[len(g.order)-1] = key
			return
		}
	}
}
