// Fixture stub of npra/internal/parallel: just enough surface for the
// ctxplumb fixture to demonstrate the parallel.CtxErr cancellation
// poll.
package parallel

import "context"

func CtxErr(ctx context.Context) error { return ctx.Err() }
