package progen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/interp"
)

// Property: every random program builds and validates.
func TestQuickGenerateValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := Generate(rng, Default)
		return f.Built() && f.NumPoints() > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every structured program HALTS within a generous budget —
// the whole point of the structured generator.
func TestQuickStructuredHalts(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := GenerateStructured(rng, DefaultStructured)
		res, err := interp.Run(f, make([]uint32, 128), interp.Options{MaxSteps: 1 << 20})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.Halted {
			t.Logf("seed %d: did not halt:\n%s", seed, f.Format())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStructuredDeterministic(t *testing.T) {
	a := GenerateStructured(rand.New(rand.NewSource(7)), DefaultStructured)
	b := GenerateStructured(rand.New(rand.NewSource(7)), DefaultStructured)
	if a.Format() != b.Format() {
		t.Error("structured generator not deterministic")
	}
}

func TestStructuredRespectsStoreWindow(t *testing.T) {
	cfg := DefaultStructured
	cfg.StoreBase = 256
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		f := GenerateStructured(rng, cfg)
		for _, b := range f.Blocks {
			for k := range b.Instrs {
				in := b.Instrs[k]
				if in.Op.String() == "load" || in.Op.String() == "store" {
					if in.Imm < 256 || in.Imm >= 256+cfg.StoreWindow {
						t.Fatalf("memory op outside window: %v", in.String())
					}
				}
			}
		}
	}
}
