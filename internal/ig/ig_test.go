package ig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/ir"
)

// checksum mirrors the paper's Figure 4/5 example: sum, buf (v1) and len
// (v2) are live across CSBs (boundary nodes forming a BIG clique), while
// the per-iteration temporaries tmp1 (v4) and tmp2 (v5) live in different
// NSRs (internal nodes, mutually non-interfering — Claim 2).
const checksum = `
func ipchk
entry:
	set v0, 0        ; sum. buf=v1, len=v2 are live-in.
loop:
	bz v2, fold
	andi v3, v2, 1
	bnz v3, odd
	load v4, [v1+0]  ; tmp1
	add v0, v0, v4
	addi v1, v1, 4
	subi v2, v2, 1
	ctx
	br loop
odd:
	load v5, [v1+0]  ; tmp2
	andi v5, v5, 0xFFFF
	add v0, v0, v5
	addi v1, v1, 4
	subi v2, v2, 1
	ctx
	br loop
fold:
	shri v6, v0, 16
	andi v0, v0, 0xFFFF
	add v0, v0, v6
	not v7, v0
	store [8192], v7
	halt
`

func TestNodeClassification(t *testing.T) {
	a := Analyze(ir.MustParse(checksum))
	wantBoundary := map[int]bool{0: true, 1: true, 2: true}
	for v := 0; v < a.NumVars; v++ {
		if a.Boundary[v] != wantBoundary[v] {
			t.Errorf("Boundary[v%d] = %v, want %v", v, a.Boundary[v], wantBoundary[v])
		}
		if !a.Alive[v] {
			t.Errorf("v%d dead, want live", v)
		}
	}
	if got := a.LiveRanges(); got != 8 {
		t.Errorf("LiveRanges = %d, want 8", got)
	}
}

func TestBIGClique(t *testing.T) {
	a := Analyze(ir.MustParse(checksum))
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if !a.BIG.HasEdge(e[0], e[1]) {
			t.Errorf("BIG missing edge v%d-v%d", e[0], e[1])
		}
		if !a.GIG.HasEdge(e[0], e[1]) {
			t.Errorf("GIG missing edge v%d-v%d", e[0], e[1])
		}
	}
	// Internal nodes never appear in the BIG.
	for _, v := range []int{3, 4, 5, 6, 7} {
		if a.BIG.Degree(v) != 0 {
			t.Errorf("internal node v%d has BIG degree %d", v, a.BIG.Degree(v))
		}
	}
}

func TestClaim2InternalSeparation(t *testing.T) {
	a := Analyze(ir.MustParse(checksum))
	// tmp1 (v4) and tmp2 (v5) live in different NSRs: no interference.
	if a.GIG.HasEdge(4, 5) {
		t.Errorf("tmp1 and tmp2 interfere but live in disjoint NSRs")
	}
	if a.Regions[4].Intersects(a.Regions[5]) {
		t.Errorf("tmp1/tmp2 regions overlap: %v vs %v",
			a.Regions[4].Elems(nil), a.Regions[5].Elems(nil))
	}
	// Both interfere with sum.
	if !a.GIG.HasEdge(0, 4) || !a.GIG.HasEdge(0, 5) {
		t.Errorf("temporaries do not interfere with sum")
	}
	// IIG membership: each temp in exactly one region's IIG.
	iigs := a.IIGMembers()
	count4, count5 := 0, 0
	for _, m := range iigs {
		if m.Has(4) {
			count4++
		}
		if m.Has(5) {
			count5++
		}
		if m.Has(0) || m.Has(1) || m.Has(2) {
			t.Errorf("boundary node in IIG membership")
		}
	}
	if count4 != 1 || count5 != 1 {
		t.Errorf("tmp membership counts = %d, %d; want 1, 1", count4, count5)
	}
}

func buildCycle(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestGreedyColoringKnownGraphs(t *testing.T) {
	// Odd cycle: 3 colors.
	c5 := buildCycle(5)
	colors, n := c5.GreedyColor(c5.SmallestLastOrder(nil), nil)
	if n != 3 {
		t.Errorf("C5 colors = %d, want 3", n)
	}
	if u, v := c5.VerifyColoring(colors); u >= 0 {
		t.Errorf("C5 conflict %d-%d", u, v)
	}
	// Even cycle: 2 colors.
	c6 := buildCycle(6)
	_, n = c6.GreedyColor(c6.SmallestLastOrder(nil), nil)
	if n != 2 {
		t.Errorf("C6 colors = %d, want 2", n)
	}
	// Complete graph K4: 4 colors, clique bound 4.
	k4 := NewGraph(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.AddEdge(i, j)
		}
	}
	_, n = k4.GreedyColor(k4.SmallestLastOrder(nil), nil)
	if n != 4 {
		t.Errorf("K4 colors = %d, want 4", n)
	}
	if lb := k4.MaxCliqueLower(); lb != 4 {
		t.Errorf("K4 clique bound = %d, want 4", lb)
	}
}

func TestGreedyColorRespectsFixed(t *testing.T) {
	g := buildCycle(4)
	colors := []int{-1, -1, -1, -1}
	colors[0] = 7 // force an exotic fixed color
	order := []int{1, 2, 3, 0}
	colors, _ = g.GreedyColor(order, colors)
	if colors[0] != 7 {
		t.Errorf("fixed color overwritten: %d", colors[0])
	}
	if u, v := g.VerifyColoring(colors); u >= 0 {
		t.Errorf("conflict %d-%d in %v", u, v, colors)
	}
}

// Property: greedy coloring is always proper, and uses at most
// max-degree+1 colors, on random graphs.
func TestQuickColoringProper(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		colors, used := g.GreedyColor(g.SmallestLastOrder(nil), nil)
		if u, _ := g.VerifyColoring(colors); u >= 0 {
			return false
		}
		maxDeg := 0
		for v := 0; v < n; v++ {
			if d := g.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		return used <= maxDeg+1 && used >= g.MaxCliqueLower()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every GIG edge corresponds to an actual co-live point, and
// every BIG edge implies a GIG edge.
func TestBIGSubsetOfGIG(t *testing.T) {
	a := Analyze(ir.MustParse(checksum))
	for u := 0; u < a.NumVars; u++ {
		for v := u + 1; v < a.NumVars; v++ {
			if a.BIG.HasEdge(u, v) && !a.GIG.HasEdge(u, v) {
				t.Errorf("BIG edge v%d-v%d missing from GIG", u, v)
			}
			if a.GIG.HasEdge(u, v) && !a.Points[u].Intersects(a.Points[v]) {
				t.Errorf("GIG edge v%d-v%d without co-live point", u, v)
			}
			if !a.GIG.HasEdge(u, v) && a.Points[u].Intersects(a.Points[v]) {
				t.Errorf("co-live pair v%d-v%d missing GIG edge", u, v)
			}
		}
	}
}

// TestEdgesAndReset checks the popcount edge counter against a naive
// pairwise count, and that Reset returns the storage to an empty graph
// that can be rebuilt to an identical shape.
func TestEdgesAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 90
	g := NewGraph(n)
	naive := 0
	type edge struct{ u, v int }
	var edges []edge
	for i := 0; i < 400; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if !g.HasEdge(u, v) {
			naive++
		}
		g.AddEdge(u, v)
		edges = append(edges, edge{u, v})
	}
	if got := g.Edges(); got != naive {
		t.Fatalf("Edges() = %d, naive count %d", got, naive)
	}

	g.Reset()
	if got := g.Edges(); got != 0 {
		t.Fatalf("Edges() after Reset = %d, want 0", got)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) survived Reset", u, v)
			}
		}
	}

	// Rebuild on the reused storage: same edge set as a fresh graph.
	fresh := NewGraph(n)
	for _, e := range edges {
		g.AddEdge(e.u, e.v)
		fresh.AddEdge(e.u, e.v)
	}
	if g.Edges() != fresh.Edges() {
		t.Fatalf("rebuilt Edges() = %d, fresh %d", g.Edges(), fresh.Edges())
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.HasEdge(u, v) != fresh.HasEdge(u, v) {
				t.Fatalf("rebuilt/fresh disagree on edge (%d,%d)", u, v)
			}
		}
	}
}
