package sim

import (
	"fmt"
	"io"

	"npra/internal/ir"
)

// Tracer receives simulation events. Implementations must be fast; the
// simulator calls them on the hot path when tracing is enabled.
type Tracer interface {
	// Exec is called after each retired instruction.
	Exec(cycle int64, thread int, pc int, in *ir.Instr)
	// Switch is called when a thread gives up the CPU; reason is one of
	// "ctx", "mem", "halt", "iter-stop".
	Switch(cycle int64, thread int, reason string)
	// MemDone is called when a memory operation completes.
	MemDone(cycle int64, thread int)
}

// WriterTracer formats events as text lines, one per event.
type WriterTracer struct {
	W io.Writer
	// MaxLines stops emitting after this many lines (0 = unlimited);
	// traces grow fast on long runs.
	MaxLines int
	// Physical selects rN register spelling (for allocated code).
	Physical bool

	lines int
}

func (t *WriterTracer) emit(format string, args ...interface{}) {
	if t.MaxLines > 0 && t.lines >= t.MaxLines {
		return
	}
	t.lines++
	fmt.Fprintf(t.W, format, args...)
}

// Exec implements Tracer.
func (t *WriterTracer) Exec(cycle int64, thread int, pc int, in *ir.Instr) {
	text := in.String()
	if t.Physical {
		text = in.StringPhysical()
	}
	t.emit("%8d t%d pc=%-4d %s\n", cycle, thread, pc, text)
}

// Switch implements Tracer.
func (t *WriterTracer) Switch(cycle int64, thread int, reason string) {
	t.emit("%8d t%d -- switch (%s)\n", cycle, thread, reason)
}

// MemDone implements Tracer.
func (t *WriterTracer) MemDone(cycle int64, thread int) {
	t.emit("%8d t%d -- memory complete\n", cycle, thread)
}

// Truncated reports whether the tracer dropped events.
func (t *WriterTracer) Truncated() bool {
	return t.MaxLines > 0 && t.lines >= t.MaxLines
}
