// Package analyzers assembles the npravet suite: the eleven invariant
// analyzers grown out of PRs 1–9, ready for the cmd/npravet
// multichecker, make lint, CI and the in-repo selfcheck test.
//
// The suite is intentionally closed over this repository's invariants —
// it is not a general-purpose linter. Each pass documents the PR that
// established the invariant it enforces; docs/INTERNALS.md "Static
// invariants & linting" is the user-facing index. The PR-9 trio
// (lockorder, goleak, atomicmix) runs on the anz CFG/dataflow layer
// rather than plain AST walks — see the "Dataflow framework"
// subsection there before writing a new analyzer.
package analyzers

import (
	"npra/internal/analyzers/anz"
	"npra/internal/analyzers/atomicmix"
	"npra/internal/analyzers/cachealias"
	"npra/internal/analyzers/ctxplumb"
	"npra/internal/analyzers/detlint"
	"npra/internal/analyzers/errtaxonomy"
	"npra/internal/analyzers/frozenfunc"
	"npra/internal/analyzers/goleak"
	"npra/internal/analyzers/lockorder"
	"npra/internal/analyzers/panicfree"
	"npra/internal/analyzers/poolalias"
	"npra/internal/analyzers/sleeplint"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
func Suite() []*anz.Analyzer {
	return []*anz.Analyzer{
		atomicmix.Analyzer,
		cachealias.Analyzer,
		ctxplumb.Analyzer,
		detlint.Analyzer,
		errtaxonomy.Analyzer,
		frozenfunc.Analyzer,
		goleak.Analyzer,
		lockorder.Analyzer,
		panicfree.Analyzer,
		poolalias.Analyzer,
		sleeplint.Analyzer,
	}
}
