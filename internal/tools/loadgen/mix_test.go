package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"

	"npra/internal/serve"
)

// TestRunMixSmoke drives a small kernel-mix run against a baseline
// (caches off) and a warm server and checks the report invariants: all
// requests clean, a high warm-phase function-cache hit rate, and the
// gate plumbing.
func TestRunMixSmoke(t *testing.T) {
	baseline := serve.New(serve.Config{FuncCacheEntries: -1, BodyCacheEntries: -1})
	bts := httptest.NewServer(baseline.Handler())
	warm := serve.New(serve.Config{})
	wts := httptest.NewServer(warm.Handler())
	t.Cleanup(func() {
		bts.Close()
		wts.Close()
		baseline.Close()
		warm.Close()
	})

	rep, err := RunMix(context.Background(), MixOptions{
		URL:         wts.URL,
		BaselineURL: bts.URL,
		Concurrency: 2,
		Requests:    24,
		Kernels:     3,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cold == nil || rep.Cold.Requests != 24 {
		t.Fatalf("cold phase missing or short: %+v", rep.Cold)
	}
	if rep.Warm.Requests != 24 {
		t.Fatalf("warm requests = %d, want 24", rep.Warm.Requests)
	}
	if rep.Warm.FiveXX != 0 || rep.Cold.FiveXX != 0 {
		t.Errorf("5xx: cold %d warm %d, want none", rep.Cold.FiveXX, rep.Warm.FiveXX)
	}
	// Every kernel was warmed before the measured phase, so every
	// engine-reaching thread checkout should hit.
	if rep.FuncCacheHitRate < 0.9 {
		t.Errorf("funccache hit rate = %v, want >= 0.9 after warmup", rep.FuncCacheHitRate)
	}
	if rep.FuncCacheHits == 0 {
		t.Error("funccache hits = 0: the warm phase never reached the cache")
	}
	if rep.BodyCacheHitRate < 0.9 {
		t.Errorf("bodycache hit rate = %v, want >= 0.9 after warmup", rep.BodyCacheHitRate)
	}
	if rep.P99Speedup <= 0 {
		t.Errorf("p99 speedup = %v, want > 0 with a cold phase present", rep.P99Speedup)
	}
	if rep.RewriteCacheHitRate <= 0 {
		t.Errorf("rewritecache hit rate = %v, want > 0 after warmup", rep.RewriteCacheHitRate)
	}
	if rep.WarmRewriteShare > 0.4 {
		t.Errorf("warm rewrite share = %v, want <= 0.4 with the rewrite tier on", rep.WarmRewriteShare)
	}
	if err := rep.Check(0, 0.9, 0, 0.4); err != nil {
		t.Errorf("Check: %v", err)
	}
	if err := rep.Check(0, 1.01, 0, 0); err == nil {
		t.Error("Check accepted an unreachable hit-rate floor")
	}
	if err := rep.Check(0, -1, 1e9, 0); err == nil {
		t.Error("Check accepted an unreachable speedup floor")
	}
	hot := &MixReport{Warm: rep.Warm, WarmRewriteShare: 0.91}
	if err := hot.Check(0, -1, 0, 0.4); err == nil {
		t.Error("rewrite-share gate passed a report with a hot rewrite phase")
	}
}

// TestRunMixNoBaseline covers the external-server shape: without a
// BaselineURL there is no cold phase and the speedup gate must refuse
// rather than silently pass.
func TestRunMixNoBaseline(t *testing.T) {
	warm := serve.New(serve.Config{})
	wts := httptest.NewServer(warm.Handler())
	t.Cleanup(func() {
		wts.Close()
		warm.Close()
	})
	rep, err := RunMix(context.Background(), MixOptions{
		URL:         wts.URL,
		Concurrency: 2,
		Requests:    9,
		Kernels:     2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cold != nil || rep.P99Speedup != 0 {
		t.Errorf("cold = %+v speedup = %v, want no cold phase", rep.Cold, rep.P99Speedup)
	}
	if err := rep.Check(0, -1, 2, 0); err == nil {
		t.Error("speedup gate passed without a baseline")
	}
}
