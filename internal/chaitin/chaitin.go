// Package chaitin is the baseline register allocator the paper compares
// against: a classic Chaitin/Briggs graph-coloring allocator confined to a
// fixed per-thread register partition (32 registers on the IXP1200), with
// spill code when the partition is too small. On a network processor every
// spill load/store is a memory operation — it costs ~20 cycles *and*
// forces a context switch — which is exactly the pathology the paper's
// cross-thread allocator avoids.
package chaitin

import (
	"fmt"
	"sort"

	"npra/internal/core/errs"
	"npra/internal/ig"
	"npra/internal/ir"
	"npra/internal/spill"
)

// Options configures an allocation.
type Options struct {
	// Phys is the physical register partition this thread may use. The
	// allocator colors with len(Phys) registers; if spilling is needed,
	// the last register is reserved as the spill base pointer.
	Phys []ir.Reg

	// SpillBase is the byte address of the spill area; each thread's
	// slots start at SpillBase + tid*SpillStride.
	SpillBase int64

	// SpillStride is the per-thread spill area size in bytes.
	SpillStride int64

	// MaxRounds bounds the spill-and-retry iteration (default 16).
	MaxRounds int
}

// Result is a completed baseline allocation.
type Result struct {
	F          *ir.Func // rewritten over physical registers
	RegsUsed   int      // distinct physical registers referenced
	Spilled    int      // live ranges spilled to memory
	SpillCode  int      // load/store/address instructions added
	Rounds     int      // build-color-spill iterations
	SpillSlots int      // memory words used for spills
}

// Allocate colors f's live ranges with opts.Phys, spilling as needed.
// The input function is not modified.
func Allocate(f *ir.Func, opts Options) (*Result, error) {
	if len(opts.Phys) < 4 {
		return nil, errs.Invalidf("chaitin: need at least 4 registers, got %d", len(opts.Phys))
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 16
	}
	if opts.SpillStride == 0 {
		opts.SpillStride = 256
	}
	seen := make(map[ir.Reg]bool)
	for _, r := range opts.Phys {
		if r < 0 || seen[r] {
			return nil, errs.Invalidf("chaitin: bad physical register set")
		}
		seen[r] = true
	}

	cur := f.Clone()
	res := &Result{}
	nextSlot := 0
	noSpill := make(map[ir.Reg]bool) // spill temps: never spill again

	for round := 1; round <= opts.MaxRounds; round++ {
		res.Rounds = round
		a := ig.Analyze(cur)
		k := len(opts.Phys)
		spillingEverHappened := nextSlot > 0
		if spillingEverHappened {
			k-- // last register is the spill base pointer
		}
		colors, spilled := color(a, k, noSpill, spill.BaseReg(cur))
		if len(spilled) == 0 {
			out, used, err := rewrite(cur, a, colors, opts.Phys, spillingEverHappened, opts)
			if err != nil {
				return nil, err
			}
			res.F = out
			res.RegsUsed = used
			res.SpillSlots = nextSlot
			return res, nil
		}
		// First spill round: re-color with the base register reserved, so
		// the spill decision accounts for the smaller palette.
		if !spillingEverHappened {
			colors, spilled = color(a, k-1, noSpill, spill.BaseReg(cur))
			if len(spilled) == 0 {
				// Fits without the reserved register after all; no spills.
				out, used, err := rewrite(cur, a, colors, opts.Phys, false, opts)
				if err != nil {
					return nil, err
				}
				res.F = out
				res.RegsUsed = used
				return res, nil
			}
		}
		var err error
		var added int
		cur, added, err = spill.Insert(cur, spilled, &nextSlot, noSpill)
		if err != nil {
			return nil, err
		}
		res.Spilled += len(spilled)
		res.SpillCode += added
	}
	return nil, errs.Infeasiblef("chaitin: did not converge in %d rounds", opts.MaxRounds)
}

// color runs simplify/select with optimistic (Briggs) spilling and returns
// the coloring plus the set of actual spills. The spill base register (if
// any) is precolored outside the palette and excluded from the graph.
func color(a *ig.Analysis, k int, noSpill map[ir.Reg]bool, exclude ir.Reg) ([]int, []int) {
	nv := a.NumVars
	inGraph := make([]bool, nv)
	deg := make([]int, nv)
	occ := occurrences(a.F, nv)
	var nodes []int
	for v := 0; v < nv; v++ {
		if a.Alive[v] && ir.Reg(v) != exclude {
			inGraph[v] = true
			nodes = append(nodes, v)
		}
	}
	for _, v := range nodes {
		d := 0
		a.GIG.Neighbors(v).ForEach(func(w int) {
			if inGraph[w] {
				d++
			}
		})
		deg[v] = d
	}

	stack := make([]int, 0, len(nodes))
	remaining := len(nodes)
	for remaining > 0 {
		// Simplify: remove any trivially colorable node.
		picked := -1
		for _, v := range nodes {
			if inGraph[v] && deg[v] < k {
				picked = v
				break
			}
		}
		if picked < 0 {
			// Spill candidate: cheapest occurrences/degree ratio among
			// spillable nodes; optimistic push.
			best, bestScore := -1, 0.0
			for _, v := range nodes {
				if !inGraph[v] || noSpill[ir.Reg(v)] {
					continue
				}
				score := float64(occ[v]) / float64(deg[v]+1)
				if best < 0 || score < bestScore {
					best, bestScore = v, score
				}
			}
			if best < 0 {
				// Only unspillable temps left: push the max-degree one
				// optimistically and hope.
				for _, v := range nodes {
					if inGraph[v] && (best < 0 || deg[v] > deg[best]) {
						best = v
					}
				}
			}
			picked = best
		}
		inGraph[picked] = false
		remaining--
		stack = append(stack, picked)
		a.GIG.Neighbors(picked).ForEach(func(w int) {
			if inGraph[w] {
				deg[w]--
			}
		})
	}

	colors := make([]int, nv)
	for i := range colors {
		colors[i] = -1
	}
	var spilled []int
	used := make([]bool, k+1)
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		for c := 0; c < k; c++ {
			used[c] = false
		}
		a.GIG.Neighbors(v).ForEach(func(w int) {
			if c := colors[w]; c >= 0 && c < k {
				used[c] = true
			}
		})
		c := 0
		for c < k && used[c] {
			c++
		}
		if c == k {
			spilled = append(spilled, v)
			continue
		}
		colors[v] = c
	}
	sort.Ints(spilled)
	return colors, spilled
}

func occurrences(f *ir.Func, nv int) []int {
	occ := make([]int, nv)
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Def != ir.NoReg {
				occ[in.Def]++
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				occ[u]++
			}
		}
	}
	return occ
}

// rewrite renames every virtual register to its physical register and
// patches the spill prologue constants.
func rewrite(cur *ir.Func, a *ig.Analysis, colors []int, phys []ir.Reg, usedBase bool, opts Options) (*ir.Func, int, error) {
	nf := &ir.Func{Name: cur.Name, Physical: true}
	baseVirt := spill.BaseReg(cur)
	usedSet := make(map[ir.Reg]bool)
	mapReg := func(v ir.Reg) (ir.Reg, error) {
		if v == baseVirt && usedBase {
			r := phys[len(phys)-1]
			usedSet[r] = true
			return r, nil
		}
		c := colors[v]
		if c < 0 {
			if !a.Alive[int(v)] {
				// Dead def: any register will do; use the first.
				usedSet[phys[0]] = true
				return phys[0], nil
			}
			return 0, fmt.Errorf("chaitin: live v%d uncolored", v)
		}
		usedSet[phys[c]] = true
		return phys[c], nil
	}
	maxPhys := ir.Reg(0)
	for _, b := range cur.Blocks {
		nb := &ir.Block{Label: b.Label}
		for i := range b.Instrs {
			in := b.Instrs[i]
			if v, ok := spill.PatchImm(in.Imm, opts.SpillBase, opts.SpillStride); ok {
				in.Imm = v
			}
			var err error
			if in.Def != ir.NoReg {
				if in.Def, err = mapReg(in.Def); err != nil {
					return nil, 0, err
				}
			}
			if in.A != ir.NoReg {
				if in.A, err = mapReg(in.A); err != nil {
					return nil, 0, err
				}
			}
			if in.B != ir.NoReg {
				if in.B, err = mapReg(in.B); err != nil {
					return nil, 0, err
				}
			}
			for _, r := range []ir.Reg{in.Def, in.A, in.B} {
				if r != ir.NoReg && r > maxPhys {
					maxPhys = r
				}
			}
			nb.Instrs = append(nb.Instrs, in)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	nf.NumRegs = int(maxPhys) + 1
	if err := nf.Build(); err != nil {
		return nil, 0, fmt.Errorf("chaitin: rewritten function invalid: %w", err)
	}
	return nf, len(usedSet), nil
}
