package experiments

import (
	"strings"
	"testing"

	"npra/internal/bench"
	"npra/internal/ir"
)

const testPackets = 24

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if r.RegPCSBmax > r.RegPmax || r.MaxPR > r.MaxR {
			t.Errorf("%s: bounds out of order: %+v", r.Name, r)
		}
		if r.RegPmax > r.MaxR || r.RegPCSBmax > r.MaxPR {
			t.Errorf("%s: min exceeds max: %+v", r.Name, r)
		}
		if r.CTXPct < 4 || r.CTXPct > 30 {
			t.Errorf("%s: CTX%% = %.1f outside the paper's ~10%% regime", r.Name, r.CTXPct)
		}
		if r.CyclesIter <= 0 {
			t.Errorf("%s: no cycles measured", r.Name)
		}
		if r.NSRs < 2 {
			t.Errorf("%s: only %d NSRs", r.Name, r.NSRs)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "md5") || !strings.Contains(text, "RegPCSBmax") {
		t.Errorf("format missing content:\n%s", text)
	}
}

func TestFigure14Shape(t *testing.T) {
	rows, err := Figure14(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Sharing must never need more than 4 standalone copies.
		if r.Total > 4*r.SingleRegs {
			t.Errorf("%s: sharing uses MORE registers: %+v", r.Name, r)
		}
		// PR below the standalone demand: shared registers absorb the
		// internal pressure.
		if r.PR > r.SingleRegs {
			t.Errorf("%s: PR %d > standalone %d", r.Name, r.PR, r.SingleRegs)
		}
		if r.Total > NReg {
			t.Errorf("%s: over the register file: %d", r.Name, r.Total)
		}
	}
	avg := AverageSaving(rows)
	// Paper: 24% average saving. Accept a generous band for our suite.
	if avg < 10 || avg > 60 {
		t.Errorf("average saving %.1f%% outside [10, 60] (paper: 24%%)\n%s", avg, FormatFigure14(rows))
	}
	t.Logf("\n%s", FormatFigure14(rows))
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(testPackets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	anyMoves := false
	for _, r := range rows {
		if r.Moves > 0 {
			anyMoves = true
		}
		// Paper: overhead mostly within 10%; allow slack for our kernels.
		if r.MovePct > 25 {
			t.Errorf("%s: move overhead %.1f%% too high", r.Name, r.MovePct)
		}
	}
	if !anyMoves {
		t.Errorf("no benchmark needed any move at the minimal allocation")
	}
	t.Logf("\n%s", FormatTable2(rows))
}

func TestTable3Shape(t *testing.T) {
	scs, err := Table3(48)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	for _, sc := range scs {
		if sc.TotalRegs > NReg {
			t.Errorf("%s: over budget: %d", sc.Name, sc.TotalRegs)
		}
		for _, th := range sc.Threads {
			if th.Critical {
				// The headline: critical threads speed up substantially
				// (paper: 18-24%). Require a clear win.
				if th.SpeedupPct < 5 {
					t.Errorf("%s/%s: critical thread speedup %.1f%%, want >= 5%%",
						sc.Name, th.Bench, th.SpeedupPct)
				}
				// Spill code adds context switches; sharing removes them.
				if th.CTXSpill <= th.CTXSharing {
					t.Errorf("%s/%s: CTX did not drop: %d vs %d",
						sc.Name, th.Bench, th.CTXSpill, th.CTXSharing)
				}
			} else {
				// Non-critical threads pay a price. The paper reports
				// 1-4%; our simulator shows a larger contention effect
				// (the faster critical threads crowd the CPU more), so
				// bound it at "must not collapse".
				if th.SpeedupPct < -30 {
					t.Errorf("%s/%s: non-critical thread degraded %.1f%%",
						sc.Name, th.Bench, th.SpeedupPct)
				}
			}
		}
	}
	t.Logf("\n%s", FormatTable3(scs))
}

// TestBaselineAndSharingComputeSameResults is the end-to-end correctness
// gate for the whole evaluation: for every Table 3 scenario, the baseline
// (spilling) machine and the sharing machine must leave *identical*
// packet-processing results in memory — allocation strategy may change
// timing, never values. (Only the spill area may differ; it sits above
// bench.SpillBase.)
func TestBaselineAndSharingComputeSameResults(t *testing.T) {
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			mk := func() []*ir.Func {
				var out []*ir.Func
				for _, name := range sc.benches {
					b, err := bench.Get(name)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, b.Gen(16))
				}
				return out
			}
			baseThreads, _, err := baselineThreads(mk())
			if err != nil {
				t.Fatal(err)
			}
			baseRes, err := runSim(baseThreads)
			if err != nil {
				t.Fatal(err)
			}
			shareThreads, _, err := sharingThreads(mk())
			if err != nil {
				t.Fatal(err)
			}
			shareRes, err := runSim(shareThreads)
			if err != nil {
				t.Fatal(err)
			}
			limit := int(bench.SpillBase / 4)
			for i := 0; i < limit; i++ {
				if baseRes.Mem[i] != shareRes.Mem[i] {
					t.Fatalf("mem[%d]: baseline %#x vs sharing %#x", i*4, baseRes.Mem[i], shareRes.Mem[i])
				}
			}
		})
	}
}
