package banks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/core"
	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

func TestAssignSimple(t *testing.T) {
	f := ir.MustParse(`
func p
a:
	set r0, 3
	set r1, 4
	add r2, r0, r1    ; r0 and r1 must split across banks
	mul r3, r2, r0    ; r2 opposite r0
	store [0], r3
	halt`)
	res, err := Assign([]*ir.Func{f}, Config{BankSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res.Funcs[0], 8); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.BankOf[0] == res.BankOf[1] {
		t.Errorf("r0 and r1 share a bank")
	}
	if res.BankOf[2] == res.BankOf[0] {
		t.Errorf("r2 and r0 share a bank")
	}
	if res.Moves != 0 {
		t.Errorf("unnecessary staging: %d moves", res.Moves)
	}
	assertSame(t, f, res.Funcs[0])
}

func TestSameRegisterPairStaged(t *testing.T) {
	f := ir.MustParse(`
func q
a:
	set r0, 21
	add r1, r0, r0    ; same register on both ports: must stage
	store [0], r1
	halt`)
	res, err := Assign([]*ir.Func{f}, Config{BankSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 1 {
		t.Errorf("Moves = %d, want 1", res.Moves)
	}
	if err := Check(res.Funcs[0], 8); err != nil {
		t.Fatalf("Check: %v", err)
	}
	assertSame(t, f, res.Funcs[0])
	m := make([]uint32, 4)
	if _, err := interp.Run(res.Funcs[0], m, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	if m[0] != 42 {
		t.Errorf("result = %d, want 42", m[0])
	}
}

func TestOddCycleStaged(t *testing.T) {
	// r0-r1, r1-r2, r2-r0: an odd cycle — one edge must be staged.
	f := ir.MustParse(`
func odd
a:
	set r0, 1
	set r1, 2
	set r2, 3
	add r3, r0, r1
	add r4, r1, r2
	add r5, r2, r0
	add r6, r3, r4
	add r6, r6, r5
	store [0], r6
	halt`)
	res, err := Assign([]*ir.Func{f}, Config{BankSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 {
		t.Errorf("odd cycle resolved without staging?")
	}
	if err := Check(res.Funcs[0], 8); err != nil {
		t.Fatalf("Check: %v", err)
	}
	assertSame(t, f, res.Funcs[0])
}

func TestCapacityError(t *testing.T) {
	// 5 registers + scratch into banks of 2 cannot fit.
	f := ir.MustParse(`
func big
a:
	set r0, 1
	set r1, 2
	set r2, 3
	set r3, 4
	add r4, r0, r1
	store [0], r4
	halt`)
	if _, err := Assign([]*ir.Func{f}, Config{BankSize: 2}); err == nil {
		t.Errorf("over-capacity assignment succeeded")
	}
}

func TestCheckRejectsViolations(t *testing.T) {
	bad := ir.MustParse(`
a:
	set r0, 1
	set r1, 2
	add r2, r0, r1
	store [0], r2
	halt`)
	// With bankSize 8, r0 and r1 are both in bank A.
	if err := Check(bad, 8); err == nil {
		t.Errorf("same-bank sources not rejected")
	}
	same := ir.MustParse("a:\n set r0, 1\n add r1, r0, r0\n store [0], r1\n halt")
	if err := Check(same, 8); err == nil {
		t.Errorf("same-register pair not rejected")
	}
}

// TestFullPipelineWithAllocator runs the paper's allocator and then the
// bank assigner, checking the end-to-end contract: bank-legal code with
// unchanged behavior and scratches dead across every context switch.
func TestFullPipelineWithAllocator(t *testing.T) {
	src1 := `
func t1
entry:
	set v0, 1
	ctx
	set v1, 2
	add v2, v0, v1
	add v3, v2, v0
	store [64], v3
	halt`
	src2 := `
func t2
entry:
	ctx
	set v0, 5
	muli v1, v0, 3
	add v2, v1, v0
	store [68], v2
	halt`
	alloc, err := core.AllocateARA(
		[]*ir.Func{ir.MustParse(src1), ir.MustParse(src2)},
		core.Config{NReg: 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	var funcs []*ir.Func
	for _, th := range alloc.Threads {
		funcs = append(funcs, th.F)
	}
	res, err := Assign(funcs, Config{BankSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, bf := range res.Funcs {
		if err := Check(bf, 8); err != nil {
			t.Errorf("thread %d: %v", i, err)
		}
		if err := ScratchesDeadAcrossSwitches(bf, res.ScratchA, res.ScratchB); err != nil {
			t.Errorf("thread %d: %v", i, err)
		}
		assertSame(t, funcs[i], bf)
	}
	// Consistency: a register shared by both threads must land in the
	// same bank slot everywhere (the remap is global by construction);
	// spot-check via the remap being a bijection.
	seen := make(map[ir.Reg]ir.Reg)
	for old, nw := range res.Remap {
		if prev, dup := seen[nw]; dup {
			t.Errorf("banked register %d assigned to both r%d and r%d", nw, prev, old)
		}
		seen[nw] = old
	}
}

func assertSame(t *testing.T, before, after *ir.Func) {
	t.Helper()
	m1 := make([]uint32, 64)
	m2 := make([]uint32, 64)
	r1, err := interp.Run(before, m1, interp.Options{MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Halted {
		t.Skip("input does not halt")
	}
	r2, err := interp.Run(after, m2, interp.Options{MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Equivalent(r1, r2); err != nil {
		t.Errorf("banking changed behavior: %v\n%s", err, after.Format())
	}
}

// Property: random virtual programs, allocated single-thread then banked,
// stay bank-legal and equivalent.
func TestQuickBankPipeline(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		alloc, err := core.AllocateARA([]*ir.Func{f}, core.Config{NReg: 32})
		if err != nil {
			return true // tiny budget infeasibility is fine
		}
		res, err := Assign([]*ir.Func{alloc.Threads[0].F}, Config{BankSize: 16})
		if err != nil {
			t.Logf("seed %d: assign: %v", seed, err)
			return false
		}
		if err := Check(res.Funcs[0], 16); err != nil {
			t.Logf("seed %d: check: %v", seed, err)
			return false
		}
		m1 := make([]uint32, 64)
		m2 := make([]uint32, 64)
		r1, err := interp.Run(f, m1, interp.Options{MaxSteps: 20000})
		if err != nil || !r1.Halted {
			return true
		}
		r2, err := interp.Run(res.Funcs[0], m2, interp.Options{MaxSteps: 200000})
		if err != nil {
			return false
		}
		if err := interp.Equivalent(r1, r2); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
