package intra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

// figure3Thread1 is thread 1 of the paper's Figure 3: a (v0) crosses the
// ctx, b (v1) and c (v2) are internal, and the three form a clique — yet
// the paper shows two registers suffice after one live-range split.
const figure3Thread1 = `
func fig3t1
entry:
	set v0, 1
	ctx
	bz v0, L1
	set v1, 2
	add v1, v0, v1
	set v2, 3
	br L2
L1:
	set v2, 4
	add v2, v0, v2
	set v1, 5
L2:
	add v1, v1, v2
	load v3, [v1+0]
	store [64], v3
	halt
`

func physIdentity(n int) []ir.Reg {
	out := make([]ir.Reg, n)
	for i := range out {
		out[i] = ir.Reg(i)
	}
	return out
}

func TestFigure3MoveFree(t *testing.T) {
	al := MustNew(ir.MustParse(figure3Thread1))
	b := al.Bounds()
	if b.MinPR != 1 || b.MinR != 2 || b.MaxPR != 1 || b.MaxR != 3 {
		t.Fatalf("bounds = %+v", b)
	}
	sol, err := al.Solve(1, 2) // the move-free budget
	if err != nil {
		t.Fatalf("Solve(1,2): %v", err)
	}
	if sol.Cost != 0 {
		t.Errorf("cost = %d, want 0 at (MaxPR, MaxSR)", sol.Cost)
	}
	if err := sol.Ctx.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFigure3SplitToTwoRegisters(t *testing.T) {
	al := MustNew(ir.MustParse(figure3Thread1))
	// The paper's headline for this example: down to 2 total registers
	// via live-range splitting (Figure 3.c uses a single inserted move).
	sol, err := al.Solve(1, 1)
	if err != nil {
		t.Fatalf("Solve(1,1): %v", err)
	}
	if sol.Cost < 1 || sol.Cost > 3 {
		t.Errorf("cost = %d, want a small positive move count", sol.Cost)
	}
	if err := sol.Ctx.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sol.Ctx.Size > 2 {
		t.Errorf("palette size = %d, want <= 2", sol.Ctx.Size)
	}

	// Materialize and prove equivalence.
	nf, stats, err := Rewrite(sol.Ctx, physIdentity(sol.Ctx.Size))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if nf.NumRegs > 2 {
		t.Errorf("rewritten NumRegs = %d, want <= 2", nf.NumRegs)
	}
	if stats.Moves == 0 {
		t.Errorf("no moves emitted despite split")
	}
	orig := ir.MustParse(figure3Thread1)
	r1, err := interp.Run(orig, make([]uint32, 32), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(nf, make([]uint32, 32), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.Equivalent(r1, r2); err != nil {
		t.Errorf("not equivalent: %v\n%s", err, nf.Format())
	}
}

func TestInfeasibleBudget(t *testing.T) {
	al := MustNew(ir.MustParse(figure3Thread1))
	if _, err := al.Solve(1, 0); err == nil {
		t.Errorf("Solve(1,0) succeeded below MinR")
	} else if !IsInfeasible(err) {
		t.Errorf("error not infeasible: %v", err)
	}
	if _, err := al.Solve(0, 3); err == nil {
		t.Errorf("Solve(0,3) succeeded below MinPR")
	}
}

func TestGenerousBudgetIsFree(t *testing.T) {
	al := MustNew(ir.MustParse(figure3Thread1))
	sol, err := al.Solve(20, 20)
	if err != nil {
		t.Fatalf("Solve(20,20): %v", err)
	}
	if sol.Cost != 0 {
		t.Errorf("generous budget cost = %d, want 0", sol.Cost)
	}
}

func TestSolveOrderIndependence(t *testing.T) {
	mk := func() *Allocator { return MustNew(ir.MustParse(figure3Thread1)) }
	a1 := mk()
	s1a, err := a1.Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s1b, err := a1.Solve(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a2 := mk()
	s2b, err := a2.Solve(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2a, err := a2.Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1a.Cost != s2a.Cost || s1b.Cost != s2b.Cost {
		t.Errorf("query order changed results: %d/%d vs %d/%d",
			s1a.Cost, s1b.Cost, s2a.Cost, s2b.Cost)
	}
}

func TestParallelCopyCycle(t *testing.T) {
	var stats RewriteStats
	// r0 <- r1, r1 <- r0: a pure swap; must resolve without a temp.
	instrs := appendParallelCopy(nil, []copyPair{{0, 1}, {1, 0}}, &stats)
	regs := []uint32{10, 20, 99}
	exec(t, instrs, regs)
	if regs[0] != 20 || regs[1] != 10 {
		t.Errorf("swap failed: %v", regs)
	}
	if stats.Moves != 0 || stats.Xors != 3 {
		t.Errorf("stats = %+v", stats)
	}

	// 3-cycle plus a chain: r0<-r1<-r2<-r0 and r3<-r4.
	stats = RewriteStats{}
	instrs = appendParallelCopy(nil, []copyPair{{0, 1}, {1, 2}, {2, 0}, {3, 4}}, &stats)
	regs = []uint32{1, 2, 3, 0, 7}
	exec(t, instrs, regs)
	if regs[0] != 2 || regs[1] != 3 || regs[2] != 1 || regs[3] != 7 {
		t.Errorf("rotate failed: %v", regs)
	}
	if stats.Moves != 1 || stats.Xors != 6 {
		t.Errorf("stats = %+v", stats)
	}

	// Chain where ordering matters: r2<-r1, r1<-r0.
	stats = RewriteStats{}
	instrs = appendParallelCopy(nil, []copyPair{{2, 1}, {1, 0}}, &stats)
	regs = []uint32{5, 6, 7}
	exec(t, instrs, regs)
	if regs[2] != 6 || regs[1] != 5 {
		t.Errorf("chain failed: %v", regs)
	}
}

func exec(t *testing.T, instrs []ir.Instr, regs []uint32) {
	t.Helper()
	for _, in := range instrs {
		switch in.Op {
		case ir.OpMov:
			regs[in.Def] = regs[in.A]
		case ir.OpXor:
			regs[in.Def] = regs[in.A] ^ regs[in.B]
		default:
			t.Fatalf("unexpected op %v in copy sequence", in.Op)
		}
	}
}

// Property: random permutation parallel copies are realized exactly.
func TestQuickParallelCopyPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		perm := rng.Perm(n)
		var pairs []copyPair
		for dst, src := range perm {
			pairs = append(pairs, copyPair{ir.Reg(dst), ir.Reg(src)})
		}
		var stats RewriteStats
		instrs := appendParallelCopy(nil, pairs, &stats)
		regs := make([]uint32, n)
		want := make([]uint32, n)
		for i := range regs {
			regs[i] = uint32(rng.Uint32())
		}
		for dst, src := range perm {
			want[dst] = regs[src]
		}
		for _, in := range instrs {
			switch in.Op {
			case ir.OpMov:
				regs[in.Def] = regs[in.A]
			case ir.OpXor:
				regs[in.Def] = regs[in.A] ^ regs[in.B]
			}
		}
		for i := range want {
			if regs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for random programs and random feasible budgets, Solve
// produces a valid context whose rewrite is observationally equivalent to
// the original, and crossing pieces stay inside the private prefix.
func TestQuickSolveRewriteEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fun := progen.Generate(rng, progen.Default)
		al := MustNew(fun)
		b := al.Bounds()

		// Random budget between the minima and a bit above the maxima.
		pr := b.MinPR + rng.Intn(b.MaxPR-b.MinPR+2)
		minSR := b.MinR - pr
		if minSR < 0 {
			minSR = 0
		}
		sr := minSR + rng.Intn(b.MaxR-b.MinR+2)
		sol, err := al.Solve(pr, sr)
		if err != nil {
			return false
		}
		if err := sol.Ctx.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		nf, _, err := Rewrite(sol.Ctx, physIdentity(sol.Ctx.Size))
		if err != nil {
			t.Logf("seed %d: rewrite: %v", seed, err)
			return false
		}
		const memWords = 64
		m1 := make([]uint32, memWords)
		m2 := make([]uint32, memWords)
		r1, err := interp.Run(fun, m1, interp.Options{MaxSteps: 20000})
		if err != nil {
			return false
		}
		if !r1.Halted {
			return true // skip diverging programs
		}
		r2, err := interp.Run(nf, m2, interp.Options{MaxSteps: 200000})
		if err != nil {
			return false
		}
		if err := interp.Equivalent(r1, r2); err != nil {
			t.Logf("seed %d: %v\noriginal:\n%s\nrewritten:\n%s", seed, err, fun.Format(), nf.Format())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: solving at the exact lower bounds always succeeds (Lemma 1 /
// the pointwise feasibility argument) and validates.
func TestQuickLowerBoundReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fun := progen.Generate(rng, progen.Default)
		al := MustNew(fun)
		b := al.Bounds()
		sol, err := al.Solve(b.MinPR, b.MinR-b.MinPR)
		if err != nil {
			t.Logf("seed %d: Solve(min) failed: %v", seed, err)
			return false
		}
		return sol.Ctx.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (structured, no skips): every halting structured program
// solves at a random feasible budget and the rewrite is fully equivalent.
func TestQuickStructuredEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fun := progen.GenerateStructured(rng, progen.DefaultStructured)
		al := MustNew(fun)
		b := al.Bounds()
		pr := b.MinPR + rng.Intn(b.MaxPR-b.MinPR+2)
		minSR := b.MinR - pr
		if minSR < 0 {
			minSR = 0
		}
		sr := minSR + rng.Intn(b.MaxR-b.MinR+2)
		sol, err := al.Solve(pr, sr)
		if err != nil {
			t.Logf("seed %d: solve: %v", seed, err)
			return false
		}
		if err := sol.Ctx.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		nf, _, err := Rewrite(sol.Ctx, physIdentity(sol.Ctx.Size))
		if err != nil {
			t.Logf("seed %d: rewrite: %v", seed, err)
			return false
		}
		m1 := make([]uint32, 128)
		m2 := make([]uint32, 128)
		r1, err := interp.Run(fun, m1, interp.Options{MaxSteps: 1 << 21})
		if err != nil || !r1.Halted {
			t.Logf("seed %d: structured program did not halt", seed)
			return false // structured programs MUST halt: no skips
		}
		r2, err := interp.Run(nf, m2, interp.Options{MaxSteps: 1 << 22})
		if err != nil {
			return false
		}
		if err := interp.Equivalent(r1, r2); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the loop-weighted objective also produces valid, equivalent
// allocations on structured (nested-loop) programs.
func TestQuickWeightedObjective(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fun := progen.GenerateStructured(rng, progen.DefaultStructured)
		al := MustNew(fun)
		al.UseLoopWeights()
		b := al.Bounds()
		sol, err := al.Solve(b.MinPR, b.MinR-b.MinPR)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := sol.Ctx.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		nf, _, err := Rewrite(sol.Ctx, physIdentity(sol.Ctx.Size))
		if err != nil {
			return false
		}
		m1 := make([]uint32, 128)
		m2 := make([]uint32, 128)
		r1, err := interp.Run(fun, m1, interp.Options{MaxSteps: 1 << 21})
		if err != nil || !r1.Halted {
			return false
		}
		r2, err := interp.Run(nf, m2, interp.Options{MaxSteps: 1 << 22})
		if err != nil {
			return false
		}
		return interp.Equivalent(r1, r2) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLatticeSweep solves EVERY feasible (PR, SR) point of the budget
// lattice for representative programs, validating and proving equivalence
// at each — the systematic version of the spot checks above.
func TestLatticeSweep(t *testing.T) {
	sources := map[string]string{
		"fig3": figure3Thread1,
		"twoBoundary": `
func tb
entry:
	set v0, 1
	set v1, 2
	ctx
	add v2, v0, v1
	set v3, 9
	add v2, v2, v3
	ctx
	add v4, v0, v1
	add v4, v4, v2
	store [0], v4
	halt`,
	}
	for name, src := range sources {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			orig := ir.MustParse(src)
			r1, err := interp.Run(orig, make([]uint32, 64), interp.Options{})
			if err != nil || !r1.Halted {
				t.Fatal("reference run failed")
			}
			al := MustNew(ir.MustParse(src))
			b := al.Bounds()
			for pr := b.MinPR; pr <= b.MaxPR+1; pr++ {
				for sr := 0; sr <= b.MaxR-b.MinPR+1; sr++ {
					sol, err := al.Solve(pr, sr)
					if pr+sr < b.MinR || pr < b.MinPR {
						if err == nil {
							t.Errorf("(%d,%d): below bounds but solved", pr, sr)
						}
						continue
					}
					if err != nil {
						t.Errorf("(%d,%d): %v", pr, sr, err)
						continue
					}
					if err := sol.Ctx.Validate(); err != nil {
						t.Errorf("(%d,%d): %v", pr, sr, err)
						continue
					}
					nf, _, err := Rewrite(sol.Ctx, physIdentity(sol.Ctx.Size))
					if err != nil {
						t.Errorf("(%d,%d): rewrite: %v", pr, sr, err)
						continue
					}
					r2, err := interp.Run(nf, make([]uint32, 64), interp.Options{})
					if err != nil {
						t.Errorf("(%d,%d): run: %v", pr, sr, err)
						continue
					}
					if err := interp.Equivalent(r1, r2); err != nil {
						t.Errorf("(%d,%d): %v", pr, sr, err)
					}
					// Cost monotonicity: more registers never cost more
					// than the minimal point.
					if sol.Cost < 0 {
						t.Errorf("(%d,%d): negative cost", pr, sr)
					}
				}
			}
		})
	}
}
