// Command npbench regenerates the paper's evaluation: every table and
// figure of §9 plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	npbench -all                 # everything
//	npbench -table 1             # Table 1 (benchmark properties)
//	npbench -table 2             # Table 2 (move overhead at minimal regs)
//	npbench -table 3             # Table 3 (ARA scenarios, spill vs share)
//	npbench -figure 14           # Figure 14 (SRA register savings)
//	npbench -ablations           # ablation studies
//	npbench -list                # list the built-in benchmarks
//	npbench -all -j 1            # serial run (output identical to -j N)
//	npbench -phases              # per-phase allocation timing breakdown
//	npbench -phases -funccache   # same allocation cold then warm through
//	                             # the function cache, with the warm speedup
//	npbench -all -cpuprofile cpu.pb.gz   # profile any run with pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"

	"npra/internal/bench"
	"npra/internal/core"
	"npra/internal/experiments"
	"npra/internal/funccache"
	"npra/internal/ir"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate table 1, 2 or 3")
		figure     = flag.Int("figure", 0, "regenerate figure 14")
		ablations  = flag.Bool("ablations", false, "run the ablation studies")
		scaling    = flag.Bool("scaling", false, "run the chip-scaling study (multi-PU, shared memory)")
		all        = flag.Bool("all", false, "run everything")
		list       = flag.Bool("list", false, "list built-in benchmarks")
		phases     = flag.Bool("phases", false, "run a pressured ARA allocation and print the per-phase timing breakdown")
		funccacheP = flag.Bool("funccache", false, "with -phases: run the allocation twice through a function cache (cold, then warm) and report the warm speedup")
		rewEntries = flag.Int("rewritecache-entries", 1024, "with -phases -funccache: rewrite-result cache entries (negative disables the rewrite tier)")
		maxRWShare = flag.Float64("max-warm-rewrite-share", 0, "with -phases -funccache: fail unless the warm run's rewrite+rewrite_cached share of wall-clock stays at or below this fraction (0 disables the gate)")
		packets    = flag.Int("packets", experiments.DefaultPackets, "packets per thread")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for experiment fan-out (1 = serial; results are identical for any value)")
		timeout    = flag.Duration("timeout", 0, "per-allocation deadline (0 = none); expired allocations abort the experiment rather than report fallback numbers")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()
	experiments.SetWorkers(*jobs)
	experiments.SetTimeout(*timeout)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "npbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "npbench:", err)
			os.Exit(1)
		}
		defer rtrace.Stop()
	}

	err := run(*table, *figure, *ablations, *scaling, *all, *list, *phases, *funccacheP, *packets, *rewEntries, *maxRWShare)

	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "npbench:", ferr)
		} else {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "npbench:", werr)
			}
			f.Close()
		}
	}
	if err != nil {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if *traceFile != "" {
			rtrace.Stop()
		}
		fmt.Fprintln(os.Stderr, "npbench:", err)
		os.Exit(1)
	}
}

func run(table, figure int, ablations, scaling, all, list, phases, funccacheP bool, packets, rewEntries int, maxRWShare float64) error {
	if list {
		fmt.Println("built-in benchmarks:")
		for _, b := range bench.All() {
			fmt.Printf("  %-14s [%-9s] %s\n", b.Name, b.Suite, b.Description)
		}
		return nil
	}
	if phases {
		return runPhases(packets, funccacheP, rewEntries, maxRWShare)
	}
	ran := false
	if all || table == 1 {
		rows, err := experiments.Table1(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(rows))
		ran = true
	}
	if all || figure == 14 {
		rows, err := experiments.Figure14(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure14(rows))
		ran = true
	}
	if all || table == 2 {
		rows, err := experiments.Table2(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(rows))
		ran = true
	}
	if all || table == 3 {
		scs, err := experiments.Table3(packets)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable3(scs))
		ran = true
	}
	if all || ablations {
		text, err := experiments.FormatAblations(packets)
		if err != nil {
			return err
		}
		fmt.Println(text)
		ran = true
	}
	if all || scaling {
		free, err := experiments.ClusterScaling(packets, 0)
		if err != nil {
			return err
		}
		contended, err := experiments.ClusterScaling(packets, 2)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatScaling(free, contended, 2))
		ran = true
	}
	if !ran {
		return fmt.Errorf("nothing to do: pass -all, -table N, -figure 14, -ablations, -scaling, -phases or -list")
	}
	return nil
}

// runPhases performs one pressured ARA allocation (the BenchmarkAllocateARA
// workload: two md5 threads plus two fir2dim threads squeezed into 56
// registers) and prints where the wall-clock time went, phase by phase.
// With warm set it runs the allocation twice through one function cache
// and one rewrite-result cache — cold, then warm — printing both
// breakdowns and the warm speedup. A non-zero maxRWShare gates the warm
// run: its rewrite+rewrite_cached share of wall-clock must stay at or
// below that fraction.
func runPhases(packets int, warm bool, rewEntries int, maxRWShare float64) error {
	var funcs []*ir.Func
	for _, n := range []string{"md5", "md5", "fir2dim", "fir2dim"} {
		b, err := bench.Get(n)
		if err != nil {
			return err
		}
		funcs = append(funcs, b.Gen(packets))
	}
	const pressureNReg = 56 // forces greedy reduction rounds
	cfg := core.Config{NReg: pressureNReg}
	var cache *funccache.Cache
	var rewrites *funccache.RewriteCache
	if warm {
		cache = funccache.New(funccache.Config{})
		cfg.FuncCache = cache
		if rewEntries >= 0 {
			rewrites = funccache.NewRewriteCache(funccache.RewriteConfig{Entries: rewEntries, KeyFn: cache.FuncKey})
			cfg.RewriteCache = rewrites
		}
	}
	runOnce := func(label string) (*core.Allocation, time.Duration, error) {
		start := time.Now()
		alloc, err := core.AllocateARA(funcs, cfg)
		total := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		ph := alloc.Phases
		fmt.Printf("phase breakdown%s: 2x md5 + 2x fir2dim, %d packets, NReg=%d\n\n", label, packets, pressureNReg)
		row := func(name string, ns int64) {
			fmt.Printf("  %-22s %12s  %5.1f%%\n", name, time.Duration(ns), 100*float64(ns)/float64(total.Nanoseconds()))
		}
		row("analysis (build)", ph.BuildNS)
		row("estimate: merge", ph.MergeNS)
		row("estimate: repair", ph.RepairNS)
		row("chain coloring", ph.ColorNS)
		row("rewrite", ph.RewriteNS)
		row("rewrite (cached)", ph.RewriteCachedNS)
		row("other (greedy loop &c)", total.Nanoseconds()-ph.TotalNS())
		fmt.Printf("  %-22s %12s\n\n", "total", total)
		fmt.Printf("  chain steps: %d   candidate trials: %d   solve-cache hit rate: %.1f%%\n",
			ph.ChainSteps, ph.Trials, 100*alloc.SolveCache.HitRate())
		return alloc, total, nil
	}
	cold, coldNS, err := runOnce(mapLabel(warm, " (cold)"))
	if err != nil {
		return err
	}
	if !warm {
		return nil
	}
	fmt.Println()
	hot, warmNS, err := runOnce(" (warm)")
	if err != nil {
		return err
	}
	for i, t := range hot.Threads {
		if t.F.Format() != cold.Threads[i].F.Format() {
			return fmt.Errorf("warm thread %d rewrite differs from cold", i)
		}
	}
	st := cache.Stats()
	fmt.Printf("\n  func cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
	if rewrites != nil {
		rst := rewrites.Stats()
		fmt.Printf("  rewrite cache: %d hits, %d reloc hits, %d misses, %d entries\n",
			rst.Hits, rst.RelocHits, rst.Misses, rst.Entries)
	}
	fmt.Printf("  warm speedup: %.1fx (%s -> %s), rewrites bit-identical\n",
		float64(coldNS)/float64(warmNS), coldNS.Round(time.Microsecond), warmNS.Round(time.Microsecond))
	if maxRWShare > 0 {
		share := float64(hot.Phases.RewriteNS+hot.Phases.RewriteCachedNS) / float64(warmNS.Nanoseconds())
		if share > maxRWShare {
			return fmt.Errorf("warm rewrite share %.1f%% exceeds -max-warm-rewrite-share %.1f%%",
				100*share, 100*maxRWShare)
		}
		fmt.Printf("  warm rewrite share: %.1f%% (gate: <= %.1f%%)\n", 100*share, 100*maxRWShare)
	}
	return nil
}

func mapLabel(cond bool, s string) string {
	if cond {
		return s
	}
	return ""
}
