// Package experiments regenerates every table and figure of the paper's
// evaluation (§9) on the npra substrate:
//
//	Table 1   — benchmark properties (static + simulated);
//	Figure 14 — SRA: registers used with sharing vs. standalone allocation;
//	Table 2   — move-insertion overhead at the minimal register bounds;
//	Table 3   — ARA scenarios: cycles and context switches, baseline
//	            spilling vs. cross-thread sharing.
//
// plus the ablations DESIGN.md calls out. Each experiment returns
// structured rows (so tests can assert the result *shape* the paper
// reports) and renders to text for cmd/npbench.
package experiments

import (
	"context"
	"fmt"
	"time"

	"npra/internal/bench"
	"npra/internal/chaitin"
	"npra/internal/core"
	"npra/internal/ir"
	"npra/internal/parallel"
	"npra/internal/sim"
)

// Machine-wide constants mirroring the IXP1200: 4 threads per PU, 128
// GPRs, so the baseline toolchain hands each thread 32 registers.
const (
	NThreads     = 4
	NReg         = 128
	BaselineRegs = NReg / NThreads
)

// DefaultPackets is the number of packets simulated per thread.
const DefaultPackets = 64

// workers bounds the experiment fan-out (one benchmark, scenario or
// sweep point per task) and is threaded through to core.Config.Workers.
// 0 means runtime.GOMAXPROCS(0). Results are identical for every value;
// see the determinism tests.
var workers = 0

// SetWorkers sets the fan-out width for all experiments in this package
// (n <= 0 restores the default, one worker per CPU). Not safe to call
// concurrently with a running experiment.
func SetWorkers(n int) {
	if n <= 0 {
		n = 0
	}
	workers = n
}

// timeout is the per-allocation deadline applied to every core
// allocator invocation in this package; 0 means none.
var timeout time.Duration

// SetTimeout sets a per-allocation deadline for the experiments
// (d <= 0 disables it). When a deadline expires the core allocator
// degrades to the static partition; the experiments treat that as an
// error rather than silently reporting fallback numbers as the paper's.
// Not safe to call concurrently with a running experiment.
func SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	timeout = d
}

// allocCtx returns the context every core allocation runs under.
func allocCtx() (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

// baselineThreads allocates one function per hardware thread with the
// baseline Chaitin allocator in its fixed 32-register partition and
// returns simulator threads (no register protection needed — partitions
// are disjoint by construction) plus the per-thread allocation results.
func baselineThreads(funcs []*ir.Func) ([]*sim.Thread, []*chaitin.Result, error) {
	var threads []*sim.Thread
	var results []*chaitin.Result
	for i, f := range funcs {
		phys := make([]ir.Reg, BaselineRegs)
		for k := range phys {
			phys[k] = ir.Reg(i*BaselineRegs + k)
		}
		res, err := chaitin.Allocate(f, chaitin.Options{
			Phys:        phys,
			SpillBase:   bench.SpillBase + int64(0), // tid-relative via stride
			SpillStride: bench.SpillStride,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("baseline thread %d (%s): %w", i, f.Name, err)
		}
		threads = append(threads, &sim.Thread{
			F:         res.F,
			ProtectLo: i * BaselineRegs,
			ProtectHi: (i + 1) * BaselineRegs,
		})
		results = append(results, res)
	}
	return threads, results, nil
}

// sharingThreads allocates the functions with the paper's inter-thread
// allocator and returns simulator threads with private-range protection
// armed, plus the allocation.
func sharingThreads(funcs []*ir.Func) ([]*sim.Thread, *core.Allocation, error) {
	ctx, cancel := allocCtx()
	defer cancel()
	alloc, err := core.AllocateARACtx(ctx, funcs, core.Config{NReg: NReg, Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	if alloc.Degraded {
		return nil, nil, fmt.Errorf(
			"allocation degraded to the static partition (%v); raise -timeout to measure true sharing", alloc.Cause)
	}
	if err := alloc.Verify(); err != nil {
		return nil, nil, fmt.Errorf("allocation failed verification: %w", err)
	}
	var threads []*sim.Thread
	for _, t := range alloc.Threads {
		threads = append(threads, &sim.Thread{
			F:         t.F,
			ProtectLo: t.PrivBase,
			ProtectHi: t.PrivBase + t.PR,
		})
	}
	return threads, alloc, nil
}

func runSim(threads []*sim.Thread) (*sim.Result, error) {
	return sim.Run(threads, sim.Config{
		NReg:     NReg,
		MemWords: bench.MemWords,
	})
}

// mapBenches runs fn once per paper benchmark on the experiment worker
// pool and returns the results in bench.Paper() order (the order the
// tables print); the extra service kernels stay out of the paper's
// tables. Each call gets its own benchmark; fn must not touch shared
// mutable state.
func mapBenches[T any](fn func(b *bench.Benchmark) (T, error)) ([]T, error) {
	all := bench.Paper()
	return parallel.MapErr(context.Background(), workers, len(all), func(i int) (T, error) {
		return fn(all[i])
	})
}

func genCopies(b *bench.Benchmark, n, npkts int) []*ir.Func {
	out := make([]*ir.Func, n)
	for i := range out {
		out[i] = b.Gen(npkts)
	}
	return out
}
