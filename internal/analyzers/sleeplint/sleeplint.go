// Package sleeplint enforces the cancellation invariant the resilience
// work established (PR 7): a wait inside a retry or poll loop must be
// interruptible. A bare time.Sleep (or a bare <-time.After receive)
// inside a for loop holds its goroutine hostage for the full duration —
// the enclosing context can expire, the server can start draining, and
// the loop only notices after the nap. Every loop wait must instead go
// through a time.Timer in a select that also watches ctx.Done() (the
// sleepCtx pattern in internal/resilience and the chaos proxy).
//
// The invariant is scoped to loops: a one-shot time.Sleep in straight-
// line code (e.g. a Delay-mode fault injection with a nil ctx) is not a
// poll loop and is left to judgment. Waits inside function literals are
// attributed to the literal, not the loop launching it — a goroutine
// spawned per iteration is not itself the retry loop. Justified
// exceptions use //lint:ignore sleeplint as usual.
package sleeplint

import (
	"go/ast"
	"go/types"

	"npra/internal/analyzers/anz"
)

// Analyzer is the sleeplint pass.
var Analyzer = &anz.Analyzer{
	Name: "sleeplint",
	Doc: "flags bare time.Sleep / <-time.After waits inside for loops; loop waits must " +
		"select on ctx.Done() (timer+select) so retries and polls stay cancellable",
	Run: run,
}

func run(pass *anz.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walk(pass, fd.Body, false)
		}
	}
	return nil
}

// walk traverses a statement tree tracking whether the current node is
// inside a for/range loop of the *same function*. Function literals
// reset the flag: their bodies run on their own goroutine/call and are
// judged by their own loops.
func walk(pass *anz.Pass, n ast.Node, inLoop bool) {
	switch s := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		walkChildren(pass, s.Body, true)
		return
	case *ast.RangeStmt:
		walkChildren(pass, s.Body, true)
		return
	case *ast.FuncLit:
		walkChildren(pass, s.Body, false)
		return
	case *ast.SelectStmt:
		// Waits inside a select are exactly the fix this analyzer asks
		// for; whether ctx.Done() is among the cases is visible enough in
		// review once the wait is select-shaped. Don't descend into the
		// channel expressions, but do check each case body.
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				for _, st := range cc.Body {
					walk(pass, st, inLoop)
				}
			}
		}
		return
	case *ast.CallExpr:
		if inLoop && isTimePkgCall(pass, s, "Sleep") {
			pass.Reportf(s.Pos(), "time.Sleep inside a loop cannot be cancelled: select on a time.Timer and ctx.Done() instead (see internal/resilience sleepCtx)")
		}
	case *ast.UnaryExpr:
		// <-time.After(d) as a bare wait: same hostage problem plus a
		// leaked timer per iteration.
		if inLoop {
			if call, ok := s.X.(*ast.CallExpr); ok && isTimePkgCall(pass, call, "After") {
				pass.Reportf(s.Pos(), "bare <-time.After inside a loop cannot be cancelled (and leaks a timer per iteration): select on a time.Timer and ctx.Done() instead")
			}
		}
	}
	walkChildren(pass, n, inLoop)
}

// walkChildren applies walk to n's immediate children with the given
// loop flag.
func walkChildren(pass *anz.Pass, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		walk(pass, child, inLoop)
		return false
	})
}

// isTimePkgCall reports whether call is time.<name>(...).
func isTimePkgCall(pass *anz.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}
