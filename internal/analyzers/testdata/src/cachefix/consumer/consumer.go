// Fixture for the cachealias analyzer: consumers of the function cache
// must not keep *intra.Piece/Context/Allocator pointers past the
// checkin that returns the allocator to the cache.
package consumer

import "cachefix/intra"

// UseAfterCheckin is the bug class: the allocator is used after its
// checkin handed it to the cache.
func UseAfterCheckin(src *intra.Source) int {
	al, checkin, err := src.Checkout()
	if err != nil {
		return 0
	}
	cost := al.Solve(4, 2)
	checkin(true)
	return cost + al.Rewrite(4, 2) // want `use of al bound before the checkin`
}

// PieceAfterCheckin aliases a piece across the checkin.
func PieceAfterCheckin(src *intra.Source) int {
	al, checkin, err := src.Checkout()
	if err != nil {
		return 0
	}
	p := al.Piece(0)
	checkin(true)
	return p.Color // want `use of p bound before the checkin`
}

// DeferredCheckin is the idiomatic discipline: the deferred checkin
// runs after every use in the body, so nothing is flagged.
func DeferredCheckin(src *intra.Source) int {
	al, checkin, err := src.Checkout()
	if err != nil {
		return 0
	}
	ok := false
	defer func() { checkin(ok) }()
	cost := al.Solve(4, 2) + al.Rewrite(4, 2)
	ok = true
	return cost
}

// keep outlives the call; storing a cache-owned pointer into it when a
// checkin follows is flagged.
type keep struct {
	ctx *intra.Context
	val intra.Piece
}

// RetainContext stores an alias the checkin invalidates: flagged.
func RetainContext(k *keep, src *intra.Source) {
	al, checkin, err := src.Checkout()
	if err != nil {
		return
	}
	k.ctx = al.Context() // want `\*intra\.Context stored into a structure that survives the later checkin`
	checkin(true)
}

// RetainValue copies the piece data instead of aliasing it: allowed.
func RetainValue(k *keep, src *intra.Source) {
	al, checkin, err := src.Checkout()
	if err != nil {
		return
	}
	k.val = *al.Piece(0)
	checkin(true)
}

// RebindAfterCheckin checks a second allocator out after the first went
// back: the rebinding resets the clock, so the later uses are fine.
func RebindAfterCheckin(src *intra.Source) int {
	al, checkin, err := src.Checkout()
	if err != nil {
		return 0
	}
	cost := al.Solve(4, 2)
	checkin(true)
	al2, checkin2, err := src.Checkout()
	if err != nil {
		return 0
	}
	defer func() { checkin2(true) }()
	return cost + al2.Solve(2, 4)
}
