package sim

import (
	"fmt"
	"strings"
	"testing"

	"npra/internal/core"
	"npra/internal/ir"
)

func TestExactCycleAccounting(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 0
	load v1, [64]
	addi v2, v1, 1
	store [68], v2
	halt`)
	res, err := Run([]*Thread{{F: f}}, Config{MemLatency: 20})
	if err != nil {
		t.Fatal(err)
	}
	// set(1) + load(1) + 20 idle-wait + addi(1) + store(1) + 20 + halt(1).
	if res.Cycles != 45 {
		t.Errorf("Cycles = %d, want 45", res.Cycles)
	}
	if res.Idle != 40 {
		t.Errorf("Idle = %d, want 40", res.Idle)
	}
	ts := res.Threads[0]
	if ts.Instrs != 5 || ts.BusyCycles != 5 {
		t.Errorf("stats = %+v", ts)
	}
	if ts.CTX != 2 {
		t.Errorf("CTX = %d, want 2", ts.CTX)
	}
	if !ts.Halted {
		t.Errorf("not halted")
	}
	if res.Mem[68/4] != 1 {
		t.Errorf("store effect missing: %d", res.Mem[68/4])
	}
}

func TestLatencyHiding(t *testing.T) {
	// One thread doing loads in a loop wastes the CPU; four threads doing
	// the same hide most of the memory latency (the architecture's whole
	// point). Utilization must rise substantially.
	src := `
a:
	set v0, 0
	set v2, 50
loop:
	load v1, [v0+0]
	add v0, v0, v1
	andi v0, v0, 1023
	iter
	subi v2, v2, 1
	bnz v2, loop
	halt`
	one, err := Run([]*Thread{{F: ir.MustParse(src)}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var four []*Thread
	for i := 0; i < 4; i++ {
		four = append(four, &Thread{F: ir.MustParse(src)})
	}
	multi, err := Run(four, Config{})
	if err != nil {
		t.Fatal(err)
	}
	u1, u4 := one.Utilization(), multi.Utilization()
	if u1 > 0.5 {
		t.Errorf("single-thread utilization %.2f unexpectedly high", u1)
	}
	if u4 < 2.5*u1 {
		t.Errorf("multithreading hid too little latency: %.2f vs %.2f", u4, u1)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// The register file is shared hardware state: unallocated threads must
	// use disjoint registers or they clobber each other (exactly the
	// hazard the allocator exists to manage).
	srcA := `
a:
	set v0, 20
loop:
	ctx
	iter
	subi v0, v0, 1
	bnz v0, loop
	halt`
	srcB := strings.ReplaceAll(srcA, "v0", "v5")
	threads := []*Thread{{F: ir.MustParse(srcA)}, {F: ir.MustParse(srcB)}}
	res, err := Run(threads, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Threads[0], res.Threads[1]
	if a.Iters != 20 || b.Iters != 20 {
		t.Fatalf("iters = %d, %d", a.Iters, b.Iters)
	}
	diff := a.BusyCycles - b.BusyCycles
	if diff < -4 || diff > 4 {
		t.Errorf("unfair sharing: busy %d vs %d", a.BusyCycles, b.BusyCycles)
	}
}

func TestProtectionViolationDetected(t *testing.T) {
	victim := ir.MustParse(`
a:
	set r0, 7
loop:
	ctx
	br loop`)
	intruder := ir.MustParse(`
a:
	ctx
	set r0, 99   ; writes r0, inside the victim's private range
	halt`)
	_, err := Run(
		[]*Thread{
			{F: victim, ProtectLo: 0, ProtectHi: 4},
			{F: intruder},
		},
		Config{MaxCycles: 10000},
	)
	if err == nil {
		t.Fatal("clobber not detected")
	}
	if !strings.Contains(err.Error(), "private range") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSharedRegisterIsSafeWhenDead(t *testing.T) {
	// Both threads use r2 but never across their own context switches —
	// the paper's legal sharing pattern. Protected ranges cover r0/r1.
	t0 := ir.MustParse(`
a:
	set v9, 10
loop:
	set v2, 1
	addi v2, v2, 1
	store [v2+0], v9   ; CSB: v2 dead after, v9 (private) survives
	subi v9, v9, 1
	iter
	bnz v9, loop
	halt`)
	t1 := ir.MustParse(`
a:
	set v9, 10
loop:
	set v2, 5
	muli v2, v2, 3
	store [v2+16], v9
	subi v9, v9, 1
	iter
	bnz v9, loop
	halt`)
	alloc, err := core.AllocateARA([]*ir.Func{t0, t1}, core.Config{NReg: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatal(err)
	}
	if alloc.SGR == 0 {
		t.Fatalf("expected shared registers in this workload")
	}
	var threads []*Thread
	for _, th := range alloc.Threads {
		threads = append(threads, &Thread{
			F: th.F, ProtectLo: th.PrivBase, ProtectHi: th.PrivBase + th.PR,
		})
	}
	res, err := Run(threads, Config{NReg: 8})
	if err != nil {
		t.Fatalf("sharing flagged as unsafe: %v", err)
	}
	for i, ts := range res.Threads {
		if !ts.Halted || ts.Iters != 10 {
			t.Errorf("thread %d: %+v", i, ts)
		}
	}
}

func TestStopIters(t *testing.T) {
	src := `
a:
	set v0, 0
loop:
	addi v0, v0, 1
	iter
	br loop`
	res, err := Run([]*Thread{{F: ir.MustParse(src)}}, Config{StopIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Threads[0]
	if ts.Iters < 100 || ts.Iters > 110 {
		t.Errorf("Iters = %d, want ~100", ts.Iters)
	}
	if ts.CyclesPerIter() < 2 || ts.CyclesPerIter() > 4 {
		t.Errorf("CyclesPerIter = %.2f, want ~3", ts.CyclesPerIter())
	}
}

func TestMaxCyclesBound(t *testing.T) {
	res, err := Run([]*Thread{{F: ir.MustParse("a:\n br a")}}, Config{MaxCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 500 || res.Cycles > 501 {
		t.Errorf("Cycles = %d, want ~500", res.Cycles)
	}
	if res.Threads[0].Halted {
		t.Errorf("spin loop reported halted")
	}
}

func TestSwitchLatencyConfig(t *testing.T) {
	src := `
a:
	set v0, 50
loop:
	ctx
	subi v0, v0, 1
	bnz v0, loop
	halt`
	fast, err := Run([]*Thread{{F: ir.MustParse(src)}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run([]*Thread{{F: ir.MustParse(src)}}, Config{SwitchLatency: 5})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles <= fast.Cycles {
		t.Errorf("switch latency had no effect: %d vs %d", slow.Cycles, fast.Cycles)
	}
}

// TestLoadDeliversAtResume pins the transfer-register semantics: a load's
// destination register may be *shared* with other threads (it is not live
// across its own context switch), so the value must land when the loading
// thread resumes — never asynchronously at memory-completion time, which
// would clobber the register while another thread legitimately owns it.
func TestLoadDeliversAtResume(t *testing.T) {
	// Thread A loads mem[16] into shared r2.
	a := ir.MustParse(`
func a
entry:
	set r0, 7
	store [16], r0
	load r2, [16]     ; r2 is shared; A blocks ~20 cycles
	add r1, r2, r0
	store [20], r1
	halt`)
	// Thread B owns r2 during A's wait, in one long non-switch region so
	// A's memory completion fires mid-region.
	bsrc := "func b\nentry:\n\tctx\n\tctx\n\tset r2, 100\n"
	for i := 0; i < 30; i++ { // outlast the 20-cycle memory latency
		bsrc += "\taddi r5, r5, 1\n"
	}
	bsrc += "\taddi r2, r2, 1\n\tstore [24], r2\n\thalt\n"
	b := ir.MustParse(bsrc)

	res, err := Run([]*Thread{{F: a}, {F: b}}, Config{MemLatency: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[24/4]; got != 101 {
		t.Errorf("thread B's shared register was clobbered mid-region: got %d, want 101", got)
	}
	if got := res.Mem[20/4]; got != 14 {
		t.Errorf("thread A's load result wrong: got %d, want 14", got)
	}
}

// TestMemoryContention: with channel occupancy on, concurrent memory
// operations serialize — four threads' latency hiding degrades and the
// run takes longer than with infinite bandwidth.
func TestMemoryContention(t *testing.T) {
	// Threads use disjoint registers (the file is shared hardware state).
	src := `
a:
	set vA, 40
loop:
	load vB, [vA+0]
	add vB, vB, vA
	store [vA+0], vB
	iter
	subi vA, vA, 1
	bnz vA, loop
	halt`
	mk := func() []*Thread {
		var out []*Thread
		for i := 0; i < 4; i++ {
			body := strings.ReplaceAll(src, "vA", fmt.Sprintf("v%d", i*2))
			body = strings.ReplaceAll(body, "vB", fmt.Sprintf("v%d", i*2+1))
			out = append(out, &Thread{F: ir.MustParse(body)})
		}
		return out
	}
	free, err := Run(mk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	contended, err := Run(mk(), Config{MemOccupancy: 10})
	if err != nil {
		t.Fatal(err)
	}
	if contended.Cycles <= free.Cycles {
		t.Errorf("contention had no effect: %d vs %d cycles", contended.Cycles, free.Cycles)
	}
	// Results must not change, only timing.
	for i := 0; i < 64; i++ {
		if free.Mem[i] != contended.Mem[i] {
			t.Fatalf("contention changed results at word %d", i)
		}
	}
	// Single thread with occupancy < latency is unaffected (no overlap).
	single := strings.ReplaceAll(strings.ReplaceAll(src, "vA", "v0"), "vB", "v1")
	one, err := Run([]*Thread{{F: ir.MustParse(single)}}, Config{MemOccupancy: 10})
	if err != nil {
		t.Fatal(err)
	}
	oneFree, err := Run([]*Thread{{F: ir.MustParse(single)}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Cycles != oneFree.Cycles {
		t.Errorf("single-thread cycles changed under contention: %d vs %d", one.Cycles, oneFree.Cycles)
	}
}

// TestPriorityScheduling: under the priority policy thread 0 gets the CPU
// whenever ready, so its per-iteration latency beats the round-robin run,
// at the other threads' expense.
func TestPriorityScheduling(t *testing.T) {
	// Enough compute per iteration that the CPU, not memory, is the
	// bottleneck — otherwise every policy looks the same.
	burst := strings.Repeat("\tadd vB, vB, vA\n", 20)
	src := "a:\n\tset vA, 40\nloop:\n\tload vB, [vA+0]\n" + burst +
		"\tstore [vA+64], vB\n\titer\n\tsubi vA, vA, 1\n\tbnz vA, loop\n\thalt"
	mk := func() []*Thread {
		var out []*Thread
		for i := 0; i < 4; i++ {
			body := strings.ReplaceAll(src, "vA", fmt.Sprintf("v%d", i*2))
			body = strings.ReplaceAll(body, "vB", fmt.Sprintf("v%d", i*2+1))
			out = append(out, &Thread{F: ir.MustParse(body)})
		}
		return out
	}
	rr, err := Run(mk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	pri, err := Run(mk(), Config{Sched: SchedPriority})
	if err != nil {
		t.Fatal(err)
	}
	if pri.Threads[0].CyclesPerIter() >= rr.Threads[0].CyclesPerIter() {
		t.Errorf("priority did not help thread 0: %.1f vs %.1f",
			pri.Threads[0].CyclesPerIter(), rr.Threads[0].CyclesPerIter())
	}
	if pri.Threads[3].CyclesPerIter() <= rr.Threads[3].CyclesPerIter() {
		t.Errorf("priority did not cost thread 3: %.1f vs %.1f",
			pri.Threads[3].CyclesPerIter(), rr.Threads[3].CyclesPerIter())
	}
	// Results identical either way.
	for i := 0; i < 64; i++ {
		if rr.Mem[i] != pri.Mem[i] {
			t.Fatalf("scheduling changed results at word %d", i)
		}
	}
}
