package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzServeRequest throws arbitrary bytes at the request path and
// checks the panicfree contract at the HTTP boundary: the decoder and
// validators never panic, every response is JSON, every non-2xx body is
// a typed WireError, and only the documented status codes appear.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"nreg":32,"threads":[{"progen":{"seed":1}}]}`,
		`{"nreg":32,"threads":[{"asm":"func t\nentry:\n\thalt\n"}]}`,
		`{"mode":"sra","nreg":64,"nthd":4,"threads":[{"progen":{"seed":2}}]}`,
		`{"nreg":32,"threads":[{"progen":{"seed":-9223372036854775808,"max_depth":4,"max_body_len":32,"max_trip_cnt":8,"max_vars":32,"csb_density":1,"store_window":4096,"store_base":1048576}}]}`,
		`{"nreg":1024,"threads":[{"progen":{"seed":3}}],"workers":99,"timeout_ms":600000,"dump":true}`,
		`{"nreg":32,"threads":[{"progen":{"seed":0.5}}]}`,
		`{"nreg":32,"threads":[{"asm":"\x00\xff"}]}`,
		`{"nreg":-1,"threads":[{"progen":{"seed":1}}]}`,
		`{"nreg":32,"threads":[{"progen":null}]}`,
		`{"nreg":32,"threads":[{}]} trailing`,
		"{\"nreg\":32,\"threads\":[{\"asm\":\"" + strings.Repeat("A", 4096) + "\"}]}",
		// Adversarial generator families through the wire, including an
		// unknown shape (must reject, not panic) and a heterogeneous
		// profile pairing byte-identical to the corpus aliasing seeds.
		`{"nreg":32,"threads":[{"progen":{"seed":4,"shape":"trampoline"}}]}`,
		`{"nreg":16,"threads":[{"progen":{"seed":5,"shape":"boundary","max_body_len":4}}]}`,
		`{"nreg":48,"threads":[{"progen":{"seed":6,"shape":"palette"}},{"progen":{"seed":6,"shape":"nearcollision"}}]}`,
		`{"nreg":32,"threads":[{"progen":{"seed":7,"shape":"zigzag"}}]}`,
		`{"threads":[{"progen":{"seed":8,"shape":"nearcollision"}}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	// One server for the whole fuzz run; a tight deadline keeps engine
	// work from dominating the fuzz loop.
	srv := New(Config{DefaultTimeout: 2 * time.Second, MaxTimeout: 2 * time.Second, MaxBodyBytes: 64 << 10})
	handler := srv.Handler()
	f.Cleanup(func() { srv.Close() })

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusUnprocessableEntity: true,
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true,
		http.StatusGatewayTimeout:      true,
	}

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/allocate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic, whatever body holds

		if !allowed[rec.Code] {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
		blob := rec.Body.Bytes()
		if rec.Code == http.StatusOK {
			var out Response
			if err := json.Unmarshal(blob, &out); err != nil {
				t.Fatalf("200 body is not a Response: %v (%s)", err, blob)
			}
			return
		}
		var we struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(blob, &we); err != nil {
			t.Fatalf("%d body is not a WireError: %v (%s)", rec.Code, err, blob)
		}
		if we.Error == "" || we.Kind == "" {
			t.Fatalf("%d body missing error/kind: %s", rec.Code, blob)
		}
	})
}
