package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"npra/internal/bench"
	"npra/internal/ir"
)

// table3Workload is scenario S1 of the paper's Table 3 — the heaviest
// realistic input the allocator faces (md5 alone needs > 32 registers).
func table3Workload(t testing.TB, npkts int) []*ir.Func {
	t.Helper()
	var funcs []*ir.Func
	for _, name := range []string{"md5", "md5", "fir2dim", "fir2dim"} {
		b, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		funcs = append(funcs, b.Gen(npkts))
	}
	return funcs
}

// A 1ms deadline on a Table 3-sized workload cannot finish the balancing
// allocation (a single md5 Solve takes far longer) — the contract is a
// prompt, verified, Degraded allocation whose cause wraps ErrTimeout.
// NReg is sized so the even static partition (NReg/4 registers each) can
// hold md5 without spilling; at the IXP's 128 the fallback would be
// infeasible and the timeout would surface as an error instead.
func TestDeadlineDegradesToStaticPartition(t *testing.T) {
	funcs := table3Workload(t, 32)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	alloc, err := AllocateARACtx(ctx, funcs, Config{NReg: 256})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("AllocateARACtx: %v", err)
	}
	if !alloc.Degraded {
		t.Fatal("allocation not degraded under a 1ms deadline")
	}
	if !errors.Is(alloc.Cause, ErrTimeout) {
		t.Errorf("cause = %v, want ErrTimeout in the chain", alloc.Cause)
	}
	if err := alloc.Verify(); err != nil {
		t.Errorf("degraded allocation failed verification: %v", err)
	}
	// Even static partition: every thread gets NReg/Nthd private, SR 0.
	for i, th := range alloc.Threads {
		if th.PR != 256/len(funcs) || th.SR != 0 {
			t.Errorf("thread %d: PR=%d SR=%d, want PR=%d SR=0", i, th.PR, th.SR, 256/len(funcs))
		}
	}
	if alloc.SGR != 0 {
		t.Errorf("SGR = %d, want 0 in the static partition", alloc.SGR)
	}
	// "Prompt" = bounded by one Solve per distinct body plus rewrites,
	// nowhere near a hang.
	if elapsed > 2*time.Minute {
		t.Errorf("degradation took %v", elapsed)
	}
}

// An infeasible fallback (md5 needs more than 128/4 = 32 registers
// without spilling) turns the same timeout into a typed error — never a
// silent hang or an unverified result.
func TestDeadlineWithInfeasibleFallback(t *testing.T) {
	funcs := table3Workload(t, 32)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	alloc, err := AllocateARACtx(ctx, funcs, Config{NReg: 128})
	if err == nil {
		if !alloc.Degraded {
			t.Skip("allocation finished inside 1ms — machine too fast for this test")
		}
		t.Fatalf("degraded allocation %+v, want error (md5 cannot fit 32 registers)", alloc)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout in the chain", err)
	}
}

// A canceled context (not a deadline) routes the same way.
func TestCancelDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	alloc, err := AllocateARACtx(ctx, table3Workload(t, 8), Config{NReg: 256})
	if err != nil {
		t.Fatalf("AllocateARACtx: %v", err)
	}
	if !alloc.Degraded || !errors.Is(alloc.Cause, ErrTimeout) {
		t.Errorf("Degraded=%v Cause=%v, want degraded with ErrTimeout", alloc.Degraded, alloc.Cause)
	}
}

// SRA under an expired context degrades identically.
func TestDeadlineDegradesSRA(t *testing.T) {
	b, err := bench.Get("md5")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	alloc, err := AllocateSRACtx(ctx, b.Gen(32), 4, Config{NReg: 256})
	if err != nil {
		t.Fatalf("AllocateSRACtx: %v", err)
	}
	if !alloc.Degraded || !errors.Is(alloc.Cause, ErrTimeout) {
		t.Errorf("Degraded=%v Cause=%v, want degraded with ErrTimeout", alloc.Degraded, alloc.Cause)
	}
	if err := alloc.Verify(); err != nil {
		t.Errorf("degraded SRA allocation failed verification: %v", err)
	}
}

// Context plumbing must not perturb determinism: the allocation under a
// generous deadline is bit-identical serial vs parallel, and identical
// to the no-context entry points.
func TestCtxDeterminismAcrossWorkers(t *testing.T) {
	mk := func() []*ir.Func { return table3Workload(t, 8) }
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	ref, err := AllocateARACtx(ctx, mk(), Config{NReg: 56, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Degraded {
		t.Fatal("reference allocation degraded under a 10-minute deadline")
	}
	noCtx, err := AllocateARA(mk(), Config{NReg: 56, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range []*Allocation{noCtx} {
		compareAllocs(t, ref, alt)
	}
	for _, workers := range []int{2, 8} {
		alt, err := AllocateARACtx(ctx, mk(), Config{NReg: 56, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		compareAllocs(t, ref, alt)
	}
}

func compareAllocs(t *testing.T, a, b *Allocation) {
	t.Helper()
	if a.SGR != b.SGR || len(a.Threads) != len(b.Threads) {
		t.Fatalf("shape differs: SGR %d/%d threads %d/%d", a.SGR, b.SGR, len(a.Threads), len(b.Threads))
	}
	for i := range a.Threads {
		x, y := a.Threads[i], b.Threads[i]
		if x.PR != y.PR || x.SR != y.SR || x.Cost != y.Cost || x.PrivBase != y.PrivBase {
			t.Errorf("thread %d: (PR,SR,Cost,Base) = (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
				i, x.PR, x.SR, x.Cost, x.PrivBase, y.PR, y.SR, y.Cost, y.PrivBase)
		}
		if x.F.Format() != y.F.Format() {
			t.Errorf("thread %d: rewritten code differs", i)
		}
	}
}
