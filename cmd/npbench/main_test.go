package main

import "testing"

func TestList(t *testing.T) {
	if err := run(0, 0, false, false, false, true, false, false, 8, 1024, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSingleTables(t *testing.T) {
	if err := run(1, 0, false, false, false, false, false, false, 8, 1024, 0); err != nil {
		t.Errorf("table 1: %v", err)
	}
	if err := run(2, 0, false, false, false, false, false, false, 8, 1024, 0); err != nil {
		t.Errorf("table 2: %v", err)
	}
	if err := run(0, 14, false, false, false, false, false, false, 8, 1024, 0); err != nil {
		t.Errorf("figure 14: %v", err)
	}
}

func TestPhases(t *testing.T) {
	if err := run(0, 0, false, false, false, false, true, false, 8, 1024, 0); err != nil {
		t.Errorf("phases: %v", err)
	}
}

func TestPhasesWarm(t *testing.T) {
	if err := run(0, 0, false, false, false, false, true, true, 8, 1024, 0); err != nil {
		t.Errorf("phases -funccache: %v", err)
	}
}

func TestNothingToDo(t *testing.T) {
	if err := run(0, 0, false, false, false, false, false, false, 8, 1024, 0); err == nil {
		t.Errorf("no-op invocation accepted")
	}
}

// TestPhasesWarmRewriteGate pins the ISSUE-8 acceptance shape: with the
// rewrite tier on, the warm rewrite share passes the documented 40%
// ceiling (measured ~0.4%); with the tier disabled the uncached rewrite
// costs ~20% of warm wall-clock at this packet count, so a 10% ceiling
// must reject it while still leaving the cached share a 25x margin.
func TestPhasesWarmRewriteGate(t *testing.T) {
	if err := run(0, 0, false, false, false, false, true, true, 8, 1024, 0.4); err != nil {
		t.Errorf("phases -funccache with rewrite tier: %v", err)
	}
	if err := run(0, 0, false, false, false, false, true, true, 8, -1, 0.1); err == nil {
		t.Error("warm-rewrite-share gate passed with the rewrite tier disabled")
	}
}
