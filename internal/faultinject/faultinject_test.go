package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled after Reset")
	}
	if err := Fire(context.Background(), SiteSolve); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SiteSolve, Plan{Mode: Error})
	if !Enabled() {
		t.Fatal("not Enabled after Arm")
	}
	err := Fire(context.Background(), SiteSolve)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Other sites stay quiet.
	if err := Fire(context.Background(), SitePricing); err != nil {
		t.Errorf("unarmed site fired: %v", err)
	}
	h, f := Hits(SiteSolve)
	if h != 1 || f != 1 {
		t.Errorf("hits/fired = %d/%d, want 1/1", h, f)
	}
}

func TestPanicMode(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SitePricing, Plan{Mode: Panic})
	defer func() {
		r := recover()
		p, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T, want *InjectedPanic", r)
		}
		if p.Site != SitePricing {
			t.Errorf("panic site = %s", p.Site)
		}
	}()
	Fire(context.Background(), SitePricing)
	t.Fatal("Fire returned")
}

func TestAfterAndCount(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SiteFinalize, Plan{Mode: Error, After: 2, Count: 1})
	var errs int
	for i := 0; i < 5; i++ {
		if Fire(context.Background(), SiteFinalize) != nil {
			errs++
			if i != 2 {
				t.Errorf("fired on hit %d, want hit 2 only", i)
			}
		}
	}
	if errs != 1 {
		t.Errorf("fired %d times, want 1", errs)
	}
	h, f := Hits(SiteFinalize)
	if h != 5 || f != 1 {
		t.Errorf("hits/fired = %d/%d, want 5/1", h, f)
	}
}

func TestDelayModeHonorsContext(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SiteSolve, Plan{Mode: Delay, Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Fire(ctx, SiteSolve)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("Fire blocked %v past the deadline", el)
	}
}

func TestDelayModeNilContext(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SiteSolve, Plan{Mode: Delay, Delay: time.Millisecond})
	if err := Fire(nil, SiteSolve); err != nil {
		t.Fatalf("nil-ctx delay Fire = %v", err)
	}
}

func TestRearmAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	Arm(SiteVerify, Plan{Mode: Error})
	Arm(SiteVerify, Plan{Mode: Off}) // disarm via Off
	if Enabled() {
		t.Fatal("Enabled after disarming the only site")
	}
	if err := Fire(context.Background(), SiteVerify); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
}
