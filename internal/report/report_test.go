package report

import (
	"strings"
	"testing"

	"npra/internal/bench"
	"npra/internal/ir"
)

const src = `
func demo
entry:
	set v0, 8
loop:
	load v1, [v0+0]
	add v2, v0, v1
	store [v0+4], v2
	subi v0, v0, 1
	bnz v0, loop
	halt`

func TestText(t *testing.T) {
	out := Text(ir.MustParse(src))
	for _, want := range []string{
		"function demo", "instructions", "context switches",
		"live ranges", "NSRs", "RegPmax", "loops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "1 headers, max nesting 1") {
		t.Errorf("loop line wrong:\n%s", out)
	}
}

func TestDotWellFormed(t *testing.T) {
	f := ir.MustParse(src)
	for name, gen := range map[string]func(*ir.Func) string{
		"cfg": DotCFG, "gig": DotInterference, "nsr": DotNSR,
	} {
		out := gen(f)
		if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(out, "}\n") {
			t.Errorf("%s: not a digraph:\n%s", name, out)
		}
		if strings.Count(out, "{") != strings.Count(out, "}") {
			t.Errorf("%s: unbalanced braces", name)
		}
	}
}

func TestDotCFGLoopsMarked(t *testing.T) {
	out := DotCFG(ir.MustParse(src))
	if !strings.Contains(out, "loop depth 1") {
		t.Errorf("loop depth missing:\n%s", out)
	}
}

func TestDotInterferenceBoundaryMarked(t *testing.T) {
	out := DotInterference(ir.MustParse(src))
	if !strings.Contains(out, "boundary") {
		t.Errorf("boundary nodes not marked:\n%s", out)
	}
	// Two values live across the same ctx form a BIG edge (bold).
	two := ir.MustParse(`
a:
	set v0, 1
	set v1, 2
	ctx
	add v2, v0, v1
	store [0], v2
	halt`)
	out2 := DotInterference(two)
	if !strings.Contains(out2, "penwidth=2") {
		t.Errorf("BIG edges not bolded:\n%s", out2)
	}
}

func TestAllBenchmarksRender(t *testing.T) {
	for _, b := range bench.All() {
		f := b.Gen(4)
		if out := Text(f); !strings.Contains(out, b.Name) {
			t.Errorf("%s: text report broken", b.Name)
		}
		_ = DotCFG(f)
		_ = DotInterference(f)
		_ = DotNSR(f)
	}
}
