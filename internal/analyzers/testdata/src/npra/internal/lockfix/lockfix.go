// Package lockfix is the lockorder fixture suite: for every bug class
// the analyzer knows — order cycles (direct and through one level of
// calls), dynamic calls under a lock, unbalanced lock/unlock paths,
// unlock-while-not-held, double acquisition, and the RLock→Lock
// upgrade — one true positive and one near-miss negative that the
// analyzer must stay silent on. The package lives under an npra/ path
// so the one-level summary propagation (which ignores non-project
// callees) applies to its internal calls.
package lockfix

import "sync"

// A and B are the direct-cycle pair.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// funcAB and funcBA take the two locks in opposite orders: the classic
// deadlock, needing only one unlucky interleaving. The cycle is
// reported at the edge that closes it — the B→A acquisition below.
func funcAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.n++
	b.n++
}

func funcBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock-order cycle: .*A\.mu -> .*B\.mu -> .*A\.mu`
	defer a.mu.Unlock()
	a.n++
}

// C and D are the near miss: two callers, same nesting, consistent
// order — edges C→D only, no cycle.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func consistent1(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

func consistent2(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// E and F exercise the one-level summary propagation: callUnderE never
// touches F's lock textually, but calling lockF while holding E's lock
// contributes the E→F edge; closeEF's direct F→E edge then closes the
// cycle.
type E struct{ mu sync.Mutex }

type F struct {
	mu sync.Mutex
	n  int
}

func lockF(f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
}

func callUnderE(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockF(f)
}

func closeEF(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.mu.Lock() // want `lock-order cycle: .*E\.mu -> .*F\.mu -> .*E\.mu`
	defer e.mu.Unlock()
}

// leakOnBranch forgets the unlock on the early-return path; reported
// at the acquisition.
func leakOnBranch(a *A) {
	a.mu.Lock() // want `a\.mu is not released on every path to the end of leakOnBranch`
	if a.n > 0 {
		return
	}
	a.mu.Unlock()
}

// balancedBranch is the near miss: every path unlocks.
func balancedBranch(a *A) {
	a.mu.Lock()
	if a.n > 0 {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// unlockCold unlocks a mutex no path ever locked: a runtime panic.
func unlockCold(a *A) {
	a.mu.Unlock() // want `Unlock of a\.mu on a path where it cannot be held`
}

// guardedUnlock is the near miss — and the solver regression shape: a
// no-op early-return guard precedes the Lock, then both branches
// unlock. (A solver that stops propagating at identity-transfer entry
// blocks leaves every downstream fact empty and flags both unlocks.)
func guardedUnlock(a *A, ready bool) {
	if !ready {
		return
	}
	a.mu.Lock()
	if a.n > 0 {
		a.mu.Unlock()
		return
	}
	a.n++
	a.mu.Unlock()
}

// doubleLock reacquires a mutex already held on the same path.
func doubleLock(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `acquiring a\.mu while already held on this path`
	a.mu.Unlock()
}

// relockAfterUnlock is the near miss: sequential critical sections.
func relockAfterUnlock(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	a.mu.Lock()
	a.n--
	a.mu.Unlock()
}

// RW exercises the RWMutex upgrade rule.
type RW struct {
	mu sync.RWMutex
	n  int
}

func upgrade(r *RW) {
	r.mu.RLock()
	r.mu.Lock() // want `upgrading r\.mu from RLock to Lock deadlocks`
	r.mu.Unlock()
	r.mu.RUnlock()
}

// reacquireAsWriter is the near miss: the read lock is released before
// the write lock is taken.
func reacquireAsWriter(r *RW) {
	n := 0
	r.mu.RLock()
	n = r.n
	r.mu.RUnlock()
	r.mu.Lock()
	r.n = n + 1
	r.mu.Unlock()
}

// Hooked exercises the unknown-callee rule: hook is a function value
// the order graph cannot see through.
type Hooked struct {
	mu   sync.Mutex
	hook func()
	n    int
}

func callHookUnderLock(h *Hooked) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hook() // want `call through a function value or interface while holding h\.mu`
}

// hoistedHook is the near miss: snapshot the hook under the lock, call
// it outside the critical section.
func hoistedHook(h *Hooked) {
	h.mu.Lock()
	hook := h.hook
	h.mu.Unlock()
	hook()
}

// justified demonstrates suppression: the directive carries the
// reviewed reason, and no diagnostic survives.
func justified(h *Hooked) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:ignore lockorder hook is documented lock-free and must observe state mid-critical-section
	h.hook()
}
