// Package poolalias mechanically catches the scratch-pool aliasing bug
// class fixed in PR 3: intra's bestStep reuses pooled *Context scratch
// buffers via copyFrom, which rewrites the pooled Piece backing array
// in place — so any *intra.Piece pointer obtained BEFORE a
// copyFrom/Reset call is a dangling alias AFTER it (the PR-3 incident:
// coalesce left stale *Piece values in the compacted tail of a reused
// slice).
//
// Within each function of the intra package the pass flags, in source
// order:
//
//   - a use of a *Piece-typed local bound before a copyFrom/Reset call
//     that occurs between the binding and the use, and
//   - a *Piece value stored into a field, slice or map element (a
//     structure that survives the call) when a copyFrom/Reset follows
//     later in the same function.
//
// The check is intraprocedural and position-ordered, so a rebinding
// after the reuse point is fine; false positives (e.g. pieces taken
// from a context that is provably not the one being reset) carry a
// //lint:ignore poolalias justification.
package poolalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the poolalias pass.
var Analyzer = &anz.Analyzer{
	Name: "poolalias",
	Doc: "flags *intra.Piece pointers that survive a scratch-context copyFrom/Reset " +
		"— the PR-3 stale-alias bug class",
	Run: run,
}

// killNames are the methods that recycle a context's piece storage.
var killNames = map[string]bool{"copyFrom": true, "Reset": true}

func run(pass *anz.Pass) error {
	if !strings.HasSuffix(pass.Path, "/intra") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *anz.Pass, fd *ast.FuncDecl) {
	kills := killPositions(pass, fd)
	if len(kills) == 0 {
		return
	}

	// Locals bound to a *Piece: object -> binding positions (a local may
	// be rebound; each use is judged against its latest binding).
	bindings := make(map[types.Object][]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if !isPiecePtr(pass, as.Rhs[i]) {
				continue
			}
			switch l := lhs.(type) {
			case *ast.Ident:
				if obj := pass.Info.ObjectOf(l); obj != nil {
					bindings[obj] = append(bindings[obj], l.Pos())
				}
			case *ast.SelectorExpr, *ast.IndexExpr:
				// Stored into a surviving structure: unsafe if any
				// copyFrom/Reset follows in this function.
				if killAfter(kills, lhs.Pos()) {
					pass.Reportf(lhs.Pos(), "*Piece stored into a structure that survives a later %s in %s; the pointer dangles once the pooled backing is reused — copy the piece data instead of aliasing it", killNameAfter(pass, fd, kills, lhs.Pos()), fd.Name.Name)
				}
			}
		}
		return true
	})
	if len(bindings) == 0 {
		return
	}

	// Uses: flag ident uses whose latest binding precedes a kill that
	// precedes the use.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		binds, tracked := bindings[obj]
		if !tracked {
			return true
		}
		latest := token.NoPos
		for _, b := range binds {
			if b <= id.Pos() && b > latest {
				latest = b
			}
		}
		if latest == token.NoPos {
			return true
		}
		for _, k := range kills {
			if latest < k.pos && k.pos < id.Pos() {
				pass.Reportf(id.Pos(), "use of *Piece %s bound before the %s at line %d; the scratch-context reuse invalidates pooled piece pointers (PR-3 aliasing bug class) — rebind after the reuse or copy the data", id.Name, k.name, pass.Fset.Position(k.pos).Line)
				return true
			}
		}
		return true
	})
}

type kill struct {
	pos  token.Pos
	name string
}

func killPositions(pass *anz.Pass, fd *ast.FuncDecl) []kill {
	var kills []kill
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && killNames[sel.Sel.Name] {
			kills = append(kills, kill{pos: call.Pos(), name: sel.Sel.Name})
		}
		return true
	})
	return kills
}

func killAfter(kills []kill, pos token.Pos) bool {
	for _, k := range kills {
		if k.pos > pos {
			return true
		}
	}
	return false
}

func killNameAfter(pass *anz.Pass, fd *ast.FuncDecl, kills []kill, pos token.Pos) string {
	for _, k := range kills {
		if k.pos > pos {
			return k.name
		}
	}
	return "reuse"
}

// isPiecePtr reports whether expr's static type is *Piece for the
// Piece named type of the package under analysis.
func isPiecePtr(pass *anz.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Piece" && obj.Pkg() == pass.Pkg
}
