// Package loops computes dominators and natural-loop nesting for npra
// functions. The paper's allocator minimizes the *static* count of
// inserted move instructions; weighting program points by loop depth lets
// the intra-thread allocator minimize the *dynamic* count instead (an
// extension evaluated by ablation G), and gives the baseline allocators a
// better spill heuristic for free.
package loops

import (
	"npra/internal/core/errs"
	"npra/internal/ir"
)

// Info holds dominance and loop-nesting facts for one function.
type Info struct {
	F *ir.Func

	// IDom[b] is the immediate dominator of block b (-1 for entry).
	IDom []int

	// Depth[b] is the loop-nesting depth of block b (0 = not in a loop).
	Depth []int

	// Headers lists the loop header blocks in discovery order.
	Headers []int
}

// Compute runs the Cooper/Harvey/Kennedy iterative dominator algorithm
// and marks natural loops found via back edges (an edge b -> h where h
// dominates b). It fails with a typed ErrInvalid-wrapped error when f
// has not been built.
func Compute(f *ir.Func) (*Info, error) {
	if !f.Built() {
		return nil, errs.Invalidf("loops: function not built")
	}
	n := len(f.Blocks)
	info := &Info{F: f, IDom: make([]int, n), Depth: make([]int, n)}

	// Reverse postorder.
	rpo := reversePostorder(f)
	order := make([]int, n) // block -> rpo index
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}

	for i := range info.IDom {
		info.IDom[i] = -1
	}
	info.IDom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range f.Blocks[b].Preds {
				if order[p] < 0 || info.IDom[p] < 0 && p != 0 {
					continue // unreachable or unprocessed predecessor
				}
				if newIdom < 0 {
					newIdom = p
					continue
				}
				newIdom = intersect(info.IDom, order, p, newIdom)
			}
			if newIdom >= 0 && info.IDom[b] != newIdom {
				info.IDom[b] = newIdom
				changed = true
			}
		}
	}
	info.IDom[0] = -1

	// Natural loops from back edges; loop body found by backward walk.
	for _, b := range rpo {
		for _, s := range f.Blocks[b].Succs {
			if !info.dominates(s, b) {
				continue
			}
			// s is a loop header; collect the body of the loop (nodes
			// that reach b without passing through s) and bump depths.
			info.Headers = append(info.Headers, s)
			inLoop := make([]bool, n)
			inLoop[s] = true // never walk past the header
			var stack []int
			if b != s {
				inLoop[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range f.Blocks[x].Preds {
					if !inLoop[p] {
						inLoop[p] = true
						stack = append(stack, p)
					}
				}
			}
			for i := range inLoop {
				if inLoop[i] {
					info.Depth[i]++
				}
			}
		}
	}
	return info, nil
}

// dominates reports whether block a dominates block b.
func (info *Info) dominates(a, b int) bool {
	for b >= 0 {
		if b == a {
			return true
		}
		if b == 0 {
			return false
		}
		b = info.IDom[b]
	}
	return false
}

// Dominates reports whether block a dominates block b (both reachable).
func (info *Info) Dominates(a, b int) bool { return info.dominates(a, b) }

// PointDepth returns the loop depth of the block containing point p.
func (info *Info) PointDepth(p int) int {
	return info.Depth[info.F.PointBlock(p).Index]
}

// PointWeight returns 10^min(depth,4) — the classic loop-depth weight used
// by spill-cost and move-cost heuristics.
func (info *Info) PointWeight(p int) int64 {
	d := info.PointDepth(p)
	if d > 4 {
		d = 4
	}
	w := int64(1)
	for i := 0; i < d; i++ {
		w *= 10
	}
	return w
}

func intersect(idom, order []int, a, b int) int {
	for a != b {
		for order[a] > order[b] {
			a = idom[a]
			if a < 0 {
				return b
			}
		}
		for order[b] > order[a] {
			b = idom[b]
			if b < 0 {
				return a
			}
		}
	}
	return a
}

func reversePostorder(f *ir.Func) []int {
	n := len(f.Blocks)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range f.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
