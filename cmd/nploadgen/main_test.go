package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunInProcess(t *testing.T) {
	report := filepath.Join(t.TempDir(), "report.json")
	err := run("", true, 4, 0, 60, 0.5, 8, 2, 48, 0, 3, report, 0, 0.05, 0, 2)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	blob, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Requests int64            `json:"requests"`
		ByCode   map[string]int64 `json:"by_code"`
		P99MS    float64          `json:"p99_ms"`
		HitRate  float64          `json:"singleflight_hit_rate"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, blob)
	}
	if rep.Requests != 60 {
		t.Errorf("requests = %d, want 60", rep.Requests)
	}
	if rep.ByCode["200"] != 60 {
		t.Errorf("by_code = %v, want 60 clean 200s", rep.ByCode)
	}
	if rep.P99MS <= 0 {
		t.Errorf("p99 = %v, want > 0", rep.P99MS)
	}
	if rep.HitRate <= 0 {
		t.Errorf("hit rate = %v at dup 0.5, want > 0", rep.HitRate)
	}
}

func TestRunFailsDedupGate(t *testing.T) {
	// dup 0 with a cold cache cannot reach a 0.99 hit rate.
	err := run("", true, 2, 0, 10, 0, 8, 2, 48, 0, 5, "", -1, 0.99, 0, 1)
	if err == nil {
		t.Fatal("run passed an unreachable dedup gate")
	}
}

func TestRunFailsP99Gate(t *testing.T) {
	// No real request completes in a microsecond.
	err := run("", true, 2, 0, 10, 0, 8, 2, 48, 0, 6, "", -1, -1, 0.001, 1)
	if err == nil {
		t.Fatal("run passed an unreachable p99 gate")
	}
}

func TestRunNeedsTarget(t *testing.T) {
	if err := run("", false, 1, 0, 1, 0, 8, 2, 48, 0, 1, "", -1, -1, 0, 1); err == nil {
		t.Fatal("run accepted no URL without -inprocess")
	}
}
