// SRA: symmetric register allocation (paper §8). When all four threads of
// a processing unit run the *same* program, the search space collapses to
// one dimension (Nthd*PR + SR <= Nreg) and can be swept exactly. This
// example sweeps md5 across register file sizes and shows where the
// allocator starts paying moves, and how the shared bank absorbs the
// internal pressure that would otherwise need 4x private registers.
//
//	go run ./examples/sra
package main

import (
	"fmt"
	"log"

	"npra/internal/bench"
	"npra/internal/core"
	"npra/internal/estimate"
	"npra/internal/ig"
)

const packets = 64

func main() {
	b, err := bench.Get("md5")
	if err != nil {
		log.Fatal(err)
	}
	f := b.Gen(packets)
	est, err := estimate.Compute(ig.Analyze(f))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("md5 demands: MinPR=%d MinR=%d MaxPR=%d MaxR=%d\n",
		est.MinPR, est.MinR, est.MaxPR, est.MaxR)
	fmt.Printf("naive 4-thread partitioning would need 4 x %d = %d registers\n\n",
		est.MaxR, 4*est.MaxR)

	fmt.Printf("%6s %4s %4s %8s %7s\n", "Nreg", "PR", "SR", "4PR+SR", "moves")
	for _, nreg := range []int{160, 128, 96, 80, 72, 68, 66, 65, 64} {
		alloc, err := core.AllocateSRA(f, 4, core.Config{NReg: nreg})
		if err != nil {
			fmt.Printf("%6d %s\n", nreg, "infeasible: "+err.Error())
			continue
		}
		if err := alloc.Verify(); err != nil {
			log.Fatal(err)
		}
		t := alloc.Threads[0]
		fmt.Printf("%6d %4d %4d %8d %7d\n", nreg, t.PR, t.SR, alloc.TotalRegisters(), t.Cost)
	}
	fmt.Println("\nShared registers cover the digest's wide internal bursts; only the")
	fmt.Println("few values that survive a context switch consume per-thread registers.")
}
