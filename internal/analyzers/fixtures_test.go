package analyzers

import (
	"path/filepath"
	"testing"

	"npra/internal/analyzers/anztest"
	"npra/internal/analyzers/atomicmix"
	"npra/internal/analyzers/cachealias"
	"npra/internal/analyzers/ctxplumb"
	"npra/internal/analyzers/detlint"
	"npra/internal/analyzers/errtaxonomy"
	"npra/internal/analyzers/frozenfunc"
	"npra/internal/analyzers/goleak"
	"npra/internal/analyzers/lockorder"
	"npra/internal/analyzers/panicfree"
	"npra/internal/analyzers/poolalias"
	"npra/internal/analyzers/sleeplint"
)

// fixtureDir resolves the GOPATH-style fixture tree testdata/src/<path>.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("resolving testdata: %v", err)
	}
	return dir
}

func TestDetlintFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), detlint.Analyzer, "detlint", "npra/internal/bench")
}

func TestErrtaxonomyFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), errtaxonomy.Analyzer, "npra/internal/taxo", "npra/internal/ir")
}

func TestPanicfreeFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), panicfree.Analyzer, "panicfix")
}

func TestCtxplumbFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), ctxplumb.Analyzer, "npra/internal/estimate")
}

func TestPoolaliasFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), poolalias.Analyzer, "poolfix/intra")
}

func TestCachealiasFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), cachealias.Analyzer, "cachefix/consumer")
}

func TestFrozenfuncFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), frozenfunc.Analyzer, "frozenfix/consumer")
}

func TestSleeplintFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), sleeplint.Analyzer, "sleepfix")
}

func TestLockorderFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), lockorder.Analyzer, "npra/internal/lockfix")
}

func TestGoleakFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), goleak.Analyzer, "leakfix")
}

func TestAtomicmixFixtures(t *testing.T) {
	anztest.Run(t, fixtureDir(t), atomicmix.Analyzer, "atomfix")
}
