package intra

import (
	"math/rand"
	"testing"

	"npra/internal/ig"
	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/passes"
	"npra/internal/progen"
)

// TestWarmStartDifferential is the warm-start safety net: for >= 200
// generated programs, a single warm allocator (shared context memo,
// incremental re-pricing on) must agree exactly — same errors, same
// cost, same palette, same per-point coloring — with a cold allocator
// built from scratch at every (pr, sr) probe with the incremental
// machinery disabled (every MoveCost is the full edge walk). At the
// minimum budget both rewrites must also execute equivalently to the
// original program.
func TestWarmStartDifferential(t *testing.T) {
	const seeds = 200
	cfg := progen.StructuredConfig{
		MaxDepth: 2, MaxBodyLen: 8, MaxTripCnt: 3, MaxVars: 10,
		CSBDensity: 0.3, StoreWindow: 64,
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := progen.GenerateStructured(rng, cfg)
		opt, _, err := passes.Optimize(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a := ig.Analyze(opt)
		warm, err := NewFromAnalysis(a)
		if err != nil {
			continue // bound-estimation failure: nothing to compare
		}
		bd := warm.Bounds()

		// Probe the lattice around both extremes plus the interior: the
		// minimum point and its (pr, sr) neighbors exercise the deepest
		// chain reuse, the max point the root, the midpoint a partial
		// derivation.
		minSR := bd.MinR - bd.MinPR
		probes := [][2]int{
			{bd.MinPR, minSR},
			{bd.MinPR + 1, minSR},
			{bd.MinPR, minSR + 1},
			{bd.MinPR + 1, minSR + 1},
			{(bd.MinPR + bd.MaxPR) / 2, (minSR + bd.MaxR - bd.MaxPR) / 2},
			{bd.MaxPR, bd.MaxR - bd.MaxPR},
		}
		tried := make(map[[2]int]bool)
		for _, pb := range probes {
			pr, sr := pb[0], pb[1]
			if tried[pb] || pr < 0 || sr < 0 {
				continue
			}
			tried[pb] = true

			wsol, werr := warm.Solve(pr, sr)

			cold, err := NewFromAnalysis(a)
			if err != nil {
				t.Fatalf("seed %d: cold estimation diverged: %v", seed, err)
			}
			cold.DisableIncremental = true
			csol, cerr := cold.Solve(pr, sr)

			if (werr == nil) != (cerr == nil) {
				t.Fatalf("seed %d (%d,%d): warm err %v, cold err %v", seed, pr, sr, werr, cerr)
			}
			if werr != nil {
				continue
			}
			if wsol.Cost != csol.Cost {
				t.Fatalf("seed %d (%d,%d): warm cost %d, cold cost %d", seed, pr, sr, wsol.Cost, csol.Cost)
			}
			wc, cc := wsol.Ctx, csol.Ctx
			if wc.Cap != cc.Cap || wc.Size != cc.Size {
				t.Fatalf("seed %d (%d,%d): warm palette (%d,%d), cold (%d,%d)",
					seed, pr, sr, wc.Cap, wc.Size, cc.Cap, cc.Size)
			}
			np := opt.NumPoints()
			for v := 0; v < a.NumVars; v++ {
				for p := 0; p < np; p++ {
					if wcol, ccol := wc.ColorAt(v, p), cc.ColorAt(v, p); wcol != ccol {
						t.Fatalf("seed %d (%d,%d): v%d at point %d: warm color %d, cold color %d",
							seed, pr, sr, v, p, wcol, ccol)
					}
				}
			}
		}

		// Execution equivalence at the minimum budget.
		wsol, werr := warm.Solve(bd.MinPR, minSR)
		if werr != nil {
			continue
		}
		phys := make([]ir.Reg, wsol.Ctx.Size)
		for c := range phys {
			phys[c] = ir.Reg(c)
		}
		nf, _, err := Rewrite(wsol.Ctx, phys)
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v", seed, err)
		}
		const memWords = 64
		r1, err := interp.Run(opt, make([]uint32, memWords), interp.Options{MaxSteps: 20000})
		if err != nil || !r1.Halted {
			continue // allocation cannot fix a non-halting input
		}
		r2, err := interp.Run(nf, make([]uint32, memWords), interp.Options{MaxSteps: 200000})
		if err != nil {
			t.Fatalf("seed %d: rewritten code faulted: %v", seed, err)
		}
		if err := interp.Equivalent(r1, r2); err != nil {
			t.Fatalf("seed %d: warm-started allocation changed semantics: %v\noriginal:\n%s\nrewritten:\n%s",
				seed, err, opt.Format(), nf.Format())
		}
	}
}

// TestIncrementalCostOracle pins the incremental re-pricing to its
// from-scratch oracle on every context a full chain derivation memoizes:
// the cached MoveCost must equal an independent full edge walk.
func TestIncrementalCostOracle(t *testing.T) {
	cfg := progen.StructuredConfig{
		MaxDepth: 3, MaxBodyLen: 12, MaxTripCnt: 4, MaxVars: 14,
		CSBDensity: 0.25, StoreWindow: 128,
	}
	for _, seed := range []int64{3, 19, 71, 109, 181} {
		rng := rand.New(rand.NewSource(seed))
		f := progen.GenerateStructured(rng, cfg)
		opt, _, err := passes.Optimize(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		al := MustNew(opt)
		bd := al.Bounds()
		for cap := bd.MaxPR; cap >= bd.MinPR; cap-- {
			for size := bd.MaxR; size >= bd.MinR; size-- {
				if size < cap {
					continue
				}
				if _, err := al.context(cap, size); err != nil {
					continue
				}
			}
		}
		for key, ctx := range al.memo {
			if got, want := ctx.MoveCost(), ctx.moveCostFull(); got != want {
				t.Fatalf("seed %d palette (%d,%d): incremental cost %d, full walk %d",
					seed, key[0], key[1], got, want)
			}
		}
	}
}
