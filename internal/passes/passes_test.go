package passes

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"npra/internal/interp"
	"npra/internal/ir"
	"npra/internal/progen"
)

func TestDeadCodeRemovesChains(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 1
	set v1, 2        ; dead
	add v2, v1, v1   ; dead (only feeds v3)
	add v3, v2, v2   ; dead
	store [0], v0
	halt`)
	st, err := DeadCode(f)
	if err != nil {
		t.Fatal(err)
	}
	// v1's set feeds v2 which feeds v3 which is dead: all three go, but
	// only after the chain unravels over multiple rounds.
	if st.DeadRemoved != 3 {
		t.Errorf("DeadRemoved = %d, want 3\n%s", st.DeadRemoved, f.Format())
	}
	if f.Stats().Instructions != 3 {
		t.Errorf("instructions = %d, want 3", f.Stats().Instructions)
	}
}

func TestDeadCodeKeepsSideEffects(t *testing.T) {
	f := ir.MustParse(`
a:
	load v0, [0]     ; dead def, but a load context-switches: kept
	ctx
	iter
	set v1, 5        ; dead pure def: removed
	halt`)
	st, err := DeadCode(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadRemoved != 1 {
		t.Errorf("DeadRemoved = %d, want 1\n%s", st.DeadRemoved, f.Format())
	}
	text := f.Format()
	for _, want := range []string{"load", "ctx", "iter"} {
		if !strings.Contains(text, want) {
			t.Errorf("side-effecting %q removed:\n%s", want, text)
		}
	}
}

func TestCopyProp(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 7
	mov v1, v0
	add v2, v1, v1   ; -> add v2, v0, v0
	set v0, 9        ; kills the copy
	add v3, v1, v0   ; v1 must NOT be rewritten now
	store [0], v2
	store [4], v3
	halt`)
	st := CopyProp(f)
	if st.CopiesReplaced != 2 {
		t.Errorf("CopiesReplaced = %d, want 2\n%s", st.CopiesReplaced, f.Format())
	}
	add := f.Blocks[0].Instrs[2]
	if add.A != 0 || add.B != 0 {
		t.Errorf("uses not propagated: %v", add.String())
	}
	late := f.Blocks[0].Instrs[4]
	if late.A != 1 {
		t.Errorf("copy used after kill: %v", late.String())
	}
}

func TestCopyPropSkipsPhysical(t *testing.T) {
	f := ir.MustParse("a:\n mov r1, r0\n add r2, r1, r1\n store [0], r2\n halt")
	if st := CopyProp(f); st.CopiesReplaced != 0 {
		t.Errorf("copy propagation ran on physical code")
	}
	if st, err := ConstFold(f); err != nil || st.Folded != 0 {
		t.Errorf("constant folding ran on physical code (err=%v)", err)
	}
}

func TestConstFold(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 6
	set v1, 7
	mul v2, v0, v1   ; -> set v2, 42
	addi v3, v2, 8   ; -> set v3, 50
	shli v4, v3, 2   ; -> set v4, 200
	store [0], v4
	halt`)
	st, err := ConstFold(f)
	if err != nil {
		t.Fatalf("ConstFold: %v", err)
	}
	if st.Folded != 3 {
		t.Errorf("Folded = %d, want 3\n%s", st.Folded, f.Format())
	}
	in := f.Blocks[0].Instrs[4]
	if in.Op != ir.OpSet || in.Imm != 200 {
		t.Errorf("final fold wrong: %v", in.String())
	}
}

func TestPeephole(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 3
	mov v0, v0       ; removed
	addi v1, v0, 0   ; -> mov v1, v0
	xor v2, v0, v0   ; -> set v2, 0
	muli v3, v1, 1   ; -> mov v3, v1
	nop              ; removed
	store [0], v2
	store [4], v3
	halt`)
	st := Peephole(f)
	if st.Peeped != 5 {
		t.Errorf("Peeped = %d, want 5\n%s", st.Peeped, f.Format())
	}
	if strings.Contains(f.Format(), "mov v0, v0") {
		t.Errorf("self-move survived")
	}
}

func TestSimplifyCFG(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 1
	br hop
hop:
	br target
dead:
	set v9, 9
	br dead
target:
	store [0], v0
	halt`)
	st := SimplifyCFG(f)
	if st.BranchesWoven == 0 {
		t.Errorf("branch through hop not threaded")
	}
	text := f.Format()
	if strings.Contains(text, "dead:") {
		t.Errorf("unreachable block kept:\n%s", text)
	}
	if !strings.Contains(text, "br target") {
		t.Errorf("threading lost the final target:\n%s", text)
	}
}

func TestOptimizePipelineEndToEnd(t *testing.T) {
	f := ir.MustParse(`
a:
	set v0, 5
	mov v1, v0
	addi v2, v1, 0
	mul v3, v2, v0     ; 25, foldable after copy prop
	set v4, 99         ; dead
	br out
out:
	store [0], v3
	halt`)
	opt, st, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() == 0 {
		t.Fatalf("pipeline changed nothing")
	}
	// Semantics preserved.
	m1 := make([]uint32, 8)
	m2 := make([]uint32, 8)
	r1, _ := interp.Run(f, m1, interp.Options{})
	r2, _ := interp.Run(opt, m2, interp.Options{})
	if err := interp.Equivalent(r1, r2); err != nil {
		t.Fatalf("not equivalent: %v\n%s", err, opt.Format())
	}
	if m2[0] != 25 {
		t.Errorf("result = %d, want 25", m2[0])
	}
	// The store's operand should now be a constant-set register.
	if opt.Stats().Instructions > 4 {
		t.Errorf("expected tight output, got\n%s", opt.Format())
	}
}

// Property: the full pipeline preserves observable behavior on random
// programs, never grows the instruction count, and the result re-builds.
func TestQuickOptimizeEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := progen.Generate(rng, progen.Default)
		opt, _, err := Optimize(f)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if opt.Stats().Instructions > f.Stats().Instructions {
			t.Logf("seed %d: grew from %d to %d instructions",
				seed, f.Stats().Instructions, opt.Stats().Instructions)
			return false
		}
		m1 := make([]uint32, 64)
		m2 := make([]uint32, 64)
		r1, err := interp.Run(f, m1, interp.Options{MaxSteps: 20000})
		if err != nil {
			return false
		}
		if !r1.Halted {
			return true // skip divergent programs
		}
		r2, err := interp.Run(opt, m2, interp.Options{MaxSteps: 20000})
		if err != nil {
			return false
		}
		if err := interp.Equivalent(r1, r2); err != nil {
			t.Logf("seed %d: %v\nbefore:\n%s\nafter:\n%s", seed, err, f.Format(), opt.Format())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every individual pass alone preserves semantics.
func TestQuickIndividualPasses(t *testing.T) {
	type pass struct {
		name string
		run  func(*ir.Func) error
	}
	passes := []pass{
		{"DeadCode", func(f *ir.Func) error { _, err := DeadCode(f); return err }},
		{"CopyProp", func(f *ir.Func) error { CopyProp(f); return f.Build() }},
		{"ConstFold", func(f *ir.Func) error {
			if _, err := ConstFold(f); err != nil {
				return err
			}
			return f.Build()
		}},
		{"Peephole", func(f *ir.Func) error { Peephole(f); return f.Build() }},
		{"SimplifyCFG", func(f *ir.Func) error { SimplifyCFG(f); return f.Build() }},
	}
	for _, p := range passes {
		p := p
		t.Run(p.name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				orig := progen.Generate(rng, progen.Default)
				f := orig.Clone()
				if err := p.run(f); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				m1 := make([]uint32, 64)
				m2 := make([]uint32, 64)
				r1, err := interp.Run(orig, m1, interp.Options{MaxSteps: 20000})
				if err != nil || !r1.Halted {
					return true
				}
				r2, err := interp.Run(f, m2, interp.Options{MaxSteps: 20000})
				if err != nil {
					return false
				}
				if err := interp.Equivalent(r1, r2); err != nil {
					t.Logf("seed %d: %v\nbefore:\n%s\nafter:\n%s", seed, err, orig.Format(), f.Format())
					return false
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}
