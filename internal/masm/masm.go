// Package masm is a macro assembler for npra assembly. Network-processor
// microcode has no call stack — the IXP tool chain composed programs from
// assembler macros — so masm provides the same workflow:
//
//	.equ SEGSHIFT 13             ; named constants
//
//	.macro checksum sum, ptr, n  ; macro with named parameters
//	@loop:                       ; @-labels are unique per expansion
//	    load @w, [ptr+0]         ; @-registers too: fresh temp names
//	    add sum, sum, @w
//	    addi ptr, ptr, 4
//	    subi n, n, 1
//	    bnz n, @loop
//	.endm
//
//	func main
//	entry:
//	    set v0, 0
//	    set v1, 4096
//	    set v2, SEGSHIFT
//	    checksum v0, v1, v2      ; expands in place
//	    store [64], v0
//	    halt
//
// Expand turns such source into plain assembly for ir.Parse; Assemble
// does both. Macros may invoke other macros (bounded nesting).
package masm

import (
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"

	"npra/internal/ir"
)

// maxDepth bounds macro-in-macro expansion to catch recursion.
const maxDepth = 32

type macro struct {
	name   string
	params []string
	body   []string
}

// Assemble expands macros and parses the result into a built function.
func Assemble(src string) (*ir.Func, error) {
	return AssembleFS(src, nil)
}

// AssembleFS is Assemble with ".include" resolution against fsys (nil
// forbids includes).
func AssembleFS(src string, fsys fs.FS) (*ir.Func, error) {
	expanded, err := ExpandFS(src, fsys)
	if err != nil {
		return nil, err
	}
	f, err := ir.Parse(expanded)
	if err != nil {
		return nil, fmt.Errorf("masm: after expansion: %w\n%s", err, numberLines(expanded))
	}
	return f, nil
}

// Expand performs macro expansion and constant substitution, returning
// plain npra assembly.
func Expand(src string) (string, error) {
	return ExpandFS(src, nil)
}

// ExpandFS is Expand with ".include \"path\"" support: included files are
// read from fsys and spliced in before macro collection, so they may
// contribute macros, constants and code. Includes nest (bounded) and
// cycles are rejected. A nil fsys makes any .include an error.
func ExpandFS(src string, fsys fs.FS) (string, error) {
	resolved, err := resolveIncludes(src, fsys, nil, 0)
	if err != nil {
		return "", err
	}
	st := &state{
		macros: make(map[string]*macro),
		equs:   make(map[string]string),
	}
	lines, err := st.collect(strings.Split(resolved, "\n"))
	if err != nil {
		return "", err
	}
	var out []string
	for _, line := range lines {
		exp, err := st.expandLine(line, 0)
		if err != nil {
			return "", err
		}
		out = append(out, exp...)
	}
	return strings.Join(out, "\n"), nil
}

// resolveIncludes splices ".include" directives depth-first.
func resolveIncludes(src string, fsys fs.FS, seen []string, depth int) (string, error) {
	if depth > maxDepth {
		return "", fmt.Errorf("masm: includes nested deeper than %d", maxDepth)
	}
	var out []string
	for ln, raw := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(stripComment(raw))
		if !strings.HasPrefix(trimmed, ".include") {
			out = append(out, raw)
			continue
		}
		arg := strings.TrimSpace(strings.TrimPrefix(trimmed, ".include"))
		arg = strings.Trim(arg, `"`)
		if arg == "" {
			return "", fmt.Errorf("masm: line %d: .include needs a path", ln+1)
		}
		if fsys == nil {
			return "", fmt.Errorf("masm: line %d: .include %q: no filesystem provided", ln+1, arg)
		}
		for _, s := range seen {
			if s == arg {
				return "", fmt.Errorf("masm: include cycle through %q", arg)
			}
		}
		data, err := fs.ReadFile(fsys, arg)
		if err != nil {
			return "", fmt.Errorf("masm: line %d: .include %q: %w", ln+1, arg, err)
		}
		sub, err := resolveIncludes(string(data), fsys, append(seen, arg), depth+1)
		if err != nil {
			return "", err
		}
		out = append(out, fmt.Sprintf("; <include %s>", arg))
		out = append(out, sub)
	}
	return strings.Join(out, "\n"), nil
}

type state struct {
	macros map[string]*macro
	equs   map[string]string
	nexp   int // expansion counter for unique @-names
}

// collect gathers .equ and .macro definitions, returning the remaining
// top-level lines.
func (st *state) collect(lines []string) ([]string, error) {
	var rest []string
	var cur *macro
	for ln, raw := range lines {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, ".macro"):
			if cur != nil {
				return nil, fmt.Errorf("masm: line %d: nested .macro definition", ln+1)
			}
			head := strings.TrimSpace(strings.TrimPrefix(trimmed, ".macro"))
			name := head
			params := ""
			if i := strings.IndexAny(head, " \t"); i >= 0 {
				name, params = head[:i], head[i+1:]
			}
			if name == "" {
				return nil, fmt.Errorf("masm: line %d: .macro needs a name", ln+1)
			}
			if _, dup := st.macros[name]; dup {
				return nil, fmt.Errorf("masm: line %d: duplicate macro %q", ln+1, name)
			}
			cur = &macro{name: name, params: splitFields(params)}
		case trimmed == ".endm":
			if cur == nil {
				return nil, fmt.Errorf("masm: line %d: .endm without .macro", ln+1)
			}
			st.macros[cur.name] = cur
			cur = nil
		case strings.HasPrefix(trimmed, ".equ"):
			if cur != nil {
				return nil, fmt.Errorf("masm: line %d: .equ inside a macro", ln+1)
			}
			fields := splitFields(strings.TrimPrefix(trimmed, ".equ"))
			if len(fields) != 2 {
				return nil, fmt.Errorf("masm: line %d: .equ NAME VALUE", ln+1)
			}
			if _, err := strconv.ParseInt(fields[1], 0, 64); err != nil {
				return nil, fmt.Errorf("masm: line %d: .equ %s: value %q is not a number", ln+1, fields[0], fields[1])
			}
			st.equs[fields[0]] = fields[1]
		default:
			if cur != nil {
				cur.body = append(cur.body, line)
			} else {
				rest = append(rest, raw)
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("masm: unterminated .macro %q", cur.name)
	}
	return rest, nil
}

// expandLine substitutes constants and, if the line invokes a macro,
// expands it recursively.
func (st *state) expandLine(raw string, depth int) ([]string, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("masm: macro nesting deeper than %d (recursive macro?)", maxDepth)
	}
	line := raw
	// Substitute in sorted order: if one .equ value mentions another
	// constant's name, the result must not depend on map iteration order.
	names := make([]string, 0, len(st.equs))
	for name := range st.equs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		line = substituteWord(line, name, st.equs[name])
	}
	code := stripComment(line)
	trimmed := strings.TrimSpace(code)
	if trimmed == "" || strings.HasSuffix(trimmed, ":") || strings.HasPrefix(trimmed, "func ") {
		return []string{line}, nil
	}
	mn := trimmed
	rest := ""
	if i := strings.IndexAny(trimmed, " \t"); i >= 0 {
		mn, rest = trimmed[:i], strings.TrimSpace(trimmed[i+1:])
	}
	mac, ok := st.macros[mn]
	if !ok {
		return []string{line}, nil
	}
	args := splitFields(rest)
	if len(args) != len(mac.params) {
		return nil, fmt.Errorf("masm: macro %s wants %d arguments, got %d (%q)",
			mac.name, len(mac.params), len(args), raw)
	}
	st.nexp++
	id := st.nexp
	var out []string
	out = append(out, fmt.Sprintf("; <%s expansion %d>", mac.name, id))
	for _, bl := range mac.body {
		s := bl
		for pi, p := range mac.params {
			s = substituteWord(s, p, args[pi])
		}
		s = uniquifyLocals(s, id)
		sub, err := st.expandLine(s, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// uniquifyLocals rewrites every @name token to name_<id> so each
// expansion gets fresh labels and temp register names. A temp like "@w"
// becomes "w_3", which the assembler then rejects unless it is used as a
// label — so register temps should be written "@v9"-style: "v9_3" is not
// a valid register either. Macro authors therefore declare temps as
// parameters or fixed registers; @-names are for labels. (Kept simple on
// purpose: labels are the error-prone part of textual macros.)
func uniquifyLocals(s string, id int) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '@' {
			j := i + 1
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			if j > i+1 {
				sb.WriteString(s[i+1 : j])
				sb.WriteString("_")
				sb.WriteString(strconv.Itoa(id))
				i = j
				continue
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// substituteWord replaces whole-word occurrences of from with to.
func substituteWord(s, from, to string) string {
	if from == "" {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], from) {
			before := i == 0 || !isWordByte(s[i-1])
			afterIdx := i + len(from)
			after := afterIdx >= len(s) || !isWordByte(s[afterIdx])
			if before && after {
				sb.WriteString(to)
				i = afterIdx
				continue
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

func isWordByte(b byte) bool {
	return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func splitFields(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	// Also allow space separation for the first field (macro names).
	if len(out) == 1 && strings.ContainsAny(out[0], " \t") {
		out = strings.Fields(out[0])
	}
	return out
}

func numberLines(s string) string {
	var sb strings.Builder
	for i, l := range strings.Split(s, "\n") {
		fmt.Fprintf(&sb, "%4d| %s\n", i+1, l)
	}
	return sb.String()
}
