package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow (and wrapped by
// Client.Post) when the breaker is refusing traffic: the backend has
// failed enough consecutive attempts that sending more work would only
// add load to a struggling peer and latency to the caller.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	// BreakerClosed passes all traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast; after Cooldown it becomes half-open.
	BreakerOpen
	// BreakerHalfOpen admits a bounded budget of probe requests; probe
	// success closes the breaker, probe failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// BreakerConfig parameterizes a Breaker. Zero values take the noted
// defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips
	// Closed→Open (default 8).
	FailureThreshold int
	// Cooldown is how long the breaker stays Open before admitting
	// probes (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrently in-flight probes while
	// half-open (default 1); further Allow calls are refused.
	HalfOpenProbes int
	// ProbeSuccesses is how many probe successes close the breaker
	// (default 1).
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 1
	}
	return c
}

// BreakerStats is an observable snapshot of a breaker.
type BreakerStats struct {
	State               BreakerState
	ConsecutiveFailures int
	ProbesInFlight      int
	Opens               int64 // Closed/HalfOpen → Open transitions
	Closes              int64 // HalfOpen → Closed transitions
	Rejections          int64 // Allow refusals (fail-fast)
}

// Breaker is a per-backend circuit breaker: Allow gates each attempt,
// Report feeds its outcome back. Safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probes   int // in-flight probes while half-open
	probeOK  int // probe successes so far this half-open episode

	opens, closes, rejections int64

	now func() time.Time // injectable for tests
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: clockNow}
}

// Allow reports whether an attempt may proceed. A nil return from a
// half-open breaker takes one probe slot, which the caller MUST release
// with exactly one Report. Non-nil means fail fast (ErrBreakerOpen).
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		//lint:ignore lockorder b.now is the injectable clock (time.Now or a test stub); it reads no Breaker state and takes no locks
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejections++
			return fmt.Errorf("%w: cooling down", ErrBreakerOpen)
		}
		// Cooldown elapsed: this caller becomes the first probe.
		b.state = BreakerHalfOpen
		b.probes = 1
		b.probeOK = 0
		return nil
	default: // BreakerHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejections++
			return fmt.Errorf("%w: probe budget in flight", ErrBreakerOpen)
		}
		b.probes++
		return nil
	}
}

// Report feeds one attempt's outcome back. While closed it maintains
// the consecutive-failure count (tripping open at the threshold); while
// half-open it resolves the probe: success counts toward closing,
// failure re-opens immediately.
func (b *Breaker) Report(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerOpen:
		// A stale report from before the trip; nothing to resolve.
	default: // BreakerHalfOpen
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.ProbeSuccesses {
			b.state = BreakerClosed
			b.fails = 0
			b.probes = 0
			b.probeOK = 0
			b.closes++
		}
	}
}

// trip moves to Open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probes = 0
	b.probeOK = 0
	b.opens++
}

// State returns the current automaton state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker's observable counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state,
		ConsecutiveFailures: b.fails,
		ProbesInFlight:      b.probes,
		Opens:               b.opens,
		Closes:              b.closes,
		Rejections:          b.rejections,
	}
}
