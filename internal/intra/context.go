// Package intra implements the paper's intra-thread register allocator
// (§7): given a private-register budget PR and a shared budget SR, color
// every live range so that values live across context switches use only
// the first PR "private-capable" colors, splitting live ranges with move
// instructions when the budgets are below the move-free requirement
// (Reduce-PR and Reduce-SR invocations, Figure 10).
//
// Live ranges are represented as *pieces*: disjoint sets of program
// points, one color per piece. Splitting a live range partitions its
// points across several pieces; the rewriter later materializes a move on
// every CFG edge where a variable changes piece color. This makes
// correctness structural — any proper piece coloring yields correct code —
// while the allocator's job is purely to minimize the number of such
// color changes (the paper's move-minimization objective).
package intra

import (
	"fmt"

	"npra/internal/bitset"
	"npra/internal/ig"
)

// Piece is one fragment of a live range: a subset of the variable's live
// points, held in a single color (register) throughout.
type Piece struct {
	Var    int
	Color  int
	Points bitset.Set
}

// Context is one allocation state: a full piece partition of every live
// range plus the palette it is colored with. Colors [0, Cap) may be used
// by pieces that cross context-switch boundaries ("private-capable");
// colors [0, Size) by anything.
type Context struct {
	A    *ig.Analysis
	Cap  int // boundary palette size (≥ colors used by crossing pieces)
	Size int // total palette size

	Pieces []*Piece

	np      int
	pieceOf []int32 // [var*np+point] -> piece index, -1 when not live
	cost    int     // cached MoveCost; -1 when dirty
	weights []int64 // optional per-point loop weights (nil = static count)
}

// newContext builds the unsplit context from an estimation coloring:
// one piece per live variable. weights, when non-nil, makes MoveCost a
// loop-depth-weighted estimate of the *dynamic* move count.
func newContext(a *ig.Analysis, colors []int, cap, size int, weights []int64) *Context {
	np := a.F.NumPoints()
	ctx := &Context{A: a, Cap: cap, Size: size, np: np, cost: -1, weights: weights}
	ctx.pieceOf = make([]int32, a.NumVars*np)
	for i := range ctx.pieceOf {
		ctx.pieceOf[i] = -1
	}
	for v := 0; v < a.NumVars; v++ {
		if !a.Alive[v] {
			continue
		}
		ctx.addPiece(&Piece{Var: v, Color: colors[v], Points: a.Points[v].Clone()})
	}
	return ctx
}

func (ctx *Context) addPiece(p *Piece) int {
	idx := len(ctx.Pieces)
	ctx.Pieces = append(ctx.Pieces, p)
	base := p.Var * ctx.np
	p.Points.ForEach(func(pt int) { ctx.pieceOf[base+pt] = int32(idx) })
	ctx.cost = -1
	return idx
}

// PieceAt returns the index of v's piece covering point p, or -1.
func (ctx *Context) PieceAt(v, p int) int { return int(ctx.pieceOf[v*ctx.np+p]) }

// ColorAt returns the palette color holding v at point p, or -1.
func (ctx *Context) ColorAt(v, p int) int {
	i := ctx.PieceAt(v, p)
	if i < 0 {
		return -1
	}
	return ctx.Pieces[i].Color
}

// Clone deep-copies the context (weights are shared; they are immutable).
func (ctx *Context) Clone() *Context {
	c := &Context{A: ctx.A, Cap: ctx.Cap, Size: ctx.Size, np: ctx.np, cost: ctx.cost, weights: ctx.weights}
	c.Pieces = make([]*Piece, len(ctx.Pieces))
	for i, p := range ctx.Pieces {
		c.Pieces[i] = &Piece{Var: p.Var, Color: p.Color, Points: p.Points.Clone()}
	}
	c.pieceOf = make([]int32, len(ctx.pieceOf))
	copy(c.pieceOf, ctx.pieceOf)
	return c
}

// crossingPoints returns the CSB points piece x is live across.
func (ctx *Context) crossingPoints(x *Piece) bitset.Set {
	cr := ctx.A.Crossings[x.Var]
	if cr == nil {
		return nil
	}
	s := cr.Clone()
	s.And(x.Points)
	return s
}

// crosses reports whether piece x is live across any CSB.
func (ctx *Context) crosses(x *Piece) bool {
	s := ctx.crossingPoints(x)
	return s != nil && !s.Empty()
}

// MoveCost counts the moves the rewriter will emit: CFG edges (p -> q)
// along which some variable is live in differently-colored pieces at the
// two ends. This is the paper's objective function. With weights set, each
// edge contributes min(w(p), w(q)) instead of 1, approximating the
// dynamic execution count by loop depth.
func (ctx *Context) MoveCost() int {
	if ctx.cost >= 0 {
		return ctx.cost
	}
	a := ctx.A
	total := 0
	var succs []int
	for p := 0; p < ctx.np; p++ {
		succs = a.F.PointSuccs(p, succs[:0])
		for _, q := range succs {
			a.Live.Out[p].ForEach(func(v int) {
				if !a.Live.In[q].Has(v) {
					return
				}
				xs, xd := ctx.PieceAt(v, p), ctx.PieceAt(v, q)
				if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
					total += ctx.edgeWeight(p, q)
				}
			})
		}
	}
	ctx.cost = total
	return total
}

func (ctx *Context) edgeWeight(p, q int) int {
	if ctx.weights == nil {
		return 1
	}
	w := ctx.weights[p]
	if wq := ctx.weights[q]; wq < w {
		w = wq
	}
	return int(w)
}

// MoveCount always returns the static number of moves, regardless of the
// weighting mode.
func (ctx *Context) MoveCount() int {
	a := ctx.A
	total := 0
	var succs []int
	for p := 0; p < ctx.np; p++ {
		succs = a.F.PointSuccs(p, succs[:0])
		for _, q := range succs {
			a.Live.Out[p].ForEach(func(v int) {
				if !a.Live.In[q].Has(v) {
					return
				}
				xs, xd := ctx.PieceAt(v, p), ctx.PieceAt(v, q)
				if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
					total++
				}
			})
		}
	}
	return total
}

// WeightedMoveCost evaluates the split schedule under explicit per-point
// weights (for comparing allocators built with different objectives).
func (ctx *Context) WeightedMoveCost(weights []int64) int64 {
	a := ctx.A
	var total int64
	var succs []int
	for p := 0; p < ctx.np; p++ {
		succs = a.F.PointSuccs(p, succs[:0])
		for _, q := range succs {
			a.Live.Out[p].ForEach(func(v int) {
				if !a.Live.In[q].Has(v) {
					return
				}
				xs, xd := ctx.PieceAt(v, p), ctx.PieceAt(v, q)
				if xs != xd && ctx.Pieces[xs].Color != ctx.Pieces[xd].Color {
					w := weights[p]
					if wq := weights[q]; wq < w {
						w = wq
					}
					total += w
				}
			})
		}
	}
	return total
}

// Validate checks every structural invariant of the context; tests and
// the inter-thread allocator use it as a safety net.
func (ctx *Context) Validate() error {
	a := ctx.A
	// Partition: each live point of each var covered by exactly one piece.
	covered := make([]bitset.Set, a.NumVars)
	for i, x := range ctx.Pieces {
		if x.Color < 0 || x.Color >= ctx.Size {
			return fmt.Errorf("intra: piece %d (v%d) color %d outside palette [0,%d)", i, x.Var, x.Color, ctx.Size)
		}
		if ctx.crosses(x) && x.Color >= ctx.Cap {
			return fmt.Errorf("intra: crossing piece %d (v%d) colored %d >= cap %d", i, x.Var, x.Color, ctx.Cap)
		}
		if covered[x.Var] == nil {
			covered[x.Var] = bitset.New(ctx.np)
		}
		if covered[x.Var].Intersects(x.Points) {
			return fmt.Errorf("intra: pieces of v%d overlap", x.Var)
		}
		covered[x.Var].Or(x.Points)
	}
	for v := 0; v < a.NumVars; v++ {
		if !a.Alive[v] {
			if covered[v] != nil && !covered[v].Empty() {
				return fmt.Errorf("intra: dead v%d has pieces", v)
			}
			continue
		}
		if covered[v] == nil || !covered[v].Equal(a.Points[v]) {
			return fmt.Errorf("intra: pieces of v%d do not cover its live range", v)
		}
	}
	// Proper coloring at every point.
	seen := make([]int, ctx.Size)
	for i := range seen {
		seen[i] = -1
	}
	for p := 0; p < ctx.np; p++ {
		conflict := -1
		a.Live.At[p].ForEach(func(v int) {
			c := ctx.ColorAt(v, p)
			if seen[c] == p {
				conflict = v
			}
			seen[c] = p
		})
		if conflict >= 0 {
			return fmt.Errorf("intra: color collision at point %d involving v%d", p, conflict)
		}
		// reset marker trick: seen[c]==p marks use at this point
	}
	return nil
}

// colorsFreeAt fills free with true for palette colors not used by any
// co-live piece at point p, excluding variable self.
func (ctx *Context) colorsFreeAt(p int, self int, free []bool) {
	for i := 0; i < ctx.Size; i++ {
		free[i] = true
	}
	ctx.A.Live.At[p].ForEach(func(v int) {
		if v == self {
			return
		}
		if c := ctx.ColorAt(v, p); c >= 0 {
			free[c] = false
		}
	})
}

// rebuildPieceIndex regenerates pieceOf after pieces were removed/merged.
func (ctx *Context) rebuildPieceIndex() {
	for i := range ctx.pieceOf {
		ctx.pieceOf[i] = -1
	}
	for i, x := range ctx.Pieces {
		base := x.Var * ctx.np
		x.Points.ForEach(func(pt int) { ctx.pieceOf[base+pt] = int32(i) })
	}
	ctx.cost = -1
}
