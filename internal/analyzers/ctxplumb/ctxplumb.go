// Package ctxplumb enforces the PR-2 cancellation contract in two
// mechanical parts:
//
//  1. Delegation: when a package exports both F and FCtx (the ctx-aware
//     variant introduced so old call sites keep compiling), F must
//     delegate to FCtx — a drifted non-ctx twin silently loses timeout
//     and cancellation coverage.
//
//  2. Cancellation polling: in the solver packages (internal/intra,
//     internal/estimate) any potentially unbounded loop — a for
//     statement that is not a classic init;cond;post counted loop and
//     not a range — must poll cancellation via parallel.CtxErr or
//     ctx.Err, or carry a //lint:invariant justification proving
//     termination (worklist strictly shrinks, bit-clear loop, ...).
//     parallel.CtxErr is preferred over ctx.Err because it also polls
//     the deadline clock (a saturated GOMAXPROCS=1 box can starve the
//     deadline timer, see internal/parallel).
package ctxplumb

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"npra/internal/analyzers/anz"
)

// Analyzer is the ctxplumb pass.
var Analyzer = &anz.Analyzer{
	Name: "ctxplumb",
	Doc: "non-ctx variants must delegate to their Ctx twin; unbounded loops in " +
		"intra/estimate must poll parallel.CtxErr/ctx.Err or justify termination",
	Run: run,
}

// loopPackages are the solver packages whose inner loops dominate
// Solve latency and therefore must stay cancellable (or provably
// bounded).
var loopPackages = map[string]bool{
	"npra/internal/intra":    true,
	"npra/internal/estimate": true,
}

func run(pass *anz.Pass) error {
	checkDelegation(pass)
	if loopPackages[pass.Path] {
		checkLoops(pass)
	}
	return nil
}

// checkDelegation pairs exported F with FCtx per receiver type and
// verifies F's body references FCtx.
func checkDelegation(pass *anz.Pass) {
	decls := make(map[string]*ast.FuncDecl)
	var keys []string
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				key := recvKey(fd) + "." + fd.Name.Name
				decls[key] = fd
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		fd := decls[key]
		name := fd.Name.Name
		if !ast.IsExported(name) || strings.HasSuffix(name, "Ctx") {
			continue
		}
		ctxName := name + "Ctx"
		if _, ok := decls[recvKey(fd)+"."+ctxName]; !ok {
			continue
		}
		if !references(fd.Body, ctxName) {
			pass.Reportf(fd.Pos(), "%s has a %s variant but does not delegate to it; the two code paths will drift and the non-ctx path loses cancellation", key, ctxName)
		}
	}
}

func recvKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

func references(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// checkLoops flags potentially unbounded for statements without a
// cancellation poll or termination justification.
func checkLoops(pass *anz.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fs, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if fs.Init != nil && fs.Cond != nil && fs.Post != nil {
				return true // classic counted loop: statically bounded
			}
			if pollsCancellation(pass, fs.Body) {
				return true
			}
			if _, ok := pass.Invariant(fs.Pos()); ok {
				return true
			}
			pass.Reportf(fs.Pos(), "potentially unbounded loop without a parallel.CtxErr/ctx.Err cancellation poll; add one or document termination with //lint:invariant")
			return true
		})
	}
}

// pollsCancellation looks for parallel.CtxErr(...) or a .Err()/.Done()
// call on a context.Context value anywhere in the loop body (nested
// function literals excluded — their execution is not guaranteed).
func pollsCancellation(pass *anz.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				if strings.HasSuffix(pn.Imported().Path(), "internal/parallel") && sel.Sel.Name == "CtxErr" {
					found = true
				}
				return true
			}
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if tv, ok := pass.Info.Types[sel.X]; ok && isContext(tv.Type) {
			found = true
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
