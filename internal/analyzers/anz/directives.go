package anz

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The suite understands two source directives, both verified rather
// than trusted:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//	//lint:invariant <justification>
//
// An ignore directive suppresses matching diagnostics reported on the
// same line or the line directly below it ("*" matches any analyzer).
// An invariant directive documents a deliberate panic or a
// potentially-unbounded loop; panicfree and ctxplumb consume it via
// Pass.Invariant. Both forms require a non-empty justification, and the
// runner reports directives that are malformed, that suppress nothing,
// or that no analyzer consumed.

// minJustification is the shortest acceptable justification: long
// enough that "ok" or "yes" cannot stand in for a reason.
const minJustification = 10

// DirectiveAnalyzer is the name under which directive-verification
// findings are reported.
const DirectiveAnalyzer = "lintdir"

type directiveKind int

const (
	dirIgnore directiveKind = iota
	dirInvariant
)

type directive struct {
	kind      directiveKind
	analyzers []string // dirIgnore only; may be ["*"]
	reason    string
	pos       token.Position // position of the comment itself
	endLine   int            // last code line governed (>= pos.Line+1)
	used      bool
}

// directiveSet holds the parsed directives of one package plus any
// malformed-directive diagnostics found while parsing. Analyzers run
// concurrently and consume invariants through Pass.Invariant, so the
// used-marking is guarded by mu; suppression and verification happen
// serially after every analyzer finished.
type directiveSet struct {
	mu        sync.Mutex
	byFile    map[string][]*directive
	malformed []Diagnostic
}

func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byFile: make(map[string][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ds.add(pos, text)
			}
		}
	}
	// A directive governing an `if` whose header spans several lines —
	// an init clause plus a short-circuit condition broken across lines
	// — must cover findings anchored to *any* clause position, not just
	// the first line. Extend each such directive's range to the header's
	// opening brace.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			start := fset.Position(ifs.Pos())
			lbrace := fset.Position(ifs.Body.Lbrace)
			if lbrace.Line <= start.Line {
				return true
			}
			for _, d := range ds.byFile[start.Filename] {
				if d.pos.Line == start.Line || d.pos.Line == start.Line-1 {
					if lbrace.Line > d.endLine {
						d.endLine = lbrace.Line
					}
				}
			}
			return true
		})
	}
	return ds
}

func (ds *directiveSet) add(pos token.Position, text string) {
	verb, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
	rest = strings.TrimSpace(rest)
	switch verb {
	case "ignore":
		names, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		if names == "" || len(reason) < minJustification {
			ds.malformed = append(ds.malformed, Diagnostic{
				Pos:      pos,
				Analyzer: DirectiveAnalyzer,
				Message:  "malformed directive: want //lint:ignore <analyzer>[,<analyzer>...] <justification> (justification of at least " + itoa(minJustification) + " characters)",
			})
			return
		}
		ds.byFile[pos.Filename] = append(ds.byFile[pos.Filename], &directive{
			kind: dirIgnore, analyzers: strings.Split(names, ","), reason: reason, pos: pos,
		})
	case "invariant":
		if len(rest) < minJustification {
			ds.malformed = append(ds.malformed, Diagnostic{
				Pos:      pos,
				Analyzer: DirectiveAnalyzer,
				Message:  "malformed directive: //lint:invariant needs a justification of at least " + itoa(minJustification) + " characters",
			})
			return
		}
		ds.byFile[pos.Filename] = append(ds.byFile[pos.Filename], &directive{
			kind: dirInvariant, reason: rest, pos: pos,
		})
	default:
		ds.malformed = append(ds.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: DirectiveAnalyzer,
			Message:  "unknown directive //lint:" + verb + " (known: ignore, invariant)",
		})
	}
}

// attaches reports whether a directive on line dl governs code on line
// cl: trailing on the same line, or alone on the line directly above.
func attaches(dl, cl int) bool { return dl == cl || dl == cl-1 }

// governs reports whether directive d covers a finding on line cl:
// the basic attachment rule, widened to the directive's endLine when it
// sits above a multi-line if header.
func (d *directive) governs(cl int) bool {
	if attaches(d.pos.Line, cl) {
		return true
	}
	return d.endLine > 0 && cl > d.pos.Line && cl <= d.endLine
}

// invariantAt finds and consumes an invariant directive attached to the
// given source line.
func (ds *directiveSet) invariantAt(pos token.Position) (string, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for _, d := range ds.byFile[pos.Filename] {
		if d.kind == dirInvariant && attaches(d.pos.Line, pos.Line) {
			d.used = true
			return d.reason, true
		}
	}
	return "", false
}

// suppressed reports whether an ignore directive covers the diagnostic,
// marking the directive used.
func (ds *directiveSet) suppressed(d Diagnostic) bool {
	if d.Analyzer == DirectiveAnalyzer {
		return false
	}
	for _, dir := range ds.byFile[d.Pos.Filename] {
		if dir.kind != dirIgnore || !dir.governs(d.Pos.Line) {
			continue
		}
		for _, name := range dir.analyzers {
			if name == "*" || name == d.Analyzer {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// verify returns diagnostics for malformed directives and — when the
// analyzer set ran is broad enough to judge (checkUnused) — for
// directives that suppressed nothing or were never consumed.
func (ds *directiveSet) verify(checkUnused bool) []Diagnostic {
	out := append([]Diagnostic(nil), ds.malformed...)
	if !checkUnused {
		return out
	}
	files := make([]string, 0, len(ds.byFile))
	for f := range ds.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, d := range ds.byFile[f] {
			if d.used {
				continue
			}
			switch d.kind {
			case dirIgnore:
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: DirectiveAnalyzer,
					Message:  "unused //lint:ignore directive: no " + strings.Join(d.analyzers, ",") + " diagnostic on this or the next line",
				})
			case dirInvariant:
				out = append(out, Diagnostic{
					Pos:      d.pos,
					Analyzer: DirectiveAnalyzer,
					Message:  "stray //lint:invariant directive: does not annotate a panic site or a loop any analyzer accepts justifications for",
				})
			}
		}
	}
	return out
}

func itoa(n int) string { return strconv.Itoa(n) }
