package loadgen

// The kernel-mix workload: the "millions of users, same kernels" shape
// the function cache exists for. Requests are composed from a small
// shared pool of heavyweight progen kernels with varying thread
// multiplicities — a request might be kernel3 x2 + kernel7 x1, the next
// kernel7 x3 — so whole requests rarely repeat (request-level dedup
// can't help much) while every thread body comes from the pool
// (function-level reuse answers nearly everything after warmup).
//
// RunMix drives two phases with the *identical* request stream:
//
//	cold — against a baseline server whose function/body caches are
//	       disabled (Options.BaselineURL; skipped when empty)
//	warm — against the measured server, after a short warmup pass that
//	       puts every kernel in its function cache
//
// and reports the warm phase's function-cache hit rate (from the
// server's /metrics delta across the measured run) alongside the
// cold/warm p99 ratio. Both servers see the same stream and both keep
// request-level dedup, so the ratio isolates what function-granular
// caching buys.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"npra/internal/bench"
	"npra/internal/core"
	"npra/internal/core/errs"
)

// MixOptions configures a kernel-mix run. Zero values take the noted
// defaults.
type MixOptions struct {
	// URL is the measured server's base URL. Required.
	URL string

	// BaselineURL, when set, is a server with function/body caching
	// disabled; the identical stream is driven against it first to
	// record the cold baseline. Empty skips the cold phase.
	BaselineURL string

	// Concurrency is the closed-loop worker count (default 4).
	Concurrency int

	// Requests is the measured request count per phase (default 200).
	Requests int64

	// Kernels is the shared kernel pool size (default 8); Threads caps
	// the thread multiplicity per request (default 4).
	Kernels int
	Threads int

	// NReg is the register budget per request (default 128 — higher
	// than plain loadgen's 64 because the mix kernels are heavyweight
	// and a 4-way mix of them is infeasible under 64 registers).
	NReg int

	// TimeoutMS is forwarded in each request (0 = server default).
	TimeoutMS int64

	// Seed makes the kernel pool and stream reproducible (default 1).
	Seed int64

	// Client overrides the HTTP client (default from Options).
	Client *http.Client
}

func (o MixOptions) withDefaults() MixOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Kernels <= 0 {
		o.Kernels = 8
	}
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.NReg <= 0 {
		o.NReg = 128
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// kernel returns the k-th pool kernel's progen spec: deliberately
// heavyweight (deep nesting, long bodies, many variables) so engine
// time dominates transport time and the cold/warm contrast is about
// allocation work, not HTTP overhead.
func (o *MixOptions) kernel(k int) core.WireProgen {
	return core.WireProgen{
		Seed:       o.Seed*1_000_000 + int64(k),
		MaxDepth:   4,
		MaxBodyLen: 24,
		MaxTripCnt: 8,
		MaxVars:    24,
		CSBDensity: 0.3,
	}
}

// serviceKernelNames are the extra bench kernels folded into the pool
// as preassembled masm bodies: real structured network code (forwarding,
// crypto, DPI) diversifies the progen shapes, so the server's rewrite
// cache is exercised across scenario kinds, not one generator's idiom.
var serviceKernelNames = []string{"ipv6_fwd", "aes_round", "dpi_scan"}

var (
	serviceAsmOnce sync.Once
	serviceAsmSrc  []string
)

// serviceAsm returns the service kernels' assembly sources, generated
// once (the generators are deterministic, so every run sees identical
// bodies and the caches key consistently).
func serviceAsm() []string {
	serviceAsmOnce.Do(func() {
		for _, n := range serviceKernelNames {
			b, err := bench.Get(n)
			if err != nil {
				panic(err) //lint:invariant the names are compile-time constants naming built-in bench kernels; a miss is a programming error, not an input
			}
			serviceAsmSrc = append(serviceAsmSrc, b.Gen(8).Format())
		}
	})
	return serviceAsmSrc
}

// thread returns pool slot k as a wire thread: when the pool has room
// (at least four slots), the last three carry the service kernels as
// asm bodies; every other slot is a progen spec.
func (o *MixOptions) thread(k int) core.WireThread {
	asm := serviceAsm()
	if o.Kernels >= 4 && k >= o.Kernels-len(asm) {
		return core.WireThread{Asm: asm[k-(o.Kernels-len(asm))]}
	}
	kp := o.kernel(k)
	return core.WireThread{Progen: &kp}
}

// mixSpec composes request i of the mix stream: the thread count cycles
// with i and the kernel choices are the mixed-radix digits of i/Threads
// in base Kernels — deterministic, and distinct for every i until the
// digit space wraps (Kernels^nthreads compositions per thread count).
// Repeats past that point are the realistic part of the workload: they
// exercise the request-level dedup layers identically on both servers.
func (o *MixOptions) mixSpec(i int64) []byte {
	req := core.WireRequest{NReg: o.NReg, TimeoutMS: o.TimeoutMS}
	nthreads := 1 + int(i)%o.Threads
	x := i / int64(o.Threads)
	for t := 0; t < nthreads; t++ {
		req.Threads = append(req.Threads, o.thread(int(x%int64(o.Kernels))))
		x /= int64(o.Kernels)
	}
	blob, err := json.Marshal(&req)
	if err != nil {
		return []byte("{}")
	}
	return blob
}

// MixReport is the outcome of a kernel-mix run.
type MixReport struct {
	// Cold is the baseline phase (caches disabled); nil without a
	// BaselineURL. Warm is the measured phase on the warm server.
	Cold *Report `json:"cold,omitempty"`
	Warm *Report `json:"warm"`

	// FuncCacheHits/Misses/HitRate cover the measured warm phase only
	// (deltas of the server's func-cache counters across the run, so a
	// shared long-lived server doesn't dilute the rate).
	FuncCacheHits    int64   `json:"funccache_hits"`
	FuncCacheMisses  int64   `json:"funccache_misses"`
	FuncCacheHitRate float64 `json:"funccache_hit_rate"`

	BodyCacheHitRate float64 `json:"bodycache_hit_rate"`

	// RewriteCacheHitRate covers the measured warm phase (delta of the
	// rewrite-result cache counters; exact and relocation hits both
	// count as hits).
	RewriteCacheHitRate float64 `json:"rewritecache_hit_rate"`

	// WarmRewriteShare is uncached rewrite engine time as a share of
	// total engine phase time across the measured warm phase (deltas
	// of npserve_engine_phase_ns) — the warm-path hotspot the rewrite
	// tier exists to kill. The cached lookup (rewrite_cached) counts
	// toward the denominator only: it is the fix, not the hotspot.
	WarmRewriteShare float64 `json:"warm_rewrite_share"`

	// P99Speedup is cold p99 / warm p99 (0 without a cold phase).
	P99Speedup float64 `json:"p99_speedup"`

	Kernels  int   `json:"kernels"`
	Requests int64 `json:"requests_per_phase"`
}

// Check validates the mix gates: transport/5xx cleanliness on both
// phases, a warm-phase function-cache hit rate of at least minFuncHit
// (skipped when negative), a p99 speedup of at least minP99Speedup
// (skipped when not positive or when no cold phase ran), and a warm
// rewrite share of engine time at most maxRewriteShare (skipped when
// not positive).
func (r *MixReport) Check(maxFiveXX int64, minFuncHit, minP99Speedup, maxRewriteShare float64) error {
	if err := r.Warm.Check(maxFiveXX, -1, 0); err != nil {
		return fmt.Errorf("warm phase: %w", err)
	}
	if r.Cold != nil {
		if err := r.Cold.Check(maxFiveXX, -1, 0); err != nil {
			return fmt.Errorf("cold phase: %w", err)
		}
	}
	if minFuncHit >= 0 && r.FuncCacheHitRate < minFuncHit {
		return errs.Internalf("loadgen: warm-phase func-cache hit rate %.4f below the %.4f floor",
			r.FuncCacheHitRate, minFuncHit)
	}
	if minP99Speedup > 0 {
		if r.Cold == nil {
			return errs.Invalidf("loadgen: p99 speedup gate needs a baseline server (cold phase)")
		}
		if r.P99Speedup < minP99Speedup {
			return errs.Internalf("loadgen: warm p99 speedup %.2fx below the %.2fx floor",
				r.P99Speedup, minP99Speedup)
		}
	}
	if maxRewriteShare > 0 && r.WarmRewriteShare > maxRewriteShare {
		return errs.Internalf("loadgen: warm rewrite share %.4f of engine time above the %.4f ceiling",
			r.WarmRewriteShare, maxRewriteShare)
	}
	return nil
}

// RunMix drives the kernel-mix workload and returns the report.
func RunMix(ctx context.Context, opt MixOptions) (*MixReport, error) {
	opt = opt.withDefaults()
	if opt.URL == "" {
		return nil, errs.Invalidf("loadgen: no target URL")
	}

	phase := func(url string) (*Report, error) {
		return Run(ctx, Options{
			URL:         url,
			Concurrency: opt.Concurrency,
			MaxRequests: opt.Requests,
			PoolSize:    1, // DupRatio 0: the pool is never drawn from
			NReg:        opt.NReg,
			TimeoutMS:   opt.TimeoutMS,
			Seed:        opt.Seed,
			Client:      opt.Client,
			Spec:        opt.mixSpec,
		})
	}

	rep := &MixReport{Kernels: opt.Kernels, Requests: opt.Requests}
	if opt.BaselineURL != "" {
		cold, err := phase(opt.BaselineURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: cold phase: %w", err)
		}
		rep.Cold = cold
	}

	// Warm up the measured server: one single-thread request per kernel
	// puts every pool body into its function cache, so the measured
	// phase starts warm.
	client := opt.Client
	if client == nil {
		client = Options{}.withDefaults().Client
	}
	for k := 0; k < opt.Kernels; k++ {
		kr := core.WireRequest{NReg: opt.NReg, TimeoutMS: opt.TimeoutMS,
			Threads: []core.WireThread{opt.thread(k)}}
		blob, _ := json.Marshal(&kr)
		resp, err := client.Post(opt.URL+"/allocate", "application/json", bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("loadgen: warmup kernel %d: %w", k, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, errs.Internalf("loadgen: warmup kernel %d: status %d", k, resp.StatusCode)
		}
	}
	pre, err := ScrapeMetrics(client, opt.URL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: pre-phase metrics: %w", err)
	}

	warmRep, err := phase(opt.URL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: warm phase: %w", err)
	}
	rep.Warm = warmRep

	post := warmRep.Metrics
	rep.FuncCacheHits = int64(post["npserve_func_cache_hits"] - pre["npserve_func_cache_hits"])
	rep.FuncCacheMisses = int64(post["npserve_func_cache_misses"] - pre["npserve_func_cache_misses"])
	if total := rep.FuncCacheHits + rep.FuncCacheMisses; total > 0 {
		rep.FuncCacheHitRate = float64(rep.FuncCacheHits) / float64(total)
	}
	bh := post["npserve_body_cache_hits"] - pre["npserve_body_cache_hits"]
	bm := post["npserve_body_cache_misses"] - pre["npserve_body_cache_misses"]
	if bh+bm > 0 {
		rep.BodyCacheHitRate = bh / (bh + bm)
	}
	rh := post["npserve_rewrite_cache_hits"] - pre["npserve_rewrite_cache_hits"] +
		post["npserve_rewrite_cache_reloc_hits"] - pre["npserve_rewrite_cache_reloc_hits"]
	rm := post["npserve_rewrite_cache_misses"] - pre["npserve_rewrite_cache_misses"]
	if rh+rm > 0 {
		rep.RewriteCacheHitRate = rh / (rh + rm)
	}
	phaseDelta := func(name string) float64 {
		k := fmt.Sprintf("npserve_engine_phase_ns{phase=%q}", name)
		return post[k] - pre[k]
	}
	var engineNS float64
	for _, name := range []string{"build", "estimate_merge", "estimate_repair", "chain_coloring", "rewrite", "rewrite_cached"} {
		engineNS += phaseDelta(name)
	}
	if engineNS > 0 {
		rep.WarmRewriteShare = phaseDelta("rewrite") / engineNS
	}
	if rep.Cold != nil && rep.Warm.P99MS > 0 {
		rep.P99Speedup = rep.Cold.P99MS / rep.Warm.P99MS
	}
	return rep, nil
}
