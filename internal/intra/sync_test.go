package intra

import (
	"fmt"
	"math/rand"
	"testing"

	"npra/internal/ir"
	"npra/internal/passes"
	"npra/internal/progen"
)

// checkSync verifies the derived occupancy index (occ) and per-color
// piece lists (byColor) against the ground-truth piece list. Every
// mutation path — vacate relabeling, demote swaps, displacement,
// splitting, squatter eviction, coalescing, and scratch-pool copyFrom —
// must leave these exactly consistent; the incremental kernels trust
// them without re-deriving.
func (ctx *Context) checkSync() error {
	seen := make(map[int32]int)
	for c, lst := range ctx.byColor {
		for _, idx := range lst {
			x := ctx.Pieces[idx]
			if x == nil {
				return fmt.Errorf("byColor[%d] references nil piece %d", c, idx)
			}
			if x.Color != c {
				return fmt.Errorf("byColor[%d] references piece %d with color %d", c, idx, x.Color)
			}
			seen[idx]++
		}
	}
	for i, x := range ctx.Pieces {
		if x == nil {
			continue
		}
		if seen[int32(i)] != 1 {
			return fmt.Errorf("piece %d (v%d color %d) listed %d times in byColor", i, x.Var, x.Color, seen[int32(i)])
		}
	}
	for p := 0; p < ctx.np; p++ {
		want := make([]uint64, ctx.occW)
		for _, x := range ctx.Pieces {
			if x != nil && x.Points.Has(p) {
				want[x.Color>>6] |= 1 << (uint(x.Color) & 63)
			}
		}
		row := ctx.occRow(p)
		for j := 0; j < ctx.occW; j++ {
			if row[j] != want[j] {
				return fmt.Errorf("occ desync at point %d word %d: have %x want %x", p, j, row[j], want[j])
			}
		}
	}
	return nil
}

// TestContextIndexConsistency sweeps the whole (cap, size) derivation
// lattice for generated programs and checks occ/byColor integrity plus
// Validate on every memoized context. The seed list includes 109, which
// once exposed stale *Piece aliasing: coalesce compacted Pieces in
// place without clearing the tail, so a later copyFrom growing back
// into the backing array reused one struct for two slots.
func TestContextIndexConsistency(t *testing.T) {
	cfg := progen.StructuredConfig{
		MaxDepth: 3, MaxBodyLen: 14, MaxTripCnt: 4, MaxVars: 16,
		CSBDensity: 0.25, StoreWindow: 128,
	}
	for _, seed := range []int64{1, 7, 42, 109, 211} {
		rng := rand.New(rand.NewSource(seed))
		var funcs []*ir.Func
		for i := 0; i < 4; i++ {
			c := cfg
			c.StoreBase = int64(i * 256)
			f := progen.GenerateStructured(rng, c)
			opt, _, err := passes.Optimize(f)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			funcs = append(funcs, opt)
		}
		for fi, f := range funcs {
			al := MustNew(f)
			bd := al.Bounds()
			for cap := bd.MaxPR; cap >= bd.MinPR; cap-- {
				for size := bd.MaxR; size >= bd.MinR; size-- {
					if size < cap {
						continue
					}
					ctx, err := al.context(cap, size)
					if err != nil {
						continue
					}
					if serr := ctx.checkSync(); serr != nil {
						t.Fatalf("seed %d func %d palette (%d,%d): %v", seed, fi, cap, size, serr)
					}
					if verr := ctx.Validate(); verr != nil {
						t.Fatalf("seed %d func %d palette (%d,%d): validate: %v", seed, fi, cap, size, verr)
					}
				}
			}
		}
	}
}
