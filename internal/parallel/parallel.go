// Package parallel provides the small bounded worker-pool helpers the
// allocator stack uses to fan independent work out across CPUs while
// keeping results deterministically ordered.
//
// The contract every helper honors: results come back in input order, a
// worker count of 1 degenerates to a plain serial loop (same goroutine,
// ascending index order), and fn is only ever called concurrently for
// *different* indices — so callers may write into per-index slots of a
// shared slice without synchronization.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n <= 0 means "one worker
// per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (normalized by Workers) and returns the n results in input order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the results in input order. All indices are attempted even
// when some fail (the work items are independent; there is nothing to
// cancel); if any failed, the error for the lowest failing index is
// returned so the caller sees the same error a serial ascending loop
// would have surfaced first.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (normalized by Workers). With one worker it runs fn serially in
// ascending index order on the calling goroutine; otherwise indices are
// handed out atomically, so the assignment of index to goroutine — but
// never the set of calls made — depends on scheduling.
func ForEach(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits [0, n) into at most workers contiguous half-open ranges
// of near-equal size, for callers that want one long-lived worker state
// (an allocator, a scratch buffer) per chunk rather than per item. The
// split depends only on (workers, n), never on scheduling.
func Chunks(workers, n int) [][2]int {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return nil
	}
	out := make([][2]int, 0, workers)
	size, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
