// Fixture for the sleeplint analyzer: bare waits inside loops are
// flagged; select-shaped waits, one-shot sleeps and per-iteration
// goroutine bodies are not.
package sleepfix

import (
	"context"
	"time"
)

// PollBare naps uncancellably between polls: flagged.
func PollBare(ready func() bool) {
	for !ready() {
		time.Sleep(50 * time.Millisecond) // want `time\.Sleep inside a loop cannot be cancelled`
	}
}

// RetryAfterChan parks on a throwaway timer each round: flagged.
func RetryAfterChan(try func() error) {
	for try() != nil {
		<-time.After(time.Second) // want `bare <-time\.After inside a loop cannot be cancelled`
	}
}

// RangeBare sleeps per element: flagged (range loops count too).
func RangeBare(xs []int) {
	for range xs {
		time.Sleep(time.Millisecond) // want `time\.Sleep inside a loop cannot be cancelled`
	}
}

// NestedBare reaches the loop through an if: still flagged.
func NestedBare(ready func() bool, slow bool) {
	for !ready() {
		if slow {
			time.Sleep(time.Second) // want `time\.Sleep inside a loop cannot be cancelled`
		}
	}
}

// PollCtx is the required shape — a timer select that watches
// ctx.Done(): not flagged.
func PollCtx(ctx context.Context, ready func() bool) error {
	for !ready() {
		t := time.NewTimer(50 * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
	return nil
}

// OneShot is straight-line code, not a poll loop: not flagged.
func OneShot() {
	time.Sleep(time.Millisecond)
}

// PerIterationGoroutine launches workers from a loop; the nap belongs
// to the worker body, which has no loop of its own: not flagged.
func PerIterationGoroutine(n int) {
	for i := 0; i < n; i++ {
		go func() {
			time.Sleep(time.Millisecond)
		}()
	}
}

// WorkerLoopInLiteral is a loop *inside* the literal: flagged.
func WorkerLoopInLiteral(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			time.Sleep(time.Millisecond) // want `time\.Sleep inside a loop cannot be cancelled`
		}
	}()
}

// Justified carries a verified suppression: not flagged.
func Justified(ready func() bool) {
	for !ready() {
		time.Sleep(time.Millisecond) //lint:ignore sleeplint startup-only spin with a bounded caller; no ctx exists at this layer
	}
}
