// Package funccache lifts caching from request granularity to function
// granularity: a process-wide, sharded, bounded LRU of per-function
// engine artifacts — the compiled ir.Func (BodyCache), its analysis
// (liveness/NSR/interference graph) and warm intra.Allocators whose
// (pr,sr)→Solution memo tables survive across requests (Cache).
//
// The request-level layers above (singleflight, the result LRU) only
// help when two requests are byte-identical; this layer reuses work
// whenever two *different* requests embed the same function body. A
// request for "md5 x2 + url x2" replays everything a prior "md5 x4"
// request computed: the analysis is shared read-only, and every Solve
// the earlier run memoized is a map lookup for the later one.
//
// Keying: entries are keyed by core.FuncKey — sha256 of the function's
// materialized body text. The hardware profile (NReg, thread count,
// mode) is deliberately NOT part of the key: every per-function
// artifact the cache holds is a pure function of the body alone —
// analysis doesn't see NReg, and the Solve memo is keyed inside the
// allocator by the (pr,sr) budget — so one entry serves every register
// file a body is allocated against.
//
// Correctness contract (mirrors core.AllocatorSource):
//   - A checked-out allocator is exclusively the caller's until checkin.
//   - checkin(ok=false) discards the allocator: failed, degraded or
//     panicked runs never warm the cache. An entry is only ever
//     installed by a checkin(ok=true), so a body that never completed
//     cleanly has no entry at all.
//   - Results are bit-identical warm or cold: Solve is a pure function
//     of the analysis and the budget, memoized Solutions/Contexts are
//     immutable once inserted, and merging memo tables (Absorb) only
//     adds entries another run would have recomputed identically.
//
// Eviction is strict per-shard LRU on checkout/checkin order, bounded
// by Config.Entries; with Shards=1 and serial use the order is fully
// deterministic and observable through Stats.
package funccache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"npra/internal/core"
	"npra/internal/ig"
	"npra/internal/intra"
	"npra/internal/ir"
)

// Config sizes a Cache. Zero values take the noted defaults.
type Config struct {
	// Entries bounds the number of distinct function bodies cached
	// (default 256). The bound is split evenly across shards.
	Entries int

	// Shards is the lock-striping factor (default 8). Tests that assert
	// global LRU eviction order use 1.
	Shards int

	// MaxIdle bounds the idle allocators pooled per entry (default 4).
	// Concurrent checkouts of one body beyond the pool get overflow
	// allocators built over the shared analysis; at checkin, overflow
	// beyond MaxIdle is folded into the pool via Absorb so its memo
	// entries are kept even though the allocator itself is dropped.
	MaxIdle int
}

func (c Config) withDefaults() Config {
	if c.Entries <= 0 {
		c.Entries = 256
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > c.Entries {
		c.Shards = c.Entries
	}
	if c.MaxIdle <= 0 {
		c.MaxIdle = 4
	}
	return c
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // checkouts served from a warm entry
	Misses    int64 // checkouts that built a fresh analysis
	Evictions int64 // entries dropped to stay within the Entries bound
	Discards  int64 // allocators dropped by checkin(ok=false)
	Entries   int64 // live entries right now
	Idle      int64 // idle pooled allocators right now
	Bytes     int64 // approximate heap bytes held by idle allocators
}

// entry is one cached function body: the shared read-only analysis and
// a LIFO pool of idle warm allocators over it.
type entry struct {
	key      string
	analysis *ig.Analysis
	idle     []*intra.Allocator
	elem     *list.Element
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	cap     int
}

// Cache is the function-level warm cache. It implements
// core.AllocatorSource. The zero value is not usable; construct with
// New.
type Cache struct {
	cfg    Config
	shards []*shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	discards  atomic.Int64
	idle      atomic.Int64
	bytes     atomic.Int64

	// keyMemo short-circuits re-Formatting a function whose key was
	// already computed. It only pays off when ir.Func pointers are
	// shared across requests (i.e. behind a BodyCache); it is bounded
	// and reset wholesale when full, since pointer keys of dead funcs
	// can never be queried again but would otherwise pin them.
	keyMu   sync.Mutex
	keyMemo map[*ir.Func]string
}

const keyMemoCap = 8192

// New returns an empty cache sized by cfg.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, keyMemo: make(map[*ir.Func]string)}
	per := (cfg.Entries + cfg.Shards - 1) / cfg.Shards
	for s := 0; s < cfg.Shards; s++ {
		c.shards = append(c.shards, &shard{
			entries: make(map[string]*entry),
			lru:     list.New(),
			cap:     per,
		})
	}
	return c
}

// Stats returns a snapshot of the counters. Entries is summed across
// shards under their locks; the atomics are read individually, so a
// snapshot taken during concurrent use is approximate but each counter
// is exact.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Discards:  c.discards.Load(),
		Idle:      c.idle.Load(),
		Bytes:     c.bytes.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return st
}

// FuncKey returns core.FuncKey(f), memoized by pointer identity. The
// memo only pays off when callers see stable *ir.Func pointers across
// requests (i.e. bodies come from a BodyCache); the serving layer uses
// it to derive request keys without re-Formatting every body.
func (c *Cache) FuncKey(f *ir.Func) string {
	c.keyMu.Lock()
	if k, ok := c.keyMemo[f]; ok {
		c.keyMu.Unlock()
		return k
	}
	c.keyMu.Unlock()
	k := core.FuncKey(f) // outside the lock: Format+sha256 is the slow part
	c.keyMu.Lock()
	if len(c.keyMemo) >= keyMemoCap {
		c.keyMemo = make(map[*ir.Func]string)
	}
	c.keyMemo[f] = k
	c.keyMu.Unlock()
	return k
}

func (c *Cache) shardOf(key string) *shard {
	// The key is a sha256 hex digest: its first bytes are already
	// uniformly distributed, so fold a few into the shard index.
	var h uint32
	for i := 0; i < 8 && i < len(key); i++ {
		h = h*31 + uint32(key[i])
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Checkout implements core.AllocatorSource: it returns a warm allocator
// for f's body when one is cached (or an overflow allocator over the
// cached analysis when the pool is empty), building fresh on a miss.
// The returned checkin must be called exactly once; ok=true recycles
// the allocator's memo into the cache, ok=false discards it.
func (c *Cache) Checkout(f *ir.Func) (*intra.Allocator, func(ok bool), error) {
	key := c.FuncKey(f)
	sh := c.shardOf(key)

	sh.mu.Lock()
	e, warm := sh.entries[key]
	var al *intra.Allocator
	var analysis *ig.Analysis
	if warm {
		sh.lru.MoveToFront(e.elem)
		analysis = e.analysis
		if n := len(e.idle); n > 0 {
			al = e.idle[n-1]
			e.idle[n-1] = nil
			e.idle = e.idle[:n-1]
			c.idle.Add(-1)
			c.bytes.Add(-al.Footprint())
		}
	}
	sh.mu.Unlock()

	if warm {
		c.hits.Add(1)
		if al == nil {
			// Pool drained by concurrent checkouts: an overflow allocator
			// over the shared analysis still skips the build phase, which
			// is the dominant cold cost. Its own Solve work is merged
			// back at checkin.
			var err error
			al, err = intra.NewFromAnalysis(analysis)
			if err != nil {
				return nil, nil, err
			}
		}
		//lint:ignore cachealias checkinFunc constructs the checkin closure; nothing has been checked in yet
		return al, c.checkinFunc(key, al), nil
	}

	c.misses.Add(1)
	al, err := intra.New(f)
	if err != nil {
		return nil, nil, err
	}
	//lint:ignore cachealias checkinFunc constructs the checkin closure; nothing has been checked in yet
	return al, c.checkinFunc(key, al), nil
}

// checkinFunc builds the single-use return path for one checked-out
// allocator. It never blocks on anything but the shard lock and never
// fails: a checkin that cannot recycle (mismatched analysis after an
// eviction race, Absorb refusal) degrades to dropping the allocator.
func (c *Cache) checkinFunc(key string, al *intra.Allocator) func(bool) {
	var once sync.Once
	return func(ok bool) {
		once.Do(func() {
			if !ok {
				c.discards.Add(1)
				return
			}
			sh := c.shardOf(key)
			sh.mu.Lock()
			defer sh.mu.Unlock()
			e := sh.entries[key]
			if e == nil {
				// First clean completion for this body: install the entry.
				// Installation happens here, not at checkout, so bodies
				// whose runs never complete cleanly are never cached.
				e = &entry{key: key, analysis: al.A}
				e.elem = sh.lru.PushFront(e)
				sh.entries[key] = e
				c.evictLocked(sh)
			} else if e.analysis != al.A {
				// The entry was evicted and rebuilt while this allocator
				// was out. Its memo Contexts point into a different (but
				// equivalent) analysis; pooling it would make later
				// Absorb calls refuse. Drop it.
				c.discards.Add(1)
				return
			}
			sh.lru.MoveToFront(e.elem)
			if len(e.idle) < c.cfg.MaxIdle {
				// Zero the counters so the next run that checks this
				// allocator out reports only its own work (the engine
				// aggregates allocator counters verbatim).
				al.ResetStats()
				e.idle = append(e.idle, al)
				c.idle.Add(1)
				c.bytes.Add(al.Footprint())
				return
			}
			// Pool full: keep the memo, not the allocator. Absorb only
			// adds entries the pooled allocator was missing, so its
			// footprint can only grow by what this run learned.
			dst := e.idle[len(e.idle)-1]
			pre := dst.Footprint()
			if err := dst.Absorb(al); err == nil {
				c.bytes.Add(dst.Footprint() - pre)
			}
			c.discards.Add(1)
		})
	}
}

// evictLocked enforces the shard's entry bound, dropping least-recently
// used entries (and their idle pools) until within cap. Callers hold
// sh.mu.
func (c *Cache) evictLocked(sh *shard) {
	for sh.lru.Len() > sh.cap {
		back := sh.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		sh.lru.Remove(back)
		delete(sh.entries, victim.key)
		c.evictions.Add(1)
		for _, idle := range victim.idle {
			c.idle.Add(-1)
			c.bytes.Add(-idle.Footprint())
		}
		victim.idle = nil
	}
}
